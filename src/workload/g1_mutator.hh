/**
 * @file
 * The synthetic mutators on the G1 heap: the same Table 3 workload
 * demography as Mutator, driving the region-based Garbage-First
 * collector instead of ParallelScavenge.
 *
 * Exists to quantify the paper's Table 1 claim end-to-end: the same
 * application, collected by a different family, still spends its time
 * in the same offloadable primitives — so Charon accelerates G1 runs
 * too (see bench/g1_vs_ps).
 */

#ifndef CHARON_WORKLOAD_G1_MUTATOR_HH
#define CHARON_WORKLOAD_G1_MUTATOR_HH

#include <deque>
#include <memory>
#include <vector>

#include "gc/g1_collector.hh"
#include "gc/recorder.hh"
#include "heap/g1_heap.hh"
#include "sim/rng.hh"
#include "workload/catalog.hh"

namespace charon::workload
{

/**
 * One application run on G1.
 */
class G1Mutator
{
  public:
    struct RunResult
    {
        bool oom = false;
        std::uint64_t youngGcs = 0;
        std::uint64_t mixedGcs = 0;
        std::uint64_t markCycles = 0;
        std::uint64_t allocatedBytes = 0;
        std::uint64_t mutatorInstructions = 0;
    };

    G1Mutator(const WorkloadParams &params, std::uint64_t heap_bytes,
              std::uint64_t seed = 1, int gc_threads = 8,
              int num_cubes = 4);

    RunResult run();

    gc::TraceRecorder &recorder() { return *rec_; }
    heap::G1Heap &heap() { return *heap_; }
    int cubeShift() const { return cubeShift_; }

  private:
    using RootSlot = std::size_t;

    /** Allocate with GC-on-failure; 0 on OOM. */
    mem::Addr allocate(heap::KlassId klass, std::uint64_t array_len = 0);

    RootSlot addRoot(mem::Addr obj);
    void removeRoot(RootSlot slot);
    mem::Addr rootAt(RootSlot slot) const;
    void holdTemp(mem::Addr obj);
    void holdBigTemp(mem::Addr obj);
    mem::Addr randomGraphNode();
    void buildGraph();
    void runIteration();
    void serveRequests();
    void allocSmallTemps();

    WorkloadParams params_;
    MutatorKlasses klasses_;
    std::unique_ptr<heap::G1Heap> heap_;
    std::unique_ptr<gc::TraceRecorder> rec_;
    std::unique_ptr<gc::G1Collector> g1_;
    sim::Rng rng_;
    int cubeShift_ = 30;

    bool oom_ = false;
    RunResult result_;

    std::vector<RootSlot> freeSlots_;
    RootSlot registrySlot_ = 0;
    RootSlot matrixSlot_ = 0;
    RootSlot factorSlot_ = 0;
    bool factorSlotValid_ = false;
    std::deque<RootSlot> cache_;
    std::deque<RootSlot> sessions_;
    std::vector<RootSlot> tempRing_;
    std::size_t tempCursor_ = 0;
    std::vector<RootSlot> bigTempRing_;
    std::size_t bigTempCursor_ = 0;
    std::vector<RootSlot> shardRing_;

    static constexpr std::size_t kBigTempRingSize = 4;
};

} // namespace charon::workload

#endif // CHARON_WORKLOAD_G1_MUTATOR_HH
