/**
 * @file
 * Tests for the platform timing simulator: the qualitative orderings
 * the paper's evaluation rests on must hold on every workload the
 * suite replays (a small one, for speed).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "platform/platform_sim.hh"
#include "workload/mutator.hh"

using namespace charon;
using platform::PlatformSim;
using platform::RunTiming;
using sim::PlatformKind;

namespace
{

/** One shared small-run trace for all timing tests. */
class PlatformTest : public ::testing::Test
{
  protected:
    static workload::Mutator *mut;

    static void
    SetUpTestSuite()
    {
        const auto &params = workload::findWorkload("KM");
        mut = new workload::Mutator(params, params.heapBytes, 3);
        mut->run();
    }

    static void TearDownTestSuite()
    {
        delete mut;
        mut = nullptr;
    }

    RunTiming
    simulate(PlatformKind kind,
             const sim::SystemConfig &cfg = sim::SystemConfig{})
    {
        PlatformSim sim_(kind, cfg, mut->cubeShift());
        return sim_.simulate(mut->recorder().run());
    }
};

workload::Mutator *PlatformTest::mut = nullptr;

} // namespace

TEST_F(PlatformTest, PlatformOrderingMatchesFigure12)
{
    auto ddr4 = simulate(PlatformKind::HostDdr4);
    auto hmc = simulate(PlatformKind::HostHmc);
    auto charon = simulate(PlatformKind::CharonNmp);
    auto ideal = simulate(PlatformKind::Ideal);

    EXPECT_LT(hmc.gcSeconds, ddr4.gcSeconds);
    EXPECT_LT(charon.gcSeconds, hmc.gcSeconds);
    EXPECT_LT(ideal.gcSeconds, charon.gcSeconds);
}

TEST_F(PlatformTest, CharonSpeedupInPaperBallpark)
{
    auto ddr4 = simulate(PlatformKind::HostDdr4);
    auto charon = simulate(PlatformKind::CharonNmp);
    double speedup = ddr4.gcSeconds / charon.gcSeconds;
    EXPECT_GT(speedup, 1.5);
    EXPECT_LT(speedup, 8.0);
}

TEST_F(PlatformTest, CpuSideCharonIsSlowerThanNearMemory)
{
    // Figure 16: the CPU-side accelerator misses the internal TSV
    // bandwidth and loses ~37% throughput.
    auto nmp = simulate(PlatformKind::CharonNmp);
    auto cpu_side = simulate(PlatformKind::CharonCpuSide);
    EXPECT_GT(cpu_side.gcSeconds, nmp.gcSeconds);
    auto ddr4 = simulate(PlatformKind::HostDdr4);
    // ...but still beats the plain host (Figure 16's middle bar).
    EXPECT_LT(cpu_side.gcSeconds, ddr4.gcSeconds);
}

TEST_F(PlatformTest, CharonUsesMoreBandwidthThanHostPlatforms)
{
    auto ddr4 = simulate(PlatformKind::HostDdr4);
    auto charon = simulate(PlatformKind::CharonNmp);
    EXPECT_GT(charon.avgGcBandwidthGBs, ddr4.avgGcBandwidthGBs);
    // DDR4 cannot exceed its 34 GB/s peak.
    EXPECT_LE(ddr4.avgGcBandwidthGBs, 34.0);
}

TEST_F(PlatformTest, CharonKeepsMajorityOfAccessesLocal)
{
    auto charon = simulate(PlatformKind::CharonNmp);
    EXPECT_GT(charon.localAccessFraction, 0.4);
    auto ddr4 = simulate(PlatformKind::HostDdr4);
    EXPECT_DOUBLE_EQ(ddr4.localAccessFraction, 0.0);
}

TEST_F(PlatformTest, CharonSavesEnergy)
{
    auto ddr4 = simulate(PlatformKind::HostDdr4);
    auto hmc = simulate(PlatformKind::HostHmc);
    auto charon = simulate(PlatformKind::CharonNmp);
    EXPECT_LT(charon.totalEnergyJ(), ddr4.totalEnergyJ());
    EXPECT_LT(charon.totalEnergyJ(), hmc.totalEnergyJ());
    EXPECT_GT(charon.unitEnergyJ, 0.0);
    EXPECT_DOUBLE_EQ(ddr4.unitEnergyJ, 0.0);
}

TEST_F(PlatformTest, BreakdownCoversWholeGc)
{
    auto ddr4 = simulate(PlatformKind::HostDdr4);
    auto bd = ddr4.breakdown();
    EXPECT_GT(bd.copy, 0.0);
    EXPECT_GT(bd.search, 0.0);
    EXPECT_GT(bd.scanPush, 0.0);
    EXPECT_GT(bd.glue, 0.0);
    // Thread-time never exceeds cores x wall time.
    EXPECT_LE(bd.total(),
              ddr4.gcSeconds * 8 * 1.001);
    // Minor + major partition the GCs.
    EXPECT_EQ(ddr4.gcs.size(),
              mut->recorder().run().gcs.size());
    EXPECT_NEAR(ddr4.minorSeconds + ddr4.majorSeconds, ddr4.gcSeconds,
                1e-9);
}

TEST_F(PlatformTest, OffloadablePrimitivesDominateHostGc)
{
    // Figure 4's headline: the three primitives cover most of GC time
    // on the host.
    auto ddr4 = simulate(PlatformKind::HostDdr4);
    auto bd = ddr4.breakdown();
    EXPECT_GT(bd.offloadable() / bd.total(), 0.55);
}

TEST_F(PlatformTest, DistributedStructuresScaleNoWorse)
{
    sim::SystemConfig dist;
    dist.charon.distributedStructures = true;
    auto unified = simulate(PlatformKind::CharonNmp);
    auto distributed = simulate(PlatformKind::CharonNmp, dist);
    EXPECT_LE(distributed.gcSeconds, unified.gcSeconds * 1.02);
}

TEST_F(PlatformTest, MoreGcThreadsHelpCharonMoreThanDdr4)
{
    // Figure 15's scalability claim, in miniature: going 2 -> 8
    // threads buys Charon more than the bandwidth-capped DDR4 host.
    // (The trace is striped over the recorder's thread count, so
    // build a 2-thread trace separately.)
    const auto &params = workload::findWorkload("KM");
    workload::Mutator two(params, params.heapBytes, 3, /*threads=*/2);
    two.run();

    auto time_on = [&](PlatformKind kind, workload::Mutator &m) {
        PlatformSim sim_(kind, sim::SystemConfig{}, m.cubeShift());
        return sim_.simulate(m.recorder().run()).gcSeconds;
    };
    double ddr4_scale = time_on(PlatformKind::HostDdr4, two)
                        / time_on(PlatformKind::HostDdr4, *mut);
    double charon_scale = time_on(PlatformKind::CharonNmp, two)
                          / time_on(PlatformKind::CharonNmp, *mut);
    EXPECT_GT(charon_scale, ddr4_scale);
}

TEST_F(PlatformTest, MutatorTimeIndependentOfPlatform)
{
    auto ddr4 = simulate(PlatformKind::HostDdr4);
    auto charon = simulate(PlatformKind::CharonNmp);
    EXPECT_DOUBLE_EQ(ddr4.mutatorSeconds, charon.mutatorSeconds);
    EXPECT_GT(ddr4.mutatorSeconds, 0.0);
}

// ---------------------------------------------------------------------
// Parameterized sweep: basic sanity on every platform kind

class EveryPlatform
    : public ::testing::TestWithParam<sim::PlatformKind>
{
};

TEST_P(EveryPlatform, ProducesSaneTiming)
{
    const auto &params = workload::findWorkload("ALS");
    workload::Mutator mut(params, params.heapBytes, 9);
    mut.run();
    PlatformSim sim_(GetParam(), sim::SystemConfig{}, mut.cubeShift());
    auto t = sim_.simulate(mut.recorder().run());

    EXPECT_GT(t.gcSeconds, 0.0);
    EXPECT_GT(t.mutatorSeconds, 0.0);
    EXPECT_NEAR(t.minorSeconds + t.majorSeconds, t.gcSeconds, 1e-9);
    EXPECT_EQ(t.gcs.size(), mut.recorder().run().gcs.size());
    EXPECT_GT(t.totalEnergyJ(), 0.0);
    EXPECT_GT(t.dramBytes, 0.0);
    auto bd = t.breakdown();
    EXPECT_GE(bd.copy, 0.0);
    EXPECT_GT(bd.glue, 0.0);
    // Thread time cannot exceed cores x wall clock.
    EXPECT_LE(bd.total(), t.gcSeconds * 8 * 1.001);
}

TEST_P(EveryPlatform, DeterministicReplay)
{
    const auto &params = workload::findWorkload("ALS");
    workload::Mutator mut(params, params.heapBytes, 9);
    mut.run();
    PlatformSim a(GetParam(), sim::SystemConfig{}, mut.cubeShift());
    PlatformSim b(GetParam(), sim::SystemConfig{}, mut.cubeShift());
    auto ta = a.simulate(mut.recorder().run());
    auto tb = b.simulate(mut.recorder().run());
    EXPECT_DOUBLE_EQ(ta.gcSeconds, tb.gcSeconds);
    EXPECT_DOUBLE_EQ(ta.totalEnergyJ(), tb.totalEnergyJ());
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, EveryPlatform,
    ::testing::Values(sim::PlatformKind::HostDdr4,
                      sim::PlatformKind::HostHmc,
                      sim::PlatformKind::CharonNmp,
                      sim::PlatformKind::CharonCpuSide,
                      sim::PlatformKind::Ideal),
    [](const ::testing::TestParamInfo<sim::PlatformKind> &info) {
        switch (info.param) {
          case sim::PlatformKind::HostDdr4:      return "Ddr4";
          case sim::PlatformKind::HostHmc:       return "Hmc";
          case sim::PlatformKind::CharonNmp:     return "Charon";
          case sim::PlatformKind::CharonCpuSide: return "CharonCpu";
          case sim::PlatformKind::Ideal:         return "Ideal";
        }
        return "Unknown";
    });

TEST(SeedRobustness, CharonSpeedupStableAcrossSeeds)
{
    // The headline result must not hinge on one RNG stream: across
    // seeds, KM's Charon speedup stays within a narrow band.
    const auto &params = workload::findWorkload("KM");
    std::vector<double> speedups;
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
        workload::Mutator mut(params, params.heapBytes, seed);
        mut.run();
        PlatformSim ddr4(PlatformKind::HostDdr4, sim::SystemConfig{},
                         mut.cubeShift());
        PlatformSim charon(PlatformKind::CharonNmp, sim::SystemConfig{},
                           mut.cubeShift());
        speedups.push_back(
            ddr4.simulate(mut.recorder().run()).gcSeconds
            / charon.simulate(mut.recorder().run()).gcSeconds);
    }
    double lo = *std::min_element(speedups.begin(), speedups.end());
    double hi = *std::max_element(speedups.begin(), speedups.end());
    EXPECT_GT(lo, 2.0);
    EXPECT_LT(hi / lo, 1.25); // <25% spread across seeds
}
