/**
 * @file
 * Figure 17 + Section 5.3: GC energy consumption of Charon relative
 * to the host-only platforms, with the component split and average
 * accelerator power.
 *
 * Paper shape: Charon saves 60.7% of GC energy versus the DDR4 host
 * and 51.6% versus the HMC host; the accelerator's own structures
 * contribute a negligible share; average Charon power is ~3 W
 * (max 4.51 W on ALS), far under passive-cooling limits.
 */

#include "bench_common.hh"

#include "accel/area_energy.hh"
#include "sim/stats.hh"

using namespace charon;
using namespace charon::bench;

int
main()
{
    report::heading(std::cout,
                    "Figure 17: GC energy, normalized to the "
                    "host + DDR4 baseline");

    report::Table table({"workload", "vs DDR4", "vs HMC", "host J",
                         "DRAM J", "units J", "unit share",
                         "avg unit W"});
    std::vector<double> vs_ddr4, vs_hmc;
    double max_power = 0;
    std::string max_power_wl;
    for (const auto &name : allWorkloads()) {
        auto run = runWorkload(name);
        auto ddr4 = replay(run, sim::PlatformKind::HostDdr4);
        auto hmc = replay(run, sim::PlatformKind::HostHmc);
        auto charon = replay(run, sim::PlatformKind::CharonNmp);

        vs_ddr4.push_back(charon.totalEnergyJ() / ddr4.totalEnergyJ());
        vs_hmc.push_back(charon.totalEnergyJ() / hmc.totalEnergyJ());
        double unit_power =
            charon.gcSeconds > 0 ? charon.unitEnergyJ / charon.gcSeconds
                                 : 0;
        if (unit_power > max_power) {
            max_power = unit_power;
            max_power_wl = name;
        }
        table.addRow(
            {name, report::num(100 * vs_ddr4.back(), 1) + "%",
             report::num(100 * vs_hmc.back(), 1) + "%",
             report::num(charon.hostEnergyJ, 2),
             report::num(charon.dramEnergyJ, 2),
             report::num(charon.unitEnergyJ, 3),
             report::percent(charon.unitEnergyJ,
                             charon.totalEnergyJ()),
             report::num(unit_power, 2)});
    }
    table.addRow({"geomean",
                  report::num(100 * sim::geomean(vs_ddr4), 1) + "%",
                  report::num(100 * sim::geomean(vs_hmc), 1) + "%", "-",
                  "-", "-", "-", "-"});
    table.print(std::cout);

    std::cout << "\nsavings: "
              << report::num(100 * (1 - sim::geomean(vs_ddr4)), 1)
              << "% vs DDR4 (paper: 60.7%), "
              << report::num(100 * (1 - sim::geomean(vs_hmc)), 1)
              << "% vs HMC (paper: 51.6%)\n";
    std::cout << "max accelerator power: " << report::num(max_power, 2)
              << " W on " << max_power_wl
              << " (paper: 4.51 W on ALS); power density "
              << report::num(
                     accel::PowerModel::powerDensityMwPerMm2(max_power),
                     1)
              << " mW/mm^2, passive-heatsink limit "
              << report::num(accel::PowerModel::kPassiveHeatsinkMwPerMm2,
                             0)
              << " mW/mm^2\n";
    return 0;
}
