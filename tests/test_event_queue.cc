/**
 * @file
 * Unit tests for the discrete-event kernel: ordering, determinism,
 * cancellation, bounded runs, and reentrancy.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

using charon::sim::EventQueue;
using charon::sim::Tick;

TEST(EventQueue, StartsAtTimeZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(42, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, ScheduleInIsRelative)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(100, [&] {
        eq.scheduleIn(50, [&] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, RunUntilStopsEarly)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(1000, [&] { ++fired; });
    auto executed = eq.run(500);
    EXPECT_EQ(executed, 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 500u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, DescheduleCancelsPendingEvent)
{
    EventQueue eq;
    bool fired = false;
    auto id = eq.schedule(10, [&] { fired = true; });
    EXPECT_TRUE(eq.deschedule(id));
    eq.run();
    EXPECT_FALSE(fired);
}

TEST(EventQueue, DescheduleOfFiredEventReturnsFalse)
{
    EventQueue eq;
    auto id = eq.schedule(10, [] {});
    eq.run();
    EXPECT_FALSE(eq.deschedule(id));
}

TEST(EventQueue, DoubleDescheduleReturnsFalse)
{
    EventQueue eq;
    auto id = eq.schedule(10, [] {});
    EXPECT_TRUE(eq.deschedule(id));
    EXPECT_FALSE(eq.deschedule(id));
    eq.run();
}

TEST(EventQueue, DescheduleOfUnknownIdReturnsFalse)
{
    EventQueue eq;
    EXPECT_FALSE(eq.deschedule(0));
    EXPECT_FALSE(eq.deschedule(12345));
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 100)
            eq.scheduleIn(1, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(depth, 100);
    EXPECT_EQ(eq.now(), 99u);
}

TEST(EventQueue, PendingEventCountTracksScheduleAndCancel)
{
    EventQueue eq;
    auto a = eq.schedule(10, [] {});
    eq.schedule(20, [] {});
    EXPECT_EQ(eq.pendingEvents(), 2u);
    eq.deschedule(a);
    EXPECT_EQ(eq.pendingEvents(), 1u);
    eq.run();
    EXPECT_EQ(eq.pendingEvents(), 0u);
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] { ++fired; });
    eq.schedule(2, [&] { ++fired; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 2);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, RunReturnsExecutedCount)
{
    EventQueue eq;
    for (Tick t = 0; t < 25; ++t)
        eq.schedule(t, [] {});
    EXPECT_EQ(eq.run(), 25u);
}

TEST(EventQueue, CancelledEventDoesNotBlockSameTickSiblings)
{
    EventQueue eq;
    std::vector<int> order;
    auto a = eq.schedule(5, [&] { order.push_back(1); });
    eq.schedule(5, [&] { order.push_back(2); });
    eq.deschedule(a);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{2}));
}
