#include "heap.hh"

#include <cstring>

#include "sim/logging.hh"

namespace charon::heap
{

const char *
spaceName(Space space)
{
    switch (space) {
      case Space::Old:  return "old";
      case Space::Eden: return "eden";
      case Space::From: return "from";
      case Space::To:   return "to";
      case Space::None: return "none";
    }
    return "unknown";
}

ManagedHeap::ManagedHeap(const HeapConfig &cfg, const KlassTable &klasses)
    : cfg_(cfg),
      klasses_(klasses),
      arena_(cfg.base, cfg.heapBytes, klasses),
      cards_(/*covered_base=*/cfg.base,
             /*covered_bytes=*/static_cast<std::uint64_t>(
                 (1.0 - cfg.youngFraction) * cfg.heapBytes),
             /*storage_base=*/0), // fixed up below
      begMap_(cfg.base, cfg.heapBytes, 0),
      endMap_(cfg.base, cfg.heapBytes, 0),
      stats_("heap"),
      bytesAllocated_(&stats_, "bytes_allocated", "mutator bytes allocated"),
      objectsAllocated_(&stats_, "objects_allocated",
                        "mutator objects allocated"),
      allocFailures_(&stats_, "alloc_failures", "eden exhaustion events")
{
    CHARON_ASSERT(cfg.heapBytes % 4096 == 0, "heap size must be page sized");

    const std::uint64_t old_bytes = mem::alignDown(
        static_cast<std::uint64_t>((1.0 - cfg.youngFraction)
                                   * cfg.heapBytes),
        4096);
    const std::uint64_t young_bytes = cfg.heapBytes - old_bytes;
    // Eden : Survivor : Survivor = ratio : 1 : 1.
    const std::uint64_t survivor_bytes = mem::alignDown(
        young_bytes / static_cast<std::uint64_t>(cfg.survivorRatio + 2),
        4096);
    const std::uint64_t eden_bytes = young_bytes - 2 * survivor_bytes;

    mem::Addr p = cfg.base;
    old_ = {p, p + old_bytes, p};
    p += old_bytes;
    eden_ = {p, p + eden_bytes, p};
    p += eden_bytes;
    from_ = {p, p + survivor_bytes, p};
    p += survivor_bytes;
    to_ = {p, p + survivor_bytes, p};
    p += survivor_bytes;

    // Metadata VAs: begin bitmap, end bitmap, card table.
    const std::uint64_t bitmap_bytes = begMap_.storageBytes();
    begMap_ = MarkBitmap(cfg.base, cfg.heapBytes, p);
    p += bitmap_bytes;
    endMap_ = MarkBitmap(cfg.base, cfg.heapBytes, p);
    p += bitmap_bytes;
    cards_ = CardTable(old_.start, old_bytes, p);
    p += cards_.storageBytes();
    vaLimit_ = p;

    firstObjInCard_.assign(cards_.numCards(), 0);
}

Region &
ManagedHeap::region(Space space)
{
    switch (space) {
      case Space::Old:  return old_;
      case Space::Eden: return eden_;
      case Space::From: return from_;
      case Space::To:   return to_;
      case Space::None: break;
    }
    sim::panic("region(None)");
}

const Region &
ManagedHeap::region(Space space) const
{
    return const_cast<ManagedHeap *>(this)->region(space);
}

Space
ManagedHeap::spaceOf(mem::Addr addr) const
{
    if (old_.contains(addr))
        return Space::Old;
    if (eden_.contains(addr))
        return Space::Eden;
    if (from_.contains(addr))
        return Space::From;
    if (to_.contains(addr))
        return Space::To;
    return Space::None;
}

bool
ManagedHeap::inYoung(mem::Addr addr) const
{
    return eden_.contains(addr) || from_.contains(addr)
           || to_.contains(addr);
}

std::uint64_t
ManagedHeap::load64(mem::Addr addr) const
{
    return arena_.load64(addr);
}

void
ManagedHeap::store64(mem::Addr addr, std::uint64_t value)
{
    arena_.store64(addr, value);
}

void
ManagedHeap::copyObjectBytes(mem::Addr dst, mem::Addr src,
                             std::uint64_t bytes)
{
    arena_.copyBytes(dst, src, bytes);
}

std::uint64_t
ManagedHeap::sizeWordsFor(KlassId klass, std::uint64_t array_len) const
{
    return arena_.sizeWordsFor(klass, array_len);
}

mem::Addr
ManagedHeap::allocIn(Region &region, std::uint64_t size_words)
{
    const std::uint64_t bytes = size_words * 8;
    if (region.free() < bytes)
        return 0;
    mem::Addr obj = region.top;
    region.top += bytes;
    return obj;
}

mem::Addr
ManagedHeap::allocEden(KlassId klass, std::uint64_t array_len)
{
    std::uint64_t size_words = sizeWordsFor(klass, array_len);
    mem::Addr obj = allocIn(eden_, size_words);
    if (obj == 0) {
        ++allocFailures_;
        return 0;
    }
    arena_.writeHeader(obj, klass, size_words, array_len);
    bytesAllocated_ += static_cast<double>(size_words * 8);
    ++objectsAllocated_;
    return obj;
}

mem::Addr
ManagedHeap::allocTo(std::uint64_t size_words)
{
    if (gcAllocFaultFires())
        return 0;
    return allocIn(to_, size_words);
}

mem::Addr
ManagedHeap::allocOld(std::uint64_t size_words)
{
    if (gcAllocFaultFires())
        return 0;
    return allocOldRaw(size_words);
}

mem::Addr
ManagedHeap::allocOldRaw(std::uint64_t size_words)
{
    mem::Addr obj = allocIn(old_, size_words);
    if (obj != 0)
        noteOldAllocation(obj);
    return obj;
}

void
ManagedHeap::setGcAllocFault(std::uint64_t after, std::uint64_t count)
{
    gcFaultAfter_ = after;
    gcFaultRemaining_ = count;
    gcFaultArmed_ = count > 0;
}

bool
ManagedHeap::gcAllocFaultFires()
{
    if (!gcFaultArmed_)
        return false;
    if (gcFaultAfter_ > 0) {
        --gcFaultAfter_;
        return false;
    }
    --gcFaultRemaining_;
    if (gcFaultRemaining_ == 0)
        gcFaultArmed_ = false;
    return true;
}

mem::Addr
ManagedHeap::allocOldObject(KlassId klass, std::uint64_t array_len)
{
    std::uint64_t size_words = sizeWordsFor(klass, array_len);
    // The humongous/mutator path bypasses the GC alloc-fault arm: the
    // injected failure targets copy/promotion allocations inside a
    // collection.
    mem::Addr obj = allocOldRaw(size_words);
    if (obj == 0)
        return 0;
    arena_.writeHeader(obj, klass, size_words, array_len);
    bytesAllocated_ += static_cast<double>(size_words * 8);
    ++objectsAllocated_;
    return obj;
}

void
ManagedHeap::noteOldAllocation(mem::Addr obj)
{
    std::uint64_t card = cards_.cardIndex(obj);
    if (firstObjInCard_[card] == 0 || firstObjInCard_[card] > obj)
        firstObjInCard_[card] = obj;
}

KlassId
ManagedHeap::klassOf(mem::Addr obj) const
{
    return arena_.klassOf(obj);
}

std::uint64_t
ManagedHeap::sizeWords(mem::Addr obj) const
{
    return arena_.sizeWords(obj);
}

std::uint64_t
ManagedHeap::arrayLength(mem::Addr obj) const
{
    return arena_.arrayLength(obj);
}

std::uint64_t
ManagedHeap::refCount(mem::Addr obj) const
{
    return arena_.refCount(obj);
}

mem::Addr
ManagedHeap::refSlotAddr(mem::Addr obj, std::uint64_t i) const
{
    return arena_.refSlotAddr(obj, i);
}

mem::Addr
ManagedHeap::refAt(mem::Addr obj, std::uint64_t i) const
{
    return arena_.refAt(obj, i);
}

void
ManagedHeap::storeRef(mem::Addr obj, std::uint64_t i, mem::Addr target)
{
    store64(refSlotAddr(obj, i), target);
    // Unconditional card marking on old-generation stores, as in
    // HotSpot's card-table post-barrier.
    if (inOld(obj))
        cards_.dirty(obj);
}

void
ManagedHeap::setRefRaw(mem::Addr obj, std::uint64_t i, mem::Addr target)
{
    store64(refSlotAddr(obj, i), target);
}

int
ManagedHeap::age(mem::Addr obj) const
{
    return arena_.age(obj);
}

void
ManagedHeap::setAge(mem::Addr obj, int age)
{
    arena_.setAge(obj, age);
}

bool
ManagedHeap::isForwarded(mem::Addr obj) const
{
    return arena_.isForwarded(obj);
}

mem::Addr
ManagedHeap::forwardee(mem::Addr obj) const
{
    return arena_.forwardee(obj);
}

void
ManagedHeap::setForwarding(mem::Addr obj, mem::Addr to)
{
    arena_.setForwarding(obj, to);
}

void
ManagedHeap::clearForwarding(mem::Addr obj)
{
    arena_.clearForwarding(obj);
}

void
ManagedHeap::forEachObject(Space space,
                           const std::function<void(mem::Addr)> &fn) const
{
    const Region &r = region(space);
    mem::Addr p = r.start;
    while (p < r.top) {
        std::uint64_t size = sizeWords(p);
        CHARON_ASSERT(size >= 2, "corrupt object at 0x%llx",
                      static_cast<unsigned long long>(p));
        fn(p);
        p += size * 8;
    }
}

void
ManagedHeap::forEachRefSlot(mem::Addr obj,
                            const std::function<void(mem::Addr)> &fn) const
{
    std::uint64_t n = refCount(obj);
    for (std::uint64_t i = 0; i < n; ++i)
        fn(refSlotAddr(obj, i));
}

mem::Addr
ManagedHeap::firstObjectOnCard(std::uint64_t card_index) const
{
    mem::Addr card_start = cards_.cardStart(card_index);
    if (card_start >= old_.top)
        return 0;
    // Find the last recorded object start at or before the card start:
    // the entry recorded for this card may itself begin after the card
    // start, in which case the covering object starts in an earlier
    // card.
    std::uint64_t c = card_index;
    while (c > 0
           && (firstObjInCard_[c] == 0
               || firstObjInCard_[c] > card_start)) {
        --c;
    }
    mem::Addr p = firstObjInCard_[c];
    if (p == 0)
        return 0; // old generation empty below this card
    // Walk forward to the first object overlapping the target card;
    // allocation is contiguous, so the first object whose end extends
    // past the card start is it.
    while (p < old_.top) {
        mem::Addr obj_end = p + sizeWords(p) * 8;
        if (obj_end > card_start)
            return p;
        p = obj_end;
    }
    return 0;
}

void
ManagedHeap::rebuildBlockOffsets()
{
    std::fill(firstObjInCard_.begin(), firstObjInCard_.end(), 0);
    forEachObject(Space::Old, [this](mem::Addr obj) {
        noteOldAllocation(obj);
    });
}

void
ManagedHeap::resetSpace(Space space)
{
    region(space).reset();
    if (space == Space::Old)
        std::fill(firstObjInCard_.begin(), firstObjInCard_.end(), 0);
}

void
ManagedHeap::swapSurvivors()
{
    std::swap(from_, to_);
}

void
ManagedHeap::setOldTop(mem::Addr top)
{
    CHARON_ASSERT(top >= old_.start && top <= old_.end,
                  "old top out of range");
    old_.top = top;
}

void
ManagedHeap::verifySpace(Space space) const
{
    const Region &r = region(space);
    mem::Addr p = r.start;
    while (p < r.top) {
        KlassId kid = klassOf(p);
        CHARON_ASSERT(kid > 0 && kid < klasses_.size(),
                      "bad klass id %u at 0x%llx", kid,
                      static_cast<unsigned long long>(p));
        std::uint64_t size = sizeWords(p);
        CHARON_ASSERT(size >= 2 && p + size * 8 <= r.top,
                      "object at 0x%llx overruns space",
                      static_cast<unsigned long long>(p));
        // Every reference must be null or point at a valid space.
        std::uint64_t n = refCount(p);
        for (std::uint64_t i = 0; i < n; ++i) {
            mem::Addr t = refAt(p, i);
            CHARON_ASSERT(t == 0 || spaceOf(t) != Space::None,
                          "dangling ref in 0x%llx slot %llu -> 0x%llx",
                          static_cast<unsigned long long>(p),
                          static_cast<unsigned long long>(i),
                          static_cast<unsigned long long>(t));
        }
        p += size * 8;
    }
}

std::uint64_t
ManagedHeap::objectCount(Space space) const
{
    std::uint64_t n = 0;
    forEachObject(space, [&n](mem::Addr) { ++n; });
    return n;
}

} // namespace charon::heap
