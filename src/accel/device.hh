/**
 * @file
 * Timing model of the Charon processing units (Sections 4.1-4.5).
 *
 * Unit pools are modelled as shared issue-bandwidth resources
 * (FluidChannels): a Copy/Search unit issues one 256 B request per
 * logic-layer cycle, a Bitmap Count unit consumes one 64-bit word
 * pair per cycle, a Scan&Push unit issues one (16 B minimum) request
 * per cycle.  Each offloaded bucket concurrently occupies its unit
 * pool and the HMC resources its memory traffic crosses; the slowest
 * resource bounds the bucket, and the per-offload round trip (host ->
 * command queue -> unit -> response packet, Section 4.1) serializes
 * on the blocked host thread.
 *
 * Scheduling follows the paper: Copy/Search and Bitmap Count run on
 * the cube that houses their source data; Scan&Push runs on the
 * central cube (ablatably).  The "cpuSide" configuration (Figure 16)
 * places every pool beside the host memory controller instead, so all
 * traffic crosses the off-chip link.
 */

#ifndef CHARON_ACCEL_DEVICE_HH
#define CHARON_ACCEL_DEVICE_HH

#include <memory>
#include <vector>

#include "accel/backend.hh"
#include "fault/fault.hh"
#include "gc/trace.hh"
#include "hmc/hmc.hh"
#include "mem/fluid_channel.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/instrumentation.hh"
#include "sim/join.hh"

namespace charon::accel
{

/**
 * The near-memory accelerator backend: executes trace buckets on
 * behalf of blocked host threads.
 */
class CharonDevice : public OffloadBackend
{
  public:
    /**
     * @param instr instrumentation: every unit pool becomes a counter
     *        track (busy == active flows > 0), and address-translation
     *        traffic gets a "charon.tlb.remote" counter of lookups
     *        that crossed a spoke link to the unified TLB /
     *        bitmap-cache on the central cube (Section 4.6; the
     *        contention Figure 15 distributes away).
     */
    CharonDevice(sim::EventQueue &eq, hmc::HmcMemory &hmc,
                 const sim::SystemConfig &cfg,
                 const sim::Instrumentation &instr = {});

    sim::BackendKind kind() const override
    {
        return sim::BackendKind::Charon;
    }

    /** Charon implements every primitive of Table 1. */
    std::uint32_t capabilityMask() const override
    {
        return gc::kAllPrimsMask;
    }

    /**
     * Execute one aggregated bucket.
     * @param bucket the work (kind, cubes, bytes, invocation count)
     * @param bitmap_hit_rate measured bitmap-cache hit rate of the
     *        enclosing phase (Bitmap Count / Scan&Push mark RMWs)
     * @param done completion callback (the host thread unblocks)
     */
    void execBucket(const gc::Bucket &bucket, double bitmap_hit_rate,
                    mem::StreamCallback done) override;

    /**
     * Host-side cost of the bulk cache flush at GC start
     * (Section 4.6 "Effect on Host Cache"): LLC size over the
     * off-chip bandwidth.
     */
    sim::Tick gcPrologueTicks() const override;

    /** Round-trip offload overhead per invocation to @p cube. */
    sim::Tick offloadOverhead(int cube) const override;

    /** Unit-seconds of processing-unit activity (for energy). */
    double unitBusySeconds() const override;

    /** Offload request+response packet bytes issued so far. */
    double packetBytes() const override { return packetBytes_; }

    /** Busy units at active power, the rest of unit-time idling. */
    double unitEnergyJ(double gc_seconds) const override;

    double areaMm2() const override;

    const sim::CharonConfig &config() const { return cfg_.charon; }

    /**
     * Attach a fault engine (owned by the PlatformSim; may be null).
     * The device only consults it for TLB poisoning: a poisoned
     * fraction of unit address translations falls back to a
     * host-mediated walk, adding a link round trip to the average
     * probe latency of Scan&Push.
     */
    void setFaultEngine(const fault::FaultEngine *engine) override
    {
        fault_ = engine;
    }

  private:
    void execCopy(const gc::Bucket &b, mem::StreamCallback done);
    void execSearch(const gc::Bucket &b, mem::StreamCallback done);
    void execScanPush(const gc::Bucket &b, double hit_rate,
                      mem::StreamCallback done);
    void execBitmapCount(const gc::Bucket &b, double hit_rate,
                         mem::StreamCallback done);
    void execBitSweep(const gc::Bucket &b, mem::StreamCallback done);
    void execRefCount(const gc::Bucket &b, mem::StreamCallback done);

    /** Origin the unit's memory traffic departs from. */
    hmc::Origin unitOrigin(int cube) const;

    /** Pool channel for a kind on a cube. */
    mem::FluidChannel &pool(gc::PrimKind kind, int cube);

    sim::EventQueue &eq_;
    hmc::HmcMemory &hmc_;
    sim::SystemConfig cfg_;
    /** Fan-in joins for multi-resource buckets. */
    sim::JoinPool joins_;

    // Per-cube pools (index = cube); Scan&Push has one pool at the
    // central cube unless placed locally.
    std::vector<std::unique_ptr<mem::FluidChannel>> copySearchPools_;
    std::vector<std::unique_ptr<mem::FluidChannel>> bitmapCountPools_;
    std::vector<std::unique_ptr<mem::FluidChannel>> scanPushPools_;

    double packetBytes_ = 0;

    const fault::FaultEngine *fault_ = nullptr;

    sim::Timeline *timeline_ = nullptr;
    sim::Timeline::TrackId tlbTrack_ = 0;
    std::uint64_t remoteTlbLookups_ = 0;
};

} // namespace charon::accel

#endif // CHARON_ACCEL_DEVICE_HH
