#include "klass.hh"

#include "sim/logging.hh"

namespace charon::heap
{

const char *
klassKindName(KlassKind kind)
{
    switch (kind) {
      case KlassKind::Instance:            return "instanceKlass";
      case KlassKind::InstanceMirror:      return "instanceMirrorKlass";
      case KlassKind::InstanceClassLoader: return "instanceClassLoaderKlass";
      case KlassKind::InstanceRef:         return "instanceRefKlass";
      case KlassKind::ObjArray:            return "objArrayKlass";
      case KlassKind::TypeArrayBoolean:    return "typeArrayKlass<bool>";
      case KlassKind::TypeArrayByte:       return "typeArrayKlass<byte>";
      case KlassKind::TypeArrayChar:       return "typeArrayKlass<char>";
      case KlassKind::TypeArrayShort:      return "typeArrayKlass<short>";
      case KlassKind::TypeArrayInt:        return "typeArrayKlass<int>";
      case KlassKind::TypeArrayLong:       return "typeArrayKlass<long>";
      case KlassKind::TypeArrayFloat:      return "typeArrayKlass<float>";
      case KlassKind::TypeArrayDouble:     return "typeArrayKlass<double>";
      case KlassKind::ConstantPool:        return "constantPool";
      case KlassKind::MethodData:          return "methodData";
    }
    return "unknown";
}

bool
isTypeArrayKind(KlassKind kind)
{
    switch (kind) {
      case KlassKind::TypeArrayBoolean:
      case KlassKind::TypeArrayByte:
      case KlassKind::TypeArrayChar:
      case KlassKind::TypeArrayShort:
      case KlassKind::TypeArrayInt:
      case KlassKind::TypeArrayLong:
      case KlassKind::TypeArrayFloat:
      case KlassKind::TypeArrayDouble:
        return true;
      default:
        return false;
    }
}

int
typeArrayElemBytes(KlassKind kind)
{
    switch (kind) {
      case KlassKind::TypeArrayBoolean:
      case KlassKind::TypeArrayByte:
        return 1;
      case KlassKind::TypeArrayChar:
      case KlassKind::TypeArrayShort:
        return 2;
      case KlassKind::TypeArrayInt:
      case KlassKind::TypeArrayFloat:
        return 4;
      case KlassKind::TypeArrayLong:
      case KlassKind::TypeArrayDouble:
        return 8;
      default:
        sim::panic("typeArrayElemBytes on non-array kind %s",
                   klassKindName(kind));
    }
}

std::uint32_t
Klass::instanceWords() const
{
    // 2 header words + ref slots + payload.
    return 2 + refFields + payloadWords;
}

bool
Klass::hasRefs() const
{
    switch (kind) {
      case KlassKind::Instance:
      case KlassKind::InstanceMirror:
      case KlassKind::InstanceClassLoader:
      case KlassKind::InstanceRef:
        return refFields > 0;
      case KlassKind::ObjArray:
        return true;
      default:
        return false;
    }
}

bool
Klass::acceleratable() const
{
    // Charon handles the dominant data-class layouts: plain instances,
    // reference arrays and primitive arrays.  Mirrors, class loaders,
    // Reference subclasses and the metadata blobs keep their special
    // host-side processing (Section 4.4).
    switch (kind) {
      case KlassKind::Instance:
      case KlassKind::ObjArray:
      case KlassKind::TypeArrayBoolean:
      case KlassKind::TypeArrayByte:
      case KlassKind::TypeArrayChar:
      case KlassKind::TypeArrayShort:
      case KlassKind::TypeArrayInt:
      case KlassKind::TypeArrayLong:
      case KlassKind::TypeArrayFloat:
      case KlassKind::TypeArrayDouble:
        return true;
      default:
        return false;
    }
}

KlassTable::KlassTable()
{
    // Reserve id 0 as invalid.
    klasses_.push_back(Klass{0, KlassKind::Instance, "<invalid>", 0, 0});
    objArrayId_ = define("Object[]", KlassKind::ObjArray);
    byteArrayId_ = define("byte[]", KlassKind::TypeArrayByte);
    intArrayId_ = define("int[]", KlassKind::TypeArrayInt);
    longArrayId_ = define("long[]", KlassKind::TypeArrayLong);
    doubleArrayId_ = define("double[]", KlassKind::TypeArrayDouble);
    fillerId_ = defineInstance("<filler>", 0, 0);
}

KlassId
KlassTable::defineInstance(std::string name, std::uint32_t ref_fields,
                           std::uint32_t payload_words, KlassKind kind)
{
    CHARON_ASSERT(kind == KlassKind::Instance
                      || kind == KlassKind::InstanceMirror
                      || kind == KlassKind::InstanceClassLoader
                      || kind == KlassKind::InstanceRef,
                  "defineInstance with non-instance kind %s",
                  klassKindName(kind));
    Klass k;
    k.id = static_cast<KlassId>(klasses_.size());
    k.kind = kind;
    k.name = std::move(name);
    k.refFields = ref_fields;
    k.payloadWords = payload_words;
    klasses_.push_back(std::move(k));
    return klasses_.back().id;
}

KlassId
KlassTable::define(std::string name, KlassKind kind)
{
    Klass k;
    k.id = static_cast<KlassId>(klasses_.size());
    k.kind = kind;
    k.name = std::move(name);
    klasses_.push_back(std::move(k));
    return klasses_.back().id;
}

const Klass &
KlassTable::get(KlassId id) const
{
    CHARON_ASSERT(id > 0 && id < klasses_.size(), "bad klass id %u", id);
    return klasses_[id];
}

} // namespace charon::heap
