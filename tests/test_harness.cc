/**
 * @file
 * Tests for the experiment harness: the persistent trace cache
 * (hit/miss, version invalidation, corruption fallback, collision
 * rejection), the ExperimentRunner's determinism across thread
 * counts, functional-run sharing, and OOM graceful degradation.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>

#include "gc/trace_io.hh"
#include "harness/experiment_runner.hh"
#include "harness/repo_root.hh"
#include "harness/trace_cache.hh"
#include "workload/catalog.hh"

using namespace charon;
using namespace charon::harness;

namespace
{

/** A unique per-test cache directory under the gtest temp root. */
std::string
freshDir(const char *name)
{
    auto dir = std::filesystem::path(::testing::TempDir())
               / (std::string("charon-harness-") + name);
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir.string();
}

/** A tiny synthetic run: cache tests need bytes, not realism. */
FunctionalRun
syntheticRun()
{
    FunctionalRun run;
    run.cubeShift = 26;
    run.gcsMinor = 7;
    run.gcsMajor = 2;
    run.markCycles = 1;
    run.allocatedBytes = 123456789;
    run.mutatorInstructions = 987654321;

    gc::GcTrace gc;
    gc.major = true;
    gc.liveObjects = 42;
    gc::PhaseTrace phase;
    phase.kind = gc::PhaseKind::MajorCompact;
    phase.bitmapCacheHitRate = 0.5;
    gc::ThreadWork work;
    work.glueInstructions = 100;
    gc::Bucket b;
    b.kind = gc::PrimKind::Copy;
    b.invocations = 3;
    b.seqReadBytes = 1024;
    b.writeBytes = 1024;
    work.buckets.push_back(b);
    phase.addThread(work);
    gc.phases.push_back(phase);
    run.trace.gcs.push_back(gc);
    run.trace.mutatorInstructions = {10, 20};
    return run;
}

FunctionalKey
syntheticKey()
{
    FunctionalKey key;
    key.workload = "KM";
    key.heapBytes = 64 * sim::kMiB;
    key.seed = 3;
    return key;
}

std::string
traceBytes(const gc::RunTrace &trace)
{
    std::ostringstream os;
    gc::writeTrace(os, trace);
    return os.str();
}

} // namespace

TEST(TraceCache, MissThenHitRoundTrip)
{
    TraceCache cache(freshDir("roundtrip"));
    const FunctionalKey key = syntheticKey();
    FunctionalRun out;
    EXPECT_FALSE(cache.load(key, out)) << "empty cache must miss";

    const FunctionalRun run = syntheticRun();
    ASSERT_TRUE(cache.store(key, run));
    ASSERT_TRUE(cache.load(key, out));
    EXPECT_EQ(out.cubeShift, run.cubeShift);
    EXPECT_EQ(out.oom, run.oom);
    EXPECT_EQ(out.gcsMinor, run.gcsMinor);
    EXPECT_EQ(out.gcsMajor, run.gcsMajor);
    EXPECT_EQ(out.markCycles, run.markCycles);
    EXPECT_EQ(out.allocatedBytes, run.allocatedBytes);
    EXPECT_EQ(out.mutatorInstructions, run.mutatorInstructions);
    EXPECT_EQ(traceBytes(out.trace), traceBytes(run.trace));
}

TEST(TraceCache, DistinctKeysAreDistinctEntries)
{
    TraceCache cache(freshDir("keys"));
    FunctionalKey a = syntheticKey();
    FunctionalKey b = a;
    b.seed = 4;
    FunctionalKey c = a;
    c.collector = CollectorKind::G1;
    EXPECT_NE(cache.path(a), cache.path(b));
    EXPECT_NE(cache.path(a), cache.path(c));

    ASSERT_TRUE(cache.store(a, syntheticRun()));
    FunctionalRun out;
    EXPECT_FALSE(cache.load(b, out));
    EXPECT_FALSE(cache.load(c, out));
    EXPECT_TRUE(cache.load(a, out));
}

TEST(TraceCache, HashCollisionRejectedByHeaderCheck)
{
    // Simulate a file-name collision (or a hand-renamed file): the
    // stored header's key fields must still match the request.
    TraceCache cache(freshDir("collision"));
    FunctionalKey a = syntheticKey();
    FunctionalKey b = a;
    b.seed = 99;
    ASSERT_TRUE(cache.store(a, syntheticRun()));
    std::filesystem::copy_file(cache.path(a), cache.path(b));
    FunctionalRun out;
    EXPECT_FALSE(cache.load(b, out));
}

TEST(TraceCache, VersionBumpInvalidates)
{
    TraceCache cache(freshDir("version"));
    const FunctionalKey key = syntheticKey();
    ASSERT_TRUE(cache.store(key, syntheticRun()));

    // Flip the stored format version in place (a little-endian u64
    // right after the 8-byte magic), as if the entry were written by
    // a build with a different kTraceFormatVersion.
    {
        std::fstream f(cache.path(key),
                       std::ios::binary | std::ios::in | std::ios::out);
        ASSERT_TRUE(f.is_open());
        f.seekp(8);
        std::uint64_t bogus = gc::kTraceFormatVersion + 1;
        char bytes[8];
        for (int i = 0; i < 8; ++i)
            bytes[i] = static_cast<char>((bogus >> (8 * i)) & 0xff);
        f.write(bytes, 8);
    }
    FunctionalRun out;
    EXPECT_FALSE(cache.load(key, out))
        << "a version mismatch must read as a miss";
}

TEST(TraceCache, CorruptedFileIsMiss)
{
    TraceCache cache(freshDir("corrupt"));
    const FunctionalKey key = syntheticKey();
    ASSERT_TRUE(cache.store(key, syntheticRun()));

    // Truncate the payload: the header parses, the trace does not.
    auto size = std::filesystem::file_size(cache.path(key));
    std::filesystem::resize_file(cache.path(key), size - 9);
    FunctionalRun out;
    EXPECT_FALSE(cache.load(key, out));

    // Garbage from the first byte: not even the magic matches.
    {
        std::ofstream f(cache.path(key), std::ios::binary);
        f << "this is not a cache entry";
    }
    EXPECT_FALSE(cache.load(key, out));

    // The cache self-heals: a store over the bad entry hits again.
    ASSERT_TRUE(cache.store(key, syntheticRun()));
    EXPECT_TRUE(cache.load(key, out));
}

TEST(TraceCache, DisabledCacheNeverHits)
{
    TraceCache cache{std::string()};
    EXPECT_FALSE(cache.enabled());
    FunctionalRun out;
    EXPECT_FALSE(cache.store(syntheticKey(), syntheticRun()));
    EXPECT_FALSE(cache.load(syntheticKey(), out));
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    std::mutex mu;
    std::multiset<std::size_t> seen;
    parallelFor(4, 1000, [&](std::size_t i) {
        std::lock_guard<std::mutex> lock(mu);
        seen.insert(i);
    });
    ASSERT_EQ(seen.size(), 1000u);
    for (std::size_t i = 0; i < 1000; ++i)
        EXPECT_EQ(seen.count(i), 1u);
}

namespace
{

/** Two cheap workloads x three platforms, heap shrunk for speed. */
std::vector<Cell>
determinismCells()
{
    std::vector<Cell> cells;
    for (const char *name : {"CC", "ALS"}) {
        std::uint64_t heap =
            workload::findWorkload(name).minHeapBytes * 2;
        for (auto kind : {sim::PlatformKind::HostDdr4,
                          sim::PlatformKind::HostHmc,
                          sim::PlatformKind::CharonNmp}) {
            Cell c;
            c.key.workload = name;
            c.key.heapBytes = heap;
            c.platform = kind;
            cells.push_back(c);
        }
    }
    return cells;
}

} // namespace

TEST(ExperimentRunner, ParallelMatchesSerialBitForBit)
{
    const auto cells = determinismCells();
    // No cache directory: both runners do the functional runs
    // themselves, so this also exercises mutator determinism.
    ExperimentRunner serial(RunnerConfig{1, std::string()});
    ExperimentRunner parallel(RunnerConfig{4, std::string()});
    auto a = serial.run(cells);
    auto b = parallel.run(cells);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE(cells[i].key.str());
        ASSERT_TRUE(a[i].ok);
        ASSERT_TRUE(b[i].ok);
        EXPECT_EQ(a[i].timing.gcSeconds, b[i].timing.gcSeconds);
        EXPECT_EQ(a[i].timing.minorSeconds, b[i].timing.minorSeconds);
        EXPECT_EQ(a[i].timing.majorSeconds, b[i].timing.majorSeconds);
        EXPECT_EQ(a[i].timing.dramBytes, b[i].timing.dramBytes);
        EXPECT_EQ(a[i].timing.avgGcBandwidthGBs,
                  b[i].timing.avgGcBandwidthGBs);
        EXPECT_EQ(a[i].timing.localAccessFraction,
                  b[i].timing.localAccessFraction);
        EXPECT_EQ(a[i].timing.totalEnergyJ(),
                  b[i].timing.totalEnergyJ());
        EXPECT_EQ(traceBytes(a[i].run->trace),
                  traceBytes(b[i].run->trace));
    }
}

TEST(ExperimentRunner, CellsOfOneKeyShareOneFunctionalRun)
{
    std::uint64_t heap = workload::findWorkload("CC").minHeapBytes * 2;
    std::vector<Cell> cells;
    for (auto kind : {sim::PlatformKind::HostDdr4,
                      sim::PlatformKind::HostHmc,
                      sim::PlatformKind::CharonNmp}) {
        Cell c;
        c.key.workload = "CC";
        c.key.heapBytes = heap;
        c.platform = kind;
        cells.push_back(c);
    }
    ExperimentRunner runner(RunnerConfig{2, std::string()});
    auto results = runner.run(cells);
    ASSERT_TRUE(results[0].ok);
    EXPECT_EQ(results[0].run.get(), results[1].run.get());
    EXPECT_EQ(results[0].run.get(), results[2].run.get());
}

TEST(ExperimentRunner, WarmCacheReproducesColdTimings)
{
    const std::string dir = freshDir("runner-cache");
    std::uint64_t heap = workload::findWorkload("CC").minHeapBytes * 2;
    Cell c;
    c.key.workload = "CC";
    c.key.heapBytes = heap;
    c.platform = sim::PlatformKind::CharonNmp;

    ExperimentRunner cold(RunnerConfig{1, dir});
    auto a = cold.run({c});
    ASSERT_TRUE(a[0].ok);

    // A fresh runner on the same directory must hit the disk cache;
    // prove the hit at the cache layer, then the timing equality.
    TraceCache cache(dir);
    FunctionalRun entry;
    EXPECT_TRUE(
        cache.load(ExperimentRunner::resolve(c.key), entry));

    ExperimentRunner warm(RunnerConfig{1, dir});
    auto b = warm.run({c});
    ASSERT_TRUE(b[0].ok);
    EXPECT_EQ(a[0].timing.gcSeconds, b[0].timing.gcSeconds);
    EXPECT_EQ(a[0].timing.totalEnergyJ(), b[0].timing.totalEnergyJ());
    EXPECT_EQ(a[0].run->gcsMinor, b[0].run->gcsMinor);
}

TEST(ExperimentRunner, OomCellFailsGracefullyOthersComplete)
{
    const auto &params = workload::findWorkload("CC");
    Cell oom;
    oom.key.workload = "CC";
    oom.key.heapBytes = params.minHeapBytes / 3; // guaranteed OOM
    oom.platform = sim::PlatformKind::CharonNmp;

    Cell good;
    good.key.workload = "CC";
    good.key.heapBytes = params.minHeapBytes * 2;
    good.platform = sim::PlatformKind::CharonNmp;

    ExperimentRunner runner(RunnerConfig{2, std::string()});
    auto results = runner.run({oom, good});
    EXPECT_FALSE(results[0].ok);
    EXPECT_TRUE(results[0].oom);
    EXPECT_NE(results[0].error.find("OOM"), std::string::npos);
    ASSERT_TRUE(results[1].ok) << "the OOM cell must not poison the "
                                  "rest of the run";
    EXPECT_GT(results[1].timing.gcSeconds, 0.0);
}

TEST(ExperimentRunner, OomRunsAreCachedToo)
{
    const std::string dir = freshDir("oom-cache");
    const auto &params = workload::findWorkload("CC");
    Cell oom;
    oom.key.workload = "CC";
    oom.key.heapBytes = params.minHeapBytes / 3;
    oom.platform = sim::PlatformKind::HostDdr4;

    ExperimentRunner runner(RunnerConfig{1, dir});
    auto results = runner.run({oom});
    EXPECT_FALSE(results[0].ok);

    TraceCache cache(dir);
    FunctionalRun entry;
    ASSERT_TRUE(cache.load(ExperimentRunner::resolve(oom.key), entry));
    EXPECT_TRUE(entry.oom);
}

// --- Timeline integration -------------------------------------------

TEST(ExperimentRunner, DisabledTimelineCostsNothing)
{
    // The zero-overhead contract: with RunnerConfig::timeline false
    // (the default), a full record+replay sweep must never construct
    // a Timeline or record a single event.
    const auto cells = determinismCells();
    const std::uint64_t instances =
        sim::Timeline::totalInstancesCreated();
    const std::uint64_t events = sim::Timeline::totalEventsRecorded();

    ExperimentRunner runner(RunnerConfig{2, std::string()});
    auto results = runner.run(cells);
    for (const auto &res : results)
        ASSERT_TRUE(res.ok);

    EXPECT_EQ(sim::Timeline::totalInstancesCreated(), instances);
    EXPECT_EQ(sim::Timeline::totalEventsRecorded(), events);
    EXPECT_TRUE(runner.timelines().empty());
}

TEST(ExperimentRunner, TimelineIsIdenticalAtAnyJobCount)
{
    // Each cell's replay is single-threaded and deterministic, and the
    // exporter merges per-cell timelines in submission order — so the
    // merged JSON must be byte-identical between --jobs=1 and
    // --jobs=8.
    const auto cells = determinismCells();
    auto traced = [&](int jobs) {
        ExperimentRunner runner(
            RunnerConfig{jobs, std::string(), true});
        auto results = runner.run(cells);
        for (const auto &res : results)
            EXPECT_TRUE(res.ok);
        EXPECT_EQ(runner.timelines().size(), cells.size());
        std::ostringstream os;
        std::vector<const sim::Timeline *> list;
        for (const auto &tl : runner.timelines())
            list.push_back(tl.get());
        sim::Timeline::writeChromeTrace(os, list);
        return os.str();
    };
    const std::string serial = traced(1);
    const std::string parallel = traced(8);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
}

TEST(ExperimentRunner, TimelineCoversEveryInstrumentedLayer)
{
    // One Charon replay must produce the GC-phase track, per-thread
    // primitive spans, DRAM/TSV counter tracks, unit-pool tracks, and
    // the host stall counter.
    std::uint64_t heap = workload::findWorkload("CC").minHeapBytes * 2;
    Cell c;
    c.key.workload = "CC";
    c.key.heapBytes = heap;
    c.platform = sim::PlatformKind::CharonNmp;
    ExperimentRunner runner(RunnerConfig{1, std::string(), true});
    auto results = runner.run({c});
    ASSERT_TRUE(results[0].ok);
    ASSERT_EQ(runner.timelines().size(), 1u);
    const sim::Timeline &tl = *runner.timelines()[0];
    std::set<std::string> tracks;
    for (sim::Timeline::TrackId t = 0; t < tl.trackCount(); ++t)
        tracks.insert(tl.trackName(t));
    EXPECT_TRUE(tracks.count("gc"));
    EXPECT_TRUE(tracks.count("thread 0"));
    EXPECT_TRUE(tracks.count("host.memstall"));
    EXPECT_TRUE(tracks.count("hmc.cube0.tsv"));
    EXPECT_TRUE(tracks.count("charon.cs0"));
    EXPECT_FALSE(tl.events().empty());
}

TEST(ExperimentRunner, RollupMatchesBreakdownExactly)
{
    // The roll-up is built from the same accumulators as the
    // breakdown, so per-kind sums must agree to 1e-9, not just
    // approximately.
    const auto cells = determinismCells();
    ExperimentRunner runner(RunnerConfig{2, std::string()});
    auto results = runner.run(cells);
    for (std::size_t i = 0; i < cells.size(); ++i) {
        SCOPED_TRACE(cells[i].key.str());
        ASSERT_TRUE(results[i].ok);
        const auto &timing = results[i].timing;
        gc::RunRollup rollup = timing.rollup();
        platform::PrimBreakdown b = timing.breakdown();
        EXPECT_NEAR(rollup.totalByKind(gc::PrimKind::Copy).seconds,
                    b.copy, 1e-9);
        EXPECT_NEAR(rollup.totalByKind(gc::PrimKind::Search).seconds,
                    b.search, 1e-9);
        EXPECT_NEAR(rollup.totalByKind(gc::PrimKind::ScanPush).seconds,
                    b.scanPush, 1e-9);
        EXPECT_NEAR(
            rollup.totalByKind(gc::PrimKind::BitmapCount).seconds,
            b.bitmapCount, 1e-9);
        EXPECT_NEAR(rollup.glueSeconds(), b.glue, 1e-9);
        // Wall-clock: the phases partition each pause exactly on
        // host platforms; Charon pauses also carry the GC-prologue
        // cache flush, which belongs to no phase.
        const bool charon =
            cells[i].platform == sim::PlatformKind::CharonNmp;
        for (const auto &gc_timing : timing.gcs) {
            double wall = 0;
            for (const auto &phase : gc_timing.rollup.phases)
                wall += phase.wallSeconds;
            if (charon)
                EXPECT_LE(wall, gc_timing.seconds + 1e-9);
            else
                EXPECT_NEAR(wall, gc_timing.seconds, 1e-9);
        }
    }
}

// ---------------------------------------------------------------------
// findRepoRoot: artifact-path discovery for out-of-tree build dirs.
// ---------------------------------------------------------------------

TEST(RepoRoot, RoadmapAncestorBeatsNestedGitCheckout)
{
    // The regression shape: a fetched dependency's checkout under
    // build-rel/_deps/<pkg>-src/ carries its own .git, and the bench
    // used to stop there instead of climbing to the real root.
    namespace fs = std::filesystem;
    fs::path root = freshDir("reporoot-nested");
    std::ofstream(root / "ROADMAP.md") << "north star\n";
    fs::path depsSrc = root / "build-rel" / "_deps" / "x-src";
    fs::create_directories(depsSrc / ".git");
    fs::path start = depsSrc / "inner";
    fs::create_directories(start);
    EXPECT_EQ(findRepoRoot(start), root);
    // Out-of-tree flavor of the same walk: build-*/ directly under
    // the root must also land on the root, not on build-*/ itself.
    fs::path buildDir = root / "build-asan";
    fs::create_directories(buildDir);
    EXPECT_EQ(findRepoRoot(buildDir), root);
}

TEST(RepoRoot, GitIsOnlyAFallbackWithoutRoadmap)
{
    namespace fs = std::filesystem;
    fs::path root = freshDir("reporoot-gitonly");
    fs::create_directories(root / ".git");
    fs::path start = root / "build" / "bench";
    fs::create_directories(start);
    EXPECT_EQ(findRepoRoot(start), root);

    // A gitlink *file* (worktree / submodule) counts the same as a
    // .git directory.
    fs::path wt = freshDir("reporoot-gitfile");
    std::ofstream(wt / ".git") << "gitdir: elsewhere\n";
    fs::path wtStart = wt / "sub";
    fs::create_directories(wtStart);
    EXPECT_EQ(findRepoRoot(wtStart), wt);

    // The *first* .git seen wins among fallbacks: a nested checkout
    // with no ROADMAP.md above it is its own root.
    fs::path nested = root / "vendor" / "dep";
    fs::create_directories(nested / ".git");
    EXPECT_EQ(findRepoRoot(nested), nested);
}

TEST(RepoRoot, NoMarkersReturnsStart)
{
    namespace fs = std::filesystem;
    fs::path bare = freshDir("reporoot-bare");
    fs::path start = bare / "deep" / "er";
    fs::create_directories(start);
    EXPECT_EQ(findRepoRoot(start), start);
}
