#include "bitmap.hh"

#include <bit>

#include "sim/logging.hh"

namespace charon::heap
{

MarkBitmap::MarkBitmap(mem::Addr heap_base, std::uint64_t heap_bytes,
                       mem::Addr storage_base)
    : heapBase_(heap_base),
      storageBase_(storage_base),
      numBits_(heap_bytes / 8),
      words_(mem::divCeil(numBits_, 64), 0)
{
    CHARON_ASSERT(heap_bytes % 8 == 0,
                  "bitmap range must be word aligned");
}

void
MarkBitmap::setBit(std::uint64_t bit)
{
    CHARON_ASSERT(bit < numBits_, "bit %llu out of range",
                  static_cast<unsigned long long>(bit));
    words_[bit >> 6] |= (1ull << (bit & 63));
}

void
MarkBitmap::clearBit(std::uint64_t bit)
{
    CHARON_ASSERT(bit < numBits_, "bit %llu out of range",
                  static_cast<unsigned long long>(bit));
    words_[bit >> 6] &= ~(1ull << (bit & 63));
}

bool
MarkBitmap::testBit(std::uint64_t bit) const
{
    CHARON_ASSERT(bit < numBits_, "bit %llu out of range",
                  static_cast<unsigned long long>(bit));
    return (words_[bit >> 6] >> (bit & 63)) & 1;
}

void
MarkBitmap::clearAll()
{
    std::fill(words_.begin(), words_.end(), 0);
}

std::uint64_t
MarkBitmap::word(std::uint64_t index) const
{
    CHARON_ASSERT(index < words_.size(), "word index out of range");
    return words_[index];
}

std::uint64_t
MarkBitmap::findNextSet(std::uint64_t from, std::uint64_t limit) const
{
    if (from >= limit)
        return limit;
    std::uint64_t word_idx = from >> 6;
    std::uint64_t w = words_[word_idx] & (~0ull << (from & 63));
    while (true) {
        if (w != 0) {
            std::uint64_t bit = (word_idx << 6)
                                + static_cast<std::uint64_t>(
                                    std::countr_zero(w));
            return bit < limit ? bit : limit;
        }
        ++word_idx;
        if ((word_idx << 6) >= limit)
            return limit;
        w = words_[word_idx];
    }
}

std::uint64_t
MarkBitmap::countSet(std::uint64_t from, std::uint64_t limit) const
{
    std::uint64_t count = 0;
    std::uint64_t bit = from;
    while (bit < limit) {
        std::uint64_t word_idx = bit >> 6;
        std::uint64_t w = words_[word_idx];
        // Mask bits below 'bit' and at/after 'limit'.
        w &= ~0ull << (bit & 63);
        std::uint64_t word_end = (word_idx + 1) << 6;
        if (limit < word_end)
            w &= (limit & 63) ? (~0ull >> (64 - (limit & 63))) : 0ull;
        count += static_cast<std::uint64_t>(std::popcount(w));
        bit = word_end;
    }
    return count;
}

std::uint64_t
liveWordsInRange(const MarkBitmap &beg, const MarkBitmap &end,
                 std::uint64_t start_bit, std::uint64_t end_bit,
                 const std::function<void(mem::Addr)> &bitmap_reads)
{
    // Faithful rendering of Figure 8: scan the begin map; for every
    // begin bit search forward for the matching end bit; an object
    // whose end bit lies at or beyond the range end contributes
    // nothing (and terminates the walk, as in the paper's pseudocode).
    //
    // The walk is bit-granular but we only report one storage-byte
    // read per visited byte to the bitmap-cache listener, mirroring
    // what the hardware would fetch.
    std::uint64_t count = 0;
    std::uint64_t last_beg_byte = ~0ull, last_end_byte = ~0ull;
    auto touch = [&](const MarkBitmap &map, std::uint64_t bit,
                     std::uint64_t &last) {
        if (!bitmap_reads)
            return;
        std::uint64_t byte = bit >> 3;
        if (byte != last) {
            bitmap_reads(map.storageAddrOfBit(bit));
            last = byte;
        }
    };

    std::uint64_t beg_idx = start_bit;
    while (beg_idx < end_bit) {
        touch(beg, beg_idx, last_beg_byte);
        if (beg.testBit(beg_idx)) {
            std::uint64_t end_idx = beg_idx;
            bool found = false;
            while (end_idx < end_bit) {
                touch(end, end_idx, last_end_byte);
                if (end.testBit(end_idx)) {
                    count += end_idx - beg_idx + 1;
                    beg_idx = end_idx;
                    found = true;
                    break;
                }
                ++end_idx;
            }
            if (!found)
                break; // object extends past the range: contributes 0
        }
        ++beg_idx;
    }
    return count;
}

} // namespace charon::heap
