/**
 * @file
 * charon-explore: design-space exploration over the Charon
 * configuration space.
 *
 * Declares a parameter space (a preset or ad-hoc --axis flags), walks
 * it with one of three search strategies — exhaustive grid, seeded
 * random sampling, or adaptive successive halving — through the
 * experiment harness, journals every evaluated cell to a JSONL file
 * so interrupted sweeps resume without recomputation, and reports the
 * Pareto frontier of GC speedup against unit area and GC energy.
 *
 *   charon-explore --preset fig13            # Figure 13, journalled
 *   charon-explore --preset frontier --search halving
 *   charon-explore --axis units=2,4,8 --axis tsv-gbs=160,320,640
 *   charon-explore --preset smoke --pareto-csv pareto.csv
 *
 * Determinism: results are bit-identical at any --jobs, whether cells
 * come from the journal, the trace cache, or fresh simulation.
 */

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "dse/explorer.hh"
#include "dse/journal.hh"
#include "dse/param_space.hh"
#include "dse/presets.hh"
#include "harness/options.hh"
#include "harness/result_sink.hh"

using namespace charon;

int
main(int argc, char **argv)
{
    harness::Options opt;
    opt.helpHeader =
        "charon-explore: sweep the Charon design space and report "
        "the\nspeedup/area/energy Pareto frontier (see EXPERIMENTS.md)";

    std::string preset;
    std::vector<std::string> axisSpecs;
    std::string workload;
    std::string backend;
    std::uint64_t heapMib = 0;
    std::string search = "grid";
    int samples = 16;
    std::uint64_t searchSeed = 7;
    int screenGcs = 4;
    int finalists = 4;
    std::string journalPath;
    bool noJournal = false;
    std::string paretoCsv;
    bool listAxes = false;

    opt.flag("--preset", &preset,
             "canned sweep: fig13 | fig15 | frontier |\nsmoke");
    opt.flag(
        "--axis",
        [&axisSpecs](const std::string &v) {
            axisSpecs.push_back(v);
            return true;
        },
        "add a sweep axis (repeatable); names\nwith --list-axes",
        "NAME=V1,V2,...");
    opt.flag("--workload", &workload,
             "base workload of the sweep (default KM)");
    opt.flag("--heap-mib", &heapMib,
             "base max heap in MiB (0 = catalog\ndefault)");
    opt.flag("--backend", &backend,
             "base offload backend: nmp | igpu |\ncxl | host "
             "(default nmp)");
    opt.flag("--search", &search,
             "grid | random | halving (default grid)");
    opt.flag("--samples", &samples,
             "random search: points to sample\n(default 16)");
    opt.flag("--search-seed", &searchSeed,
             "random search: sampling seed (default 7)");
    opt.flag("--screen-gcs", &screenGcs,
             "halving: collections replayed per\nscreen (default 4)");
    opt.flag("--finalists", &finalists,
             "halving: survivors promoted to full\nruns (default 4)");
    opt.flag("--journal", &journalPath,
             "cell journal path (default\n<preset|sweep>.dse.jsonl)");
    opt.flag("--no-journal", &noJournal,
             "do not read or write a journal");
    opt.flag("--pareto-csv", &paretoCsv,
             "write the Pareto frontier as CSV here");
    opt.flag("--list-axes", &listAxes,
             "list the sweepable axes and exit");
    if (!harness::parseOptions(argc, argv, opt))
        return 2;

    if (listAxes) {
        std::printf("sweepable axes (--axis NAME=V1,V2,...):\n");
        for (const auto &[name, help] : dse::ParamSpace::axisHelp())
            std::printf("  %-22s %s\n", name.c_str(), help.c_str());
        return 0;
    }

    auto usageError = [&](const std::string &msg) {
        std::fprintf(stderr, "%s: %s\n", argv[0], msg.c_str());
        return 2;
    };
    if (search != "grid" && search != "random" && search != "halving")
        return usageError("unknown --search '" + search
                          + "' (grid | random | halving)");
    const bool figPreset = preset == "fig13" || preset == "fig15";
    if (!preset.empty() && !figPreset && preset != "frontier"
        && preset != "smoke")
        return usageError("unknown --preset '" + preset
                          + "' (fig13 | fig15 | frontier | smoke)");

    if (journalPath.empty())
        journalPath =
            (preset.empty() ? std::string("sweep") : preset)
            + ".dse.jsonl";
    dse::SweepJournal journal(noJournal ? std::string()
                                        : journalPath);

    harness::ExperimentRunner runner(opt.runnerConfig());
    dse::Explorer explorer(runner, journal);
    harness::Report report(opt);

    // Ctrl-C / SIGTERM stop the sweep at a batch boundary with every
    // completed cell journalled; rerunning the same command resumes.
    dse::SweepJournal::installSignalFlush();

    try {
        if (figPreset) {
            // The figure presets replicate the bench binaries' cell
            // grids and tables exactly (CI diffs the outputs), adding
            // only the journal underneath.
            if (preset == "fig13")
                dse::runFig13Preset(explorer, report);
            else
                dse::runFig15Preset(explorer, report);
        } else {
            dse::ParamSpace space;
            std::string error;
            if (preset == "frontier")
                space = dse::frontierSpace();
            else if (preset == "smoke")
                space = dse::smokeSpace();
            if (!workload.empty()
                && !dse::applyAxisValue(space.base, "workload",
                                        workload, &error))
                return usageError(error);
            if (heapMib != 0
                && !dse::applyAxisValue(space.base, "heap-mib",
                                        std::to_string(heapMib),
                                        &error))
                return usageError(error);
            if (!backend.empty()
                && !dse::applyAxisValue(space.base, "backend",
                                        backend, &error))
                return usageError(error);
            for (const auto &spec : axisSpecs)
                if (!space.axisSpec(spec, &error))
                    return usageError(error);
            if (space.axes().empty())
                return usageError(
                    "nothing to sweep: give --axis flags or a "
                    "--preset (--list-axes shows the axes)");

            std::vector<dse::DsePoint> points =
                search == "random"
                    ? space.sample(static_cast<std::size_t>(
                                       samples > 0 ? samples : 1),
                                   searchSeed)
                    : space.enumerate();
            std::fprintf(stderr,
                         "dse: %zu of %zu points, search=%s\n",
                         points.size(), space.size(), search.c_str());

            std::vector<dse::PointEval> evals;
            if (search == "halving")
                evals = dse::successiveHalving(
                    explorer, std::move(points), screenGcs,
                    static_cast<std::size_t>(finalists > 0 ? finalists
                                                           : 1));
            else
                evals = explorer.evaluate(points);

            auto summary = dse::summarize(evals);
            dse::reportSweep(report, evals, summary);
            if (!paretoCsv.empty()) {
                if (!dse::writeParetoCsv(paretoCsv, evals, summary,
                                         &error)) {
                    std::fprintf(stderr, "dse: %s\n", error.c_str());
                    return 1;
                }
                std::fprintf(stderr,
                             "dse: wrote Pareto frontier (%zu "
                             "points) to %s\n",
                             summary.frontier.size(),
                             paretoCsv.c_str());
            }
        }
    } catch (const dse::SweepInterrupted &) {
        std::fprintf(stderr,
                     "dse: interrupted; completed cells are in %s — "
                     "re-run the same command to resume\n",
                     journal.enabled() ? journal.path().c_str()
                                       : "(no journal)");
        return 130;
    }

    std::fprintf(stderr,
                 "dse: journal %s: %zu hits, %zu incremental, "
                 "%zu evaluated\n",
                 journal.enabled() ? journal.path().c_str()
                                   : "(disabled)",
                 explorer.journalHits(), explorer.incrementalHits(),
                 explorer.evaluatedCells());
    harness::finishTimeline(runner, opt);
    return report.finish(std::cout);
}
