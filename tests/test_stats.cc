/**
 * @file
 * Tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <type_traits>
#include <utility>

#include "sim/stats.hh"

using namespace charon::sim;

TEST(Counter, AccumulatesAndResets)
{
    StatGroup g("g");
    Counter c(&g, "c", "test counter");
    c += 2.5;
    ++c;
    EXPECT_DOUBLE_EQ(c.value(), 3.5);
    g.resetAll();
    EXPECT_DOUBLE_EQ(c.value(), 0.0);
}

TEST(Average, TracksMeanMinMax)
{
    StatGroup g("g");
    Average a(&g, "a", "test avg");
    a.sample(10);
    a.sample(20);
    a.sample(30);
    EXPECT_DOUBLE_EQ(a.mean(), 20.0);
    EXPECT_DOUBLE_EQ(a.min(), 10.0);
    EXPECT_DOUBLE_EQ(a.max(), 30.0);
    EXPECT_EQ(a.count(), 3u);
}

TEST(Average, EmptyMeanIsZero)
{
    Average a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(Histogram, BucketsByPowerOfTwo)
{
    StatGroup g("g");
    Histogram h(&g, "h", "test hist");
    h.sample(0.5);  // bucket 0
    h.sample(1);    // bucket 0
    h.sample(2);    // bucket 1
    h.sample(5);    // bucket 2
    h.sample(1024); // bucket 10
    EXPECT_EQ(h.count(), 5u);
    ASSERT_GE(h.buckets().size(), 11u);
    EXPECT_EQ(h.buckets()[0], 2u);
    EXPECT_EQ(h.buckets()[1], 1u);
    EXPECT_EQ(h.buckets()[2], 1u);
    EXPECT_EQ(h.buckets()[10], 1u);
}

TEST(StatGroup, DumpMentionsEveryStat)
{
    StatGroup g("grp");
    Counter c(&g, "ctr", "");
    Average a(&g, "avg", "");
    c += 7;
    a.sample(3);
    std::ostringstream os;
    g.dump(os);
    auto s = os.str();
    EXPECT_NE(s.find("grp.ctr = 7"), std::string::npos);
    EXPECT_NE(s.find("grp.avg.mean = 3"), std::string::npos);
}

TEST(Geomean, MatchesHandComputation)
{
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-9);
    EXPECT_NEAR(geomean({1.0, 1.0, 1.0}), 1.0, 1e-9);
}

TEST(Geomean, IgnoresNonPositive)
{
    EXPECT_NEAR(geomean({2.0, 8.0, 0.0, -3.0}), 4.0, 1e-9);
}

TEST(Geomean, EmptyIsZero)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

namespace
{

template <typename T, typename = void>
struct HasArbitraryWrite : std::false_type
{
};

template <typename T>
struct HasArbitraryWrite<
    T, std::void_t<decltype(std::declval<T &>().set(1.0))>>
    : std::true_type
{
};

} // namespace

TEST(Counter, ContractIsAccumulateOnly)
{
    // The documented contract: a Counter only accumulates (+=, ++)
    // and resets to zero.  Last-value semantics belong to a gauge
    // (Average, or a Timeline counter track), so there must be no
    // arbitrary-write set() to silently break monotonicity with.
    static_assert(!HasArbitraryWrite<Counter>::value,
                  "Counter::set() would break the monotone-"
                  "accumulation contract; use a gauge instead");

    StatGroup g("g");
    Counter c(&g, "c", "contract");
    c += 1.0;
    c += 2.5;
    ++c;
    EXPECT_DOUBLE_EQ(c.value(), 4.5) << "accumulation must sum deltas";
    c.reset();
    EXPECT_DOUBLE_EQ(c.value(), 0.0)
        << "reset restarts accumulation at zero";
    c += 0.25;
    EXPECT_DOUBLE_EQ(c.value(), 0.25);
}

TEST(QuantileAccumulator, ExactNearestRank)
{
    QuantileAccumulator q;
    // 1..100 in scrambled insertion order: quantiles must not depend
    // on how samples arrived.
    for (int v = 100; v >= 1; --v)
        q.add(v);
    EXPECT_EQ(q.count(), 100u);
    EXPECT_DOUBLE_EQ(q.quantile(0.5), 50.0);
    EXPECT_DOUBLE_EQ(q.quantile(0.99), 99.0);
    EXPECT_DOUBLE_EQ(q.quantile(0.999), 100.0);
    EXPECT_DOUBLE_EQ(q.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(q.quantile(1.0), 100.0);
    EXPECT_DOUBLE_EQ(q.min(), 1.0);
    EXPECT_DOUBLE_EQ(q.max(), 100.0);
    EXPECT_DOUBLE_EQ(q.mean(), 50.5);
}

TEST(QuantileAccumulator, EmptyIsZeroNotNaN)
{
    QuantileAccumulator q;
    EXPECT_EQ(q.count(), 0u);
    EXPECT_DOUBLE_EQ(q.quantile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(q.mean(), 0.0);
    EXPECT_DOUBLE_EQ(q.min(), 0.0);
    EXPECT_DOUBLE_EQ(q.max(), 0.0);
}

TEST(QuantileAccumulator, SingleSampleIsEveryQuantile)
{
    QuantileAccumulator q;
    q.add(42.0);
    EXPECT_DOUBLE_EQ(q.quantile(0.0), 42.0);
    EXPECT_DOUBLE_EQ(q.quantile(0.5), 42.0);
    EXPECT_DOUBLE_EQ(q.quantile(0.999), 42.0);
}

TEST(QuantileAccumulator, StreamingAfterQuantileRead)
{
    // add() after a quantile() read must invalidate the sorted view.
    QuantileAccumulator q;
    q.add(10.0);
    q.add(20.0);
    EXPECT_DOUBLE_EQ(q.quantile(1.0), 20.0);
    q.add(30.0);
    EXPECT_DOUBLE_EQ(q.quantile(1.0), 30.0);
    EXPECT_DOUBLE_EQ(q.quantile(0.5), 20.0);
}

TEST(QuantileAccumulator, DeterministicMerge)
{
    // Merging per-tenant accumulators in tenant order must equal the
    // single-accumulator result, whatever order the samples were
    // produced in.
    QuantileAccumulator a, b, merged, direct;
    for (int v = 0; v < 50; ++v) {
        a.add(v * 3 % 101);
        direct.add(v * 3 % 101);
    }
    for (int v = 0; v < 50; ++v) {
        b.add(v * 7 % 89);
        direct.add(v * 7 % 89);
    }
    merged.merge(a);
    merged.merge(b);
    EXPECT_EQ(merged.count(), direct.count());
    for (double p : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0})
        EXPECT_DOUBLE_EQ(merged.quantile(p), direct.quantile(p))
            << "at q=" << p;
    // And the sample *sequence* is the concatenation, so a second
    // merge pass over the merged accumulator reproduces it exactly.
    EXPECT_EQ(merged.samples().size(), 100u);
    EXPECT_DOUBLE_EQ(merged.samples()[0], a.samples()[0]);
    EXPECT_DOUBLE_EQ(merged.samples()[50], b.samples()[0]);
}

TEST(QuantileAccumulator, GroupResetClears)
{
    StatGroup g("g");
    QuantileAccumulator q(&g, "lat", "latency quantiles");
    q.add(1.0);
    q.add(2.0);
    g.resetAll();
    EXPECT_EQ(q.count(), 0u);
    EXPECT_DOUBLE_EQ(q.quantile(0.5), 0.0);
}

TEST(Geomean, SkipsNonFiniteEntries)
{
    // A zero-GC cell upstream produces inf (or NaN) speedups; the
    // aggregate must survive them instead of reporting inf.
    std::vector<double> vals = {2.0, 8.0,
                                std::numeric_limits<double>::infinity(),
                                std::numeric_limits<double>::quiet_NaN(),
                                -1.0, 0.0};
    EXPECT_DOUBLE_EQ(geomean(vals), 4.0);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}
