#include "fluid_channel.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/logging.hh"

namespace charon::mem
{

namespace
{
/** Below this many bytes a flow counts as finished (fp slack). */
constexpr double kFinishEpsilon = 1e-6;
} // namespace

const char *
patternName(AccessPattern p)
{
    switch (p) {
      case AccessPattern::Sequential:
        return "sequential";
      case AccessPattern::Strided:
        return "strided";
      case AccessPattern::Random:
        return "random";
    }
    return "unknown";
}

FluidChannel::FluidChannel(sim::EventQueue &eq, std::string name,
                           double capacity,
                           const sim::Instrumentation &instr)
    : eq_(eq),
      capacity_(capacity),
      stats_(std::move(name)),
      bytesTransferred_(&stats_, "bytes", "total bytes transferred"),
      utilizedTicks_(&stats_, "utilized_ticks",
                     "integral of utilization over time"),
      flowCount_(&stats_, "flows", "number of flows served"),
      timeline_(instr.timeline()),
      track_(instr.track(stats_.name()))
{
    CHARON_ASSERT(capacity_ > 0, "channel capacity must be positive");
}

void
FluidChannel::startFlow(std::uint64_t bytes, double maxRate,
                        StreamCallback done)
{
    ++flowCount_;
    if (bytes == 0) {
        // Degenerate flow: complete immediately, still in event order.
        sim::Tick now = eq_.now();
        eq_.schedule(now, [done = std::move(done), now] {
            if (done)
                done(now);
        });
        return;
    }
    advance();
    bytesTransferred_ += static_cast<double>(bytes);
    Flow flow;
    flow.bytesLeft = static_cast<double>(bytes);
    flow.maxRate = maxRate;
    flow.rate = 0;
    flow.done = std::move(done);
    flows_.push_back(std::move(flow));
    if (timeline_) {
        timeline_->counter(track_, eq_.now(),
                           static_cast<double>(flows_.size()));
    }
    reallocate();
}

void
FluidChannel::setCapacity(double capacity)
{
    // Floor keeps the utilization integral finite and guarantees the
    // phase barrier drains even for an "offline" resource.
    constexpr double kMinCapacityFraction = 1e-3;
    advance();
    capacity_ = std::max(capacity, capacity_ * kMinCapacityFraction);
    reallocate();
}

void
FluidChannel::advance()
{
    sim::Tick now = eq_.now();
    if (now <= lastAdvance_) {
        lastAdvance_ = now;
        return;
    }
    double dt = static_cast<double>(now - lastAdvance_);
    double allocated = 0;
    for (auto &flow : flows_) {
        flow.bytesLeft -= flow.rate * dt;
        if (flow.bytesLeft < 0)
            flow.bytesLeft = 0;
        allocated += flow.rate;
    }
    utilizedTicks_ += dt * (allocated / capacity_);
    lastAdvance_ = now;
}

void
FluidChannel::reallocate()
{
    // Max-min fair (progressive filling) with per-flow caps.  The
    // scratch index list is a member so the hot path never allocates.
    double remaining = capacity_;
    auto &uncapped = uncappedScratch_;
    uncapped.clear();
    for (std::uint32_t i = 0; i < flows_.size(); ++i) {
        flows_[i].rate = 0;
        uncapped.push_back(i);
    }
    bool progressed = true;
    while (!uncapped.empty() && remaining > 0 && progressed) {
        progressed = false;
        double share = remaining / static_cast<double>(uncapped.size());
        // Give every flow whose cap is below the fair share its cap;
        // compact the survivors stably so the accumulation order
        // stays the insertion order.
        std::size_t kept = 0;
        for (std::size_t k = 0; k < uncapped.size(); ++k) {
            Flow &flow = flows_[uncapped[k]];
            if (flow.maxRate > 0 && flow.maxRate <= share) {
                flow.rate = flow.maxRate;
                remaining -= flow.maxRate;
                progressed = true;
            } else {
                uncapped[kept++] = uncapped[k];
            }
        }
        uncapped.resize(kept);
        if (!progressed) {
            // Everybody left can absorb the fair share.
            for (std::uint32_t i : uncapped)
                flows_[i].rate = share;
            remaining = 0;
            uncapped.clear();
        }
    }

    // Schedule (or reschedule) a completion timer for the earliest
    // projected finish.
    if (timer_) {
        eq_.deschedule(timer_);
        timer_ = 0;
    }
    if (flows_.empty())
        return;
    double earliest = -1;
    for (const auto &flow : flows_) {
        if (flow.rate <= 0)
            continue;
        double eta = flow.bytesLeft / flow.rate;
        if (earliest < 0 || eta < earliest)
            earliest = eta;
    }
    CHARON_ASSERT(earliest >= 0, "active flows but none making progress");
    sim::Tick when =
        eq_.now() + static_cast<sim::Tick>(std::ceil(earliest));
    timer_ = eq_.schedule(when, [this] { onTimer(); });
}

void
FluidChannel::onTimer()
{
    timer_ = 0;
    advance();
    // Collect finished flows first, then fire callbacks (callbacks may
    // reentrantly start new flows on this channel).  Survivors are
    // compacted stably to keep the insertion order.
    auto &done = doneScratch_;
    done.clear();
    std::size_t kept = 0;
    for (std::size_t i = 0; i < flows_.size(); ++i) {
        if (flows_[i].bytesLeft <= kFinishEpsilon) {
            done.push_back(std::move(flows_[i].done));
        } else {
            if (kept != i)
                flows_[kept] = std::move(flows_[i]);
            ++kept;
        }
    }
    flows_.resize(kept);
    sim::Tick now = eq_.now();
    if (timeline_ && !done.empty()) {
        timeline_->counter(track_, now,
                           static_cast<double>(flows_.size()));
    }
    for (auto &cb : done) {
        if (cb)
            cb(now);
    }
    advance();
    reallocate();
}

} // namespace charon::mem
