#include "config.hh"

namespace charon::sim
{

const char *
platformName(PlatformKind kind)
{
    switch (kind) {
      case PlatformKind::HostDdr4:
        return "DDR4";
      case PlatformKind::HostHmc:
        return "HMC";
      case PlatformKind::CharonNmp:
        return "Charon";
      case PlatformKind::CharonCpuSide:
        return "Charon-CPU-side";
      case PlatformKind::Ideal:
        return "Ideal";
    }
    return "unknown";
}

} // namespace charon::sim
