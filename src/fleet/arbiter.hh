/**
 * @file
 * The GC arbiter: mediates tenant collections contending for the
 * shared offload engine's slots.
 *
 * The shared 4-cube HMC can accelerate a bounded number of
 * collections at once (accel::concurrentOffloadSlots — one per cube
 * for near-memory Charon).  When more tenants collect than slots
 * exist, somebody waits, and the waiting policy is exactly what this
 * class models:
 *
 *  - fcfs:     grant slots in admission order.  The naive runtime;
 *              convoys under spike arrivals push the pause tail out.
 *  - fair:     grant to the tenant with the least accumulated
 *              unit-seconds (long-term device share), admission order
 *              breaking ties.  Protects light tenants from heavy ones.
 *  - deadline: earliest-deadline-first over pause SLO deadlines, and
 *              a request that can no longer make its deadline on the
 *              accelerated path — the estimated queue ahead of it
 *              already overruns the SLO — bails out to the tenant's
 *              own host-side collector, which needs no slot.  The
 *              host pause is longer than an *unqueued* accelerated
 *              one, but bounded; under convoys that trade caps the
 *              p99.9.
 *
 * Capacity can shrink mid-run (unit-death faults): killSlots() is
 * wired to the PR 5 fault grammar by the fleet simulator.  With zero
 * surviving slots every policy routes collections to the host path —
 * that is physics, not policy.
 *
 * Determinism: pure data-structure logic, tie-broken by admission
 * sequence number; no randomness, no wall clock.
 */

#ifndef CHARON_FLEET_ARBITER_HH
#define CHARON_FLEET_ARBITER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace charon::fleet
{

enum class ArbPolicy : std::uint8_t
{
    Fcfs,
    FairShare,
    DeadlineAware,
};

constexpr int kNumArbPolicies = 3;

/** Lowercase token: "fcfs", "fair", "deadline" (the DSE axis values). */
const char *arbPolicyName(ArbPolicy policy);
bool parseArbPolicy(const std::string &name, ArbPolicy &out);

/** One tenant collection waiting for (or granted) the device. */
struct GcRequest
{
    int tenant = 0;
    std::uint64_t seq = 0;       ///< admission order (assigned here)
    sim::Tick enqueued = 0;
    sim::Tick deadline = sim::maxTick; ///< pause SLO boundary
    sim::Tick accelTicks = 0;    ///< duration on the offload engine
    sim::Tick hostTicks = 0;     ///< duration on the host fallback
    double unitSec = 0;          ///< device demand (fair-share charge)
    bool major = false;
};

/** A dispatch decision: run @p req now, on the device or the host. */
struct Dispatch
{
    GcRequest req;
    bool hostFallback = false;
};

class Arbiter
{
  public:
    Arbiter(ArbPolicy policy, int slots);

    ArbPolicy policy() const { return policy_; }
    int capacity() const { return capacity_; }
    int busy() const { return busy_; }
    std::size_t pendingCount() const { return pending_.size(); }

    /** Permanently remove @p n slots (unit-death faults). */
    void killSlots(int n);

    /** Admit one collection; assigns its sequence number. */
    void enqueue(GcRequest req);

    /**
     * Everything dispatchable at @p now, in decision order: slot
     * grants up to the free capacity (policy-ranked) plus, for the
     * deadline policy, host-fallback bail-outs.  Call again whenever
     * a slot frees (after complete()).
     */
    std::vector<Dispatch> dispatch(sim::Tick now);

    /** A slot-granted collection finished; frees its slot. */
    void complete();

    /** Accumulated device unit-seconds charged per tenant. */
    const std::vector<double> &tenantUnitSeconds() const
    {
        return tenantUnitSec_;
    }

    std::uint64_t hostFallbacks() const { return fallbacks_; }

  private:
    /** Rank of @p a before @p b under the active policy. */
    bool ranksBefore(const GcRequest &a, const GcRequest &b) const;

    ArbPolicy policy_;
    int capacity_;
    int busy_ = 0;
    /**
     * Projected completion tick of every in-flight collection.  The
     * deadline policy projects each waiting request's start time from
     * these plus the queue ahead of it; completions erase the minimum,
     * which is exact because the event queue fires completions in time
     * order.
     */
    std::vector<sim::Tick> busyUntil_;
    std::uint64_t nextSeq_ = 0;
    std::vector<GcRequest> pending_;
    std::vector<double> tenantUnitSec_;
    std::uint64_t fallbacks_ = 0;
};

} // namespace charon::fleet

#endif // CHARON_FLEET_ARBITER_HH
