#include "stats.hh"

#include <cmath>

namespace charon::sim
{

Counter::Counter(StatGroup *group, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    if (group)
        group->add(this);
}

Average::Average(StatGroup *group, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    if (group)
        group->add(this);
}

Histogram::Histogram(StatGroup *group, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    if (group)
        group->add(this);
}

void
Histogram::sample(double v)
{
    ++count_;
    sum_ += v;
    std::size_t bucket = 0;
    if (v >= 1.0)
        bucket = static_cast<std::size_t>(std::log2(v));
    if (buckets_.size() <= bucket)
        buckets_.resize(bucket + 1, 0);
    ++buckets_[bucket];
}

void
Histogram::reset()
{
    buckets_.clear();
    count_ = 0;
    sum_ = 0;
}

void
StatGroup::resetAll()
{
    for (auto *c : counters_)
        c->reset();
    for (auto *a : averages_)
        a->reset();
    for (auto *h : histograms_)
        h->reset();
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto *c : counters_)
        os << name_ << '.' << c->name() << " = " << c->value() << '\n';
    for (const auto *a : averages_) {
        os << name_ << '.' << a->name() << ".mean = " << a->mean() << '\n';
        os << name_ << '.' << a->name() << ".count = " << a->count() << '\n';
    }
    for (const auto *h : histograms_) {
        os << name_ << '.' << h->name() << ".count = " << h->count() << '\n';
        os << name_ << '.' << h->name() << ".mean = " << h->mean() << '\n';
    }
}

double
geomean(const std::vector<double> &values)
{
    double log_sum = 0;
    std::size_t n = 0;
    for (double v : values) {
        if (v <= 0)
            continue;
        log_sum += std::log(v);
        ++n;
    }
    return n ? std::exp(log_sum / static_cast<double>(n)) : 0.0;
}

} // namespace charon::sim
