#include "device.hh"

#include <algorithm>

#include "accel/area_energy.hh"
#include "sim/logging.hh"

namespace charon::accel
{

using gc::PrimKind;
using sim::Tick;

namespace
{

/** Issue bandwidth of one unit in bytes/tick at @p bytes per cycle. */
double
issueRate(double freq_hz, int bytes_per_cycle)
{
    return sim::gbPerSecToBytesPerTick(freq_hz * bytes_per_cycle / 1e9);
}

} // namespace

CharonDevice::CharonDevice(sim::EventQueue &eq, hmc::HmcMemory &hmc,
                           const sim::SystemConfig &cfg,
                           const sim::Instrumentation &instr)
    : eq_(eq), hmc_(hmc), cfg_(cfg), timeline_(instr.timeline())
{
    const auto &ch = cfg_.charon;
    const int cubes = cfg_.hmc.cubes;
    const int cs_per_cube = std::max(1, ch.copySearchUnits / cubes);
    const int bc_per_cube = std::max(1, ch.bitmapCountUnits / cubes);

    // Pools are built kind-by-kind (not cube-by-cube) so the counter
    // tracks appear grouped by kind in exported traces.
    for (int c = 0; c < cubes; ++c) {
        // A Copy/Search unit issues one 256 B request per cycle.
        copySearchPools_.push_back(std::make_unique<mem::FluidChannel>(
            eq_, sim::format("charon.cs%d", c),
            cs_per_cube * issueRate(ch.unitFreqHz, 256), instr));
    }
    for (int c = 0; c < cubes; ++c) {
        // A Bitmap Count unit consumes a 64-bit word pair (8 B from
        // each map) per cycle.
        bitmapCountPools_.push_back(std::make_unique<mem::FluidChannel>(
            eq_, sim::format("charon.bc%d", c),
            bc_per_cube * issueRate(ch.unitFreqHz, 16), instr));
    }
    if (ch.scanPushLocal) {
        const int sp_per_cube = std::max(1, ch.scanPushUnits / cubes);
        for (int c = 0; c < cubes; ++c) {
            scanPushPools_.push_back(std::make_unique<mem::FluidChannel>(
                eq_, sim::format("charon.sp%d", c),
                sp_per_cube * issueRate(ch.unitFreqHz, 16), instr));
        }
    } else {
        // All Scan&Push units on the central cube (Section 4.4).
        scanPushPools_.push_back(std::make_unique<mem::FluidChannel>(
            eq_, "charon.sp0",
            ch.scanPushUnits * issueRate(ch.unitFreqHz, 16), instr));
    }
    tlbTrack_ = instr.track("charon.tlb.remote");
}

hmc::Origin
CharonDevice::unitOrigin(int cube) const
{
    if (cfg_.charon.cpuSide)
        return hmc::Origin::host();
    return hmc::Origin::onCube(cube);
}

mem::FluidChannel &
CharonDevice::pool(PrimKind kind, int cube)
{
    switch (kind) {
      case PrimKind::Copy:
      case PrimKind::Search:
        return *copySearchPools_[static_cast<std::size_t>(cube)];
      case PrimKind::BitmapCount:
      case PrimKind::BitSweep:
        // Bit Sweep reuses the Bitmap Count units: the sweep datapath
        // is the same word-pair scan logic, emitting free-run extents
        // instead of a live count.
        return *bitmapCountPools_[static_cast<std::size_t>(cube)];
      case PrimKind::ScanPush:
      case PrimKind::RefCount:
        // Ref Count RMWs ride the Scan&Push units: both are random
        // 16 B accesses through the shared address-translation path.
        if (scanPushPools_.size() == 1)
            return *scanPushPools_[0];
        return *scanPushPools_[static_cast<std::size_t>(cube)];
    }
    sim::panic("bad primitive kind");
}

Tick
CharonDevice::offloadOverhead(int cube) const
{
    const auto &ch = cfg_.charon;
    // Packet serialization on the 80 GB/s link (request + response).
    double ser_ns = (ch.requestPacketBytes + ch.responsePacketBytes)
                    / cfg_.hmc.linkGBs; // B / (GB/s) == ns
    // Unit decode/startup: 2 logic-layer cycles.
    double start_ns = 2 * 1e9 / ch.unitFreqHz;
    double link_ns = 0;
    if (!ch.cpuSide) {
        int hops = 1 + (cube != 0 ? 1 : 0);
        link_ns = 2.0 * hops * cfg_.hmc.linkLatencyNs;
    } else {
        // CPU-side: the doorbell write and response still cross the
        // on-chip uncore to the memory controller (~10 core cycles
        // round trip).
        link_ns = 4.0;
    }
    return sim::nsToTicks(ser_ns + start_ns + link_ns);
}

Tick
CharonDevice::gcPrologueTicks() const
{
    // Bulk LLC flush at GC start so units read current data from
    // DRAM (Section 4.6): LLC size over off-chip bandwidth, scaled by
    // the heap-scale compensation (see CharonConfig::hostFlushScale).
    double seconds = static_cast<double>(cfg_.host.llcSize)
                     / (cfg_.hmc.linkGBs * 1e9)
                     / cfg_.charon.hostFlushScale;
    return sim::secondsToTicks(seconds);
}

void
CharonDevice::execBucket(const gc::Bucket &bucket, double bitmap_hit_rate,
                         mem::StreamCallback done)
{
    if (bucket.invocations == 0) {
        Tick now = eq_.now();
        eq_.schedule(now, [done, now] {
            if (done)
                done(now);
        });
        return;
    }
    // The blocked host thread pays, per invocation, the offload round
    // trip plus the exposed first-access DRAM latency: the unit
    // receives one primitive at a time, so the initial fetch of each
    // invocation cannot be overlapped with anything (this is what
    // keeps Search at ~3x and small-object Copy near parity in the
    // paper, despite the enormous streaming bandwidth).
    const int unit_cube =
        ((bucket.kind == PrimKind::ScanPush
          || bucket.kind == PrimKind::RefCount)
         && scanPushPools_.size() == 1 && !cfg_.charon.cpuSide)
            ? 0
            : bucket.srcCube;
    // A CPU-side unit (Figure 16) sees the full off-chip round trip
    // on every first access; a logic-layer unit sees the local vault.
    auto first_access_lat = [this](mem::AccessPattern p) {
        return cfg_.charon.cpuSide ? hmc_.hostPort().latency(p)
                                   : hmc_.localLatency(p);
    };
    Tick floor = 0;
    switch (bucket.kind) {
      case PrimKind::Copy:
      case PrimKind::Search:
        floor = first_access_lat(mem::AccessPattern::Sequential);
        break;
      case PrimKind::BitmapCount: {
        // Bitmap-cache hits avoid the DRAM round trip (2 unit cycles
        // = 3200 ticks instead); with the unified cache on the
        // central cube, a satellite unit's lookup additionally
        // crosses its spoke link both ways.
        double miss_lat = static_cast<double>(
            first_access_lat(mem::AccessPattern::Random));
        double hit_lat = 3200.0;
        if (!cfg_.charon.distributedStructures && !cfg_.charon.cpuSide
            && unit_cube != 0) {
            hit_lat +=
                static_cast<double>(2 * cfg_.hmc.linkLatency());
        }
        floor = static_cast<Tick>((1.0 - bitmap_hit_rate) * miss_lat
                                  + bitmap_hit_rate * hit_lat);
        break;
      }
      case PrimKind::ScanPush:
        // The object's reference block must arrive before the probes
        // can issue; command decode overlaps roughly half of it.
        floor = first_access_lat(mem::AccessPattern::Strided) / 2;
        break;
      case PrimKind::BitSweep:
        // The sweep streams the bitmaps front to back; only the first
        // word pair is exposed.
        floor = first_access_lat(mem::AccessPattern::Sequential);
        break;
      case PrimKind::RefCount:
        // Count updates return no value (the response packet carries
        // no payload), so successive offloads pipeline through the
        // MAI instead of serializing on the RMW round trip; only the
        // 1/maiEntries share of each fetch is exposed.
        floor = first_access_lat(mem::AccessPattern::Random)
                / static_cast<Tick>(cfg_.charon.maiEntries);
        break;
    }
    const Tick overhead =
        (offloadOverhead(unit_cube) + floor) * bucket.invocations;
    auto wrapped = [this, overhead, done](Tick t) {
        eq_.schedule(t + overhead, [done, t, overhead] {
            if (done)
                done(t + overhead);
        });
    };

    switch (bucket.kind) {
      case PrimKind::Copy:
        packetBytes_ += static_cast<double>(bucket.invocations)
                        * (cfg_.charon.requestPacketBytes
                           + cfg_.charon.responsePacketNoValBytes);
        execCopy(bucket, wrapped);
        break;
      case PrimKind::Search:
        packetBytes_ += static_cast<double>(bucket.invocations)
                        * (cfg_.charon.requestPacketBytes
                           + cfg_.charon.responsePacketBytes);
        execSearch(bucket, wrapped);
        break;
      case PrimKind::ScanPush:
        packetBytes_ += static_cast<double>(bucket.invocations)
                        * (cfg_.charon.requestPacketBytes
                           + cfg_.charon.responsePacketNoValBytes);
        execScanPush(bucket, bitmap_hit_rate, wrapped);
        break;
      case PrimKind::BitmapCount:
        packetBytes_ += static_cast<double>(bucket.invocations)
                        * (cfg_.charon.requestPacketBytes
                           + cfg_.charon.responsePacketBytes);
        execBitmapCount(bucket, bitmap_hit_rate, wrapped);
        break;
      case PrimKind::BitSweep:
        // The response carries the discovered free-run extents.
        packetBytes_ += static_cast<double>(bucket.invocations)
                        * (cfg_.charon.requestPacketBytes
                           + cfg_.charon.responsePacketBytes);
        execBitSweep(bucket, wrapped);
        break;
      case PrimKind::RefCount:
        packetBytes_ += static_cast<double>(bucket.invocations)
                        * (cfg_.charon.requestPacketBytes
                           + cfg_.charon.responsePacketNoValBytes);
        execRefCount(bucket, wrapped);
        break;
    }
}

void
CharonDevice::execCopy(const gc::Bucket &b, mem::StreamCallback done)
{
    const int unit_cube = cfg_.charon.cpuSide ? 0 : b.srcCube;
    const auto origin = unitOrigin(b.srcCube);
    // MAI-limited MLP: 32 in-flight 256 B requests against the access
    // latency seen from this unit.
    Tick lat = cfg_.charon.cpuSide
                   ? hmc_.hostPort().latency(mem::AccessPattern::Sequential)
                   : hmc_.localLatency(mem::AccessPattern::Sequential);
    double mai_rate = cfg_.charon.maiEntries * 256.0
                      / static_cast<double>(lat);

    sim::Join *join = joins_.acquire(
        3, sim::JoinPool::wrap(std::move(done)));
    auto arrive = [join](Tick t) { join->arrive(t); };

    // One primitive executes on one unit: its combined load+store
    // traffic cannot exceed a single unit's 256 B/cycle issue slot.
    double unit_issue = issueRate(cfg_.charon.unitFreqHz, 256);
    pool(PrimKind::Copy, unit_cube)
        .startFlow(b.seqReadBytes + b.writeBytes,
                   std::min(2 * mai_rate, unit_issue), arrive);

    mem::StreamRequest read;
    read.bytes = b.seqReadBytes;
    read.pattern = mem::AccessPattern::Sequential;
    read.granularity = 256;
    read.maxRate = mai_rate;
    hmc_.streamToCube(origin, b.srcCube, read, arrive);

    mem::StreamRequest write = read;
    write.bytes = b.writeBytes;
    write.write = true;
    hmc_.streamToCube(origin, b.dstCube, write, arrive);
}

void
CharonDevice::execSearch(const gc::Bucket &b, mem::StreamCallback done)
{
    const int unit_cube = cfg_.charon.cpuSide ? 0 : b.srcCube;
    const auto origin = unitOrigin(b.srcCube);
    Tick lat = cfg_.charon.cpuSide
                   ? hmc_.hostPort().latency(mem::AccessPattern::Sequential)
                   : hmc_.localLatency(mem::AccessPattern::Sequential);
    double mai_rate = cfg_.charon.maiEntries * 256.0
                      / static_cast<double>(lat);

    sim::Join *join = joins_.acquire(
        2, sim::JoinPool::wrap(std::move(done)));
    auto arrive = [join](Tick t) { join->arrive(t); };

    // The search datapath compares 32 B of card bytes per cycle
    // (narrower than the 256 B fetch the unit can issue).
    double compare_rate =
        sim::gbPerSecToBytesPerTick(cfg_.charon.unitFreqHz * 32 / 1e9);
    pool(PrimKind::Search, unit_cube)
        .startFlow(b.seqReadBytes, std::min(mai_rate, compare_rate),
                   arrive);
    mem::StreamRequest read;
    read.bytes = b.seqReadBytes;
    read.pattern = mem::AccessPattern::Sequential;
    read.granularity = 256;
    read.maxRate = mai_rate;
    hmc_.streamToCube(origin, b.srcCube, read, arrive);
}

void
CharonDevice::execScanPush(const gc::Bucket &b, double hit_rate,
                           mem::StreamCallback done)
{
    // Mark-bitmap RMWs go through the bitmap cache (Section 4.5);
    // hits avoid the memory round trip entirely.
    const std::uint64_t rmw_hits = static_cast<std::uint64_t>(
        static_cast<double>(b.bitmapRmwAccesses) * hit_rate);
    const std::uint64_t mem_accesses = b.randomAccesses - rmw_hits;
    const std::uint64_t mem_random_bytes = b.randomBytes - rmw_hits * 16;
    const bool local = cfg_.charon.scanPushLocal;
    const int unit_cube =
        cfg_.charon.cpuSide ? 0 : (local ? b.srcCube : 0);
    const auto origin = unitOrigin(unit_cube);
    const int cubes = cfg_.hmc.cubes;

    bool remote_tlb = false;
    // Per-invocation MLP is bounded by the references inside one
    // object: the host thread is blocked per offload, so requests
    // from different invocations never overlap (Section 5.2 explains
    // the resulting low speedup on few-reference workloads).
    double refs_per_inv =
        static_cast<double>(mem_accesses)
        / static_cast<double>(b.invocations);
    double mlp = std::clamp(refs_per_inv, 0.25,
                            static_cast<double>(cfg_.charon.maiEntries));
    // Random targets spread over all cubes: average latency from the
    // unit (includes TLB-slice penalty when the unified TLB lives on
    // the central cube and the unit does not).
    double avg_lat = 0;
    for (int c = 0; c < cubes; ++c) {
        Tick l = cfg_.charon.cpuSide
                     ? hmc_.hostPort().latency(mem::AccessPattern::Random)
                     : hmc_.latency(hmc::Origin::onCube(unit_cube),
                                    static_cast<mem::Addr>(c)
                                        << hmc_.cubeShift(),
                                    mem::AccessPattern::Random);
        if (!cfg_.charon.distributedStructures && !cfg_.charon.cpuSide
            && unit_cube != 0) {
            l += 2 * cfg_.hmc.linkLatency(); // remote TLB lookup
            remote_tlb = true;
        }
        avg_lat += static_cast<double>(l);
    }
    avg_lat /= cubes;
    if (fault_) {
        // Poisoned TLB entries force a host-mediated re-walk: a full
        // off-chip round trip (host link plus the unit's spoke when it
        // is not on the central cube), weighted by the poisoned
        // fraction of translations.
        double poison = fault_->tlbPoisonRate(eq_.now());
        if (poison > 0) {
            int walk_hops = 1 + (unit_cube != 0 ? 1 : 0);
            avg_lat += poison * 2.0 * walk_hops
                       * static_cast<double>(cfg_.hmc.linkLatency());
        }
    }
    if (timeline_ && remote_tlb) {
        remoteTlbLookups_ += b.invocations;
        timeline_->counter(tlbTrack_, eq_.now(),
                           static_cast<double>(remoteTlbLookups_));
    }
    double random_rate = std::max(mlp, 1.0) * 16.0 / avg_lat;

    // 3 + cubes flows fan out below, but the bucket completes on the
    // (2 + cubes)-th: the trailing metadata write is posted, so the
    // host unblocks without waiting for the slowest flow.
    sim::Join *join = joins_.acquire(
        3 + static_cast<std::size_t>(cubes),
        sim::JoinPool::wrap(std::move(done)),
        /*fire_after=*/2 + static_cast<std::size_t>(cubes));
    auto arrive = [join](Tick t) { join->arrive(t); };

    pool(PrimKind::ScanPush, unit_cube)
        .startFlow(b.seqReadBytes + b.randomBytes + b.writeBytes,
                   issueRate(cfg_.charon.unitFreqHz, 16), arrive);

    // Sequential read of the object's reference block.
    mem::StreamRequest seq;
    seq.bytes = b.seqReadBytes;
    seq.pattern = mem::AccessPattern::Strided;
    seq.granularity = 64;
    seq.maxRate = cfg_.charon.maiEntries * 64.0 / avg_lat;
    hmc_.streamToCube(origin, b.srcCube, seq, arrive);

    // Random probes of referenced objects, spread over cubes, plus
    // the stack/metadata writes (to the object's home cube).
    for (int c = 0; c < cubes; ++c) {
        mem::StreamRequest rnd;
        rnd.bytes = mem_random_bytes / static_cast<std::uint64_t>(cubes);
        rnd.pattern = mem::AccessPattern::Random;
        rnd.granularity = 16;
        rnd.maxRate = random_rate / cubes;
        hmc_.streamToCube(origin, c, rnd, arrive);
    }
    mem::StreamRequest wr;
    wr.bytes = b.writeBytes;
    wr.write = true;
    wr.pattern = mem::AccessPattern::Random;
    wr.granularity = 16;
    wr.maxRate = random_rate;
    hmc_.streamToCube(origin, b.srcCube, wr, arrive);
}

void
CharonDevice::execBitmapCount(const gc::Bucket &b, double hit_rate,
                              mem::StreamCallback done)
{
    const int unit_cube = cfg_.charon.cpuSide ? 0 : b.srcCube;
    const auto origin = unitOrigin(b.srcCube);

    const bool remote_cache = !cfg_.charon.distributedStructures
                              && !cfg_.charon.cpuSide && unit_cube != 0;
    sim::Join *join = joins_.acquire(
        remote_cache ? 3u : 2u, sim::JoinPool::wrap(std::move(done)));
    auto arrive = [join](Tick t) { join->arrive(t); };

    // Compute: one 64-bit word pair per cycle over both maps, on a
    // single unit.
    pool(PrimKind::BitmapCount, unit_cube)
        .startFlow(b.seqReadBytes,
                   issueRate(cfg_.charon.unitFreqHz, 16), arrive);

    // Memory: only the bitmap-cache misses reach DRAM, at the 32 B
    // cache-block granularity (Section 4.5: ~90% hit rate measured on
    // the functional cache while tracing).
    std::uint64_t miss_bytes = static_cast<std::uint64_t>(
        static_cast<double>(b.seqReadBytes) * (1.0 - hit_rate));
    mem::StreamRequest miss;
    miss.bytes = miss_bytes;
    miss.pattern = mem::AccessPattern::Random;
    miss.granularity = 32;
    miss.maxRate = cfg_.charon.maiEntries * 32.0
                   / static_cast<double>(
                       hmc_.localLatency(mem::AccessPattern::Random));
    hmc_.streamToCube(origin, b.srcCube, miss, arrive);

    // Unified bitmap cache on the central cube: every lookup from a
    // satellite unit crosses that cube's spoke link (the contention
    // Figure 15's distributed design removes).
    if (remote_cache) {
        double lookup_rate =
            4 * 32.0 / static_cast<double>(2 * cfg_.hmc.linkLatency());
        hmc_.linkStream(unit_cube, 0, b.seqReadBytes, lookup_rate,
                        arrive);
    }
}

void
CharonDevice::execBitSweep(const gc::Bucket &b, mem::StreamCallback done)
{
    const int unit_cube = cfg_.charon.cpuSide ? 0 : b.srcCube;
    const auto origin = unitOrigin(b.srcCube);
    Tick lat = cfg_.charon.cpuSide
                   ? hmc_.hostPort().latency(mem::AccessPattern::Sequential)
                   : hmc_.localLatency(mem::AccessPattern::Sequential);
    double mai_rate = cfg_.charon.maiEntries * 256.0
                      / static_cast<double>(lat);

    sim::Join *join = joins_.acquire(
        3, sim::JoinPool::wrap(std::move(done)));
    auto arrive = [join](Tick t) { join->arrive(t); };

    // The sweep consumes a 64-bit word pair per cycle on a Bitmap
    // Count unit; free-list node writes trickle out behind the scan.
    pool(PrimKind::BitSweep, unit_cube)
        .startFlow(b.seqReadBytes,
                   issueRate(cfg_.charon.unitFreqHz, 16), arrive);

    mem::StreamRequest read;
    read.bytes = b.seqReadBytes;
    read.pattern = mem::AccessPattern::Sequential;
    read.granularity = 256;
    read.maxRate = mai_rate;
    hmc_.streamToCube(origin, b.srcCube, read, arrive);

    mem::StreamRequest write = read;
    write.bytes = b.writeBytes;
    write.write = true;
    hmc_.streamToCube(origin, b.dstCube, write, arrive);
}

void
CharonDevice::execRefCount(const gc::Bucket &b, mem::StreamCallback done)
{
    // Count-word RMWs are scattered like Scan&Push probes and go
    // through the same units and translation path; a unit keeps many
    // independent decrements in flight because, unlike the host, it
    // holds the whole ZCT batch in its command queue.
    const bool local = cfg_.charon.scanPushLocal;
    const int unit_cube =
        cfg_.charon.cpuSide ? 0 : (local ? b.srcCube : 0);
    const auto origin = unitOrigin(unit_cube);
    const int cubes = cfg_.hmc.cubes;

    // Unlike Scan&Push, successive count updates carry no pointer
    // dependency, so concurrency is bounded by the MAI depth (and by
    // the batch itself for tiny buckets), not by updates/invocation.
    double mlp =
        std::min(static_cast<double>(b.randomAccesses),
                 static_cast<double>(cfg_.charon.maiEntries));
    double avg_lat = 0;
    for (int c = 0; c < cubes; ++c) {
        Tick l = cfg_.charon.cpuSide
                     ? hmc_.hostPort().latency(mem::AccessPattern::Random)
                     : hmc_.latency(hmc::Origin::onCube(unit_cube),
                                    static_cast<mem::Addr>(c)
                                        << hmc_.cubeShift(),
                                    mem::AccessPattern::Random);
        if (!cfg_.charon.distributedStructures && !cfg_.charon.cpuSide
            && unit_cube != 0) {
            l += 2 * cfg_.hmc.linkLatency(); // remote TLB lookup
        }
        avg_lat += static_cast<double>(l);
    }
    avg_lat /= cubes;
    double random_rate = std::max(mlp, 1.0) * 16.0 / avg_lat;

    sim::Join *join = joins_.acquire(
        2 + static_cast<std::size_t>(cubes), sim::JoinPool::wrap(std::move(done)));
    auto arrive = [join](Tick t) { join->arrive(t); };

    pool(PrimKind::RefCount, unit_cube)
        .startFlow(b.randomBytes + b.writeBytes,
                   issueRate(cfg_.charon.unitFreqHz, 16), arrive);

    // The count words spread over every cube; the updated values write
    // back to the same lines (write-through, 16 B granularity).
    for (int c = 0; c < cubes; ++c) {
        mem::StreamRequest rnd;
        rnd.bytes = b.randomBytes / static_cast<std::uint64_t>(cubes);
        rnd.pattern = mem::AccessPattern::Random;
        rnd.granularity = 16;
        rnd.maxRate = random_rate / cubes;
        hmc_.streamToCube(origin, c, rnd, arrive);
    }
    mem::StreamRequest wr;
    wr.bytes = b.writeBytes;
    wr.write = true;
    wr.pattern = mem::AccessPattern::Random;
    wr.granularity = 16;
    wr.maxRate = random_rate;
    hmc_.streamToCube(origin, b.srcCube, wr, arrive);
}

double
CharonDevice::unitBusySeconds() const
{
    // utilizedTicks integrates the pool's utilization; scaled by the
    // pool's unit count it yields unit-seconds of activity.
    const auto &ch = cfg_.charon;
    const int cubes = cfg_.hmc.cubes;
    double unit_seconds = 0;
    for (const auto &p : copySearchPools_) {
        unit_seconds += sim::ticksToSeconds(static_cast<Tick>(
                            p->utilizedTicks()))
                        * std::max(1, ch.copySearchUnits / cubes);
    }
    for (const auto &p : bitmapCountPools_) {
        unit_seconds += sim::ticksToSeconds(static_cast<Tick>(
                            p->utilizedTicks()))
                        * std::max(1, ch.bitmapCountUnits / cubes);
    }
    int sp_units = scanPushPools_.size() == 1
                       ? ch.scanPushUnits
                       : std::max(1, ch.scanPushUnits / cubes);
    for (const auto &p : scanPushPools_) {
        unit_seconds += sim::ticksToSeconds(static_cast<Tick>(
                            p->utilizedTicks()))
                        * sp_units;
    }
    return unit_seconds;
}

double
CharonDevice::unitEnergyJ(double gc_seconds) const
{
    const auto &ch = cfg_.charon;
    int total_units = ch.copySearchUnits + ch.bitmapCountUnits
                      + ch.scanPushUnits;
    double busy = unitBusySeconds();
    double unit_seconds = total_units * gc_seconds;
    return busy * ch.unitActivePowerW
           + std::max(0.0, unit_seconds - busy) * ch.unitIdlePowerW;
}

double
CharonDevice::areaMm2() const
{
    return AreaModel(cfg_.charon).totalMm2();
}

} // namespace charon::accel
