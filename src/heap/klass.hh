/**
 * @file
 * Class metadata (Klass) model.
 *
 * HotSpot distinguishes 15 class-metadata layouts, each with its own
 * field-iteration strategy (Section 4.4 of the paper: "there are 15
 * different class metadata types in HotSpot JVM ... which ha[ve]
 * distinct class metadata layout[s]").  Charon's Scan&Push unit
 * implements iteration for the dominant data-class kinds and leaves
 * the rare metadata kinds to the host; we reproduce exactly that
 * split via Klass::acceleratable().
 */

#ifndef CHARON_HEAP_KLASS_HH
#define CHARON_HEAP_KLASS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace charon::heap
{

/** The 15 class-metadata kinds, mirroring HotSpot's Klass hierarchy. */
enum class KlassKind : std::uint8_t
{
    Instance,            ///< plain Java object
    InstanceMirror,      ///< java.lang.Class instances
    InstanceClassLoader, ///< class-loader instances
    InstanceRef,         ///< soft/weak/phantom Reference subclasses
    ObjArray,            ///< arrays of references
    TypeArrayBoolean,
    TypeArrayByte,
    TypeArrayChar,
    TypeArrayShort,
    TypeArrayInt,
    TypeArrayLong,
    TypeArrayFloat,
    TypeArrayDouble,
    ConstantPool,        ///< runtime metadata blob (no heap refs)
    MethodData,          ///< profiling metadata blob (no heap refs)
};

/** Number of distinct klass kinds. */
constexpr int kNumKlassKinds = 15;

/** Printable kind name. */
const char *klassKindName(KlassKind kind);

/** True when the kind is one of the eight primitive array kinds. */
bool isTypeArrayKind(KlassKind kind);

/** Element width in bytes for a type-array kind. */
int typeArrayElemBytes(KlassKind kind);

/**
 * True when reference slot @p slot of a @p kind object is *weak*:
 * slot 0 of a Reference subclass holds the referent, which collectors
 * must not keep alive on its own (java.lang.ref semantics).
 */
constexpr bool
isWeakSlot(KlassKind kind, std::uint64_t slot)
{
    return kind == KlassKind::InstanceRef && slot == 0;
}

/** Identifier of a Klass within a KlassTable. */
using KlassId = std::uint32_t;

/**
 * One class descriptor.
 *
 * Instance-flavoured klasses have a fixed layout: @ref refFields
 * reference slots first, then (@ref payloadWords) non-reference
 * payload.  Array klasses size per-object from the stored length.
 */
struct Klass
{
    KlassId id = 0;
    KlassKind kind = KlassKind::Instance;
    std::string name;
    /** Reference fields (instance kinds only). */
    std::uint32_t refFields = 0;
    /** Non-reference payload words (instance kinds only). */
    std::uint32_t payloadWords = 0;

    /** Fixed total size in 8-byte words for instance-flavoured kinds. */
    std::uint32_t instanceWords() const;

    /** True when objects of this klass can hold references. */
    bool hasRefs() const;

    /**
     * True when Charon's Scan&Push unit knows this layout (the
     * dominant data-class kinds); the remaining kinds fall back to
     * host execution.
     */
    bool acceleratable() const;
};

/**
 * The table of all classes loaded in the simulated JVM.
 *
 * Id 0 is reserved as invalid so that a zero klass word in the heap is
 * always a corruption, never a valid object.
 */
class KlassTable
{
  public:
    KlassTable();

    /** Register an instance-flavoured class; returns its id. */
    KlassId defineInstance(std::string name, std::uint32_t ref_fields,
                           std::uint32_t payload_words,
                           KlassKind kind = KlassKind::Instance);

    /** Register an array or metadata class of the given kind. */
    KlassId define(std::string name, KlassKind kind);

    const Klass &get(KlassId id) const;
    std::size_t size() const { return klasses_.size(); }

    /** Convenience ids for the always-present array klasses. */
    KlassId objArrayId() const { return objArrayId_; }
    KlassId byteArrayId() const { return byteArrayId_; }
    KlassId intArrayId() const { return intArrayId_; }
    KlassId longArrayId() const { return longArrayId_; }
    KlassId doubleArrayId() const { return doubleArrayId_; }
    /** Two-word ref-free instance used to plug sub-array-size holes. */
    KlassId fillerId() const { return fillerId_; }

  private:
    std::vector<Klass> klasses_;
    KlassId objArrayId_ = 0;
    KlassId byteArrayId_ = 0;
    KlassId intArrayId_ = 0;
    KlassId longArrayId_ = 0;
    KlassId doubleArrayId_ = 0;
    KlassId fillerId_ = 0;
};

} // namespace charon::heap

#endif // CHARON_HEAP_KLASS_HH
