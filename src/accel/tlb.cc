#include "tlb.hh"

#include "sim/logging.hh"

namespace charon::accel
{

AcceleratorTlb::AcceleratorTlb(const sim::CharonConfig &cfg, int cubes,
                               std::uint64_t physical_pages)
    : pageShift_(mem::log2i(cfg.hugePageBytes)),
      cubes_(cubes),
      physicalPages_(physical_pages)
{
    CHARON_ASSERT(mem::isPow2(cfg.hugePageBytes),
                  "huge page size must be a power of two");
    CHARON_ASSERT(cubes > 0 && mem::isPow2(
                      static_cast<std::uint64_t>(cubes)),
                  "cube count must be a power of two");
}

bool
AcceleratorTlb::pinPage(std::uint16_t pcid, mem::Addr vaddr)
{
    mem::Addr vpage = vaddr >> pageShift_;
    auto it = entries_.find(key(pcid, vpage));
    if (it != entries_.end())
        return true; // already pinned: mlock is idempotent
    if (entries_.size() >= physicalPages_)
        return false; // admission control: no oversubscription
    TlbEntry entry;
    entry.pcid = pcid;
    entry.virtualPage = vpage;
    entry.physicalPage = nextPhysicalPage_++;
    // numa_alloc_onnode-style interleaving: consecutive huge pages
    // land on consecutive cubes.
    entry.homeCube =
        static_cast<int>(entry.physicalPage
                         % static_cast<std::uint64_t>(cubes_));
    entries_.emplace(key(pcid, vpage), entry);
    return true;
}

void
AcceleratorTlb::releaseProcess(std::uint16_t pcid)
{
    for (auto it = entries_.begin(); it != entries_.end();) {
        if (it->second.pcid == pcid) {
            ++freedPages_;
            it = entries_.erase(it);
        } else {
            ++it;
        }
    }
    // Freed frames return to the budget.
    if (freedPages_ > 0 && nextPhysicalPage_ >= freedPages_) {
        // Simplified frame reuse: the budget check uses entries_.size()
        // so no explicit free list is needed.
        freedPages_ = 0;
    }
}

std::optional<TlbEntry>
AcceleratorTlb::translate(std::uint16_t pcid, mem::Addr vaddr)
{
    auto it = entries_.find(key(pcid, vaddr >> pageShift_));
    if (it == entries_.end()) {
        ++faults_;
        return std::nullopt;
    }
    ++hits_;
    return it->second;
}

int
AcceleratorTlb::sliceOf(mem::Addr vaddr) const
{
    // A slice caches only the mappings of its local pages; with the
    // round-robin interleave the slice is the page's home cube.
    return static_cast<int>((vaddr >> pageShift_)
                            % static_cast<std::uint64_t>(cubes_));
}

bool
AcceleratorTlb::lookupIsRemote(int cube, mem::Addr vaddr,
                               bool distributed) const
{
    if (distributed)
        return sliceOf(vaddr) != cube;
    return cube != 0; // unified structure lives on the central cube
}

} // namespace charon::accel
