/**
 * @file
 * The collection driver: ties the two collectors to HotSpot-like
 * triggering policy.
 *
 * A mutator allocates in Eden until allocation fails, then calls
 * onAllocationFailure().  The driver evaluates the promotion
 * guarantee (a pre-flight space estimate, standing in for HotSpot's
 * adaptive policy): if a scavenge could not be guaranteed to fit its
 * survivors and promotions, a full mark-compact collection runs
 * instead; otherwise a minor collection runs.
 */

#ifndef CHARON_GC_COLLECTOR_HH
#define CHARON_GC_COLLECTOR_HH

#include "gc/mark_compact.hh"
#include "gc/recorder.hh"
#include "gc/scavenge.hh"
#include "heap/heap.hh"

namespace charon::gc
{

/** What the driver did on an allocation failure. */
enum class GcOutcome
{
    Minor,       ///< scavenge ran
    Major,       ///< full collection ran
    OutOfMemory, ///< live set does not fit: allocation cannot proceed
};

const char *gcOutcomeName(GcOutcome outcome);

/**
 * Policy + dispatch for one heap.
 */
class Collector
{
  public:
    Collector(heap::ManagedHeap &heap, TraceRecorder &recorder);

    /**
     * Collect in response to an Eden allocation failure.
     * The failed allocation should be retried afterwards (unless
     * OutOfMemory).
     */
    GcOutcome onAllocationFailure();

    /** Force a full collection (System.gc()-style). */
    MarkCompact::Result fullCollect();

    /**
     * Force a minor collection (testing / experiments).  On a
     * promotion failure the driver immediately escalates to a full
     * collection before returning, so the heap is always left in a
     * reclaimed state.
     */
    Scavenge::Result minorCollect();

    std::uint64_t minorCount() const { return minors_; }
    std::uint64_t majorCount() const { return majors_; }

    /**
     * HotSpot-style adaptive tenuring (-XX:+UseAdaptiveSizePolicy,
     * simplified): after each scavenge, lower the threshold when the
     * To space overflowed (promote sooner) and raise it when the
     * survivors sit mostly empty (give objects more time to die).
     * Off by default so experiments use the paper's fixed setup.
     */
    void setAdaptiveTenuring(bool enabled) { adaptive_ = enabled; }
    int tenuringThreshold() const { return threshold_; }

  private:
    /** True when the promotion guarantee holds for a scavenge now. */
    bool promotionGuaranteeHolds();

    heap::ManagedHeap &heap_;
    TraceRecorder &rec_;
    bool adaptive_ = false;
    int threshold_ = 0; ///< 0 until first collection (config value)
    std::uint64_t minors_ = 0;
    std::uint64_t majors_ = 0;

    static constexpr int kMaxTenuringThreshold = 15;
};

} // namespace charon::gc

#endif // CHARON_GC_COLLECTOR_HH
