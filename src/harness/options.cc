#include "options.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness/trace_cache.hh"

namespace charon::harness
{

namespace
{

bool
parseInt(const std::string &v, long long &out)
{
    errno = 0;
    char *end = nullptr;
    out = std::strtoll(v.c_str(), &end, 10);
    return errno == 0 && end != nullptr && *end == '\0' && !v.empty();
}

bool
parseDouble(const std::string &v, double &out)
{
    errno = 0;
    char *end = nullptr;
    out = std::strtod(v.c_str(), &end);
    return errno == 0 && end != nullptr && *end == '\0' && !v.empty();
}

/** "  --name=METAVAR       help" in the shared two-column layout. */
void
formatFlag(std::string &out, const Options::FlagSpec &f)
{
    std::string head = "  " + f.name;
    if (!f.metavar.empty())
        head += "=" + f.metavar;
    if (head.size() < 23)
        head.resize(23, ' ');
    else
        head += ' ';
    // Indent continuation lines to the help column.
    std::string help;
    for (char c : f.help) {
        help += c;
        if (c == '\n')
            help.append(23, ' ');
    }
    out += head + help + "\n";
}

} // namespace

void
Options::flag(const std::string &name, bool *out,
              const std::string &help)
{
    flags_.push_back({name, "", help, [out](const std::string &) {
                          *out = true;
                          return true;
                      }});
}

void
Options::flag(const std::string &name, int *out,
              const std::string &help)
{
    flags_.push_back({name, "N", help, [out](const std::string &v) {
                          long long n;
                          if (!parseInt(v, n))
                              return false;
                          *out = static_cast<int>(n);
                          return true;
                      }});
}

void
Options::flag(const std::string &name, std::uint64_t *out,
              const std::string &help)
{
    flags_.push_back({name, "N", help, [out](const std::string &v) {
                          long long n;
                          if (!parseInt(v, n) || n < 0)
                              return false;
                          *out = static_cast<std::uint64_t>(n);
                          return true;
                      }});
}

void
Options::flag(const std::string &name, double *out,
              const std::string &help)
{
    flags_.push_back({name, "X", help, [out](const std::string &v) {
                          return parseDouble(v, *out);
                      }});
}

void
Options::flag(const std::string &name, std::string *out,
              const std::string &help)
{
    flags_.push_back({name, "STR", help, [out](const std::string &v) {
                          *out = v;
                          return true;
                      }});
}

void
Options::flag(const std::string &name,
              std::function<bool(const std::string &)> parse,
              const std::string &help, const std::string &metavar)
{
    flags_.push_back({name, metavar, help, std::move(parse)});
}

std::string
Options::usageText() const
{
    std::string out;
    for (const auto &f : flags_)
        formatFlag(out, f);
    out += optionsUsage();
    return out;
}

const char *
optionsUsage()
{
    return "  --jobs=N             replay worker threads (default: all "
           "cores)\n"
           "  --cache-dir=DIR      persistent trace cache location\n"
           "                       (default: $CHARON_CACHE_DIR or\n"
           "                       ~/.cache/charon-traces)\n"
           "  --no-cache           disable the persistent trace cache\n"
           "  --csv                emit tables as CSV\n"
           "  --json=FILE          also write the report as JSON\n"
           "  --trace-out=FILE     write a Chrome/Perfetto timeline of\n"
           "                       every replay (open in\n"
           "                       ui.perfetto.dev)\n"
           "  --rollup             print the per-phase primitive\n"
           "                       roll-up table\n"
           "  --help               this text\n";
}

bool
parseOptions(int argc, char **argv, Options &opt)
{
    opt.cacheDir = TraceCache::defaultDir();
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char *prefix) -> const char * {
            std::size_t n = std::char_traits<char>::length(prefix);
            if (arg.rfind(prefix, 0) == 0)
                return arg.c_str() + n;
            return nullptr;
        };
        const Options::FlagSpec *matched = nullptr;
        std::string flagValue;
        for (const auto &f : opt.flags()) {
            if (f.metavar.empty()) {
                if (arg == f.name)
                    matched = &f;
            } else if (const char *v = value((f.name + "=").c_str())) {
                matched = &f;
                flagValue = v;
            }
            if (matched)
                break;
        }
        if (matched) {
            if (!matched->parse(flagValue)) {
                std::fprintf(stderr,
                             "%s: bad value for %s: '%s'\n\n%s",
                             argv[0], matched->name.c_str(),
                             flagValue.c_str(),
                             opt.usageText().c_str());
                return false;
            }
        } else if (arg == "--help" || arg == "-h") {
            std::string header =
                opt.helpHeader.empty()
                    ? std::string(argv[0])
                          + ": harness-backed experiment binary"
                    : opt.helpHeader;
            std::printf("%s\n\n%s", header.c_str(),
                        opt.usageText().c_str());
            std::exit(0);
        } else if (const char *v = value("--jobs=")) {
            opt.jobs = std::atoi(v);
        } else if (const char *v = value("--cache-dir=")) {
            opt.cacheDir = v;
        } else if (arg == "--no-cache") {
            opt.noCache = true;
        } else if (arg == "--csv") {
            opt.csv = true;
        } else if (const char *v = value("--json=")) {
            opt.jsonPath = v;
        } else if (const char *v = value("--trace-out=")) {
            opt.traceOut = v;
        } else if (arg == "--rollup") {
            opt.rollup = true;
        } else {
            std::fprintf(stderr, "%s: unknown option '%s'\n\n%s",
                         argv[0], arg.c_str(),
                         opt.usageText().c_str());
            return false;
        }
    }
    return true;
}

Options
standardOptions(int argc, char **argv)
{
    Options opt;
    if (!parseOptions(argc, argv, opt))
        std::exit(2);
    return opt;
}

void
finishTimeline(const ExperimentRunner &runner, const Options &opt)
{
    if (opt.traceOut.empty())
        return;
    std::string error;
    if (runner.writeTimeline(opt.traceOut, &error)) {
        std::fprintf(stderr, "timeline: wrote %zu cell timelines to %s\n",
                     runner.timelines().size(), opt.traceOut.c_str());
    } else {
        std::fprintf(stderr, "timeline: %s\n", error.c_str());
    }
}

} // namespace charon::harness
