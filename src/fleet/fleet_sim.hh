/**
 * @file
 * The multi-tenant fleet simulator: N tenant heaps consolidated on
 * one node share the 4-cube HMC and its near-memory GC engine, with
 * an Arbiter mediating collection slots under a chosen policy.
 *
 * Two-level reuse of the record-once/replay-many architecture:
 *
 *  1. Per tenant, the ordinary harness pipeline produces a *solo
 *     profile* — the tenant's functional trace replayed on its chosen
 *     offload platform and again on the DDR4 host, yielding per-GC
 *     {accelerated pause, host pause, device unit-seconds, major}.
 *     Trace cache, collector capability routing, and OffloadBackend
 *     accounting all apply unchanged.
 *  2. The fleet discrete-event simulation then plays tenants against
 *     each other: seeded open-loop arrivals drive per-tenant request
 *     service; completed requests accumulate allocation credit; when
 *     a tenant's credit reaches its per-GC quantum the tenant stops
 *     the world and submits the next profile collection to the
 *     Arbiter.  A granted collection runs for its accelerated
 *     duration on a device slot; a host-fallback one runs for its
 *     host duration with no slot.  The pause a tenant experiences is
 *     arbitration wait plus duration, and every queued request eats
 *     that pause in its latency.
 *
 * Determinism contract: the DES is single-threaded over one
 * EventQueue; arrivals and service jitter come from per-tenant seeded
 * Rngs; fleet-wide distributions merge per-tenant accumulators in
 * tenant-index order.  Results are a pure function of (config,
 * profiles) — byte-identical at any --jobs, which only parallelizes
 * profile replays and bench grids.
 */

#ifndef CHARON_FLEET_FLEET_SIM_HH
#define CHARON_FLEET_FLEET_SIM_HH

#include <memory>
#include <string>
#include <vector>

#include "fault/fault.hh"
#include "fleet/arbiter.hh"
#include "fleet/arrival.hh"
#include "harness/cell.hh"
#include "sim/stats.hh"
#include "sim/timeline.hh"

namespace charon::harness
{
class ExperimentRunner;
}

namespace charon::fleet
{

/** One tenant: a heap, its collector/backend, and its load. */
struct TenantSpec
{
    std::string name;       ///< display tag ("t0:SRV"); filled by mixes
    std::string workload = "SRV";
    harness::CollectorKind collector =
        harness::CollectorKind::ParallelScavenge;
    /** Offload platform for this tenant's collections. */
    sim::PlatformKind platform = sim::PlatformKind::CharonNmp;
    std::uint64_t heapBytes = 0; ///< 0 = catalog default
    std::uint64_t seed = 1;
    /** Mean request rate (scales the shared arrival curve). */
    double meanRps = 2000;
    /** Mean request service time, microseconds. */
    double serviceUs = 120;
};

/** One collection of a tenant's solo profile. */
struct GcProfile
{
    sim::Tick accelTicks = 0; ///< pause on the tenant's platform
    sim::Tick hostTicks = 0;  ///< pause on the DDR4 host path
    double unitSec = 0;       ///< device unit-seconds consumed
    bool major = false;
};

/** The solo replay profile the fleet DES schedules from. */
struct TenantProfile
{
    std::vector<GcProfile> gcs;
    double soloAccelSec = 0; ///< total accelerated GC seconds
    double soloHostSec = 0;  ///< total host GC seconds
};

/**
 * Build every tenant's profile through @p runner (two replay cells
 * per tenant: its platform and the DDR4 host; parallel across cells,
 * deterministic assembly).  False on any failed cell, with the first
 * diagnostic in @p error.
 */
bool buildProfiles(harness::ExperimentRunner &runner,
                   const std::vector<TenantSpec> &tenants,
                   std::vector<TenantProfile> *out, std::string *error);

/** The whole fleet configuration. */
struct FleetConfig
{
    std::vector<TenantSpec> tenants;
    ArbPolicy policy = ArbPolicy::Fcfs;
    /**
     * GC-pause SLO deadline, milliseconds (0 = none).  The deadline
     * policy schedules against it; every policy reports misses.
     * Note the repository's 1/64-scale heaps shrink pauses by the
     * same factor, so SLOs here are ~1 ms where production would say
     * ~60 ms.
     */
    double sloMs = 1.0;
    /** Arrival shape; per-tenant meanRps overrides the rate. */
    ArrivalConfig arrival;
    /**
     * Consolidation density: how many times each tenant cycles
     * through its solo GC profile over the horizon.  1 paces the
     * profile's collections evenly across the expected request count;
     * larger values model denser allocation per request (heavier
     * co-tenants on the same device), which is what pushes the
     * arbiter into contention.
     */
    double gcRateScale = 1.0;
    /**
     * Device collection slots; 0 derives the capacity from the first
     * accelerated tenant's platform (accel::concurrentOffloadSlots).
     */
    int slots = 0;
    /** Base seed for arrival and service-jitter streams. */
    std::uint64_t seed = 1;
    /**
     * Unit-death under load: unit-death / cube-offline specs (PR 5
     * grammar) kill one arbiter slot each at their at-ns tick;
     * cube=-1 kills every slot.  Other kinds are ignored here (they
     * act inside per-tenant replays, not on the shared capacity).
     */
    fault::FaultPlan faults;
    /** Collect per-tenant timelines (zero-cost when false). */
    bool timeline = false;
};

/** Per-tenant outcome. */
struct TenantResult
{
    std::string name;
    sim::QuantileAccumulator pauseMs;   ///< wait + duration, per GC
    sim::QuantileAccumulator requestMs; ///< arrival to completion
    std::uint64_t requests = 0;
    std::uint64_t gcs = 0;
    std::uint64_t hostFallbacks = 0;
    std::uint64_t sloMisses = 0;
    double maxPauseMs = 0;
};

/** Fleet-wide outcome. */
struct FleetResult
{
    std::vector<TenantResult> tenants;
    /** Fleet distributions: tenant accumulators merged in index
     *  order (deterministic). */
    sim::QuantileAccumulator pauseMs;
    sim::QuantileAccumulator requestMs;
    std::uint64_t requests = 0;
    std::uint64_t gcs = 0;
    std::uint64_t hostFallbacks = 0;
    std::uint64_t sloMisses = 0;
    int slotsKilled = 0;
    /**
     * Tenant-tagged timelines (one per tenant, process name =
     * tenant name, plus one "arbiter" process), in tenant order;
     * empty unless FleetConfig::timeline.
     */
    std::vector<std::unique_ptr<sim::Timeline>> timelines;
};

/** Run the fleet DES over pre-built profiles. */
FleetResult runFleet(const FleetConfig &cfg,
                     const std::vector<TenantProfile> &profiles);

/**
 * Named tenant mixes for benches and the CLI.  "services" is
 * all request-serving tenants (SRV/SES alternating); "mixed"
 * interleaves latency-sensitive services with batch Spark/GraphChi
 * tenants (BS, PR) whose "requests" model task submissions.
 */
std::vector<std::string> fleetMixNames();
std::vector<TenantSpec> fleetMix(const std::string &name, int tenants);

} // namespace charon::fleet

#endif // CHARON_FLEET_FLEET_SIM_HH
