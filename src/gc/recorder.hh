/**
 * @file
 * TraceRecorder: the instrumentation sink the collectors write into.
 *
 * Owns the open GcTrace, maps heap addresses to HMC cubes, spreads
 * work over the configured number of GC threads, and runs the
 * functional bitmap-cache model over the bitmap access stream so the
 * trace carries a measured hit rate (Section 4.5 reports ~90%).
 */

#ifndef CHARON_GC_RECORDER_HH
#define CHARON_GC_RECORDER_HH

#include <memory>

#include "gc/capability.hh"
#include "gc/costs.hh"
#include "gc/trace.hh"
#include "mem/cache_model.hh"

namespace charon::gc
{

/**
 * Collects one RunTrace across a whole mutator run.
 */
class TraceRecorder
{
  public:
    /**
     * @param num_threads GC threads the work is striped over
     * @param cube_shift address-to-cube mapping shift (cube =
     *        (addr >> shift) & 3); pick so the heap spans all cubes
     * @param num_cubes cubes in the HMC network
     */
    TraceRecorder(int num_threads, int cube_shift, int num_cubes = 4);

    int numThreads() const { return numThreads_; }
    int cubeOf(mem::Addr addr) const;

    // ------------------------------------------------------------------
    // GC / phase lifecycle

    void beginGc(bool major);
    void beginPhase(PhaseKind kind);
    void endPhase();
    GcTrace &endGc();

    /**
     * Capability gate: primitives outside @p caps record hostOnly
     * from here on (the collector has no unit path for them), and
     * each subsequent GcTrace is stamped with the declared mask.
     * Defaults to CapabilitySet::all() so direct recorder users —
     * tests, examples — keep the historical fully-offloadable
     * behavior.
     */
    void setCapabilities(const CapabilitySet &caps) { caps_ = caps; }
    const CapabilitySet &capabilities() const { return caps_; }

    /** Mutator instructions executed since the previous GC. */
    void recordMutator(std::uint64_t instructions);

    /** Flush the post-final-GC mutator tail into the run trace. */
    void finishRun();

    // ------------------------------------------------------------------
    // Primitive records (thread chosen round-robin per invocation)

    /** Bulk copy of @p bytes from @p src to @p dst. */
    void recordCopy(mem::Addr src, mem::Addr dst, std::uint64_t bytes);

    /**
     * Copies below this size are not worth a 48 B offload packet and
     * stay on the host (the JVM call site knows the object size, so
     * this is one extra compare in the 37-line patch of Section 4.6).
     */
    void setCopyOffloadThreshold(std::uint64_t bytes);
    std::uint64_t copyOffloadThreshold() const
    {
        return copyThreshold_;
    }

    /** Card-table Search over table storage [start, start+bytes). */
    void recordSearch(mem::Addr table_start, std::uint64_t bytes);

    /**
     * Scan&Push over one object: sequential read of its @p obj_bytes
     * (header + ref slots), @p refs random header probes of 16 B
     * each, and @p pushed 8 B stack pushes.
     * @param acceleratable false for the rare klass layouts the
     *        Scan&Push unit does not implement (host fallback)
     */
    void recordScanPush(mem::Addr obj, std::uint64_t obj_bytes,
                        std::uint64_t refs, std::uint64_t pushed,
                        bool acceleratable = true);

    /**
     * One live_words_in_range call over @p range_bits bits starting at
     * begin-map VA @p beg_storage_addr; feeds the bitmap cache.
     */
    void recordBitmapCount(mem::Addr beg_storage_addr,
                           mem::Addr end_storage_addr,
                           std::uint64_t range_bits);

    /** mark_obj: an 8 B RMW on the bitmap (through the bitmap cache). */
    void recordMarkObj(mem::Addr bitmap_storage_addr);

    /**
     * Bit-sweep: one free-run discovery pass over @p range_bits bits
     * of both mark bitmaps starting at begin-map VA
     * @p beg_storage_addr, emitting @p free_runs free-list entries
     * (CMS-style sweep; Table 1's bit-sweep primitive).
     */
    void recordBitSweep(mem::Addr beg_storage_addr,
                        std::uint64_t range_bits,
                        std::uint64_t free_runs);

    /**
     * Reference-count maintenance on @p obj: @p updates 8 B
     * read-modify-writes on per-object count words (RC/ZCT epochs;
     * Table 1's reference-counting primitive).
     */
    void recordRefCount(mem::Addr obj, std::uint64_t updates);

    /**
     * Block-zeroing: a write-only Copy of @p bytes at @p dst
     * (recycled-block scrubbing; Table 1's block-zeroing use of the
     * Copy unit).  Subject to the same offload threshold as copies.
     */
    void recordBlockZero(mem::Addr dst, std::uint64_t bytes);

    /** Host-only instructions attributable to the current thread. */
    void recordGlue(std::uint64_t instructions,
                    std::uint64_t mem_accesses = 0);

    // ------------------------------------------------------------------
    // Fault injection

    /**
     * Charon failure: after @p after further primitive invocations,
     * every subsequent bucket is forced hostOnly, and the buckets of
     * the phase open at the trip point are re-marked hostOnly — the
     * functional image of the JVM re-dispatching in-flight Copy /
     * Search / Scan&Push / Bitmap Count work to its host paths when
     * the accelerator dies mid-collection.
     */
    void armFailover(std::uint64_t after);

    /** True once an armed failover has tripped. */
    bool failoverTripped() const { return failoverTripped_; }

    /** Advance the round-robin thread cursor (call per work item). */
    void nextThread();

    /** Attribute subsequent records to a specific thread (striping). */
    void setThread(int thread);

    /** Thread the current work item is attributed to. */
    int currentThread() const { return cursor_; }

    const GlueCosts &costs() const { return costs_; }

    /** Completed run trace. */
    RunTrace &run() { return run_; }
    const RunTrace &run() const { return run_; }

    /** The functional bitmap-cache model (for inspection in tests). */
    mem::CacheModel &bitmapCache() { return bitmapCache_; }

  private:
    ThreadWork &work();

    /** Count one primitive invocation; true once failover is active. */
    bool failoverActive();

    int numThreads_;
    int cubeShift_;
    int numCubes_;
    GlueCosts costs_;

    RunTrace run_;
    GcTrace current_;
    /** Per-thread AoS builders of the open phase (sealed at endPhase). */
    std::vector<ThreadWork> open_;
    PhaseKind openKind_ = PhaseKind::MinorRoots;
    bool gcOpen_ = false;
    bool phaseOpen_ = false;
    int cursor_ = 0;
    std::uint64_t mutatorSinceGc_ = 0;
    std::uint64_t copyThreshold_ = 256;
    CapabilitySet caps_ = CapabilitySet::all();

    bool failoverArmed_ = false;
    bool failoverTripped_ = false;
    std::uint64_t failoverAfter_ = 0;

    mem::CacheModel bitmapCache_;
};

} // namespace charon::gc

#endif // CHARON_GC_RECORDER_HH
