#include "cxl.hh"

#include <algorithm>

namespace charon::accel
{

using gc::PrimKind;
using sim::Tick;

namespace
{

/** Issue bandwidth of one memory-side unit in bytes/tick. */
double
unitIssueRate(double freq_hz, int bytes_per_cycle)
{
    return sim::gbPerSecToBytesPerTick(freq_hz * bytes_per_cycle / 1e9);
}

} // namespace

CxlDevice::CxlDevice(sim::EventQueue &eq, mem::Ddr4Memory &ddr4,
                     const sim::SystemConfig &cfg,
                     const sim::Instrumentation &instr)
    : eq_(eq), ddr4_(ddr4), cfg_(cfg),
      hostPort_(eq, ddr4, cfg.cxl, instr)
{
    const auto &x = cfg_.cxl;
    unitPool_ = std::make_unique<mem::FluidChannel>(
        eq_, "cxl.units",
        x.deviceUnits * unitIssueRate(x.unitFreqHz, 64), instr);
}

double
CxlDevice::devRate(mem::AccessPattern pattern) const
{
    // The device sits next to the expander DRAM: raw DRAM latency,
    // no link in the load path, MLP capped by its request buffer.
    Tick lat = ddr4_.latency(pattern);
    return cfg_.cxl.concurrentRequests * 64.0
           / static_cast<double>(lat);
}

Tick
CxlDevice::gcPrologueTicks() const
{
    double seconds = static_cast<double>(cfg_.host.llcSize)
                     / (cfg_.cxl.linkGBs * 1e9)
                     / cfg_.charon.hostFlushScale;
    return sim::secondsToTicks(seconds);
}

Tick
CxlDevice::offloadOverhead(int /*cube*/) const
{
    const auto &x = cfg_.cxl;
    // One 64 B command flit out, one 64 B completion flit back, plus
    // the port-to-port round trip and 2 unit cycles of decode.
    double ser_ns = 128.0 / x.linkGBs;
    double start_ns = 2 * 1e9 / x.unitFreqHz;
    double link_ns = 2.0 * x.linkLatencyNs;
    return sim::nsToTicks(ser_ns + start_ns + link_ns);
}

void
CxlDevice::execBucket(const gc::Bucket &b, double bitmap_hit_rate,
                      mem::StreamCallback done)
{
    if (b.invocations == 0) {
        Tick now = eq_.now();
        eq_.schedule(now, [done, now] {
            if (done)
                done(now);
        });
        return;
    }

    // Per-invocation exposed latency: the first access from the
    // expander DRAM (pattern-dependent, as for the Charon units) plus
    // the host-managed-translation tax — walkRate of translations
    // (and any fault-poisoned fraction on top) pays a host round trip
    // across the link before the access can issue.
    auto first_access = [this](mem::AccessPattern p) {
        return ddr4_.latency(p);
    };
    Tick floor = 0;
    switch (b.kind) {
      case PrimKind::Copy:
      case PrimKind::Search:
      case PrimKind::BitSweep:
        floor = first_access(mem::AccessPattern::Sequential);
        break;
      case PrimKind::BitmapCount: {
        // A small device-side metadata cache gives the same hit rate
        // the phase measured; hits cost 2 unit cycles.
        double miss_lat = static_cast<double>(
            first_access(mem::AccessPattern::Random));
        double hit_lat = static_cast<double>(
            sim::nsToTicks(2.0 * 1e9 / cfg_.cxl.unitFreqHz));
        floor = static_cast<Tick>(
            (1.0 - bitmap_hit_rate) * miss_lat
            + bitmap_hit_rate * hit_lat);
        break;
      }
      case PrimKind::ScanPush:
        floor = first_access(mem::AccessPattern::Strided) / 2;
        break;
      case PrimKind::RefCount:
        floor = first_access(mem::AccessPattern::Random)
                / static_cast<Tick>(
                      std::max(1, cfg_.cxl.concurrentRequests));
        break;
    }
    double walk_rate = cfg_.cxl.translationWalkRate;
    if (fault_)
        walk_rate += fault_->tlbPoisonRate(eq_.now());
    const Tick host_walk =
        2 * hostPort_.linkLatency()
        + ddr4_.latency(mem::AccessPattern::Random);
    floor += static_cast<Tick>(std::min(walk_rate, 1.0)
                               * static_cast<double>(host_walk));

    const Tick overhead =
        (offloadOverhead(0) + floor) * b.invocations;
    packetBytes_ += static_cast<double>(b.invocations) * 128.0;

    mem::StreamCallback wrapped = [this, overhead, done](Tick t) {
        eq_.schedule(t + overhead, [done, t, overhead] {
            if (done)
                done(t + overhead);
        });
    };

    // Writes to host-cacheable GC metadata (mark-bitmap RMWs, count
    // words, free-list nodes) each cost a back-invalidation snoop on
    // the shared link, contending with host demand traffic.
    std::uint64_t snoop_lines = 0;
    if (b.kind == PrimKind::ScanPush)
        snoop_lines = b.bitmapRmwAccesses;
    else if (b.kind == PrimKind::RefCount
             || b.kind == PrimKind::BitSweep)
        snoop_lines = (b.writeBytes + 63) / 64;
    const std::uint64_t snoop_bytes =
        snoop_lines * static_cast<std::uint64_t>(cfg_.cxl.snoopBytes);

    const int parts = 2 + (snoop_bytes != 0 ? 1 : 0);
    sim::Join *join =
        joins_.acquire(parts, sim::JoinPool::wrap(std::move(wrapped)));
    auto arrive = [join](Tick t) { join->arrive(t); };
    if (snoop_bytes != 0)
        hostPort_.link().startFlow(snoop_bytes, 0, arrive);

    double unit_rate = unitIssueRate(cfg_.cxl.unitFreqHz, 64);
    switch (b.kind) {
      case PrimKind::Copy: {
        unitPool_->startFlow(b.seqReadBytes + b.writeBytes, unit_rate,
                             arrive);
        mem::StreamRequest req;
        req.bytes = b.seqReadBytes + b.writeBytes;
        req.pattern = mem::AccessPattern::Sequential;
        req.granularity = 64;
        req.maxRate = devRate(mem::AccessPattern::Sequential);
        ddr4_.stream(req, arrive);
        break;
      }
      case PrimKind::Search: {
        // 32 B/cycle compare datapath, like the Charon unit.
        unitPool_->startFlow(
            b.seqReadBytes,
            unitIssueRate(cfg_.cxl.unitFreqHz, 32), arrive);
        mem::StreamRequest req;
        req.bytes = b.seqReadBytes;
        req.pattern = mem::AccessPattern::Sequential;
        req.granularity = 64;
        req.maxRate = devRate(mem::AccessPattern::Sequential);
        ddr4_.stream(req, arrive);
        break;
      }
      case PrimKind::ScanPush: {
        // Strided reference-block reads then the dependent probes,
        // both against raw expander DRAM.
        unitPool_->startFlow(b.seqReadBytes + b.randomBytes, unit_rate,
                             arrive);
        mem::StreamRequest seq;
        seq.bytes = b.seqReadBytes;
        seq.pattern = mem::AccessPattern::Strided;
        seq.granularity = 64;
        seq.maxRate = devRate(mem::AccessPattern::Strided);
        mem::StreamRequest rnd;
        rnd.bytes = b.randomBytes;
        rnd.pattern = mem::AccessPattern::Random;
        rnd.granularity = 16;
        rnd.maxRate = devRate(mem::AccessPattern::Random);
        auto self = this;
        ddr4_.stream(seq, [self, rnd, arrive](Tick) {
            self->ddr4_.stream(rnd, arrive);
        });
        break;
      }
      case PrimKind::BitmapCount: {
        unitPool_->startFlow(std::max<std::uint64_t>(b.rangeBits / 8, 1),
                             unit_rate, arrive);
        mem::StreamRequest req;
        req.bytes = b.seqReadBytes;
        req.pattern = mem::AccessPattern::Sequential;
        req.granularity = 64;
        req.maxRate = devRate(mem::AccessPattern::Sequential);
        ddr4_.stream(req, arrive);
        break;
      }
      case PrimKind::BitSweep: {
        unitPool_->startFlow(b.seqReadBytes + b.writeBytes, unit_rate,
                             arrive);
        mem::StreamRequest req;
        req.bytes = b.seqReadBytes + b.writeBytes;
        req.pattern = mem::AccessPattern::Sequential;
        req.granularity = 64;
        req.maxRate = devRate(mem::AccessPattern::Sequential);
        ddr4_.stream(req, arrive);
        break;
      }
      case PrimKind::RefCount: {
        // 16 B RMWs near the DRAM: no line inflation, no writeback
        // over a link — the memory-side win for scattered updates.
        unitPool_->startFlow(b.randomBytes + b.writeBytes, unit_rate,
                             arrive);
        mem::StreamRequest rnd;
        rnd.bytes = b.randomBytes + b.writeBytes;
        rnd.pattern = mem::AccessPattern::Random;
        rnd.granularity = 16;
        rnd.maxRate = devRate(mem::AccessPattern::Random);
        ddr4_.stream(rnd, arrive);
        break;
      }
    }
}

double
CxlDevice::unitBusySeconds() const
{
    return sim::ticksToSeconds(
               static_cast<Tick>(unitPool_->utilizedTicks()))
           * cfg_.cxl.deviceUnits;
}

double
CxlDevice::unitEnergyJ(double gc_seconds) const
{
    const auto &x = cfg_.cxl;
    double busy = unitBusySeconds();
    double unit_seconds = x.deviceUnits * gc_seconds;
    return busy * x.unitActivePowerW
           + std::max(0.0, unit_seconds - busy) * x.unitIdlePowerW;
}

} // namespace charon::accel
