/**
 * @file
 * Ablation study over the design choices DESIGN.md calls out:
 *
 *  - bitmap cache present vs. absent (Section 4.5);
 *  - copy-offload size threshold sweep;
 *  - Scan&Push placement: central cube vs. data-local (Section 4.4);
 *  - unified vs. distributed bitmap cache / TLB (Section 4.6);
 *  - MAI depth (MLP) sweep (Section 4.1).
 *
 * Each ablation reports the resulting Charon GC speedup over the
 * host + DDR4 baseline on one Spark-style and one GraphChi-style
 * workload.
 */

#include "bench_common.hh"

using namespace charon;
using namespace charon::bench;

namespace
{

double
speedup(const WorkloadRun &run, const sim::SystemConfig &cfg,
        double hit_rate_override = -1.0)
{
    auto ddr4 = replay(run, sim::PlatformKind::HostDdr4, cfg);
    // Optionally neutralize the bitmap cache by zeroing the measured
    // hit rate in a copy of the trace.
    if (hit_rate_override >= 0) {
        gc::RunTrace patched = run.trace();
        for (auto &gc : patched.gcs) {
            for (auto &phase : gc.phases)
                phase.bitmapCacheHitRate = hit_rate_override;
        }
        platform::PlatformSim charon(sim::PlatformKind::CharonNmp, cfg,
                                     run.mutator->cubeShift());
        return ddr4.gcSeconds / charon.simulate(patched).gcSeconds;
    }
    auto charon = replay(run, sim::PlatformKind::CharonNmp, cfg);
    return ddr4.gcSeconds / charon.gcSeconds;
}

} // namespace

int
main()
{
    report::heading(std::cout,
                    "Ablations: Charon GC speedup over host + DDR4 "
                    "under design variations");

    for (const std::string &name :
         {std::string("KM"), std::string("CC")}) {
        auto run = runWorkload(name);
        sim::SystemConfig base;

        report::Table table({"variant", "speedup"});
        table.addRow({"baseline (paper configuration)",
                      report::times(speedup(run, base))});

        table.addRow({"no bitmap cache (hit rate forced to 0)",
                      report::times(speedup(run, base, 0.0))});
        table.addRow({"perfect bitmap cache (hit rate forced to 1)",
                      report::times(speedup(run, base, 1.0))});

        {
            sim::SystemConfig cfg = base;
            cfg.charon.scanPushLocal = true;
            table.addRow({"Scan&Push on data-local cubes",
                          report::times(speedup(run, cfg))});
        }
        {
            sim::SystemConfig cfg = base;
            cfg.charon.distributedStructures = true;
            table.addRow({"distributed bitmap cache / TLB",
                          report::times(speedup(run, cfg))});
        }
        for (int mai : {4, 8, 32, 128}) {
            sim::SystemConfig cfg = base;
            cfg.charon.maiEntries = mai;
            table.addRow({"MAI depth " + std::to_string(mai),
                          report::times(speedup(run, cfg))});
        }
        {
            // Section 4.6: the architecture is not tied to the star.
            sim::SystemConfig cfg = base;
            cfg.hmc.topology = sim::HmcTopology::Chain;
            table.addRow({"chain topology (4 cubes)",
                          report::times(speedup(run, cfg))});
        }
        {
            // Section 4.6: more cubes carry more units.  The trace is
            // re-recorded with the heap interleaved over 8 cubes.
            auto run8 = runWorkload(name, 0, 1, 8, /*num_cubes=*/8);
            sim::SystemConfig cfg = base;
            cfg.hmc.cubes = 8;
            cfg.charon.copySearchUnits = 16;
            cfg.charon.bitmapCountUnits = 16;
            table.addRow({"8 cubes, 2x Copy/Search + BitmapCount units",
                          report::times(speedup(run8, cfg))});
        }

        std::cout << "workload " << name << ":\n";
        table.print(std::cout);
        std::cout << '\n';
    }

    // The copy-offload threshold is a trace-time decision; rebuild
    // the trace per threshold on one workload.
    report::Table thr({"copy offload threshold", "KM speedup"});
    for (std::uint64_t threshold : {0ull, 256ull, 4096ull, ~0ull}) {
        const auto &params = workload::findWorkload("KM");
        workload::Mutator mut(params, params.heapBytes, 1);
        mut.recorder().setCopyOffloadThreshold(threshold);
        mut.run();
        platform::PlatformSim ddr4(sim::PlatformKind::HostDdr4,
                                   sim::SystemConfig{},
                                   mut.cubeShift());
        platform::PlatformSim charon(sim::PlatformKind::CharonNmp,
                                     sim::SystemConfig{},
                                     mut.cubeShift());
        double s = ddr4.simulate(mut.recorder().run()).gcSeconds
                   / charon.simulate(mut.recorder().run()).gcSeconds;
        std::string label =
            threshold == 0 ? "0 B (offload everything)"
            : threshold == ~0ull
                ? "infinite (never offload Copy)"
                : std::to_string(threshold) + " B";
        thr.addRow({label, report::times(s)});
    }
    thr.print(std::cout);
    return 0;
}
