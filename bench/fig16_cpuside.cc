/**
 * @file
 * Figure 16: Charon placed beside the host memory controller
 * ("CPU-side") versus in the HMC logic layer ("memory-side"),
 * normalized to the host + DDR4 baseline.
 *
 * Paper shape: the CPU-side accelerator still beats the plain host
 * (aggressive MLP + the optimized bitmap algorithm) but loses ~37%
 * of the memory-side throughput because it only sees the off-chip
 * link bandwidth.
 */

#include "bench_common.hh"

#include "sim/stats.hh"

using namespace charon;
using namespace charon::bench;

int
main()
{
    report::heading(std::cout,
                    "Figure 16: CPU-side vs memory-side Charon "
                    "(GC speedup over host + DDR4)");

    report::Table table({"workload", "CPU baseline", "Charon CPU-side",
                         "Charon memory-side", "CPU-side loss"});
    std::vector<double> cpu_side_s, nmp_s, loss;
    for (const auto &name : allWorkloads()) {
        auto run = runWorkload(name);
        auto ddr4 = replay(run, sim::PlatformKind::HostDdr4);
        auto side = replay(run, sim::PlatformKind::CharonCpuSide);
        auto nmp = replay(run, sim::PlatformKind::CharonNmp);
        cpu_side_s.push_back(ddr4.gcSeconds / side.gcSeconds);
        nmp_s.push_back(ddr4.gcSeconds / nmp.gcSeconds);
        loss.push_back(1.0 - nmp.gcSeconds / side.gcSeconds);
        table.addRow({name, "1.00x", report::times(cpu_side_s.back()),
                      report::times(nmp_s.back()),
                      report::num(100 * loss.back(), 0) + "%"});
    }
    double avg_loss =
        1.0 - sim::geomean(cpu_side_s) / sim::geomean(nmp_s);
    table.addRow({"geomean", "1.00x",
                  report::times(sim::geomean(cpu_side_s)),
                  report::times(sim::geomean(nmp_s)),
                  report::num(100 * avg_loss, 0) + "%"});
    table.print(std::cout);
    std::cout << "\npaper: the CPU-side implementation delivers about "
                 "37% less throughput than the memory-side one\n";
    return 0;
}
