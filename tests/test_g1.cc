/**
 * @file
 * Tests for the G1-style region heap and collector: region lifecycle,
 * remembered-set barriers, humongous objects, evacuation, marking
 * with per-region liveness, mixed collections, and the fingerprint
 * invariant.
 */

#include <gtest/gtest.h>

#include "gc/g1_collector.hh"
#include "gc/recorder.hh"
#include "gc/verify.hh"
#include "sim/rng.hh"

using namespace charon;
using namespace charon::gc;
using heap::G1Heap;
using heap::G1RegionKind;
using mem::Addr;

namespace
{

class G1Test : public ::testing::Test
{
  protected:
    G1Test()
    {
        nodeId = klasses.defineInstance("Node", 2, 2);
        cfg.heapBytes = 16 * sim::kMiB;
        cfg.regionBytes = 256 * 1024;
        cfg.maxEdenRegions = 8;
        heap = std::make_unique<G1Heap>(cfg, klasses);
        rec = std::make_unique<TraceRecorder>(4, 22);
        g1 = std::make_unique<G1Collector>(*heap, *rec);
    }

    Addr
    rootNode()
    {
        Addr obj = heap->allocate(nodeId);
        EXPECT_NE(obj, 0u);
        heap->roots().push_back(obj);
        return obj;
    }

    heap::KlassTable klasses;
    heap::KlassId nodeId = 0;
    heap::G1Config cfg;
    std::unique_ptr<G1Heap> heap;
    std::unique_ptr<TraceRecorder> rec;
    std::unique_ptr<G1Collector> g1;
};

} // namespace

// ---------------------------------------------------------------------
// Heap mechanics

TEST_F(G1Test, RegionsStartFree)
{
    EXPECT_EQ(heap->numRegions(), 64);
    EXPECT_EQ(heap->freeRegionCount(), 64);
}

TEST_F(G1Test, AllocationClaimsEdenRegions)
{
    Addr obj = heap->allocate(nodeId);
    ASSERT_NE(obj, 0u);
    EXPECT_EQ(heap->regionOf(obj).kind, G1RegionKind::Eden);
    EXPECT_EQ(heap->regionCount(G1RegionKind::Eden), 1);
}

TEST_F(G1Test, EdenBudgetForcesGc)
{
    // Fill Eden regions up to the budget: allocation must then fail.
    std::uint64_t filler = cfg.regionBytes / 8 / 2; // half-region array
    int allocs = 0;
    while (heap->allocate(klasses.longArrayId(), filler - 10) != 0)
        ++allocs;
    EXPECT_EQ(heap->regionCount(G1RegionKind::Eden), cfg.maxEdenRegions);
    EXPECT_GE(allocs, cfg.maxEdenRegions); // ~2 per region
}

TEST_F(G1Test, RegionIndexRoundTrips)
{
    Addr obj = heap->allocate(nodeId);
    int idx = heap->regionIndexOf(obj);
    EXPECT_TRUE(heap->region(idx).contains(obj));
}

TEST_F(G1Test, CrossRegionStoreFeedsRemset)
{
    Addr a = rootNode(); // region 0
    // Claim a second region by filling the first.
    Addr b = a;
    while (heap->regionIndexOf(b) == heap->regionIndexOf(a)) {
        b = heap->allocate(nodeId);
        ASSERT_NE(b, 0u);
    }
    heap->storeRef(a, 0, b);
    const auto &remset = heap->regionOf(b).remset;
    EXPECT_EQ(remset.size(), 1u);
    EXPECT_TRUE(remset.count(heap->refSlotAddr(a, 0)));
}

TEST_F(G1Test, SameRegionStoreSkipsRemset)
{
    Addr a = rootNode();
    Addr b = heap->allocate(nodeId);
    ASSERT_EQ(heap->regionIndexOf(a), heap->regionIndexOf(b));
    heap->storeRef(a, 0, b);
    EXPECT_TRUE(heap->regionOf(b).remset.empty());
}

TEST_F(G1Test, HumongousAllocationSpansRegions)
{
    // 3 regions worth of longs.
    std::uint64_t elems = 3 * cfg.regionBytes / 8 - 16;
    Addr obj = heap->allocateHumongous(klasses.longArrayId(), elems);
    ASSERT_NE(obj, 0u);
    int head = heap->regionIndexOf(obj);
    EXPECT_EQ(heap->region(head).kind, G1RegionKind::Humongous);
    EXPECT_EQ(heap->region(head).humongousSpan, 2);
    EXPECT_EQ(heap->region(head + 1).humongousSpan, -1);
    EXPECT_EQ(heap->regionCount(G1RegionKind::Humongous), 3);
    // Release reclaims the whole run.
    heap->releaseRegion(head);
    EXPECT_EQ(heap->freeRegionCount(), 64);
}

TEST_F(G1Test, BigAllocationsRouteToHumongousAutomatically)
{
    std::uint64_t elems = cfg.regionBytes / 8; // > half a region
    Addr obj = heap->allocate(klasses.longArrayId(), elems);
    ASSERT_NE(obj, 0u);
    EXPECT_EQ(heap->regionOf(obj).kind, G1RegionKind::Humongous);
}

// ---------------------------------------------------------------------
// Young collections

TEST_F(G1Test, YoungCollectKeepsReachableDropsGarbage)
{
    Addr keep = rootNode();
    Addr child = heap->allocate(nodeId);
    heap->storeRef(keep, 0, child);
    for (int i = 0; i < 100; ++i)
        heap->allocate(nodeId); // garbage

    auto before = fingerprintGraph(*heap);
    auto result = g1->youngCollect();
    EXPECT_FALSE(result.outOfRegions);
    EXPECT_EQ(result.objectsEvacuated, 2u);
    EXPECT_TRUE(fingerprintGraph(*heap) == before);
    EXPECT_EQ(heap->regionCount(G1RegionKind::Eden), 0);
    heap->verify();
}

TEST_F(G1Test, SurvivorsTenureAfterThreshold)
{
    rootNode();
    g1->youngCollect();
    Addr moved = heap->roots()[0];
    EXPECT_EQ(heap->regionOf(moved).kind, G1RegionKind::Survivor);
    g1->youngCollect();
    moved = heap->roots()[0];
    EXPECT_EQ(heap->regionOf(moved).kind, G1RegionKind::Old);
}

TEST_F(G1Test, RemsetEntryEvacuatesPrivateObject)
{
    // An object reachable only through an old-region holder's
    // remembered-set entry must survive a young collection.
    Addr holder = rootNode();
    g1->youngCollect();
    g1->youngCollect(); // holder now in an Old region
    holder = heap->roots()[0];
    ASSERT_EQ(heap->regionOf(holder).kind, G1RegionKind::Old);

    Addr young = heap->allocate(nodeId);
    heap->arena().store64(young + 32, 0x1234567890abcdefull);
    heap->storeRef(holder, 0, young);
    // Reachable only via holder: no root for `young`.
    auto result = g1->youngCollect();
    EXPECT_FALSE(result.outOfRegions);
    Addr moved = heap->refAt(heap->roots()[0], 0);
    ASSERT_NE(moved, 0u);
    EXPECT_EQ(heap->load64(moved + 32), 0x1234567890abcdefull);
    heap->verify();
}

TEST_F(G1Test, EvacuationMaintainsRemsets)
{
    // After evacuating, the moved object's outgoing cross-region ref
    // must appear in the target's remset (so the next collection of
    // that target still finds it).
    Addr a = rootNode();
    g1->youngCollect();
    g1->youngCollect(); // a tenured
    a = heap->roots()[0];
    Addr young = heap->allocate(nodeId);
    heap->roots().push_back(young);
    heap->storeRef(young, 0, a); // young -> old cross-region ref
    g1->youngCollect();
    young = heap->roots()[1];
    Addr slot = heap->refSlotAddr(young, 0);
    EXPECT_TRUE(heap->regionOf(a).remset.count(slot));
}

// ---------------------------------------------------------------------
// Marking and mixed collections

TEST_F(G1Test, MarkComputesPerRegionLiveness)
{
    std::vector<Addr> keep;
    for (int i = 0; i < 200; ++i) {
        Addr o = heap->allocate(nodeId);
        if (i % 4 == 0) {
            heap->roots().push_back(o);
            keep.push_back(o);
        }
    }
    auto result = g1->concurrentMark();
    EXPECT_EQ(result.liveObjects, keep.size());
    std::uint64_t region_live = 0;
    for (int i = 0; i < heap->numRegions(); ++i)
        region_live += heap->region(i).liveBytes;
    EXPECT_EQ(region_live, result.liveBytes);
    // The marking trace carries Bitmap Count invocations per region.
    const auto &trace = rec->run().gcs.back();
    EXPECT_GT(trace.totalInvocations(PrimKind::BitmapCount), 0u);
    EXPECT_GT(trace.totalInvocations(PrimKind::ScanPush), 0u);
}

TEST_F(G1Test, MarkFreesDeadHumongous)
{
    std::uint64_t elems = cfg.regionBytes / 4; // 2 regions of longs
    Addr dead = heap->allocateHumongous(klasses.longArrayId(), elems);
    Addr live = heap->allocateHumongous(klasses.longArrayId(), elems);
    ASSERT_NE(dead, 0u);
    ASSERT_NE(live, 0u);
    heap->roots().push_back(live);
    int before = heap->regionCount(G1RegionKind::Humongous);
    auto result = g1->concurrentMark();
    EXPECT_EQ(result.humongousFreed, 1);
    EXPECT_LT(heap->regionCount(G1RegionKind::Humongous), before);
    heap->verify();
}

TEST_F(G1Test, MixedCollectReclaimsSparseOldRegions)
{
    // Tenure a batch, drop most roots, mark, then mixed-collect: the
    // mostly-dead old regions must be evacuated and freed.
    for (int i = 0; i < 20000; ++i)
        rootNode();
    g1->youngCollect();
    g1->youngCollect(); // everything tenured
    // Keep 5% alive.
    auto &roots = heap->roots();
    for (std::size_t i = 0; i < roots.size(); ++i) {
        if (i % 20 != 0)
            roots[i] = 0;
    }
    auto fp = fingerprintGraph(*heap);
    int old_before = heap->regionCount(G1RegionKind::Old);
    g1->concurrentMark();
    auto result = g1->mixedCollect();
    EXPECT_FALSE(result.outOfRegions);
    EXPECT_LT(heap->regionCount(G1RegionKind::Old), old_before);
    EXPECT_TRUE(fingerprintGraph(*heap) == fp);
    heap->verify();
}

TEST_F(G1Test, PolicyDriverCollectsUnderPressure)
{
    // Allocate through many GCs with a sliding live window.
    sim::Rng rng(11);
    std::deque<std::size_t> window;
    auto fp_stable_root = rootNode();
    (void)fp_stable_root;
    for (int i = 0; i < 600000; ++i) {
        Addr obj = heap->allocate(nodeId);
        if (obj == 0) {
            auto outcome = g1->collectOnAllocationFailure();
            ASSERT_NE(outcome, G1Outcome::OutOfMemory);
            obj = heap->allocate(nodeId);
            ASSERT_NE(obj, 0u);
        }
        if (rng.chance(0.5)) {
            heap->roots().push_back(obj);
            window.push_back(heap->roots().size() - 1);
            if (window.size() > 100000) {
                heap->roots()[window.front()] = 0;
                window.pop_front();
            }
        }
    }
    EXPECT_GT(g1->youngCount(), 0u);
    EXPECT_GT(g1->mixedCount(), 0u);
    EXPECT_GT(g1->markCount(), 0u);
    heap->verify();
}

TEST_F(G1Test, TraceUsesAllThreePrimitiveFamilies)
{
    // Table 1's G1 row, demonstrated: a full G1 cycle (young + mark +
    // mixed) invokes Copy, Scan&Push AND Bitmap Count.
    for (int i = 0; i < 3000; ++i)
        rootNode();
    g1->youngCollect();
    auto &roots = heap->roots();
    for (std::size_t i = 0; i < roots.size(); ++i) {
        if (i % 10 != 0)
            roots[i] = 0;
    }
    g1->concurrentMark();
    g1->mixedCollect();

    std::uint64_t copies = 0, scans = 0, bitmaps = 0;
    for (const auto &gc : rec->run().gcs) {
        copies += gc.totalInvocations(PrimKind::Copy);
        scans += gc.totalInvocations(PrimKind::ScanPush);
        bitmaps += gc.totalInvocations(PrimKind::BitmapCount);
    }
    EXPECT_GT(copies, 0u);
    EXPECT_GT(scans, 0u);
    EXPECT_GT(bitmaps, 0u);
}

TEST_F(G1Test, PropertyRandomGraphSurvivesG1Cycles)
{
    sim::Rng rng(99);
    std::vector<Addr> objs;
    for (int i = 0; i < 500; ++i) {
        Addr o = rng.chance(0.2)
                     ? heap->allocate(klasses.objArrayId(),
                                      rng.range(1, 12))
                     : heap->allocate(nodeId);
        if (o == 0) {
            ASSERT_NE(g1->collectOnAllocationFailure(),
                      G1Outcome::OutOfMemory);
            --i;
            continue;
        }
        objs.push_back(o);
        if (rng.chance(0.3))
            heap->roots().push_back(o);
    }
    // Random edges (objs addresses may be stale after GCs above, so
    // rebuild the edge phase only over the current roots).
    auto &roots = heap->roots();
    for (Addr o : roots) {
        if (o == 0)
            continue;
        std::uint64_t n = heap->refCount(o);
        for (std::uint64_t i = 0; i < n; ++i) {
            Addr t = roots[rng.below(roots.size())];
            if (t != 0 && rng.chance(0.6))
                heap->storeRef(o, i, t);
        }
    }
    auto fp = fingerprintGraph(*heap);
    for (int round = 0; round < 5; ++round) {
        if (round % 2 == 0) {
            g1->youngCollect();
        } else {
            g1->concurrentMark();
            g1->mixedCollect();
        }
        ASSERT_TRUE(fingerprintGraph(*heap) == fp)
            << "round " << round;
        heap->verify();
    }
}

TEST_F(G1Test, EvacuationFailureSelfForwardsAndRetainsRegions)
{
    // Fill the whole heap with live data so a young collection cannot
    // claim destination regions: G1 must self-forward in place,
    // retain the regions as Old, and leave the heap consistent.
    while (true) {
        Addr o = heap->allocate(nodeId);
        if (o == 0) {
            if (heap->freeRegionCount() == 0)
                break;
            // Eden budget reached but free regions remain: grow the
            // budget by claiming them as eden via allocIn.
            Addr forced = heap->allocIn(G1RegionKind::Eden, 6);
            if (forced == 0)
                break;
            heap->arena().writeHeader(forced, nodeId, 6, 0);
            o = forced;
        }
        heap->roots().push_back(o);
    }
    ASSERT_EQ(heap->freeRegionCount(), 0);

    auto fp = fingerprintGraph(*heap);
    auto result = g1->youngCollect();
    EXPECT_TRUE(result.outOfRegions);
    EXPECT_GT(result.objectsFailed, 0u);
    EXPECT_GT(result.regionsRetained, 0);
    // Nothing lost, nothing corrupted: the graph is intact and no
    // object is left with a forwarding mark.
    EXPECT_TRUE(fingerprintGraph(*heap) == fp);
    heap->verify();
    for (int i = 0; i < heap->numRegions(); ++i) {
        heap->forEachObjectInRegion(i, [&](Addr obj) {
            EXPECT_FALSE(heap->arena().isForwarded(obj));
        });
    }
    // Retained young regions were retired to Old.
    EXPECT_EQ(heap->regionCount(G1RegionKind::Eden), 0);
}

TEST_F(G1Test, PolicyEscalatesAfterEvacuationFailure)
{
    // Under the same pressure, the driver must escalate to
    // mark + mixed rather than report success.
    std::deque<std::size_t> window;
    sim::Rng rng(21);
    int outcome_mixed = 0;
    for (int i = 0; i < 400000; ++i) {
        Addr obj = heap->allocate(nodeId);
        if (obj == 0) {
            auto outcome = g1->collectOnAllocationFailure();
            if (outcome == G1Outcome::OutOfMemory)
                break;
            outcome_mixed += outcome == G1Outcome::Mixed ? 1 : 0;
            obj = heap->allocate(nodeId);
            if (obj == 0)
                break;
        }
        // Nearly everything stays live: relentless pressure.
        if (rng.chance(0.9)) {
            heap->roots().push_back(obj);
            window.push_back(heap->roots().size() - 1);
            if (window.size() > 120000) {
                heap->roots()[window.front()] = 0;
                window.pop_front();
            }
        }
    }
    heap->verify();
    EXPECT_GT(outcome_mixed + static_cast<int>(g1->mixedCount()), 0);
}
