#include "options.hh"

#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness/trace_cache.hh"

namespace charon::harness
{

const char *
optionsUsage()
{
    return "  --jobs=N             replay worker threads (default: all "
           "cores)\n"
           "  --cache-dir=DIR      persistent trace cache location\n"
           "                       (default: $CHARON_CACHE_DIR or\n"
           "                       ~/.cache/charon-traces)\n"
           "  --no-cache           disable the persistent trace cache\n"
           "  --csv                emit tables as CSV\n"
           "  --json=FILE          also write the report as JSON\n"
           "  --trace-out=FILE     write a Chrome/Perfetto timeline of\n"
           "                       every replay (open in\n"
           "                       ui.perfetto.dev)\n"
           "  --rollup             print the per-phase primitive\n"
           "                       roll-up table\n"
           "  --help               this text\n";
}

bool
parseOptions(int argc, char **argv, Options &opt,
             const std::function<bool(const std::string &)> &extra)
{
    opt.cacheDir = TraceCache::defaultDir();
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char *prefix) -> const char * {
            std::size_t n = std::char_traits<char>::length(prefix);
            if (arg.rfind(prefix, 0) == 0)
                return arg.c_str() + n;
            return nullptr;
        };
        if (extra && extra(arg)) {
            continue;
        } else if (arg == "--help" || arg == "-h") {
            std::printf("%s: harness-backed experiment binary\n\n%s",
                        argv[0], optionsUsage());
            std::exit(0);
        } else if (const char *v = value("--jobs=")) {
            opt.jobs = std::atoi(v);
        } else if (const char *v = value("--cache-dir=")) {
            opt.cacheDir = v;
        } else if (arg == "--no-cache") {
            opt.noCache = true;
        } else if (arg == "--csv") {
            opt.csv = true;
        } else if (const char *v = value("--json=")) {
            opt.jsonPath = v;
        } else if (const char *v = value("--trace-out=")) {
            opt.traceOut = v;
        } else if (arg == "--rollup") {
            opt.rollup = true;
        } else {
            std::fprintf(stderr, "%s: unknown option '%s'\n\n%s",
                         argv[0], arg.c_str(), optionsUsage());
            return false;
        }
    }
    return true;
}

Options
standardOptions(int argc, char **argv)
{
    Options opt;
    if (!parseOptions(argc, argv, opt))
        std::exit(2);
    return opt;
}

void
finishTimeline(const ExperimentRunner &runner, const Options &opt)
{
    if (opt.traceOut.empty())
        return;
    std::string error;
    if (runner.writeTimeline(opt.traceOut, &error)) {
        std::fprintf(stderr, "timeline: wrote %zu cell timelines to %s\n",
                     runner.timelines().size(), opt.traceOut.c_str());
    } else {
        std::fprintf(stderr, "timeline: %s\n", error.c_str());
    }
}

} // namespace charon::harness
