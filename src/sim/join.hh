/**
 * @file
 * Pooled countdown join for fan-out/fan-in completion.
 *
 * Every layered memory operation (a DDR4 stream over N channels, an
 * HMC segment over its route, a Charon bucket over its resources)
 * fans out into parallel flows and needs one callback when the last
 * of them drains.  The replay issues hundreds of thousands of these,
 * so the join object must not cost a heap allocation per fan-out:
 * joins live in per-pool slabs with stable addresses and recycle
 * through a free list, and the fan-out callbacks capture a raw
 * pointer (8 bytes — always inside the callback's inline budget).
 *
 * Lifetime protocol: exactly @p parts arrive() calls per acquire();
 * the final one recycles the join and then fires the stored
 * callback.  Nothing may touch a join after its last arrive().
 *
 * Call sites whose completion intentionally does not wait for every
 * flow (a trailing posted write) pass a @p fire_after threshold below
 * @p parts: the callback fires on the fire_after-th arrival while the
 * join stays live — and pooled — until all @p parts have arrived.
 */

#ifndef CHARON_SIM_JOIN_HH
#define CHARON_SIM_JOIN_HH

#include <algorithm>
#include <cstddef>
#include <deque>
#include <utility>
#include <vector>

#include "sim/callback.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace charon::sim
{

class JoinPool;

/**
 * Countdown join: fires its callback with the latest arrival tick
 * once the expected number of sub-flows has arrived.  Obtained from
 * a JoinPool, never constructed directly.
 */
class Join
{
  public:
    /**
     * Inline budget sized for the widest wrapper the memory layers
     * store (a 48-inline stream callback plus two scalars), so a
     * join never heap-allocates its completion.
     */
    using Callback = Function<void(Tick), 72>;

    void arrive(Tick t); // defined after JoinPool

  private:
    friend class JoinPool;
    Join() = default;

    std::size_t remaining_ = 0; ///< arrivals until recycle
    std::size_t untilFire_ = 0; ///< arrivals until done_ fires
    Tick last_ = 0;
    Callback done_;
    JoinPool *pool_ = nullptr;
};

/**
 * Slab-and-free-list allocator for Join objects.  One pool per
 * owning component (the simulator is single-threaded per replay, but
 * replays run concurrently under --jobs, so the pool must never be
 * shared across owners).
 */
class JoinPool
{
  public:
    /**
     * Re-wrap a narrower callback without masking its nullness: a
     * null Function wrapped verbatim would present as a non-null
     * callable that crashes when invoked.
     */
    template <std::size_t N>
    static Join::Callback
    wrap(Function<void(Tick), N> f)
    {
        return f ? Join::Callback(std::move(f)) : Join::Callback();
    }

    /**
     * A join expecting @p parts arrivals, firing @p done on the
     * @p fire_after-th (default: the last).
     */
    Join *
    acquire(std::size_t parts, Join::Callback done,
            std::size_t fire_after = 0)
    {
        CHARON_ASSERT(parts > 0, "join must expect at least one part");
        if (fire_after == 0)
            fire_after = parts;
        CHARON_ASSERT(fire_after <= parts,
                      "join cannot fire after more arrivals than it "
                      "expects");
        Join *j;
        if (!free_.empty()) {
            j = free_.back();
            free_.pop_back();
        } else {
            j = &storage_.emplace_back(Join());
            j->pool_ = this;
        }
        j->remaining_ = parts;
        j->untilFire_ = fire_after;
        j->last_ = 0;
        j->done_ = std::move(done);
        return j;
    }

  private:
    friend class Join;
    void release(Join *j) { free_.push_back(j); }

    std::deque<Join> storage_; ///< deque: addresses never move
    std::vector<Join *> free_;
};

inline void
Join::arrive(Tick t)
{
    CHARON_ASSERT(remaining_ > 0, "arrive on a recycled join");
    last_ = std::max(last_, t);
    const bool fire = untilFire_ > 0 && --untilFire_ == 0;
    if (--remaining_ > 0) {
        // Early-fire joins invoke the callback while still live;
        // later arrivals only feed the countdown to recycling.
        if (fire) {
            Callback cb = std::move(done_);
            if (cb)
                cb(last_);
        }
        return;
    }
    // Recycle before invoking: the callback may reentrantly fan out
    // again and acquire from the same pool.
    Callback cb = std::move(done_);
    Tick last = last_;
    pool_->release(this);
    if (fire && cb)
        cb(last);
}

} // namespace charon::sim

#endif // CHARON_SIM_JOIN_HH
