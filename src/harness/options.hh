/**
 * @file
 * The command-line surface every harness-backed binary shares:
 * --jobs, --cache-dir / --no-cache, --csv, --json, --trace-out,
 * --rollup.
 */

#ifndef CHARON_HARNESS_OPTIONS_HH
#define CHARON_HARNESS_OPTIONS_HH

#include <functional>
#include <string>

#include "harness/experiment_runner.hh"

namespace charon::harness
{

struct Options
{
    /** Replay worker threads (0 = hardware concurrency). */
    int jobs = 0;
    /** Trace cache directory (defaults to TraceCache::defaultDir()). */
    std::string cacheDir;
    bool noCache = false;
    /** Emit tables as CSV instead of aligned text. */
    bool csv = false;
    /** Also write the whole report as JSON to this path. */
    std::string jsonPath;
    /** Write a Chrome/Perfetto timeline of every replay here. */
    std::string traceOut;
    /** Print the per-phase primitive roll-up table. */
    bool rollup = false;

    RunnerConfig
    runnerConfig() const
    {
        return RunnerConfig{jobs, noCache ? std::string() : cacheDir,
                            !traceOut.empty()};
    }
};

/** Usage text for the shared flags (appended to bench --help). */
const char *optionsUsage();

/**
 * Parse the shared flags; exits on --help, returns false (after a
 * diagnostic) on an unknown argument.  @p extra, when given, is
 * called first for binary-specific arguments and returns true when
 * it consumed one.
 */
bool parseOptions(int argc, char **argv, Options &opt,
                  const std::function<bool(const std::string &)> &extra =
                      nullptr);

/** parseOptions + usage-and-exit(2) on failure: the bench one-liner. */
Options standardOptions(int argc, char **argv);

/**
 * End-of-bench timeline hook: when --trace-out was given, write the
 * runner's collected timelines there.  Messages go to stderr so they
 * never disturb the (diffed) table output.
 */
void finishTimeline(const ExperimentRunner &runner, const Options &opt);

} // namespace charon::harness

#endif // CHARON_HARNESS_OPTIONS_HH
