/**
 * @file
 * Timing/energy model of the DDR4 main-memory system of Table 2:
 * 32 GB, 2 channels x 17 GB/s, 4 ranks/channel, 8 banks/rank.
 *
 * Channels are FluidChannels; a stream is split across channels the way
 * cache-line interleaving spreads it in hardware.  Pattern efficiency
 * and average loaded latency are derived from the DDR4 timing
 * parameters (see the .cc for the derivations).
 */

#ifndef CHARON_MEM_DDR4_HH
#define CHARON_MEM_DDR4_HH

#include <memory>
#include <ostream>
#include <vector>

#include "mem/fluid_channel.hh"
#include "mem/mem_model.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/join.hh"

namespace charon::mem
{

/**
 * The DDR4 memory system; also a MemPort since the host attaches
 * directly to it.
 */
class Ddr4Memory : public MemPort
{
  public:
    /** @param instr instrumentation: one counter track per channel. */
    Ddr4Memory(sim::EventQueue &eq, const sim::Ddr4Config &cfg,
               const sim::Instrumentation &instr = {});

    // MemPort
    void stream(const StreamRequest &req, StreamCallback done) override;
    sim::Tick latency(AccessPattern pattern) const override;
    double peakRate() const override;
    int maxGranularity() const override { return cfg_.burstBytes; }
    double efficiency(AccessPattern pattern) const override;

    /** Total bytes moved through all channels. */
    double totalBytes() const;

    /** DRAM access energy so far, in picojoules. */
    double energyPj() const;

    /** Mean utilization of the busiest window [0, now]. */
    double utilization(sim::Tick elapsed) const;

    /** Zero the byte/energy accounting. */
    void resetStats();

    /** Print per-channel statistics. */
    void dumpStats(std::ostream &os) const;

    const sim::Ddr4Config &config() const { return cfg_; }

  private:
    sim::EventQueue &eq_;
    sim::Ddr4Config cfg_;
    std::vector<std::unique_ptr<FluidChannel>> channels_;
    double usefulBytes_ = 0; ///< excludes occupancy-overhead inflation
    sim::JoinPool joins_;
};

} // namespace charon::mem

#endif // CHARON_MEM_DDR4_HH
