#include "area_energy.hh"

namespace charon::accel
{

AreaModel::AreaModel(const sim::CharonConfig &cfg) : cfg_(cfg)
{
    // Table 4 of the paper.  Per-unit areas are synthesis results
    // (TSMC 40 nm) for the processing units and CACTI 45 nm estimates
    // for the storage structures; unit counts follow the Table 2
    // configuration (4 cubes: queues/metadata/TLB per cube, one
    // shared bitmap cache at the central cube).
    components_ = {
        {"Command Queue", 0.0049, 4, false},
        {"Request Queue(R)", 0.0015, 4, false},
        {"Request Queue(W)", 0.0162, 4, false},
        {"Metadata Array", 0.0805, 4, false},
        {"Bitmap Cache", 0.1562, 1, false},
        {"TLB", 0.0706, 4, false},
        {"Copy/Search", 0.0223, cfg_.copySearchUnits, true},
        {"Bitmap Count", 0.0427, cfg_.bitmapCountUnits, true},
        {"Scan&Push", 0.0720, cfg_.scanPushUnits, true},
    };
}

double
AreaModel::totalMm2() const
{
    double total = 0;
    for (const auto &c : components_)
        total += c.totalMm2();
    return total;
}

double
AreaModel::perCubeMm2() const
{
    return totalMm2() / 4.0;
}

double
AreaModel::logicLayerFraction() const
{
    return perCubeMm2() / kLogicDieMm2;
}

} // namespace charon::accel
