/**
 * @file
 * Figure 12: GC performance across the four platforms, normalized to
 * the host + DDR4 baseline.
 *
 * Paper shape: HMC alone buys 1.21x (geomean); Charon reaches 3.29x
 * over DDR4 (2.70x over HMC); the Ideal zero-cycle device bounds it
 * from above.
 */

#include "bench_common.hh"

#include "sim/stats.hh"

using namespace charon;
using namespace charon::bench;

int
main(int argc, char **argv)
{
    auto opt = harness::standardOptions(argc, argv);
    ExperimentRunner runner(opt.runnerConfig());
    Report report(opt);

    const sim::PlatformKind kinds[] = {
        sim::PlatformKind::HostDdr4, sim::PlatformKind::HostHmc,
        sim::PlatformKind::CharonNmp, sim::PlatformKind::Ideal};

    std::vector<Cell> cells;
    for (const auto &name : allWorkloads())
        for (auto kind : kinds)
            cells.push_back(cell(name, kind));
    auto results = runner.run(cells);

    auto &table = report.table(
        "fig12",
        "Figure 12: normalized GC performance "
        "(higher is better, DDR4 = 1)",
        {"workload", "DDR4", "HMC", "Charon", "Ideal", "Charon/HMC"});
    std::vector<double> hmc_s, charon_s, ideal_s, vs_hmc;

    const auto workloads = allWorkloads();
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        std::size_t base_i = w * 4;
        bool ok = true;
        for (std::size_t k = 0; k < 4; ++k)
            ok &= report.checkCell(cells[base_i + k],
                                   results[base_i + k]);
        if (!ok)
            continue;
        double base = results[base_i].timing.gcSeconds;
        double hmc = results[base_i + 1].timing.gcSeconds;
        double charon = results[base_i + 2].timing.gcSeconds;
        double ideal = results[base_i + 3].timing.gcSeconds;
        hmc_s.push_back(base / hmc);
        charon_s.push_back(base / charon);
        ideal_s.push_back(base / ideal);
        vs_hmc.push_back(hmc / charon);
        table.addRow({workloads[w], "1.00x",
                      report::times(hmc_s.back()),
                      report::times(charon_s.back()),
                      report::times(ideal_s.back()),
                      report::times(vs_hmc.back())});
    }
    table.addRow({"geomean", "1.00x",
                  report::times(sim::geomean(hmc_s)),
                  report::times(sim::geomean(charon_s)),
                  report::times(sim::geomean(ideal_s)),
                  report::times(sim::geomean(vs_hmc))});
    table.note("\npaper geomeans: HMC 1.21x, Charon 3.29x over DDR4 "
               "and 2.70x over HMC");
    report.addRollups(cells, results);
    harness::finishTimeline(runner, opt);
    return report.finish(std::cout);
}
