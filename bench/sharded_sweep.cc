/**
 * @file
 * Robustness bench for the sweep supervisor: the smoke grid is
 * evaluated unsharded (in-process Explorer), sharded at several
 * widths, and sharded under injected worker SIGKILLs, each pass into
 * its own journal.  The wall time of every pass is reported, and the
 * bench *gates* on the supervisor's core invariant: every canonical
 * journal must be byte-identical to the unsharded one (after the
 * same canonicalising merge), and the chaos pass must re-evaluate
 * zero committed cells.  Any violation exits non-zero, so CI can run
 * this binary as a correctness check, not just a stopwatch.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "bench_common.hh"
#include "dse/explorer.hh"
#include "dse/journal.hh"
#include "dse/presets.hh"
#include "dse/supervisor.hh"

using namespace charon;
using namespace charon::bench;

namespace
{

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    harness::Options opt;
    opt.helpHeader = "sharded_sweep: supervisor overhead and "
                     "shard-count invariance of the smoke sweep";
    int shards = 4;
    int killAfter = 2;
    opt.flag("--shards", &shards, "widest sharded pass (default 4)");
    opt.flag("--kill-after",
             &killAfter,
             "chaos pass: SIGKILL each worker after N fresh cells "
             "(0 disables the chaos pass)");
    if (!harness::parseOptions(argc, argv, opt))
        return 2;

    auto dir = std::filesystem::temp_directory_path()
               / "charon-sharded-sweep-bench";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    const std::string cache = opt.noCache
                                  ? (dir / "cache").string()
                                  : opt.runnerConfig().cacheDir;

    auto points = dse::smokeSpace().enumerate();
    auto pc = dse::pointCells(points, 0);
    std::vector<std::vector<std::size_t>> units;
    for (std::size_t i = 0; i + 1 < pc.cells.size(); i += 2)
        units.push_back({i, i + 1});

    Report report(opt);
    auto &table = report.table(
        "sharded_sweep",
        "Sweep supervisor: wall time and journal invariance "
        "(smoke grid)",
        {"mode", "wall s", "committed", "restarts", "crashes",
         "re-evaluated", "journal"});

    // Unsharded reference: plain Explorer, then the canonicalising
    // merge every sharded pass ends with.
    const std::string ref = (dir / "ref.dse.jsonl").string();
    auto t0 = std::chrono::steady_clock::now();
    {
        dse::SweepJournal journal(ref);
        harness::RunnerConfig rc;
        rc.jobs = opt.jobs;
        rc.cacheDir = cache;
        ExperimentRunner runner(rc);
        dse::Explorer explorer(runner, journal);
        auto records = explorer.runCells(pc.cells, pc.keys);
        for (const auto &r : records)
            if (!r.ok) {
                std::fprintf(stderr,
                             "sharded_sweep: reference cell failed: "
                             "%s\n",
                             r.error.c_str());
                return 1;
            }
    }
    double refWall = secondsSince(t0);
    std::string error;
    if (!dse::SweepJournal::mergeJournals(ref, {}, &error)) {
        std::fprintf(stderr, "sharded_sweep: merge failed: %s\n",
                     error.c_str());
        return 1;
    }
    const std::string golden = slurp(ref);
    table.addRow({"unsharded", report::num(refWall, 2), "-", "-",
                  "-", "-", "reference"});

    bool ok = true;
    auto runPass = [&](const std::string &mode, int width,
                       bool chaos) {
        const std::string journal =
            (dir / (mode + ".dse.jsonl")).string();
        dse::SupervisorConfig cfg;
        cfg.shards = width;
        cfg.journalPath = journal;
        cfg.runner.jobs = opt.jobs;
        cfg.runner.cacheDir = cache;
        cfg.restartsPerShard = chaos ? 16 : 2;
        cfg.backoffBaseSec = 0.01;
        cfg.quiet = true;
        if (chaos)
            ::setenv("CHARON_TEST_CRASH_AFTER_SIGKILL",
                     std::to_string(killAfter).c_str(), 1);
        auto passT0 = std::chrono::steady_clock::now();
        auto res =
            dse::runShardedSweep(pc.cells, pc.keys, units, cfg);
        double wall = secondsSince(passT0);
        if (chaos)
            ::unsetenv("CHARON_TEST_CRASH_AFTER_SIGKILL");

        std::string verdict = "identical";
        if (!res.ok) {
            verdict = "FAILED: " + res.error;
            ok = false;
        } else if (slurp(journal) != golden) {
            verdict = "DIVERGED from unsharded";
            ok = false;
        }
        if (res.reEvaluatedCells != 0) {
            verdict += " + re-evaluated cells";
            ok = false;
        }
        table.addRow({mode, report::num(wall, 2),
                      std::to_string(res.unitsCommitted),
                      std::to_string(res.restarts),
                      std::to_string(res.workerCrashes),
                      std::to_string(res.reEvaluatedCells),
                      verdict});
    };

    for (int width = 1; width <= shards; width *= 2)
        runPass("shards-" + std::to_string(width), width, false);
    // Chaos at half width so every worker owns several units: a kill
    // after the last unit of a queue needs no restart and would make
    // the pass vacuous.
    const int chaosWidth = std::max(1, shards / 2);
    if (killAfter > 0)
        runPass("chaos-" + std::to_string(chaosWidth), chaosWidth,
                true);

    table.note(ok ? "every sharded journal is byte-identical to the "
                    "unsharded reference"
                  : "INVARIANT VIOLATED -- see the journal column");
    std::filesystem::remove_all(dir);
    int rc = report.finish(std::cout);
    return ok ? rc : 1;
}
