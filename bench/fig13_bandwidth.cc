/**
 * @file
 * Figure 13: memory bandwidth utilized during GC on each platform,
 * and the fraction of Charon's accesses serviced by the local cube.
 *
 * Paper shape: the host platforms are capped by off-chip bandwidth
 * (34 GB/s DDR4 / 80 GB/s HMC links); Charon exploits the internal
 * TSV bandwidth well beyond that; over 70% of its requests are
 * local for most workloads, with LR and CC closer to half.
 */

#include "bench_common.hh"

using namespace charon;
using namespace charon::bench;

int
main(int argc, char **argv)
{
    auto opt = harness::standardOptions(argc, argv);
    ExperimentRunner runner(opt.runnerConfig());
    Report report(opt);

    const sim::PlatformKind kinds[] = {sim::PlatformKind::HostDdr4,
                                       sim::PlatformKind::HostHmc,
                                       sim::PlatformKind::CharonNmp};
    const auto workloads = allWorkloads();
    std::vector<Cell> cells;
    for (const auto &name : workloads)
        for (auto kind : kinds)
            cells.push_back(cell(name, kind));
    auto results = runner.run(cells);

    auto &table = report.table(
        "fig13",
        "Figure 13: bandwidth utilized during GC and "
        "Charon's local-access ratio",
        {"workload", "DDR4 GB/s", "HMC GB/s", "Charon GB/s", "local",
         "remote"});
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        std::size_t i = w * 3;
        bool ok = true;
        for (std::size_t k = 0; k < 3; ++k)
            ok &= report.checkCell(cells[i + k], results[i + k]);
        if (!ok)
            continue;
        const auto &ddr4 = results[i].timing;
        const auto &hmc = results[i + 1].timing;
        const auto &charon = results[i + 2].timing;
        table.addRow(
            {workloads[w], report::num(ddr4.avgGcBandwidthGBs, 1),
             report::num(hmc.avgGcBandwidthGBs, 1),
             report::num(charon.avgGcBandwidthGBs, 1),
             report::num(100 * charon.localAccessFraction, 0) + "%",
             report::num(100 * (1 - charon.localAccessFraction), 0)
                 + "%"});
    }
    table.note("\noff-chip limits: DDR4 34 GB/s, HMC links 80 GB/s; "
               "Charon internal peak 4 x 320 GB/s");
    table.note("paper: >70% local for most workloads; LR and CC "
               "closer to ~50%");
    report.addRollups(cells, results);
    harness::finishTimeline(runner, opt);
    return report.finish(std::cout);
}
