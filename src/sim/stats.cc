#include "stats.hh"

#include <cmath>

namespace charon::sim
{

Counter::Counter(StatGroup *group, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    if (group)
        group->add(this);
}

Average::Average(StatGroup *group, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    if (group)
        group->add(this);
}

Histogram::Histogram(StatGroup *group, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    if (group)
        group->add(this);
}

void
Histogram::sample(double v)
{
    ++count_;
    sum_ += v;
    std::size_t bucket = 0;
    if (v >= 1.0)
        bucket = static_cast<std::size_t>(std::log2(v));
    if (buckets_.size() <= bucket)
        buckets_.resize(bucket + 1, 0);
    ++buckets_[bucket];
}

void
Histogram::reset()
{
    buckets_.clear();
    count_ = 0;
    sum_ = 0;
}

QuantileAccumulator::QuantileAccumulator(StatGroup *group,
                                         std::string name,
                                         std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    if (group)
        group->add(this);
}

void
QuantileAccumulator::merge(const QuantileAccumulator &other)
{
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sorted_ = false;
}

double
QuantileAccumulator::quantile(double q) const
{
    if (samples_.empty())
        return 0.0;
    if (!sorted_) {
        view_ = samples_;
        std::sort(view_.begin(), view_.end());
        sorted_ = true;
    }
    q = std::min(1.0, std::max(0.0, q));
    // Nearest rank: rank = ceil(q * n), 1-based; q == 0 yields the
    // minimum by convention.
    std::size_t n = view_.size();
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(n)));
    if (rank == 0)
        rank = 1;
    if (rank > n)
        rank = n;
    return view_[rank - 1];
}

double
QuantileAccumulator::sum() const
{
    double s = 0;
    for (double v : samples_)
        s += v;
    return s;
}

double
QuantileAccumulator::mean() const
{
    return samples_.empty()
               ? 0.0
               : sum() / static_cast<double>(samples_.size());
}

double
QuantileAccumulator::min() const
{
    return samples_.empty()
               ? 0.0
               : *std::min_element(samples_.begin(), samples_.end());
}

double
QuantileAccumulator::max() const
{
    return samples_.empty()
               ? 0.0
               : *std::max_element(samples_.begin(), samples_.end());
}

void
QuantileAccumulator::reset()
{
    samples_.clear();
    view_.clear();
    sorted_ = false;
}

void
StatGroup::resetAll()
{
    for (auto *c : counters_)
        c->reset();
    for (auto *a : averages_)
        a->reset();
    for (auto *h : histograms_)
        h->reset();
    for (auto *q : quantiles_)
        q->reset();
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto *c : counters_)
        os << name_ << '.' << c->name() << " = " << c->value() << '\n';
    for (const auto *a : averages_) {
        os << name_ << '.' << a->name() << ".mean = " << a->mean() << '\n';
        os << name_ << '.' << a->name() << ".count = " << a->count() << '\n';
    }
    for (const auto *h : histograms_) {
        os << name_ << '.' << h->name() << ".count = " << h->count() << '\n';
        os << name_ << '.' << h->name() << ".mean = " << h->mean() << '\n';
    }
    for (const auto *q : quantiles_) {
        os << name_ << '.' << q->name() << ".count = " << q->count()
           << '\n';
        os << name_ << '.' << q->name() << ".p50 = " << q->quantile(0.5)
           << '\n';
        os << name_ << '.' << q->name() << ".p99 = " << q->quantile(0.99)
           << '\n';
    }
}

double
geomean(const std::vector<double> &values)
{
    double log_sum = 0;
    std::size_t n = 0;
    for (double v : values) {
        // Skip non-positive *and* non-finite entries: a zero-GC cell
        // divides into an inf/NaN ratio upstream, and one such value
        // must not poison the whole aggregate.
        if (v <= 0 || !std::isfinite(v))
            continue;
        log_sum += std::log(v);
        ++n;
    }
    return n ? std::exp(log_sum / static_cast<double>(n)) : 0.0;
}

} // namespace charon::sim
