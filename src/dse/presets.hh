/**
 * @file
 * Canned explorations: the paper's sensitivity sweeps re-expressed as
 * journal-backed ParamSpaces, plus the sweep reporting shared by
 * every charon-explore run.
 *
 * The fig13 / fig15 presets rebuild the *exact* cell grids of the
 * bench binaries of the same name and render the same tables, so
 * `charon-explore --preset fig13` must be byte-identical to
 * `bench/fig13_bandwidth` (CI diffs them) while additionally
 * journalling every cell.  The frontier preset is the beyond-paper
 * sweep: unit count x offload threshold, scored on speedup vs. area
 * and energy.
 */

#ifndef CHARON_DSE_PRESETS_HH
#define CHARON_DSE_PRESETS_HH

#include <string>
#include <vector>

#include "dse/explorer.hh"
#include "dse/param_space.hh"
#include "harness/result_sink.hh"

namespace charon::dse
{

/**
 * The CI smoke grid: 4 points x 2 cells on the cheapest workload —
 * small enough for a pull-request gate, rich enough to have a
 * non-trivial Pareto frontier.  Also the golden-guard grid, so its
 * shape is pinned by tests/golden/dse_pareto_golden.csv.
 */
ParamSpace smokeSpace();

/**
 * The beyond-paper frontier sweep: per-primitive unit count x copy
 * offload threshold on KM (the paper's Table 2 point is one cell of
 * this grid).
 */
ParamSpace frontierSpace();

/**
 * The exact cell grid (and journal keys) a fig13 / fig15 preset run
 * evaluates, exposed so the sweep supervisor can farm the same cells
 * out to worker shards before the preset renders — the render pass is
 * then pure journal hits and stays byte-identical to the bench
 * binary.
 */
PointCells fig13Cells();
PointCells fig15Cells();

/** Figure 13 sweep (TSV vs. off-chip bandwidth), bench-identical. */
void runFig13Preset(Explorer &explorer, harness::Report &report);

/** Figure 15 sweep (thread scaling x structures), bench-identical. */
void runFig15Preset(Explorer &explorer, harness::Report &report);

/** Frontier + knee of a finished sweep. */
struct SweepSummary
{
    std::vector<std::size_t> frontier; ///< indices into the evals
    std::size_t knee = 0;              ///< index into the evals
    bool valid = false; ///< false when no point evaluated ok
};

/** Extract the Pareto frontier and knee over the ok points. */
SweepSummary summarize(const std::vector<PointEval> &evals);

/**
 * Render a sweep: one row per point (objectives + frontier/knee
 * marks) and a frontier note.  Failed points go to the report's
 * failure summary.
 */
void reportSweep(harness::Report &report,
                 const std::vector<PointEval> &evals,
                 const SweepSummary &summary);

/**
 * The frontier as CSV (header + one row per frontier member, knee
 * flagged), doubles as %.17g so the text is reproducible.
 */
std::string paretoCsvText(const std::vector<PointEval> &evals,
                          const SweepSummary &summary);

/** Write paretoCsvText to @p path; false (with @p error) on I/O. */
bool writeParetoCsv(const std::string &path,
                    const std::vector<PointEval> &evals,
                    const SweepSummary &summary, std::string *error);

} // namespace charon::dse

#endif // CHARON_DSE_PRESETS_HH
