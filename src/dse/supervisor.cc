#include "supervisor.hh"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <filesystem>
#include <map>
#include <set>
#include <sstream>
#include <thread>

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "dse/explorer.hh"

namespace charon::dse
{

namespace
{

using Clock = std::chrono::steady_clock;

/** write(2) the whole buffer, retrying on EINTR / short writes. */
bool
writeAll(int fd, const char *data, std::size_t size)
{
    while (size > 0) {
        ssize_t n = ::write(fd, data, size);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += n;
        size -= static_cast<std::size_t>(n);
    }
    return true;
}

/**
 * Split a journal path into (prefix, suffix) around the canonical
 * ".dse.jsonl" extension so shard decorations nest inside it.
 */
void
splitJournalPath(const std::string &canonical, std::string &pre,
                 std::string &suf)
{
    const std::string ext = ".dse.jsonl";
    if (canonical.size() > ext.size()
        && canonical.compare(canonical.size() - ext.size(), ext.size(),
                             ext)
               == 0) {
        pre = canonical.substr(0, canonical.size() - ext.size());
        suf = ext;
    } else {
        pre = canonical;
        suf.clear();
    }
}

// ----------------------------------------------------------------------
// Worker side.  Runs in a forked child: evaluates its assigned units
// into its own shard journal and narrates progress over the pipe as
// newline-terminated ASCII messages (each well under PIPE_BUF, so
// every write is atomic even with runner threads ticking heartbeats):
//
//   H                       liveness tick (runner progress hook)
//   S <unit>                starting unit
//   D <unit> <freshCells>   unit committed (freshCells simulated)
//   F <evald> <hits> <inc>  worker finished; final explorer stats
//
// The worker never touches stdout (the render pass owns it) and
// leaves via _Exit so no inherited buffers flush twice.  Exit codes:
// 0 = all assigned units done, 130 = stopped at a unit boundary after
// SIGINT/SIGTERM, anything else = crash (supervisor classifies).

/**
 * Deterministic failure hooks for tests/CI, read from the
 * environment once per worker incarnation:
 *
 *  - CHARON_TEST_CRASH_AFTER=<n>: _Exit(42) at the first unit
 *    boundary where >= n cells have been freshly committed by this
 *    incarnation (n=0 crashes before the first unit — a pure restart
 *    churn for degradation tests);
 *  - CHARON_TEST_CRASH_AFTER_SIGKILL=<n>: same threshold, but raise
 *    SIGKILL — the crash the supervisor cannot be warned about;
 *  - CHARON_TEST_CRASH_POINT=<substr>: _Exit(42) when *starting* a
 *    unit whose first cell key contains <substr> — deterministic
 *    double-kill, the quarantine trigger;
 *  - CHARON_TEST_HANG_POINT=<substr>: sleep ~10 minutes when
 *    starting a matching unit — the watchdog trigger;
 *  - CHARON_TEST_UNIT_SLEEP_MS=<ms>: sleep after every unit, to
 *    widen drain/interrupt windows in timing tests.
 */
struct CrashHooks
{
    long crashAfter = -1;
    bool crashSignal = false;
    const char *crashPoint = nullptr;
    const char *hangPoint = nullptr;
    long unitSleepMs = 0;

    static CrashHooks
    fromEnv()
    {
        CrashHooks h;
        if (const char *v = std::getenv("CHARON_TEST_CRASH_AFTER"))
            h.crashAfter = std::atol(v);
        if (const char *v =
                std::getenv("CHARON_TEST_CRASH_AFTER_SIGKILL")) {
            h.crashAfter = std::atol(v);
            h.crashSignal = true;
        }
        if (const char *v = std::getenv("CHARON_TEST_CRASH_POINT"))
            h.crashPoint = *v ? v : nullptr;
        if (const char *v = std::getenv("CHARON_TEST_HANG_POINT"))
            h.hangPoint = *v ? v : nullptr;
        if (const char *v = std::getenv("CHARON_TEST_UNIT_SLEEP_MS"))
            h.unitSleepMs = std::atol(v);
        return h;
    }
};

[[noreturn]] void
workerMain(const std::vector<harness::Cell> &cells,
           const std::vector<std::string> &keys,
           const std::vector<std::vector<std::size_t>> &units,
           const std::vector<std::size_t> &assigned,
           const SupervisorConfig &cfg, int shard, int pipeFd)
{
    auto say = [&](const std::string &msg) {
        writeAll(pipeFd, msg.data(), msg.size());
    };

    SweepJournal journal(shardJournalPath(cfg.journalPath, shard));
    // Seed (memory-only) from the canonical journal and every sibling
    // shard file: a restarted worker, or one inheriting units from an
    // abandoned shard, then re-evaluates zero committed cells.  A
    // sibling mid-append is safe to read — O_APPEND line writes are
    // atomic and a torn tail parses as a miss.
    journal.seedFrom(cfg.journalPath);
    for (const auto &sibling : listShardJournals(cfg.journalPath)) {
        if (sibling != journal.path())
            journal.seedFrom(sibling);
    }

    harness::RunnerConfig rc = cfg.runner;
    rc.timeline = false; // a worker's timeline would die with it
    harness::ExperimentRunner runner(rc);
    runner.setProgressHook([pipeFd] {
        // Liveness tick from runner threads: 2-byte atomic write.
        (void)!::write(pipeFd, "H\n", 2);
    });
    Explorer explorer(runner, journal);
    SweepJournal::installSignalFlush();

    const auto hooks = CrashHooks::fromEnv();
    long freshCells = 0;
    auto maybeCrash = [&] {
        if (hooks.crashAfter >= 0 && freshCells >= hooks.crashAfter) {
            if (hooks.crashSignal) {
                ::raise(SIGKILL);
                std::_Exit(42); // unreachable
            }
            std::_Exit(42);
        }
    };
    maybeCrash();

    std::size_t evaluatedBefore = 0;
    for (std::size_t u : assigned) {
        if (SweepJournal::interrupted())
            std::_Exit(130);
        const auto &unit = units[u];
        const std::string &unitKey = keys[unit.front()];
        say("S " + std::to_string(u) + "\n");
        // The crash/hang points fire *after* the S message: the
        // supervisor must know which unit was inflight to strike it.
        if (hooks.crashPoint
            && unitKey.find(hooks.crashPoint) != std::string::npos)
            std::_Exit(42);
        if (hooks.hangPoint
            && unitKey.find(hooks.hangPoint) != std::string::npos)
            std::this_thread::sleep_for(std::chrono::seconds(600));

        std::vector<harness::Cell> unitCells;
        std::vector<std::string> unitKeys;
        unitCells.reserve(unit.size());
        unitKeys.reserve(unit.size());
        for (std::size_t i : unit) {
            unitCells.push_back(cells[i]);
            unitKeys.push_back(keys[i]);
        }
        try {
            explorer.runCells(unitCells, unitKeys, cfg.screenGcs);
        } catch (const SweepInterrupted &) {
            std::_Exit(130);
        } catch (const std::exception &e) {
            // A throwing unit is a worker death by contract: the
            // supervisor strikes the inflight unit and quarantines it
            // on the second offense.
            std::fprintf(stderr, "dse: shard %d: unit %zu threw: %s\n",
                         shard, u, e.what());
            std::_Exit(41);
        }
        std::size_t fresh =
            explorer.evaluatedCells() - evaluatedBefore;
        evaluatedBefore = explorer.evaluatedCells();
        say("D " + std::to_string(u) + " " + std::to_string(fresh)
            + "\n");
        if (hooks.unitSleepMs > 0)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(hooks.unitSleepMs));
        freshCells += static_cast<long>(fresh);
        maybeCrash();
    }
    say("F " + std::to_string(explorer.evaluatedCells()) + " "
        + std::to_string(explorer.journalHits()) + " "
        + std::to_string(explorer.incrementalHits()) + "\n");
    std::_Exit(0);
}

// ----------------------------------------------------------------------
// Supervisor side.

/** One worker slot of the current round. */
struct Slot
{
    int shard = 0; ///< shard id == journal suffix
    pid_t pid = -1;
    int fd = -1;
    std::string buf;
    std::deque<std::size_t> remaining; ///< global unit ids, in order
    long inflight = -1;                ///< unit id from last S
    int attempt = 0;                   ///< restarts consumed
    bool running = false;
    bool done = false;      ///< all units committed / reassigned away
    bool abandoned = false; ///< restart budget exhausted
    bool stopped = false;   ///< exited 130 after the interrupt fan-out
    bool timedOut = false;  ///< watchdog SIGKILL pending classify
    Clock::time_point lastProgress;
    Clock::time_point restartAt;
};

} // namespace

std::string
shardJournalPath(const std::string &canonical, int shard)
{
    std::string pre, suf;
    splitJournalPath(canonical, pre, suf);
    return pre + ".shard-" + std::to_string(shard) + suf;
}

std::vector<std::string>
listShardJournals(const std::string &canonical)
{
    std::vector<std::string> out;
    if (canonical.empty())
        return out;
    // Match *filenames*, not full paths: directory_iterator spells
    // entries its own way ("./x" vs "x"), but re-joining the matched
    // name onto the canonical path's own directory prefix keeps the
    // returned strings concatenable with shardJournalPath()'s.
    const auto slash = canonical.find_last_of('/');
    const std::string dirPrefix =
        slash == std::string::npos ? std::string()
                                   : canonical.substr(0, slash + 1);
    std::string pre, suf;
    splitJournalPath(canonical.substr(dirPrefix.size()), pre, suf);
    namespace fs = std::filesystem;
    const fs::path scanDir =
        dirPrefix.empty() ? fs::path(".") : fs::path(dirPrefix);
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(scanDir, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.size() <= pre.size() + suf.size())
            continue;
        if (name.compare(0, pre.size(), pre) != 0)
            continue;
        if (!suf.empty()
            && name.compare(name.size() - suf.size(), suf.size(), suf)
                   != 0)
            continue;
        std::string mid = name.substr(
            pre.size(), name.size() - pre.size() - suf.size());
        // mid must be exactly ".shard-<digits>".
        const std::string tag = ".shard-";
        if (mid.size() <= tag.size()
            || mid.compare(0, tag.size(), tag) != 0)
            continue;
        bool digits = true;
        for (std::size_t i = tag.size(); i < mid.size(); ++i)
            digits &= std::isdigit(
                          static_cast<unsigned char>(mid[i]))
                      != 0;
        if (digits)
            out.push_back(dirPrefix + name);
    }
    std::sort(out.begin(), out.end());
    return out;
}

SupervisorResult
runShardedSweep(const std::vector<harness::Cell> &cells,
                const std::vector<std::string> &keys,
                const std::vector<std::vector<std::size_t>> &units,
                const SupervisorConfig &cfg)
{
    SupervisorResult result;
    result.unitsTotal = units.size();
    if (cfg.journalPath.empty()) {
        result.error = "sharded sweep requires a journal path";
        return result;
    }
    auto info = [&](const char *fmt, auto... args) {
        if (!cfg.quiet)
            std::fprintf(stderr, fmt, args...);
    };

    SweepJournal::installSignalFlush();

    // Reboot / prior-run resume: absorb leftover shard files into the
    // canonical journal before partitioning, so precommit filtering
    // sees everything any previous incarnation committed.
    {
        auto leftovers = listShardJournals(cfg.journalPath);
        if (!leftovers.empty()) {
            info("dse: absorbing %zu leftover shard journal(s)\n",
                 leftovers.size());
            std::string err;
            if (!SweepJournal::mergeJournals(cfg.journalPath, leftovers,
                                             &err)) {
                result.error = "shard journal merge failed: " + err;
                return result;
            }
            for (const auto &f : leftovers)
                ::unlink(f.c_str());
        }
    }

    // Precommit filter: units fully answered by the canonical journal
    // never reach a worker.
    std::deque<std::size_t> pending;
    {
        SweepJournal canonical(cfg.journalPath);
        JournalRecord rec;
        for (std::size_t u = 0; u < units.size(); ++u) {
            bool covered = true;
            for (std::size_t i : units[u])
                covered &= canonical.lookup(keys[i], rec);
            if (covered)
                ++result.unitsPrecommitted;
            else
                pending.push_back(u);
        }
    }

    const int totalJobs =
        cfg.runner.jobs > 0
            ? cfg.runner.jobs
            : static_cast<int>(std::max(
                  1u, std::thread::hardware_concurrency()));

    std::set<std::size_t> committed;   // seen D for these units
    std::map<std::size_t, int> strikes; // unit -> worker kills
    std::set<std::size_t> quarantined;
    int shardsNow = std::max(1, cfg.shards);
    int nextShardId = 0;

    const auto progressTimeout =
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(cfg.progressTimeoutSec));

    while (!pending.empty() && shardsNow > 0
           && !SweepJournal::interrupted()) {
        // One round: interleave the pending units over the current
        // shard count.  Unit order is the enumeration order, so the
        // partition is deterministic for any (pending, shardsNow).
        std::vector<Slot> slots(
            std::min<std::size_t>(pending.size(),
                                  static_cast<std::size_t>(shardsNow)));
        for (std::size_t s = 0; s < slots.size(); ++s) {
            slots[s].shard = nextShardId++;
            slots[s].restartAt = Clock::now();
        }
        for (std::size_t i = 0; i < pending.size(); ++i)
            slots[i % slots.size()].remaining.push_back(pending[i]);
        pending.clear();

        harness::RunnerConfig workerRunner = cfg.runner;
        workerRunner.jobs = std::max(
            1, totalJobs / static_cast<int>(slots.size()));

        auto spawn = [&](Slot &slot) {
            int fds[2];
            if (::pipe(fds) != 0) {
                result.error = "pipe() failed";
                return false;
            }
            std::vector<std::size_t> assigned(slot.remaining.begin(),
                                              slot.remaining.end());
            SupervisorConfig workerCfg = cfg;
            workerCfg.runner = workerRunner;
            pid_t pid = ::fork();
            if (pid < 0) {
                ::close(fds[0]);
                ::close(fds[1]);
                result.error = "fork() failed";
                return false;
            }
            if (pid == 0) {
                ::close(fds[0]);
                workerMain(cells, keys, units, assigned, workerCfg,
                           slot.shard, fds[1]);
            }
            ::close(fds[1]);
            slot.pid = pid;
            slot.fd = fds[0];
            slot.buf.clear();
            slot.inflight = -1;
            slot.running = true;
            slot.timedOut = false;
            slot.lastProgress = Clock::now();
            return true;
        };

        auto strikeInflight = [&](Slot &slot) {
            if (slot.inflight < 0)
                return;
            auto u = static_cast<std::size_t>(slot.inflight);
            slot.inflight = -1;
            if (++strikes[u] < 2)
                return;
            quarantined.insert(u);
            result.quarantined.push_back(u);
            result.quarantinedKeys.push_back(keys[units[u].front()]);
            auto it = std::find(slot.remaining.begin(),
                                slot.remaining.end(), u);
            if (it != slot.remaining.end())
                slot.remaining.erase(it);
            info("dse: quarantined poison unit %zu (%s)\n", u,
                 keys[units[u].front()].c_str());
        };

        auto handleMessage = [&](Slot &slot, const std::string &msg) {
            slot.lastProgress = Clock::now();
            if (msg.empty())
                return;
            std::istringstream is(msg);
            char tag = 0;
            is >> tag;
            if (tag == 'S') {
                std::size_t u = 0;
                if (is >> u)
                    slot.inflight = static_cast<long>(u);
            } else if (tag == 'D') {
                std::size_t u = 0, fresh = 0;
                if (!(is >> u >> fresh))
                    return;
                slot.inflight = -1;
                auto it = std::find(slot.remaining.begin(),
                                    slot.remaining.end(), u);
                if (it != slot.remaining.end())
                    slot.remaining.erase(it);
                if (committed.count(u)) {
                    result.reEvaluatedCells += fresh;
                } else {
                    committed.insert(u);
                    ++result.unitsCommitted;
                }
            }
            // 'H' and 'F' only refresh lastProgress.
        };

        auto classifyExit = [&](Slot &slot, int status) {
            slot.running = false;
            slot.fd = -1;
            slot.pid = -1;
            bool crashed;
            std::string why;
            if (slot.timedOut) {
                crashed = true;
                why = "no progress for "
                      + std::to_string(cfg.progressTimeoutSec)
                      + "s (watchdog)";
            } else if (WIFSIGNALED(status)) {
                crashed = true;
                why = std::string("signal ")
                      + std::to_string(WTERMSIG(status));
            } else if (WIFEXITED(status)
                       && WEXITSTATUS(status) == 130) {
                slot.stopped = true;
                return;
            } else if (WIFEXITED(status) && WEXITSTATUS(status) != 0) {
                crashed = true;
                why = "exit status "
                      + std::to_string(WEXITSTATUS(status));
            } else {
                crashed = false;
            }
            if (!crashed || slot.remaining.empty()) {
                // Clean exit — or a crash *after* the last unit
                // committed (the crash-hook tail case): the shard's
                // work is done either way.
                slot.done = true;
                return;
            }
            ++result.workerCrashes;
            strikeInflight(slot);
            if (slot.remaining.empty()) {
                slot.done = true;
                return;
            }
            if (slot.attempt < cfg.restartsPerShard) {
                ++slot.attempt;
                ++result.restarts;
                double backoff =
                    cfg.backoffBaseSec
                    * static_cast<double>(1 << std::min(
                          slot.attempt - 1, 6));
                slot.restartAt =
                    Clock::now()
                    + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(backoff));
                info("dse: shard %d died (%s); restart %d/%d in "
                     "%.1fs, %zu unit(s) left\n",
                     slot.shard, why.c_str(), slot.attempt,
                     cfg.restartsPerShard, backoff,
                     slot.remaining.size());
            } else {
                slot.abandoned = true;
                ++result.degradations;
                info("dse: shard %d died (%s); restart budget "
                     "exhausted, degrading — %zu unit(s) "
                     "re-partitioned\n",
                     slot.shard, why.c_str(), slot.remaining.size());
            }
        };

        auto liveCount = [&] {
            std::size_t n = 0;
            for (const auto &s : slots)
                n += !s.done && !s.abandoned && !s.stopped;
            return n;
        };

        bool spawnFailed = false;
        while (liveCount() > 0 && !SweepJournal::interrupted()
               && !spawnFailed) {
            const auto now = Clock::now();
            for (auto &slot : slots) {
                if (slot.running || slot.done || slot.abandoned
                    || slot.stopped)
                    continue;
                if (slot.remaining.empty()) {
                    slot.done = true;
                    continue;
                }
                if (slot.restartAt <= now && !spawn(slot))
                    spawnFailed = true;
            }

            std::vector<pollfd> fds;
            std::vector<Slot *> fdOwner;
            for (auto &slot : slots) {
                if (slot.running) {
                    fds.push_back(pollfd{slot.fd, POLLIN, 0});
                    fdOwner.push_back(&slot);
                }
            }
            if (fds.empty()) {
                // Every live slot is backing off: nap to the nearest
                // restart edge (capped so interrupts stay responsive).
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(20));
                continue;
            }
            // Bounded poll slice: signal flag and watchdog both get
            // re-checked at least once a second.
            ::poll(fds.data(), fds.size(), 200);

            if (cfg.progressTimeoutSec > 0) {
                for (auto &slot : slots) {
                    if (slot.running && !slot.timedOut
                        && Clock::now() - slot.lastProgress
                               > progressTimeout) {
                        slot.timedOut = true;
                        ::kill(slot.pid, SIGKILL);
                    }
                }
            }

            for (std::size_t k = 0; k < fds.size(); ++k) {
                Slot &slot = *fdOwner[k];
                if (!(fds[k].revents & (POLLIN | POLLHUP | POLLERR))
                    && !slot.timedOut)
                    continue;
                char chunk[4096];
                ssize_t n = ::read(slot.fd, chunk, sizeof(chunk));
                if (n > 0) {
                    slot.buf.append(chunk,
                                    static_cast<std::size_t>(n));
                    std::size_t pos;
                    while ((pos = slot.buf.find('\n'))
                           != std::string::npos) {
                        handleMessage(slot, slot.buf.substr(0, pos));
                        slot.buf.erase(0, pos + 1);
                    }
                    continue;
                }
                if (n < 0 && (errno == EINTR || errno == EAGAIN))
                    continue;
                // EOF: reap and classify.
                ::close(slot.fd);
                int status = 0;
                pid_t pid = slot.pid;
                while (::waitpid(pid, &status, 0) < 0
                       && errno == EINTR) {
                }
                classifyExit(slot, status);
            }
        }

        // Interrupt fan-out: SIGTERM every live worker, give the
        // drain window for unit-boundary exits (their D messages
        // still count), then SIGKILL stragglers.
        if (SweepJournal::interrupted()) {
            for (auto &slot : slots)
                if (slot.running)
                    ::kill(slot.pid, SIGTERM);
            const auto deadline =
                Clock::now()
                + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(cfg.drainSec));
            auto anyRunning = [&] {
                for (const auto &s : slots)
                    if (s.running)
                        return true;
                return false;
            };
            while (anyRunning() && Clock::now() < deadline) {
                std::vector<pollfd> fds;
                std::vector<Slot *> fdOwner;
                for (auto &slot : slots) {
                    if (slot.running) {
                        fds.push_back(pollfd{slot.fd, POLLIN, 0});
                        fdOwner.push_back(&slot);
                    }
                }
                ::poll(fds.data(), fds.size(), 100);
                for (std::size_t k = 0; k < fds.size(); ++k) {
                    Slot &slot = *fdOwner[k];
                    if (!(fds[k].revents
                          & (POLLIN | POLLHUP | POLLERR)))
                        continue;
                    char chunk[4096];
                    ssize_t n =
                        ::read(slot.fd, chunk, sizeof(chunk));
                    if (n > 0) {
                        slot.buf.append(
                            chunk, static_cast<std::size_t>(n));
                        std::size_t pos;
                        while ((pos = slot.buf.find('\n'))
                               != std::string::npos) {
                            handleMessage(slot,
                                          slot.buf.substr(0, pos));
                            slot.buf.erase(0, pos + 1);
                        }
                        continue;
                    }
                    if (n < 0
                        && (errno == EINTR || errno == EAGAIN))
                        continue;
                    ::close(slot.fd);
                    int status = 0;
                    while (::waitpid(slot.pid, &status, 0) < 0
                           && errno == EINTR) {
                    }
                    slot.running = false;
                    slot.stopped = true;
                    slot.pid = -1;
                    slot.fd = -1;
                }
            }
            for (auto &slot : slots) {
                if (!slot.running)
                    continue;
                ::kill(slot.pid, SIGKILL);
                ::close(slot.fd);
                int status = 0;
                while (::waitpid(slot.pid, &status, 0) < 0
                       && errno == EINTR) {
                }
                slot.running = false;
                slot.stopped = true;
            }
            result.interrupted = true;
        }

        if (spawnFailed) {
            // fork/pipe exhaustion: stop the round's survivors so no
            // orphan keeps writing behind the failure report.
            for (auto &slot : slots) {
                if (!slot.running)
                    continue;
                ::kill(slot.pid, SIGKILL);
                ::close(slot.fd);
                int status = 0;
                while (::waitpid(slot.pid, &status, 0) < 0
                       && errno == EINTR) {
                }
                slot.running = false;
            }
        }

        // Collect what this round left over.
        std::size_t abandonedHere = 0;
        for (auto &slot : slots) {
            abandonedHere += slot.abandoned ? 1 : 0;
            for (std::size_t u : slot.remaining)
                if (!committed.count(u) && !quarantined.count(u))
                    pending.push_back(u);
        }
        std::sort(pending.begin(), pending.end());
        pending.erase(std::unique(pending.begin(), pending.end()),
                      pending.end());
        if (result.interrupted || spawnFailed)
            break;
        if (!pending.empty()) {
            shardsNow = static_cast<int>(slots.size())
                        - static_cast<int>(abandonedHere);
            if (shardsNow > 0)
                info("dse: degrading to %d shard(s) for %zu "
                     "leftover unit(s)\n",
                     shardsNow, pending.size());
        }
    }

    // Merge every shard journal into the canonical file — also on
    // interrupt or failure, so committed cells survive for the next
    // resume and a torn shard tail never reaches a reader.
    {
        auto shardFiles = listShardJournals(cfg.journalPath);
        std::string err;
        if (!SweepJournal::mergeJournals(cfg.journalPath, shardFiles,
                                         &err, &result.merge)) {
            if (result.error.empty())
                result.error = "shard journal merge failed: " + err;
            return result;
        }
        for (const auto &f : shardFiles)
            ::unlink(f.c_str());
    }

    if (result.interrupted)
        return result;
    if (!result.error.empty())
        return result;
    if (!pending.empty()) {
        result.unfinished.assign(pending.begin(), pending.end());
        result.error =
            "all shards exhausted their restart budget with "
            + std::to_string(pending.size()) + " unit(s) unfinished";
        return result;
    }
    result.ok = true;
    return result;
}

} // namespace charon::dse
