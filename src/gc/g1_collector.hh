/**
 * @file
 * A Garbage-First-style collector over the region-based G1Heap.
 *
 * Three operations, mirroring G1's phases:
 *
 *  - youngCollect(): evacuate every Eden + Survivor region.  The
 *    collection set's remembered sets replace ParallelScavenge's
 *    card-table Search; evacuation is the same Copy + Scan&Push the
 *    paper accelerates.
 *
 *  - concurrentMark() (stop-the-world here): trace the whole heap
 *    into the begin/end bitmaps, then account per-region liveness by
 *    scanning the bitmap region by region — the Bitmap Count usage
 *    the paper says G1 enjoys "with slight modifications"
 *    (Section 4.6: "it scans the bitmap to identify the state of the
 *    entire heap").  Dead humongous regions are reclaimed here.
 *
 *  - mixedCollect(): evacuate the young regions plus the old regions
 *    the mark found mostly dead (garbage-first region selection).
 *
 * Primitive invocations are recorded into the same TraceRecorder as
 * the other collectors, so G1 runs replay on every platform model.
 */

#ifndef CHARON_GC_G1_COLLECTOR_HH
#define CHARON_GC_G1_COLLECTOR_HH

#include <cstdint>
#include <deque>
#include <unordered_set>

#include "gc/collector_iface.hh"
#include "gc/recorder.hh"
#include "heap/g1_heap.hh"

namespace charon::gc
{

/** What the G1 driver did on an allocation failure. */
enum class G1Outcome
{
    Young,
    Mixed,
    OutOfMemory,
};

/**
 * The collector.
 */
class G1Collector : public CollectorIface
{
  public:
    struct EvacResult
    {
        std::uint64_t objectsEvacuated = 0;
        std::uint64_t bytesEvacuated = 0;
        int regionsCollected = 0;
        /** Regions kept in place because destinations ran out. */
        int regionsRetained = 0;
        /** Objects self-forwarded in place (evacuation failure). */
        std::uint64_t objectsFailed = 0;
        bool outOfRegions = false;
    };

    struct MarkResult
    {
        std::uint64_t liveObjects = 0;
        std::uint64_t liveBytes = 0;
        int humongousFreed = 0;
    };

    G1Collector(heap::G1Heap &heap, TraceRecorder &recorder);

    // ------------------------------------------------------------------
    // CollectorIface

    const char *name() const override { return "g1"; }

    /** Copy + Scan&Push in evacuation, Bitmap Count in the liveness
     *  pass; remembered sets replace the card-table Search. */
    CapabilitySet capabilities() const override;

    mem::Addr allocate(heap::KlassId klass,
                       std::uint64_t array_len = 0) override
    {
        return heap_.allocate(klass, array_len);
    }

    /** Half a region, real G1's humongous threshold. */
    bool isHumongous(std::uint64_t size_words) const override
    {
        return size_words * 8 > heap_.config().regionBytes / 2;
    }

    mem::Addr allocateHumongous(heap::KlassId klass,
                                std::uint64_t array_len = 0) override
    {
        return heap_.allocateHumongous(klass, array_len);
    }

    /** Family-neutral adapter over collectOnAllocationFailure(). */
    GcOutcome onAllocationFailure() override;

    std::uint64_t minorCount() const override { return youngs_; }
    std::uint64_t majorCount() const override { return mixeds_; }

    // ------------------------------------------------------------------
    // G1-specific driver API (fine-grained outcomes)

    /** Evacuate all Eden + Survivor regions. */
    EvacResult youngCollect();

    /** Whole-heap marking + per-region liveness (Bitmap Count). */
    MarkResult concurrentMark();

    /**
     * Young regions plus old regions whose marked liveness is below
     * @p live_threshold of capacity.
     * @pre concurrentMark() ran since the last mutation-heavy phase
     *      (the driver guarantees this)
     */
    EvacResult mixedCollect(double live_threshold = 0.65);

    /** Policy driver for the mutator's allocation failures. */
    G1Outcome collectOnAllocationFailure();

    /**
     * A humongous allocation needs contiguous free regions; as in
     * real G1, its failure initiates a marking cycle (which reclaims
     * dead humongous objects eagerly) plus a mixed collection.
     */
    G1Outcome collectOnHumongousFailure();

    std::uint64_t youngCount() const { return youngs_; }
    std::uint64_t mixedCount() const { return mixeds_; }
    std::uint64_t markCount() const { return marks_; }

  private:
    struct SlotRef
    {
        bool isRoot;
        std::uint64_t value; ///< root index or slot VA
    };

    mem::Addr readSlot(const SlotRef &slot) const;
    void writeSlot(const SlotRef &slot, mem::Addr target);

    /** Evacuate every region in @p cset. */
    EvacResult evacuate(const std::unordered_set<int> &cset);

    void scanRemsets(const std::unordered_set<int> &cset);
    void processSlot(const SlotRef &slot,
                     const std::unordered_set<int> &cset);
    mem::Addr copyOut(mem::Addr obj,
                      const std::unordered_set<int> &cset);
    void scanNewCopy(mem::Addr new_obj,
                     const std::unordered_set<int> &cset);
    void releaseCset(const std::unordered_set<int> &cset);

    heap::G1Heap &heap_;
    TraceRecorder &rec_;
    std::deque<SlotRef> pending_;
    /** Reference-kind holders registered during evacuation/marking. */
    std::vector<mem::Addr> weakRefs_;
    /** Regions holding self-forwarded objects (kept, not freed). */
    std::unordered_set<int> failedRegions_;
    EvacResult current_;
    bool markValid_ = false;
    std::uint64_t youngs_ = 0;
    std::uint64_t mixeds_ = 0;
    std::uint64_t marks_ = 0;
};

} // namespace charon::gc

#endif // CHARON_GC_G1_COLLECTOR_HH
