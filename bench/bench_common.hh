/**
 * @file
 * Shared plumbing for the per-figure bench binaries: run a workload
 * functionally once, replay its trace on the requested platforms, and
 * cache runs so a binary that needs several platforms pays the
 * functional cost once.
 */

#ifndef CHARON_BENCH_COMMON_HH
#define CHARON_BENCH_COMMON_HH

#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "platform/platform_sim.hh"
#include "report/table.hh"
#include "sim/logging.hh"
#include "workload/mutator.hh"

namespace charon::bench
{

/** A completed functional run plus its trace. */
struct WorkloadRun
{
    std::unique_ptr<workload::Mutator> mutator;
    workload::Mutator::RunResult result;

    const gc::RunTrace &trace() const
    {
        return mutator->recorder().run();
    }
};

/** Execute @p name at @p heap_bytes (0 = catalog default). */
inline WorkloadRun
runWorkload(const std::string &name, std::uint64_t heap_bytes = 0,
            std::uint64_t seed = 1, int gc_threads = 8,
            int num_cubes = 4)
{
    const auto &params = workload::findWorkload(name);
    if (heap_bytes == 0)
        heap_bytes = params.heapBytes;
    WorkloadRun run;
    run.mutator = std::make_unique<workload::Mutator>(
        params, heap_bytes, seed, gc_threads, num_cubes);
    run.result = run.mutator->run();
    if (run.result.oom) {
        sim::warn("workload %s hit OOM at %llu MiB", name.c_str(),
                  static_cast<unsigned long long>(heap_bytes >> 20));
    }
    return run;
}

/** Replay @p run on @p kind with optional config overrides. */
inline platform::RunTiming
replay(const WorkloadRun &run, sim::PlatformKind kind,
       const sim::SystemConfig &cfg = sim::SystemConfig{})
{
    platform::PlatformSim sim_(kind, cfg, run.mutator->cubeShift());
    return sim_.simulate(run.trace());
}

/** All six workload names in catalog (Table 3) order. */
inline std::vector<std::string>
allWorkloads()
{
    std::vector<std::string> names;
    for (const auto &w : workload::workloadCatalog())
        names.push_back(w.name);
    return names;
}

} // namespace charon::bench

#endif // CHARON_BENCH_COMMON_HH
