/**
 * @file
 * Chaos bench: the resilience counterpart of the figure benches.
 *
 * Two tables:
 *  - "chaos": the degradation curve.  One functional trace replayed
 *    on DDR4 (baseline), on a clean Charon, and on a Charon with one
 *    injected fault per row (unit stalls/deaths, TLB poison, link and
 *    TSV degradation, cube outage) at swept severities; the last
 *    column is the fraction of the clean Charon speedup retained.
 *  - "chaos-recovery": the functional faults.  GC-internal allocation
 *    failure (promotion-failure recovery + full-GC escalation) and
 *    recorder failover must leave a verifier-clean heap; seeded card
 *    table and mark-bitmap bit flips must be detected by the metadata
 *    auditors.
 *
 * Determinism: every fault draw derives from --fault-seed inside one
 * single-threaded replay, so the whole report is byte-identical at
 * any --jobs.  Exits non-zero if any fault fails to degrade
 * gracefully or any corruption goes undetected.
 *
 *   chaos --smoke               # pinned CI grid
 *   chaos --fault unit-stall:rate=0.5:stall-ns=800
 */

#include "bench_common.hh"

#include <cstdio>

#include "fault/fault.hh"
#include "fault/inject.hh"
#include "gc/verify.hh"
#include "sim/logging.hh"
#include "workload/mutator.hh"

using namespace charon;
using namespace charon::bench;

namespace
{

struct GridEntry
{
    const char *label; ///< row label (severity spelled out)
    const char *spec;  ///< parseFaultSpec() text
    bool smoke;        ///< part of the pinned --smoke grid
};

/**
 * The default degradation sweep: each timing-fault kind at escalating
 * severity.  The --smoke subset pins one row per kind so the CI job
 * stays cheap while still crossing every injection site.
 */
const GridEntry kGrid[] = {
    {"unit-stall 10%", "unit-stall:rate=0.1:stall-ns=500", false},
    {"unit-stall 50%", "unit-stall:rate=0.5:stall-ns=500", true},
    {"unit-stall 100%", "unit-stall:rate=1:stall-ns=500", false},
    {"unit-death cube0", "unit-death:cube=0", true},
    {"unit-death all", "unit-death", false},
    {"tlb-poison 10%", "tlb-poison:rate=0.1", false},
    {"tlb-poison 50%", "tlb-poison:rate=0.5", true},
    {"link-degrade 50%", "link-degrade:cube=0:factor=0.5", false},
    {"link-degrade 90%", "link-degrade:cube=0:factor=0.1", true},
    {"tsv-degrade 50%", "tsv-degrade:cube=0:factor=0.5", false},
    {"tsv-degrade 90%", "tsv-degrade:cube=0:factor=0.1", true},
    {"cube-offline", "cube-offline:cube=0", true},
};

} // namespace

int
main(int argc, char **argv)
{
    harness::Options opt;
    opt.helpHeader =
        "chaos: sweep injected faults and report the Charon speedup "
        "retained\nplus functional recovery checks (see EXPERIMENTS.md)";

    std::string workload = "KM";
    std::uint64_t faultSeed = 1;
    bool smoke = false;
    std::vector<std::string> faultSpecs;
    opt.flag("--workload", &workload,
             "workload the faults are injected into\n(default KM)");
    opt.flag("--fault-seed", &faultSeed,
             "seed of all stochastic fault draws\n(default 1)");
    opt.flag("--smoke", &smoke,
             "pinned one-row-per-kind grid (CI)");
    opt.flag(
        "--fault",
        [&faultSpecs](const std::string &v) {
            faultSpecs.push_back(v);
            return true;
        },
        "sweep this fault spec instead of the\nbuilt-in grid "
        "(repeatable)",
        "KIND[:KEY=V]...");
    if (!harness::parseOptions(argc, argv, opt))
        return 2;

    struct Row
    {
        std::string label;
        fault::FaultPlan plan;
    };
    std::vector<Row> rows;
    auto addRow = [&](std::string label,
                      const std::string &text) -> bool {
        fault::FaultSpec spec;
        std::string error;
        if (!fault::parseFaultSpec(text, spec, &error)) {
            std::fprintf(stderr, "%s: %s\n", argv[0], error.c_str());
            return false;
        }
        fault::FaultPlan plan;
        plan.seed = faultSeed;
        plan.specs.push_back(spec);
        rows.push_back({std::move(label), std::move(plan)});
        return true;
    };
    if (!faultSpecs.empty()) {
        for (const auto &text : faultSpecs)
            if (!addRow(text, text))
                return 2;
    } else {
        for (const auto &g : kGrid) {
            if (smoke && !g.smoke)
                continue;
            if (!addRow(g.label, g.spec))
                return 2;
        }
    }

    ExperimentRunner runner(opt.runnerConfig());
    Report report(opt);

    // One functional trace; cells: [0] DDR4 baseline, [1] clean
    // Charon, then one faulted Charon per row.
    std::vector<Cell> cells;
    cells.push_back(cell(workload, sim::PlatformKind::HostDdr4));
    cells.push_back(cell(workload, sim::PlatformKind::CharonNmp));
    for (const auto &row : rows) {
        Cell c = cell(workload, sim::PlatformKind::CharonNmp);
        c.faults = row.plan;
        c.label = row.label + " on Charon";
        cells.push_back(std::move(c));
    }
    auto results = runner.run(cells);

    auto &table = report.table(
        "chaos",
        "Chaos: Charon speedup retained under injected faults "
        "(workload " + workload + ", fault seed "
            + std::to_string(faultSeed) + ")",
        {"fault", "DDR4 gc(s)", "faulted gc(s)", "clean speedup",
         "faulted speedup", "retained"});

    if (report.checkCell(cells[0], results[0])
        && report.checkCell(cells[1], results[1])) {
        double base = results[0].timing.gcSeconds;
        double clean = results[1].timing.gcSeconds;
        double cleanSpeedup = clean > 0 ? base / clean : 0;
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const auto &cell_i = cells[2 + i];
            const auto &res_i = results[2 + i];
            if (!report.checkCell(cell_i, res_i))
                continue;
            double faulted = res_i.timing.gcSeconds;
            double faultedSpeedup = faulted > 0 ? base / faulted : 0;
            table.addRow({rows[i].label, report::num(base, 4),
                          report::num(faulted, 4),
                          report::times(cleanSpeedup),
                          report::times(faultedSpeedup),
                          report::percent(faultedSpeedup,
                                          cleanSpeedup)});
        }
        table.note("\nretained = faulted speedup / clean speedup; "
                   "every fault must finish the replay (degrade, "
                   "never wedge)");
    }

    // ---- functional faults: recovery and detection ---------------
    auto &rec = report.table(
        "chaos-recovery",
        "Chaos: functional fault recovery (verifier-audited)",
        {"fault", "outcome"});
    const auto &params = workload::findWorkload(workload);
    auto fail = [&](const std::string &label, std::string why) {
        harness::CellResult r;
        r.error = std::move(why);
        report.cellFailed(label, r); // non-OOM: exit goes non-zero
        rec.addRow({label, "FAILED"});
    };

    // The clean functional run all recovery rows compare against.
    workload::Mutator cleanRun(params, params.heapBytes, /*seed=*/1);
    auto cleanResult = cleanRun.run();
    gc::checkHeapIntegrity(cleanRun.heap());
    auto cleanFp = gc::fingerprintHeap(cleanRun.heap());
    if (cleanResult.oom)
        sim::fatal("chaos: clean %s run OOMed — grid is miscalibrated",
                   workload.c_str());

    { // GC-internal allocation failure mid-collection: the scavenger
      // must finish degraded (promotion failure) and the policy must
      // escalate to a full collection that reclaims the heap.
        workload::Mutator m(params, params.heapBytes, /*seed=*/1);
        m.heap().setGcAllocFault(/*after=*/32, /*count=*/4);
        auto r = m.run();
        gc::checkHeapIntegrity(m.heap());
        auto cards = gc::verifyCardTable(m.heap());
        if (r.oom)
            fail("alloc-fail", "faulted run OOMed");
        else if (!cards.ok())
            fail("alloc-fail", "card table corrupt: " + cards.str());
        else
            rec.addRow(
                {"alloc-fail",
                 sim::format("recovered: %llu minor + %llu major "
                             "GCs (clean run: %llu + %llu), heap "
                             "verifier clean",
                             (unsigned long long)r.minorGcs,
                             (unsigned long long)r.majorGcs,
                             (unsigned long long)cleanResult.minorGcs,
                             (unsigned long long)cleanResult.majorGcs)});
    }

    { // Recorder failover: after the trip every recorded bucket is
      // host-only, and the heap the degraded trace came from is
      // byte-for-byte the clean run's graph.
        workload::Mutator m(params, params.heapBytes, /*seed=*/1);
        m.recorder().armFailover(/*after=*/64);
        auto r = m.run();
        gc::checkHeapIntegrity(m.heap());
        auto fp = gc::fingerprintHeap(m.heap());
        if (r.oom)
            fail("charon-failover", "faulted run OOMed");
        else if (!m.recorder().failoverTripped())
            fail("charon-failover", "failover never tripped");
        else if (!(fp == cleanFp))
            fail("charon-failover",
                 "host-only fingerprint differs from clean run");
        else
            rec.addRow({"charon-failover",
                        sim::format("host-only fallback tripped; "
                                    "fingerprint matches clean run "
                                    "(%llu objects)",
                                    (unsigned long long)fp.objects)});
    }

    { // Seeded card-table corruption must be detected.
        fault::FaultPlan plan;
        plan.seed = faultSeed;
        fault::FaultSpec spec;
        spec.kind = fault::FaultKind::CardFlip;
        spec.count = 8;
        plan.specs.push_back(spec);
        auto flips = fault::applyHeapFaults(cleanRun.heap(), plan);
        auto audit = gc::verifyCardTable(cleanRun.heap());
        if (audit.ok())
            fail("card-flip",
                 sim::format("%llu flips went undetected",
                             (unsigned long long)flips));
        else
            rec.addRow(
                {"card-flip",
                 sim::format("detected: %llu corrupt entries from "
                             "%llu flips",
                             (unsigned long long)audit.corrupt,
                             (unsigned long long)flips)});
    }

    { // Seeded mark-bitmap corruption must be detected.
        gc::populateMarkBitmaps(cleanRun.heap());
        auto before = gc::verifyMarkBitmaps(cleanRun.heap());
        fault::FaultPlan plan;
        plan.seed = faultSeed;
        fault::FaultSpec spec;
        spec.kind = fault::FaultKind::MarkBitmapFlip;
        spec.count = 8;
        plan.specs.push_back(spec);
        auto flips = fault::applyHeapFaults(cleanRun.heap(), plan);
        auto audit = gc::verifyMarkBitmaps(cleanRun.heap());
        if (!before.ok())
            fail("mark-bitmap-flip",
                 "bitmaps corrupt before injection: " + before.str());
        else if (audit.ok())
            fail("mark-bitmap-flip",
                 sim::format("%llu flips went undetected",
                             (unsigned long long)flips));
        else
            rec.addRow(
                {"mark-bitmap-flip",
                 sim::format("detected: %llu corrupt entries from "
                             "%llu flips",
                             (unsigned long long)audit.corrupt,
                             (unsigned long long)flips)});
    }

    harness::finishTimeline(runner, opt);
    return report.finish(std::cout);
}
