#include "param_space.hh"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <set>
#include <sstream>

#include "sim/rng.hh"
#include "workload/catalog.hh"

namespace charon::dse
{

std::string
DsePoint::str() const
{
    std::ostringstream os;
    os << workload;
    // Emit the collector token only off the default, so every
    // pre-existing journal key (all ParallelScavenge) still matches
    // and resume stays intact.
    if (collector != harness::CollectorKind::ParallelScavenge)
        os << '/' << harness::collectorKindToken(collector);
    // Same back-compat rule for the backend axis: the default
    // (near-memory Charon) emits nothing, so journals written before
    // the axis existed resume with zero re-evaluated cells.
    if (backend != sim::PlatformKind::CharonNmp)
        os << "/bk-" << sim::backendName(sim::backendFor(backend));
    // Fleet axes follow the same off-default-only rule.
    if (tenants != 0)
        os << "/ft" << tenants;
    if (arbPolicy != "fcfs")
        os << "/arb-" << arbPolicy;
    if (fleetSloMs != 0)
        os << "/slo" << fleetSloMs;
    os << "/h" << heapBytes << "/s" << seed << "/t"
       << gcThreads << "/c" << numCubes << "/ct"
       << copyOffloadThreshold << "/cs" << copySearchUnits << "/bc"
       << bitmapCountUnits << "/sp" << scanPushUnits << "/tsv"
       << tsvGBsPerCube << "/link" << linkGBs
       << (distributedStructures ? "/dist" : "/uni");
    return os.str();
}

harness::FunctionalKey
DsePoint::functionalKey() const
{
    harness::FunctionalKey key;
    key.workload = workload;
    key.collector = collector;
    key.heapBytes = heapBytes;
    key.seed = seed;
    key.gcThreads = gcThreads;
    key.numCubes = numCubes;
    key.copyOffloadThreshold = copyOffloadThreshold;
    return key;
}

sim::SystemConfig
DsePoint::systemConfig() const
{
    sim::SystemConfig cfg = sim::SystemConfig::table2();
    cfg.gcThreads = gcThreads;
    cfg.hmc.cubes = numCubes;
    cfg.hmc.internalGBsPerCube = tsvGBsPerCube;
    cfg.hmc.linkGBs = linkGBs;
    cfg.charon.copySearchUnits = copySearchUnits;
    cfg.charon.bitmapCountUnits = bitmapCountUnits;
    cfg.charon.scanPushUnits = scanPushUnits;
    cfg.charon.distributedStructures = distributedStructures;
    return cfg;
}

namespace
{

bool
parseU64(const std::string &v, std::uint64_t &out)
{
    errno = 0;
    char *end = nullptr;
    unsigned long long n = std::strtoull(v.c_str(), &end, 10);
    if (errno != 0 || end == nullptr || *end != '\0' || v.empty())
        return false;
    out = n;
    return true;
}

bool
parseInt(const std::string &v, int &out)
{
    std::uint64_t n;
    if (!parseU64(v, n) || n > 1u << 20)
        return false;
    out = static_cast<int>(n);
    return true;
}

bool
parseDouble(const std::string &v, double &out)
{
    errno = 0;
    char *end = nullptr;
    out = std::strtod(v.c_str(), &end);
    return errno == 0 && end != nullptr && *end == '\0' && !v.empty();
}

bool
parseBool(const std::string &v, bool &out)
{
    if (v == "0" || v == "false" || v == "no") {
        out = false;
        return true;
    }
    if (v == "1" || v == "true" || v == "yes") {
        out = true;
        return true;
    }
    return false;
}

struct AxisDef
{
    const char *name;
    const char *help;
    bool (*apply)(DsePoint &, const std::string &);
};

const AxisDef kAxes[] = {
    {"workload", "catalog short name (BS KM LR CC PR ALS SRV SES)",
     [](DsePoint &p, const std::string &v) {
         // Validate against the catalogs here so a typo fails at
         // registration instead of hitting findWorkload's fatal path
         // mid-sweep; canonicalize the case while at it.
         if (const auto *w = workload::findWorkloadOrNull(v)) {
             p.workload = w->name;
             return true;
         }
         return false;
     }},
    {"collector", "collector family (ps g1 cms rc)",
     [](DsePoint &p, const std::string &v) {
         using harness::CollectorKind;
         static const std::pair<const char *, CollectorKind> kinds[] = {
             {"ps", CollectorKind::ParallelScavenge},
             {"g1", CollectorKind::G1},
             {"cms", CollectorKind::Cms},
             {"rc", CollectorKind::Rc},
         };
         for (const auto &[token, kind] : kinds) {
             if (v == token) {
                 p.collector = kind;
                 return true;
             }
         }
         return false;
     }},
    {"heap-mib", "max heap in MiB (0 = catalog default)",
     [](DsePoint &p, const std::string &v) {
         std::uint64_t mib;
         if (!parseU64(v, mib))
             return false;
         p.heapBytes = mib << 20;
         return true;
     }},
    {"seed", "workload RNG seed",
     [](DsePoint &p, const std::string &v) {
         return parseU64(v, p.seed);
     }},
    {"gc-threads", "GC threads (functional + replay)",
     [](DsePoint &p, const std::string &v) {
         return parseInt(v, p.gcThreads) && p.gcThreads > 0;
     }},
    {"cubes", "HMC cube count (trace is re-recorded)",
     [](DsePoint &p, const std::string &v) {
         return parseInt(v, p.numCubes) && p.numCubes > 0;
     }},
    {"offload-threshold", "copies below this stay on the host (bytes)",
     [](DsePoint &p, const std::string &v) {
         return parseU64(v, p.copyOffloadThreshold);
     }},
    {"units", "per-primitive unit count (sets all three kinds)",
     [](DsePoint &p, const std::string &v) {
         int n;
         if (!parseInt(v, n) || n <= 0)
             return false;
         p.copySearchUnits = n;
         p.bitmapCountUnits = n;
         p.scanPushUnits = n;
         return true;
     }},
    {"copy-search-units", "Copy/Search units in total",
     [](DsePoint &p, const std::string &v) {
         return parseInt(v, p.copySearchUnits) && p.copySearchUnits > 0;
     }},
    {"bitmap-count-units", "Bitmap Count units in total",
     [](DsePoint &p, const std::string &v) {
         return parseInt(v, p.bitmapCountUnits)
                && p.bitmapCountUnits > 0;
     }},
    {"scan-push-units", "Scan&Push units (central cube)",
     [](DsePoint &p, const std::string &v) {
         return parseInt(v, p.scanPushUnits) && p.scanPushUnits > 0;
     }},
    {"tsv-gbs", "internal (TSV) bandwidth per cube, GB/s",
     [](DsePoint &p, const std::string &v) {
         return parseDouble(v, p.tsvGBsPerCube) && p.tsvGBsPerCube > 0;
     }},
    {"link-gbs", "external serial-link bandwidth, GB/s",
     [](DsePoint &p, const std::string &v) {
         return parseDouble(v, p.linkGBs) && p.linkGBs > 0;
     }},
    {"distributed", "distributed bitmap cache/TLB (0|1)",
     [](DsePoint &p, const std::string &v) {
         return parseBool(v, p.distributedStructures);
     }},
    {"tenants", "tenant heaps sharing the node (0 = single-tenant)",
     [](DsePoint &p, const std::string &v) {
         return parseInt(v, p.tenants) && p.tenants <= 64;
     }},
    {"arb", "fleet arbitration policy (fcfs fair deadline)",
     [](DsePoint &p, const std::string &v) {
         if (v != "fcfs" && v != "fair" && v != "deadline")
             return false;
         p.arbPolicy = v;
         return true;
     }},
    {"slo-ms", "fleet GC-pause SLO deadline in ms (0 = none)",
     [](DsePoint &p, const std::string &v) {
         return parseDouble(v, p.fleetSloMs) && p.fleetSloMs >= 0;
     }},
    {"backend", "offload backend vs the DDR4 baseline "
                "(nmp igpu cxl host)",
     [](DsePoint &p, const std::string &v) {
         using sim::PlatformKind;
         static const std::pair<const char *, PlatformKind> kinds[] = {
             {"nmp", PlatformKind::CharonNmp},
             {"igpu", PlatformKind::IgpuOffload},
             {"cxl", PlatformKind::CxlMsa},
             {"host", PlatformKind::HostHmc},
         };
         for (const auto &[token, kind] : kinds) {
             if (v == token) {
                 p.backend = kind;
                 return true;
             }
         }
         return false;
     }},
};

const AxisDef *
findAxis(const std::string &name)
{
    for (const auto &def : kAxes)
        if (name == def.name)
            return &def;
    return nullptr;
}

} // namespace

bool
applyAxisValue(DsePoint &point, const std::string &name,
               const std::string &value, std::string *error)
{
    const AxisDef *def = findAxis(name);
    if (def == nullptr) {
        if (error)
            *error = "unknown axis '" + name + "'";
        return false;
    }
    if (!def->apply(point, value)) {
        if (error)
            *error = "bad value '" + value + "' for axis '" + name + "'";
        return false;
    }
    return true;
}

bool
ParamSpace::axis(const std::string &name,
                 std::vector<std::string> values, std::string *error)
{
    if (values.empty()) {
        if (error)
            *error = "axis '" + name + "' has no values";
        return false;
    }
    // Validate every value against a scratch point now, so a typo
    // fails the command line, not the hundredth sweep cell.
    DsePoint scratch = base;
    for (const auto &v : values)
        if (!applyAxisValue(scratch, name, v, error))
            return false;
    axes_.push_back(ParamAxis{name, std::move(values)});
    return true;
}

bool
ParamSpace::axisSpec(const std::string &spec, std::string *error)
{
    auto eq = spec.find('=');
    if (eq == std::string::npos || eq == 0) {
        if (error)
            *error = "expected NAME=V1,V2,... in axis '" + spec + "'";
        return false;
    }
    std::vector<std::string> values;
    std::stringstream ss(spec.substr(eq + 1));
    std::string item;
    while (std::getline(ss, item, ','))
        values.push_back(item);
    return axis(spec.substr(0, eq), std::move(values), error);
}

std::size_t
ParamSpace::size() const
{
    std::size_t n = 1;
    for (const auto &axis : axes_)
        n *= axis.values.size();
    return n;
}

std::vector<DsePoint>
ParamSpace::enumerate() const
{
    const std::size_t n = size();
    std::vector<DsePoint> points;
    points.reserve(n);
    for (std::size_t index = 0; index < n; ++index) {
        DsePoint p = base;
        // Mixed-radix decode, last axis fastest.
        std::size_t rest = index;
        for (std::size_t a = axes_.size(); a-- > 0;) {
            const auto &axis = axes_[a];
            std::size_t v = rest % axis.values.size();
            rest /= axis.values.size();
            // Values were validated at registration; re-application
            // cannot fail.
            applyAxisValue(p, axis.name, axis.values[v], nullptr);
        }
        points.push_back(std::move(p));
    }
    return points;
}

std::vector<DsePoint>
ParamSpace::sample(std::size_t samples, std::uint64_t seed) const
{
    auto all = enumerate();
    if (samples >= all.size())
        return all;
    // Seeded Floyd sampling of distinct indices, then enumeration
    // order: deterministic in (space, samples, seed) and independent
    // of --jobs.
    sim::Rng rng(seed);
    std::set<std::size_t> picked;
    for (std::size_t j = all.size() - samples; j < all.size(); ++j) {
        std::size_t t = static_cast<std::size_t>(rng.below(j + 1));
        if (!picked.insert(t).second)
            picked.insert(j);
    }
    std::vector<DsePoint> points;
    points.reserve(samples);
    for (std::size_t i : picked)
        points.push_back(all[i]);
    return points;
}

std::vector<std::pair<std::string, std::string>>
ParamSpace::axisHelp()
{
    std::vector<std::pair<std::string, std::string>> help;
    for (const auto &def : kAxes)
        help.emplace_back(def.name, def.help);
    return help;
}

} // namespace charon::dse
