#include "timeline.hh"

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <ostream>

#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace charon::sim
{

namespace
{

std::atomic<std::uint64_t> instancesCreated{0};
std::atomic<std::uint64_t> eventsRecorded{0};

/** ts/dur in microseconds: 1 Tick == 1 ps == 1e-6 us, so six decimal
 *  places render every tick exactly. */
void
putMicros(std::ostream &os, Tick ticks)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%06" PRIu64,
                  ticks / 1000000, ticks % 1000000);
    os << buf;
}

void
putValue(std::ostream &os, double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << buf;
}

void
putJsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"':  os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

} // namespace

Timeline::Timeline(std::string process_name)
    : processName_(std::move(process_name))
{
    instancesCreated.fetch_add(1, std::memory_order_relaxed);
    names_.emplace_back(); // kEmptyName
    nameIndex_.emplace(std::string(), kEmptyName);
}

Timeline::NameId
Timeline::intern(const std::string &name)
{
    auto it = nameIndex_.find(name);
    if (it != nameIndex_.end())
        return it->second;
    NameId id = static_cast<NameId>(names_.size());
    names_.push_back(name);
    nameIndex_.emplace(name, id);
    return id;
}

Timeline::TrackId
Timeline::track(const std::string &name)
{
    auto it = trackIndex_.find(name);
    if (it != trackIndex_.end())
        return it->second;
    TrackId id = static_cast<TrackId>(trackNames_.size());
    trackNames_.push_back(name);
    trackIndex_.emplace(name, id);
    return id;
}

void
Timeline::record(Event e)
{
    eventsRecorded.fetch_add(1, std::memory_order_relaxed);
    events_.push_back(std::move(e));
}

void
Timeline::beginSpan(TrackId track, const std::string &name, Tick start)
{
    beginSpan(track, intern(name), start);
}

void
Timeline::beginSpan(TrackId track, NameId name, Tick start)
{
    record({EventType::Begin, track, name, start, 0, 0});
}

void
Timeline::endSpan(TrackId track, Tick end)
{
    record({EventType::End, track, kEmptyName, end, 0, 0});
}

void
Timeline::completeSpan(TrackId track, const std::string &name, Tick start,
                       Tick end)
{
    completeSpan(track, intern(name), start, end);
}

void
Timeline::completeSpan(TrackId track, NameId name, Tick start, Tick end)
{
    CHARON_ASSERT(end >= start, "span on '%s' ends before it starts",
                  trackNames_[track].c_str());
    record({EventType::Complete, track, name, start, end, 0});
}

void
Timeline::instant(TrackId track, const std::string &name, Tick at)
{
    instant(track, intern(name), at);
}

void
Timeline::instant(TrackId track, NameId name, Tick at)
{
    record({EventType::Instant, track, name, at, 0, 0});
}

void
Timeline::counter(TrackId track, Tick at, double value)
{
    record({EventType::Counter, track, kEmptyName, at, 0, value});
}

std::uint64_t
Timeline::totalInstancesCreated()
{
    return instancesCreated.load(std::memory_order_relaxed);
}

std::uint64_t
Timeline::totalEventsRecorded()
{
    return eventsRecorded.load(std::memory_order_relaxed);
}

void
Timeline::writeChromeTrace(std::ostream &os,
                           const std::vector<const Timeline *> &timelines)
{
    os << "{\"traceEvents\":[";
    bool first = true;
    auto sep = [&] {
        if (!first)
            os << ",\n";
        first = false;
    };
    for (std::size_t p = 0; p < timelines.size(); ++p) {
        const Timeline *tl = timelines[p];
        if (tl == nullptr)
            continue;
        const std::size_t pid = p + 1;
        sep();
        os << "{\"ph\":\"M\",\"pid\":" << pid
           << ",\"name\":\"process_name\",\"args\":{\"name\":";
        putJsonString(os, tl->processName());
        os << "}}";
        for (TrackId t = 0; t < tl->trackCount(); ++t) {
            sep();
            os << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":"
               << t + 1 << ",\"name\":\"thread_name\",\"args\":{"
               << "\"name\":";
            putJsonString(os, tl->trackName(t));
            os << "}}";
        }
        for (const Event &e : tl->events()) {
            sep();
            switch (e.type) {
              case EventType::Begin:
                os << "{\"ph\":\"B\",\"pid\":" << pid << ",\"tid\":"
                   << e.track + 1 << ",\"name\":";
                putJsonString(os, tl->eventName(e.name));
                os << ",\"ts\":";
                putMicros(os, e.start);
                os << "}";
                break;
              case EventType::End:
                os << "{\"ph\":\"E\",\"pid\":" << pid << ",\"tid\":"
                   << e.track + 1 << ",\"ts\":";
                putMicros(os, e.start);
                os << "}";
                break;
              case EventType::Complete:
                os << "{\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":"
                   << e.track + 1 << ",\"name\":";
                putJsonString(os, tl->eventName(e.name));
                os << ",\"ts\":";
                putMicros(os, e.start);
                os << ",\"dur\":";
                putMicros(os, e.end - e.start);
                os << "}";
                break;
              case EventType::Instant:
                os << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":" << pid
                   << ",\"tid\":" << e.track + 1 << ",\"name\":";
                putJsonString(os, tl->eventName(e.name));
                os << ",\"ts\":";
                putMicros(os, e.start);
                os << "}";
                break;
              case EventType::Counter:
                os << "{\"ph\":\"C\",\"pid\":" << pid << ",\"name\":";
                putJsonString(os, tl->trackName(e.track));
                os << ",\"ts\":";
                putMicros(os, e.start);
                os << ",\"args\":{\"value\":";
                putValue(os, e.value);
                os << "}}";
                break;
            }
        }
    }
    os << "],\"displayTimeUnit\":\"ms\"}\n";
}

ScopedSpan::ScopedSpan(Timeline *timeline, const EventQueue &eq,
                       Timeline::TrackId track, const std::string &name)
    : timeline_(timeline), eq_(eq), track_(track),
      name_(timeline ? timeline->intern(name) : Timeline::kEmptyName),
      start_(eq.now())
{
}

ScopedSpan::~ScopedSpan()
{
    if (timeline_)
        timeline_->completeSpan(track_, name_, start_, eq_.now());
}

} // namespace charon::sim
