#include "capability.hh"

namespace charon::gc
{

std::string
primMaskNames(std::uint32_t mask)
{
    std::string out;
    for (int k = 0; k < kNumPrimKinds; ++k) {
        if ((mask & (1u << k)) == 0)
            continue;
        if (!out.empty())
            out += '+';
        out += primKindName(static_cast<PrimKind>(k));
    }
    return out.empty() ? "-" : out;
}

} // namespace charon::gc
