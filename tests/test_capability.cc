/**
 * @file
 * Tests of the collector capability model (gc/capability.hh):
 *
 *  - every collector's declared CapabilitySet is honest against the
 *    trace it records (nothing non-declared is ever marked
 *    offloadable, and the flagship primitives actually appear);
 *  - an empty capability set degrades the whole run to the host
 *    path: the Charon replay of such a trace is identical to the
 *    accelerator-free HostHmc replay;
 *  - heap-metadata fault kinds are filtered by the capability set
 *    (no card-table faults against a collector with no card table).
 */

#include <gtest/gtest.h>

#include <memory>

#include "fault/inject.hh"
#include "gc/capability.hh"
#include "gc/g1_collector.hh"
#include "gc/verify.hh"
#include "platform/platform_sim.hh"
#include "workload/g1_mutator.hh"
#include "workload/mutator.hh"

using namespace charon;
using gc::CapabilitySet;
using gc::PrimKind;

namespace
{

struct Recorded
{
    gc::RunTrace trace;
    CapabilitySet caps;
    int cubeShift = 0;
};

/** Run the cheapest calibrated workload under @p model. */
Recorded
record(gc::CollectorModel model)
{
    const auto &params = workload::findWorkload("CC");
    // The RC collector serves every allocation from the old space,
    // so it needs the full catalog heap; the generational families
    // are happy with far less.
    std::uint64_t heap = model == gc::CollectorModel::Rc
                             ? params.heapBytes * 2
                             : params.minHeapBytes * 2;
    workload::Mutator mut(params, heap, 1, 8, 4, model);
    CapabilitySet caps = mut.collector().capabilities();
    auto r = mut.run();
    EXPECT_FALSE(r.oom) << "OOM under "
                        << gc::collectorModelName(model);
    return Recorded{mut.recorder().run(), caps, mut.cubeShift()};
}

Recorded
recordG1()
{
    const auto &params = workload::findWorkload("CC");
    workload::G1Mutator mut(params, params.heapBytes, 1, 8, 4);
    auto r = mut.run();
    EXPECT_FALSE(r.oom) << "OOM under g1";
    Recorded rec;
    rec.trace = mut.recorder().run();
    rec.cubeShift = mut.cubeShift();
    // G1Mutator owns its collector privately; re-derive the declared
    // set from a scratch instance (capabilities are static per
    // family).
    heap::KlassTable klasses;
    heap::G1Config cfg;
    heap::G1Heap heap(cfg, klasses);
    gc::TraceRecorder scratch(1, 20);
    rec.caps = gc::G1Collector(heap, scratch).capabilities();
    return rec;
}

/** Union of primitives with any recorded invocations. */
std::uint32_t
observedMask(const gc::RunTrace &trace)
{
    std::uint32_t mask = 0;
    for (const auto &g : trace.gcs) {
        for (int k = 0; k < gc::kNumPrimKinds; ++k) {
            auto kind = static_cast<PrimKind>(k);
            if (g.totalInvocations(kind) > 0)
                mask |= gc::primBit(kind);
        }
    }
    return mask;
}

/** Every declaration-related invariant one trace must satisfy. */
void
checkHonest(const Recorded &rec, const char *who)
{
    SCOPED_TRACE(who);
    ASSERT_FALSE(rec.trace.gcs.empty());
    for (const auto &g : rec.trace.gcs) {
        EXPECT_EQ(g.capabilityMask, rec.caps.primMask);
        for (const auto &phase : g.phases) {
            phase.forEachBucket([&](const gc::Bucket &b) {
                if (!b.hostOnly) {
                    EXPECT_TRUE(rec.caps.canOffload(b.kind))
                        << "offloadable bucket of undeclared kind "
                        << gc::primKindName(b.kind);
                }
            });
        }
    }
}

} // namespace

// ----------------------------------------------------------------------
// (a) declared set vs. trace emissions, per collector family

TEST(Capability, ParallelScavengeDeclarationMatchesTrace)
{
    auto rec = record(gc::CollectorModel::ParallelScavenge);
    checkHonest(rec, "ps");
    // PS exercises the paper's full primitive set, nothing more.
    EXPECT_EQ(observedMask(rec.trace),
              gc::primBit(PrimKind::Copy) | gc::primBit(PrimKind::Search)
                  | gc::primBit(PrimKind::ScanPush)
                  | gc::primBit(PrimKind::BitmapCount));
    EXPECT_EQ(rec.caps.primMask, observedMask(rec.trace));
}

TEST(Capability, G1DeclarationMatchesTrace)
{
    auto rec = recordG1();
    checkHonest(rec, "g1");
    // Evacuation Copy + Scan&Push; no card-table Search (remembered
    // sets replace it).
    std::uint32_t observed = observedMask(rec.trace);
    EXPECT_TRUE(observed & gc::primBit(PrimKind::Copy));
    EXPECT_TRUE(observed & gc::primBit(PrimKind::ScanPush));
    EXPECT_FALSE(observed & gc::primBit(PrimKind::Search));
    EXPECT_FALSE(rec.caps.hasCardTable);
}

TEST(Capability, CmsDeclarationMatchesTrace)
{
    auto rec = record(gc::CollectorModel::Cms);
    checkHonest(rec, "cms");
    std::uint32_t observed = observedMask(rec.trace);
    // The sweep records its free-run discovery as Bit Sweep...
    EXPECT_TRUE(observed & gc::primBit(PrimKind::BitSweep));
    // ...never as the compactor's Bitmap Count capability.
    EXPECT_FALSE(rec.caps.canOffload(PrimKind::BitmapCount));
}

TEST(Capability, RcDeclarationMatchesTrace)
{
    auto rec = record(gc::CollectorModel::Rc);
    checkHonest(rec, "rc");
    std::uint32_t observed = observedMask(rec.trace);
    EXPECT_TRUE(observed & gc::primBit(PrimKind::RefCount));
    // Pure RC maintains no generational card table.
    EXPECT_FALSE(rec.caps.hasCardTable);
    EXPECT_FALSE(observed & gc::primBit(PrimKind::Search));
}

// ----------------------------------------------------------------------
// (b) empty capability set == pure host execution

TEST(Capability, EmptySetDegradesCharonReplayToHost)
{
    const auto &params = workload::findWorkload("CC");
    workload::Mutator mut(params, params.minHeapBytes * 2, 1, 8, 4);
    // Withdraw every capability before the first collection: all
    // buckets must record hostOnly and the mask must be stamped 0.
    mut.recorder().setCapabilities(CapabilitySet::none());
    auto r = mut.run();
    ASSERT_FALSE(r.oom);
    const gc::RunTrace trace = mut.recorder().run();
    ASSERT_FALSE(trace.gcs.empty());
    for (const auto &g : trace.gcs) {
        EXPECT_EQ(g.capabilityMask, 0u);
        for (const auto &phase : g.phases) {
            phase.forEachBucket([&](const gc::Bucket &b) {
                EXPECT_TRUE(b.hostOnly);
            });
        }
    }

    // The same trace replayed on Charon and on the accelerator-free
    // HMC host must agree exactly: with nothing to offload, the
    // accelerator must cost nothing and contribute nothing.
    auto cfg = sim::SystemConfig::table2();
    platform::PlatformSim charon(sim::PlatformKind::CharonNmp, cfg,
                                 mut.cubeShift());
    platform::PlatformSim host(sim::PlatformKind::HostHmc, cfg,
                               mut.cubeShift());
    auto a = charon.simulate(trace);
    auto b = host.simulate(trace);
    EXPECT_EQ(a.gcSeconds, b.gcSeconds);
    EXPECT_EQ(a.minorSeconds, b.minorSeconds);
    EXPECT_EQ(a.majorSeconds, b.majorSeconds);
    EXPECT_EQ(a.mutatorSeconds, b.mutatorSeconds);
    EXPECT_EQ(a.dramBytes, b.dramBytes);
    auto ba = a.breakdown(), bb = b.breakdown();
    EXPECT_EQ(ba.copy, bb.copy);
    EXPECT_EQ(ba.search, bb.search);
    EXPECT_EQ(ba.scanPush, bb.scanPush);
    EXPECT_EQ(ba.bitmapCount, bb.bitmapCount);
    EXPECT_EQ(ba.bitSweep, bb.bitSweep);
    EXPECT_EQ(ba.refCount, bb.refCount);
    EXPECT_EQ(ba.glue, bb.glue);
}

// ----------------------------------------------------------------------
// (c) fault-kind applicability is capability-filtered

TEST(Capability, FaultAppliesFollowsMetadataCapabilities)
{
    CapabilitySet none = CapabilitySet::none();
    CapabilitySet all = CapabilitySet::all();
    CapabilitySet bitmap_only;
    bitmap_only.hasMarkBitmap = true;

    EXPECT_TRUE(fault::faultApplies(fault::FaultKind::CardFlip, all));
    EXPECT_FALSE(fault::faultApplies(fault::FaultKind::CardFlip, none));
    EXPECT_FALSE(
        fault::faultApplies(fault::FaultKind::CardFlip, bitmap_only));
    EXPECT_TRUE(fault::faultApplies(fault::FaultKind::MarkBitmapFlip,
                                    bitmap_only));
    EXPECT_FALSE(
        fault::faultApplies(fault::FaultKind::MarkBitmapFlip, none));
    // Timing-layer kinds are structure-independent: always in scope.
    EXPECT_TRUE(fault::faultApplies(fault::FaultKind::UnitStall, none));
    EXPECT_TRUE(
        fault::faultApplies(fault::FaultKind::LinkDegrade, none));
}

TEST(Capability, HeapFaultsSkipStructuresTheCollectorLacks)
{
    heap::KlassTable klasses;
    auto node = klasses.defineInstance("Node", 2, 2);
    heap::HeapConfig cfg;
    cfg.heapBytes = 16 * sim::kMiB;
    heap::ManagedHeap heap(cfg, klasses);
    heap.roots().clear();
    for (int i = 0; i < 32; ++i) {
        mem::Addr old = heap.allocOldObject(node);
        mem::Addr young = heap.allocEden(node);
        heap.storeRef(old, 0, young);
        heap.roots().push_back(old);
    }
    gc::populateMarkBitmaps(heap);

    fault::FaultPlan plan;
    plan.seed = 5;
    fault::FaultSpec card;
    card.kind = fault::FaultKind::CardFlip;
    card.count = 4;
    fault::FaultSpec bits;
    bits.kind = fault::FaultKind::MarkBitmapFlip;
    bits.count = 4;
    plan.specs = {card, bits};

    // A collector without a card table: only the bitmap spec lands,
    // and the card table audit stays clean.
    CapabilitySet caps;
    caps.hasMarkBitmap = true;
    EXPECT_EQ(fault::applyHeapFaults(heap, plan, caps), 4u);
    EXPECT_TRUE(gc::verifyCardTable(heap).ok());
    EXPECT_FALSE(gc::verifyMarkBitmaps(heap).ok());

    // No metadata at all: the whole plan is inert.
    gc::populateMarkBitmaps(heap); // repair the bitmaps
    EXPECT_EQ(
        fault::applyHeapFaults(heap, plan, CapabilitySet::none()), 0u);
    EXPECT_TRUE(gc::verifyCardTable(heap).ok());
    EXPECT_TRUE(gc::verifyMarkBitmaps(heap).ok());
}
