#include "catalog.hh"

#include <algorithm>
#include <cctype>

#include "sim/logging.hh"

namespace charon::workload
{

MutatorKlasses::MutatorKlasses()
{
    node = table.defineInstance("VertexNode", 2, 2);
    update = table.defineInstance("VertexUpdate", 2, 2);
    partMeta = table.defineInstance("PartitionMeta", 1, 6);
    mirror = table.defineInstance("java.lang.Class", 1, 6,
                                  heap::KlassKind::InstanceMirror);
    weakRef = table.defineInstance("WeakReference", 1, 1,
                                   heap::KlassKind::InstanceRef);
}

const std::vector<WorkloadParams> &
workloadCatalog()
{
    using sim::kMiB;
    static const std::vector<WorkloadParams> catalog = [] {
        std::vector<WorkloadParams> v;

        // --- Spark: few large, reference-sparse, short-lived
        //     partition buffers; a cached fraction grows the old
        //     generation until MajorGCs fire.
        {
            WorkloadParams p;
            p.name = "BS";
            p.framework = "Spark";
            p.description = "Bayesian classifier on KDD 2010 "
                            "(RDD partition churn, medium cache)";
            p.heapBytes = 160 * kMiB;   // Table 3: 10 GB / 64
            p.minHeapBytes = 57 * kMiB;  // measured OOM threshold
            p.iterations = 40;
            p.partitionElems = 32 * 1024; // 256 KiB double[]
            p.partitionsPerIter = 160;
            p.partitionRetainProb = 0.15;
            p.cacheEvictPerIter = 22;
            p.smallPerIter = 6000;
            p.instrPerWord = 10.0;
            v.push_back(p);
        }
        {
            WorkloadParams p;
            p.name = "KM";
            p.framework = "Spark";
            p.description = "k-means clustering on KDD 2010 "
                            "(smaller partitions, iterative)";
            p.heapBytes = 128 * kMiB;   // 8 GB / 64
            p.minHeapBytes = 47 * kMiB;  // measured OOM threshold
            p.iterations = 45;
            p.partitionElems = 16 * 1024; // 128 KiB
            p.partitionsPerIter = 250;
            p.partitionRetainProb = 0.14;
            p.cacheEvictPerIter = 32;
            p.smallPerIter = 8000;
            p.instrPerWord = 10.0;
            v.push_back(p);
        }
        {
            WorkloadParams p;
            p.name = "LR";
            p.framework = "Spark";
            p.description = "logistic regression on URL Reputation "
                            "(large feature vectors)";
            p.heapBytes = 192 * kMiB;   // 12 GB / 64
            p.minHeapBytes = 84 * kMiB;  // measured OOM threshold
            p.iterations = 45;
            p.partitionElems = 64 * 1024; // 512 KiB
            p.partitionsPerIter = 70;
            p.partitionRetainProb = 0.14;
            p.cacheEvictPerIter = 8;
            p.smallPerIter = 5000;
            p.instrPerWord = 10.0;
            v.push_back(p);
        }

        // --- GraphChi: many small long-lived vertices with many
        //     references; per-iteration vertex updates create young
        //     garbage and old-to-young stores.
        {
            WorkloadParams p;
            p.name = "CC";
            p.framework = "GraphChi";
            p.description = "connected components on R-MAT 22 "
                            "(long-lived vertex graph)";
            p.heapBytes = 64 * kMiB;    // 4 GB / 64
            p.minHeapBytes = 37 * kMiB;  // measured OOM threshold
            p.iterations = 30;
            p.graphNodes = 70000;
            p.graphDegree = 8;
            p.shardsPerIter = 2;
            p.shardElems = 192 * 1024; // 1.5 MiB long[] interval data
            p.updatesPerIter = 200000;
            p.updateStoreProb = 0.08;
            p.smallPerIter = 4000;
            v.push_back(p);
        }
        {
            WorkloadParams p;
            p.name = "PR";
            p.framework = "GraphChi";
            p.description = "PageRank on R-MAT 22 "
                            "(denser updates than CC)";
            p.heapBytes = 64 * kMiB;    // 4 GB / 64
            p.minHeapBytes = 34 * kMiB;  // measured OOM threshold
            p.iterations = 30;
            p.graphNodes = 60000;
            p.graphDegree = 10;
            p.shardsPerIter = 2;
            p.shardElems = 192 * 1024; // 1.5 MiB long[] interval data
            p.updatesPerIter = 250000;
            p.updateStoreProb = 0.10;
            p.smallPerIter = 4000;
            v.push_back(p);
        }
        {
            WorkloadParams p;
            p.name = "ALS";
            p.framework = "GraphChi";
            p.description = "alternating least squares on a 15000^2 "
                            "matrix (one huge object, huge copies)";
            p.heapBytes = 64 * kMiB;    // 4 GB / 64
            p.minHeapBytes = 30 * kMiB;  // measured OOM threshold
            p.iterations = 30;
            p.graphNodes = 8000;
            p.graphDegree = 3;
            p.updatesPerIter = 1000;
            p.updateStoreProb = 0.2;
            p.smallHoldProb = 0.05;
            p.tempRingSlots = 256;
            p.matrixElems = 1'500'000;  // 12 MiB double[]
            p.factorElems = 800'000;    // 6.4 MiB reallocated per iter
            p.smallPerIter = 200;
            v.push_back(p);
        }
        return v;
    }();
    return catalog;
}

const std::vector<WorkloadParams> &
serviceCatalog()
{
    using sim::kMiB;
    static const std::vector<WorkloadParams> catalog = [] {
        std::vector<WorkloadParams> v;

        // --- request-serving tenants: the latency-sensitive half of
        //     a consolidated node.  Unlike the batch workloads the
        //     allocation is dominated by per-request garbage that
        //     dies within the iteration, over a modest resident
        //     session cache.
        {
            WorkloadParams p;
            p.name = "SRV";
            p.framework = "Service";
            p.description = "request server (short-lived response "
                            "bursts over a session cache)";
            p.heapBytes = 96 * kMiB;
            p.minHeapBytes = 9 * kMiB;   // measured OOM threshold
            p.iterations = 40;
            p.requestsPerIter = 4000;
            p.requestRespMinBytes = 256;
            p.requestRespMaxBytes = 4096;
            p.sessionsPerIter = 160;
            p.sessionEvictPerIter = 150;
            p.sessionElems = 2048;      // 2 KiB byte[] per session
            p.smallPerIter = 3000;
            p.smallHoldProb = 0.10;
            p.instrPerWord = 14.0;      // services compute more per byte
            v.push_back(p);
        }
        {
            WorkloadParams p;
            p.name = "SES";
            p.framework = "Service";
            p.description = "session-heavy server with humongous "
                            "bulk-reply spikes";
            p.heapBytes = 128 * kMiB;
            p.minHeapBytes = 50 * kMiB;  // measured OOM threshold
            p.iterations = 40;
            p.requestsPerIter = 2000;
            p.requestRespMinBytes = 512;
            p.requestRespMaxBytes = 8192;
            p.sessionsPerIter = 400;
            p.sessionEvictPerIter = 360;
            p.sessionElems = 8192;      // 8 KiB byte[] per session
            p.humongousSpikeProb = 0.25;
            p.humongousElems = 512 * 1024; // 4 MiB double[] bulk reply
            p.smallPerIter = 2000;
            p.smallHoldProb = 0.10;
            p.instrPerWord = 12.0;
            v.push_back(p);
        }
        return v;
    }();
    return catalog;
}

const WorkloadParams *
findWorkloadOrNull(const std::string &name)
{
    std::string upper = name;
    std::transform(upper.begin(), upper.end(), upper.begin(),
                   [](unsigned char c) { return std::toupper(c); });
    for (const auto &w : workloadCatalog()) {
        if (w.name == upper)
            return &w;
    }
    for (const auto &w : serviceCatalog()) {
        if (w.name == upper)
            return &w;
    }
    return nullptr;
}

const WorkloadParams &
findWorkload(const std::string &name)
{
    if (const WorkloadParams *w = findWorkloadOrNull(name))
        return *w;
    sim::fatal("unknown workload '%s' (expected BS/KM/LR/CC/PR/ALS "
               "or service SRV/SES)",
               name.c_str());
}

} // namespace charon::workload
