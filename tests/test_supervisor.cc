/**
 * @file
 * Sweep supervisor tests: journal merge semantics (torn tails,
 * first-writer-wins dedup, canonical sorted output), memory-only
 * seeding, shard journal naming/discovery, and the fault-tolerance
 * contract of runShardedSweep — worker kill/restart with zero
 * re-evaluated cells, poison-point quarantine after a double kill,
 * graceful degradation when the restart budget is exhausted,
 * shard-count invariance of the merged journal, and SIGTERM drain
 * preserving the resume contract.
 *
 * Worker crashes are injected with the CHARON_TEST_* hooks the
 * workers read from their environment (see src/dse/supervisor.cc);
 * every test clears them on exit so later tests see a clean slate.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "dse/explorer.hh"
#include "dse/journal.hh"
#include "dse/param_space.hh"
#include "dse/supervisor.hh"
#include "harness/experiment_runner.hh"

using namespace charon;
using namespace charon::dse;

namespace
{

std::string
freshDir(const char *name)
{
    auto dir = std::filesystem::path(::testing::TempDir())
               / (std::string("charon-supervisor-") + name);
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir.string();
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

JournalRecord
sampleRecord(const std::string &key, double scale)
{
    JournalRecord r;
    r.key = key;
    r.ok = true;
    r.gcSeconds = 0.1 * scale;
    r.minorSeconds = 0.06 * scale;
    r.majorSeconds = 0.04 * scale;
    r.mutatorSeconds = 1.5 * scale;
    r.avgGcBandwidthGBs = 123.456 * scale;
    r.localAccessFraction = 0.75;
    r.dramBytes = 1e9 * scale;
    r.hostEnergyJ = 2.5 * scale;
    r.dramEnergyJ = 1.25 * scale;
    r.unitEnergyJ = 0.125 * scale;
    return r;
}

/** Scoped CHARON_TEST_* crash hook: set on entry, cleared on exit. */
struct EnvGuard
{
    EnvGuard(const char *name, const std::string &value) : name_(name)
    {
        ::setenv(name, value.c_str(), 1);
    }
    ~EnvGuard() { ::unsetenv(name_); }
    const char *name_;
};

struct Sweep
{
    std::vector<harness::Cell> cells;
    std::vector<std::string> keys;
    std::vector<std::vector<std::size_t>> units;
};

/**
 * One DDR4 + one Charon cell per copy-search-unit count, one unit per
 * pair.  The knob is replay-side, so the whole sweep shares a single
 * functional run (cheap), yet every primary key is distinct and
 * carries a "/cs<N>/" token the poison-point hook can match.
 */
Sweep
pairSweep(const std::vector<int> &searchUnits)
{
    DsePoint point; // KM defaults: the cheapest workload
    auto fk =
        harness::ExperimentRunner::resolve(point.functionalKey());
    Sweep s;
    for (int units : searchUnits) {
        for (auto kind : {sim::PlatformKind::HostDdr4,
                          sim::PlatformKind::CharonNmp}) {
            harness::Cell c;
            c.key = fk;
            c.platform = kind;
            c.config = point.systemConfig();
            c.config.charon.copySearchUnits = units;
            s.keys.push_back(cellKey(c, 0));
            s.cells.push_back(std::move(c));
        }
        s.units.push_back(
            {s.cells.size() - 2, s.cells.size() - 1});
    }
    return s;
}

SupervisorConfig
baseConfig(const std::string &journal, const std::string &cacheDir,
           int shards)
{
    SupervisorConfig cfg;
    cfg.shards = shards;
    cfg.journalPath = journal;
    cfg.runner.jobs = 2;
    cfg.runner.cacheDir = cacheDir;
    cfg.backoffBaseSec = 0.01; // keep restart-heavy tests fast
    cfg.quiet = true;
    return cfg;
}

// ---------------------------------------------------------------------
// SweepJournal: repair, seeding, merge

TEST(SweepJournal, TornTailRepairedAtOpen)
{
    const std::string path = freshDir("torn") + "/sweep.dse.jsonl";
    std::string full =
        SweepJournal::formatLine(sampleRecord("cell-a", 1));
    {
        std::ofstream out(path, std::ios::binary);
        out << full << "\n" << full.substr(0, full.size() / 2);
    }

    // Opening repairs the torn tail immediately: the file ends with a
    // newline again, the torn record is a miss, the whole one a hit.
    SweepJournal journal(path);
    EXPECT_EQ(journal.size(), 1u);
    std::string bytes = slurp(path);
    ASSERT_FALSE(bytes.empty());
    EXPECT_EQ(bytes.back(), '\n');

    // An append right after open must start on a fresh line.
    ASSERT_TRUE(journal.append(sampleRecord("cell-b", 2)));
    SweepJournal reopened(path);
    JournalRecord out;
    EXPECT_TRUE(reopened.lookup("cell-a", out));
    EXPECT_TRUE(reopened.lookup("cell-b", out));
    EXPECT_EQ(out.gcSeconds, sampleRecord("cell-b", 2).gcSeconds);
}

TEST(SweepJournal, SeedingIsMemoryOnlyAndFirstWriterWins)
{
    const std::string dir = freshDir("seed");
    const std::string own = dir + "/own.dse.jsonl";
    const std::string sibling = dir + "/sibling.dse.jsonl";
    {
        SweepJournal sib(sibling);
        ASSERT_TRUE(sib.append(sampleRecord("shared", 2)));
        ASSERT_TRUE(sib.append(sampleRecord("sibling-only", 3)));
    }

    SweepJournal journal(own);
    ASSERT_TRUE(journal.append(sampleRecord("shared", 1)));

    // seedFrom counts only the records it inserted; existing keys
    // win, so "shared" keeps this journal's value.
    EXPECT_EQ(journal.seedFrom(sibling), 1u);
    JournalRecord out;
    ASSERT_TRUE(journal.lookup("shared", out));
    EXPECT_EQ(out.gcSeconds, sampleRecord("shared", 1).gcSeconds);
    ASSERT_TRUE(journal.lookup("sibling-only", out));

    journal.seedRecord(sampleRecord("seeded", 4));
    ASSERT_TRUE(journal.lookup("seeded", out));

    // Nothing seeded ever touches the file: a reopen sees only the
    // records this journal appended itself.
    SweepJournal reopened(own);
    EXPECT_EQ(reopened.size(), 1u);
    EXPECT_FALSE(reopened.lookup("sibling-only", out));
    EXPECT_FALSE(reopened.lookup("seeded", out));
}

TEST(SweepJournal, MergeJournalsDedupsRepairsAndSorts)
{
    const std::string dir = freshDir("merge");
    const std::string dst = dir + "/canonical.dse.jsonl";
    const std::string srcA = dir + "/a.dse.jsonl";
    const std::string srcB = dir + "/b.dse.jsonl";
    {
        SweepJournal d(dst);
        ASSERT_TRUE(d.append(sampleRecord("kz", 1)));
    }
    {
        SweepJournal a(srcA);
        ASSERT_TRUE(a.append(sampleRecord("kz", 9))); // dup: dst wins
        ASSERT_TRUE(a.append(sampleRecord("ka", 2)));
    }
    {
        std::ofstream b(srcB, std::ios::binary);
        b << SweepJournal::formatLine(sampleRecord("km", 3)) << "\n";
        b << "{\"v\":1,\"key\":\"torn"; // crash mid-append
    }

    SweepJournal::MergeStats stats;
    std::string error;
    ASSERT_TRUE(SweepJournal::mergeJournals(dst, {srcA, srcB},
                                            &error, &stats))
        << error;
    EXPECT_EQ(stats.records, 3u);
    EXPECT_EQ(stats.duplicates, 1u);
    EXPECT_EQ(stats.tornLines, 1u);
    EXPECT_EQ(stats.sources, 3u); // dst itself counts as a source

    // First-writer-wins: the dst copy of "kz" survived the merge.
    SweepJournal merged(dst);
    EXPECT_EQ(merged.size(), 3u);
    JournalRecord out;
    ASSERT_TRUE(merged.lookup("kz", out));
    EXPECT_EQ(out.gcSeconds, sampleRecord("kz", 1).gcSeconds);

    // Output is sorted by key and ends with a newline.
    std::string bytes = slurp(dst);
    EXPECT_EQ(bytes.back(), '\n');
    auto ka = bytes.find("\"ka\"");
    auto km = bytes.find("\"km\"");
    auto kz = bytes.find("\"kz\"");
    EXPECT_LT(ka, km);
    EXPECT_LT(km, kz);

    // Merging again with no sources is the identity: the file is
    // already canonical.
    ASSERT_TRUE(SweepJournal::mergeJournals(dst, {}, &error, &stats));
    EXPECT_EQ(slurp(dst), bytes);
}

// ---------------------------------------------------------------------
// Shard journal naming and discovery

TEST(Supervisor, ShardJournalPathNamingAndListing)
{
    EXPECT_EQ(shardJournalPath("smoke.dse.jsonl", 2),
              "smoke.shard-2.dse.jsonl");
    EXPECT_EQ(shardJournalPath("/tmp/x/fig13.dse.jsonl", 0),
              "/tmp/x/fig13.shard-0.dse.jsonl");

    const std::string dir = freshDir("listing");
    const std::string canonical = dir + "/sweep.dse.jsonl";
    for (int shard : {0, 1, 3}) {
        std::ofstream(shardJournalPath(canonical, shard))
            << SweepJournal::formatLine(sampleRecord("k", 1)) << "\n";
    }
    // Decoys the listing must skip.
    std::ofstream(canonical) << "";
    std::ofstream(dir + "/other.shard-1.dse.jsonl") << "";
    std::ofstream(dir + "/sweep.shard-x.dse.jsonl") << "";

    auto found = listShardJournals(canonical);
    ASSERT_EQ(found.size(), 3u);
    EXPECT_EQ(found[0], shardJournalPath(canonical, 0));
    EXPECT_EQ(found[1], shardJournalPath(canonical, 1));
    EXPECT_EQ(found[2], shardJournalPath(canonical, 3));
}

// ---------------------------------------------------------------------
// runShardedSweep: the fault-tolerance contract

TEST(Supervisor, ShardCountNeverChangesTheMergedJournal)
{
    const std::string dir = freshDir("invariance");
    const std::string cache = dir + "/cache";
    Sweep sweep = pairSweep({2, 4, 16, 32});

    // Unsharded reference: the plain in-process Explorer, then
    // canonicalised with the same merge the supervisor uses.
    const std::string ref = dir + "/ref.dse.jsonl";
    {
        SweepJournal journal(ref);
        harness::RunnerConfig rc;
        rc.jobs = 2;
        rc.cacheDir = cache;
        harness::ExperimentRunner runner(rc);
        Explorer explorer(runner, journal);
        auto records = explorer.runCells(sweep.cells, sweep.keys);
        for (const auto &r : records)
            ASSERT_TRUE(r.ok) << r.error;
    }
    ASSERT_TRUE(SweepJournal::mergeJournals(ref, {}));
    const std::string golden = slurp(ref);
    ASSERT_FALSE(golden.empty());

    for (int shards : {1, 2, 4}) {
        const std::string journal = dir + "/s"
                                    + std::to_string(shards)
                                    + ".dse.jsonl";
        auto res = runShardedSweep(
            sweep.cells, sweep.keys, sweep.units,
            baseConfig(journal, cache, shards));
        ASSERT_TRUE(res.ok) << res.error;
        EXPECT_EQ(res.unitsCommitted, sweep.units.size());
        EXPECT_EQ(res.reEvaluatedCells, 0u);
        EXPECT_TRUE(listShardJournals(journal).empty())
            << "shard files must be absorbed after the merge";
        EXPECT_EQ(slurp(journal), golden)
            << "shards=" << shards
            << " merged journal must be byte-identical";
    }
}

TEST(Supervisor, WorkerKillRestartReevaluatesNothing)
{
    const std::string dir = freshDir("killrestart");
    const std::string journal = dir + "/sweep.dse.jsonl";
    Sweep sweep = pairSweep({2, 4, 16, 32});
    auto cfg = baseConfig(journal, dir + "/cache", 2);
    cfg.restartsPerShard = 6;

    {
        // Every worker incarnation is SIGKILLed at the first unit
        // boundary after committing one fresh cell.
        EnvGuard kill("CHARON_TEST_CRASH_AFTER_SIGKILL", "1");
        auto res = runShardedSweep(sweep.cells, sweep.keys,
                                   sweep.units, cfg);
        ASSERT_TRUE(res.ok) << res.error;
        EXPECT_EQ(res.unitsCommitted, sweep.units.size());
        EXPECT_GE(res.workerCrashes, 1u);
        EXPECT_GE(res.restarts, 1u);
        EXPECT_EQ(res.reEvaluatedCells, 0u)
            << "restarted workers must resume from their journals";
    }

    // A clean re-run is answered entirely by the canonical journal.
    auto res = runShardedSweep(sweep.cells, sweep.keys, sweep.units,
                               cfg);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.unitsPrecommitted, sweep.units.size());
    EXPECT_EQ(res.unitsCommitted, 0u);
    EXPECT_EQ(res.restarts, 0u);
    EXPECT_EQ(res.reEvaluatedCells, 0u);
}

TEST(Supervisor, PoisonPointQuarantinedByKeyAndRetriedLater)
{
    const std::string dir = freshDir("quarantine");
    const std::string journal = dir + "/sweep.dse.jsonl";
    Sweep sweep = pairSweep({2, 4, 16, 32});
    auto cfg = baseConfig(journal, dir + "/cache", 2);
    cfg.restartsPerShard = 6;

    {
        // The unit whose key carries /cs16/ kills its worker every
        // time it starts: two strikes must quarantine it while the
        // rest of the sweep completes.
        EnvGuard poison("CHARON_TEST_CRASH_POINT", "/cs16/");
        auto res = runShardedSweep(sweep.cells, sweep.keys,
                                   sweep.units, cfg);
        ASSERT_TRUE(res.ok) << res.error;
        ASSERT_EQ(res.quarantined.size(), 1u);
        ASSERT_EQ(res.quarantinedKeys.size(), 1u);
        EXPECT_NE(res.quarantinedKeys[0].find("/cs16/"),
                  std::string::npos);
        EXPECT_EQ(res.unitsCommitted, sweep.units.size() - 1);
        EXPECT_GE(res.workerCrashes, 2u);

        // Quarantine never poisons the journal: the unit's cells are
        // absent, so a later resume retries them.
        SweepJournal check(journal);
        JournalRecord out;
        for (std::size_t cell : sweep.units[res.quarantined[0]])
            EXPECT_FALSE(check.lookup(sweep.keys[cell], out));
    }

    // With the hook gone the resume evaluates exactly the quarantined
    // unit and nothing else.
    auto res = runShardedSweep(sweep.cells, sweep.keys, sweep.units,
                               cfg);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_TRUE(res.quarantined.empty());
    EXPECT_EQ(res.unitsPrecommitted, sweep.units.size() - 1);
    EXPECT_EQ(res.unitsCommitted, 1u);
    EXPECT_EQ(res.reEvaluatedCells, 0u);
}

TEST(Supervisor, DegradesToFewerShardsThenReportsUnfinished)
{
    const std::string dir = freshDir("degrade");
    const std::string journal = dir + "/sweep.dse.jsonl";
    Sweep sweep = pairSweep({2, 4});
    auto cfg = baseConfig(journal, dir + "/cache", 2);
    cfg.restartsPerShard = 1;

    // Every incarnation dies before its first unit, so each shard
    // burns its single restart and is abandoned; the sweep degrades
    // to zero shards and must report the units it never evaluated.
    EnvGuard crash("CHARON_TEST_CRASH_AFTER", "0");
    auto res = runShardedSweep(sweep.cells, sweep.keys, sweep.units,
                               cfg);
    EXPECT_FALSE(res.ok);
    EXPECT_FALSE(res.interrupted);
    EXPECT_NE(res.error.find("restart"), std::string::npos)
        << res.error;
    EXPECT_GE(res.degradations, 2u);
    EXPECT_EQ(res.unfinished.size(), sweep.units.size());
    EXPECT_EQ(res.unitsCommitted, 0u);
}

TEST(Supervisor, SigtermDrainPreservesResumeContract)
{
    const std::string dir = freshDir("drain");
    const std::string journal = dir + "/sweep.dse.jsonl";
    Sweep sweep = pairSweep({2, 4, 16, 32});
    auto cfg = baseConfig(journal, dir + "/cache", 2);
    cfg.drainSec = 20;

    // The interrupted run happens in a forked child: the SIGTERM it
    // raises against itself sets the process-wide interrupt flag,
    // which must not leak into this process (or later tests).
    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // Stretch each unit so the signal lands mid-sweep, then let
        // the drain window finish the inflight units.
        ::setenv("CHARON_TEST_UNIT_SLEEP_MS", "1500", 1);
        std::thread([] {
            std::this_thread::sleep_for(std::chrono::milliseconds(700));
            ::raise(SIGTERM);
        }).detach();
        auto res = runShardedSweep(sweep.cells, sweep.keys,
                                   sweep.units, cfg);
        std::_Exit(res.interrupted ? 0 : 1);
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 0)
        << "child sweep must report interrupted, not ok/failed";

    // Drained work was merged into the canonical journal, so the
    // resume starts from it and re-evaluates nothing.
    EXPECT_TRUE(listShardJournals(journal).empty());
    auto res = runShardedSweep(sweep.cells, sweep.keys, sweep.units,
                               cfg);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_GE(res.unitsPrecommitted, 1u)
        << "the drain window must land the inflight units";
    EXPECT_EQ(res.unitsPrecommitted + res.unitsCommitted,
              sweep.units.size());
    EXPECT_EQ(res.reEvaluatedCells, 0u);
}

} // namespace
