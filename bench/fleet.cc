/**
 * @file
 * Fleet bench: multi-tenant tail latency under arbitration policies.
 *
 * The grid crosses tenant mixes (services, mixed) with arrival curves
 * (steady, diurnal, spike) and arbitration policies (fcfs, fair,
 * deadline) on one shared Charon device, reporting fleet-wide
 * p50/p99/p99.9 GC-pause and request-latency quantiles plus the
 * host-fallback and SLO-miss counts.  A per-tenant breakdown follows
 * for the headline regime (spike arrivals), where the pause-deadline
 * policy's bail-out-to-host trade is expected to beat FCFS on pause
 * p99.9: synchronized spikes convoy collections onto the device, and
 * under FCFS the queue delay compounds while the deadline policy caps
 * each pause at the (bounded) host collection.
 *
 * Determinism: profile replays go through the harness (parallel,
 * assembled in submission order); every fleet DES is single-threaded
 * and seeded, so the whole report is byte-identical at any --jobs.
 *
 *   fleet --smoke                 # pinned CI grid (one mix)
 *   fleet --tenants 12 --fault unit-death:cube=0:at-ns=100000000
 */

#include "bench_common.hh"

#include <cstdio>
#include <fstream>
#include <memory>

#include "fault/fault.hh"
#include "fleet/fleet_sim.hh"

using namespace charon;
using namespace charon::bench;
using namespace charon::fleet;

namespace
{

std::string
quant(const sim::QuantileAccumulator &q, double p)
{
    return report::num(q.quantile(p), 3);
}

} // namespace

int
main(int argc, char **argv)
{
    harness::Options opt;
    opt.helpHeader =
        "fleet: multi-tenant GC arbitration under tail-latency SLOs\n"
        "(mixes x arrival curves x policies; see EXPERIMENTS.md)";

    int tenants = 16;
    double sloMs = 1.0;
    double horizonSec = 1.0;
    double gcRateScale = 24.0;
    std::uint64_t seed = 1;
    bool smoke = false;
    std::vector<std::string> faultSpecs;
    opt.flag("--tenants", &tenants, "tenant heaps per mix\n(default 16)");
    opt.flag("--slo-ms", &sloMs,
             "GC-pause SLO deadline in ms; the paper's\n1/64-scale "
             "heaps make ~1 ms here ~60 ms of\nproduction pause "
             "(default 1)");
    opt.flag("--horizon", &horizonSec,
             "simulated seconds of arrivals\n(default 1)");
    opt.flag("--gc-scale", &gcRateScale,
             "consolidation density: solo-profile GC\ncycles per "
             "horizon (default 24)");
    opt.flag("--seed", &seed,
             "fleet seed for arrival + service jitter\nstreams "
             "(default 1)");
    opt.flag("--smoke", &smoke,
             "pinned small grid (one mix, CI)");
    opt.flag(
        "--fault",
        [&faultSpecs](const std::string &v) {
            faultSpecs.push_back(v);
            return true;
        },
        "kill arbiter slots: unit-death / cube-offline\nspecs with "
        "at-ns (repeatable)",
        "KIND[:KEY=V]...");
    if (!harness::parseOptions(argc, argv, opt))
        return 2;

    fault::FaultPlan faults;
    faults.seed = seed;
    for (const auto &text : faultSpecs) {
        fault::FaultSpec spec;
        std::string error;
        if (!fault::parseFaultSpec(text, spec, &error)) {
            std::fprintf(stderr, "%s: %s\n", argv[0], error.c_str());
            return 2;
        }
        faults.specs.push_back(spec);
    }

    std::vector<std::string> mixes = fleetMixNames();
    if (smoke) {
        mixes = {"services"};
        tenants = 12;
        horizonSec = 0.5;
    }

    // The fleet DES is deterministic on its own; only the profile
    // replays fan out over the worker pool, so keep the runner's
    // timeline collection off and let the fleet emit its own
    // tenant-tagged timelines below.
    harness::RunnerConfig rc = opt.runnerConfig();
    rc.timeline = false;
    ExperimentRunner runner(rc);
    Report report(opt);

    auto &table = report.table(
        "fleet",
        "Fleet: tail latency by mix, arrival curve, and arbitration "
        "policy (" + std::to_string(tenants) + " tenants, SLO "
            + report::num(sloMs, 1) + " ms, seed "
            + std::to_string(seed) + ")",
        {"mix", "arrival", "policy", "GC p50(ms)", "GC p99(ms)",
         "GC p99.9(ms)", "req p50(ms)", "req p99.9(ms)", "host GCs",
         "SLO miss"});
    auto &perTenant = report.table(
        "fleet-tenants",
        "Fleet: per-tenant breakdown under spike arrivals",
        {"mix", "policy", "tenant", "GCs", "GC p50(ms)", "GC p99(ms)",
         "GC p99.9(ms)", "req p99.9(ms)", "host GCs", "SLO miss"});

    bool regimeShown = false;
    std::vector<std::unique_ptr<sim::Timeline>> timelines;
    for (const auto &mix : mixes) {
        auto specs = fleetMix(mix, tenants);
        std::vector<TenantProfile> profiles;
        std::string error;
        if (!buildProfiles(runner, specs, &profiles, &error)) {
            harness::CellResult r;
            r.error = error;
            report.cellFailed(mix + " profiles", r);
            continue;
        }

        double spikeP999[kNumArbPolicies] = {};
        for (int c = 0; c < kNumArrivalCurves; ++c) {
            auto curve = static_cast<ArrivalCurve>(c);
            for (int p = 0; p < kNumArbPolicies; ++p) {
                auto policy = static_cast<ArbPolicy>(p);
                FleetConfig cfg;
                cfg.tenants = specs;
                cfg.policy = policy;
                cfg.sloMs = sloMs;
                cfg.arrival.curve = curve;
                cfg.arrival.horizonSec = horizonSec;
                cfg.gcRateScale = gcRateScale;
                cfg.seed = seed;
                cfg.faults = faults;
                // One run carries the exported timelines: the first
                // mix under spike arrivals with the deadline policy.
                cfg.timeline = !opt.traceOut.empty()
                               && timelines.empty()
                               && curve == ArrivalCurve::Spike
                               && policy == ArbPolicy::DeadlineAware;

                FleetResult res = runFleet(cfg, profiles);
                table.addRow({mix, arrivalCurveName(curve),
                              arbPolicyName(policy),
                              quant(res.pauseMs, 0.50),
                              quant(res.pauseMs, 0.99),
                              quant(res.pauseMs, 0.999),
                              quant(res.requestMs, 0.50),
                              quant(res.requestMs, 0.999),
                              std::to_string(res.hostFallbacks),
                              std::to_string(res.sloMisses)});
                if (curve == ArrivalCurve::Spike) {
                    spikeP999[p] = res.pauseMs.quantile(0.999);
                    for (const auto &tr : res.tenants) {
                        perTenant.addRow(
                            {mix, arbPolicyName(policy), tr.name,
                             std::to_string(tr.gcs),
                             quant(tr.pauseMs, 0.50),
                             quant(tr.pauseMs, 0.99),
                             quant(tr.pauseMs, 0.999),
                             quant(tr.requestMs, 0.999),
                             std::to_string(tr.hostFallbacks),
                             std::to_string(tr.sloMisses)});
                    }
                }
                if (cfg.timeline)
                    timelines = std::move(res.timelines);
            }
        }

        double fcfs = spikeP999[static_cast<int>(ArbPolicy::Fcfs)];
        double deadline =
            spikeP999[static_cast<int>(ArbPolicy::DeadlineAware)];
        table.note("\n" + mix + ": spike GC p99.9 "
                   + report::num(fcfs, 3) + " ms under fcfs vs "
                   + report::num(deadline, 3) + " ms under deadline ("
                   + (deadline < fcfs ? "deadline wins"
                                      : "NO deadline win")
                   + ")");
        if (deadline < fcfs)
            regimeShown = true;
    }
    table.note("pause = arbitration wait + collection; host GCs = "
               "deadline bail-outs (and every GC once slots are "
               "fault-killed to zero)");

    if (!opt.traceOut.empty() && !timelines.empty()) {
        std::vector<const sim::Timeline *> ptrs;
        for (const auto &tl : timelines)
            ptrs.push_back(tl.get());
        std::ofstream out(opt.traceOut);
        sim::Timeline::writeChromeTrace(out, ptrs);
        std::fprintf(stderr, "fleet: wrote %zu tenant timelines to %s\n",
                     ptrs.size(), opt.traceOut.c_str());
    }

    int rc_exit = report.finish(std::cout);
    if (rc_exit == 0 && !regimeShown && faultSpecs.empty()) {
        std::fprintf(stderr,
                     "fleet: deadline policy never beat fcfs on spike "
                     "p99.9 — arbitration regime lost\n");
        return 1;
    }
    return rc_exit;
}
