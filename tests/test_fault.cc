/**
 * @file
 * Tests for the fault-injection layer and the graceful-degradation
 * machinery it exercises: spec parsing, replay determinism under
 * faults at any job count, zero-cost-when-disabled, promotion-failure
 * recovery, recorder failover, metadata corruption detection, the
 * crash-isolated runner (hangs, crashes, quarantine), and the sweep
 * journal's kill-durability.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include <sys/wait.h>
#include <unistd.h>

#include "dse/explorer.hh"
#include "dse/journal.hh"
#include "fault/fault.hh"
#include "fault/inject.hh"
#include "gc/collector.hh"
#include "gc/scavenge.hh"
#include "gc/verify.hh"
#include "harness/experiment_runner.hh"
#include "harness/options.hh"
#include "harness/result_sink.hh"
#include "workload/mutator.hh"

using namespace charon;
using namespace charon::fault;

namespace
{

std::string
freshPath(const char *name)
{
    auto p = std::filesystem::path(::testing::TempDir())
             / (std::string("charon-fault-") + name);
    std::filesystem::remove_all(p);
    return p.string();
}

/** A Charon replay cell on the cheapest calibrated workload. */
harness::Cell
charonCell()
{
    harness::Cell c;
    c.key.workload = "CC";
    c.key.heapBytes = workload::findWorkload("CC").minHeapBytes * 2;
    c.platform = sim::PlatformKind::CharonNmp;
    c.label = "CC on Charon";
    return c;
}

FaultPlan
onePlan(const std::string &text, std::uint64_t seed = 1)
{
    FaultSpec spec;
    std::string error;
    EXPECT_TRUE(parseFaultSpec(text, spec, &error)) << error;
    FaultPlan plan;
    plan.seed = seed;
    plan.specs.push_back(spec);
    return plan;
}

} // namespace

// --- spec grammar ---------------------------------------------------

TEST(FaultSpec, ParseRoundTrip)
{
    FaultSpec spec;
    std::string error;
    ASSERT_TRUE(parseFaultSpec(
        "unit-stall:cube=1:rate=0.25:stall-ns=500:at-ns=1000", spec,
        &error))
        << error;
    EXPECT_EQ(spec.kind, FaultKind::UnitStall);
    EXPECT_EQ(spec.cube, 1);
    EXPECT_DOUBLE_EQ(spec.rate, 0.25);
    EXPECT_GT(spec.stallTicks, 0u);
    EXPECT_GT(spec.atTick, 0u);

    // str() must re-parse to the same spec.
    FaultSpec again;
    ASSERT_TRUE(parseFaultSpec(spec.str(), again, &error)) << error;
    EXPECT_EQ(again.str(), spec.str());
}

TEST(FaultSpec, ParseRejectsUnknownKindAndKey)
{
    FaultSpec spec;
    std::string error;
    EXPECT_FALSE(parseFaultSpec("warp-core-breach", spec, &error));
    EXPECT_FALSE(error.empty());
    error.clear();
    EXPECT_FALSE(parseFaultSpec("unit-stall:warp=9", spec, &error));
    EXPECT_FALSE(error.empty());
}

TEST(FaultSpec, EveryKindHasNameAndParses)
{
    for (int k = 0; k < kNumFaultKinds; ++k) {
        auto kind = static_cast<FaultKind>(k);
        FaultKind parsed;
        ASSERT_TRUE(parseFaultKind(faultKindName(kind), parsed))
            << faultKindName(kind);
        EXPECT_EQ(parsed, kind);
    }
}

// --- replay determinism and zero cost -------------------------------

TEST(FaultReplay, SeededFaultsAreIdenticalAtAnyJobCount)
{
    std::vector<harness::Cell> cells;
    cells.push_back(charonCell()); // clean reference
    for (const char *text :
         {"unit-stall:rate=0.5:stall-ns=500", "unit-death:cube=0",
          "tlb-poison:rate=0.5", "link-degrade:cube=0:factor=0.25",
          "tsv-degrade:cube=0:factor=0.25", "cube-offline:cube=1"}) {
        harness::Cell c = charonCell();
        c.faults = onePlan(text, /*seed=*/7);
        c.label = std::string(text) + " on Charon";
        cells.push_back(c);
    }

    harness::ExperimentRunner serial(
        harness::RunnerConfig{1, std::string()});
    harness::ExperimentRunner parallel(
        harness::RunnerConfig{4, std::string()});
    auto a = serial.run(cells);
    auto b = parallel.run(cells);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE(cells[i].label);
        ASSERT_TRUE(a[i].ok) << a[i].error;
        ASSERT_TRUE(b[i].ok) << b[i].error;
        EXPECT_EQ(a[i].timing.gcSeconds, b[i].timing.gcSeconds);
        EXPECT_EQ(a[i].timing.minorSeconds, b[i].timing.minorSeconds);
        EXPECT_EQ(a[i].timing.majorSeconds, b[i].timing.majorSeconds);
        EXPECT_EQ(a[i].timing.dramBytes, b[i].timing.dramBytes);
        EXPECT_EQ(a[i].timing.totalEnergyJ(),
                  b[i].timing.totalEnergyJ());
    }
}

TEST(FaultReplay, DisabledPlanIsByteIdenticalToNoPlan)
{
    // A plan with no specs must not construct an engine: timings are
    // bit-equal to the default cell even with a different seed.
    harness::Cell plain = charonCell();
    harness::Cell seeded = charonCell();
    seeded.faults.seed = 99;

    harness::ExperimentRunner runner(
        harness::RunnerConfig{1, std::string()});
    auto r = runner.run({plain, seeded});
    ASSERT_TRUE(r[0].ok);
    ASSERT_TRUE(r[1].ok);
    EXPECT_EQ(r[0].timing.gcSeconds, r[1].timing.gcSeconds);
    EXPECT_EQ(r[0].timing.totalEnergyJ(), r[1].timing.totalEnergyJ());
    EXPECT_EQ(r[0].timing.dramBytes, r[1].timing.dramBytes);
}

TEST(FaultReplay, DegradedReplaysCompleteAndBandwidthFaultsSlow)
{
    harness::Cell clean = charonCell();
    harness::Cell offline = charonCell();
    offline.faults = onePlan("cube-offline:cube=0");
    harness::Cell tsv = charonCell();
    tsv.faults = onePlan("tsv-degrade:cube=0:factor=0.1");
    harness::Cell dead = charonCell();
    dead.faults = onePlan("unit-death"); // every cube's units die

    harness::ExperimentRunner runner(
        harness::RunnerConfig{2, std::string()});
    auto r = runner.run({clean, offline, tsv, dead});
    for (const auto &res : r)
        ASSERT_TRUE(res.ok) << res.error;
    // Bandwidth loss must cost time, never wedge the replay.
    EXPECT_GT(r[1].timing.gcSeconds, r[0].timing.gcSeconds);
    EXPECT_GT(r[2].timing.gcSeconds, r[0].timing.gcSeconds);
    // All-units-dead degrades to host execution: finite and positive.
    EXPECT_GT(r[3].timing.gcSeconds, 0.0);
}

// --- promotion-failure recovery -------------------------------------

namespace
{

class PromotionFaultTest : public ::testing::Test
{
  protected:
    PromotionFaultTest()
    {
        nodeId = klasses.defineInstance("Node", 2, 2);
        cfg.heapBytes = 16 * sim::kMiB;
        cfg.tenuringThreshold = 2;
        heap = std::make_unique<heap::ManagedHeap>(cfg, klasses);
        rec = std::make_unique<gc::TraceRecorder>(4, 22);
    }

    mem::Addr
    rootNode(std::size_t slot)
    {
        mem::Addr obj = heap->allocEden(nodeId);
        EXPECT_NE(obj, 0u);
        if (heap->roots().size() <= slot)
            heap->roots().resize(slot + 1, 0);
        heap->roots()[slot] = obj;
        return obj;
    }

    heap::KlassTable klasses;
    heap::KlassId nodeId = 0;
    heap::HeapConfig cfg;
    std::unique_ptr<heap::ManagedHeap> heap;
    std::unique_ptr<gc::TraceRecorder> rec;
};

} // namespace

TEST_F(PromotionFaultTest, ScavengeSelfForwardsAndPreservesGraph)
{
    // A small linked structure, then every GC-internal allocation
    // fails: no object can be evacuated, all must self-forward, and
    // the object graph must come out untouched.
    mem::Addr a = rootNode(0);
    mem::Addr b = rootNode(1);
    heap->storeRef(a, 0, b);
    heap->storeRef(b, 1, a);
    auto before = gc::fingerprintHeap(*heap);

    heap->setGcAllocFault(/*after=*/0, /*count=*/1u << 20);
    gc::Scavenge scavenge(*heap, *rec);
    auto result = scavenge.collect();
    EXPECT_TRUE(result.promotionFailed);
    EXPECT_GT(result.objectsFailed, 0u);

    gc::checkHeapIntegrity(*heap);
    auto after = gc::fingerprintHeap(*heap);
    EXPECT_TRUE(before == after)
        << "failed scavenge must preserve the reachable graph";
}

TEST_F(PromotionFaultTest, CollectorEscalatesToFullGc)
{
    for (std::size_t i = 0; i < 64; ++i)
        rootNode(i);
    auto before = gc::fingerprintHeap(*heap);

    gc::Collector collector(*heap, *rec);
    heap->setGcAllocFault(/*after=*/4, /*count=*/1u << 20);
    auto result = collector.minorCollect();
    EXPECT_TRUE(result.promotionFailed);
    // The degradation state machine: Minor -> Major, and the
    // allocation-free mark-compact recovers the heap.
    EXPECT_EQ(collector.majorCount(), 1u);

    gc::checkHeapIntegrity(*heap);
    auto after = gc::fingerprintHeap(*heap);
    EXPECT_TRUE(before == after);
}

TEST(PromotionFault, MutatorRunRecoversEndToEnd)
{
    const auto &params = workload::findWorkload("CC");
    workload::Mutator m(params, params.minHeapBytes * 2);
    m.heap().setGcAllocFault(/*after=*/32, /*count=*/4);
    auto result = m.run();
    EXPECT_FALSE(result.oom);
    EXPECT_GT(result.majorGcs, 0u) << "the injected failure must "
                                      "have escalated at least once";
    gc::checkHeapIntegrity(m.heap());
    EXPECT_TRUE(gc::verifyCardTable(m.heap()).ok());
}

// --- recorder failover ----------------------------------------------

TEST(Failover, TripsToHostOnlyAndPreservesFingerprint)
{
    const auto &params = workload::findWorkload("CC");
    const std::uint64_t heapBytes = params.minHeapBytes * 2;

    workload::Mutator clean(params, heapBytes);
    auto cleanResult = clean.run();
    ASSERT_FALSE(cleanResult.oom);
    auto cleanFp = gc::fingerprintHeap(clean.heap());

    workload::Mutator faulted(params, heapBytes);
    faulted.recorder().armFailover(/*after=*/0);
    auto result = faulted.run();
    ASSERT_FALSE(result.oom);
    EXPECT_TRUE(faulted.recorder().failoverTripped());

    // Degrading the recording is timing-model-only: the functional
    // collections are untouched, so the final graph matches.
    auto fp = gc::fingerprintHeap(faulted.heap());
    EXPECT_TRUE(fp == cleanFp);
    EXPECT_EQ(result.minorGcs, cleanResult.minorGcs);
    EXPECT_EQ(result.majorGcs, cleanResult.majorGcs);

    // Tripped from the first invocation: every recorded bucket must
    // be host-only.
    const gc::RunTrace &trace = faulted.recorder().run();
    std::uint64_t buckets = 0;
    for (const auto &gcTrace : trace.gcs)
        for (const auto &phase : gcTrace.phases)
            phase.forEachBucket([&](const gc::Bucket &bucket) {
                EXPECT_TRUE(bucket.hostOnly);
                ++buckets;
            });
    EXPECT_GT(buckets, 0u);
}

// --- metadata corruption detection ----------------------------------

namespace
{

/** A heap with old-generation objects referencing young ones. */
struct CorruptionRig
{
    heap::KlassTable klasses;
    heap::KlassId nodeId;
    heap::HeapConfig cfg;
    std::unique_ptr<heap::ManagedHeap> heap;

    CorruptionRig()
    {
        nodeId = klasses.defineInstance("Node", 2, 2);
        cfg.heapBytes = 16 * sim::kMiB;
        heap = std::make_unique<heap::ManagedHeap>(cfg, klasses);
        heap->roots().clear();
        for (int i = 0; i < 32; ++i) {
            mem::Addr old = heap->allocOldObject(nodeId);
            mem::Addr young = heap->allocEden(nodeId);
            heap->storeRef(old, 0, young);
            heap->roots().push_back(old);
        }
    }
};

} // namespace

TEST(MetadataVerify, CleanHeapPassesBothAudits)
{
    CorruptionRig rig;
    auto cards = gc::verifyCardTable(*rig.heap);
    EXPECT_TRUE(cards.ok()) << cards.str();
    EXPECT_GT(cards.checked, 0u);

    gc::populateMarkBitmaps(*rig.heap);
    auto bitmaps = gc::verifyMarkBitmaps(*rig.heap);
    EXPECT_TRUE(bitmaps.ok()) << bitmaps.str();
    EXPECT_GT(bitmaps.checked, 0u);
}

TEST(MetadataVerify, SeededCardFlipsAreDetected)
{
    CorruptionRig rig;
    sim::Rng rng(123);
    auto flips = flipCardBits(*rig.heap, rng, 8);
    EXPECT_EQ(flips, 8u);
    auto audit = gc::verifyCardTable(*rig.heap);
    EXPECT_FALSE(audit.ok());
    EXPECT_GT(audit.corrupt, 0u);
    EXPECT_FALSE(audit.findings.empty());
}

TEST(MetadataVerify, CleanCardOverOldToYoungRefIsDetected)
{
    // Whole-byte corruption yields a valid-looking encoding (kClean),
    // so the byte check passes — the old-to-young invariant is what
    // catches it.
    CorruptionRig rig;
    mem::Addr slot = rig.heap->refSlotAddr(rig.heap->roots()[0], 0);
    auto &cards = rig.heap->cardTable();
    cards.xorByte(cards.cardIndex(slot), 0xff); // dirty -> "clean"
    auto audit = gc::verifyCardTable(*rig.heap);
    EXPECT_FALSE(audit.ok());
}

TEST(MetadataVerify, SeededMarkBitmapFlipsAreDetected)
{
    CorruptionRig rig;
    gc::populateMarkBitmaps(*rig.heap);
    sim::Rng rng(123);
    auto flips = flipMarkBits(*rig.heap, rng, 8);
    EXPECT_EQ(flips, 8u);
    auto audit = gc::verifyMarkBitmaps(*rig.heap);
    EXPECT_FALSE(audit.ok());
    EXPECT_GT(audit.corrupt, 0u);
}

TEST(MetadataVerify, PlanLevelHeapFaultsApply)
{
    CorruptionRig rig;
    FaultPlan plan;
    plan.seed = 5;
    plan.specs.push_back(onePlan("card-flip:count=4").specs[0]);
    plan.specs.push_back(onePlan("mark-bitmap-flip:count=4").specs[0]);
    gc::populateMarkBitmaps(*rig.heap);
    EXPECT_EQ(applyHeapFaults(*rig.heap, plan), 8u);
    EXPECT_FALSE(gc::verifyCardTable(*rig.heap).ok());
    EXPECT_FALSE(gc::verifyMarkBitmaps(*rig.heap).ok());
}

// --- crash-isolated runner ------------------------------------------

namespace
{

harness::FunctionalRun
tinyRun()
{
    harness::FunctionalRun run;
    run.cubeShift = 26;
    run.gcsMinor = 7;
    run.gcsMajor = 2;
    run.allocatedBytes = 1234;
    run.mutatorInstructions = 5678;
    return run;
}

harness::Cell
customCell(const char *label, std::function<harness::FunctionalRun()> fn)
{
    harness::Cell c;
    c.replay = false;
    c.customRun = std::move(fn);
    c.label = label;
    return c;
}

} // namespace

TEST(IsolatedRunner, HangAndCrashAreQuarantinedOthersComplete)
{
    std::vector<harness::Cell> cells;
    cells.push_back(customCell("good", [] { return tinyRun(); }));
    cells.push_back(customCell("hung", []() -> harness::FunctionalRun {
        std::this_thread::sleep_for(std::chrono::seconds(30));
        return {};
    }));
    cells.push_back(
        customCell("crashing", []() -> harness::FunctionalRun {
            std::abort();
        }));
    cells.push_back(
        customCell("exiting", []() -> harness::FunctionalRun {
            std::_Exit(3);
        }));

    harness::RunnerConfig cfg{4, std::string()};
    cfg.cellTimeoutSec = 1.0;
    cfg.cellRetries = 0;
    harness::ExperimentRunner runner(cfg);
    auto results = runner.run(cells);
    ASSERT_EQ(results.size(), cells.size());

    // The healthy cell's result crossed the pipe intact.
    ASSERT_TRUE(results[0].ok) << results[0].error;
    ASSERT_TRUE(results[0].run);
    EXPECT_EQ(results[0].run->gcsMinor, 7u);
    EXPECT_EQ(results[0].run->gcsMajor, 2u);
    EXPECT_EQ(results[0].run->mutatorInstructions, 5678u);

    EXPECT_FALSE(results[1].ok);
    EXPECT_NE(results[1].error.find("timed out"), std::string::npos)
        << results[1].error;
    EXPECT_FALSE(results[2].ok);
    EXPECT_NE(results[2].error.find("signal"), std::string::npos)
        << results[2].error;
    EXPECT_FALSE(results[3].ok);
    EXPECT_NE(results[3].error.find("status 3"), std::string::npos)
        << results[3].error;

    // The report names every quarantined cell and exits non-zero.
    harness::Report report{harness::Options{}};
    for (std::size_t i = 0; i < cells.size(); ++i)
        report.checkCell(cells[i], results[i]);
    std::ostringstream os;
    EXPECT_EQ(report.finish(os), 1);
    EXPECT_NE(os.str().find("hung"), std::string::npos);
    EXPECT_NE(os.str().find("crashing"), std::string::npos);
    EXPECT_NE(os.str().find("exiting"), std::string::npos);
}

TEST(IsolatedRunner, RetriesThenQuarantines)
{
    int calls = 0; // parent-side copy is never mutated by the child
    std::vector<harness::Cell> cells;
    cells.push_back(
        customCell("always-crashing", [&]() -> harness::FunctionalRun {
            ++calls;
            std::abort();
        }));
    harness::RunnerConfig cfg{1, std::string()};
    cfg.cellTimeoutSec = 5.0;
    cfg.cellRetries = 2;
    harness::ExperimentRunner runner(cfg);
    auto results = runner.run(cells);
    EXPECT_FALSE(results[0].ok);
    EXPECT_NE(results[0].error.find("quarantined after 3 attempt"),
              std::string::npos)
        << results[0].error;
}

TEST(IsolatedRunner, RealCellsMatchInProcessResults)
{
    // The fork/pipe path must reproduce the in-process replay
    // bit-for-bit, including under an injected fault.
    harness::Cell clean = charonCell();
    harness::Cell faulted = charonCell();
    faulted.faults = onePlan("tsv-degrade:cube=0:factor=0.5");

    harness::ExperimentRunner inProcess(
        harness::RunnerConfig{2, std::string()});
    harness::RunnerConfig isoCfg{2, std::string()};
    isoCfg.cellTimeoutSec = 300.0;
    harness::ExperimentRunner isolated(isoCfg);

    auto a = inProcess.run({clean, faulted});
    auto b = isolated.run({clean, faulted});
    for (std::size_t i = 0; i < 2; ++i) {
        SCOPED_TRACE(i);
        ASSERT_TRUE(a[i].ok) << a[i].error;
        ASSERT_TRUE(b[i].ok) << b[i].error;
        EXPECT_EQ(a[i].timing.gcSeconds, b[i].timing.gcSeconds);
        EXPECT_EQ(a[i].timing.dramBytes, b[i].timing.dramBytes);
        EXPECT_EQ(a[i].timing.totalEnergyJ(),
                  b[i].timing.totalEnergyJ());
        EXPECT_EQ(a[i].run->gcsMinor, b[i].run->gcsMinor);
    }
}

TEST(IsolatedRunner, OptionsParseTimeoutAndRetries)
{
    harness::Options opt;
    const char *argv[] = {"bench", "--cell-timeout", "2.5",
                          "--cell-retries", "3"};
    ASSERT_TRUE(harness::parseOptions(5, const_cast<char **>(argv),
                                      opt));
    EXPECT_DOUBLE_EQ(opt.cellTimeoutSec, 2.5);
    EXPECT_EQ(opt.cellRetries, 3);
    auto cfg = opt.runnerConfig();
    EXPECT_DOUBLE_EQ(cfg.cellTimeoutSec, 2.5);
    EXPECT_EQ(cfg.cellRetries, 3);
}

// --- sweep journal durability ---------------------------------------

namespace
{

dse::JournalRecord
journalRecord(const std::string &key)
{
    dse::JournalRecord rec;
    rec.key = key;
    rec.ok = true;
    rec.gcSeconds = 1.5;
    rec.minorSeconds = 1.0;
    rec.majorSeconds = 0.5;
    rec.mutatorSeconds = 2.0;
    rec.avgGcBandwidthGBs = 10;
    rec.localAccessFraction = 0.5;
    rec.dramBytes = 4096;
    rec.hostEnergyJ = 1;
    rec.dramEnergyJ = 2;
    rec.unitEnergyJ = 3;
    return rec;
}

} // namespace

TEST(SweepJournal, KilledMidWriteKeepsCompletedCells)
{
    const std::string path = freshPath("journal-kill");
    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // Child: journal two complete cells, then die mid-append of a
        // third (simulated by a raw partial line, as if SIGKILL
        // landed inside write(2)) without running any destructor.
        dse::SweepJournal journal(path);
        journal.append(journalRecord("cell-a"));
        journal.append(journalRecord("cell-b"));
        {
            std::ofstream f(path, std::ios::app | std::ios::binary);
            f << "{\"v\":1,\"key\":\"cell-c\",\"ok\":tr";
        }
        std::_Exit(0);
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);

    // Reload: both completed cells survive, the torn line is a miss.
    dse::SweepJournal journal(path);
    EXPECT_EQ(journal.size(), 2u);
    dse::JournalRecord out;
    EXPECT_TRUE(journal.lookup("cell-a", out));
    EXPECT_DOUBLE_EQ(out.gcSeconds, 1.5);
    EXPECT_TRUE(journal.lookup("cell-b", out));
    EXPECT_FALSE(journal.lookup("cell-c", out));

    // Appending over the torn tail repairs it: a fresh load sees all
    // three records.
    EXPECT_TRUE(journal.append(journalRecord("cell-d")));
    dse::SweepJournal reload(path);
    EXPECT_EQ(reload.size(), 3u);
    EXPECT_TRUE(reload.lookup("cell-d", out));
}

TEST(SweepJournal, RecordFormatRoundTrips)
{
    auto rec = journalRecord("k|1");
    rec.oom = true;
    rec.error = "line1\nline\"2\"";
    dse::JournalRecord out;
    ASSERT_TRUE(
        dse::SweepJournal::parseLine(dse::SweepJournal::formatLine(rec),
                                     out));
    EXPECT_EQ(out.key, rec.key);
    EXPECT_EQ(out.oom, rec.oom);
    EXPECT_EQ(out.error, rec.error);
    EXPECT_DOUBLE_EQ(out.unitEnergyJ, rec.unitEnergyJ);
}

TEST(SweepJournal, SignalInterruptStopsSweepAtBatchBoundary)
{
    // installSignalFlush turns SIGINT into a flag ...
    dse::SweepJournal::installSignalFlush();
    EXPECT_FALSE(dse::SweepJournal::interrupted());
    ASSERT_EQ(::raise(SIGINT), 0);
    EXPECT_TRUE(dse::SweepJournal::interrupted());

    // ... and the explorer refuses to start a fresh batch: the cell
    // below would crash if executed (no such workload).
    dse::SweepJournal journal{std::string()};
    harness::ExperimentRunner runner(
        harness::RunnerConfig{1, std::string()});
    dse::Explorer explorer(runner, journal);
    harness::Cell cell;
    cell.key.workload = "no-such-workload";
    EXPECT_THROW(explorer.runCells({cell}, {"key"}),
                 dse::SweepInterrupted);
}
