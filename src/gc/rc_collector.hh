/**
 * @file
 * Reference-counting collector with zero-count-table reclamation and
 * binned free-queue recycling.
 *
 * Allocation is non-moving: everything lives in the Old generation,
 * served LIFO from per-size free queues (the FreeMemStore idiom —
 * a dying object's block is immediately reusable for the next
 * same-sized allocation) with bump allocation as the cold path.
 *
 * A collection is an RC "epoch": recompute the per-object reference
 * counts (deferred RC — the count RMWs are the RefCount primitive),
 * then drain the zero-count table transitively, recycling each dead
 * block (the block zero-fill records as Copy).  Reference counting
 * cannot reclaim cycles, so when an epoch recovers too little the
 * epoch ends with a backup mark pass over the same shared mark
 * closure the tracing collectors use, freeing whatever the counts
 * kept alive.
 */

#ifndef CHARON_GC_RC_COLLECTOR_HH
#define CHARON_GC_RC_COLLECTOR_HH

#include <map>
#include <set>
#include <vector>

#include "gc/collector_iface.hh"
#include "gc/recorder.hh"
#include "heap/heap.hh"

namespace charon::gc
{

/**
 * RC/ZCT collector on one ManagedHeap.
 */
class RcCollector : public CollectorIface
{
  public:
    RcCollector(heap::ManagedHeap &heap, TraceRecorder &recorder);

    const char *name() const override { return "rc"; }

    /** RefCount for the count RMWs, Copy for the block recycling,
     *  Scan&Push for the backup cycle pass.  No card table. */
    CapabilitySet capabilities() const override;

    mem::Addr allocate(heap::KlassId klass,
                       std::uint64_t array_len = 0) override;

    /** Everything goes through the free-queue/bump path. */
    bool isHumongous(std::uint64_t) const override { return false; }

    mem::Addr allocateHumongous(heap::KlassId klass,
                                std::uint64_t array_len = 0) override;

    GcOutcome onAllocationFailure() override;

    /** RC epochs are whole-heap passes: all count as major. */
    std::uint64_t minorCount() const override { return 0; }
    std::uint64_t majorCount() const override { return epochs_; }

    std::uint64_t backupMarkPasses() const { return backupPasses_; }

    /** Blocks currently queued for reuse, over all size bins. */
    std::uint64_t freeQueueBlocks() const;

  private:
    /** Pop a block of >= @p need_words from the bins (splitting). */
    mem::Addr takeFromBins(std::uint64_t need_words);

    /** Recycle @p obj: filler + zero record + bin by size. */
    void freeObject(mem::Addr obj);

    heap::ManagedHeap &heap_;
    TraceRecorder &rec_;

    /** Every live collector-allocated object, in address order. */
    std::set<mem::Addr> objects_;
    /** Size-binned free queues: words -> LIFO block stack. */
    std::map<std::uint64_t, std::vector<mem::Addr>> bins_;

    std::uint64_t epochs_ = 0;
    std::uint64_t backupPasses_ = 0;
    std::uint64_t freedBytes_ = 0; ///< current epoch's reclamation
};

} // namespace charon::gc

#endif // CHARON_GC_RC_COLLECTOR_HH
