/**
 * @file
 * Extension experiment (paper §4.6 / Table 1, quantified end-to-end):
 * run every workload under both collector families — ParallelScavenge
 * (throughput) and our G1 (latency/region-based) — and measure how
 * much Charon accelerates each.
 *
 * Expectation from the paper's applicability argument: the speedup
 * carries over, because both collectors spend their time in the same
 * offloadable primitives (G1's evacuation is Copy + Scan&Push; its
 * region-liveness accounting is Bitmap Count).
 *
 * Note: ALS runs G1 with 2x the Table 3 heap — its per-iteration
 * humongous factor matrices fragment a region heap, a well-known G1
 * behaviour that simply needs headroom.
 */

#include "bench_common.hh"

#include "sim/stats.hh"
#include "workload/g1_mutator.hh"

using namespace charon;
using namespace charon::bench;

int
main()
{
    report::heading(std::cout,
                    "Extension: Charon speedup under ParallelScavenge "
                    "vs G1 (each over its own host + DDR4 baseline)");

    report::Table table({"workload", "PS GCs", "PS speedup", "G1 GCs",
                         "G1 speedup"});
    std::vector<double> ps_s, g1_s;
    for (const auto &name : allWorkloads()) {
        const auto &params = workload::findWorkload(name);

        auto ps = runWorkload(name);
        auto ps_ddr4 = replay(ps, sim::PlatformKind::HostDdr4);
        auto ps_charon = replay(ps, sim::PlatformKind::CharonNmp);
        double ps_speedup = ps_ddr4.gcSeconds / ps_charon.gcSeconds;
        ps_s.push_back(ps_speedup);

        std::uint64_t g1_heap = params.heapBytes;
        if (name == "ALS")
            g1_heap = g1_heap * 2; // humongous-churn headroom
        workload::G1Mutator g1(params, g1_heap);
        auto g1_result = g1.run();
        std::string g1_cell = "OOM", g1_gcs = "-";
        if (!g1_result.oom) {
            platform::PlatformSim ddr4(sim::PlatformKind::HostDdr4,
                                       sim::SystemConfig{},
                                       g1.cubeShift());
            platform::PlatformSim charon(sim::PlatformKind::CharonNmp,
                                         sim::SystemConfig{},
                                         g1.cubeShift());
            double speedup =
                ddr4.simulate(g1.recorder().run()).gcSeconds
                / charon.simulate(g1.recorder().run()).gcSeconds;
            g1_s.push_back(speedup);
            g1_cell = report::times(speedup);
            g1_gcs = std::to_string(g1_result.youngGcs) + "y+"
                     + std::to_string(g1_result.mixedGcs) + "m";
        }
        table.addRow({name,
                      std::to_string(ps.result.minorGcs) + "m+"
                          + std::to_string(ps.result.majorGcs) + "M",
                      report::times(ps_speedup), g1_gcs, g1_cell});
    }
    table.addRow({"geomean", "", report::times(sim::geomean(ps_s)), "",
                  report::times(sim::geomean(g1_s))});
    table.print(std::cout);
    std::cout << "\nTable 1's claim, quantified: the acceleration is a "
                 "property of the primitives, not of one collector\n";
    return 0;
}
