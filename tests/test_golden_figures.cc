/**
 * @file
 * Golden-figure regression tests: two small workloads replayed on the
 * DDR4 baseline and on Charon through the ExperimentRunner, with GC
 * seconds, the per-primitive breakdown, and the Charon speedup
 * asserted against checked-in golden numbers.
 *
 * The simulator is deterministic, so these catch any unintended
 * timing drift — a perturbed cost constant, a changed contention
 * model — the moment it lands.  After an *intended* model change,
 * regenerate the numbers and commit them with the change:
 *
 *     CHARON_UPDATE_GOLDEN=1 build/tests/test_golden_figures
 *
 * (see EXPERIMENTS.md for the full procedure).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "json_mini.hh"
#include "harness/experiment_runner.hh"
#include "workload/catalog.hh"

using namespace charon;
using namespace charon::harness;

namespace
{

/** The golden directory is baked in at compile time (source tree). */
std::string
goldenPath()
{
    return std::string(CHARON_GOLDEN_DIR) + "/fig12_golden.json";
}

/** Goldens for the newly-offloadable collector zoo (G1, CMS, RC). */
std::string
zooGoldenPath()
{
    return std::string(CHARON_GOLDEN_DIR) + "/zoo_golden.json";
}

constexpr double kRelTol = 1e-6;

struct CellMetrics
{
    std::string label;
    double gcSeconds = 0;
    double minorSeconds = 0;
    double majorSeconds = 0;
    double copy = 0;
    double search = 0;
    double scanPush = 0;
    double bitmapCount = 0;
    /** Only serialized in the zoo golden (always 0 on the fig12
     *  grid, whose file format predates these primitives). */
    double bitSweep = 0;
    double refCount = 0;
    double glue = 0;
};

struct Golden
{
    std::vector<CellMetrics> cells;
    std::vector<std::pair<std::string, double>> speedups;
};

/** The cell grid: two cheap workloads x (DDR4 baseline, Charon). */
std::vector<Cell>
goldenCells()
{
    std::vector<Cell> cells;
    for (const char *name : {"CC", "ALS"}) {
        std::uint64_t heap =
            workload::findWorkload(name).minHeapBytes * 2;
        for (auto kind : {sim::PlatformKind::HostDdr4,
                          sim::PlatformKind::CharonNmp}) {
            Cell c;
            c.key.workload = name;
            c.key.heapBytes = heap;
            c.platform = kind;
            c.label = std::string(name) + " on "
                      + sim::platformName(kind);
            cells.push_back(c);
        }
    }
    return cells;
}

/** The zoo grid: one cell pair per newly-offloadable collector. */
std::vector<Cell>
zooCells()
{
    const auto &cc = workload::findWorkload("CC");
    struct Row
    {
        CollectorKind kind;
        std::uint64_t heap;
    };
    // G1 wants the catalog region heap; RC keeps everything in the
    // old space and needs double; CMS matches the fig12 sizing.
    const Row rows[] = {
        {CollectorKind::G1, cc.heapBytes},
        {CollectorKind::Cms, cc.minHeapBytes * 2},
        {CollectorKind::Rc, cc.heapBytes * 2},
    };
    std::vector<Cell> cells;
    for (const auto &row : rows) {
        for (auto kind : {sim::PlatformKind::HostDdr4,
                          sim::PlatformKind::CharonNmp}) {
            Cell c;
            c.key.workload = "CC";
            c.key.collector = row.kind;
            c.key.heapBytes = row.heap;
            c.platform = kind;
            c.label = std::string("CC (")
                      + collectorKindToken(row.kind) + ") on "
                      + sim::platformName(kind);
            cells.push_back(c);
        }
    }
    return cells;
}

/**
 * Run @p cells and collect the golden metrics.  Speedup rows pair
 * consecutive cells (DDR4 then Charon) and are named by @p speedupName
 * applied to the pair's first cell.
 */
Golden
measureCells(const std::vector<Cell> &cells,
             std::string (*speedupName)(const Cell &))
{
    // No trace cache: the goldens must not depend on cache state.
    ExperimentRunner runner(RunnerConfig{0, std::string()});
    auto results = runner.run(cells);
    Golden g;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        EXPECT_TRUE(results[i].ok) << cells[i].label << ": "
                                   << results[i].error;
        CellMetrics m;
        m.label = cells[i].label;
        const auto &t = results[i].timing;
        auto b = t.breakdown();
        m.gcSeconds = t.gcSeconds;
        m.minorSeconds = t.minorSeconds;
        m.majorSeconds = t.majorSeconds;
        m.copy = b.copy;
        m.search = b.search;
        m.scanPush = b.scanPush;
        m.bitmapCount = b.bitmapCount;
        m.bitSweep = b.bitSweep;
        m.refCount = b.refCount;
        m.glue = b.glue;
        g.cells.push_back(m);
    }
    // Per pair: DDR4 cell then Charon cell.
    for (std::size_t w = 0; w * 2 + 1 < g.cells.size(); ++w) {
        double base = g.cells[w * 2].gcSeconds;
        double charon = g.cells[w * 2 + 1].gcSeconds;
        g.speedups.emplace_back(speedupName(cells[w * 2]),
                                charon > 0 ? base / charon : 0);
    }
    return g;
}

Golden
measure()
{
    return measureCells(goldenCells(), [](const Cell &c) {
        return c.key.workload;
    });
}

Golden
measureZoo()
{
    return measureCells(zooCells(), [](const Cell &c) {
        return std::string(collectorKindToken(c.key.collector));
    });
}

std::string
fmt(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

void
writeGolden(const std::string &path, const Golden &g,
            bool with_new_prims = false)
{
    std::ofstream os(path);
    ASSERT_TRUE(os) << "cannot write " << path;
    os << "{\n  \"comment\": \"regenerate with CHARON_UPDATE_GOLDEN=1 "
          "test_golden_figures; see EXPERIMENTS.md\",\n  \"cells\": [\n";
    for (std::size_t i = 0; i < g.cells.size(); ++i) {
        const auto &m = g.cells[i];
        os << "    {\"label\": \"" << m.label << "\", "
           << "\"gcSeconds\": " << fmt(m.gcSeconds) << ", "
           << "\"minorSeconds\": " << fmt(m.minorSeconds) << ", "
           << "\"majorSeconds\": " << fmt(m.majorSeconds) << ",\n"
           << "     \"copy\": " << fmt(m.copy) << ", "
           << "\"search\": " << fmt(m.search) << ", "
           << "\"scanPush\": " << fmt(m.scanPush) << ", "
           << "\"bitmapCount\": " << fmt(m.bitmapCount) << ", ";
        if (with_new_prims) {
            os << "\"bitSweep\": " << fmt(m.bitSweep) << ", "
               << "\"refCount\": " << fmt(m.refCount) << ", ";
        }
        os << "\"glue\": " << fmt(m.glue) << "}"
           << (i + 1 < g.cells.size() ? "," : "") << "\n";
    }
    os << "  ],\n  \"speedups\": [\n";
    for (std::size_t i = 0; i < g.speedups.size(); ++i) {
        os << "    {\"workload\": \"" << g.speedups[i].first
           << "\", \"charonOverDdr4\": " << fmt(g.speedups[i].second)
           << "}" << (i + 1 < g.speedups.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

bool
loadGolden(const std::string &path, Golden &g, std::string *error)
{
    std::ifstream is(path);
    if (!is) {
        *error = "cannot open " + path;
        return false;
    }
    std::stringstream ss;
    ss << is.rdbuf();
    testjson::ValuePtr root;
    try {
        root = testjson::parse(ss.str());
    } catch (const std::exception &e) {
        *error = e.what();
        return false;
    }
    auto cells = root->get("cells");
    if (!cells || !cells->isArray()) {
        *error = "golden file has no cells array";
        return false;
    }
    for (const auto &c : cells->array) {
        CellMetrics m;
        m.label = c->str("label");
        m.gcSeconds = c->num("gcSeconds");
        m.minorSeconds = c->num("minorSeconds");
        m.majorSeconds = c->num("majorSeconds");
        m.copy = c->num("copy");
        m.search = c->num("search");
        m.scanPush = c->num("scanPush");
        m.bitmapCount = c->num("bitmapCount");
        m.bitSweep = c->num("bitSweep");   // zoo golden only
        m.refCount = c->num("refCount");   // zoo golden only
        m.glue = c->num("glue");
        g.cells.push_back(m);
    }
    auto speedups = root->get("speedups");
    if (speedups && speedups->isArray()) {
        for (const auto &s : speedups->array)
            g.speedups.emplace_back(s->str("workload"),
                                    s->num("charonOverDdr4"));
    }
    return true;
}

::testing::AssertionResult
relNear(const char *what, double actual, double golden)
{
    double scale = std::max({1.0, std::abs(actual), std::abs(golden)});
    if (std::abs(actual - golden) <= kRelTol * scale)
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << what << ": actual " << fmt(actual) << " vs golden "
           << fmt(golden)
           << " (outside rel tol 1e-6).  If the timing model changed "
              "intentionally, regenerate with CHARON_UPDATE_GOLDEN=1 "
              "(see EXPERIMENTS.md).";
}

void
compareToGolden(const Golden &actual, const std::string &path)
{
    Golden golden;
    std::string error;
    ASSERT_TRUE(loadGolden(path, golden, &error)) << error;
    ASSERT_EQ(actual.cells.size(), golden.cells.size())
        << "cell grid changed; regenerate the golden file";

    for (std::size_t i = 0; i < actual.cells.size(); ++i) {
        const auto &a = actual.cells[i];
        const auto &g = golden.cells[i];
        SCOPED_TRACE(a.label);
        EXPECT_EQ(a.label, g.label);
        EXPECT_TRUE(relNear("gcSeconds", a.gcSeconds, g.gcSeconds));
        EXPECT_TRUE(
            relNear("minorSeconds", a.minorSeconds, g.minorSeconds));
        EXPECT_TRUE(
            relNear("majorSeconds", a.majorSeconds, g.majorSeconds));
        EXPECT_TRUE(relNear("copy", a.copy, g.copy));
        EXPECT_TRUE(relNear("search", a.search, g.search));
        EXPECT_TRUE(relNear("scanPush", a.scanPush, g.scanPush));
        EXPECT_TRUE(
            relNear("bitmapCount", a.bitmapCount, g.bitmapCount));
        EXPECT_TRUE(relNear("bitSweep", a.bitSweep, g.bitSweep));
        EXPECT_TRUE(relNear("refCount", a.refCount, g.refCount));
        EXPECT_TRUE(relNear("glue", a.glue, g.glue));
    }

    ASSERT_EQ(actual.speedups.size(), golden.speedups.size());
    for (std::size_t i = 0; i < actual.speedups.size(); ++i) {
        SCOPED_TRACE("speedup " + actual.speedups[i].first);
        EXPECT_EQ(actual.speedups[i].first, golden.speedups[i].first);
        EXPECT_TRUE(relNear("charonOverDdr4",
                            actual.speedups[i].second,
                            golden.speedups[i].second));
    }
}

} // namespace

TEST(GoldenFigures, Fig12CellsMatchGolden)
{
    Golden actual = measure();
    if (::testing::Test::HasFailure())
        return; // a cell failed; the message above says which

    if (std::getenv("CHARON_UPDATE_GOLDEN") != nullptr) {
        writeGolden(goldenPath(), actual);
        std::printf("golden file updated: %s\n", goldenPath().c_str());
        return;
    }
    compareToGolden(actual, goldenPath());
}

TEST(GoldenFigures, ZooCellsMatchGolden)
{
    // One cell pair per newly-offloadable collector (G1 evacuation,
    // CMS bit-sweep, RC reclamation), same tolerance and update
    // procedure as the fig12 grid.
    Golden actual = measureZoo();
    if (::testing::Test::HasFailure())
        return;

    if (std::getenv("CHARON_UPDATE_GOLDEN") != nullptr) {
        writeGolden(zooGoldenPath(), actual, true);
        std::printf("golden file updated: %s\n",
                    zooGoldenPath().c_str());
        return;
    }
    compareToGolden(actual, zooGoldenPath());
}

TEST(GoldenFigures, SpeedupShapeIsSane)
{
    // Independent of exact goldens: Charon must beat the DDR4
    // baseline on these memory-bound workloads (the paper's core
    // claim), by a sane factor.
    Golden actual = measure();
    for (const auto &[workload, speedup] : actual.speedups) {
        SCOPED_TRACE(workload);
        EXPECT_GT(speedup, 1.0);
        EXPECT_LT(speedup, 50.0);
    }
}
