#include "trace_io.hh"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

namespace charon::gc
{

namespace io
{

// --- little-endian primitives ---------------------------------------

void
putU64(std::ostream &os, std::uint64_t v)
{
    char buf[8];
    for (int i = 0; i < 8; ++i)
        buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    os.write(buf, 8);
}

void
putF64(std::ostream &os, double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, 8);
    putU64(os, bits);
}

bool
getU64(std::istream &is, std::uint64_t &v)
{
    char buf[8];
    if (!is.read(buf, 8))
        return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(buf[i]))
             << (8 * i);
    }
    return true;
}

bool
getF64(std::istream &is, double &v)
{
    std::uint64_t bits;
    if (!getU64(is, bits))
        return false;
    std::memcpy(&v, &bits, 8);
    return true;
}

void
putString(std::ostream &os, const std::string &s)
{
    putU64(os, s.size());
    os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool
getString(std::istream &is, std::string &s)
{
    std::uint64_t n;
    if (!getU64(is, n))
        return false;
    // Cap so a corrupted length cannot trigger a huge allocation.
    if (n > (1u << 20))
        return false;
    s.resize(n);
    return static_cast<bool>(
        is.read(s.data(), static_cast<std::streamsize>(n)));
}

} // namespace io

namespace
{

constexpr char kMagic[8] = {'C', 'H', 'A', 'R', 'O', 'N', 'T', 'R'};

using io::getF64;
using io::putF64;

void
put64(std::ostream &os, std::uint64_t v)
{
    io::putU64(os, v);
}

bool
get64(std::istream &is, std::uint64_t &v)
{
    return io::getU64(is, v);
}

void
putBucket(std::ostream &os, const Bucket &b)
{
    put64(os, static_cast<std::uint64_t>(b.kind));
    put64(os, static_cast<std::uint64_t>(b.srcCube));
    put64(os, static_cast<std::uint64_t>(b.dstCube));
    put64(os, b.hostOnly ? 1 : 0);
    put64(os, b.invocations);
    put64(os, b.seqReadBytes);
    put64(os, b.writeBytes);
    put64(os, b.randomAccesses);
    put64(os, b.randomBytes);
    put64(os, b.refsVisited);
    put64(os, b.rangeBits);
    put64(os, b.bitmapRmwAccesses);
    put64(os, b.stackPushes);
}

bool
getBucket(std::istream &is, Bucket &b)
{
    std::uint64_t kind, src, dst, host_only;
    if (!get64(is, kind) || !get64(is, src) || !get64(is, dst)
        || !get64(is, host_only) || !get64(is, b.invocations)
        || !get64(is, b.seqReadBytes) || !get64(is, b.writeBytes)
        || !get64(is, b.randomAccesses) || !get64(is, b.randomBytes)
        || !get64(is, b.refsVisited) || !get64(is, b.rangeBits)
        || !get64(is, b.bitmapRmwAccesses)
        || !get64(is, b.stackPushes)) {
        return false;
    }
    if (kind >= static_cast<std::uint64_t>(kNumPrimKinds))
        return false;
    b.kind = static_cast<PrimKind>(kind);
    b.srcCube = static_cast<int>(src);
    b.dstCube = static_cast<int>(dst);
    b.hostOnly = host_only != 0;
    return true;
}

} // namespace

void
writeTrace(std::ostream &os, const RunTrace &trace)
{
    os.write(kMagic, sizeof(kMagic));
    put64(os, kTraceFormatVersion);
    put64(os, trace.gcs.size());
    for (const auto &gc : trace.gcs) {
        put64(os, gc.major ? 1 : 0);
        put64(os, gc.liveObjects);
        put64(os, gc.bytesCopied);
        put64(os, gc.bytesPromoted);
        put64(os, gc.objectsScanned);
        put64(os, gc.refsVisited);
        put64(os, gc.cardsSearched);
        put64(os, gc.bitmapCountCalls);
        put64(os, gc.phases.size());
        for (const auto &phase : gc.phases) {
            put64(os, static_cast<std::uint64_t>(phase.kind));
            putF64(os, phase.bitmapCacheHitRate);
            put64(os, phase.bitmapCacheWritebacks);
            put64(os, phase.threads.size());
            for (const auto &t : phase.threads) {
                put64(os, t.glueInstructions);
                put64(os, t.glueMemAccesses);
                put64(os, t.buckets.size());
                for (const auto &b : t.buckets)
                    putBucket(os, b);
            }
        }
    }
    put64(os, trace.mutatorInstructions.size());
    for (auto n : trace.mutatorInstructions)
        put64(os, n);
}

bool
readTrace(std::istream &is, RunTrace &trace, std::string *error)
{
    auto fail = [&](const char *why) {
        if (error)
            *error = why;
        return false;
    };
    char magic[8];
    if (!is.read(magic, sizeof(magic))
        || std::memcmp(magic, kMagic, sizeof(magic)) != 0) {
        return fail("bad magic");
    }
    std::uint64_t version;
    if (!get64(is, version) || version != kTraceFormatVersion)
        return fail("unsupported trace version");

    trace = RunTrace{};
    std::uint64_t gcs;
    if (!get64(is, gcs))
        return fail("truncated header");
    trace.gcs.resize(gcs);
    for (auto &gc : trace.gcs) {
        std::uint64_t major, phases;
        if (!get64(is, major) || !get64(is, gc.liveObjects)
            || !get64(is, gc.bytesCopied)
            || !get64(is, gc.bytesPromoted)
            || !get64(is, gc.objectsScanned)
            || !get64(is, gc.refsVisited)
            || !get64(is, gc.cardsSearched)
            || !get64(is, gc.bitmapCountCalls) || !get64(is, phases)) {
            return fail("truncated gc record");
        }
        gc.major = major != 0;
        gc.phases.resize(phases);
        for (auto &phase : gc.phases) {
            std::uint64_t kind, threads;
            if (!get64(is, kind)
                || !getF64(is, phase.bitmapCacheHitRate)
                || !get64(is, phase.bitmapCacheWritebacks)
                || !get64(is, threads)) {
                return fail("truncated phase record");
            }
            if (kind > static_cast<std::uint64_t>(
                    PhaseKind::MajorCompact)) {
                return fail("bad phase kind");
            }
            phase.kind = static_cast<PhaseKind>(kind);
            phase.threads.resize(threads);
            for (auto &t : phase.threads) {
                std::uint64_t buckets;
                if (!get64(is, t.glueInstructions)
                    || !get64(is, t.glueMemAccesses)
                    || !get64(is, buckets)) {
                    return fail("truncated thread record");
                }
                t.buckets.resize(buckets);
                for (auto &b : t.buckets) {
                    if (!getBucket(is, b))
                        return fail("truncated bucket record");
                }
            }
        }
    }
    std::uint64_t segments;
    if (!get64(is, segments))
        return fail("truncated mutator segments");
    trace.mutatorInstructions.resize(segments);
    for (auto &n : trace.mutatorInstructions) {
        if (!get64(is, n))
            return fail("truncated mutator segment");
    }
    return true;
}

bool
saveTraceFile(const std::string &path, const RunTrace &trace,
              std::string *error)
{
    std::ofstream os(path, std::ios::binary);
    if (!os) {
        if (error)
            *error = "cannot open " + path + " for writing";
        return false;
    }
    writeTrace(os, trace);
    if (!os) {
        if (error)
            *error = "write failure on " + path;
        return false;
    }
    return true;
}

bool
loadTraceFile(const std::string &path, RunTrace &trace,
              std::string *error)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        if (error)
            *error = "cannot open " + path;
        return false;
    }
    return readTrace(is, trace, error);
}

bool
traceEquals(const RunTrace &a, const RunTrace &b)
{
    if (a.gcs.size() != b.gcs.size()
        || a.mutatorInstructions != b.mutatorInstructions) {
        return false;
    }
    for (std::size_t g = 0; g < a.gcs.size(); ++g) {
        const auto &x = a.gcs[g];
        const auto &y = b.gcs[g];
        if (x.major != y.major || x.liveObjects != y.liveObjects
            || x.bytesCopied != y.bytesCopied
            || x.bytesPromoted != y.bytesPromoted
            || x.objectsScanned != y.objectsScanned
            || x.refsVisited != y.refsVisited
            || x.cardsSearched != y.cardsSearched
            || x.bitmapCountCalls != y.bitmapCountCalls
            || x.phases.size() != y.phases.size()) {
            return false;
        }
        for (std::size_t p = 0; p < x.phases.size(); ++p) {
            const auto &px = x.phases[p];
            const auto &py = y.phases[p];
            if (px.kind != py.kind
                || px.bitmapCacheHitRate != py.bitmapCacheHitRate
                || px.bitmapCacheWritebacks != py.bitmapCacheWritebacks
                || px.threads.size() != py.threads.size()) {
                return false;
            }
            for (std::size_t t = 0; t < px.threads.size(); ++t) {
                const auto &tx = px.threads[t];
                const auto &ty = py.threads[t];
                if (tx.glueInstructions != ty.glueInstructions
                    || tx.glueMemAccesses != ty.glueMemAccesses
                    || tx.buckets.size() != ty.buckets.size()) {
                    return false;
                }
                for (std::size_t i = 0; i < tx.buckets.size(); ++i) {
                    const auto &bx = tx.buckets[i];
                    const auto &by = ty.buckets[i];
                    if (bx.kind != by.kind || bx.srcCube != by.srcCube
                        || bx.dstCube != by.dstCube
                        || bx.hostOnly != by.hostOnly
                        || bx.invocations != by.invocations
                        || bx.seqReadBytes != by.seqReadBytes
                        || bx.writeBytes != by.writeBytes
                        || bx.randomAccesses != by.randomAccesses
                        || bx.randomBytes != by.randomBytes
                        || bx.refsVisited != by.refsVisited
                        || bx.rangeBits != by.rangeBits
                        || bx.bitmapRmwAccesses
                               != by.bitmapRmwAccesses
                        || bx.stackPushes != by.stackPushes) {
                        return false;
                    }
                }
            }
        }
    }
    return true;
}

} // namespace charon::gc
