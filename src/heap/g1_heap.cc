#include "g1_heap.hh"

#include "sim/logging.hh"

namespace charon::heap
{

const char *
g1RegionKindName(G1RegionKind kind)
{
    switch (kind) {
      case G1RegionKind::Free:      return "free";
      case G1RegionKind::Eden:      return "eden";
      case G1RegionKind::Survivor:  return "survivor";
      case G1RegionKind::Old:       return "old";
      case G1RegionKind::Humongous: return "humongous";
    }
    return "unknown";
}

G1Heap::G1Heap(const G1Config &cfg, const KlassTable &klasses)
    : cfg_(cfg),
      arena_(cfg.base, cfg.heapBytes, klasses),
      begMap_(cfg.base, cfg.heapBytes, cfg.base + cfg.heapBytes),
      endMap_(cfg.base, cfg.heapBytes,
              cfg.base + cfg.heapBytes + cfg.heapBytes / 64)
{
    CHARON_ASSERT(cfg.heapBytes % cfg.regionBytes == 0,
                  "heap must be a whole number of regions");
    const int n = static_cast<int>(cfg.heapBytes / cfg.regionBytes);
    regions_.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        G1Region &r = regions_[static_cast<std::size_t>(i)];
        r.index = i;
        r.start = cfg.base
                  + static_cast<mem::Addr>(i) * cfg.regionBytes;
        r.end = r.start + cfg.regionBytes;
        r.top = r.start;
    }
    vaLimit_ = cfg.base + cfg.heapBytes + 2 * (cfg.heapBytes / 64);
}

G1Region &
G1Heap::region(int index)
{
    CHARON_ASSERT(index >= 0 && index < numRegions(),
                  "bad region index %d", index);
    return regions_[static_cast<std::size_t>(index)];
}

const G1Region &
G1Heap::region(int index) const
{
    return const_cast<G1Heap *>(this)->region(index);
}

int
G1Heap::regionIndexOf(mem::Addr addr) const
{
    CHARON_ASSERT(arena_.contains(addr),
                  "address 0x%llx outside the G1 heap",
                  static_cast<unsigned long long>(addr));
    return static_cast<int>((addr - cfg_.base) / cfg_.regionBytes);
}

G1Region &
G1Heap::regionOf(mem::Addr addr)
{
    return region(regionIndexOf(addr));
}

const G1Region &
G1Heap::regionOf(mem::Addr addr) const
{
    return region(regionIndexOf(addr));
}

int
G1Heap::freeRegionCount() const
{
    return regionCount(G1RegionKind::Free);
}

int
G1Heap::regionCount(G1RegionKind kind) const
{
    int n = 0;
    for (const auto &r : regions_)
        n += (r.kind == kind) ? 1 : 0;
    return n;
}

int
G1Heap::claimRegion(G1RegionKind kind)
{
    CHARON_ASSERT(kind != G1RegionKind::Free, "cannot claim Free");
    for (auto &r : regions_) {
        if (r.kind == G1RegionKind::Free) {
            r.kind = kind;
            r.top = r.start;
            r.remset.clear();
            r.liveBytes = 0;
            r.humongousSpan = 0;
            return r.index;
        }
    }
    return -1;
}

void
G1Heap::releaseRegion(int index)
{
    G1Region &r = region(index);
    CHARON_ASSERT(r.kind != G1RegionKind::Free, "double release");
    CHARON_ASSERT(r.humongousSpan >= 0,
                  "released a humongous continuation directly");
    int span = r.humongousSpan;
    for (int i = index; i <= index + span; ++i) {
        G1Region &part = region(i);
        part.kind = G1RegionKind::Free;
        part.top = part.start;
        part.remset.clear();
        part.liveBytes = 0;
        part.humongousSpan = 0;
    }
    if (currentEden_ == index)
        currentEden_ = -1;
    if (currentSurvivor_ == index)
        currentSurvivor_ = -1;
    if (currentOld_ == index)
        currentOld_ = -1;
}

void
G1Heap::retireAllocationCursors()
{
    currentEden_ = -1;
    currentSurvivor_ = -1;
    currentOld_ = -1;
}

int &
G1Heap::currentFor(G1RegionKind kind)
{
    switch (kind) {
      case G1RegionKind::Eden:     return currentEden_;
      case G1RegionKind::Survivor: return currentSurvivor_;
      case G1RegionKind::Old:      return currentOld_;
      default:
        sim::panic("no allocation cursor for %s",
                   g1RegionKindName(kind));
    }
}

mem::Addr
G1Heap::allocIn(G1RegionKind kind, std::uint64_t size_words)
{
    CHARON_ASSERT(size_words * 8 <= cfg_.regionBytes,
                  "object larger than a region: use allocateHumongous");
    int &cursor = currentFor(kind);
    for (int attempt = 0; attempt < 2; ++attempt) {
        if (cursor >= 0) {
            G1Region &r = region(cursor);
            if (r.free() >= size_words * 8) {
                mem::Addr obj = r.top;
                r.top += size_words * 8;
                return obj;
            }
        }
        cursor = claimRegion(kind);
        if (cursor < 0)
            return 0;
    }
    return 0;
}

mem::Addr
G1Heap::allocate(KlassId klass, std::uint64_t array_len)
{
    std::uint64_t size_words = arena_.sizeWordsFor(klass, array_len);
    if (size_words * 8 > cfg_.regionBytes / 2)
        return allocateHumongous(klass, array_len);
    // Respect the Eden budget: demand a GC instead of growing Eden
    // without bound.
    if (currentEden_ < 0
        || region(currentEden_).free() < size_words * 8) {
        if (regionCount(G1RegionKind::Eden) >= cfg_.maxEdenRegions)
            return 0;
    }
    mem::Addr obj = allocIn(G1RegionKind::Eden, size_words);
    if (obj == 0)
        return 0;
    arena_.writeHeader(obj, klass, size_words, array_len);
    return obj;
}

mem::Addr
G1Heap::allocateHumongous(KlassId klass, std::uint64_t array_len)
{
    std::uint64_t size_words = arena_.sizeWordsFor(klass, array_len);
    std::uint64_t need_regions =
        mem::divCeil(size_words * 8, cfg_.regionBytes);
    // First-fit contiguous run of free regions.
    for (int i = 0; i + static_cast<int>(need_regions) <= numRegions();
         ++i) {
        bool fits = true;
        for (std::uint64_t j = 0; j < need_regions; ++j) {
            if (region(i + static_cast<int>(j)).kind
                != G1RegionKind::Free) {
                fits = false;
                break;
            }
        }
        if (!fits)
            continue;
        for (std::uint64_t j = 0; j < need_regions; ++j) {
            G1Region &part = region(i + static_cast<int>(j));
            part.kind = G1RegionKind::Humongous;
            part.top = part.end;
            part.remset.clear();
            part.humongousSpan = -1; // continuation marker
        }
        G1Region &head = region(i);
        head.humongousSpan = static_cast<int>(need_regions) - 1;
        head.top = head.start + size_words * 8 < head.end
                       ? head.start + size_words * 8
                       : head.end;
        arena_.writeHeader(head.start, klass, size_words, array_len);
        return head.start;
    }
    return 0;
}

void
G1Heap::recordRemset(mem::Addr slot, mem::Addr target)
{
    if (target == 0)
        return;
    int slot_region = regionIndexOf(slot);
    int target_region = regionIndexOf(target);
    if (slot_region != target_region)
        region(target_region).remset.insert(slot);
}

void
G1Heap::storeRef(mem::Addr obj, std::uint64_t i, mem::Addr target)
{
    mem::Addr slot = arena_.refSlotAddr(obj, i);
    arena_.store64(slot, target);
    // G1 post-barrier: cross-region stores feed the remembered set.
    recordRemset(slot, target);
}

void
G1Heap::setRefRaw(mem::Addr obj, std::uint64_t i, mem::Addr target)
{
    arena_.setRef(obj, i, target);
}

void
G1Heap::forEachObjectInRegion(
    int index, const std::function<void(mem::Addr)> &fn) const
{
    const G1Region &r = region(index);
    if (r.kind == G1RegionKind::Free)
        return;
    if (r.kind == G1RegionKind::Humongous) {
        // Only the head region (humongousSpan >= 0) starts an object;
        // continuations carry the marker -1.
        if (r.humongousSpan >= 0)
            fn(r.start);
        return;
    }
    mem::Addr p = r.start;
    while (p < r.top) {
        std::uint64_t size = arena_.sizeWords(p);
        CHARON_ASSERT(size >= 2, "corrupt object at 0x%llx",
                      static_cast<unsigned long long>(p));
        fn(p);
        p += size * 8;
    }
}

void
G1Heap::verify() const
{
    for (const auto &r : regions_) {
        if (r.kind == G1RegionKind::Free)
            continue;
        forEachObjectInRegion(r.index, [&](mem::Addr obj) {
            KlassId kid = arena_.klassOf(obj);
            CHARON_ASSERT(kid > 0 && kid < klasses().size(),
                          "bad klass %u at 0x%llx", kid,
                          static_cast<unsigned long long>(obj));
            std::uint64_t n = arena_.refCount(obj);
            for (std::uint64_t i = 0; i < n; ++i) {
                mem::Addr t = arena_.refAt(obj, i);
                CHARON_ASSERT(
                    t == 0
                        || (arena_.contains(t)
                            && regionOf(t).kind != G1RegionKind::Free),
                    "dangling ref 0x%llx slot %llu -> 0x%llx",
                    static_cast<unsigned long long>(obj),
                    static_cast<unsigned long long>(i),
                    static_cast<unsigned long long>(t));
            }
        });
    }
}

} // namespace charon::heap
