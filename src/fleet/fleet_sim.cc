#include "fleet_sim.hh"

#include <algorithm>
#include <cmath>

#include "accel/backend.hh"
#include "harness/experiment_runner.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace charon::fleet
{

using harness::Cell;
using harness::CellResult;

bool
buildProfiles(harness::ExperimentRunner &runner,
              const std::vector<TenantSpec> &tenants,
              std::vector<TenantProfile> *out, std::string *error)
{
    // Two replay cells per tenant: the tenant's offload platform and
    // the DDR4 host fallback of the *same* functional trace — so the
    // two GC sequences align index-for-index by construction.
    std::vector<Cell> cells;
    cells.reserve(tenants.size() * 2);
    for (const auto &spec : tenants) {
        Cell c;
        c.key.workload = spec.workload;
        c.key.collector = spec.collector;
        c.key.heapBytes = spec.heapBytes;
        c.key.seed = spec.seed;
        c.config = sim::SystemConfig::table2();
        c.platform = spec.platform;
        c.label = spec.name + " on " + sim::platformName(spec.platform);
        cells.push_back(c);
        c.platform = sim::PlatformKind::HostDdr4;
        c.label = spec.name + " host baseline";
        cells.push_back(c);
    }

    auto results = runner.run(cells);
    out->clear();
    out->reserve(tenants.size());
    for (std::size_t t = 0; t < tenants.size(); ++t) {
        const CellResult &accel = results[2 * t];
        const CellResult &host = results[2 * t + 1];
        for (const CellResult *r : {&accel, &host}) {
            if (!r->ok) {
                if (error) {
                    *error = tenants[t].name + ": "
                             + (r->error.empty() ? "cell failed"
                                                 : r->error);
                }
                return false;
            }
        }
        if (accel.timing.gcs.size() != host.timing.gcs.size()) {
            if (error) {
                *error = tenants[t].name
                         + ": platform/host GC count mismatch";
            }
            return false;
        }
        TenantProfile profile;
        profile.gcs.reserve(accel.timing.gcs.size());
        for (std::size_t g = 0; g < accel.timing.gcs.size(); ++g) {
            GcProfile gc;
            gc.accelTicks =
                sim::secondsToTicks(accel.timing.gcs[g].seconds);
            gc.hostTicks =
                sim::secondsToTicks(host.timing.gcs[g].seconds);
            gc.unitSec = accel.timing.gcs[g].unitSeconds;
            gc.major = accel.timing.gcs[g].major;
            profile.gcs.push_back(gc);
        }
        profile.soloAccelSec = accel.timing.gcSeconds;
        profile.soloHostSec = host.timing.gcSeconds;
        out->push_back(std::move(profile));
    }
    return true;
}

namespace
{

/** The whole DES state; one instance per runFleet call. */
struct Sim
{
    const FleetConfig &cfg;
    const std::vector<TenantProfile> &profiles;
    sim::EventQueue eq;
    Arbiter arbiter;
    sim::Tick sloTicks;
    FleetResult result;
    int slotsKilled = 0;

    struct Tenant
    {
        const TenantSpec *spec;
        const TenantProfile *profile;
        sim::Rng rng;             ///< service-time jitter
        std::vector<sim::Tick> arrivals;
        std::size_t nextArrival = 0;
        std::vector<sim::Tick> queue; ///< arrival ticks, FIFO
        std::size_t queueHead = 0;
        bool serving = false;
        bool gcBlocked = false;
        double reqSinceGc = 0;
        double reqPerGc = 1;
        std::size_t gcIdx = 0;
        sim::Tick gcEnqueued = 0;
        // Timeline plumbing (null/0 when tracing is off).
        sim::Timeline *tl = nullptr;
        sim::Timeline::TrackId gcTrack = 0;
        sim::Timeline::TrackId queueTrack = 0;
    };
    std::vector<Tenant> tenants;
    sim::Timeline *arbiterTl = nullptr;
    sim::Timeline::TrackId arbPendingTrack = 0;
    sim::Timeline::TrackId arbBusyTrack = 0;

    Sim(const FleetConfig &cfg_,
        const std::vector<TenantProfile> &profiles_, int slots)
        : cfg(cfg_), profiles(profiles_),
          arbiter(cfg_.policy, slots),
          sloTicks(cfg_.sloMs > 0
                       ? sim::secondsToTicks(cfg_.sloMs * 1e-3)
                       : sim::maxTick)
    {
    }

    void
    sampleArbiter()
    {
        if (!arbiterTl)
            return;
        arbiterTl->counter(arbPendingTrack, eq.now(),
                           static_cast<double>(arbiter.pendingCount()));
        arbiterTl->counter(arbBusyTrack, eq.now(),
                           static_cast<double>(arbiter.busy()));
    }

    void
    sampleQueue(Tenant &t)
    {
        if (t.tl) {
            t.tl->counter(t.queueTrack, eq.now(),
                          static_cast<double>(t.queue.size()
                                              - t.queueHead));
        }
    }

    void
    scheduleNextArrival(int idx)
    {
        Tenant &t = tenants[idx];
        if (t.nextArrival >= t.arrivals.size())
            return;
        sim::Tick when = t.arrivals[t.nextArrival++];
        eq.schedule(when, [this, idx] { onArrival(idx); });
    }

    void
    onArrival(int idx)
    {
        Tenant &t = tenants[idx];
        t.queue.push_back(eq.now());
        sampleQueue(t);
        scheduleNextArrival(idx);
        tryServe(idx);
    }

    void
    tryServe(int idx)
    {
        Tenant &t = tenants[idx];
        if (t.serving || t.gcBlocked || t.queueHead >= t.queue.size())
            return;
        t.serving = true;
        // Uniform jitter in [0.5, 1.5) of the mean keeps the mean
        // while decorrelating tenants' service completions.
        double us = t.spec->serviceUs * (0.5 + t.rng.uniform());
        eq.scheduleIn(sim::secondsToTicks(us * 1e-6),
                      [this, idx] { onServed(idx); });
    }

    void
    onServed(int idx)
    {
        Tenant &t = tenants[idx];
        t.serving = false;
        sim::Tick arrived = t.queue[t.queueHead++];
        // Compact the drained prefix occasionally.
        if (t.queueHead > 4096 && t.queueHead * 2 > t.queue.size()) {
            t.queue.erase(t.queue.begin(),
                          t.queue.begin()
                              + static_cast<std::ptrdiff_t>(t.queueHead));
            t.queueHead = 0;
        }
        TenantResult &res = result.tenants[idx];
        res.requestMs.add(sim::ticksToSeconds(eq.now() - arrived) * 1e3);
        ++res.requests;
        sampleQueue(t);

        t.reqSinceGc += 1;
        if (!t.profile->gcs.empty() && t.reqSinceGc >= t.reqPerGc) {
            t.reqSinceGc -= t.reqPerGc;
            triggerGc(idx);
            return; // world stopped; serving resumes after the GC
        }
        tryServe(idx);
    }

    void
    triggerGc(int idx)
    {
        Tenant &t = tenants[idx];
        const GcProfile &gc =
            t.profile->gcs[t.gcIdx % t.profile->gcs.size()];
        ++t.gcIdx;
        t.gcBlocked = true;
        t.gcEnqueued = eq.now();
        GcRequest req;
        req.tenant = idx;
        req.enqueued = eq.now();
        req.deadline = sloTicks == sim::maxTick
                           ? sim::maxTick
                           : eq.now() + sloTicks;
        req.accelTicks = gc.accelTicks;
        req.hostTicks = gc.hostTicks;
        req.unitSec = gc.unitSec;
        req.major = gc.major;
        arbiter.enqueue(req);
        pump();
    }

    void
    pump()
    {
        auto grants = arbiter.dispatch(eq.now());
        sampleArbiter();
        for (const Dispatch &d : grants) {
            int idx = d.req.tenant;
            bool fallback = d.hostFallback;
            sim::Tick dur = fallback ? d.req.hostTicks : d.req.accelTicks;
            eq.scheduleIn(dur, [this, idx, fallback, dur] {
                onGcDone(idx, fallback, dur);
            });
        }
    }

    void
    onGcDone(int idx, bool fallback, sim::Tick duration)
    {
        Tenant &t = tenants[idx];
        TenantResult &res = result.tenants[idx];
        sim::Tick start = eq.now() - duration;
        double pause_ms =
            sim::ticksToSeconds(eq.now() - t.gcEnqueued) * 1e3;
        res.pauseMs.add(pause_ms);
        res.maxPauseMs = std::max(res.maxPauseMs, pause_ms);
        ++res.gcs;
        if (fallback)
            ++res.hostFallbacks;
        if (sloTicks != sim::maxTick
            && eq.now() - t.gcEnqueued > sloTicks) {
            ++res.sloMisses;
        }
        if (t.tl) {
            const GcProfile &gc =
                t.profile->gcs[(t.gcIdx - 1) % t.profile->gcs.size()];
            if (start > t.gcEnqueued) {
                t.tl->completeSpan(t.gcTrack, "wait", t.gcEnqueued,
                                   start);
            }
            t.tl->completeSpan(t.gcTrack,
                               fallback ? "host GC"
                               : gc.major ? "major GC"
                                          : "minor GC",
                               start, eq.now());
        }
        t.gcBlocked = false;
        if (!fallback)
            arbiter.complete();
        tryServe(idx);
        pump(); // a slot may have freed
    }

    void
    scheduleFaults()
    {
        for (const auto &spec : cfg.faults.specs) {
            if (spec.kind != fault::FaultKind::UnitDeath
                && spec.kind != fault::FaultKind::CubeOffline) {
                continue;
            }
            int kill = spec.cube < 0 ? arbiter.capacity() : 1;
            eq.schedule(spec.atTick, [this, kill] {
                arbiter.killSlots(kill);
                slotsKilled += kill;
                if (arbiterTl) {
                    arbiterTl->instant(arbiterTl->track("faults"),
                                       "slot killed", eq.now());
                }
                pump(); // capacity 0 reroutes the queue to the host
            });
        }
    }
};

} // namespace

FleetResult
runFleet(const FleetConfig &cfg,
         const std::vector<TenantProfile> &profiles)
{
    CHARON_ASSERT(cfg.tenants.size() == profiles.size(),
                  "fleet: %zu tenants vs %zu profiles",
                  cfg.tenants.size(), profiles.size());

    int slots = cfg.slots;
    if (slots == 0) {
        // Derive the capacity from the first accelerated tenant's
        // platform; an all-host fleet has nothing to arbitrate.
        sim::SystemConfig sys = sim::SystemConfig::table2();
        for (const auto &spec : cfg.tenants) {
            slots = accel::concurrentOffloadSlots(spec.platform, sys);
            if (slots > 0)
                break;
        }
    }

    Sim sim(cfg, profiles, slots);
    sim.result.tenants.resize(cfg.tenants.size());

    for (std::size_t i = 0; i < cfg.tenants.size(); ++i) {
        const TenantSpec &spec = cfg.tenants[i];
        Sim::Tenant t;
        t.spec = &spec;
        t.profile = &profiles[i];
        // Decorrelated per-tenant streams from the fleet seed.
        t.rng = sim::Rng(cfg.seed * 0x9e3779b97f4a7c15ull + i * 2 + 1);
        ArrivalConfig arrival = cfg.arrival;
        arrival.meanRps = spec.meanRps;
        t.arrivals =
            generateArrivals(arrival, cfg.seed * 2654435761ull + i);
        // Pace the solo profile's collections across the expected
        // steady-state request count (times the consolidation
        // density), so load surges translate into collection surges —
        // the contention the arbiter exists for.
        double expected_requests =
            spec.meanRps * cfg.arrival.horizonSec;
        if (!profiles[i].gcs.empty()) {
            // Cap each tenant's density so its solo collection duty
            // stays under ~30% of the horizon — the upper bound of
            // GC's share of runtime the paper measures (Fig. 2).
            // Batch tenants with heavyweight profiles hit the cap;
            // request servers with millisecond profiles don't.
            double scale = std::max(1.0, cfg.gcRateScale);
            if (profiles[i].soloAccelSec > 0) {
                double cap = 0.3 * cfg.arrival.horizonSec
                             / profiles[i].soloAccelSec;
                scale = std::clamp(cap, 1.0, scale);
            }
            double gcs =
                static_cast<double>(profiles[i].gcs.size()) * scale;
            t.reqPerGc = std::max(1.0, expected_requests / gcs);
        }
        if (cfg.timeline) {
            auto tl = std::make_unique<sim::Timeline>(spec.name);
            t.tl = tl.get();
            t.gcTrack = tl->track("gc");
            t.queueTrack = tl->track("request queue");
            sim.result.timelines.push_back(std::move(tl));
        }
        sim.result.tenants[i].name = spec.name;
        sim.tenants.push_back(std::move(t));
    }
    if (cfg.timeline) {
        auto tl = std::make_unique<sim::Timeline>("arbiter");
        sim.arbiterTl = tl.get();
        sim.arbPendingTrack = tl->track("pending GCs");
        sim.arbBusyTrack = tl->track("busy slots");
        sim.result.timelines.push_back(std::move(tl));
    }

    sim.scheduleFaults();
    for (std::size_t i = 0; i < sim.tenants.size(); ++i)
        sim.scheduleNextArrival(static_cast<int>(i));

    // Run to the drain: arrivals are bounded by the horizon, queues
    // empty deterministically after it.
    sim.eq.run();

    // Fleet-wide distributions: merge in tenant-index order.
    FleetResult &result = sim.result;
    for (const auto &tr : result.tenants) {
        result.pauseMs.merge(tr.pauseMs);
        result.requestMs.merge(tr.requestMs);
        result.requests += tr.requests;
        result.gcs += tr.gcs;
        result.hostFallbacks += tr.hostFallbacks;
        result.sloMisses += tr.sloMisses;
    }
    result.slotsKilled = sim.slotsKilled;
    return std::move(sim.result);
}

std::vector<std::string>
fleetMixNames()
{
    return {"services", "mixed"};
}

std::vector<TenantSpec>
fleetMix(const std::string &name, int tenants)
{
    CHARON_ASSERT(tenants > 0, "fleet mix needs at least one tenant");
    std::vector<TenantSpec> specs;
    specs.reserve(tenants);
    for (int i = 0; i < tenants; ++i) {
        TenantSpec spec;
        if (name == "services") {
            // All latency-sensitive request servers.
            spec.workload = (i % 2 == 0) ? "SRV" : "SES";
            spec.meanRps = (i % 2 == 0) ? 2000 : 1500;
            spec.serviceUs = (i % 2 == 0) ? 50 : 60;
        } else if (name == "mixed") {
            // Services consolidated with batch tenants whose
            // "requests" are task submissions: fewer, heavier.
            switch (i % 4) {
              case 0:
                spec.workload = "SRV";
                spec.meanRps = 2000;
                spec.serviceUs = 50;
                break;
              case 1:
                spec.workload = "BS";
                spec.meanRps = 400;
                spec.serviceUs = 250;
                break;
              case 2:
                spec.workload = "SES";
                spec.meanRps = 1500;
                spec.serviceUs = 60;
                break;
              default:
                spec.workload = "PR";
                spec.meanRps = 400;
                spec.serviceUs = 250;
                break;
            }
        } else {
            sim::fatal("unknown fleet mix '%s' (expected services/mixed)",
                       name.c_str());
        }
        // Tenants sharing a workload mostly share a functional seed
        // (profiles replay once, courtesy of the trace cache); their
        // collections still land at decorrelated instants because the
        // GC trigger rides each tenant's own arrival stream.  Every
        // eighth tenant rotates the seed for demographic variety.
        spec.seed = 1 + static_cast<std::uint64_t>(i) / 8;
        spec.name = "t" + std::to_string(i) + ":" + spec.workload;
        specs.push_back(std::move(spec));
    }
    return specs;
}

} // namespace charon::fleet
