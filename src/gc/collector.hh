/**
 * @file
 * The collection driver: ties the two collectors to HotSpot-like
 * triggering policy.
 *
 * A mutator allocates in Eden until allocation fails, then calls
 * onAllocationFailure().  The driver evaluates the promotion
 * guarantee (a pre-flight space estimate, standing in for HotSpot's
 * adaptive policy): if a scavenge could not be guaranteed to fit its
 * survivors and promotions, a full mark-compact collection runs
 * instead; otherwise a minor collection runs.
 */

#ifndef CHARON_GC_COLLECTOR_HH
#define CHARON_GC_COLLECTOR_HH

#include "gc/collector_iface.hh"
#include "gc/mark_compact.hh"
#include "gc/recorder.hh"
#include "gc/scavenge.hh"
#include "heap/heap.hh"

namespace charon::gc
{

/**
 * Policy + dispatch for one heap (the ParallelScavenge family).
 */
class Collector : public CollectorIface
{
  public:
    Collector(heap::ManagedHeap &heap, TraceRecorder &recorder);

    const char *name() const override { return "ps"; }

    /** PS phases exercise all four classic primitives and maintain
     *  both the card table and the begin/end mark bitmaps. */
    CapabilitySet capabilities() const override;

    mem::Addr allocate(heap::KlassId klass,
                       std::uint64_t array_len = 0) override;

    /** Objects that could never fit in Eden go straight to Old. */
    bool isHumongous(std::uint64_t size_words) const override;

    mem::Addr allocateHumongous(heap::KlassId klass,
                                std::uint64_t array_len = 0) override;

    /**
     * Collect in response to an Eden allocation failure.
     * The failed allocation should be retried afterwards (unless
     * OutOfMemory).
     */
    GcOutcome onAllocationFailure() override;

    /** Force a full collection (System.gc()-style). */
    MarkCompact::Result fullCollect();

    /**
     * Force a minor collection (testing / experiments).  On a
     * promotion failure the driver immediately escalates to a full
     * collection before returning, so the heap is always left in a
     * reclaimed state.
     */
    Scavenge::Result minorCollect();

    std::uint64_t minorCount() const override { return minors_; }
    std::uint64_t majorCount() const override { return majors_; }

    /**
     * HotSpot-style adaptive tenuring (-XX:+UseAdaptiveSizePolicy,
     * simplified): after each scavenge, lower the threshold when the
     * To space overflowed (promote sooner) and raise it when the
     * survivors sit mostly empty (give objects more time to die).
     * Off by default so experiments use the paper's fixed setup.
     */
    void setAdaptiveTenuring(bool enabled) { adaptive_ = enabled; }
    int tenuringThreshold() const { return threshold_; }

  private:
    /** True when the promotion guarantee holds for a scavenge now. */
    bool promotionGuaranteeHolds();

    heap::ManagedHeap &heap_;
    TraceRecorder &rec_;
    bool adaptive_ = false;
    int threshold_ = 0; ///< 0 until first collection (config value)
    std::uint64_t minors_ = 0;
    std::uint64_t majors_ = 0;

    static constexpr int kMaxTenuringThreshold = 15;
};

} // namespace charon::gc

#endif // CHARON_GC_COLLECTOR_HH
