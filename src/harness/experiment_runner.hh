/**
 * @file
 * ExperimentRunner: record once, replay many, in parallel.
 *
 * Takes a declarative list of Cells, executes each distinct
 * functional key exactly once (trace cache first, mutator run on a
 * miss), then replays every cell's platform simulation on an N-thread
 * pool.  Results come back in cell-submission order regardless of
 * completion order, and each replay owns a private PlatformSim, so
 * `--jobs 1` and `--jobs N` produce bit-identical results.
 *
 * Failure model (graceful degradation): a cell whose mutator hits OOM
 * or whose replay throws is marked failed and carries a diagnostic;
 * the other cells keep running.  Benches exclude failed cells from
 * geomeans and report them in the summary.
 */

#ifndef CHARON_HARNESS_EXPERIMENT_RUNNER_HH
#define CHARON_HARNESS_EXPERIMENT_RUNNER_HH

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "harness/cell.hh"
#include "harness/trace_cache.hh"
#include "sim/timeline.hh"

namespace charon::harness
{

/** Pool shape and cache location. */
struct RunnerConfig
{
    /** Worker threads; <= 0 means std::thread::hardware_concurrency. */
    int jobs = 0;
    /** Trace cache directory; empty disables persistent caching. */
    std::string cacheDir;
    /**
     * Collect a per-cell timeline during replays (--trace-out).  When
     * false (the default) no Timeline object is ever constructed and
     * the replay path is byte-for-byte the untraced one.
     */
    bool timeline = false;
    /**
     * Crash isolation (--cell-timeout): when > 0, every cell runs
     * end-to-end in its own forked child process with this wall-clock
     * deadline in seconds.  A cell that hangs is SIGKILLed at the
     * deadline; a cell that crashes (signal, abort, sanitizer trap)
     * takes only itself down.  Parallelism comes from up to `jobs`
     * concurrent children, so the parent stays single-threaded and
     * fork-safe.  Timelines are not collected in this mode.
     */
    double cellTimeoutSec = 0;
    /**
     * Extra attempts for a crashed or hung cell before it is
     * quarantined (isolated mode only).  Retries back off
     * exponentially; a quarantined cell fails with a diagnostic
     * naming the last failure while the remaining cells complete.
     */
    int cellRetries = 0;
};

/** Run @p fn(0..count-1) on up to @p jobs threads (inline when 1). */
void parallelFor(int jobs, std::size_t count,
                 const std::function<void(std::size_t)> &fn);

class ExperimentRunner
{
  public:
    explicit ExperimentRunner(RunnerConfig cfg = {});

    /** Execute every cell; results align index-for-index with cells. */
    std::vector<CellResult> run(const std::vector<Cell> &cells);

    /**
     * The functional run for @p key: in-memory memo, then trace
     * cache, then a mutator run (which populates both).  Never
     * returns null; an OOM run is a valid (partial) result with
     * run->oom set.
     */
    std::shared_ptr<const FunctionalRun> functional(FunctionalKey key);

    /** Execute the mutator for @p key (no caching; key pre-resolved). */
    static FunctionalRun executeFunctional(const FunctionalKey &key);

    /** Resolve heapBytes == 0 to the catalog default (fatal on an
     *  unknown workload — call on the main thread). */
    static FunctionalKey resolve(FunctionalKey key);

    const TraceCache &cache() const { return cache_; }
    int jobs() const { return jobs_; }

    /**
     * Liveness hook: called after every unit of runner progress — a
     * functional key recorded, a cell replayed, an isolated child
     * reaped.  The sweep supervisor's workers use it to tick their
     * heartbeat pipe, so a slow cell still counts as progress.  May
     * be invoked concurrently from pool threads; keep it
     * async-friendly (a 1-byte write(2) qualifies).
     */
    void setProgressHook(std::function<void()> hook)
    {
        onProgress_ = std::move(hook);
    }

    /**
     * Per-cell timelines collected so far, in cell-submission order
     * across every run() call (empty unless RunnerConfig::timeline).
     * Failed or replay-less cells leave a null entry so indices still
     * line up with the submitted cells.
     */
    const std::vector<std::unique_ptr<sim::Timeline>> &
    timelines() const
    {
        return timelines_;
    }

    /**
     * Write every collected timeline as one Chrome/Perfetto JSON
     * trace (one process per cell).  The merge order is the cell
     * submission order, so the bytes are independent of --jobs.
     * @retval false the file could not be written (@p error says why)
     */
    bool writeTimeline(const std::string &path,
                       std::string *error = nullptr) const;

  private:
    /** Crash-isolated execution (RunnerConfig::cellTimeoutSec > 0). */
    std::vector<CellResult> runIsolated(const std::vector<Cell> &cells);

    /** Replay one cell's platform simulation into @p res. */
    void replay(const Cell &cell, CellResult &res,
                sim::Timeline *tl) const;

    int jobs_;
    bool timeline_;
    double cellTimeoutSec_;
    int cellRetries_;
    std::function<void()> onProgress_;
    TraceCache cache_;
    std::mutex memoMutex_;
    std::map<std::string, std::shared_ptr<const FunctionalRun>> memo_;
    std::vector<std::unique_ptr<sim::Timeline>> timelines_;
};

} // namespace charon::harness

#endif // CHARON_HARNESS_EXPERIMENT_RUNNER_HH
