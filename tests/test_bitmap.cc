/**
 * @file
 * Tests for the begin/end mark bitmaps and the reference
 * live_words_in_range implementation (Figure 8 of the paper).
 */

#include <gtest/gtest.h>

#include <vector>

#include "heap/bitmap.hh"
#include "sim/rng.hh"

using namespace charon;
using heap::liveWordsInRange;
using heap::MarkBitmap;

namespace
{
constexpr mem::Addr kBase = 0x10000;
constexpr std::uint64_t kBytes = 64 * 1024;
} // namespace

TEST(MarkBitmap, SetTestClear)
{
    MarkBitmap map(kBase, kBytes, 0x1000000);
    EXPECT_FALSE(map.test(kBase));
    map.set(kBase);
    EXPECT_TRUE(map.test(kBase));
    map.clear(kBase);
    EXPECT_FALSE(map.test(kBase));
}

TEST(MarkBitmap, OneBitPerWord)
{
    MarkBitmap map(kBase, kBytes, 0);
    EXPECT_EQ(map.numBits(), kBytes / 8);
    map.set(kBase + 8);
    EXPECT_FALSE(map.test(kBase));
    EXPECT_TRUE(map.test(kBase + 8));
    EXPECT_FALSE(map.test(kBase + 16));
}

TEST(MarkBitmap, StorageIsBitPer8Bytes)
{
    MarkBitmap map(kBase, kBytes, 0);
    EXPECT_EQ(map.storageBytes(), kBytes / 64);
}

TEST(MarkBitmap, StorageAddrOfBit)
{
    MarkBitmap map(kBase, kBytes, 0x2000);
    EXPECT_EQ(map.storageAddrOfBit(0), 0x2000u);
    EXPECT_EQ(map.storageAddrOfBit(7), 0x2000u);
    EXPECT_EQ(map.storageAddrOfBit(8), 0x2001u);
    EXPECT_EQ(map.storageAddrOfBit(64), 0x2008u);
}

TEST(MarkBitmap, FindNextSet)
{
    MarkBitmap map(kBase, kBytes, 0);
    map.setBit(100);
    map.setBit(200);
    EXPECT_EQ(map.findNextSet(0, 1000), 100u);
    EXPECT_EQ(map.findNextSet(100, 1000), 100u);
    EXPECT_EQ(map.findNextSet(101, 1000), 200u);
    EXPECT_EQ(map.findNextSet(201, 1000), 1000u);
}

TEST(MarkBitmap, FindNextSetAcrossWordBoundary)
{
    MarkBitmap map(kBase, kBytes, 0);
    map.setBit(63);
    map.setBit(64);
    map.setBit(129);
    EXPECT_EQ(map.findNextSet(0, 256), 63u);
    EXPECT_EQ(map.findNextSet(64, 256), 64u);
    EXPECT_EQ(map.findNextSet(65, 256), 129u);
}

TEST(MarkBitmap, FindNextSetRespectsLimit)
{
    MarkBitmap map(kBase, kBytes, 0);
    map.setBit(500);
    EXPECT_EQ(map.findNextSet(0, 400), 400u);
    EXPECT_EQ(map.findNextSet(0, 500), 500u); // limit exclusive
    EXPECT_EQ(map.findNextSet(0, 501), 500u);
}

TEST(MarkBitmap, CountSetInRange)
{
    MarkBitmap map(kBase, kBytes, 0);
    for (std::uint64_t b = 10; b < 200; b += 10)
        map.setBit(b);
    EXPECT_EQ(map.countSet(0, 1000), 19u);
    EXPECT_EQ(map.countSet(10, 11), 1u);
    EXPECT_EQ(map.countSet(11, 20), 0u);
    EXPECT_EQ(map.countSet(0, 100), 9u); // bits 10..90
}

TEST(MarkBitmap, CountSetEmptyRange)
{
    MarkBitmap map(kBase, kBytes, 0);
    map.setBit(5);
    EXPECT_EQ(map.countSet(5, 5), 0u);
}

TEST(MarkBitmap, ClearAllResets)
{
    MarkBitmap map(kBase, kBytes, 0);
    for (std::uint64_t b = 0; b < 100; ++b)
        map.setBit(b);
    map.clearAll();
    EXPECT_EQ(map.countSet(0, map.numBits()), 0u);
}

// ---------------------------------------------------------------------
// liveWordsInRange (Figure 8 reference implementation)

namespace
{

/** Paint an object of @p words starting at bit @p beg_bit. */
void
paint(MarkBitmap &beg, MarkBitmap &end, std::uint64_t beg_bit,
      std::uint64_t words)
{
    beg.setBit(beg_bit);
    end.setBit(beg_bit + words - 1);
}

} // namespace

TEST(LiveWords, SingleObjectFullyInRange)
{
    MarkBitmap beg(kBase, kBytes, 0), end(kBase, kBytes, 0);
    paint(beg, end, 10, 5); // bits 10..14
    EXPECT_EQ(liveWordsInRange(beg, end, 0, 100), 5u);
}

TEST(LiveWords, OneWordObject)
{
    MarkBitmap beg(kBase, kBytes, 0), end(kBase, kBytes, 0);
    paint(beg, end, 42, 1); // beg bit == end bit
    EXPECT_EQ(liveWordsInRange(beg, end, 0, 100), 1u);
}

TEST(LiveWords, MultipleObjectsSum)
{
    MarkBitmap beg(kBase, kBytes, 0), end(kBase, kBytes, 0);
    paint(beg, end, 0, 3);
    paint(beg, end, 10, 7);
    paint(beg, end, 50, 1);
    EXPECT_EQ(liveWordsInRange(beg, end, 0, 100), 11u);
}

TEST(LiveWords, EmptyBitmapIsZero)
{
    MarkBitmap beg(kBase, kBytes, 0), end(kBase, kBytes, 0);
    EXPECT_EQ(liveWordsInRange(beg, end, 0, 1000), 0u);
}

TEST(LiveWords, ObjectBeforeRangeIgnored)
{
    MarkBitmap beg(kBase, kBytes, 0), end(kBase, kBytes, 0);
    paint(beg, end, 10, 5);
    EXPECT_EQ(liveWordsInRange(beg, end, 20, 100), 0u);
}

TEST(LiveWords, ObjectAfterRangeIgnored)
{
    MarkBitmap beg(kBase, kBytes, 0), end(kBase, kBytes, 0);
    paint(beg, end, 200, 5);
    EXPECT_EQ(liveWordsInRange(beg, end, 0, 100), 0u);
}

TEST(LiveWords, StraddlingObjectContributesNothing)
{
    // Figure 8 semantics: the end-bit search stops at the range end.
    MarkBitmap beg(kBase, kBytes, 0), end(kBase, kBytes, 0);
    paint(beg, end, 90, 20); // bits 90..109, range ends at 100
    EXPECT_EQ(liveWordsInRange(beg, end, 0, 100), 0u);
}

TEST(LiveWords, LeadingEndBitIgnored)
{
    // Range starts mid-object: the dangling end bit is never examined.
    MarkBitmap beg(kBase, kBytes, 0), end(kBase, kBytes, 0);
    paint(beg, end, 10, 10); // bits 10..19
    paint(beg, end, 30, 5);  // bits 30..34
    EXPECT_EQ(liveWordsInRange(beg, end, 15, 100), 5u);
}

TEST(LiveWords, RangeExactlyOneObject)
{
    MarkBitmap beg(kBase, kBytes, 0), end(kBase, kBytes, 0);
    paint(beg, end, 10, 5);
    EXPECT_EQ(liveWordsInRange(beg, end, 10, 15), 5u);
}

TEST(LiveWords, BackToBackObjects)
{
    MarkBitmap beg(kBase, kBytes, 0), end(kBase, kBytes, 0);
    paint(beg, end, 0, 4);
    paint(beg, end, 4, 4);
    paint(beg, end, 8, 4);
    EXPECT_EQ(liveWordsInRange(beg, end, 0, 12), 12u);
    EXPECT_EQ(liveWordsInRange(beg, end, 4, 12), 8u);
}

TEST(LiveWords, ReportsBitmapReads)
{
    MarkBitmap beg(kBase, kBytes, 0x100000),
        end(kBase, kBytes, 0x200000);
    paint(beg, end, 0, 64);
    std::vector<mem::Addr> reads;
    liveWordsInRange(beg, end, 0, 64,
                     [&](mem::Addr a) { reads.push_back(a); });
    EXPECT_FALSE(reads.empty());
    // Reads must hit both maps' storage ranges.
    bool saw_beg = false, saw_end = false;
    for (auto a : reads) {
        saw_beg |= (a >= 0x100000 && a < 0x200000);
        saw_end |= (a >= 0x200000);
    }
    EXPECT_TRUE(saw_beg);
    EXPECT_TRUE(saw_end);
}

/**
 * Property test: for randomly packed objects and random in-bounds
 * ranges aligned to object boundaries, liveWordsInRange equals the
 * straightforward per-object sum.
 */
TEST(LiveWords, PropertyMatchesPerObjectSum)
{
    sim::Rng rng(99);
    for (int round = 0; round < 50; ++round) {
        MarkBitmap beg(kBase, kBytes, 0), end(kBase, kBytes, 0);
        struct Obj { std::uint64_t bit, words; };
        std::vector<Obj> objs;
        std::uint64_t bit = 0;
        while (bit + 64 < 4096) {
            std::uint64_t words = rng.range(1, 32);
            if (rng.chance(0.7)) {
                paint(beg, end, bit, words);
                objs.push_back({bit, words});
            }
            bit += words + rng.below(8);
        }
        // Pick a range aligned to object starts (as in compaction).
        if (objs.size() < 2)
            continue;
        std::size_t lo = rng.below(objs.size() - 1);
        std::size_t hi = lo + 1 + rng.below(objs.size() - lo - 1);
        std::uint64_t start_bit = objs[lo].bit;
        std::uint64_t end_bit = objs[hi].bit + objs[hi].words;
        std::uint64_t expected = 0;
        for (std::size_t i = lo; i <= hi; ++i)
            expected += objs[i].words;
        EXPECT_EQ(liveWordsInRange(beg, end, start_bit, end_bit),
                  expected)
            << "round " << round;
    }
}
