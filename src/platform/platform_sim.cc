#include "platform_sim.hh"

#include <memory>

#include "sim/logging.hh"

namespace charon::platform
{

using gc::PrimKind;
using sim::PlatformKind;
using sim::Tick;

double &
PrimBreakdown::byKind(PrimKind kind)
{
    switch (kind) {
      case PrimKind::Copy:        return copy;
      case PrimKind::Search:      return search;
      case PrimKind::ScanPush:    return scanPush;
      case PrimKind::BitmapCount: return bitmapCount;
      case PrimKind::BitSweep:    return bitSweep;
      case PrimKind::RefCount:    return refCount;
    }
    sim::panic("bad primitive kind");
}

PlatformSim::PlatformSim(PlatformKind kind, const sim::SystemConfig &cfg,
                         int cube_shift,
                         const sim::Instrumentation &instr,
                         const fault::FaultPlan &faults)
    : kind_(kind),
      cfg_(cfg),
      cubeShift_(cube_shift),
      timeline_(instr.timeline()),
      gcTrack_(instr.track("gc"))
{
    // An engine only exists when the plan has timing-layer specs, so
    // fault-free replays keep the exact pre-fault code paths.
    if (faults.hasTimingFaults()) {
        fault_ = std::make_unique<fault::FaultEngine>(faults,
                                                      cfg_.hmc.cubes);
    }
    // Components are built memory system first, then the device, then
    // the host — also the order their instrumentation tracks appear
    // in exported traces.
    if (usesHmc()) {
        hmc_ = std::make_unique<hmc::HmcMemory>(eq_, cfg_.hmc, instr);
        hmc_->setCubeShift(cube_shift);
        if (fault_) {
            hmc::HmcMemory *hmc = hmc_.get();
            fault::FaultEngine::Hooks hooks;
            hooks.degradeLink = [hmc](int link, double factor) {
                hmc->degradeLink(link, factor);
            };
            hooks.degradeCube = [hmc](int cube, double factor) {
                hmc->degradeCube(cube, factor);
            };
            fault_->setHooks(std::move(hooks));
        }
    } else {
        ddr4_ = std::make_unique<mem::Ddr4Memory>(eq_, cfg_.ddr4, instr);
    }
    backend_ = accel::makeBackend(kind_, eq_, hmc_.get(), ddr4_.get(),
                                  cfg_, instr);
    if (backend_)
        backend_->setFaultEngine(fault_.get());
    // The backend may substitute the host attachment (a CXL expander
    // puts the host across its link); otherwise the platform default.
    mem::MemPort *port = backend_ ? backend_->hostPort() : nullptr;
    if (!port) {
        port = usesHmc() ? static_cast<mem::MemPort *>(&hmc_->hostPort())
                         : ddr4_.get();
    }
    host_ = std::make_unique<cpu::HostModel>(eq_, cfg_.host, *port,
                                             costs_, instr);
    if (timeline_) {
        for (int k = 0; k < gc::kNumPrimKinds; ++k)
            primNames_[k] = timeline_->intern(
                gc::primKindName(static_cast<PrimKind>(k)));
        glueName_ = timeline_->intern("glue");
    }
}

PlatformSim::~PlatformSim() = default;

sim::Timeline::TrackId
PlatformSim::threadTrack(std::size_t thread)
{
    while (threadTracks_.size() <= thread) {
        threadTracks_.push_back(timeline_->track(
            "thread " + std::to_string(threadTracks_.size())));
    }
    return threadTracks_[thread];
}

bool
PlatformSim::usesHmc() const
{
    // Only the DDR4 baseline keeps conventional DIMMs; the Ideal
    // platform is "host paired with a zero-cycle offload device",
    // evaluated on the same HMC memory as Charon.  The iGPU and CXL
    // backends are DDR4-backed: the iGPU shares the host controller,
    // and the CXL expander's media is commodity DRAM behind a link.
    return kind_ != PlatformKind::HostDdr4
           && kind_ != PlatformKind::IgpuOffload
           && kind_ != PlatformKind::CxlMsa;
}

/**
 * One event-driven GC thread: glue first, then each bucket in trace
 * order.  Agents live in a vector owned by runPhase; every closure
 * scheduled during the phase captures only the agent pointer, which
 * stays valid because eq_.run() drains before runPhase returns.
 */
struct PlatformSim::ThreadAgent
{
    PlatformSim *sim = nullptr;
    const gc::PhaseTrace *phase = nullptr;
    gc::ThreadSpan span;
    PrimBreakdown *breakdown = nullptr;
    std::size_t next = 0;
    double hitRate = 0;
    sim::Timeline::TrackId ttrack = 0;
    /**
     * The in-flight bucket, materialized from the phase's columns
     * into agent-owned storage (the device/host models read it only
     * during the synchronous execBucket call, but the agent keeps it
     * alive for the whole bucket anyway).
     */
    gc::Bucket cur;
    Tick bucketStart = 0;
    /**
     * Fault-fallback epoch: bumped when a unit-death watchdog orphans
     * the in-flight offload so the device's (still draining) flows
     * complete into a no-op and the host re-execution owns the
     * bucket.  Without a fault plan it never changes.
     */
    std::uint64_t epoch = 0;
    sim::EventId watchdog = 0;

    void
    finish(Tick t)
    {
        breakdown->byKind(cur.kind) +=
            sim::ticksToSeconds(t - bucketStart);
        if (sim->timeline_) {
            sim->timeline_->completeSpan(
                ttrack, sim->primNames_[static_cast<int>(cur.kind)],
                bucketStart, t);
        }
        step();
    }

    /** Execute the current bucket on the host path (fallback route). */
    void
    hostDispatch()
    {
        PlatformSim &ps = *sim;
        const mem::Addr synth_addr =
            static_cast<mem::Addr>(cur.srcCube) << ps.cubeShift_;
        const std::uint64_t my_epoch = epoch;
        ps.host_->execBucket(cur, synth_addr, [this, my_epoch](Tick t) {
            if (epoch != my_epoch)
                return;
            finish(t);
        });
    }

    /** Issue the current bucket to the device, fault-aware. */
    void
    deviceDispatch()
    {
        PlatformSim &ps = *sim;
        fault::FaultEngine *fe = ps.fault_.get();
        if (fe && fe->unitsDead(cur.srcCube, ps.eq_.now())) {
            // Degraded mode: the target units are dead; take the
            // host route new sub-threshold buckets already use.
            fe->noteFallback();
            hostDispatch();
            return;
        }
        if (fe) {
            // A death is pending: arm a watchdog that orphans the
            // in-flight offload at the death tick and re-dispatches
            // the bucket to the host.  Descheduled on normal
            // completion so it never stretches the phase barrier.
            Tick death = fe->deathTick(cur.srcCube);
            if (death != fault::FaultEngine::kNoTick
                && death > ps.eq_.now()) {
                const std::uint64_t my_epoch = epoch;
                watchdog =
                    ps.eq_.schedule(death, [this, my_epoch] {
                        if (epoch != my_epoch)
                            return;
                        ++epoch;
                        watchdog = 0;
                        sim->fault_->noteFallback();
                        hostDispatch();
                    });
            }
        }
        const std::uint64_t my_epoch = epoch;
        ps.backend_->execBucket(cur, hitRate,
                                [this, my_epoch](Tick t) {
                                   if (epoch != my_epoch)
                                       return;
                                   if (watchdog) {
                                       sim->eq_.deschedule(watchdog);
                                       watchdog = 0;
                                   }
                                   finish(t);
                               });
    }

    void
    step()
    {
        if (next >= span.bucketCount)
            return; // thread done
        cur = phase->buckets.get(span.firstBucket + next++);
        PlatformSim &ps = *sim;
        bucketStart = ps.eq_.now();

        const bool offload = ps.backend_ && !cur.hostOnly
                             && ps.backend_->supports(cur.kind);
        const bool ideal =
            ps.kind_ == PlatformKind::Ideal && !cur.hostOnly;
        if (ideal) {
            // Zero-cycle offload: the primitive is free.
            ps.eq_.schedule(ps.eq_.now(), [this] {
                finish(sim->eq_.now());
            });
        } else if (offload) {
            // The host packs and issues one offload call per
            // invocation before blocking on the device.
            Tick issue = ps.host_->glueTicks(cur.invocations
                                             * ps.costs_.offloadIssue);
            if (ps.fault_) {
                issue += ps.fault_->stallTicks(cur.srcCube,
                                               ps.eq_.now());
            }
            ps.eq_.scheduleIn(issue, [this] { deviceDispatch(); });
        } else {
            hostDispatch();
        }
    }
};

void
PlatformSim::runPhaseScalar(const gc::PhaseTrace &phase,
                            PrimBreakdown &breakdown)
{
    const Tick phase_start = eq_.now();
    std::vector<ThreadAgent> agents(phase.threads.size());

    for (std::size_t ti = 0; ti < phase.threads.size(); ++ti) {
        const auto &span = phase.threads[ti];
        ThreadAgent &agent = agents[ti];
        agent.sim = this;
        agent.phase = &phase;
        agent.span = span;
        agent.breakdown = &breakdown;
        agent.hitRate = phase.bitmapCacheHitRate;
        agent.ttrack = timeline_ ? threadTrack(ti) : 0;

        // Kick off with the glue lump.
        Tick glue = host_->glueTicks(span.glueInstructions);
        glueSecondsTotal_ += sim::ticksToSeconds(glue);
        if (timeline_ && glue > 0)
            timeline_->completeSpan(agent.ttrack, glueName_, phase_start,
                                    phase_start + glue);
        eq_.scheduleIn(glue, [agentp = &agent, glue] {
            agentp->breakdown->glue += sim::ticksToSeconds(glue);
            agentp->step();
        });
    }

    eq_.run(); // phase barrier: drain every thread and flow
}

PrimBreakdown
PlatformSim::runPhase(const gc::PhaseTrace &phase,
                      gc::PhaseRollup &rollup)
{
    const Tick phase_start = eq_.now();
    if (fault_) {
        // Bandwidth faults (link/TSV/cube-offline) take effect at
        // phase boundaries: applying them here keeps the engine from
        // scheduling standing events that would stretch the phase
        // barrier (eq_.run() drains until empty).
        fault_->applyPendingDegrades(phase_start);
    }
    PrimBreakdown breakdown;
    if (mode_ == ReplayMode::Auto && phaseBatchable(phase))
        runPhaseBatched(phase, breakdown);
    else
        runPhaseScalar(phase, breakdown);

    // Fill the roll-up from the very same doubles the breakdown
    // accumulated (so rollup totals match PrimBreakdown exactly),
    // joined with the functional trace's byte/invocation counts.
    rollup.kind = phase.kind;
    rollup.wallSeconds = sim::ticksToSeconds(eq_.now() - phase_start);
    rollup.glueSeconds = breakdown.glue;
    // One columnar pass yields every kind's byte/invocation totals.
    const auto totals = phase.primTotals();
    for (int k = 0; k < gc::kNumPrimKinds; ++k) {
        auto kind = static_cast<PrimKind>(k);
        rollup.prims[k].seconds = breakdown.byKind(kind);
        rollup.prims[k].bytes = totals.bytes[k];
        rollup.prims[k].invocations = totals.invocations[k];
    }
    return breakdown;
}

GcTiming
PlatformSim::simulateGc(const gc::GcTrace &trace)
{
    GcTiming timing;
    timing.major = trace.major;
    Tick start = eq_.now();

    if (backend_ && trace.capabilityMask != 0) {
        // Backend prologue at GC start (cache flush, kernel warmup,
        // coherence handoff).  A collector with an empty capability
        // set never dispatches to the device, so it skips the
        // prologue and the whole replay stays on the host path.
        eq_.scheduleIn(backend_->gcPrologueTicks(), [] {});
        eq_.run();
    }
    timing.rollup.major = trace.major;
    timing.rollup.phases.reserve(trace.phases.size());
    for (const auto &phase : trace.phases) {
        Tick phase_start = eq_.now();
        gc::PhaseRollup rollup;
        timing.breakdown += runPhase(phase, rollup);
        timing.rollup.phases.push_back(rollup);
        if (timeline_) {
            timeline_->completeSpan(gcTrack_,
                                    gc::phaseKindName(phase.kind),
                                    phase_start, eq_.now());
        }
    }
    timing.seconds = sim::ticksToSeconds(eq_.now() - start);
    if (timeline_) {
        timeline_->completeSpan(gcTrack_,
                                trace.major ? "major GC" : "minor GC",
                                start, eq_.now());
    }
    return timing;
}

void
PlatformSim::dumpStats(std::ostream &os) const
{
    if (hmc_)
        hmc_->dumpStats(os);
    else
        ddr4_->dumpStats(os);
}

RunTiming
PlatformSim::simulate(const gc::RunTrace &trace)
{
    RunTiming result;
    result.platform = kind_;
    glueSecondsTotal_ = 0;

    for (const auto &gc : trace.gcs) {
        double unit_before = backend_ ? backend_->unitBusySeconds() : 0;
        GcTiming timing = simulateGc(gc);
        if (backend_)
            timing.unitSeconds =
                backend_->unitBusySeconds() - unit_before;
        result.gcs.push_back(timing);
        result.gcSeconds += timing.seconds;
        if (timing.major) {
            result.majorSeconds += timing.seconds;
            result.majorBreakdown += timing.breakdown;
        } else {
            result.minorSeconds += timing.seconds;
            result.minorBreakdown += timing.breakdown;
        }
    }

    // Mutator time: application instructions across all cores at the
    // configured mutator IPC.
    std::uint64_t mutator_instr = 0;
    for (auto n : trace.mutatorInstructions)
        mutator_instr += n;
    result.mutatorSeconds =
        static_cast<double>(mutator_instr)
        / (cfg_.host.mutatorIpc * cfg_.host.freqHz * cfg_.host.numCores);

    // Memory observations.
    double bytes = usesHmc() ? hmc_->totalBytes() : ddr4_->totalBytes();
    result.dramBytes = bytes;
    if (result.gcSeconds > 0)
        result.avgGcBandwidthGBs = bytes / 1e9 / result.gcSeconds;
    if (usesHmc() && bytes > 0)
        result.localAccessFraction = hmc_->localBytes() / bytes;

    // Energy over the GC intervals.
    double dram_pj =
        usesHmc() ? hmc_->energyPj() : ddr4_->energyPj();
    result.dramEnergyJ = dram_pj * 1e-12;

    // GC threads that offload spin-wait on the response (Section 4.1:
    // "the host thread remains blocked"), so the cores draw active
    // power on every platform; the savings come from shorter pauses
    // and the lower pJ/bit of stacked DRAM.
    const auto &h = cfg_.host;
    result.hostEnergyJ =
        (h.numCores * h.coreActivePowerW + h.uncorePowerW)
        * result.gcSeconds;
    if (backend_)
        result.unitEnergyJ = backend_->unitEnergyJ(result.gcSeconds);
    return result;
}

} // namespace charon::platform
