/**
 * @file
 * The synthetic mutator: drives a ManagedHeap through a workload's
 * allocation pattern, triggering collections on Eden exhaustion, and
 * leaves the resulting primitive trace in a TraceRecorder.
 *
 * The mutator is the functional stand-in for running Spark/GraphChi
 * on a JVM: object *demography* (sizes, lifetimes, reference density)
 * follows the WorkloadParams, while the GC activity it provokes is
 * completely real.
 */

#ifndef CHARON_WORKLOAD_MUTATOR_HH
#define CHARON_WORKLOAD_MUTATOR_HH

#include <deque>
#include <memory>
#include <vector>

#include "gc/collector.hh"
#include "gc/recorder.hh"
#include "heap/heap.hh"
#include "sim/rng.hh"
#include "workload/catalog.hh"

namespace charon::workload
{

/**
 * Address-to-cube shift such that a VA span of @p va_limit bytes is
 * spread over @p cubes cubes, mirroring the paper's interleaving of
 * 1 GiB huge pages via numa_alloc_onnode (Section 4.6).
 */
int chooseCubeShift(mem::Addr va_limit, int cubes = 4);

/**
 * Binary-search the smallest heap (in whole MiB) at which the
 * workload completes without OOM — the paper's "minimum heap size"
 * (Section 3.1), used as the Figure 2 baseline.
 */
std::uint64_t findMinimumHeapBytes(const WorkloadParams &params,
                                   std::uint64_t seed = 1);

/**
 * One application run.
 */
class Mutator
{
  public:
    struct RunResult
    {
        bool oom = false;
        std::uint64_t minorGcs = 0;
        std::uint64_t majorGcs = 0;
        std::uint64_t allocatedBytes = 0;
        std::uint64_t mutatorInstructions = 0;
    };

    /**
     * @param params workload demography
     * @param heap_bytes max heap (overrides params.heapBytes)
     * @param seed workload RNG seed
     * @param gc_threads GC threads the trace is striped over
     * @param num_cubes HMC cubes the heap is interleaved across
     * @param model collector family managing the heap
     */
    Mutator(const WorkloadParams &params, std::uint64_t heap_bytes,
            std::uint64_t seed = 1, int gc_threads = 8,
            int num_cubes = 4,
            gc::CollectorModel model =
                gc::CollectorModel::ParallelScavenge);

    /** Run the application to completion (or OOM). */
    RunResult run();

    gc::CollectorIface &collector() { return *collector_; }
    gc::TraceRecorder &recorder() { return *rec_; }
    heap::ManagedHeap &heap() { return *heap_; }
    int cubeShift() const { return cubeShift_; }
    const WorkloadParams &params() const { return params_; }

  private:
    using RootSlot = std::size_t;

    /**
     * Allocate with GC-on-failure (and the humongous direct-to-old
     * path for objects larger than Eden).  Returns 0 on OOM.
     */
    mem::Addr allocate(heap::KlassId klass, std::uint64_t array_len = 0);

    RootSlot addRoot(mem::Addr obj);
    void removeRoot(RootSlot slot);
    mem::Addr rootAt(RootSlot slot) const;

    /** Keep @p obj alive briefly via the circular temp-root buffer. */
    void holdTemp(mem::Addr obj);

    /**
     * Keep a *large* temporary (partition buffer, factor matrix)
     * alive only while it is plausibly in flight: a tiny ring, so at
     * most a few such buffers survive into any collection.
     */
    void holdBigTemp(mem::Addr obj);

    void buildGraph();
    void runIteration(int iteration);
    void serveRequests();
    void allocSmallTemps();
    mem::Addr randomGraphNode();

    WorkloadParams params_;
    MutatorKlasses klasses_;
    heap::HeapConfig heapCfg_;
    std::unique_ptr<heap::ManagedHeap> heap_;
    std::unique_ptr<gc::TraceRecorder> rec_;
    std::unique_ptr<gc::CollectorIface> collector_;
    sim::Rng rng_;
    int cubeShift_ = 30;

    bool oom_ = false;
    RunResult result_;

    std::vector<RootSlot> freeSlots_;
    RootSlot registrySlot_ = 0;   ///< objArray holding the graph nodes
    RootSlot matrixSlot_ = 0;     ///< ALS matrix
    RootSlot factorSlot_ = 0;     ///< ALS factor of the last iteration
    bool factorSlotValid_ = false;
    std::deque<RootSlot> cache_;  ///< retained RDD partitions (FIFO)
    std::deque<RootSlot> sessions_; ///< service session cache (FIFO)
    std::vector<RootSlot> tempRing_;
    std::size_t tempCursor_ = 0;
    std::vector<RootSlot> bigTempRing_;
    std::size_t bigTempCursor_ = 0;
    std::vector<RootSlot> shardRing_; ///< per-iteration shard buffers

    static constexpr std::size_t kBigTempRingSize = 4;
};

} // namespace charon::workload

#endif // CHARON_WORKLOAD_MUTATOR_HH
