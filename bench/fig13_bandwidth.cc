/**
 * @file
 * Figure 13: memory bandwidth utilized during GC on each platform,
 * and the fraction of Charon's accesses serviced by the local cube.
 *
 * Paper shape: the host platforms are capped by off-chip bandwidth
 * (34 GB/s DDR4 / 80 GB/s HMC links); Charon exploits the internal
 * TSV bandwidth well beyond that; over 70% of its requests are
 * local for most workloads, with LR and CC closer to half.
 */

#include "bench_common.hh"

using namespace charon;
using namespace charon::bench;

int
main()
{
    report::heading(std::cout,
                    "Figure 13: bandwidth utilized during GC and "
                    "Charon's local-access ratio");

    report::Table table({"workload", "DDR4 GB/s", "HMC GB/s",
                         "Charon GB/s", "local", "remote"});
    for (const auto &name : allWorkloads()) {
        auto run = runWorkload(name);
        auto ddr4 = replay(run, sim::PlatformKind::HostDdr4);
        auto hmc = replay(run, sim::PlatformKind::HostHmc);
        auto charon = replay(run, sim::PlatformKind::CharonNmp);
        table.addRow(
            {name, report::num(ddr4.avgGcBandwidthGBs, 1),
             report::num(hmc.avgGcBandwidthGBs, 1),
             report::num(charon.avgGcBandwidthGBs, 1),
             report::num(100 * charon.localAccessFraction, 0) + "%",
             report::num(100 * (1 - charon.localAccessFraction), 0)
                 + "%"});
    }
    table.print(std::cout);
    std::cout << "\noff-chip limits: DDR4 34 GB/s, HMC links 80 GB/s; "
                 "Charon internal peak 4 x 320 GB/s\n"
              << "paper: >70% local for most workloads; LR and CC "
                 "closer to ~50%\n";
    return 0;
}
