#include "arbiter.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace charon::fleet
{

const char *
arbPolicyName(ArbPolicy policy)
{
    switch (policy) {
      case ArbPolicy::Fcfs:
        return "fcfs";
      case ArbPolicy::FairShare:
        return "fair";
      case ArbPolicy::DeadlineAware:
        return "deadline";
    }
    return "?";
}

bool
parseArbPolicy(const std::string &name, ArbPolicy &out)
{
    for (int i = 0; i < kNumArbPolicies; ++i) {
        auto policy = static_cast<ArbPolicy>(i);
        if (name == arbPolicyName(policy)) {
            out = policy;
            return true;
        }
    }
    return false;
}

Arbiter::Arbiter(ArbPolicy policy, int slots)
    : policy_(policy), capacity_(slots)
{
    CHARON_ASSERT(slots >= 0, "negative arbiter capacity");
}

void
Arbiter::killSlots(int n)
{
    capacity_ = std::max(0, capacity_ - n);
    // In-flight collections finish on already-granted slots; busy_
    // may exceed capacity_ until they complete, after which grants
    // respect the reduced capacity.
}

void
Arbiter::enqueue(GcRequest req)
{
    req.seq = nextSeq_++;
    if (static_cast<std::size_t>(req.tenant) >= tenantUnitSec_.size())
        tenantUnitSec_.resize(req.tenant + 1, 0.0);
    pending_.push_back(req);
}

bool
Arbiter::ranksBefore(const GcRequest &a, const GcRequest &b) const
{
    switch (policy_) {
      case ArbPolicy::Fcfs:
        break;
      case ArbPolicy::FairShare: {
        double ua = tenantUnitSec_[a.tenant];
        double ub = tenantUnitSec_[b.tenant];
        if (ua != ub)
            return ua < ub;
        break;
      }
      case ArbPolicy::DeadlineAware:
        if (a.deadline != b.deadline)
            return a.deadline < b.deadline;
        break;
    }
    return a.seq < b.seq; // admission order: the universal tie-break
}

std::vector<Dispatch>
Arbiter::dispatch(sim::Tick now)
{
    std::vector<Dispatch> out;
    if (pending_.empty())
        return out;

    // Policy-ranked view of the queue (stable and deterministic: the
    // comparator ends in the admission sequence).
    std::sort(pending_.begin(), pending_.end(),
              [this](const GcRequest &a, const GcRequest &b) {
                  return ranksBefore(a, b);
              });

    // Slot grants first.
    std::size_t granted = 0;
    while (granted < pending_.size() && busy_ < capacity_) {
        GcRequest &req = pending_[granted];
        tenantUnitSec_[req.tenant] += req.unitSec;
        ++busy_;
        busyUntil_.push_back(now + req.accelTicks);
        out.push_back(Dispatch{req, false});
        ++granted;
    }

    if (capacity_ == 0) {
        // No surviving offload engine: every policy runs collections
        // host-side (there is nothing to wait for).
        for (std::size_t i = granted; i < pending_.size(); ++i) {
            ++fallbacks_;
            out.push_back(Dispatch{pending_[i], true});
        }
        pending_.clear();
        return out;
    }

    if (policy_ != ArbPolicy::DeadlineAware) {
        pending_.erase(pending_.begin(), pending_.begin() + granted);
        return out;
    }

    // Deadline policy: bail out requests whose accelerated path can
    // no longer meet the SLO.  Project the schedule ahead: every
    // in-flight collection frees its slot at a known tick, and each
    // kept request occupies the soonest-free slot for its accelerated
    // duration.  When a request's projected completion overruns its
    // deadline and the host path finishes no later, waiting only
    // deepens the miss — run it host-side now.
    std::vector<sim::Tick> frees = busyUntil_;
    std::vector<GcRequest> keep;
    keep.reserve(pending_.size() - granted);
    for (std::size_t i = granted; i < pending_.size(); ++i) {
        const GcRequest &req = pending_[i];
        auto slot = std::min_element(frees.begin(), frees.end());
        sim::Tick start =
            slot == frees.end() ? now : std::max(now, *slot);
        sim::Tick est_wait = start - now;
        bool misses_slo =
            req.deadline != sim::maxTick
            && start + req.accelTicks > req.deadline;
        bool host_no_later = req.hostTicks <= est_wait + req.accelTicks;
        if (misses_slo && host_no_later) {
            ++fallbacks_;
            out.push_back(Dispatch{req, true});
        } else {
            keep.push_back(req);
            if (slot != frees.end())
                *slot = start + req.accelTicks;
        }
    }
    pending_ = std::move(keep);
    return out;
}

void
Arbiter::complete()
{
    CHARON_ASSERT(busy_ > 0, "arbiter completion with no busy slot");
    --busy_;
    // Completion events fire in time order, so the collection that
    // just finished is the one with the earliest projected end.
    busyUntil_.erase(
        std::min_element(busyUntil_.begin(), busyUntil_.end()));
}

} // namespace charon::fleet
