/**
 * @file
 * Quickstart: the smallest end-to-end tour of the library.
 *
 * 1. Define classes and build a managed heap.
 * 2. Allocate an object graph and lose some of it.
 * 3. Run a minor and a major collection, with every primitive the
 *    collector executes recorded into a trace.
 * 4. Replay that trace on the host+DDR4 baseline and on Charon, and
 *    compare GC time.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "gc/collector.hh"
#include "gc/recorder.hh"
#include "gc/verify.hh"
#include "heap/heap.hh"
#include "platform/platform_sim.hh"
#include "workload/mutator.hh" // chooseCubeShift

using namespace charon;

int
main()
{
    // --- 1. Classes and heap -----------------------------------------
    heap::KlassTable klasses;
    heap::KlassId node = klasses.defineInstance("Node", /*refs=*/2,
                                                /*payload words=*/2);
    heap::HeapConfig heap_cfg;
    heap_cfg.heapBytes = 32 * sim::kMiB;
    heap::ManagedHeap heap(heap_cfg, klasses);

    // --- 2. An object graph ------------------------------------------
    // A linked list of 10k nodes, rooted at its head, plus 10k
    // unreachable nodes interleaved as garbage.
    mem::Addr head = heap.allocEden(node);
    heap.roots().push_back(head);
    mem::Addr tail = head;
    for (int i = 0; i < 9999; ++i) {
        heap.allocEden(node); // garbage
        mem::Addr next = heap.allocEden(node);
        heap.storeRef(tail, 0, next);
        tail = next;
    }
    std::printf("allocated: %llu objects, %llu KiB in Eden\n",
                static_cast<unsigned long long>(
                    heap.objectCount(heap::Space::Eden)),
                static_cast<unsigned long long>(
                    heap.region(heap::Space::Eden).used() >> 10));

    // --- 3. Collect, recording the primitive trace -------------------
    int cube_shift = workload::chooseCubeShift(heap.vaLimit());
    gc::TraceRecorder recorder(/*gc threads=*/8, cube_shift);
    gc::Collector collector(heap, recorder);

    auto fingerprint_before = gc::fingerprintHeap(heap);
    auto minor = collector.minorCollect();
    std::printf("minor GC: copied %llu objects (%llu KiB), all "
                "garbage reclaimed\n",
                static_cast<unsigned long long>(minor.objectsCopied
                                                + minor.objectsPromoted),
                static_cast<unsigned long long>(
                    (minor.bytesCopied + minor.bytesPromoted) >> 10));
    auto major = collector.fullCollect();
    std::printf("major GC: %llu live objects compacted to the bottom "
                "of Old\n",
                static_cast<unsigned long long>(major.liveObjects));

    // The live graph is bit-for-bit intact after both collections.
    if (!(gc::fingerprintHeap(heap) == fingerprint_before)) {
        std::printf("ERROR: object graph changed!\n");
        return 1;
    }
    gc::checkHeapIntegrity(heap);
    std::printf("graph fingerprint unchanged across both GCs\n");

    // --- 4. Replay the trace on two platforms ------------------------
    const auto &trace = recorder.run();
    sim::SystemConfig cfg;
    platform::PlatformSim ddr4(sim::PlatformKind::HostDdr4, cfg,
                               cube_shift);
    platform::PlatformSim charon(sim::PlatformKind::CharonNmp, cfg,
                                 cube_shift);
    auto t_ddr4 = ddr4.simulate(trace);
    auto t_charon = charon.simulate(trace);
    std::printf("GC time on host+DDR4: %.3f ms, on Charon: %.3f ms "
                "(%.2fx)\n",
                t_ddr4.gcSeconds * 1e3, t_charon.gcSeconds * 1e3,
                t_ddr4.gcSeconds / t_charon.gcSeconds);
    return 0;
}
