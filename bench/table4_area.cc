/**
 * @file
 * Table 4: area of every Charon hardware component and the aggregates
 * the paper derives (total, per-cube average, fraction of the HMC
 * logic die).
 */

#include <iostream>

#include "accel/area_energy.hh"
#include "report/table.hh"

using namespace charon;

int
main()
{
    report::heading(std::cout, "Table 4: Charon area usage");

    accel::AreaModel area{sim::CharonConfig{}};
    report::Table table({"component", "per-unit mm^2", "units",
                         "total mm^2", "class"});
    for (const auto &c : area.components()) {
        table.addRow({c.name, report::num(c.perUnitMm2, 4),
                      std::to_string(c.units),
                      report::num(c.totalMm2(), 4),
                      c.isProcessingUnit ? "processing unit"
                                         : "general"});
    }
    table.print(std::cout);

    std::cout << "\ntotal area: " << report::num(area.totalMm2(), 4)
              << " mm^2 (paper: 1.9470)\n"
              << "average per cube: "
              << report::num(area.perCubeMm2(), 4)
              << " mm^2 (paper: 0.4868)\n"
              << "fraction of the "
              << report::num(accel::AreaModel::kLogicDieMm2, 0)
              << " mm^2 logic die: "
              << report::num(100 * area.logicLayerFraction(), 2)
              << "% (paper: ~0.49%)\n";
    return 0;
}
