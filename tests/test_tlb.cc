/**
 * @file
 * Tests for the accelerator-side TLB model: huge-page pinning,
 * interleaving, PCID isolation, admission control, and the unified
 * vs. distributed remote-lookup rule.
 */

#include <gtest/gtest.h>

#include "accel/tlb.hh"

using namespace charon;
using accel::AcceleratorTlb;

namespace
{

sim::CharonConfig
smallPages()
{
    sim::CharonConfig cfg;
    cfg.hugePageBytes = 1 << 20; // 1 MiB pages for testing
    return cfg;
}

} // namespace

TEST(Tlb, PinThenTranslate)
{
    AcceleratorTlb tlb(smallPages(), 4, 16);
    ASSERT_TRUE(tlb.pinPage(1, 0x100000));
    auto entry = tlb.translate(1, 0x1abcde);
    ASSERT_TRUE(entry.has_value());
    EXPECT_EQ(entry->virtualPage, 1u);
    EXPECT_EQ(tlb.hits(), 1u);
    EXPECT_EQ(tlb.faults(), 0u);
}

TEST(Tlb, UnpinnedAccessFaults)
{
    AcceleratorTlb tlb(smallPages(), 4, 16);
    EXPECT_FALSE(tlb.translate(1, 0x100000).has_value());
    EXPECT_EQ(tlb.faults(), 1u);
}

TEST(Tlb, PagesInterleaveOverCubes)
{
    AcceleratorTlb tlb(smallPages(), 4, 16);
    for (mem::Addr page = 0; page < 8; ++page)
        ASSERT_TRUE(tlb.pinPage(1, page << 20));
    for (mem::Addr page = 0; page < 8; ++page) {
        auto entry = tlb.translate(1, page << 20);
        ASSERT_TRUE(entry.has_value());
        EXPECT_EQ(entry->homeCube, static_cast<int>(page % 4));
    }
}

TEST(Tlb, RepinningIsIdempotent)
{
    AcceleratorTlb tlb(smallPages(), 4, 4);
    EXPECT_TRUE(tlb.pinPage(1, 0));
    EXPECT_TRUE(tlb.pinPage(1, 100)); // same page
    EXPECT_EQ(tlb.pinnedPages(), 1u);
}

TEST(Tlb, AdmissionControlRejectsOversubscription)
{
    AcceleratorTlb tlb(smallPages(), 4, 3);
    EXPECT_TRUE(tlb.pinPage(1, 0 << 20));
    EXPECT_TRUE(tlb.pinPage(1, 1 << 20));
    EXPECT_TRUE(tlb.pinPage(1, 2 << 20));
    // Fourth huge page exceeds physical memory: mlock fails, exactly
    // the paper's admission-control mechanism.
    EXPECT_FALSE(tlb.pinPage(1, 3 << 20));
}

TEST(Tlb, PcidsIsolateProcesses)
{
    AcceleratorTlb tlb(smallPages(), 4, 16);
    ASSERT_TRUE(tlb.pinPage(1, 0));
    EXPECT_TRUE(tlb.translate(1, 0).has_value());
    EXPECT_FALSE(tlb.translate(2, 0).has_value()); // other process
}

TEST(Tlb, ReleaseProcessFreesBudget)
{
    AcceleratorTlb tlb(smallPages(), 4, 2);
    ASSERT_TRUE(tlb.pinPage(1, 0 << 20));
    ASSERT_TRUE(tlb.pinPage(1, 1 << 20));
    EXPECT_FALSE(tlb.pinPage(2, 0 << 20));
    tlb.releaseProcess(1);
    EXPECT_EQ(tlb.pinnedPages(), 0u);
    EXPECT_TRUE(tlb.pinPage(2, 0 << 20));
}

TEST(Tlb, UnifiedLookupsRemoteFromSatellites)
{
    AcceleratorTlb tlb(smallPages(), 4, 16);
    EXPECT_FALSE(tlb.lookupIsRemote(0, 0, /*distributed=*/false));
    EXPECT_TRUE(tlb.lookupIsRemote(1, 0, /*distributed=*/false));
    EXPECT_TRUE(tlb.lookupIsRemote(3, 5 << 20, /*distributed=*/false));
}

TEST(Tlb, DistributedLookupsLocalForOwnPages)
{
    AcceleratorTlb tlb(smallPages(), 4, 16);
    // Page p's slice is cube p % 4.
    EXPECT_FALSE(tlb.lookupIsRemote(2, mem::Addr{6} << 20,
                                    /*distributed=*/true));
    EXPECT_TRUE(tlb.lookupIsRemote(1, mem::Addr{6} << 20,
                                   /*distributed=*/true));
}
