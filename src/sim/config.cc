#include "config.hh"

namespace charon::sim
{

const char *
platformName(PlatformKind kind)
{
    switch (kind) {
      case PlatformKind::HostDdr4:
        return "DDR4";
      case PlatformKind::HostHmc:
        return "HMC";
      case PlatformKind::CharonNmp:
        return "Charon";
      case PlatformKind::CharonCpuSide:
        return "Charon-CPU-side";
      case PlatformKind::Ideal:
        return "Ideal";
      case PlatformKind::IgpuOffload:
        return "iGPU";
      case PlatformKind::CxlMsa:
        return "CXL-MSA";
    }
    return "unknown";
}

BackendKind
backendFor(PlatformKind kind)
{
    switch (kind) {
      case PlatformKind::CharonNmp:
      case PlatformKind::CharonCpuSide:
        return BackendKind::Charon;
      case PlatformKind::IgpuOffload:
        return BackendKind::Igpu;
      case PlatformKind::CxlMsa:
        return BackendKind::Cxl;
      case PlatformKind::HostDdr4:
      case PlatformKind::HostHmc:
      case PlatformKind::Ideal:
        break;
    }
    return BackendKind::None;
}

const char *
backendName(BackendKind kind)
{
    switch (kind) {
      case BackendKind::None:
        return "host";
      case BackendKind::Charon:
        return "nmp";
      case BackendKind::Igpu:
        return "igpu";
      case BackendKind::Cxl:
        return "cxl";
    }
    return "unknown";
}

} // namespace charon::sim
