/**
 * @file
 * Tests for trace serialization: round trips (synthetic and real
 * workload traces), corruption rejection, and timing-equivalence of a
 * reloaded trace.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "gc/rollup.hh"
#include "gc/trace_io.hh"
#include "platform/platform_sim.hh"
#include "workload/mutator.hh"

using namespace charon;
using namespace charon::gc;

namespace
{

RunTrace
syntheticTrace()
{
    RunTrace trace;
    GcTrace gc;
    gc.major = true;
    gc.liveObjects = 123;
    gc.bytesCopied = 4567;
    PhaseTrace phase;
    phase.kind = PhaseKind::MajorCompact;
    phase.bitmapCacheHitRate = 0.875;
    phase.bitmapCacheWritebacks = 42;
    ThreadWork work;
    work.glueInstructions = 1000;
    work.glueMemAccesses = 50;
    Bucket b;
    b.kind = PrimKind::BitmapCount;
    b.srcCube = 2;
    b.dstCube = 2;
    b.invocations = 7;
    b.seqReadBytes = 224;
    b.rangeBits = 896;
    work.buckets.push_back(b);
    Bucket c;
    c.kind = PrimKind::Copy;
    c.srcCube = 1;
    c.dstCube = 3;
    c.hostOnly = true;
    c.invocations = 9;
    c.seqReadBytes = 999;
    c.writeBytes = 999;
    work.buckets.push_back(c);
    phase.addThread(work);
    phase.addThread(ThreadWork{}); // an idle thread
    gc.phases.push_back(phase);
    trace.gcs.push_back(gc);
    trace.gcs.push_back(GcTrace{}); // an empty minor GC
    trace.mutatorInstructions = {11, 22, 33};
    return trace;
}

} // namespace

TEST(TraceSoA, ColumnsRoundTripEveryField)
{
    // push() scatters a Bucket into the columns; get() must gather
    // back every field bit-for-bit, at any index.
    const RunTrace trace = syntheticTrace();
    const PhaseTrace &phase = trace.gcs[0].phases[0];
    ASSERT_EQ(phase.buckets.size(), 2u);
    const Bucket b0 = phase.buckets.get(0);
    EXPECT_EQ(b0.kind, PrimKind::BitmapCount);
    EXPECT_EQ(b0.srcCube, 2);
    EXPECT_EQ(b0.invocations, 7u);
    EXPECT_EQ(b0.rangeBits, 896u);
    EXPECT_FALSE(b0.hostOnly);
    const Bucket b1 = phase.buckets.get(1);
    EXPECT_EQ(b1.kind, PrimKind::Copy);
    EXPECT_EQ(b1.srcCube, 1);
    EXPECT_EQ(b1.dstCube, 3);
    EXPECT_TRUE(b1.hostOnly);
    EXPECT_EQ(b1.seqReadBytes, 999u);

    BucketColumns copy = phase.buckets;
    EXPECT_TRUE(copy == phase.buckets);
    copy.push(b0);
    EXPECT_TRUE(copy != phase.buckets);
}

TEST(TraceSoA, ThreadSpansPartitionTheBucketColumns)
{
    // addThread() appends each worker's buckets contiguously; the
    // spans must tile the columns exactly, in thread order.
    const RunTrace trace = syntheticTrace();
    const PhaseTrace &phase = trace.gcs[0].phases[0];
    ASSERT_EQ(phase.threads.size(), 2u);
    EXPECT_EQ(phase.threads[0].firstBucket, 0u);
    EXPECT_EQ(phase.threads[0].bucketCount, 2u);
    EXPECT_EQ(phase.threads[0].glueInstructions, 1000u);
    EXPECT_EQ(phase.threads[1].firstBucket, 2u);
    EXPECT_EQ(phase.threads[1].bucketCount, 0u);
    std::size_t covered = 0;
    for (const auto &span : phase.threads)
        covered += span.bucketCount;
    EXPECT_EQ(covered, phase.buckets.size());
    EXPECT_EQ(phase.totalInvocations(PrimKind::Copy), 9u);
    EXPECT_EQ(phase.totalBytes(PrimKind::BitmapCount), 224u);
}

TEST(TraceIo, SyntheticRoundTrip)
{
    RunTrace original = syntheticTrace();
    std::stringstream ss;
    writeTrace(ss, original);
    RunTrace loaded;
    std::string error;
    ASSERT_TRUE(readTrace(ss, loaded, &error)) << error;
    EXPECT_TRUE(traceEquals(original, loaded));
}

TEST(TraceIo, EmptyTraceRoundTrip)
{
    RunTrace empty;
    std::stringstream ss;
    writeTrace(ss, empty);
    RunTrace loaded;
    ASSERT_TRUE(readTrace(ss, loaded, nullptr));
    EXPECT_TRUE(traceEquals(empty, loaded));
}

TEST(TraceIo, RejectsBadMagic)
{
    std::stringstream ss;
    ss << "NOTATRACE-------------";
    RunTrace loaded;
    std::string error;
    EXPECT_FALSE(readTrace(ss, loaded, &error));
    EXPECT_EQ(error, "bad magic");
}

TEST(TraceIo, RejectsTruncation)
{
    RunTrace original = syntheticTrace();
    std::stringstream ss;
    writeTrace(ss, original);
    std::string bytes = ss.str();
    for (std::size_t cut : {bytes.size() - 1, bytes.size() / 2,
                            std::size_t{20}}) {
        std::stringstream cut_ss(bytes.substr(0, cut));
        RunTrace loaded;
        std::string error;
        EXPECT_FALSE(readTrace(cut_ss, loaded, &error))
            << "cut at " << cut;
        EXPECT_FALSE(error.empty());
    }
}

TEST(TraceIo, RejectsWrongVersion)
{
    RunTrace original;
    std::stringstream ss;
    writeTrace(ss, original);
    std::string bytes = ss.str();
    bytes[8] = 99; // stomp the version field
    std::stringstream bad(bytes);
    RunTrace loaded;
    std::string error;
    EXPECT_FALSE(readTrace(bad, loaded, &error));
    EXPECT_EQ(error, "unsupported trace version");
}

TEST(TraceIo, TraceEqualsDetectsDifferences)
{
    RunTrace a = syntheticTrace();
    RunTrace b = syntheticTrace();
    EXPECT_TRUE(traceEquals(a, b));
    b.gcs[0].phases[0].buckets.invocations[0] += 1;
    EXPECT_FALSE(traceEquals(a, b));
}

TEST(TraceIo, RealWorkloadRoundTripPreservesTiming)
{
    // The load-bearing property: a reloaded trace replays to exactly
    // the same platform timing as the in-memory one.
    const auto &params = workload::findWorkload("ALS");
    workload::Mutator mut(params, params.heapBytes, 2);
    mut.run();
    const auto &original = mut.recorder().run();

    std::stringstream ss;
    writeTrace(ss, original);
    RunTrace loaded;
    std::string error;
    ASSERT_TRUE(readTrace(ss, loaded, &error)) << error;
    ASSERT_TRUE(traceEquals(original, loaded));

    sim::SystemConfig cfg;
    platform::PlatformSim sim_a(sim::PlatformKind::CharonNmp, cfg,
                                mut.cubeShift());
    platform::PlatformSim sim_b(sim::PlatformKind::CharonNmp, cfg,
                                mut.cubeShift());
    auto t_a = sim_a.simulate(original);
    auto t_b = sim_b.simulate(loaded);
    EXPECT_DOUBLE_EQ(t_a.gcSeconds, t_b.gcSeconds);
    EXPECT_DOUBLE_EQ(t_a.totalEnergyJ(), t_b.totalEnergyJ());
}

TEST(TraceIo, FileRoundTrip)
{
    RunTrace original = syntheticTrace();
    std::string path = ::testing::TempDir() + "charon_trace_test.bin";
    std::string error;
    ASSERT_TRUE(saveTraceFile(path, original, &error)) << error;
    RunTrace loaded;
    ASSERT_TRUE(loadTraceFile(path, loaded, &error)) << error;
    EXPECT_TRUE(traceEquals(original, loaded));
    std::remove(path.c_str());
}

TEST(TraceIo, MissingFileFails)
{
    RunTrace loaded;
    std::string error;
    EXPECT_FALSE(loadTraceFile("/nonexistent/path/trace.bin", loaded,
                               &error));
    EXPECT_FALSE(error.empty());
}

// --- Roll-up serialization ------------------------------------------

namespace
{

RunRollup
syntheticRollup()
{
    RunRollup rollup;
    GcRollup minor;
    minor.major = false;
    PhaseRollup roots;
    roots.kind = PhaseKind::MinorRoots;
    roots.wallSeconds = 0.25;
    roots.glueSeconds = 0.125;
    roots.prims[static_cast<int>(PrimKind::Copy)] = {0.5, 4096, 7};
    roots.prims[static_cast<int>(PrimKind::ScanPush)] = {0.0625, 128,
                                                         3};
    minor.phases.push_back(roots);
    rollup.gcs.push_back(minor);

    GcRollup major;
    major.major = true;
    PhaseRollup compact;
    compact.kind = PhaseKind::MajorCompact;
    compact.wallSeconds = 1.5;
    compact.glueSeconds = 0.75;
    compact.prims[static_cast<int>(PrimKind::BitmapCount)] = {
        0.375, 1 << 20, 99};
    major.phases.push_back(compact);
    rollup.gcs.push_back(major);
    return rollup;
}

} // namespace

TEST(RollupIo, RoundTrip)
{
    const RunRollup original = syntheticRollup();
    std::stringstream ss;
    writeRollup(ss, original);
    RunRollup loaded;
    std::string error;
    ASSERT_TRUE(readRollup(ss, loaded, &error)) << error;
    EXPECT_TRUE(rollupEquals(original, loaded));
}

TEST(RollupIo, HelpersSumAcrossPhases)
{
    const RunRollup r = syntheticRollup();
    EXPECT_DOUBLE_EQ(r.totalByKind(PrimKind::Copy).seconds, 0.5);
    EXPECT_EQ(r.totalByKind(PrimKind::Copy).bytes, 4096u);
    EXPECT_DOUBLE_EQ(r.totalByKind(PrimKind::BitmapCount).seconds,
                     0.375);
    EXPECT_DOUBLE_EQ(r.glueSeconds(), 0.875);
    EXPECT_DOUBLE_EQ(r.gcs[0].phases[0].threadSeconds(),
                     0.125 + 0.5 + 0.0625);
    EXPECT_EQ(r.gcs[0].phases[0].totalBytes(), 4096u + 128u);
}

TEST(RollupIo, EqualityDetectsDifferences)
{
    RunRollup a = syntheticRollup();
    RunRollup b = syntheticRollup();
    EXPECT_TRUE(rollupEquals(a, b));
    b.gcs[1].phases[0].prims[0].invocations += 1;
    EXPECT_FALSE(rollupEquals(a, b));
    b = syntheticRollup();
    b.gcs[0].phases[0].wallSeconds += 1e-12;
    EXPECT_FALSE(rollupEquals(a, b));
}

TEST(RollupIo, BadMagicRejected)
{
    std::stringstream ss;
    writeRollup(ss, syntheticRollup());
    std::string bytes = ss.str();
    bytes[0] ^= 0xff;
    std::stringstream bad(bytes);
    RunRollup loaded;
    std::string error;
    EXPECT_FALSE(readRollup(bad, loaded, &error));
    EXPECT_NE(error.find("magic"), std::string::npos);
}

TEST(RollupIo, TruncationRejectedAtEveryPrefix)
{
    std::stringstream ss;
    writeRollup(ss, syntheticRollup());
    const std::string bytes = ss.str();
    // Every strict prefix must fail cleanly, never crash or accept.
    for (std::size_t n = 0; n < bytes.size(); n += 7) {
        std::stringstream cut(bytes.substr(0, n));
        RunRollup loaded;
        std::string error;
        EXPECT_FALSE(readRollup(cut, loaded, &error))
            << "prefix of " << n << " bytes was accepted";
    }
}

TEST(RollupIo, BadPhaseKindRejected)
{
    RunRollup r = syntheticRollup();
    std::stringstream ss;
    writeRollup(ss, r);
    std::string bytes = ss.str();
    // The first phase kind field sits right after magic + version +
    // gc count + major flag + phase count: 5 u64 little-endian words.
    bytes[5 * 8] = static_cast<char>(0x7f);
    std::stringstream bad(bytes);
    RunRollup loaded;
    std::string error;
    EXPECT_FALSE(readRollup(bad, loaded, &error));
}
