/**
 * @file
 * Tests for the Charon device timing model and the area model.
 */

#include <gtest/gtest.h>

#include "accel/area_energy.hh"
#include "accel/device.hh"
#include "sim/event_queue.hh"

using namespace charon;
using accel::AreaModel;
using accel::CharonDevice;
using charon::sim::EventQueue;
using charon::sim::Tick;

namespace
{

gc::Bucket
copyBucket(std::uint64_t bytes, std::uint64_t inv = 1, int src = 1,
           int dst = 1)
{
    gc::Bucket b;
    b.kind = gc::PrimKind::Copy;
    b.srcCube = src;
    b.dstCube = dst;
    b.invocations = inv;
    b.seqReadBytes = bytes;
    b.writeBytes = bytes;
    return b;
}

} // namespace

class DeviceTest : public ::testing::Test
{
  protected:
    EventQueue eq;
    sim::SystemConfig cfg;
    hmc::HmcMemory hmc{eq, cfg.hmc};
    CharonDevice dev{eq, hmc, cfg};

    DeviceTest() { hmc.setCubeShift(28); }

    Tick
    exec(const gc::Bucket &b, double hit = 0.9)
    {
        Tick done = 0;
        dev.execBucket(b, hit, [&](Tick t) { done = t; });
        eq.run();
        return done;
    }
};

TEST_F(DeviceTest, LargeCopyApproachesUnitIssueBandwidth)
{
    // 64 MB copied (128 MB moved) by one unit capped at 160 GB/s of
    // combined load+store issue.
    Tick done = exec(copyBucket(64 << 20));
    double gbps = 2.0 * 64.0 / 1024 / sim::ticksToSeconds(done);
    EXPECT_GT(gbps, 120.0);
    EXPECT_LE(gbps, 161.0);
}

TEST_F(DeviceTest, SmallCopyPaysLatencyFloor)
{
    // A 64 B object copy cannot beat the offload round trip plus the
    // DRAM access latency (~50 ns) — the reason the modified JVM
    // keeps tiny copies on the host.
    Tick done = exec(copyBucket(64));
    EXPECT_GT(sim::ticksToNs(done), 40.0);
    EXPECT_LT(sim::ticksToNs(done), 90.0);
}

TEST_F(DeviceTest, PerInvocationOverheadScalesWithCount)
{
    Tick one = exec(copyBucket(64, 1));
    EventQueue eq2;
    hmc::HmcMemory hmc2(eq2, cfg.hmc);
    CharonDevice dev2(eq2, hmc2, cfg);
    Tick done = 0;
    dev2.execBucket(copyBucket(64 * 1000, 1000), 0.9,
                    [&](Tick t) { done = t; });
    eq2.run();
    // 1000 invocations cost ~1000x the per-invocation part.
    EXPECT_GT(done, 500 * one);
}

TEST_F(DeviceTest, RemoteDestinationCrossesLinks)
{
    exec(copyBucket(1 << 20, 1, 1, 2));
    EXPECT_GT(hmc.linkBytes(), 0.0);
    EXPECT_GT(hmc.remoteBytes(), 0.0);
}

TEST_F(DeviceTest, LocalCopyStaysLocal)
{
    exec(copyBucket(1 << 20, 1, 1, 1));
    EXPECT_DOUBLE_EQ(hmc.remoteBytes(), 0.0);
}

TEST_F(DeviceTest, OffloadOverheadHigherForSatelliteCubes)
{
    EXPECT_GT(dev.offloadOverhead(1), dev.offloadOverhead(0));
}

TEST_F(DeviceTest, BitmapCountHitRateMatters)
{
    gc::Bucket b;
    b.kind = gc::PrimKind::BitmapCount;
    b.srcCube = 1;
    b.invocations = 10000;
    b.seqReadBytes = 10000 * 32;
    b.rangeBits = 10000 * 128;

    Tick hot = exec(b, 0.95);
    EventQueue eq2;
    hmc::HmcMemory hmc2(eq2, cfg.hmc);
    CharonDevice dev2(eq2, hmc2, cfg);
    Tick cold = 0;
    dev2.execBucket(b, 0.0, [&](Tick t) { cold = t; });
    eq2.run();
    // Cold lookups pay the DRAM round trip per invocation; hot ones
    // only the cache (plus the unified-cache link hop on a satellite
    // cube).
    EXPECT_GT(cold, hot * 3 / 2);
}

TEST_F(DeviceTest, ScanPushWithFewRefsIsLatencyBound)
{
    gc::Bucket sparse;
    sparse.kind = gc::PrimKind::ScanPush;
    sparse.srcCube = 1;
    sparse.invocations = 1000;
    sparse.seqReadBytes = 1000 * 24;
    sparse.randomAccesses = 1000; // one ref per object
    sparse.randomBytes = 1000 * 16;

    gc::Bucket dense = sparse;
    dense.invocations = 100; // same refs packed into fewer objects
    dense.randomAccesses = 1000;

    Tick t_sparse = exec(sparse);
    EventQueue eq2;
    hmc::HmcMemory hmc2(eq2, cfg.hmc);
    CharonDevice dev2(eq2, hmc2, cfg);
    Tick t_dense = 0;
    dev2.execBucket(dense, 0.9, [&](Tick t) { t_dense = t; });
    eq2.run();
    // Ten refs per invocation exploit MLP; one ref per invocation
    // serializes on latency (Section 5.2's Scan&Push analysis).
    EXPECT_GT(t_sparse, 2 * t_dense);
}

TEST_F(DeviceTest, GcPrologueScalesWithLlc)
{
    sim::SystemConfig big = cfg;
    big.host.llcSize *= 2;
    EventQueue eq2;
    hmc::HmcMemory hmc2(eq2, big.hmc);
    CharonDevice dev2(eq2, hmc2, big);
    EXPECT_EQ(dev2.gcPrologueTicks(), 2 * dev.gcPrologueTicks());
}

TEST_F(DeviceTest, PacketBytesAccumulate)
{
    EXPECT_DOUBLE_EQ(dev.packetBytes(), 0.0);
    exec(copyBucket(1024, 4));
    // 4 x (48 B request + 16 B no-value response).
    EXPECT_DOUBLE_EQ(dev.packetBytes(), 4.0 * (48 + 16));
}

// ---------------------------------------------------------------------
// Area model (Table 4)

TEST(AreaModel, TotalsMatchTable4)
{
    AreaModel area{sim::CharonConfig{}};
    EXPECT_NEAR(area.totalMm2(), 1.9470, 1e-4);
    EXPECT_NEAR(area.perCubeMm2(), 0.4868, 1e-4);
    EXPECT_NEAR(area.logicLayerFraction(), 0.0049, 1e-4);
}

TEST(AreaModel, HasAllNineComponents)
{
    AreaModel area{sim::CharonConfig{}};
    EXPECT_EQ(area.components().size(), 9u);
    int units = 0, general = 0;
    for (const auto &c : area.components())
        (c.isProcessingUnit ? units : general) += 1;
    EXPECT_EQ(units, 3);
    EXPECT_EQ(general, 6);
}

TEST(AreaModel, PowerDensityBelowPassiveHeatsinkLimit)
{
    // Section 5.3: max power 4.51 W -> 45.1 mW/mm^2 per cube budget,
    // far below a passive heat sink's limit.
    double density = accel::PowerModel::powerDensityMwPerMm2(
        accel::PowerModel::kPaperMaxPowerW);
    EXPECT_NEAR(density, 11.3, 0.1); // over 4 cubes' logic dies
    EXPECT_LT(density,
              accel::PowerModel::kPassiveHeatsinkMwPerMm2);
}
