/**
 * @file
 * sim::Function small-buffer-optimization edge cases: the event queue
 * schedules hundreds of thousands of these per replay, so the inline
 * vs. heap storage decision, the move/copy vtable paths, and exact
 * destruction counting all have to be airtight.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <new>
#include <utility>

#include "sim/callback.hh"

using charon::sim::Function;

namespace
{

/** Global allocation counter: observes the heap-fallback boundary. */
std::size_t g_allocs = 0;

} // namespace

void *
operator new(std::size_t size)
{
    ++g_allocs;
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void *
operator new(std::size_t size, const std::nothrow_t &) noexcept
{
    ++g_allocs;
    return std::malloc(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

namespace
{

/** Counts every special-member call of each live instance. */
struct Probe
{
    static int live;
    static int copies;
    static int moves;

    Probe() { ++live; }
    Probe(const Probe &) { ++live, ++copies; }
    Probe(Probe &&) noexcept { ++live, ++moves; }
    ~Probe() { --live; }

    static void
    reset()
    {
        live = 0;
        copies = 0;
        moves = 0;
    }
};

int Probe::live = 0;
int Probe::copies = 0;
int Probe::moves = 0;

TEST(Callback, SmallCaptureStaysInline)
{
    int x = 41;
    g_allocs = 0;
    Function<int()> f([x] { return x + 1; });
    EXPECT_EQ(g_allocs, 0u) << "small capture must not heap-allocate";
    EXPECT_EQ(f(), 42);
}

TEST(Callback, LargeCaptureFallsBackToHeap)
{
    // One byte past the default inline budget forces the heap path.
    struct Big
    {
        unsigned char pad[97];
    };
    Big big{};
    big.pad[0] = 7;
    g_allocs = 0;
    Function<int()> f([big] { return big.pad[0]; });
    EXPECT_GE(g_allocs, 1u) << "oversized capture must heap-allocate";
    EXPECT_EQ(f(), 7);

    // A tighter inline budget flips the same capture to the heap.
    int x = 3;
    g_allocs = 0;
    Function<int(), 8> tiny([x] { return x; });
    EXPECT_EQ(g_allocs, 0u);
    std::uint64_t a = 1, b = 2;
    g_allocs = 0;
    Function<int(), 8> spilled(
        [a, b] { return static_cast<int>(a + b); });
    EXPECT_GE(g_allocs, 1u);
    EXPECT_EQ(spilled(), 3);
}

TEST(Callback, MoveOnlyCallable)
{
    auto p = std::make_unique<int>(99);
    Function<int()> f([p = std::move(p)] { return *p; });
    EXPECT_EQ(f(), 99);

    // Moving the Function moves the capture, ownership intact.
    Function<int()> g(std::move(f));
    EXPECT_FALSE(static_cast<bool>(f));
    EXPECT_TRUE(static_cast<bool>(g));
    EXPECT_EQ(g(), 99);

    Function<int()> h;
    h = std::move(g);
    EXPECT_EQ(h(), 99);
}

TEST(CallbackDeathTest, CopyingMoveOnlyCallableAborts)
{
    auto p = std::make_unique<int>(1);
    Function<int()> f([p = std::move(p)] { return *p; });
    EXPECT_DEATH(
        {
            Function<int()> copy(f);
            (void)copy;
        },
        "");
}

TEST(Callback, InlineDestructionCounts)
{
    Probe::reset();
    {
        Probe probe;
        Function<void()> f([probe] {});
        EXPECT_EQ(Probe::live, 2); // stack original + inline capture
        f();
        Function<void()> g(f); // inline copy path
        EXPECT_EQ(Probe::live, 3);
        EXPECT_GE(Probe::copies, 2);
        Function<void()> h(std::move(g)); // inline move path
        EXPECT_EQ(Probe::live, 3) << "moved-from capture is destroyed";
        g = h; // copy-assign over the empty moved-from g
        EXPECT_EQ(Probe::live, 4);
    }
    EXPECT_EQ(Probe::live, 0) << "every capture must be destroyed";
}

TEST(Callback, HeapDestructionCounts)
{
    struct Heavy
    {
        Probe probe;
        unsigned char pad[128] = {};
    };
    Probe::reset();
    {
        Heavy heavy;
        Function<void()> f([heavy] {});
        EXPECT_EQ(Probe::live, 2); // stack original + heap capture
        Function<void()> g(f); // heap copy path: a second allocation
        EXPECT_EQ(Probe::live, 3);
        Function<void()> h(std::move(g)); // heap move: pointer steal
        EXPECT_EQ(Probe::live, 3);
        EXPECT_FALSE(static_cast<bool>(g));
        h = f; // copy-assign destroys h's old capture first
        EXPECT_EQ(Probe::live, 3);
    }
    EXPECT_EQ(Probe::live, 0) << "every capture must be destroyed";
}

TEST(Callback, SelfAssignmentIsSafe)
{
    Probe::reset();
    {
        Probe probe;
        Function<void()> f([probe] {});
        auto &alias = f;
        f = alias;
        EXPECT_EQ(Probe::live, 2);
        f = std::move(alias);
        EXPECT_TRUE(static_cast<bool>(f));
        EXPECT_EQ(Probe::live, 2);
    }
    EXPECT_EQ(Probe::live, 0);
}

TEST(Callback, ArgumentsAndReturnValues)
{
    Function<int(int, int)> add([](int a, int b) { return a + b; });
    EXPECT_EQ(add(2, 3), 5);

    // Reference arguments pass through the type-erased invoke.
    Function<void(int &)> bump([](int &v) { ++v; });
    int v = 10;
    bump(v);
    EXPECT_EQ(v, 11);
}

} // namespace
