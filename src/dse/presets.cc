#include "presets.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "report/table.hh"
#include "workload/catalog.hh"

namespace charon::dse
{

namespace
{

/** bench_common.hh's cell(), replicated so the preset grids stay
 *  byte-identical to the bench binaries without src -> bench
 *  includes. */
harness::Cell
benchCell(std::string workload, sim::PlatformKind platform,
          std::uint64_t heap_bytes = 0, std::uint64_t seed = 1,
          int gc_threads = 8, int num_cubes = 4)
{
    harness::Cell c;
    c.key.workload = std::move(workload);
    c.key.heapBytes = heap_bytes;
    c.key.seed = seed;
    c.key.gcThreads = gc_threads;
    c.key.numCubes = num_cubes;
    c.platform = platform;
    c.config = sim::SystemConfig::table2();
    c.label = c.key.workload + " on " + sim::platformName(platform);
    return c;
}

std::vector<std::string>
allWorkloads()
{
    std::vector<std::string> names;
    for (const auto &w : workload::workloadCatalog())
        names.push_back(w.name);
    return names;
}

/** Report::checkCell over a journal record: counts ok cells and
 *  files failures exactly like the bench path does. */
bool
checkRecord(harness::Report &report, const harness::Cell &cell,
            const JournalRecord &rec)
{
    harness::CellResult result;
    result.ok = rec.ok;
    result.oom = rec.oom;
    result.error = rec.error;
    return report.checkCell(cell, result);
}

std::vector<std::string>
cellKeys(const std::vector<harness::Cell> &cells)
{
    std::vector<std::string> keys;
    keys.reserve(cells.size());
    for (const auto &c : cells)
        keys.push_back(cellKey(c, 0));
    return keys;
}

std::string
fmtDouble(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

ParamSpace
smokeSpace()
{
    ParamSpace space;
    space.base.workload = "CC";
    // Twice the calibrated minimum: small enough to be a CI gate,
    // large enough to run a real mix of minor and major collections.
    space.base.heapBytes = workload::findWorkload("CC").minHeapBytes * 2;
    space.axis("units", {"4", "8"});
    space.axis("offload-threshold", {"256", "4096"});
    return space;
}

ParamSpace
frontierSpace()
{
    ParamSpace space;
    space.base.workload = "KM";
    space.axis("units", {"2", "4", "8", "16"});
    // 0 offloads every copy; 1 GiB keeps every copy on the host, so
    // the sweep brackets the paper's 256 B operating point.
    space.axis("offload-threshold",
               {"0", "64", "256", "4096", "1073741824"});
    return space;
}

PointCells
fig13Cells()
{
    const sim::PlatformKind kinds[] = {sim::PlatformKind::HostDdr4,
                                       sim::PlatformKind::HostHmc,
                                       sim::PlatformKind::CharonNmp};
    PointCells out;
    for (const auto &name : allWorkloads())
        for (auto kind : kinds)
            out.cells.push_back(benchCell(name, kind));
    out.keys = cellKeys(out.cells);
    return out;
}

PointCells
fig15Cells()
{
    const int thread_counts[] = {1, 2, 4, 8, 16};
    const std::string workloads[] = {"KM", "CC"};
    PointCells out;
    for (const auto &name : workloads) {
        for (int threads : thread_counts) {
            auto cfg = sim::SystemConfig::threadScaling(threads);

            harness::Cell ddr4 = benchCell(
                name, sim::PlatformKind::HostDdr4, 0, 1, threads);
            ddr4.config = cfg;
            out.cells.push_back(ddr4);

            harness::Cell uni = benchCell(
                name, sim::PlatformKind::CharonNmp, 0, 1, threads);
            uni.config = cfg;
            out.cells.push_back(uni);

            harness::Cell dist = uni;
            dist.config.charon.distributedStructures = true;
            dist.label += " (distributed)";
            out.cells.push_back(dist);
        }
    }
    out.keys = cellKeys(out.cells);
    return out;
}

void
runFig13Preset(Explorer &explorer, harness::Report &report)
{
    const auto workloads = allWorkloads();
    auto [cells, keys] = fig13Cells();
    auto records = explorer.runCells(cells, keys);

    auto &table = report.table(
        "fig13",
        "Figure 13: bandwidth utilized during GC and "
        "Charon's local-access ratio",
        {"workload", "DDR4 GB/s", "HMC GB/s", "Charon GB/s", "local",
         "remote"});
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        std::size_t i = w * 3;
        bool ok = true;
        for (std::size_t k = 0; k < 3; ++k)
            ok &= checkRecord(report, cells[i + k], records[i + k]);
        if (!ok)
            continue;
        const auto &ddr4 = records[i];
        const auto &hmc = records[i + 1];
        const auto &charon = records[i + 2];
        table.addRow(
            {workloads[w], report::num(ddr4.avgGcBandwidthGBs, 1),
             report::num(hmc.avgGcBandwidthGBs, 1),
             report::num(charon.avgGcBandwidthGBs, 1),
             report::num(100 * charon.localAccessFraction, 0) + "%",
             report::num(100 * (1 - charon.localAccessFraction), 0)
                 + "%"});
    }
    table.note("\noff-chip limits: DDR4 34 GB/s, HMC links 80 GB/s; "
               "Charon internal peak 4 x 320 GB/s");
    table.note("paper: >70% local for most workloads; LR and CC "
               "closer to ~50%");
}

void
runFig15Preset(Explorer &explorer, harness::Report &report)
{
    const int thread_counts[] = {1, 2, 4, 8, 16};
    const std::string workloads[] = {"KM", "CC"};

    auto [cells, keys] = fig15Cells();
    auto records = explorer.runCells(cells, keys);

    std::size_t i = 0;
    harness::ResultSink *last = nullptr;
    for (const auto &name : workloads) {
        auto &table =
            report.table("fig15." + name,
                         "Figure 15 (" + name
                             + "): GC throughput scalability "
                               "(normalized to 1 thread)",
                         {"threads", "DDR4", "Charon unified",
                          "Charon distributed"});
        double base_ddr4 = 0, base_uni = 0, base_dist = 0;
        for (int threads : thread_counts) {
            bool ok = true;
            for (std::size_t k = 0; k < 3; ++k)
                ok &= checkRecord(report, cells[i + k], records[i + k]);
            if (ok) {
                double ddr4 = records[i].gcSeconds;
                double uni = records[i + 1].gcSeconds;
                double dist = records[i + 2].gcSeconds;
                if (threads == 1) {
                    base_ddr4 = ddr4;
                    base_uni = uni;
                    base_dist = dist;
                }
                table.addRow({std::to_string(threads),
                              report::times(base_ddr4 / ddr4),
                              report::times(base_uni / uni),
                              report::times(base_dist / dist)});
            }
            i += 3;
        }
        last = &table;
    }
    if (last) {
        last->note("\npaper: DDR4 hardly scales (34 GB/s cap); Charon "
                   "scales with internal bandwidth; distributed "
                   "structures scale best");
    }
}

SweepSummary
summarize(const std::vector<PointEval> &evals)
{
    SweepSummary summary;
    // Dominance is computed over the ok points but reported in
    // whole-sweep indices, so callers never juggle two index spaces.
    std::vector<std::size_t> okIdx;
    std::vector<Objectives> objectives;
    for (std::size_t i = 0; i < evals.size(); ++i) {
        if (evals[i].ok) {
            okIdx.push_back(i);
            objectives.push_back(evals[i].objectives());
        }
    }
    if (okIdx.empty())
        return summary;
    auto front = paretoFrontier(objectives);
    for (std::size_t f : front)
        summary.frontier.push_back(okIdx[f]);
    summary.knee = okIdx[kneePoint(objectives, front)];
    summary.valid = true;
    return summary;
}

void
reportSweep(harness::Report &report,
            const std::vector<PointEval> &evals,
            const SweepSummary &summary)
{
    auto onFrontier = [&](std::size_t i) {
        for (std::size_t f : summary.frontier)
            if (f == i)
                return true;
        return false;
    };

    auto &table = report.table(
        "dse", "Design-space sweep: speedup vs. area and energy",
        {"point", "speedup", "GC ms", "energy J", "area mm2",
         "frontier"});
    for (std::size_t i = 0; i < evals.size(); ++i) {
        const auto &e = evals[i];
        harness::Cell pseudo;
        pseudo.label = e.point.str();
        harness::CellResult result;
        result.ok = e.ok;
        result.oom = e.oom;
        result.error = e.error;
        if (!report.checkCell(pseudo, result))
            continue;
        std::string mark;
        if (summary.valid && i == summary.knee)
            mark = "knee";
        else if (onFrontier(i))
            mark = "*";
        table.addRow({e.point.str(), report::times(e.speedup),
                      report::num(e.charon.gcSeconds * 1e3, 2),
                      report::num(e.energyJ, 3),
                      report::num(e.areaMm2, 3), mark});
    }
    if (summary.valid) {
        table.note("\nfrontier: " + std::to_string(
                       summary.frontier.size())
                   + " of " + std::to_string(evals.size())
                   + " points are Pareto-optimal "
                     "(maximize speedup, minimize area and energy)");
        table.note("knee point: " + evals[summary.knee].point.str());
    } else {
        table.note("\nno point evaluated successfully");
    }
}

std::string
paretoCsvText(const std::vector<PointEval> &evals,
              const SweepSummary &summary)
{
    std::ostringstream os;
    os << "point,speedup,gc_ms,energy_j,area_mm2,knee\n";
    for (std::size_t i : summary.frontier) {
        const auto &e = evals[i];
        os << e.point.str() << ',' << fmtDouble(e.speedup) << ','
           << fmtDouble(e.charon.gcSeconds * 1e3) << ','
           << fmtDouble(e.energyJ) << ',' << fmtDouble(e.areaMm2)
           << ',' << (summary.valid && i == summary.knee ? 1 : 0)
           << '\n';
    }
    return os.str();
}

bool
writeParetoCsv(const std::string &path,
               const std::vector<PointEval> &evals,
               const SweepSummary &summary, std::string *error)
{
    std::ofstream os(path, std::ios::binary);
    if (!os) {
        if (error)
            *error = "cannot open " + path + " for writing";
        return false;
    }
    os << paretoCsvText(evals, summary);
    os.flush();
    if (!os) {
        if (error)
            *error = "write to " + path + " failed";
        return false;
    }
    return true;
}

} // namespace charon::dse
