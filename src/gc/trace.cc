#include "trace.hh"

namespace charon::gc
{

const char *
primKindName(PrimKind kind)
{
    switch (kind) {
      case PrimKind::Copy:        return "Copy";
      case PrimKind::Search:      return "Search";
      case PrimKind::ScanPush:    return "Scan&Push";
      case PrimKind::BitmapCount: return "BitmapCount";
      case PrimKind::BitSweep:    return "BitSweep";
      case PrimKind::RefCount:    return "RefCount";
    }
    return "unknown";
}

const char *
phaseKindName(PhaseKind kind)
{
    switch (kind) {
      case PhaseKind::MinorRoots:    return "minor.roots";
      case PhaseKind::MinorCardScan: return "minor.cardscan";
      case PhaseKind::MinorEvacuate: return "minor.evacuate";
      case PhaseKind::MajorMark:     return "major.mark";
      case PhaseKind::MajorSummary:  return "major.summary";
      case PhaseKind::MajorCompact:  return "major.compact";
      case PhaseKind::RcUpdate:      return "rc.update";
      case PhaseKind::RcReclaim:     return "rc.reclaim";
    }
    return "unknown";
}

Bucket &
ThreadWork::bucket(PrimKind kind, int src_cube, int dst_cube,
                   bool host_only)
{
    for (auto &b : buckets) {
        if (b.kind == kind && b.srcCube == src_cube
            && b.dstCube == dst_cube && b.hostOnly == host_only) {
            return b;
        }
    }
    Bucket b;
    b.kind = kind;
    b.srcCube = src_cube;
    b.dstCube = dst_cube;
    b.hostOnly = host_only;
    buckets.push_back(b);
    return buckets.back();
}

void
BucketColumns::push(const Bucket &b)
{
    kind.push_back(b.kind);
    srcCube.push_back(static_cast<std::int32_t>(b.srcCube));
    dstCube.push_back(static_cast<std::int32_t>(b.dstCube));
    hostOnly.push_back(b.hostOnly ? 1 : 0);
    invocations.push_back(b.invocations);
    seqReadBytes.push_back(b.seqReadBytes);
    writeBytes.push_back(b.writeBytes);
    randomAccesses.push_back(b.randomAccesses);
    randomBytes.push_back(b.randomBytes);
    refsVisited.push_back(b.refsVisited);
    rangeBits.push_back(b.rangeBits);
    bitmapRmwAccesses.push_back(b.bitmapRmwAccesses);
    stackPushes.push_back(b.stackPushes);
}

Bucket
BucketColumns::get(std::size_t i) const
{
    Bucket b;
    b.kind = kind[i];
    b.srcCube = srcCube[i];
    b.dstCube = dstCube[i];
    b.hostOnly = hostOnly[i] != 0;
    b.invocations = invocations[i];
    b.seqReadBytes = seqReadBytes[i];
    b.writeBytes = writeBytes[i];
    b.randomAccesses = randomAccesses[i];
    b.randomBytes = randomBytes[i];
    b.refsVisited = refsVisited[i];
    b.rangeBits = rangeBits[i];
    b.bitmapRmwAccesses = bitmapRmwAccesses[i];
    b.stackPushes = stackPushes[i];
    return b;
}

bool
BucketColumns::operator==(const BucketColumns &o) const
{
    return kind == o.kind && srcCube == o.srcCube && dstCube == o.dstCube
           && hostOnly == o.hostOnly && invocations == o.invocations
           && seqReadBytes == o.seqReadBytes
           && writeBytes == o.writeBytes
           && randomAccesses == o.randomAccesses
           && randomBytes == o.randomBytes
           && refsVisited == o.refsVisited && rangeBits == o.rangeBits
           && bitmapRmwAccesses == o.bitmapRmwAccesses
           && stackPushes == o.stackPushes;
}

void
PhaseTrace::addThread(const ThreadWork &work)
{
    ThreadSpan span;
    span.firstBucket = static_cast<std::uint32_t>(buckets.size());
    span.bucketCount = static_cast<std::uint32_t>(work.buckets.size());
    span.glueInstructions = work.glueInstructions;
    span.glueMemAccesses = work.glueMemAccesses;
    for (const auto &b : work.buckets)
        buckets.push(b);
    threads.push_back(span);
}

PhaseTrace::PrimTotals
PhaseTrace::primTotals() const
{
    PrimTotals t;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        auto k = static_cast<std::size_t>(buckets.kind[i]);
        t.invocations[k] += buckets.invocations[i];
        t.bytes[k] += buckets.seqReadBytes[i] + buckets.writeBytes[i]
                      + buckets.randomBytes[i];
    }
    return t;
}

std::uint64_t
PhaseTrace::totalInvocations(PrimKind kind) const
{
    return primTotals().invocations[static_cast<std::size_t>(kind)];
}

std::uint64_t
PhaseTrace::totalBytes(PrimKind kind) const
{
    return primTotals().bytes[static_cast<std::size_t>(kind)];
}

std::uint64_t
GcTrace::totalInvocations(PrimKind kind) const
{
    std::uint64_t n = 0;
    for (const auto &p : phases)
        n += p.totalInvocations(kind);
    return n;
}

std::uint64_t
RunTrace::minorCount() const
{
    std::uint64_t n = 0;
    for (const auto &gc : gcs)
        n += gc.major ? 0 : 1;
    return n;
}

std::uint64_t
RunTrace::majorCount() const
{
    std::uint64_t n = 0;
    for (const auto &gc : gcs)
        n += gc.major ? 1 : 0;
    return n;
}

TraceProfile
profileTrace(const RunTrace &trace)
{
    TraceProfile profile;
    for (const auto &gc : trace.gcs) {
        for (const auto &phase : gc.phases) {
            const auto &b = phase.buckets;
            const std::size_t n = b.size();
            for (std::size_t i = 0; i < n; ++i) {
                if (b.invocations[i] == 0)
                    continue;
                const std::uint32_t bit =
                    1u << static_cast<unsigned>(b.kind[i]);
                if (b.hostOnly[i])
                    profile.hostKinds |= bit;
                else
                    profile.offloadKinds |= bit;
            }
        }
    }
    return profile;
}

} // namespace charon::gc
