/**
 * @file
 * Shared plumbing for the per-figure bench binaries, now a thin layer
 * over the harness: benches declare a list of experiment cells, the
 * ExperimentRunner executes every distinct functional run once (trace
 * cache first) and replays the cells on a thread pool, and a Report
 * renders the tables (aligned text, CSV, or JSON).
 *
 * Every bench accepts the shared flags: --jobs=N, --cache-dir=DIR,
 * --no-cache, --csv, --json=FILE.
 */

#ifndef CHARON_BENCH_COMMON_HH
#define CHARON_BENCH_COMMON_HH

#include <iostream>
#include <string>
#include <vector>

#include "harness/experiment_runner.hh"
#include "harness/options.hh"
#include "harness/result_sink.hh"
#include "report/table.hh"
#include "workload/catalog.hh"

namespace charon::bench
{

using harness::Cell;
using harness::CellResult;
using harness::CollectorKind;
using harness::ExperimentRunner;
using harness::FunctionalKey;
using harness::Report;
using harness::ResultSink;

/** Build a replay cell for @p workload on @p platform. */
inline Cell
cell(std::string workload, sim::PlatformKind platform,
     std::uint64_t heap_bytes = 0, std::uint64_t seed = 1,
     int gc_threads = 8, int num_cubes = 4)
{
    Cell c;
    c.key.workload = std::move(workload);
    c.key.heapBytes = heap_bytes;
    c.key.seed = seed;
    c.key.gcThreads = gc_threads;
    c.key.numCubes = num_cubes;
    c.platform = platform;
    c.config = sim::SystemConfig::table2();
    c.label = c.key.workload + " on " + sim::platformName(platform);
    return c;
}

/** All six workload names in catalog (Table 3) order. */
inline std::vector<std::string>
allWorkloads()
{
    std::vector<std::string> names;
    for (const auto &w : workload::workloadCatalog())
        names.push_back(w.name);
    return names;
}

} // namespace charon::bench

#endif // CHARON_BENCH_COMMON_HH
