#include "arrival.hh"

#include <cmath>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace charon::fleet
{

const char *
arrivalCurveName(ArrivalCurve curve)
{
    switch (curve) {
      case ArrivalCurve::Steady:
        return "steady";
      case ArrivalCurve::Diurnal:
        return "diurnal";
      case ArrivalCurve::Spike:
        return "spike";
    }
    return "?";
}

bool
parseArrivalCurve(const std::string &name, ArrivalCurve &out)
{
    for (int i = 0; i < kNumArrivalCurves; ++i) {
        auto curve = static_cast<ArrivalCurve>(i);
        if (name == arrivalCurveName(curve)) {
            out = curve;
            return true;
        }
    }
    return false;
}

double
ArrivalConfig::rate(double t) const
{
    switch (curve) {
      case ArrivalCurve::Steady:
        return meanRps;
      case ArrivalCurve::Diurnal:
        return meanRps
               * (1.0
                  + diurnalDepth
                        * std::sin(2.0 * M_PI * t / diurnalPeriodSec));
      case ArrivalCurve::Spike: {
        double phase = std::fmod(t, spikePeriodSec);
        return phase < spikeLenSec ? meanRps * spikeFactor : meanRps;
      }
    }
    return meanRps;
}

double
ArrivalConfig::peakRate() const
{
    switch (curve) {
      case ArrivalCurve::Steady:
        return meanRps;
      case ArrivalCurve::Diurnal:
        return meanRps * (1.0 + diurnalDepth);
      case ArrivalCurve::Spike:
        return meanRps * spikeFactor;
    }
    return meanRps;
}

std::vector<sim::Tick>
generateArrivals(const ArrivalConfig &cfg, std::uint64_t seed)
{
    CHARON_ASSERT(cfg.meanRps > 0 && cfg.horizonSec > 0,
                  "arrival process needs positive rate and horizon");
    sim::Rng rng(seed);
    const double peak = cfg.peakRate();
    std::vector<sim::Tick> arrivals;
    arrivals.reserve(
        static_cast<std::size_t>(cfg.meanRps * cfg.horizonSec * 2));

    // Lewis-Shedler thinning: candidate gaps are Exp(peak); a
    // candidate at time t survives with probability rate(t)/peak.
    double t = 0;
    for (;;) {
        double u = rng.uniform();
        // uniform() is in [0, 1); flip to (0, 1] so log() is finite.
        t += -std::log(1.0 - u) / peak;
        if (t >= cfg.horizonSec)
            break;
        if (rng.uniform() * peak <= cfg.rate(t))
            arrivals.push_back(sim::secondsToTicks(t));
    }
    return arrivals;
}

} // namespace charon::fleet
