/**
 * @file
 * A small-buffer-optimized std::function replacement for simulation
 * callbacks.
 *
 * The event queue schedules hundreds of thousands of callbacks per
 * replay; std::function heap-allocates every capture larger than two
 * words, which gprof shows as one of the dominant costs of a replay.
 * sim::Function keeps captures up to the inline budget in the object
 * itself (falling back to the heap above it), so the common wrappers
 * — "this plus a continuation plus a couple of scalars" — schedule
 * without touching the allocator.
 */

#ifndef CHARON_SIM_CALLBACK_HH
#define CHARON_SIM_CALLBACK_HH

#include <cstddef>
#include <cstdlib>
#include <new>
#include <type_traits>
#include <utility>

namespace charon::sim
{

template <typename Sig, std::size_t Inline = 96> class Function;

/**
 * Copyable type-erased callable with @p Inline bytes of in-object
 * capture storage.  Move-only callables (unique_ptr captures and the
 * like) are accepted; copying a Function holding one aborts, so the
 * queue's move-only schedule path stays allocation-honest without a
 * per-callable copyability tax.
 */
template <typename R, typename... Args, std::size_t Inline>
class Function<R(Args...), Inline>
{
  public:
    Function() = default;
    Function(std::nullptr_t) {}

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, Function>
                  && std::is_invocable_r_v<R, std::decay_t<F> &,
                                           Args...>>>
    Function(F &&f)
    {
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= Inline
                      && alignof(Fn) <= alignof(std::max_align_t)) {
            ::new (storage()) Fn(std::forward<F>(f));
            vt_ = &inlineVt<Fn>;
        } else {
            *reinterpret_cast<Fn **>(storage()) =
                new Fn(std::forward<F>(f));
            vt_ = &heapVt<Fn>;
        }
    }

    Function(const Function &o)
    {
        if (o.vt_) {
            o.vt_->copy(storage(), o.storage());
            vt_ = o.vt_;
        }
    }

    Function(Function &&o) noexcept
    {
        if (o.vt_) {
            o.vt_->move(storage(), o.storage());
            vt_ = o.vt_;
            o.vt_ = nullptr;
        }
    }

    Function &
    operator=(const Function &o)
    {
        if (this != &o) {
            reset();
            if (o.vt_) {
                o.vt_->copy(storage(), o.storage());
                vt_ = o.vt_;
            }
        }
        return *this;
    }

    Function &
    operator=(Function &&o) noexcept
    {
        if (this != &o) {
            reset();
            if (o.vt_) {
                o.vt_->move(storage(), o.storage());
                vt_ = o.vt_;
                o.vt_ = nullptr;
            }
        }
        return *this;
    }

    ~Function() { reset(); }

    explicit operator bool() const { return vt_ != nullptr; }

    R
    operator()(Args... args) const
    {
        return vt_->invoke(storage(), std::forward<Args>(args)...);
    }

  private:
    struct VTable
    {
        R (*invoke)(void *, Args &&...);
        void (*copy)(void *dst, const void *src);
        void (*move)(void *dst, void *src);
        void (*destroy)(void *);
    };

    template <typename Fn> static constexpr VTable inlineVt = {
        [](void *s, Args &&...args) -> R {
            return (*static_cast<Fn *>(s))(
                std::forward<Args>(args)...);
        },
        [](void *dst, const void *src) {
            // Move-only callables are allowed in (the queue only
            // moves); copying one is a programming error.
            if constexpr (std::is_copy_constructible_v<Fn>)
                ::new (dst) Fn(*static_cast<const Fn *>(src));
            else
                std::abort();
        },
        [](void *dst, void *src) {
            ::new (dst) Fn(std::move(*static_cast<Fn *>(src)));
            static_cast<Fn *>(src)->~Fn();
        },
        [](void *s) { static_cast<Fn *>(s)->~Fn(); },
    };

    template <typename Fn> static constexpr VTable heapVt = {
        [](void *s, Args &&...args) -> R {
            return (**static_cast<Fn **>(s))(
                std::forward<Args>(args)...);
        },
        [](void *dst, const void *src) {
            if constexpr (std::is_copy_constructible_v<Fn>)
                *static_cast<Fn **>(dst) =
                    new Fn(**static_cast<Fn *const *>(src));
            else
                std::abort();
        },
        [](void *dst, void *src) {
            *static_cast<Fn **>(dst) = *static_cast<Fn **>(src);
        },
        [](void *s) { delete *static_cast<Fn **>(s); },
    };

    void
    reset()
    {
        if (vt_) {
            vt_->destroy(storage());
            vt_ = nullptr;
        }
    }

    void *storage() const { return const_cast<unsigned char *>(buf_); }

    const VTable *vt_ = nullptr;
    alignas(std::max_align_t) unsigned char buf_[Inline];
};

} // namespace charon::sim

#endif // CHARON_SIM_CALLBACK_HH
