/**
 * @file
 * trace-dump: human-readable summary of a saved primitive trace.
 *
 * Shows, per collection: the phase structure, primitive invocation
 * counts and byte volumes, reference counts, bitmap-cache hit rates,
 * and the per-cube distribution — everything a user needs to
 * understand what a workload asked of the accelerator without
 * rerunning it.
 *
 * Usage:
 *   trace-dump <file.trace> [--per-gc]
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>

#include "gc/trace_io.hh"
#include "report/table.hh"

using namespace charon;
using gc::PrimKind;

namespace
{

struct PrimAgg
{
    std::uint64_t invocations = 0;
    std::uint64_t bytes = 0;
    std::uint64_t refs = 0;
    std::uint64_t hostOnly = 0;

    void
    add(const gc::Bucket &b)
    {
        invocations += b.invocations;
        bytes += b.totalBytes();
        refs += b.refsVisited;
        hostOnly += b.hostOnly ? b.invocations : 0;
    }
};

std::string
mib(std::uint64_t bytes)
{
    return report::num(static_cast<double>(bytes) / (1 << 20), 2)
           + " MiB";
}

void
primTable(const std::map<PrimKind, PrimAgg> &agg)
{
    report::Table table({"primitive", "invocations", "bytes",
                         "refs visited", "host-only"});
    for (const auto &[kind, a] : agg) {
        table.addRow({primKindName(kind),
                      std::to_string(a.invocations), mib(a.bytes),
                      std::to_string(a.refs),
                      std::to_string(a.hostOnly)});
    }
    table.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2 || std::strcmp(argv[1], "--help") == 0) {
        std::printf("usage: trace-dump <file.trace> [--per-gc]\n");
        return argc < 2 ? 2 : 0;
    }
    bool per_gc = argc > 2 && std::strcmp(argv[2], "--per-gc") == 0;

    gc::RunTrace trace;
    std::string error;
    if (!gc::loadTraceFile(argv[1], trace, &error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
    }

    std::printf("%zu collections (%llu minor, %llu major), "
                "%zu mutator segments\n\n",
                trace.gcs.size(),
                static_cast<unsigned long long>(trace.minorCount()),
                static_cast<unsigned long long>(trace.majorCount()),
                trace.mutatorInstructions.size());

    std::map<PrimKind, PrimAgg> total;
    std::map<int, std::uint64_t> cube_bytes;
    double hit_sum = 0;
    int hit_phases = 0;

    std::size_t index = 0;
    for (const auto &gc : trace.gcs) {
        std::map<PrimKind, PrimAgg> local;
        for (const auto &phase : gc.phases) {
            if (phase.bitmapCacheHitRate > 0) {
                hit_sum += phase.bitmapCacheHitRate;
                ++hit_phases;
            }
            phase.forEachBucket([&](const gc::Bucket &b) {
                local[b.kind].add(b);
                total[b.kind].add(b);
                cube_bytes[b.srcCube] += b.totalBytes();
            });
        }
        if (per_gc) {
            std::printf("GC #%zu (%s): %llu live objects, %s copied\n",
                        index, gc.major ? "major" : "minor",
                        static_cast<unsigned long long>(gc.liveObjects),
                        mib(gc.bytesCopied).c_str());
            primTable(local);
            std::printf("\n");
        }
        ++index;
    }

    std::printf("whole-run primitive totals:\n");
    primTable(total);

    std::printf("\nper-cube primary-data distribution:\n");
    report::Table cubes({"cube", "bytes"});
    for (const auto &[cube, bytes] : cube_bytes)
        cubes.addRow({std::to_string(cube), mib(bytes)});
    cubes.print(std::cout);

    if (hit_phases > 0) {
        std::printf("\nmean bitmap-cache hit rate over %d bitmap-using "
                    "phases: %.1f%%\n",
                    hit_phases, 100.0 * hit_sum / hit_phases);
    }
    return 0;
}
