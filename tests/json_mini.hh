/**
 * @file
 * A minimal recursive-descent JSON parser for tests.
 *
 * Just enough of RFC 8259 to parse back what this repo writes (the
 * Chrome/Perfetto timeline export, the golden-figure files): objects,
 * arrays, strings with the common escapes, doubles, bools, null.
 * Parse errors throw std::runtime_error with a byte offset — a test
 * wants the loud failure, not a recovery path.  Header-only and
 * test-only by design; production code has no business parsing JSON.
 */

#ifndef CHARON_TESTS_JSON_MINI_HH
#define CHARON_TESTS_JSON_MINI_HH

#include <cstdlib>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace charon::testjson
{

struct Value;
using ValuePtr = std::shared_ptr<Value>;

struct Value
{
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0;
    std::string string;
    std::vector<ValuePtr> array;
    std::map<std::string, ValuePtr> object;

    bool isNumber() const { return type == Type::Number; }
    bool isString() const { return type == Type::String; }
    bool isArray() const { return type == Type::Array; }
    bool isObject() const { return type == Type::Object; }

    /** Object member or null when absent / not an object. */
    ValuePtr
    get(const std::string &key) const
    {
        if (type != Type::Object)
            return nullptr;
        auto it = object.find(key);
        return it == object.end() ? nullptr : it->second;
    }

    /** Member as a number; @p fallback when absent or wrong type. */
    double
    num(const std::string &key, double fallback = 0) const
    {
        auto v = get(key);
        return (v && v->isNumber()) ? v->number : fallback;
    }

    /** Member as a string; empty when absent or wrong type. */
    std::string
    str(const std::string &key) const
    {
        auto v = get(key);
        return (v && v->isString()) ? v->string : std::string();
    }
};

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    ValuePtr
    parse()
    {
        ValuePtr v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing garbage");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const char *why) const
    {
        throw std::runtime_error("json parse error at byte "
                                 + std::to_string(pos_) + ": " + why);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()
               && (text_[pos_] == ' ' || text_[pos_] == '\t'
                   || text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail("unexpected character");
        ++pos_;
    }

    bool
    consume(const char *literal)
    {
        std::size_t n = std::char_traits<char>::length(literal);
        if (text_.compare(pos_, n, literal) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    ValuePtr
    parseValue()
    {
        skipWs();
        char c = peek();
        auto v = std::make_shared<Value>();
        switch (c) {
          case '{': parseObject(*v); return v;
          case '[': parseArray(*v); return v;
          case '"':
            v->type = Value::Type::String;
            v->string = parseString();
            return v;
          case 't':
            if (!consume("true"))
                fail("bad literal");
            v->type = Value::Type::Bool;
            v->boolean = true;
            return v;
          case 'f':
            if (!consume("false"))
                fail("bad literal");
            v->type = Value::Type::Bool;
            return v;
          case 'n':
            if (!consume("null"))
                fail("bad literal");
            return v;
          default:
            v->type = Value::Type::Number;
            v->number = parseNumber();
            return v;
        }
    }

    void
    parseObject(Value &v)
    {
        v.type = Value::Type::Object;
        expect('{');
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return;
        }
        for (;;) {
            skipWs();
            std::string key = parseString();
            skipWs();
            expect(':');
            v.object[key] = parseValue();
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return;
        }
    }

    void
    parseArray(Value &v)
    {
        v.type = Value::Type::Array;
        expect('[');
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return;
        }
        for (;;) {
            v.array.push_back(parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return;
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
              case '"':  out += '"'; break;
              case '\\': out += '\\'; break;
              case '/':  out += '/'; break;
              case 'b':  out += '\b'; break;
              case 'f':  out += '\f'; break;
              case 'n':  out += '\n'; break;
              case 'r':  out += '\r'; break;
              case 't':  out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned code = static_cast<unsigned>(
                    std::strtoul(text_.substr(pos_, 4).c_str(),
                                 nullptr, 16));
                pos_ += 4;
                // The repo only emits \u00XX (control characters);
                // anything wider would need UTF-8 encoding.
                out += static_cast<char>(code & 0xff);
                break;
              }
              default: fail("bad escape");
            }
        }
    }

    double
    parseNumber()
    {
        const char *begin = text_.c_str() + pos_;
        char *end = nullptr;
        double v = std::strtod(begin, &end);
        if (end == begin)
            fail("bad number");
        pos_ += static_cast<std::size_t>(end - begin);
        return v;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

inline ValuePtr
parse(const std::string &text)
{
    return Parser(text).parse();
}

} // namespace charon::testjson

#endif // CHARON_TESTS_JSON_MINI_HH
