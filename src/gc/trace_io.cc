#include "trace_io.hh"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

namespace charon::gc
{

namespace io
{

// --- little-endian primitives ---------------------------------------

void
putU64(std::ostream &os, std::uint64_t v)
{
    char buf[8];
    for (int i = 0; i < 8; ++i)
        buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    os.write(buf, 8);
}

void
putF64(std::ostream &os, double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, 8);
    putU64(os, bits);
}

bool
getU64(std::istream &is, std::uint64_t &v)
{
    char buf[8];
    if (!is.read(buf, 8))
        return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(buf[i]))
             << (8 * i);
    }
    return true;
}

bool
getF64(std::istream &is, double &v)
{
    std::uint64_t bits;
    if (!getU64(is, bits))
        return false;
    std::memcpy(&v, &bits, 8);
    return true;
}

void
putString(std::ostream &os, const std::string &s)
{
    putU64(os, s.size());
    os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool
getString(std::istream &is, std::string &s)
{
    std::uint64_t n;
    if (!getU64(is, n))
        return false;
    // Cap so a corrupted length cannot trigger a huge allocation.
    if (n > (1u << 20))
        return false;
    s.resize(n);
    return static_cast<bool>(
        is.read(s.data(), static_cast<std::streamsize>(n)));
}

} // namespace io

namespace
{

constexpr char kMagic[8] = {'C', 'H', 'A', 'R', 'O', 'N', 'T', 'R'};

using io::getF64;
using io::putF64;

void
put64(std::ostream &os, std::uint64_t v)
{
    io::putU64(os, v);
}

bool
get64(std::istream &is, std::uint64_t &v)
{
    return io::getU64(is, v);
}

// LEB128 varints: the body of the v3 format.  Counters in a trace are
// overwhelmingly small, so most values take one byte instead of eight.

void
putVar(std::ostream &os, std::uint64_t v)
{
    char buf[10];
    int n = 0;
    while (v >= 0x80) {
        buf[n++] = static_cast<char>((v & 0x7f) | 0x80);
        v >>= 7;
    }
    buf[n++] = static_cast<char>(v);
    os.write(buf, n);
}

bool
getVar(std::istream &is, std::uint64_t &v)
{
    v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
        int c = is.get();
        if (c == std::char_traits<char>::eof())
            return false;
        // The tenth byte holds only bit 63: a continuation flag or
        // any higher value bit would encode past 64 bits, which the
        // writer never produces — corrupt input, not a wide value.
        if (shift == 63 && (c & 0xfe) != 0)
            return false;
        v |= static_cast<std::uint64_t>(c & 0x7f) << shift;
        if ((c & 0x80) == 0)
            return true;
    }
    return false; // over-long encoding
}

/**
 * Ceiling on every element count the decoder honors (collections,
 * phases, threads, buckets, mutator segments).  Real traces sit
 * orders of magnitude below it; a corrupted count above it would
 * otherwise turn one flipped byte into a multi-gigabyte resize.
 */
constexpr std::uint64_t kMaxElementCount = 1u << 24;

/** Read a varint that sizes a container: bounded, never trusted. */
bool
getCount(std::istream &is, std::uint64_t &v,
         std::uint64_t cap = kMaxElementCount)
{
    return getVar(is, v) && v <= cap;
}

/** Write a whole u64 column, varint-packed. */
void
putColumn(std::ostream &os, const std::vector<std::uint64_t> &col)
{
    for (auto v : col)
        putVar(os, v);
}

bool
getColumn(std::istream &is, std::vector<std::uint64_t> &col,
          std::size_t n)
{
    col.resize(n);
    for (auto &v : col) {
        if (!getVar(is, v))
            return false;
    }
    return true;
}

void
putColumns(std::ostream &os, const BucketColumns &c)
{
    for (auto k : c.kind)
        os.put(static_cast<char>(k));
    for (auto v : c.srcCube)
        putVar(os, static_cast<std::uint64_t>(v));
    for (auto v : c.dstCube)
        putVar(os, static_cast<std::uint64_t>(v));
    for (auto v : c.hostOnly)
        os.put(static_cast<char>(v));
    putColumn(os, c.invocations);
    putColumn(os, c.seqReadBytes);
    putColumn(os, c.writeBytes);
    putColumn(os, c.randomAccesses);
    putColumn(os, c.randomBytes);
    putColumn(os, c.refsVisited);
    putColumn(os, c.rangeBits);
    putColumn(os, c.bitmapRmwAccesses);
    putColumn(os, c.stackPushes);
}

bool
getColumns(std::istream &is, BucketColumns &c, std::size_t n)
{
    c.kind.resize(n);
    for (auto &k : c.kind) {
        int v = is.get();
        if (v == std::char_traits<char>::eof()
            || v >= kNumPrimKinds) {
            return false;
        }
        k = static_cast<PrimKind>(v);
    }
    // Cube ids are small non-negative ints; a value that does not
    // round-trip the int32 cast is corruption, not a big system.
    std::uint64_t u;
    c.srcCube.resize(n);
    for (auto &v : c.srcCube) {
        if (!getVar(is, u) || u > INT32_MAX)
            return false;
        v = static_cast<std::int32_t>(u);
    }
    c.dstCube.resize(n);
    for (auto &v : c.dstCube) {
        if (!getVar(is, u) || u > INT32_MAX)
            return false;
        v = static_cast<std::int32_t>(u);
    }
    c.hostOnly.resize(n);
    for (auto &v : c.hostOnly) {
        int b = is.get();
        if (b == std::char_traits<char>::eof())
            return false;
        v = static_cast<std::uint8_t>(b);
    }
    return getColumn(is, c.invocations, n)
           && getColumn(is, c.seqReadBytes, n)
           && getColumn(is, c.writeBytes, n)
           && getColumn(is, c.randomAccesses, n)
           && getColumn(is, c.randomBytes, n)
           && getColumn(is, c.refsVisited, n)
           && getColumn(is, c.rangeBits, n)
           && getColumn(is, c.bitmapRmwAccesses, n)
           && getColumn(is, c.stackPushes, n);
}

} // namespace

void
writeTrace(std::ostream &os, const RunTrace &trace)
{
    os.write(kMagic, sizeof(kMagic));
    put64(os, kTraceFormatVersion);
    putVar(os, trace.gcs.size());
    for (const auto &gc : trace.gcs) {
        putVar(os, gc.major ? 1 : 0);
        putVar(os, gc.capabilityMask);
        putVar(os, gc.liveObjects);
        putVar(os, gc.bytesCopied);
        putVar(os, gc.bytesPromoted);
        putVar(os, gc.objectsScanned);
        putVar(os, gc.refsVisited);
        putVar(os, gc.cardsSearched);
        putVar(os, gc.bitmapCountCalls);
        putVar(os, gc.phases.size());
        for (const auto &phase : gc.phases) {
            putVar(os, static_cast<std::uint64_t>(phase.kind));
            putF64(os, phase.bitmapCacheHitRate);
            putVar(os, phase.bitmapCacheWritebacks);
            putVar(os, phase.threads.size());
            // Spans: bucket counts are implicit starts (cumulative),
            // so only the count and the glue pair are stored.
            for (const auto &t : phase.threads) {
                putVar(os, t.bucketCount);
                putVar(os, t.glueInstructions);
                putVar(os, t.glueMemAccesses);
            }
            putColumns(os, phase.buckets);
        }
    }
    putVar(os, trace.mutatorInstructions.size());
    for (auto n : trace.mutatorInstructions)
        putVar(os, n);
}

bool
readTrace(std::istream &is, RunTrace &trace, std::string *error)
{
    auto fail = [&](const char *why) {
        if (error)
            *error = why;
        return false;
    };
    char magic[8];
    if (!is.read(magic, sizeof(magic))
        || std::memcmp(magic, kMagic, sizeof(magic)) != 0) {
        return fail("bad magic");
    }
    std::uint64_t version;
    if (!get64(is, version) || version != kTraceFormatVersion)
        return fail("unsupported trace version");

    trace = RunTrace{};
    std::uint64_t gcs;
    if (!getCount(is, gcs))
        return fail("truncated or oversized header");
    trace.gcs.resize(gcs);
    for (auto &gc : trace.gcs) {
        std::uint64_t major, caps, phases;
        if (!getVar(is, major) || !getVar(is, caps)
            || !getVar(is, gc.liveObjects)
            || !getVar(is, gc.bytesCopied)
            || !getVar(is, gc.bytesPromoted)
            || !getVar(is, gc.objectsScanned)
            || !getVar(is, gc.refsVisited)
            || !getVar(is, gc.cardsSearched)
            || !getVar(is, gc.bitmapCountCalls)
            || !getCount(is, phases)) {
            return fail("truncated or oversized gc record");
        }
        if (caps > UINT32_MAX)
            return fail("bad capability mask");
        gc.major = major != 0;
        gc.capabilityMask = static_cast<std::uint32_t>(caps);
        gc.phases.resize(phases);
        for (auto &phase : gc.phases) {
            std::uint64_t kind, threads;
            if (!getVar(is, kind)
                || !getF64(is, phase.bitmapCacheHitRate)
                || !getVar(is, phase.bitmapCacheWritebacks)
                || !getCount(is, threads)) {
                return fail("truncated or oversized phase record");
            }
            if (kind > static_cast<std::uint64_t>(kLastPhaseKind))
                return fail("bad phase kind");
            // The recorder only measures rates in [0, 1]; anything
            // else (including NaN from flipped exponent bits) is
            // corruption that would silently skew replay timing.
            if (!(phase.bitmapCacheHitRate >= 0.0
                  && phase.bitmapCacheHitRate <= 1.0)) {
                return fail("bad bitmap-cache hit rate");
            }
            phase.kind = static_cast<PhaseKind>(kind);
            phase.threads.resize(threads);
            std::uint64_t total_buckets = 0;
            for (auto &t : phase.threads) {
                std::uint64_t count;
                if (!getCount(is, count)
                    || !getVar(is, t.glueInstructions)
                    || !getVar(is, t.glueMemAccesses)) {
                    return fail("truncated or oversized thread record");
                }
                t.firstBucket =
                    static_cast<std::uint32_t>(total_buckets);
                t.bucketCount = static_cast<std::uint32_t>(count);
                total_buckets += count;
                if (total_buckets > kMaxElementCount)
                    return fail("oversized bucket record");
            }
            if (!getColumns(is, phase.buckets,
                            static_cast<std::size_t>(total_buckets))) {
                return fail("truncated bucket record");
            }
        }
    }
    std::uint64_t segments;
    if (!getCount(is, segments))
        return fail("truncated or oversized mutator segments");
    trace.mutatorInstructions.resize(segments);
    for (auto &n : trace.mutatorInstructions) {
        if (!getVar(is, n))
            return fail("truncated mutator segment");
    }
    return true;
}

bool
saveTraceFile(const std::string &path, const RunTrace &trace,
              std::string *error)
{
    std::ofstream os(path, std::ios::binary);
    if (!os) {
        if (error)
            *error = "cannot open " + path + " for writing";
        return false;
    }
    writeTrace(os, trace);
    if (!os) {
        if (error)
            *error = "write failure on " + path;
        return false;
    }
    return true;
}

bool
loadTraceFile(const std::string &path, RunTrace &trace,
              std::string *error)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        if (error)
            *error = "cannot open " + path;
        return false;
    }
    return readTrace(is, trace, error);
}

bool
traceEquals(const RunTrace &a, const RunTrace &b)
{
    if (a.gcs.size() != b.gcs.size()
        || a.mutatorInstructions != b.mutatorInstructions) {
        return false;
    }
    for (std::size_t g = 0; g < a.gcs.size(); ++g) {
        const auto &x = a.gcs[g];
        const auto &y = b.gcs[g];
        if (x.major != y.major
            || x.capabilityMask != y.capabilityMask
            || x.liveObjects != y.liveObjects
            || x.bytesCopied != y.bytesCopied
            || x.bytesPromoted != y.bytesPromoted
            || x.objectsScanned != y.objectsScanned
            || x.refsVisited != y.refsVisited
            || x.cardsSearched != y.cardsSearched
            || x.bitmapCountCalls != y.bitmapCountCalls
            || x.phases.size() != y.phases.size()) {
            return false;
        }
        for (std::size_t p = 0; p < x.phases.size(); ++p) {
            const auto &px = x.phases[p];
            const auto &py = y.phases[p];
            if (px.kind != py.kind
                || px.bitmapCacheHitRate != py.bitmapCacheHitRate
                || px.bitmapCacheWritebacks != py.bitmapCacheWritebacks
                || px.threads.size() != py.threads.size()) {
                return false;
            }
            for (std::size_t t = 0; t < px.threads.size(); ++t) {
                const auto &tx = px.threads[t];
                const auto &ty = py.threads[t];
                if (tx.firstBucket != ty.firstBucket
                    || tx.bucketCount != ty.bucketCount
                    || tx.glueInstructions != ty.glueInstructions
                    || tx.glueMemAccesses != ty.glueMemAccesses) {
                    return false;
                }
            }
            if (px.buckets != py.buckets)
                return false;
        }
    }
    return true;
}

} // namespace charon::gc
