/**
 * @file
 * charon-explore: design-space exploration over the Charon
 * configuration space.
 *
 * Declares a parameter space (a preset or ad-hoc --axis flags), walks
 * it with one of three search strategies — exhaustive grid, seeded
 * random sampling, or adaptive successive halving — through the
 * experiment harness, journals every evaluated cell to a JSONL file
 * so interrupted sweeps resume without recomputation, and reports the
 * Pareto frontier of GC speedup against unit area and GC energy.
 *
 *   charon-explore --preset fig13            # Figure 13, journalled
 *   charon-explore --preset frontier --search halving
 *   charon-explore --axis units=2,4,8 --axis tsv-gbs=160,320,640
 *   charon-explore --preset smoke --pareto-csv pareto.csv
 *   charon-explore --preset fig13 --shards 4 # supervised fan-out
 *
 * Determinism: results are bit-identical at any --jobs, whether cells
 * come from the journal, the trace cache, or fresh simulation — and,
 * with --shards, at any shard count: the supervised sweep commits
 * into per-shard journals that merge back into the canonical file.
 *
 * Exit codes: 0 clean; 1 failure; 2 usage; 3 sweep completed but one
 * or more poison points were quarantined (see stderr for their keys);
 * 130 interrupted by SIGINT/SIGTERM with the journal resumable.
 */

#include <cstdio>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "dse/explorer.hh"
#include "dse/journal.hh"
#include "dse/param_space.hh"
#include "dse/presets.hh"
#include "dse/supervisor.hh"
#include "harness/options.hh"
#include "harness/result_sink.hh"

using namespace charon;

namespace
{

/** Thrown out of the halving pre-evaluate hook to carry an exit. */
struct ShardExit
{
    int code;
};

} // namespace

int
main(int argc, char **argv)
{
    harness::Options opt;
    opt.helpHeader =
        "charon-explore: sweep the Charon design space and report "
        "the\nspeedup/area/energy Pareto frontier (see EXPERIMENTS.md)";

    std::string preset;
    std::vector<std::string> axisSpecs;
    std::string workload;
    std::string backend;
    std::uint64_t heapMib = 0;
    std::string search = "grid";
    int samples = 16;
    std::uint64_t searchSeed = 7;
    int screenGcs = 4;
    int finalists = 4;
    std::string journalPath;
    bool noJournal = false;
    std::string paretoCsv;
    bool listAxes = false;
    int shards = 0;
    int shardRetries = 2;
    double shardTimeout = 120;
    double drainSec = 5;
    bool mergeShards = false;

    opt.flag("--preset", &preset,
             "canned sweep: fig13 | fig15 | frontier |\nsmoke");
    opt.flag(
        "--axis",
        [&axisSpecs](const std::string &v) {
            axisSpecs.push_back(v);
            return true;
        },
        "add a sweep axis (repeatable); names\nwith --list-axes",
        "NAME=V1,V2,...");
    opt.flag("--workload", &workload,
             "base workload of the sweep (default KM)");
    opt.flag("--heap-mib", &heapMib,
             "base max heap in MiB (0 = catalog\ndefault)");
    opt.flag("--backend", &backend,
             "base offload backend: nmp | igpu |\ncxl | host "
             "(default nmp)");
    opt.flag("--search", &search,
             "grid | random | halving (default grid)");
    opt.flag("--samples", &samples,
             "random search: points to sample\n(default 16)");
    opt.flag("--search-seed", &searchSeed,
             "random search: sampling seed (default 7)");
    opt.flag("--screen-gcs", &screenGcs,
             "halving: collections replayed per\nscreen (default 4)");
    opt.flag("--finalists", &finalists,
             "halving: survivors promoted to full\nruns (default 4)");
    opt.flag("--journal", &journalPath,
             "cell journal path (default\n<preset|sweep>.dse.jsonl)");
    opt.flag("--no-journal", &noJournal,
             "do not read or write a journal");
    opt.flag("--pareto-csv", &paretoCsv,
             "write the Pareto frontier as CSV here");
    opt.flag("--list-axes", &listAxes,
             "list the sweepable axes and exit");
    opt.flag("--shards", &shards,
             "supervised worker processes (0 =\nin-process sweep)");
    opt.flag("--shard-retries", &shardRetries,
             "restarts per shard before degrading\n(default 2)");
    opt.flag("--shard-timeout", &shardTimeout,
             "per-shard progress watchdog in\nseconds, 0 disables "
             "(default 120)");
    opt.flag("--drain-sec", &drainSec,
             "drain window after SIGINT before\nworkers are killed "
             "(default 5)");
    opt.flag("--merge-shards", &mergeShards,
             "merge shard journals into the\ncanonical journal "
             "(also canonicalizes it) and exit");
    if (!harness::parseOptions(argc, argv, opt))
        return 2;

    if (listAxes) {
        std::printf("sweepable axes (--axis NAME=V1,V2,...):\n");
        for (const auto &[name, help] : dse::ParamSpace::axisHelp())
            std::printf("  %-22s %s\n", name.c_str(), help.c_str());
        return 0;
    }

    auto usageError = [&](const std::string &msg) {
        std::fprintf(stderr, "%s: %s\n", argv[0], msg.c_str());
        return 2;
    };
    if (search != "grid" && search != "random" && search != "halving")
        return usageError("unknown --search '" + search
                          + "' (grid | random | halving)");
    const bool figPreset = preset == "fig13" || preset == "fig15";
    if (!preset.empty() && !figPreset && preset != "frontier"
        && preset != "smoke")
        return usageError("unknown --preset '" + preset
                          + "' (fig13 | fig15 | frontier | smoke)");

    if (journalPath.empty())
        journalPath =
            (preset.empty() ? std::string("sweep") : preset)
            + ".dse.jsonl";
    if (mergeShards) {
        auto shardFiles = dse::listShardJournals(journalPath);
        dse::SweepJournal::MergeStats st;
        std::string error;
        if (!dse::SweepJournal::mergeJournals(journalPath, shardFiles,
                                              &error, &st)) {
            std::fprintf(stderr, "dse: %s\n", error.c_str());
            return 1;
        }
        for (const auto &f : shardFiles)
            std::remove(f.c_str());
        std::fprintf(stderr,
                     "dse: merged %zu source(s) into %s: %zu "
                     "records, %zu duplicates, %zu torn line(s)\n",
                     st.sources, journalPath.c_str(), st.records,
                     st.duplicates, st.tornLines);
        return 0;
    }
    if (shards > 0 && noJournal)
        return usageError(
            "--shards needs a journal to commit into; drop "
            "--no-journal");
    dse::SweepJournal journal(noJournal ? std::string()
                                        : journalPath);

    harness::ExperimentRunner runner(opt.runnerConfig());
    dse::Explorer explorer(runner, journal);
    harness::Report report(opt);

    // Ctrl-C / SIGTERM stop the sweep at a batch boundary with every
    // completed cell journalled; rerunning the same command resumes.
    dse::SweepJournal::installSignalFlush();

    // Supervised fan-out: farm the cells out to worker shards that
    // commit into per-shard journals, merge those into the canonical
    // journal, then let the in-process render path below run as pure
    // journal hits — so every table and CSV is byte-identical to an
    // unsharded run.  Returns -1 to continue, else an exit code.
    bool anyQuarantined = false;
    auto shardPrerun = [&](const dse::PointCells &pc,
                           const std::vector<std::vector<std::size_t>>
                               &units,
                           int gcs) -> int {
        dse::SupervisorConfig scfg;
        scfg.shards = shards;
        scfg.restartsPerShard = shardRetries;
        scfg.progressTimeoutSec = shardTimeout;
        scfg.drainSec = drainSec;
        scfg.journalPath = journalPath;
        scfg.runner = opt.runnerConfig();
        scfg.screenGcs = gcs;
        auto res = dse::runShardedSweep(pc.cells, pc.keys, units,
                                        scfg);
        for (const auto &key : res.quarantinedKeys)
            std::fprintf(stderr, "dse: quarantined poison point %s\n",
                         key.c_str());
        // Quarantined units become session-local failure records —
        // memory only, never journalled — so the render pass reports
        // them without re-running them, and a later resume retries.
        for (std::size_t u : res.quarantined) {
            for (std::size_t i : units[u]) {
                dse::JournalRecord rec;
                rec.key = pc.keys[i];
                rec.ok = false;
                rec.error = "quarantined poison point (killed a "
                            "worker twice)";
                journal.seedRecord(rec);
            }
        }
        // Pull the merged shard results into this process's journal
        // memory; committed cells then hit without re-simulation.
        journal.seedFrom(journalPath);
        if (res.interrupted) {
            std::fprintf(stderr,
                         "dse: interrupted; completed cells are in "
                         "%s — re-run the same command to resume\n",
                         journalPath.c_str());
            return 130;
        }
        if (!res.ok) {
            std::fprintf(stderr, "dse: sharded sweep failed: %s\n",
                         res.error.c_str());
            return 1;
        }
        std::fprintf(stderr,
                     "dse: shards: %zu units (%zu precommitted, %zu "
                     "committed), %zu restarts, %zu crashes, %zu "
                     "re-evaluated cells, %zu quarantined\n",
                     res.unitsTotal, res.unitsPrecommitted,
                     res.unitsCommitted, res.restarts,
                     res.workerCrashes, res.reEvaluatedCells,
                     res.quarantined.size());
        if (!res.quarantined.empty())
            anyQuarantined = true;
        return -1;
    };
    // One unit per design point (its two cells live or die together);
    // preset cells are independent, so one unit per cell.
    auto pointUnits = [](std::size_t npoints) {
        std::vector<std::vector<std::size_t>> units(npoints);
        for (std::size_t p = 0; p < npoints; ++p)
            units[p] = {p * 2, p * 2 + 1};
        return units;
    };
    auto cellUnits = [](std::size_t ncells) {
        std::vector<std::vector<std::size_t>> units(ncells);
        for (std::size_t c = 0; c < ncells; ++c)
            units[c] = {c};
        return units;
    };

    try {
        if (figPreset) {
            // The figure presets replicate the bench binaries' cell
            // grids and tables exactly (CI diffs the outputs), adding
            // only the journal underneath.
            if (shards > 0) {
                auto pc = preset == "fig13" ? dse::fig13Cells()
                                            : dse::fig15Cells();
                int rc = shardPrerun(pc, cellUnits(pc.cells.size()),
                                     0);
                if (rc >= 0)
                    return rc;
            }
            if (preset == "fig13")
                dse::runFig13Preset(explorer, report);
            else
                dse::runFig15Preset(explorer, report);
        } else {
            dse::ParamSpace space;
            std::string error;
            if (preset == "frontier")
                space = dse::frontierSpace();
            else if (preset == "smoke")
                space = dse::smokeSpace();
            if (!workload.empty()
                && !dse::applyAxisValue(space.base, "workload",
                                        workload, &error))
                return usageError(error);
            if (heapMib != 0
                && !dse::applyAxisValue(space.base, "heap-mib",
                                        std::to_string(heapMib),
                                        &error))
                return usageError(error);
            if (!backend.empty()
                && !dse::applyAxisValue(space.base, "backend",
                                        backend, &error))
                return usageError(error);
            for (const auto &spec : axisSpecs)
                if (!space.axisSpec(spec, &error))
                    return usageError(error);
            if (space.axes().empty())
                return usageError(
                    "nothing to sweep: give --axis flags or a "
                    "--preset (--list-axes shows the axes)");

            std::vector<dse::DsePoint> points =
                search == "random"
                    ? space.sample(static_cast<std::size_t>(
                                       samples > 0 ? samples : 1),
                                   searchSeed)
                    : space.enumerate();
            std::fprintf(stderr,
                         "dse: %zu of %zu points, search=%s\n",
                         points.size(), space.size(), search.c_str());

            std::vector<dse::PointEval> evals;
            if (search == "halving") {
                std::function<void(const std::vector<dse::DsePoint> &,
                                   int)>
                    preEvaluate;
                if (shards > 0) {
                    // Halving stays adaptive — survivors depend on
                    // global results — but each round's cell work is
                    // sharded before the in-process evaluate sees it.
                    preEvaluate =
                        [&](const std::vector<dse::DsePoint> &round,
                            int gcs) {
                            auto pc = dse::pointCells(round, gcs);
                            int rc = shardPrerun(
                                pc, pointUnits(round.size()), gcs);
                            if (rc >= 0)
                                throw ShardExit{rc};
                        };
                }
                evals = dse::successiveHalving(
                    explorer, std::move(points), screenGcs,
                    static_cast<std::size_t>(finalists > 0 ? finalists
                                                           : 1),
                    preEvaluate);
            } else {
                if (shards > 0) {
                    auto pc = dse::pointCells(points, 0);
                    int rc =
                        shardPrerun(pc, pointUnits(points.size()), 0);
                    if (rc >= 0)
                        return rc;
                }
                evals = explorer.evaluate(points);
            }

            auto summary = dse::summarize(evals);
            dse::reportSweep(report, evals, summary);
            if (!paretoCsv.empty()) {
                if (!dse::writeParetoCsv(paretoCsv, evals, summary,
                                         &error)) {
                    std::fprintf(stderr, "dse: %s\n", error.c_str());
                    return 1;
                }
                std::fprintf(stderr,
                             "dse: wrote Pareto frontier (%zu "
                             "points) to %s\n",
                             summary.frontier.size(),
                             paretoCsv.c_str());
            }
        }
    } catch (const dse::SweepInterrupted &) {
        std::fprintf(stderr,
                     "dse: interrupted; completed cells are in %s — "
                     "re-run the same command to resume\n",
                     journal.enabled() ? journal.path().c_str()
                                       : "(no journal)");
        return 130;
    } catch (const ShardExit &e) {
        // A supervised halving round was interrupted or failed; the
        // exit code (130 preserved under shard fan-out) is already
        // explained on stderr.
        return e.code;
    }

    std::fprintf(stderr,
                 "dse: journal %s: %zu hits, %zu incremental, "
                 "%zu evaluated\n",
                 journal.enabled() ? journal.path().c_str()
                                   : "(disabled)",
                 explorer.journalHits(), explorer.incrementalHits(),
                 explorer.evaluatedCells());
    harness::finishTimeline(runner, opt);
    int rc = report.finish(std::cout);
    // Exit 3: the sweep completed but poison points were quarantined
    // (their failure rows are in the report).  Distinct from both a
    // clean 0 and a plain failure 1 so scripts can continue a mostly
    // good sweep while flagging the quarantine list.
    if (anyQuarantined)
        return 3;
    return rc;
}
