/**
 * @file
 * Table 1: applicability of the Charon primitives to the HotSpot
 * collector families — demonstrated by actually running each
 * collector in this repository and checking which primitives its
 * trace contains.
 *
 *  - ParallelScavenge (our Scavenge + MarkCompact): all three.
 *  - G1 (our region-based G1Heap + G1Collector): Copy and Scan&Push
 *    in evacuation, Bitmap Count in the per-region liveness pass
 *    after marking.
 *  - CMS-style mark-sweep (our MarkSweep + a young scavenge): Copy
 *    and Scan&Push, but never Bitmap Count (no compaction).
 *
 * These are functional-only cells (replay = false): the deliverable
 * is the trace itself, not a timing.  The G1 demo and the CMS
 * pipeline assemble bespoke collector stacks, so they run through the
 * harness's customRun escape hatch and are never cached.
 */

#include <deque>

#include "bench_common.hh"

#include "gc/g1_collector.hh"
#include "gc/mark_sweep.hh"
#include "gc/recorder.hh"
#include "gc/scavenge.hh"
#include "sim/rng.hh"
#include "workload/mutator.hh"

using namespace charon;
using namespace charon::bench;
using gc::PrimKind;

namespace
{

struct Usage
{
    bool copy = false;
    bool search = false;
    bool scanPush = false;
    bool bitmapCount = false;
};

Usage
scan(const gc::RunTrace &trace)
{
    Usage u;
    for (const auto &gc : trace.gcs) {
        u.copy |= gc.totalInvocations(PrimKind::Copy) > 0;
        u.search |= gc.totalInvocations(PrimKind::Search) > 0;
        u.scanPush |= gc.totalInvocations(PrimKind::ScanPush) > 0;
        u.bitmapCount |= gc.totalInvocations(PrimKind::BitmapCount) > 0;
    }
    return u;
}

const char *
mark(bool used)
{
    return used ? "yes" : "no";
}

/** G1 through young, mark, and mixed cycles on a graph workload. */
harness::FunctionalRun
g1Demo()
{
    heap::KlassTable klasses;
    auto node = klasses.defineInstance("Node", 2, 2);
    heap::G1Config cfg;
    cfg.heapBytes = 32 * sim::kMiB;
    cfg.regionBytes = 512 * 1024;
    heap::G1Heap heap(cfg, klasses);
    gc::TraceRecorder rec(8,
                          workload::chooseCubeShift(heap.vaLimit()));
    gc::G1Collector g1(heap, rec);
    sim::Rng rng(5);
    std::deque<std::size_t> window;
    for (int i = 0; i < 400000; ++i) {
        mem::Addr obj = heap.allocate(node);
        if (obj == 0) {
            if (g1.collectOnAllocationFailure()
                == gc::G1Outcome::OutOfMemory) {
                break;
            }
            obj = heap.allocate(node);
        }
        if (obj != 0 && rng.chance(0.4)) {
            heap.roots().push_back(obj);
            window.push_back(heap.roots().size() - 1);
            if (window.size() > 60000) {
                heap.roots()[window.front()] = 0;
                window.pop_front();
            }
        }
    }
    // Complete the G1 cycle explicitly (System.gc()-style): marking
    // computes per-region liveness with Bitmap Count, then a mixed
    // collection evacuates the sparse old regions.
    g1.concurrentMark();
    g1.mixedCollect();

    harness::FunctionalRun out;
    out.trace = rec.run();
    return out;
}

/** CMS-style: young scavenges plus old mark-sweep, no compactor. */
harness::FunctionalRun
cmsDemo()
{
    const auto &params = workload::findWorkload("KM");
    workload::Mutator mut(params, params.heapBytes, 1);
    // Build some state with the normal mutator, then run the
    // non-moving old-generation collector on top.
    mut.run();
    gc::MarkSweep ms(mut.heap(), mut.recorder());
    ms.collect();
    // Only inspect the mark-sweep GC (the last trace entry) plus one
    // scavenge for the young generation.
    gc::RunTrace cms;
    cms.gcs.push_back(mut.recorder().run().gcs.back());
    gc::Scavenge sc(mut.heap(), mut.recorder());
    sc.collect();
    cms.gcs.push_back(mut.recorder().run().gcs.back());

    harness::FunctionalRun out;
    out.trace = std::move(cms);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    auto opt = harness::standardOptions(argc, argv);
    ExperimentRunner runner(opt.runnerConfig());
    Report report(opt);

    // ParallelScavenge rides the normal keyed path (and so shares the
    // cached KM trace with the figure benches); the other two are
    // bespoke pipelines.
    std::vector<Cell> cells;
    {
        Cell ps = cell("KM", sim::PlatformKind::HostDdr4);
        ps.replay = false;
        ps.label = "ParallelScavenge (KM)";
        cells.push_back(ps);
    }
    {
        Cell g1;
        g1.replay = false;
        g1.customRun = g1Demo;
        g1.label = "G1 demo";
        cells.push_back(g1);
    }
    {
        Cell cms;
        cms.replay = false;
        cms.customRun = cmsDemo;
        cms.label = "CMS demo (mark-sweep)";
        cells.push_back(cms);
    }
    auto results = runner.run(cells);

    auto &table = report.table(
        "table1",
        "Table 1: primitive applicability, demonstrated by running "
        "each collector",
        {"collector", "Copy/Search", "Scan&Push", "Bitmap Count",
         "remarks"});
    Usage cms_usage;
    bool cms_ok = false;
    const char *names[] = {"ParallelScavenge", "G1",
                           "CMS (mark-sweep)"};
    const char *remarks[] = {"high throughput", "low latency",
                             "no compaction"};
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (!report.checkCell(cells[i], results[i]))
            continue;
        Usage u = scan(results[i].run->trace);
        if (i == 0) {
            table.addRow({names[i], mark(u.copy && u.search),
                          mark(u.scanPush), mark(u.bitmapCount),
                          remarks[i]});
        } else {
            table.addRow({names[i], mark(u.copy), mark(u.scanPush),
                          mark(u.bitmapCount), remarks[i]});
        }
        if (i == 2) {
            cms_usage = u;
            cms_ok = true;
        }
    }
    table.note("\npaper Table 1: ParallelScavenge uses all three; G1 "
               "uses all three (Bitmap Count with a minor fix); CMS "
               "uses Copy/Search and Scan&Push but not Bitmap Count");
    report.addRollups(cells, results);
    harness::finishTimeline(runner, opt);
    int rc = report.finish(std::cout);
    // The load-bearing check: a compactor-free collector never calls
    // Bitmap Count.
    if (cms_ok && cms_usage.bitmapCount) {
        std::cerr << "ERROR: mark-sweep produced Bitmap Count calls\n";
        return 1;
    }
    return rc;
}
