/**
 * @file
 * Figure 17 + Section 5.3: GC energy consumption of Charon relative
 * to the host-only platforms, with the component split and average
 * accelerator power.
 *
 * Paper shape: Charon saves 60.7% of GC energy versus the DDR4 host
 * and 51.6% versus the HMC host; the accelerator's own structures
 * contribute a negligible share; average Charon power is ~3 W
 * (max 4.51 W on ALS), far under passive-cooling limits.
 */

#include <sstream>

#include "bench_common.hh"

#include "accel/area_energy.hh"
#include "sim/stats.hh"

using namespace charon;
using namespace charon::bench;

int
main(int argc, char **argv)
{
    auto opt = harness::standardOptions(argc, argv);
    ExperimentRunner runner(opt.runnerConfig());
    Report report(opt);

    const sim::PlatformKind kinds[] = {sim::PlatformKind::HostDdr4,
                                       sim::PlatformKind::HostHmc,
                                       sim::PlatformKind::CharonNmp};
    const auto workloads = allWorkloads();
    std::vector<Cell> cells;
    for (const auto &name : workloads)
        for (auto kind : kinds)
            cells.push_back(cell(name, kind));
    auto results = runner.run(cells);

    auto &table = report.table(
        "fig17",
        "Figure 17: GC energy, normalized to the host + DDR4 baseline",
        {"workload", "vs DDR4", "vs HMC", "host J", "DRAM J",
         "units J", "unit share", "avg unit W"});
    std::vector<double> vs_ddr4, vs_hmc;
    double max_power = 0;
    std::string max_power_wl;
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        std::size_t i = w * 3;
        bool ok = true;
        for (std::size_t k = 0; k < 3; ++k)
            ok &= report.checkCell(cells[i + k], results[i + k]);
        if (!ok)
            continue;
        const auto &ddr4 = results[i].timing;
        const auto &hmc = results[i + 1].timing;
        const auto &charon = results[i + 2].timing;

        vs_ddr4.push_back(charon.totalEnergyJ() / ddr4.totalEnergyJ());
        vs_hmc.push_back(charon.totalEnergyJ() / hmc.totalEnergyJ());
        double unit_power =
            charon.gcSeconds > 0
                ? charon.unitEnergyJ / charon.gcSeconds
                : 0;
        if (unit_power > max_power) {
            max_power = unit_power;
            max_power_wl = workloads[w];
        }
        table.addRow(
            {workloads[w],
             report::num(100 * vs_ddr4.back(), 1) + "%",
             report::num(100 * vs_hmc.back(), 1) + "%",
             report::num(charon.hostEnergyJ, 2),
             report::num(charon.dramEnergyJ, 2),
             report::num(charon.unitEnergyJ, 3),
             report::percent(charon.unitEnergyJ,
                             charon.totalEnergyJ()),
             report::num(unit_power, 2)});
    }
    table.addRow({"geomean",
                  report::num(100 * sim::geomean(vs_ddr4), 1) + "%",
                  report::num(100 * sim::geomean(vs_hmc), 1) + "%", "-",
                  "-", "-", "-", "-"});

    std::ostringstream note;
    note << "\nsavings: "
         << report::num(100 * (1 - sim::geomean(vs_ddr4)), 1)
         << "% vs DDR4 (paper: 60.7%), "
         << report::num(100 * (1 - sim::geomean(vs_hmc)), 1)
         << "% vs HMC (paper: 51.6%)\n"
         << "max accelerator power: " << report::num(max_power, 2)
         << " W on " << max_power_wl
         << " (paper: 4.51 W on ALS); power density "
         << report::num(
                accel::PowerModel::powerDensityMwPerMm2(max_power), 1)
         << " mW/mm^2, passive-heatsink limit "
         << report::num(accel::PowerModel::kPassiveHeatsinkMwPerMm2, 0)
         << " mW/mm^2";
    table.note(note.str());
    report.addRollups(cells, results);
    harness::finishTimeline(runner, opt);
    return report.finish(std::cout);
}
