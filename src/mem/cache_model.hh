/**
 * @file
 * A functional set-associative cache model with LRU replacement.
 *
 * Used for Charon's bitmap cache (8 KB, 8-way, 32 B blocks,
 * write-back — Section 4.5) and reusable for any structure that needs
 * hit/miss accounting over an access stream.  Purely functional: it
 * tracks tags and dirty bits, not data.
 */

#ifndef CHARON_MEM_CACHE_MODEL_HH
#define CHARON_MEM_CACHE_MODEL_HH

#include <cstdint>
#include <vector>

#include "mem/addr.hh"

namespace charon::mem
{

/**
 * Tag-only set-associative cache with true-LRU replacement.
 */
class CacheModel
{
  public:
    /**
     * @param size_bytes total capacity
     * @param assoc ways per set
     * @param block_bytes line size (power of two)
     */
    CacheModel(std::uint64_t size_bytes, int assoc, int block_bytes);

    /**
     * Access @p addr; allocate on miss.
     * @param write marks the line dirty on hit/fill
     * @retval true hit
     */
    bool access(Addr addr, bool write);

    /** Probe without allocating or updating LRU. */
    bool contains(Addr addr) const;

    /**
     * Invalidate everything.
     * @return number of dirty lines written back
     */
    std::uint64_t flush();

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t writebacks() const { return writebacks_; }

    double
    hitRate() const
    {
        std::uint64_t total = hits_ + misses_;
        return total ? static_cast<double>(hits_)
                           / static_cast<double>(total)
                     : 0.0;
    }

    void
    resetStats()
    {
        hits_ = 0;
        misses_ = 0;
        writebacks_ = 0;
    }

    int blockBytes() const { return blockBytes_; }
    std::uint64_t sets() const { return numSets_; }

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lru = 0; // higher == more recent
    };

    Line *findLine(Addr tag, std::uint64_t set);
    const Line *findLine(Addr tag, std::uint64_t set) const;

    int assoc_;
    int blockBytes_;
    std::uint64_t numSets_;
    std::uint64_t lruClock_ = 0;
    std::vector<Line> lines_; // numSets x assoc

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t writebacks_ = 0;
};

} // namespace charon::mem

#endif // CHARON_MEM_CACHE_MODEL_HH
