/**
 * @file
 * A small discrete-event simulation kernel.
 *
 * Events are callbacks scheduled at absolute ticks.  Same-tick events
 * fire in FIFO (insertion) order, which keeps every run bit-for-bit
 * deterministic.  The queue is single-threaded by design: all
 * simulated concurrency (GC threads, Charon units, memory channels)
 * is expressed through event interleaving, never host threads.
 *
 * Storage is an indexed binary min-heap of POD nodes ordered by
 * (when, seq); the callbacks live in a side slab reached through a
 * 4-byte slot index so sift operations move 24-byte nodes instead of
 * 100+-byte closures.  The replay population is small (tens of
 * pending events), which makes an O(log n) heap cheaper in practice
 * than a calendar queue whose min-location must scan bucket windows.
 * Cancellation is a lazy tombstone: descheduled nodes stay in the
 * heap and are peeled when they surface (with a rebuild if tombstones
 * ever dominate).
 */

#ifndef CHARON_SIM_EVENT_QUEUE_HH
#define CHARON_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/callback.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace charon::sim
{

/** Opaque handle identifying a scheduled event (for cancellation). */
using EventId = std::uint64_t;

/**
 * Deterministic single-threaded event queue.
 *
 * Typical use:
 * @code
 *   EventQueue eq;
 *   eq.schedule(100, [&]{ ... });
 *   eq.run();
 * @endcode
 */
class EventQueue
{
  public:
    /**
     * Event callback.  The inline budget covers the simulator's
     * common wrappers (a continuation plus a few scalars) without a
     * heap allocation per scheduled event.
     */
    using Callback = Function<void(), 104>;

    EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p fn at absolute time @p when.
     *
     * Defined inline: schedule/deschedule are the simulator's hottest
     * entry points (every flow reallocation reschedules a timer) and
     * the callers live in other translation units.
     *
     * @pre when >= now() (scheduling in the past is a simulator bug).
     * @return handle usable with cancellation via deschedule().
     */
    EventId
    schedule(Tick when, Callback fn)
    {
        CHARON_ASSERT(when >= now_,
                      "scheduling at %llu before now %llu",
                      static_cast<unsigned long long>(when),
                      static_cast<unsigned long long>(now_));
        EventId id = nextId_++;
        state_.push_back(Pending);
        ++pending_;
        std::uint32_t slot;
        if (!freeSlots_.empty()) {
            slot = freeSlots_.back();
            freeSlots_.pop_back();
        } else {
            slot = static_cast<std::uint32_t>(slotCount_);
            if ((slotCount_ & kChunkMask) == 0)
                growSlab();
            ++slotCount_;
        }
        Slot &s = slotAt(slot);
        s.fn = std::move(fn);
        s.id = id;
        heap_.push_back(Node{when, nextSeq_++, slot});
        siftUp(heap_.size() - 1);
        return id;
    }

    /** Schedule @p fn @p delay ticks from now. */
    EventId
    scheduleIn(Tick delay, Callback fn)
    {
        return schedule(now_ + delay, std::move(fn));
    }

    /**
     * Cancel a previously scheduled event.
     *
     * An id is cancellable iff it is still pending; its node stays
     * behind as a tombstone and is peeled when it reaches the root
     * (or dropped wholesale by compact()).
     *
     * @retval true the event was pending and is now cancelled.
     * @retval false the event already fired or was already cancelled.
     */
    bool
    deschedule(EventId id)
    {
        if (id == 0 || id >= nextId_ || state_[id - 1] != Pending)
            return false;
        state_[id - 1] = Cancelled;
        --pending_;
        if (heap_.size() > 64 && heap_.size() > 4 * pending_)
            compact();
        return true;
    }

    /** Number of pending (non-cancelled) events. */
    std::size_t pendingEvents() const { return pending_; }

    /** True when no events remain. */
    bool empty() const { return pending_ == 0; }

    /** Events executed over the queue's lifetime (perf metric). */
    std::uint64_t executedEvents() const { return executed_; }

    /**
     * Run until the queue drains or @p until is reached (whichever is
     * first). Time stops at the last executed event (or @p until).
     *
     * @return number of events executed.
     */
    std::uint64_t run(Tick until = maxTick);

    /**
     * Execute exactly one event if any is pending.
     *
     * @retval true an event was executed.
     */
    bool step();

    /**
     * Jump the clock forward to @p when without executing anything.
     *
     * Used by batched replay kernels that simulate a span of events
     * outside the queue and then need the queue's clock to agree with
     * the scalar path before the next phase schedules against it.
     *
     * @pre when >= now() and no event pending before @p when.
     */
    void advanceTo(Tick when);

  private:
    /** Heap node: everything sift operations need, nothing more. */
    struct Node
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t slot; ///< index into slots_
    };

    enum State : std::uint8_t
    {
        Pending,
        Fired,
        Cancelled,
    };

    /** Slab entry owning the callback for one scheduled event. */
    struct Slot
    {
        Callback fn;
        EventId id = 0;
    };

    /**
     * Slots live in fixed-size chunks so a schedule() issued from a
     * running callback can grow the slab without relocating the slot
     * that callback is executing from.
     */
    static constexpr std::uint32_t kChunkShift = 9;
    static constexpr std::uint32_t kChunkMask = (1u << kChunkShift) - 1;

    static bool
    earlier(const Node &a, const Node &b)
    {
        return a.when != b.when ? a.when < b.when : a.seq < b.seq;
    }

    /**
     * Peel tombstones off the root until a pending event surfaces.
     * @retval false no pending events.
     */
    bool findMin();
    /** Remove the root node and restore the heap property. */
    void popTop();
    /** Drop all tombstones and re-heapify (order-preserving). */
    void compact();

    void
    siftUp(std::size_t i)
    {
        Node n = heap_[i];
        while (i > 0) {
            std::size_t parent = (i - 1) / 2;
            if (!earlier(n, heap_[parent]))
                break;
            heap_[i] = heap_[parent];
            i = parent;
        }
        heap_[i] = n;
    }

    void
    siftDown(std::size_t i)
    {
        const std::size_t n = heap_.size();
        Node v = heap_[i];
        for (;;) {
            std::size_t child = 2 * i + 1;
            if (child >= n)
                break;
            if (child + 1 < n && earlier(heap_[child + 1], heap_[child]))
                ++child;
            if (!earlier(heap_[child], v))
                break;
            heap_[i] = heap_[child];
            i = child;
        }
        heap_[i] = v;
    }

    Slot &
    slotAt(std::uint32_t slot)
    {
        return chunks_[slot >> kChunkShift][slot & kChunkMask];
    }

    void growSlab();

    void
    releaseSlot(std::uint32_t slot)
    {
        Slot &s = slotAt(slot);
        s.fn = Callback();
        s.id = 0;
        freeSlots_.push_back(slot);
    }

    Tick now_ = 0;
    std::uint64_t executed_ = 0;
    std::uint64_t nextSeq_ = 0;
    EventId nextId_ = 1;
    std::size_t pending_ = 0;

    std::vector<Node> heap_;
    std::vector<std::unique_ptr<Slot[]>> chunks_;
    std::size_t slotCount_ = 0;
    std::vector<std::uint32_t> freeSlots_;
    std::vector<std::uint8_t> state_; ///< per-id lifecycle, id-indexed
};

} // namespace charon::sim

#endif // CHARON_SIM_EVENT_QUEUE_HH
