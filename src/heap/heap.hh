/**
 * @file
 * The managed heap: a scaled-down but functionally faithful model of
 * HotSpot's generational heap under the ParallelScavenge collector.
 *
 * Layout (ascending virtual addresses):
 *
 *   [ Old generation | Eden | Survivor A | Survivor B ]
 *
 * followed (at distinct VAs, storage owned by the respective helper
 * objects) by the begin/end mark bitmaps and the card table, so the
 * timing layer can attribute metadata traffic to the right cubes.
 *
 * Objects are real: allocation writes headers into a backing arena,
 * reference fields hold real addresses, and the collectors genuinely
 * move objects and rewrite references.  All functional invariants
 * (reachability preservation, no dangling pointers) are checked by
 * tests against this ground truth.
 */

#ifndef CHARON_HEAP_HEAP_HH
#define CHARON_HEAP_HEAP_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "heap/arena.hh"
#include "heap/bitmap.hh"
#include "heap/card_table.hh"
#include "heap/klass.hh"
#include "mem/addr.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace charon::heap
{

/** The spaces of the generational heap. */
enum class Space { Old, Eden, From, To, None };

/** Printable space name. */
const char *spaceName(Space space);

/** Heap geometry. */
struct HeapConfig
{
    /** Total heap size (Old + Young). */
    std::uint64_t heapBytes = 256 * sim::kMiB;
    /** Young generation fraction (HotSpot default policy Young:Old=1:2). */
    double youngFraction = 1.0 / 3.0;
    /** Eden : Survivor sizing, HotSpot SurvivorRatio=8 -> 8:1:1. */
    int survivorRatio = 8;
    /** Base VA of the heap (nonzero so that 0 stays null). */
    mem::Addr base = 0x10000;
    /** Tenuring threshold: survivals before promotion to Old. */
    int tenuringThreshold = 2;
};

/**
 * One contiguous allocation region with a bump pointer.
 */
struct Region
{
    mem::Addr start = 0;
    mem::Addr end = 0;
    mem::Addr top = 0;

    std::uint64_t capacity() const { return end - start; }
    std::uint64_t used() const { return top - start; }
    std::uint64_t free() const { return end - top; }
    bool contains(mem::Addr a) const { return a >= start && a < end; }
    void reset() { top = start; }
};

/**
 * The managed heap.
 */
class ManagedHeap
{
  public:
    ManagedHeap(const HeapConfig &cfg, const KlassTable &klasses);

    const HeapConfig &config() const { return cfg_; }
    const KlassTable &klasses() const { return klasses_; }

    // ------------------------------------------------------------------
    // Geometry

    Region &region(Space space);
    const Region &region(Space space) const;
    Space spaceOf(mem::Addr addr) const;
    bool inYoung(mem::Addr addr) const;
    bool inOld(mem::Addr addr) const { return old_.contains(addr); }
    /** [base, base+heapBytes) plus metadata: total VA span. */
    mem::Addr vaLimit() const { return vaLimit_; }
    std::uint64_t heapBytes() const { return cfg_.heapBytes; }
    mem::Addr base() const { return cfg_.base; }

    // ------------------------------------------------------------------
    // Allocation

    /**
     * Allocate in Eden (mutator fast path).
     * @param klass class of the new object
     * @param array_len element count for array klasses (ignored for
     *        instance kinds)
     * @return object address, or 0 when Eden is exhausted (caller
     *         must trigger a GC)
     */
    mem::Addr allocEden(KlassId klass, std::uint64_t array_len = 0);

    /** Allocate in the To survivor space (minor-GC copy target). */
    mem::Addr allocTo(std::uint64_t size_words);

    /** Allocate in the Old generation (promotion / direct old alloc). */
    mem::Addr allocOld(std::uint64_t size_words);

    /**
     * Allocate an object with a valid header directly in the Old
     * generation (humongous-allocation path; also used by tests).
     * @return address or 0 when Old is full
     */
    mem::Addr allocOldObject(KlassId klass, std::uint64_t array_len = 0);

    /** Size in words an object of @p klass with @p array_len needs. */
    std::uint64_t sizeWordsFor(KlassId klass,
                               std::uint64_t array_len) const;

    /**
     * Fault injection: after @p after further successful GC-internal
     * allocations (allocTo / allocOld), fail the next @p count calls
     * with 0 even though space remains — the deterministic trigger
     * for the collectors' promotion-failure recovery path.  The
     * mutator-facing paths (allocEden, allocOldObject) are unaffected.
     */
    void setGcAllocFault(std::uint64_t after, std::uint64_t count);

    // ------------------------------------------------------------------
    // Object access

    KlassId klassOf(mem::Addr obj) const;
    std::uint64_t sizeWords(mem::Addr obj) const;
    std::uint64_t sizeBytes(mem::Addr obj) const { return sizeWords(obj) * 8; }

    /** Array length (array klasses only). */
    std::uint64_t arrayLength(mem::Addr obj) const;

    /** Number of reference slots in @p obj. */
    std::uint64_t refCount(mem::Addr obj) const;

    /** VA of reference slot @p i of @p obj. */
    mem::Addr refSlotAddr(mem::Addr obj, std::uint64_t i) const;

    /** Read reference slot @p i. */
    mem::Addr refAt(mem::Addr obj, std::uint64_t i) const;

    /**
     * Mutator reference store: writes slot @p i of @p obj and dirties
     * the holder's card when @p obj is in the Old generation.
     */
    void storeRef(mem::Addr obj, std::uint64_t i, mem::Addr target);

    /** GC-internal slot write: no card marking. */
    void setRefRaw(mem::Addr obj, std::uint64_t i, mem::Addr target);

    /** Raw 64-bit load/store at a heap VA (slots, payload). */
    std::uint64_t load64(mem::Addr addr) const;
    void store64(mem::Addr addr, std::uint64_t value);

    /**
     * Move @p bytes from @p src to @p dst inside the heap
     * (memmove semantics: overlapping leftward moves are safe).
     */
    void copyObjectBytes(mem::Addr dst, mem::Addr src,
                         std::uint64_t bytes);

    // ------------------------------------------------------------------
    // Mark word: age and forwarding (minor GC)

    int age(mem::Addr obj) const;
    void setAge(mem::Addr obj, int age);
    bool isForwarded(mem::Addr obj) const;
    mem::Addr forwardee(mem::Addr obj) const;
    void setForwarding(mem::Addr obj, mem::Addr to);
    void clearForwarding(mem::Addr obj);

    // ------------------------------------------------------------------
    // Iteration

    /** Visit every object currently allocated in @p space, in order. */
    void forEachObject(Space space,
                       const std::function<void(mem::Addr)> &fn) const;

    /** Visit the VA of every reference slot of @p obj. */
    void forEachRefSlot(mem::Addr obj,
                        const std::function<void(mem::Addr)> &fn) const;

    /**
     * First object whose extent overlaps old-generation card
     * @p card_index, or 0 when the card is past the allocated top.
     * Uses the block-offset table maintained at old allocation.
     */
    mem::Addr firstObjectOnCard(std::uint64_t card_index) const;

    /** Rebuild the block-offset table (after compaction). */
    void rebuildBlockOffsets();

    // ------------------------------------------------------------------
    // GC support structures

    CardTable &cardTable() { return cards_; }
    const CardTable &cardTable() const { return cards_; }
    MarkBitmap &begBitmap() { return begMap_; }
    MarkBitmap &endBitmap() { return endMap_; }
    const MarkBitmap &begBitmap() const { return begMap_; }
    const MarkBitmap &endBitmap() const { return endMap_; }

    /** Root set (simulated stack + globals); owned by the mutator. */
    std::vector<mem::Addr> &roots() { return roots_; }
    const std::vector<mem::Addr> &roots() const { return roots_; }

    /** Reset a space's bump pointer (post-GC reclamation). */
    void resetSpace(Space space);

    /** Swap the From and To survivor spaces. */
    void swapSurvivors();

    /** Set Old's bump pointer (after compaction). */
    void setOldTop(mem::Addr top);

    // ------------------------------------------------------------------
    // Verification & stats

    /** Walk a space checking header sanity; panics on corruption. */
    void verifySpace(Space space) const;

    /** Count live (allocated) objects in a space. */
    std::uint64_t objectCount(Space space) const;

    sim::StatGroup &stats() { return stats_; }
    double bytesAllocated() const { return bytesAllocated_.value(); }

    /** The underlying object model (shared with other heap shapes). */
    ObjectArena &arena() { return arena_; }
    const ObjectArena &arena() const { return arena_; }

  private:
    mem::Addr allocIn(Region &region, std::uint64_t size_words);
    mem::Addr allocOldRaw(std::uint64_t size_words);
    void noteOldAllocation(mem::Addr obj);
    bool gcAllocFaultFires();

    HeapConfig cfg_;
    const KlassTable &klasses_;
    ObjectArena arena_;

    Region old_, eden_, from_, to_;
    mem::Addr vaLimit_ = 0;

    CardTable cards_;
    MarkBitmap begMap_;
    MarkBitmap endMap_;

    /** Block-offset table: first object starting in each old card. */
    std::vector<mem::Addr> firstObjInCard_;

    std::vector<mem::Addr> roots_;

    bool gcFaultArmed_ = false;
    std::uint64_t gcFaultAfter_ = 0;
    std::uint64_t gcFaultRemaining_ = 0;

    sim::StatGroup stats_;
    sim::Counter bytesAllocated_;
    sim::Counter objectsAllocated_;
    sim::Counter allocFailures_;
};

} // namespace charon::heap

#endif // CHARON_HEAP_HEAP_HH
