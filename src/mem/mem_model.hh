/**
 * @file
 * The port abstraction a memory *requester* (host core model or Charon
 * processing unit) uses to talk to a memory system, independent of
 * whether that system is DDR4 or stacked HMC.
 */

#ifndef CHARON_MEM_MEM_MODEL_HH
#define CHARON_MEM_MEM_MODEL_HH

#include "mem/request.hh"
#include "sim/types.hh"

namespace charon::mem
{

/**
 * A point of attachment to some memory system.
 *
 * stream() begins a transfer at the current event time and invokes the
 * callback at completion; latency() reports the average round-trip
 * latency a single access of the given pattern would see, which
 * requesters use to derive their MLP-limited issue rate
 * (rate = inflight x granularity / latency).
 */
class MemPort
{
  public:
    virtual ~MemPort() = default;

    /** Begin a stream transfer; @p done fires at the completion tick. */
    virtual void stream(const StreamRequest &req, StreamCallback done) = 0;

    /** Average access round-trip latency in ticks for @p pattern. */
    virtual sim::Tick latency(AccessPattern pattern) const = 0;

    /** Peak deliverable bandwidth through this port, bytes/tick. */
    virtual double peakRate() const = 0;

    /**
     * Highest per-request granularity this port supports, bytes
     * (64 for a cache-line host port, 256 for HMC).
     */
    virtual int maxGranularity() const = 0;

    /**
     * Efficiency factor (0..1] applied to a stream of the given
     * pattern: the fraction of peak the DRAM can sustain for it.
     */
    virtual double efficiency(AccessPattern pattern) const = 0;
};

} // namespace charon::mem

#endif // CHARON_MEM_MEM_MODEL_HH
