#include "logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace charon::sim
{

namespace
{
// Atomic so the harness can replay platform cells on a thread pool
// while any thread adjusts verbosity; relaxed ordering suffices for a
// monotonic filter knob.
std::atomic<LogLevel> g_level{LogLevel::Normal};
} // namespace

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

std::string
vformat(const char *fmt, std::va_list ap)
{
    std::va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    if (n < 0) {
        va_end(ap2);
        return "<format error>";
    }
    std::vector<char> buf(static_cast<std::size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<std::size_t>(n));
}

std::string
format(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    return s;
}

void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", s.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s\n", s.c_str());
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", s.c_str());
}

void
inform(const char *fmt, ...)
{
    if (g_level == LogLevel::Quiet)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "info: %s\n", s.c_str());
}

void
trace(const char *fmt, ...)
{
    if (g_level != LogLevel::Verbose)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "trace: %s\n", s.c_str());
}

} // namespace charon::sim
