/**
 * @file
 * Charon's optimized Bitmap Count algorithm (Section 4.3).
 *
 * The software reference (Figure 8) walks the begin/end maps bit by
 * bit.  The accelerator instead treats the two maps as big binary
 * numbers (least-significant bit = lowest heap word) and computes
 *
 *     live_words = CountSetBits(endMap - begMap) + CountSetBits(begMap)
 *
 * For paired begin/end bits b < e the difference 2^e - 2^b sets
 * exactly the bits b..e-1, and pairs occupy disjoint bit ranges, so
 * the popcount of the difference is the sum of (e_k - b_k); adding
 * one per object (popcount of the begin map) yields the live-word
 * total.  (The paper writes the subtraction as begMap - endMap under
 * the opposite bit-significance convention; the arithmetic is the
 * same.)
 *
 * Corner cases — "where the number of 1's differ between begMap and
 * endMap" (Section 4.3), i.e. ranges that cut through objects:
 *  - a leading end bit with no begin bit in range (the range starts
 *    inside an object) is dropped before the subtraction;
 *  - a trailing begin bit with no end bit in range (an object starts
 *    in range but ends beyond it) is dropped too.
 * Both match the Figure 8 reference, which never counts such objects.
 *
 * The hardware processes one 64-bit word per cycle (Figure 6(b)); the
 * word-wise borrow propagation implemented here is exactly that
 * datapath.
 */

#ifndef CHARON_ACCEL_BITMAP_COUNT_ALG_HH
#define CHARON_ACCEL_BITMAP_COUNT_ALG_HH

#include <cstdint>

#include "heap/bitmap.hh"

namespace charon::accel
{

/**
 * Optimized live-word count over bitmap bits [start_bit, end_bit).
 *
 * Semantically identical to heap::liveWordsInRange (the Figure 8
 * reference); processes whole 64-bit words with borrow propagation
 * instead of individual bits.
 *
 * @return total 8-byte words occupied by live objects fully contained
 *         in the range
 */
std::uint64_t optimizedLiveWords(const heap::MarkBitmap &beg,
                                 const heap::MarkBitmap &end,
                                 std::uint64_t start_bit,
                                 std::uint64_t end_bit);

/**
 * Number of 64-bit bitmap words the optimized datapath touches for a
 * range (both maps), i.e. its cycle count at one word per cycle.
 */
std::uint64_t optimizedWordCycles(std::uint64_t start_bit,
                                  std::uint64_t end_bit);

} // namespace charon::accel

#endif // CHARON_ACCEL_BITMAP_COUNT_ALG_HH
