#include "g1_collector.hh"

#include <algorithm>
#include <vector>

#include "sim/logging.hh"

namespace charon::gc
{

using heap::G1Region;
using heap::G1RegionKind;
using mem::Addr;

G1Collector::G1Collector(heap::G1Heap &heap, TraceRecorder &recorder)
    : heap_(heap), rec_(recorder)
{
}

Addr
G1Collector::readSlot(const SlotRef &slot) const
{
    if (slot.isRoot)
        return heap_.roots()[slot.value];
    return heap_.load64(slot.value);
}

void
G1Collector::writeSlot(const SlotRef &slot, Addr target)
{
    if (slot.isRoot) {
        heap_.roots()[slot.value] = target;
        return;
    }
    heap_.arena().store64(slot.value, target);
    heap_.recordRemset(slot.value, target);
}

void
G1Collector::scanRemsets(const std::unordered_set<int> &cset)
{
    // The analogue of ParallelScavenge's card scan: walk the
    // collection set's remembered sets and enqueue every slot that
    // still points in (entries can be stale; re-check like G1's
    // refinement).  The slot walk itself is host work.
    rec_.beginPhase(PhaseKind::MinorCardScan);
    const auto &costs = rec_.costs();
    for (int index : cset) {
        const G1Region &r = heap_.region(index);
        for (Addr slot : r.remset) {
            rec_.recordGlue(costs.cardObjectLookup, 1);
            if (cset.count(heap_.regionIndexOf(slot)))
                continue; // the holder is itself being evacuated
            Addr target = heap_.load64(slot);
            if (target != 0 && heap_.arena().contains(target)
                && cset.count(heap_.regionIndexOf(target))) {
                pending_.push_back(SlotRef{false, slot});
                rec_.recordGlue(costs.pushObject);
            }
            rec_.nextThread();
        }
    }
    rec_.endPhase();
}

Addr
G1Collector::copyOut(Addr obj, const std::unordered_set<int> &cset)
{
    const auto &costs = rec_.costs();
    auto &arena = heap_.arena();
    const std::uint64_t size_words = arena.sizeWords(obj);
    const int age = arena.age(obj);
    const bool from_old =
        heap_.regionOf(obj).kind == G1RegionKind::Old;
    const bool tenure =
        from_old || age + 1 >= heap_.config().tenuringThreshold;

    Addr dest = heap_.allocIn(tenure ? G1RegionKind::Old
                                     : G1RegionKind::Survivor,
                              size_words);
    if (dest == 0) {
        // Fall back to the other kind before giving up.
        dest = heap_.allocIn(tenure ? G1RegionKind::Survivor
                                    : G1RegionKind::Old,
                             size_words);
    }
    if (dest == 0) {
        // Evacuation failure: self-forward in place, exactly as G1
        // does.  The object's region is retained (promoted to Old
        // wholesale) instead of being freed, and the heap stays
        // consistent.
        current_.outOfRegions = true;
        ++current_.objectsFailed;
        arena.setForwarding(obj, obj);
        failedRegions_.insert(heap_.regionIndexOf(obj));
        return obj;
    }
    CHARON_ASSERT(!cset.count(heap_.regionIndexOf(dest)),
                  "evacuated into the collection set");

    rec_.recordGlue(costs.allocate + costs.forwardInstall, 2);
    arena.copyBytes(dest, obj, size_words * 8);
    rec_.recordCopy(obj, dest, size_words * 8);
    arena.setAge(dest, std::min(age + 1, 63));
    arena.setForwarding(obj, dest);
    ++current_.objectsEvacuated;
    current_.bytesEvacuated += size_words * 8;
    return dest;
}

void
G1Collector::scanNewCopy(Addr new_obj,
                         const std::unordered_set<int> &cset)
{
    const auto &costs = rec_.costs();
    std::uint64_t n = heap_.refCount(new_obj);
    std::uint64_t pushed = 0;
    auto kind = heap_.klasses().get(heap_.klassOf(new_obj)).kind;
    for (std::uint64_t i = 0; i < n; ++i) {
        Addr target = heap_.refAt(new_obj, i);
        if (target == 0)
            continue;
        Addr slot = heap_.refSlotAddr(new_obj, i);
        if (heap::isWeakSlot(kind, i)) {
            // The referent must not be kept alive by this slot alone;
            // resolved after the strong closure is evacuated.
            weakRefs_.push_back(new_obj);
            continue;
        }
        if (cset.count(heap_.regionIndexOf(target))) {
            pending_.push_back(SlotRef{false, slot});
            ++pushed;
        } else {
            // Out-of-set reference: maintain the remembered set for
            // the relocated holder.
            heap_.recordRemset(slot, target);
        }
    }
    rec_.recordGlue(costs.typeDispatch, 1);
    rec_.recordScanPush(new_obj, 16 + n * 8, n, pushed,
                        heap_.klasses()
                            .get(heap_.klassOf(new_obj))
                            .acceleratable());
}

void
G1Collector::processSlot(const SlotRef &slot,
                         const std::unordered_set<int> &cset)
{
    Addr target = readSlot(slot);
    if (target == 0 || !heap_.arena().contains(target))
        return;
    if (!cset.count(heap_.regionIndexOf(target)))
        return; // already updated, or never in the collection set
    auto &arena = heap_.arena();
    if (arena.isForwarded(target)) {
        writeSlot(slot, arena.forwardee(target));
        return;
    }
    Addr dest = copyOut(target, cset);
    writeSlot(slot, dest);
    // A self-forwarded (failed) object is scanned in place so its own
    // collection-set references still get processed.
    scanNewCopy(dest, cset);
}

void
G1Collector::releaseCset(const std::unordered_set<int> &cset)
{
    for (int index : cset) {
        if (failedRegions_.count(index)) {
            // Evacuation failure: the region keeps its surviving
            // (self-forwarded) objects and is retired to Old; stale
            // forwarding marks are scrubbed so a later collection
            // sees clean mark words.
            heap_.forEachObjectInRegion(index, [this](Addr obj) {
                if (heap_.arena().isForwarded(obj))
                    heap_.arena().clearForwarding(obj);
            });
            heap_.region(index).kind = heap::G1RegionKind::Old;
            ++current_.regionsRetained;
            continue;
        }
        heap_.releaseRegion(index);
    }
    // Remembered-set entries whose slot lived in a *released* region
    // died with it (slots in retained regions are still live).
    for (int i = 0; i < heap_.numRegions(); ++i) {
        auto &remset = heap_.region(i).remset;
        for (auto it = remset.begin(); it != remset.end();) {
            int slot_region = heap_.regionIndexOf(*it);
            if (cset.count(slot_region)
                && !failedRegions_.count(slot_region)) {
                it = remset.erase(it);
            } else {
                ++it;
            }
        }
    }
}

G1Collector::EvacResult
G1Collector::evacuate(const std::unordered_set<int> &cset)
{
    current_ = EvacResult{};
    current_.regionsCollected = static_cast<int>(cset.size());
    failedRegions_.clear();
    // Destination regions must be fresh: a stale allocation cursor
    // could point into the collection set.
    heap_.retireAllocationCursors();

    rec_.beginGc(/*major=*/false);

    rec_.beginPhase(PhaseKind::MinorRoots);
    const auto &costs = rec_.costs();
    for (std::uint64_t i = 0; i < heap_.roots().size(); ++i) {
        rec_.recordGlue(costs.rootVisit, 1);
        pending_.push_back(SlotRef{true, i});
        rec_.nextThread();
    }
    rec_.endPhase();

    scanRemsets(cset);

    rec_.beginPhase(PhaseKind::MinorEvacuate);
    while (!pending_.empty()) {
        SlotRef slot = pending_.front();
        pending_.pop_front();
        rec_.recordGlue(costs.popObject, 1);
        processSlot(slot, cset);
        rec_.nextThread();
    }
    // Reference processing: weak referents follow the strong copy or
    // get cleared.
    auto &arena = heap_.arena();
    for (Addr holder : weakRefs_) {
        rec_.recordGlue(costs.pointerAdjust, 2);
        Addr target = heap_.refAt(holder, 0);
        if (target == 0 || !arena.contains(target)
            || !cset.count(heap_.regionIndexOf(target))) {
            continue;
        }
        Addr slot = heap_.refSlotAddr(holder, 0);
        if (arena.isForwarded(target)) {
            Addr moved = arena.forwardee(target);
            arena.store64(slot, moved);
            heap_.recordRemset(slot, moved);
        } else {
            arena.store64(slot, 0);
        }
    }
    weakRefs_.clear();
    rec_.endPhase();
    rec_.endGc();

    releaseCset(cset);
    return current_;
}

G1Collector::EvacResult
G1Collector::youngCollect()
{
    std::unordered_set<int> cset;
    for (int i = 0; i < heap_.numRegions(); ++i) {
        auto kind = heap_.region(i).kind;
        if (kind == G1RegionKind::Eden
            || kind == G1RegionKind::Survivor) {
            cset.insert(i);
        }
    }
    auto result = evacuate(cset);
    if (!result.outOfRegions) {
        ++youngs_;
        markValid_ = false; // liveness data is stale after moving
    }
    return result;
}

G1Collector::MarkResult
G1Collector::concurrentMark()
{
    MarkResult result;
    rec_.beginGc(/*major=*/true);
    const auto &costs = rec_.costs();
    auto &beg = heap_.begBitmap();
    auto &end = heap_.endBitmap();

    // --- Mark.
    rec_.beginPhase(PhaseKind::MajorMark);
    beg.clearAll();
    end.clearAll();
    rec_.recordGlue(beg.storageBytes() / 32, beg.storageBytes() / 32);

    auto &arena = heap_.arena();
    std::vector<Addr> stack;
    auto mark_and_push = [&](Addr obj) {
        if (obj == 0 || beg.test(obj))
            return false;
        std::uint64_t size_words = arena.sizeWords(obj);
        beg.set(obj);
        end.set(obj + (size_words - 1) * 8);
        rec_.recordMarkObj(beg.storageAddrOfBit(beg.bitIndex(obj)));
        rec_.recordMarkObj(end.storageAddrOfBit(
            end.bitIndex(obj + (size_words - 1) * 8)));
        stack.push_back(obj);
        return true;
    };
    for (Addr root : heap_.roots()) {
        rec_.recordGlue(costs.rootVisit, 1);
        mark_and_push(root);
        rec_.nextThread();
    }
    std::vector<Addr> weak_refs;
    while (!stack.empty()) {
        Addr obj = stack.back();
        stack.pop_back();
        rec_.recordGlue(costs.popObject + costs.typeDispatch, 2);
        std::uint64_t n = heap_.refCount(obj);
        std::uint64_t pushed = 0;
        auto kind = heap_.klasses().get(heap_.klassOf(obj)).kind;
        for (std::uint64_t i = 0; i < n; ++i) {
            if (heap::isWeakSlot(kind, i)) {
                weak_refs.push_back(obj);
                continue;
            }
            pushed += mark_and_push(heap_.refAt(obj, i)) ? 1 : 0;
        }
        rec_.recordScanPush(obj, 16 + n * 8, n, pushed,
                            heap_.klasses()
                                .get(heap_.klassOf(obj))
                                .acceleratable());
        ++result.liveObjects;
        result.liveBytes += heap_.sizeBytes(obj);
        rec_.nextThread();
    }
    // Clear weak referents the strong closure did not reach.
    for (Addr holder : weak_refs) {
        rec_.recordGlue(costs.pointerAdjust, 2);
        Addr target = heap_.refAt(holder, 0);
        if (target != 0 && !beg.test(target))
            heap_.setRefRaw(holder, 0, 0);
    }
    rec_.endPhase();

    // --- Per-region liveness: the G1 Bitmap Count usage.  One call
    // per used region over its whole bit range.
    rec_.beginPhase(PhaseKind::MajorSummary);
    const std::uint64_t region_bits = heap_.config().regionBytes / 8;
    std::vector<int> dead_humongous;
    for (int i = 0; i < heap_.numRegions(); ++i) {
        G1Region &r = heap_.region(i);
        if (r.kind == G1RegionKind::Free)
            continue;
        std::uint64_t start_bit = beg.bitIndex(r.start);
        rec_.recordBitmapCount(beg.storageAddrOfBit(start_bit),
                               end.storageAddrOfBit(start_bit),
                               region_bits);
        rec_.recordGlue(costs.regionSummary, 1);
        // Functional liveness: marked object spans clipped to the
        // region (what live_words_in_range computes).
        std::uint64_t live = 0;
        std::uint64_t limit_bit = start_bit + region_bits;
        for (std::uint64_t bit = beg.findNextSet(start_bit, limit_bit);
             bit < limit_bit;
             bit = beg.findNextSet(bit + 1, limit_bit)) {
            live += heap_.sizeBytes(beg.bitAddr(bit));
        }
        r.liveBytes = live;
        if (r.kind == G1RegionKind::Humongous && r.humongousSpan >= 0
            && !beg.test(r.start)) {
            dead_humongous.push_back(i);
        }
        rec_.nextThread();
    }
    rec_.endPhase();
    rec_.endGc();

    // Reclaim dead humongous objects eagerly (as G1 does after
    // remark), and drop remembered-set entries whose slots lived in
    // the reclaimed regions.
    std::unordered_set<int> freed;
    for (int head : dead_humongous) {
        for (int i = head; i <= head + heap_.region(head).humongousSpan;
             ++i) {
            freed.insert(i);
        }
        heap_.releaseRegion(head);
        ++result.humongousFreed;
    }
    if (!freed.empty()) {
        for (int i = 0; i < heap_.numRegions(); ++i) {
            auto &remset = heap_.region(i).remset;
            for (auto it = remset.begin(); it != remset.end();) {
                if (freed.count(heap_.regionIndexOf(*it)))
                    it = remset.erase(it);
                else
                    ++it;
            }
        }
    }

    markValid_ = true;
    ++marks_;
    return result;
}

G1Collector::EvacResult
G1Collector::mixedCollect(double live_threshold)
{
    CHARON_ASSERT(markValid_,
                  "mixedCollect requires fresh marking data");
    std::unordered_set<int> cset;
    for (int i = 0; i < heap_.numRegions(); ++i) {
        const G1Region &r = heap_.region(i);
        if (r.kind == G1RegionKind::Eden
            || r.kind == G1RegionKind::Survivor) {
            cset.insert(i);
        } else if (r.kind == G1RegionKind::Old
                   && static_cast<double>(r.liveBytes)
                          < live_threshold
                                * static_cast<double>(r.capacity())) {
            cset.insert(i);
        }
    }
    auto result = evacuate(cset);
    if (!result.outOfRegions) {
        ++mixeds_;
        markValid_ = false;
    }
    return result;
}

CapabilitySet
G1Collector::capabilities() const
{
    CapabilitySet caps;
    caps.primMask = primBit(PrimKind::Copy)
                    | primBit(PrimKind::ScanPush)
                    | primBit(PrimKind::BitmapCount);
    // Remembered sets stand in for the card table (no Search scans);
    // marking maintains the begin/end bitmaps.
    caps.hasCardTable = false;
    caps.hasMarkBitmap = true;
    return caps;
}

GcOutcome
G1Collector::onAllocationFailure()
{
    switch (collectOnAllocationFailure()) {
      case G1Outcome::Young: return GcOutcome::Minor;
      case G1Outcome::Mixed: return GcOutcome::Major;
      case G1Outcome::OutOfMemory: break;
    }
    return GcOutcome::OutOfMemory;
}

G1Outcome
G1Collector::collectOnHumongousFailure()
{
    concurrentMark();
    auto r = mixedCollect();
    return r.outOfRegions ? G1Outcome::OutOfMemory : G1Outcome::Mixed;
}

G1Outcome
G1Collector::collectOnAllocationFailure()
{
    // Garbage-first policy, simplified: evacuate young when there is
    // comfortable headroom; otherwise mark and run a mixed collection
    // to reclaim mostly-dead old regions.
    int used_young = heap_.regionCount(G1RegionKind::Eden)
                     + heap_.regionCount(G1RegionKind::Survivor);
    if (heap_.freeRegionCount() >= used_young + 2) {
        auto r = youngCollect();
        if (!r.outOfRegions)
            return G1Outcome::Young;
        // Evacuation failure retained regions in place; escalate to a
        // marking cycle + mixed collection before giving up.
    }
    concurrentMark();
    auto r = mixedCollect();
    return r.outOfRegions ? G1Outcome::OutOfMemory : G1Outcome::Mixed;
}

} // namespace charon::gc
