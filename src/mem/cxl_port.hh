/**
 * @file
 * Host-side attachment to a CXL.mem expander.
 *
 * When the heap lives on a CXL expander, every *host* access crosses
 * the serial link: latency() grows by the round trip (which shrinks
 * the requester's MLP-derived issue rate), and the stream itself
 * occupies both the link (with flit-header inflation) and the
 * expander DRAM, completing when the slower of the two drains plus
 * one exposed round trip.  The link FluidChannel is shared with the
 * memory-side accelerator's coherence and translation traffic, so
 * device metadata snoops contend with host demand fetches.
 */

#ifndef CHARON_MEM_CXL_PORT_HH
#define CHARON_MEM_CXL_PORT_HH

#include "mem/ddr4.hh"
#include "mem/fluid_channel.hh"
#include "mem/mem_model.hh"
#include "sim/config.hh"
#include "sim/join.hh"

namespace charon::mem
{

/** MemPort view of expander DRAM across a CXL.mem link. */
class CxlHostPort : public MemPort
{
  public:
    /** @param instr the link becomes a counter track ("cxl.link"). */
    CxlHostPort(sim::EventQueue &eq, Ddr4Memory &dram,
                const sim::CxlConfig &cfg,
                const sim::Instrumentation &instr = {});

    // MemPort
    void stream(const StreamRequest &req, StreamCallback done) override;
    sim::Tick latency(AccessPattern pattern) const override;
    double peakRate() const override;
    int maxGranularity() const override { return dram_.maxGranularity(); }
    double efficiency(AccessPattern pattern) const override
    {
        return dram_.efficiency(pattern);
    }

    /** The shared CXL.mem link (device snoop traffic rides it too). */
    FluidChannel &link() { return link_; }

    /** One-way link latency in ticks. */
    sim::Tick linkLatency() const;

  private:
    sim::EventQueue &eq_;
    Ddr4Memory &dram_;
    sim::CxlConfig cfg_;
    FluidChannel link_;
    sim::JoinPool joins_;
};

} // namespace charon::mem

#endif // CHARON_MEM_CXL_PORT_HH
