#include "journal.hh"

#include <cctype>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

namespace charon::dse
{

namespace
{

constexpr int kVersion = 1;

std::string
escapeJson(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** %.17g: enough digits that strtod round-trips the exact double. */
std::string
fmtDouble(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/**
 * Minimal parser for the flat JSON objects the journal itself writes:
 * string / number / bool values only.  Anything unexpected — torn
 * line, nested value, trailing garbage — fails the whole line.
 */
class FlatJsonScanner
{
  public:
    explicit FlatJsonScanner(const std::string &s) : s_(s) {}

    bool
    object(std::map<std::string, std::string> &strings,
           std::map<std::string, double> &numbers,
           std::map<std::string, bool> &bools)
    {
        skipWs();
        if (!consume('{'))
            return false;
        skipWs();
        if (consume('}'))
            return trailingOk();
        for (;;) {
            std::string key;
            if (!string(key))
                return false;
            skipWs();
            if (!consume(':'))
                return false;
            skipWs();
            if (i_ < s_.size() && s_[i_] == '"') {
                std::string v;
                if (!string(v))
                    return false;
                strings[key] = v;
            } else if (matchWord("true")) {
                bools[key] = true;
            } else if (matchWord("false")) {
                bools[key] = false;
            } else {
                double v;
                if (!number(v))
                    return false;
                numbers[key] = v;
            }
            skipWs();
            if (consume(',')) {
                skipWs();
                continue;
            }
            if (consume('}'))
                return trailingOk();
            return false;
        }
    }

  private:
    void
    skipWs()
    {
        while (i_ < s_.size()
               && (s_[i_] == ' ' || s_[i_] == '\t' || s_[i_] == '\r'))
            ++i_;
    }

    bool
    consume(char c)
    {
        if (i_ < s_.size() && s_[i_] == c) {
            ++i_;
            return true;
        }
        return false;
    }

    bool
    matchWord(const char *w)
    {
        std::size_t n = std::string(w).size();
        if (s_.compare(i_, n, w) == 0) {
            i_ += n;
            return true;
        }
        return false;
    }

    bool
    string(std::string &out)
    {
        if (!consume('"'))
            return false;
        out.clear();
        while (i_ < s_.size()) {
            char c = s_[i_++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (i_ >= s_.size())
                    return false;
                char e = s_[i_++];
                switch (e) {
                case '"':
                case '\\':
                case '/':
                    out += e;
                    break;
                case 'n':
                    out += '\n';
                    break;
                case 't':
                    out += '\t';
                    break;
                case 'r':
                    out += '\r';
                    break;
                case 'u': {
                    if (i_ + 4 > s_.size())
                        return false;
                    unsigned code = 0;
                    for (int k = 0; k < 4; ++k) {
                        char h = s_[i_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            return false;
                    }
                    // The journal only escapes control bytes.
                    out += static_cast<char>(code & 0xff);
                    break;
                }
                default:
                    return false;
                }
            } else {
                out += c;
            }
        }
        return false; // unterminated: torn line
    }

    bool
    number(double &out)
    {
        std::size_t start = i_;
        while (i_ < s_.size()
               && (std::isdigit(static_cast<unsigned char>(s_[i_]))
                   || s_[i_] == '-' || s_[i_] == '+' || s_[i_] == '.'
                   || s_[i_] == 'e' || s_[i_] == 'E' || s_[i_] == 'n'
                   || s_[i_] == 'a' || s_[i_] == 'i' || s_[i_] == 'f'))
            ++i_;
        if (i_ == start)
            return false;
        std::string tok = s_.substr(start, i_ - start);
        char *end = nullptr;
        out = std::strtod(tok.c_str(), &end);
        return end != nullptr && *end == '\0';
    }

    bool
    trailingOk()
    {
        skipWs();
        return i_ == s_.size();
    }

    const std::string &s_;
    std::size_t i_ = 0;
};

} // namespace

SweepJournal::SweepJournal(std::string path) : path_(std::move(path))
{
    if (path_.empty())
        return;
    std::ifstream is(path_, std::ios::binary);
    if (!is)
        return; // no journal yet: first run
    std::string content((std::istreambuf_iterator<char>(is)),
                        std::istreambuf_iterator<char>());
    endsWithNewline_ = content.empty() || content.back() == '\n';
    if (!endsWithNewline_) {
        // Repair the torn tail now, not on the next append: other
        // readers (merges, sibling shards) must see a well-formed
        // file even if this journal never appends again.
        int fd = ::open(path_.c_str(),
                        O_WRONLY | O_APPEND | O_CLOEXEC, 0644);
        if (fd >= 0) {
            ssize_t n;
            do {
                n = ::write(fd, "\n", 1);
            } while (n < 0 && errno == EINTR);
            ::close(fd);
            if (n == 1)
                endsWithNewline_ = true;
            // On failure (read-only fs) append() repairs lazily.
        }
    }
    std::istringstream lines(content);
    std::string line;
    while (std::getline(lines, line)) {
        if (line.empty())
            continue;
        JournalRecord rec;
        // Malformed lines (torn final write, hand edits) are misses,
        // not errors: the sweep recomputes and re-appends them.
        if (parseLine(line, rec))
            records_[rec.key] = rec;
    }
}

bool
SweepJournal::lookup(const std::string &key, JournalRecord &out) const
{
    auto it = records_.find(key);
    if (it == records_.end())
        return false;
    out = it->second;
    return true;
}

SweepJournal::~SweepJournal()
{
    if (fd_ >= 0)
        ::close(fd_);
}

bool
SweepJournal::append(const JournalRecord &record)
{
    records_[record.key] = record;
    if (path_.empty())
        return true;
    if (fd_ < 0) {
        fd_ = ::open(path_.c_str(),
                     O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
        if (fd_ < 0)
            return false;
    }
    // One write(2) per record: an O_APPEND write of the whole line is
    // completed (or not) atomically by the kernel, so a signal or
    // SIGKILL between cells never tears a committed line.  A torn
    // final line from a previous crash must not swallow this record:
    // complete it first, then append on a fresh line.
    std::string line;
    if (!endsWithNewline_)
        line += '\n';
    line += formatLine(record);
    line += '\n';
    const char *p = line.data();
    std::size_t left = line.size();
    while (left > 0) {
        ssize_t n = ::write(fd_, p, left);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += n;
        left -= static_cast<std::size_t>(n);
    }
    endsWithNewline_ = true;
    return true;
}

std::size_t
SweepJournal::seedFrom(const std::string &path)
{
    if (path.empty())
        return 0;
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return 0;
    std::size_t inserted = 0;
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        JournalRecord rec;
        if (!parseLine(line, rec))
            continue; // torn / foreign line: not a seed
        if (records_.emplace(rec.key, rec).second)
            ++inserted;
    }
    return inserted;
}

void
SweepJournal::seedRecord(const JournalRecord &record)
{
    records_.emplace(record.key, record);
}

bool
SweepJournal::mergeJournals(const std::string &dst,
                            const std::vector<std::string> &srcs,
                            std::string *error, MergeStats *stats)
{
    MergeStats local;
    MergeStats &st = stats ? *stats : local;
    st = MergeStats{};

    // First-writer-wins in read order: dst's own lines, then each
    // source's lines, in the order each file wrote them.  Keeping the
    // first copy of a key honours the journal contract that a shard
    // never re-commits a cell it already owns.
    std::map<std::string, std::string> lines; // key -> formatted line
    auto readFile = [&](const std::string &path) {
        std::ifstream is(path, std::ios::binary);
        if (!is)
            return false;
        ++st.sources;
        std::string line;
        while (std::getline(is, line)) {
            if (line.empty())
                continue;
            JournalRecord rec;
            if (!parseLine(line, rec)) {
                ++st.tornLines;
                continue;
            }
            // Re-format rather than keep the raw line so the merged
            // file is canonical even across journal cosmetic drift.
            if (!lines.emplace(rec.key, formatLine(rec)).second)
                ++st.duplicates;
        }
        return true;
    };
    readFile(dst);
    for (const auto &src : srcs) {
        if (src == dst)
            continue;
        readFile(src);
    }
    st.records = lines.size();

    // Write sorted-by-key (std::map iteration order) to a temp file,
    // fsync, rename over dst, fsync the directory: the TraceCache
    // publish idiom.  A crash leaves either the old dst or the new
    // one, never a torn mixture.
    namespace fs = std::filesystem;
    fs::path dstPath(dst);
    fs::path dir = dstPath.parent_path();
    if (dir.empty())
        dir = ".";
    std::string tmp = dst + ".merge." + std::to_string(::getpid())
                      + ".tmp";
    int fd = ::open(tmp.c_str(),
                    O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) {
        if (error)
            *error = "open " + tmp + ": " + std::strerror(errno);
        return false;
    }
    std::string body;
    for (const auto &[key, line] : lines) {
        body += line;
        body += '\n';
    }
    const char *p = body.data();
    std::size_t left = body.size();
    bool writeOk = true;
    while (left > 0) {
        ssize_t n = ::write(fd, p, left);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            writeOk = false;
            break;
        }
        p += n;
        left -= static_cast<std::size_t>(n);
    }
    if (writeOk && ::fsync(fd) != 0)
        writeOk = false;
    ::close(fd);
    if (!writeOk) {
        if (error)
            *error = "write " + tmp + ": " + std::strerror(errno);
        ::unlink(tmp.c_str());
        return false;
    }
    std::error_code ec;
    fs::rename(tmp, dstPath, ec);
    if (ec) {
        if (error)
            *error = "rename " + tmp + " -> " + dst + ": "
                     + ec.message();
        ::unlink(tmp.c_str());
        return false;
    }
    int dirFd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (dirFd >= 0) {
        ::fsync(dirFd); // best-effort: durability of the rename itself
        ::close(dirFd);
    }
    return true;
}

namespace
{
volatile std::sig_atomic_t g_interrupted = 0;

void
onInterrupt(int)
{
    g_interrupted = 1;
}
} // namespace

void
SweepJournal::installSignalFlush()
{
    struct sigaction sa = {};
    sa.sa_handler = onInterrupt;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0; // no SA_RESTART: interrupt blocking syscalls
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
}

bool
SweepJournal::interrupted()
{
    return g_interrupted != 0;
}

std::string
SweepJournal::formatLine(const JournalRecord &r)
{
    std::ostringstream os;
    os << "{\"v\":" << kVersion << ",\"key\":\"" << escapeJson(r.key)
       << "\",\"ok\":" << (r.ok ? "true" : "false")
       << ",\"oom\":" << (r.oom ? "true" : "false");
    if (!r.error.empty())
        os << ",\"error\":\"" << escapeJson(r.error) << "\"";
    os << ",\"gcSeconds\":" << fmtDouble(r.gcSeconds)
       << ",\"minorSeconds\":" << fmtDouble(r.minorSeconds)
       << ",\"majorSeconds\":" << fmtDouble(r.majorSeconds)
       << ",\"mutatorSeconds\":" << fmtDouble(r.mutatorSeconds)
       << ",\"avgGcBandwidthGBs\":" << fmtDouble(r.avgGcBandwidthGBs)
       << ",\"localAccessFraction\":"
       << fmtDouble(r.localAccessFraction)
       << ",\"dramBytes\":" << fmtDouble(r.dramBytes)
       << ",\"hostEnergyJ\":" << fmtDouble(r.hostEnergyJ)
       << ",\"dramEnergyJ\":" << fmtDouble(r.dramEnergyJ)
       << ",\"unitEnergyJ\":" << fmtDouble(r.unitEnergyJ) << "}";
    return os.str();
}

bool
SweepJournal::parseLine(const std::string &line, JournalRecord &out)
{
    std::map<std::string, std::string> strings;
    std::map<std::string, double> numbers;
    std::map<std::string, bool> bools;
    FlatJsonScanner scanner(line);
    if (!scanner.object(strings, numbers, bools))
        return false;

    auto v = numbers.find("v");
    if (v == numbers.end() || v->second != kVersion)
        return false;
    auto key = strings.find("key");
    if (key == strings.end() || key->second.empty())
        return false;

    out = JournalRecord{};
    out.key = key->second;
    auto b = [&](const char *name, bool &field) {
        auto it = bools.find(name);
        if (it != bools.end())
            field = it->second;
    };
    b("ok", out.ok);
    b("oom", out.oom);
    auto e = strings.find("error");
    if (e != strings.end())
        out.error = e->second;
    auto n = [&](const char *name, double &field) {
        auto it = numbers.find(name);
        if (it == numbers.end())
            return false;
        field = it->second;
        return true;
    };
    // The numeric block is all-or-nothing: a line missing any metric
    // (written by a different version, or torn) is a miss.
    return n("gcSeconds", out.gcSeconds)
           && n("minorSeconds", out.minorSeconds)
           && n("majorSeconds", out.majorSeconds)
           && n("mutatorSeconds", out.mutatorSeconds)
           && n("avgGcBandwidthGBs", out.avgGcBandwidthGBs)
           && n("localAccessFraction", out.localAccessFraction)
           && n("dramBytes", out.dramBytes)
           && n("hostEnergyJ", out.hostEnergyJ)
           && n("dramEnergyJ", out.dramEnergyJ)
           && n("unitEnergyJ", out.unitEnergyJ);
}

} // namespace charon::dse
