/**
 * @file
 * Custom-collector scenario: a CMS-style old-generation cycle built
 * from the library's pieces — young scavenges for allocation churn,
 * a non-moving mark-sweep over Old, and free-list re-allocation into
 * the swept holes — demonstrating Table 1's point that the Charon
 * primitives serve collectors beyond ParallelScavenge (Copy and
 * Scan&Push apply; Bitmap Count never fires without compaction).
 *
 * Build & run:
 *   ./build/examples/custom_collector
 */

#include <cstdio>
#include <deque>

#include "gc/mark_sweep.hh"
#include "gc/recorder.hh"
#include "gc/scavenge.hh"
#include "gc/verify.hh"
#include "heap/heap.hh"
#include "workload/mutator.hh" // chooseCubeShift

using namespace charon;

int
main()
{
    heap::KlassTable klasses;
    auto record = klasses.defineInstance("Record", 1, 6);
    heap::HeapConfig cfg;
    cfg.heapBytes = 32 * sim::kMiB;
    cfg.tenuringThreshold = 1; // tenure aggressively into Old
    heap::ManagedHeap heap(cfg, klasses);
    gc::TraceRecorder recorder(8,
                               workload::chooseCubeShift(heap.vaLimit()));

    // Churn: allocate records, keep a sliding window alive so the
    // old generation fills with a mix of live and dead data.
    std::deque<std::size_t> window;
    std::uint64_t allocated = 0;
    auto alloc_one = [&] {
        mem::Addr obj = heap.allocEden(record);
        if (obj == 0) {
            gc::Scavenge(heap, recorder).collect();
            obj = heap.allocEden(record);
        }
        heap.roots().push_back(obj);
        window.push_back(heap.roots().size() - 1);
        if (window.size() > 20000) {
            heap.roots()[window.front()] = 0;
            window.pop_front();
        }
        ++allocated;
    };
    while (heap.region(heap::Space::Old).free() > 4 * sim::kMiB)
        alloc_one();
    std::printf("old generation filled: %llu records allocated, "
                "%llu KiB used\n",
                static_cast<unsigned long long>(allocated),
                static_cast<unsigned long long>(
                    heap.region(heap::Space::Old).used() >> 10));

    // CMS-style old collection: mark + sweep, nothing moves.
    auto fp = gc::fingerprintHeap(heap);
    gc::MarkSweep ms(heap, recorder);
    auto result = ms.collect();
    std::printf("mark-sweep: %llu live objects (%llu KiB), reclaimed "
                "%llu KiB into %llu free chunks\n",
                static_cast<unsigned long long>(result.liveObjects),
                static_cast<unsigned long long>(result.liveBytes >> 10),
                static_cast<unsigned long long>(result.freedBytes >> 10),
                static_cast<unsigned long long>(result.freeChunks));
    if (!(gc::fingerprintHeap(heap) == fp)) {
        std::printf("ERROR: mark-sweep changed the live graph!\n");
        return 1;
    }

    // Reuse the holes without moving anything.
    std::uint64_t reused = 0;
    while (ms.allocateFromFreeList(record) != 0)
        ++reused;
    std::printf("free-list allocation reused the holes for %llu new "
                "records\n",
                static_cast<unsigned long long>(reused));
    heap.verifySpace(heap::Space::Old);

    // Table 1 in action: which primitives did this collector need?
    const auto &trace = recorder.run();
    std::uint64_t copy = 0, scan = 0, bitmap = 0;
    for (const auto &gc : trace.gcs) {
        copy += gc.totalInvocations(gc::PrimKind::Copy);
        scan += gc.totalInvocations(gc::PrimKind::ScanPush);
        bitmap += gc.totalInvocations(gc::PrimKind::BitmapCount);
    }
    std::printf("\nprimitive usage across the run: Copy %llu (young "
                "scavenges), Scan&Push %llu, Bitmap Count %llu\n",
                static_cast<unsigned long long>(copy),
                static_cast<unsigned long long>(scan),
                static_cast<unsigned long long>(bitmap));
    std::printf("a non-compacting collector never needs Bitmap Count "
                "— Table 1's CMS row\n");
    return bitmap == 0 ? 0 : 1;
}
