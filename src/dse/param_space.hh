/**
 * @file
 * The declarative configuration space of the design-space explorer.
 *
 * A DsePoint is one candidate Charon design: the functional knobs
 * that key a trace (workload, heap, seed, GC threads, cubes, copy
 * offload threshold) plus the replay-side architecture knobs the
 * paper's sensitivity studies vary (per-primitive unit counts, TSV
 * and link bandwidth, distributed structures).  A ParamSpace is a
 * base point plus named axes; enumeration is the cartesian product
 * in declaration order (last axis fastest), so the sweep order — and
 * therefore every journal and report — is deterministic.
 *
 * Axes are registered by name with string-typed values so the same
 * registry serves C++ callers, `charon-explore --axis units=2,4,8`,
 * and the presets.  Unknown names and unparseable values are
 * rejected at registration time, never mid-sweep.
 */

#ifndef CHARON_DSE_PARAM_SPACE_HH
#define CHARON_DSE_PARAM_SPACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "harness/cell.hh"
#include "sim/config.hh"

namespace charon::dse
{

/** One candidate design: everything that determines its evaluation. */
struct DsePoint
{
    // Functional knobs (enter the trace-cache key).
    std::string workload = "KM";
    harness::CollectorKind collector =
        harness::CollectorKind::ParallelScavenge;
    std::uint64_t heapBytes = 0; ///< 0 = catalog default
    std::uint64_t seed = 1;
    int gcThreads = 8;
    int numCubes = 4;
    std::uint64_t copyOffloadThreshold = 256;

    // Replay-side architecture knobs (never enter the trace key).
    int copySearchUnits = 8;
    int bitmapCountUnits = 8;
    int scanPushUnits = 8;
    double tsvGBsPerCube = 320.0;
    double linkGBs = 80.0;
    bool distributedStructures = false;

    /**
     * Offload backend evaluated against the DDR4 host baseline:
     * CharonNmp (default), IgpuOffload, CxlMsa, or HostHmc (the
     * "no accelerator, better memory" control).
     */
    sim::PlatformKind backend = sim::PlatformKind::CharonNmp;

    // Fleet knobs (multi-tenant simulation; src/fleet).  All three
    // default to the single-tenant "not a fleet point" state and emit
    // no str() token there, so journals written before the axes
    // existed resume with zero re-evaluated cells.
    /** Tenant heaps sharing the node; 0 = single-tenant evaluation. */
    int tenants = 0;
    /** Arbitration policy token: "fcfs", "fair", or "deadline". */
    std::string arbPolicy = "fcfs";
    /** Pause-deadline SLO handed to the arbiter, ms; 0 = none. */
    double fleetSloMs = 0;

    /** Canonical text form: the point's identity in journals and
     *  reports. */
    std::string str() const;

    /** The functional half, as the harness keys it. */
    harness::FunctionalKey functionalKey() const;

    /** Table 2 defaults with this point's overrides applied. */
    sim::SystemConfig systemConfig() const;

    bool operator==(const DsePoint &o) const { return str() == o.str(); }
};

/** One named axis: the values it sweeps, as written by the user. */
struct ParamAxis
{
    std::string name;
    std::vector<std::string> values;
};

/**
 * Base point + axes; enumerate() yields base with each combination
 * of axis values applied, in deterministic cartesian order.
 */
class ParamSpace
{
  public:
    DsePoint base;

    /**
     * Register an axis.  @p name must be a registered axis name and
     * every value must parse; returns false (with a diagnostic in
     * @p error) otherwise.
     */
    bool axis(const std::string &name, std::vector<std::string> values,
              std::string *error = nullptr);

    /** `--axis name=v1,v2,...` form. */
    bool axisSpec(const std::string &spec, std::string *error = nullptr);

    const std::vector<ParamAxis> &axes() const { return axes_; }

    /** Number of points in the product (1 with no axes). */
    std::size_t size() const;

    /**
     * The full cartesian product in declaration order, last axis
     * fastest.  Deterministic: two calls yield identical sequences.
     */
    std::vector<DsePoint> enumerate() const;

    /**
     * A seeded pseudo-random sample of @p samples distinct points,
     * returned in enumeration order.  samples >= size() degrades to
     * enumerate().
     */
    std::vector<DsePoint> sample(std::size_t samples,
                                 std::uint64_t seed) const;

    /** Registered axis names with a one-line description each. */
    static std::vector<std::pair<std::string, std::string>> axisHelp();

  private:
    std::vector<ParamAxis> axes_;
};

/**
 * Apply one (axis, value) pair to @p point; false when @p name is
 * not a registered axis or @p value does not parse.
 */
bool applyAxisValue(DsePoint &point, const std::string &name,
                    const std::string &value, std::string *error);

} // namespace charon::dse

#endif // CHARON_DSE_PARAM_SPACE_HH
