#include "event_queue.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace charon::sim
{

EventQueue::EventQueue()
{
    heap_.reserve(64);
}

void
EventQueue::growSlab()
{
    chunks_.push_back(
        std::make_unique<Slot[]>(std::size_t{1} << kChunkShift));
}

void
EventQueue::popTop()
{
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty())
        siftDown(0);
}

void
EventQueue::compact()
{
    std::size_t keep = 0;
    for (std::size_t i = 0; i < heap_.size(); ++i) {
        std::uint32_t slot = heap_[i].slot;
        if (state_[slotAt(slot).id - 1] == Pending)
            heap_[keep++] = heap_[i];
        else
            releaseSlot(slot);
    }
    heap_.resize(keep);
    // Heapify from scratch; pop order depends only on (when, seq),
    // never on the internal arrangement, so this is order-neutral.
    for (std::size_t i = keep / 2; i-- > 0;)
        siftDown(i);
}

bool
EventQueue::findMin()
{
    if (pending_ == 0)
        return false;
    while (!heap_.empty()) {
        std::uint32_t slot = heap_.front().slot;
        if (state_[slotAt(slot).id - 1] == Pending)
            return true;
        releaseSlot(slot);
        popTop();
    }
    CHARON_ASSERT(false, "pending count %llu but heap empty",
                  static_cast<unsigned long long>(pending_));
    return false;
}

bool
EventQueue::step()
{
    if (!findMin())
        return false;
    const Node top = heap_.front();
    Slot &s = slotAt(top.slot);
    state_[s.id - 1] = Fired;
    --pending_;
    now_ = top.when;
    ++executed_;
    popTop();
    // Execute in place: the chunked slab never relocates a slot, so
    // callbacks scheduled by s.fn() cannot move it mid-call, and its
    // Fired state keeps deschedule()/compact() hands off.
    s.fn();
    releaseSlot(top.slot);
    return true;
}

std::uint64_t
EventQueue::run(Tick until)
{
    std::uint64_t executed = 0;
    while (findMin()) {
        const Node top = heap_.front();
        if (top.when > until) {
            now_ = until;
            return executed;
        }
        Slot &s = slotAt(top.slot);
        state_[s.id - 1] = Fired;
        --pending_;
        now_ = top.when;
        ++executed_;
        popTop();
        s.fn();
        releaseSlot(top.slot);
        ++executed;
    }
    return executed;
}

void
EventQueue::advanceTo(Tick when)
{
    CHARON_ASSERT(when >= now_,
                  "advanceTo %llu before now %llu",
                  static_cast<unsigned long long>(when),
                  static_cast<unsigned long long>(now_));
    CHARON_ASSERT(!findMin() || heap_.front().when >= when,
                  "advanceTo %llu past a pending event",
                  static_cast<unsigned long long>(when));
    now_ = when;
}

} // namespace charon::sim
