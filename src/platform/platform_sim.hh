/**
 * @file
 * The platform timing simulator: replays a primitive trace (the
 * functional GC's output) on one of the five evaluated platforms
 * (Figure 12): host+DDR4, host+HMC, Charon near-memory, Charon
 * CPU-side, and the zero-cycle Ideal offload.
 *
 * GC threads are event-driven agents.  Within a phase every thread
 * executes its glue work and its trace buckets sequentially; threads
 * run concurrently and contend in the shared memory system (and for
 * Charon's unit pools); phases are barriers, mirroring the
 * ParallelScavenge phase structure.
 */

#ifndef CHARON_PLATFORM_PLATFORM_SIM_HH
#define CHARON_PLATFORM_PLATFORM_SIM_HH

#include <memory>
#include <ostream>
#include <vector>

#include "accel/backend.hh"
#include "cpu/host_model.hh"
#include "fault/fault.hh"
#include "gc/costs.hh"
#include "gc/trace.hh"
#include "hmc/hmc.hh"
#include "mem/ddr4.hh"
#include "platform/results.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/instrumentation.hh"
#include "sim/timeline.hh"

namespace charon::platform
{

/**
 * One platform instance; simulate() may be called once per trace.
 *
 * Thread-compatible, not thread-safe: an instance owns its entire
 * simulation state (event queue, memories, device) and touches no
 * globals, so the harness replays many instances concurrently — but
 * each instance must stay confined to one thread.
 */
class PlatformSim
{
  public:
    /**
     * @param kind which platform to model
     * @param cfg architectural parameters (Table 2)
     * @param cube_shift the address-to-cube mapping the trace was
     *        recorded with (HMC-backed platforms)
     * @param instr instrumentation context, wired through every
     *        component at construction.  When enabled the simulator
     *        emits GC/phase spans on a "gc" track, per-thread
     *        primitive and glue spans on "thread N" tracks, and the
     *        memory system, device, and host contribute their counter
     *        tracks.  The default (disabled) context costs nothing.
     * @param faults timing-layer fault plan.  The default (empty)
     *        plan attaches no engine at all: replays take exactly the
     *        pre-fault code paths and remain byte-identical to builds
     *        without the fault layer.  With a plan, unit deaths and
     *        cube outages re-dispatch in-flight offloads to the host
     *        path (the same route sub-threshold buckets already use),
     *        stalls delay offload issue, TLB poisoning slows Scan&Push
     *        probes, and link/TSV degradation shrinks the fluid
     *        capacities at phase boundaries.
     */
    PlatformSim(sim::PlatformKind kind, const sim::SystemConfig &cfg,
                int cube_shift, const sim::Instrumentation &instr = {},
                const fault::FaultPlan &faults = {});
    ~PlatformSim();

    PlatformSim(const PlatformSim &) = delete;
    PlatformSim &operator=(const PlatformSim &) = delete;

    /**
     * Replay strategy.  Auto replays a phase through the batched
     * columnar kernel whenever every bucket's completion time is
     * closed-form (no shared memory port, no unit pool, no fault
     * engine — see phaseBatchable()); everything else, and the whole
     * phase otherwise, goes event-at-a-time.  Scalar forces the
     * event-driven path everywhere.  Both modes are bit-identical by
     * construction; the differential replay oracle enforces it.
     */
    enum class ReplayMode
    {
        Auto,
        Scalar,
    };

    void setReplayMode(ReplayMode mode) { mode_ = mode; }
    ReplayMode replayMode() const { return mode_; }

    /** Replay the whole run; returns aggregated timing and energy. */
    RunTiming simulate(const gc::RunTrace &trace);

    /** Replay a single collection (used by per-GC analyses). */
    GcTiming simulateGc(const gc::GcTrace &trace);

    sim::PlatformKind kind() const { return kind_; }
    const sim::SystemConfig &config() const { return cfg_; }

    /** The HMC backing store (HMC-backed kinds only, else nullptr). */
    hmc::HmcMemory *hmcMemory() { return hmc_.get(); }

    /** The offload backend (pure-host platforms: nullptr). */
    const accel::OffloadBackend *backend() const
    {
        return backend_.get();
    }

    /** Events the simulation kernel has executed (perf metric). */
    std::uint64_t executedEvents() const
    {
        return eq_.executedEvents();
    }

    /** Events the batched kernel absorbed instead of the queue. */
    std::uint64_t batchedEvents() const { return batchedEvents_; }

    /** Buckets replayed through the batched kernel. */
    std::uint64_t batchedBuckets() const { return batchedBuckets_; }

    /** Faults that actually fired (null-safe; 0 without a plan). */
    std::uint64_t injectedFaults() const
    {
        return fault_ ? fault_->injectedFaults() : 0;
    }

    /** Print the memory-system statistics accumulated so far. */
    void dumpStats(std::ostream &os) const;

  private:
    /** Per-phase event-driven GC thread agent (defined in the .cc). */
    struct ThreadAgent;

    bool usesHmc() const;

    /** Run one phase to completion; returns its breakdown. */
    PrimBreakdown runPhase(const gc::PhaseTrace &phase,
                           gc::PhaseRollup &rollup);

    /** Event-driven phase body (ThreadAgent closures on the queue). */
    void runPhaseScalar(const gc::PhaseTrace &phase,
                        PrimBreakdown &breakdown);

    /**
     * True when every bucket of @p phase resolves to a closed-form
     * completion time (defined in batch_replay.cc with the kernel).
     */
    bool phaseBatchable(const gc::PhaseTrace &phase) const;

    /** Batched columnar phase body; bit-identical to the scalar one. */
    void runPhaseBatched(const gc::PhaseTrace &phase,
                         PrimBreakdown &breakdown);

    /** Lazily created "thread N" track (timeline attached only). */
    sim::Timeline::TrackId threadTrack(std::size_t thread);

    sim::PlatformKind kind_;
    sim::SystemConfig cfg_;
    int cubeShift_;
    gc::GlueCosts costs_;

    sim::EventQueue eq_;
    std::unique_ptr<fault::FaultEngine> fault_;
    std::unique_ptr<mem::Ddr4Memory> ddr4_;
    std::unique_ptr<hmc::HmcMemory> hmc_;
    std::unique_ptr<accel::OffloadBackend> backend_;
    std::unique_ptr<cpu::HostModel> host_;

    double glueSecondsTotal_ = 0; ///< thread-seconds of host glue

    ReplayMode mode_ = ReplayMode::Auto;
    std::uint64_t batchedEvents_ = 0;
    std::uint64_t batchedBuckets_ = 0;

    sim::Timeline *timeline_ = nullptr;
    sim::Timeline::TrackId gcTrack_ = 0;
    std::vector<sim::Timeline::TrackId> threadTracks_;
    /** Pre-interned span names for the per-bucket emit path. */
    sim::Timeline::NameId primNames_[gc::kNumPrimKinds] = {};
    sim::Timeline::NameId glueName_ = 0;
};

} // namespace charon::platform

#endif // CHARON_PLATFORM_PLATFORM_SIM_HH
