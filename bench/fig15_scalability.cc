/**
 * @file
 * Figure 15: GC throughput scalability with the number of GC threads
 * (and, for Charon, a matching number of primitive units), comparing
 * the DDR4 host against Charon with unified vs. distributed bitmap
 * cache / TLB structures.
 *
 * Paper shape: DDR4 hardly scales past a few threads (34 GB/s wall);
 * Charon keeps scaling on internal bandwidth; the distributed design
 * generally scales better than the unified one because contention at
 * the central cube's structures is removed.
 */

#include "bench_common.hh"

using namespace charon;
using namespace charon::bench;

int
main(int argc, char **argv)
{
    auto opt = harness::standardOptions(argc, argv);
    ExperimentRunner runner(opt.runnerConfig());
    Report report(opt);

    const int thread_counts[] = {1, 2, 4, 8, 16};
    const std::string workloads[] = {"KM", "CC"};

    // Aggregate over one Spark-style and one GraphChi-style workload,
    // as the paper plots both behaviours.  Every (workload, threads)
    // pair is its own functional key; the three variants replay it.
    std::vector<Cell> cells;
    for (const auto &name : workloads) {
        for (int threads : thread_counts) {
            auto cfg = sim::SystemConfig::threadScaling(threads);

            Cell ddr4 = cell(name, sim::PlatformKind::HostDdr4, 0, 1,
                             threads);
            ddr4.config = cfg;
            cells.push_back(ddr4);

            Cell uni = cell(name, sim::PlatformKind::CharonNmp, 0, 1,
                            threads);
            uni.config = cfg;
            cells.push_back(uni);

            Cell dist = uni;
            dist.config.charon.distributedStructures = true;
            dist.label += " (distributed)";
            cells.push_back(dist);
        }
    }
    auto results = runner.run(cells);

    std::size_t i = 0;
    ResultSink *last = nullptr;
    for (const auto &name : workloads) {
        auto &table =
            report.table("fig15." + name,
                         "Figure 15 (" + name
                             + "): GC throughput scalability "
                               "(normalized to 1 thread)",
                         {"threads", "DDR4", "Charon unified",
                          "Charon distributed"});
        double base_ddr4 = 0, base_uni = 0, base_dist = 0;
        for (int threads : thread_counts) {
            bool ok = true;
            for (std::size_t k = 0; k < 3; ++k)
                ok &= report.checkCell(cells[i + k], results[i + k]);
            if (ok) {
                double ddr4 = results[i].timing.gcSeconds;
                double uni = results[i + 1].timing.gcSeconds;
                double dist = results[i + 2].timing.gcSeconds;
                if (threads == 1) {
                    base_ddr4 = ddr4;
                    base_uni = uni;
                    base_dist = dist;
                }
                table.addRow({std::to_string(threads),
                              report::times(base_ddr4 / ddr4),
                              report::times(base_uni / uni),
                              report::times(base_dist / dist)});
            }
            i += 3;
        }
        last = &table;
    }
    if (last) {
        last->note("\npaper: DDR4 hardly scales (34 GB/s cap); Charon "
                   "scales with internal bandwidth; distributed "
                   "structures scale best");
    }
    report.addRollups(cells, results);
    harness::finishTimeline(runner, opt);
    return report.finish(std::cout);
}
