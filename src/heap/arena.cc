#include "arena.hh"

#include <cstring>

#include "sim/logging.hh"

namespace charon::heap
{

namespace
{

// Mark-word encoding: bit 0 = forwarded, bits 1..6 = age,
// bits 8..63 = forwarding address >> 3.
constexpr std::uint64_t kFwdFlag = 1ull;
constexpr std::uint64_t kAgeShift = 1;
constexpr std::uint64_t kAgeMask = 0x3full << kAgeShift;
constexpr std::uint64_t kFwdAddrShift = 8;

} // namespace

ObjectArena::ObjectArena(mem::Addr base, std::uint64_t bytes,
                         const KlassTable &klasses)
    : base_(base), bytes_(bytes), klasses_(klasses), data_(bytes)
{
    CHARON_ASSERT((base & 7) == 0 && (bytes & 7) == 0,
                  "arena must be word aligned");
}

std::uint8_t *
ObjectArena::raw(mem::Addr addr)
{
    CHARON_ASSERT(contains(addr), "arena access out of bounds: 0x%llx",
                  static_cast<unsigned long long>(addr));
    return data_.data() + (addr - base_);
}

const std::uint8_t *
ObjectArena::raw(mem::Addr addr) const
{
    return const_cast<ObjectArena *>(this)->raw(addr);
}

std::uint64_t
ObjectArena::load64(mem::Addr addr) const
{
    std::uint64_t v;
    std::memcpy(&v, raw(addr), 8);
    return v;
}

void
ObjectArena::store64(mem::Addr addr, std::uint64_t value)
{
    std::memcpy(raw(addr), &value, 8);
}

void
ObjectArena::copyBytes(mem::Addr dst, mem::Addr src, std::uint64_t bytes)
{
    CHARON_ASSERT(bytes > 0, "zero-byte copy");
    raw(src + bytes - 1);
    raw(dst + bytes - 1);
    std::memmove(raw(dst), raw(src), bytes);
}

std::uint64_t
ObjectArena::sizeWordsFor(KlassId klass, std::uint64_t array_len) const
{
    const Klass &k = klasses_.get(klass);
    if (k.kind == KlassKind::ObjArray)
        return 3 + array_len;
    if (isTypeArrayKind(k.kind)) {
        return 3
               + mem::divCeil(array_len
                                  * static_cast<std::uint64_t>(
                                      typeArrayElemBytes(k.kind)),
                              8);
    }
    if (k.kind == KlassKind::ConstantPool
        || k.kind == KlassKind::MethodData) {
        return 3 + mem::divCeil(array_len, 8);
    }
    return k.instanceWords();
}

void
ObjectArena::writeHeader(mem::Addr obj, KlassId klass,
                         std::uint64_t size_words,
                         std::uint64_t array_len)
{
    CHARON_ASSERT(size_words >= 2, "undersized object");
    CHARON_ASSERT(size_words < (1ull << 32), "oversized object");
    store64(obj, static_cast<std::uint64_t>(klass) | (size_words << 32));
    store64(obj + 8, 0);
    const Klass &k = klasses_.get(klass);
    if (k.kind == KlassKind::ObjArray || isTypeArrayKind(k.kind)
        || k.kind == KlassKind::ConstantPool
        || k.kind == KlassKind::MethodData) {
        store64(obj + 16, array_len);
        if (k.kind == KlassKind::ObjArray) {
            for (std::uint64_t i = 0; i < array_len; ++i)
                store64(obj + 24 + i * 8, 0);
        }
    } else {
        for (std::uint64_t i = 0; i < k.refFields; ++i)
            store64(obj + 16 + i * 8, 0);
    }
}

KlassId
ObjectArena::klassOf(mem::Addr obj) const
{
    return static_cast<KlassId>(load64(obj) & 0xffffffffull);
}

std::uint64_t
ObjectArena::sizeWords(mem::Addr obj) const
{
    return load64(obj) >> 32;
}

std::uint64_t
ObjectArena::arrayLength(mem::Addr obj) const
{
    return load64(obj + 16);
}

std::uint64_t
ObjectArena::refCount(mem::Addr obj) const
{
    const Klass &k = klasses_.get(klassOf(obj));
    if (k.kind == KlassKind::ObjArray)
        return arrayLength(obj);
    switch (k.kind) {
      case KlassKind::Instance:
      case KlassKind::InstanceMirror:
      case KlassKind::InstanceClassLoader:
      case KlassKind::InstanceRef:
        return k.refFields;
      default:
        return 0;
    }
}

mem::Addr
ObjectArena::refSlotAddr(mem::Addr obj, std::uint64_t i) const
{
    const Klass &k = klasses_.get(klassOf(obj));
    if (k.kind == KlassKind::ObjArray)
        return obj + 24 + i * 8;
    return obj + 16 + i * 8;
}

mem::Addr
ObjectArena::refAt(mem::Addr obj, std::uint64_t i) const
{
    return load64(refSlotAddr(obj, i));
}

void
ObjectArena::setRef(mem::Addr obj, std::uint64_t i, mem::Addr target)
{
    store64(refSlotAddr(obj, i), target);
}

int
ObjectArena::age(mem::Addr obj) const
{
    return static_cast<int>((load64(obj + 8) & kAgeMask) >> kAgeShift);
}

void
ObjectArena::setAge(mem::Addr obj, int age)
{
    std::uint64_t mark = load64(obj + 8);
    mark = (mark & ~kAgeMask)
           | ((static_cast<std::uint64_t>(age) << kAgeShift) & kAgeMask);
    store64(obj + 8, mark);
}

bool
ObjectArena::isForwarded(mem::Addr obj) const
{
    return load64(obj + 8) & kFwdFlag;
}

mem::Addr
ObjectArena::forwardee(mem::Addr obj) const
{
    CHARON_ASSERT(isForwarded(obj), "forwardee of unforwarded object");
    return (load64(obj + 8) >> kFwdAddrShift) << 3;
}

void
ObjectArena::setForwarding(mem::Addr obj, mem::Addr to)
{
    CHARON_ASSERT((to & 7) == 0, "unaligned forwardee");
    std::uint64_t mark = load64(obj + 8);
    mark = (mark & kAgeMask) | kFwdFlag | ((to >> 3) << kFwdAddrShift);
    store64(obj + 8, mark);
}

void
ObjectArena::clearForwarding(mem::Addr obj)
{
    store64(obj + 8, load64(obj + 8) & kAgeMask);
}

} // namespace charon::heap
