#include "rng.hh"

#include <cmath>

namespace charon::sim
{

double
Rng::log2d(std::uint64_t v)
{
    return std::log2(static_cast<double>(v));
}

double
Rng::exp2d(double v)
{
    return std::exp2(v);
}

} // namespace charon::sim
