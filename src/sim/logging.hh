/**
 * @file
 * Status / error reporting in the gem5 tradition.
 *
 * - panic():  an internal simulator bug; should never happen regardless of
 *             user input. Aborts (so it can core-dump under a debugger).
 * - fatal():  the simulation cannot continue because of a user error
 *             (bad configuration, impossible parameters). Exits cleanly.
 * - warn():   something is modelled approximately or suspiciously.
 * - inform(): plain status output.
 */

#ifndef CHARON_SIM_LOGGING_HH
#define CHARON_SIM_LOGGING_HH

#include <cstdarg>
#include <string>

namespace charon::sim
{

/** Verbosity control for inform(); warnings are always printed. */
enum class LogLevel { Quiet, Normal, Verbose };

/** Set the global log level (default Normal). */
void setLogLevel(LogLevel level);

/** Current global log level. */
LogLevel logLevel();

/** printf-style formatting into a std::string. */
std::string vformat(const char *fmt, std::va_list ap);

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Internal-bug abort; never returns. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** User-error exit; never returns. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr. */
void warn(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a status message to stderr (suppressed under Quiet). */
void inform(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a verbose trace message (only under Verbose). */
void trace(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Assert a simulator invariant; active in all build types (unlike
 * assert(), these guard simulation correctness, not just debugging).
 */
#define CHARON_ASSERT(cond, ...)                                            \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::charon::sim::panic("assertion '%s' failed at %s:%d: %s",      \
                                 #cond, __FILE__, __LINE__,                 \
                                 ::charon::sim::format(__VA_ARGS__)         \
                                     .c_str());                             \
        }                                                                   \
    } while (0)

} // namespace charon::sim

#endif // CHARON_SIM_LOGGING_HH
