/**
 * @file
 * Unit tests for the discrete-event kernel: ordering, determinism,
 * cancellation, bounded runs, and reentrancy.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <set>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/rng.hh"

using charon::sim::EventQueue;
using charon::sim::Tick;

TEST(EventQueue, StartsAtTimeZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(42, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, ScheduleInIsRelative)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(100, [&] {
        eq.scheduleIn(50, [&] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, RunUntilStopsEarly)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(1000, [&] { ++fired; });
    auto executed = eq.run(500);
    EXPECT_EQ(executed, 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 500u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, DescheduleCancelsPendingEvent)
{
    EventQueue eq;
    bool fired = false;
    auto id = eq.schedule(10, [&] { fired = true; });
    EXPECT_TRUE(eq.deschedule(id));
    eq.run();
    EXPECT_FALSE(fired);
}

TEST(EventQueue, DescheduleOfFiredEventReturnsFalse)
{
    EventQueue eq;
    auto id = eq.schedule(10, [] {});
    eq.run();
    EXPECT_FALSE(eq.deschedule(id));
}

TEST(EventQueue, DoubleDescheduleReturnsFalse)
{
    EventQueue eq;
    auto id = eq.schedule(10, [] {});
    EXPECT_TRUE(eq.deschedule(id));
    EXPECT_FALSE(eq.deschedule(id));
    eq.run();
}

TEST(EventQueue, DescheduleOfUnknownIdReturnsFalse)
{
    EventQueue eq;
    EXPECT_FALSE(eq.deschedule(0));
    EXPECT_FALSE(eq.deschedule(12345));
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 100)
            eq.scheduleIn(1, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(depth, 100);
    EXPECT_EQ(eq.now(), 99u);
}

TEST(EventQueue, PendingEventCountTracksScheduleAndCancel)
{
    EventQueue eq;
    auto a = eq.schedule(10, [] {});
    eq.schedule(20, [] {});
    EXPECT_EQ(eq.pendingEvents(), 2u);
    eq.deschedule(a);
    EXPECT_EQ(eq.pendingEvents(), 1u);
    eq.run();
    EXPECT_EQ(eq.pendingEvents(), 0u);
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] { ++fired; });
    eq.schedule(2, [&] { ++fired; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 2);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, RunReturnsExecutedCount)
{
    EventQueue eq;
    for (Tick t = 0; t < 25; ++t)
        eq.schedule(t, [] {});
    EXPECT_EQ(eq.run(), 25u);
}

TEST(EventQueue, CancelledEventDoesNotBlockSameTickSiblings)
{
    EventQueue eq;
    std::vector<int> order;
    auto a = eq.schedule(5, [&] { order.push_back(1); });
    eq.schedule(5, [&] { order.push_back(2); });
    eq.deschedule(a);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{2}));
}

TEST(EventQueue, RandomizedStressMatchesSortedOracle)
{
    // Adversarial mix of schedules (including reentrant ones from
    // inside callbacks), cancellations, and bounded runs.  The
    // calendar queue's firing order must match the specification
    // oracle exactly: every non-cancelled event fires at its own
    // tick, globally ordered by (when, insertion seq).  The mix
    // forces bucket growth, cursor wrap-around, tombstone sweeps,
    // and same-tick FIFO chains.
    for (std::uint64_t seed : {1ull, 42ull, 0xDEADull, 31337ull}) {
        charon::sim::Rng rng(seed);
        EventQueue eq;

        std::uint64_t seq = 0;
        std::vector<std::pair<Tick, std::uint64_t>> scheduled;
        std::set<std::uint64_t> cancelled;
        std::set<std::uint64_t> fired_set;
        std::vector<std::uint64_t> fired;
        std::vector<std::pair<charon::sim::EventId, std::uint64_t>> live;

        std::function<void(Tick, int)> scheduleEvent =
            [&](Tick when, int depth) {
                const std::uint64_t s = seq++;
                scheduled.emplace_back(when, s);
                auto id = eq.schedule(when, [&, when, s, depth] {
                    EXPECT_EQ(eq.now(), when) << "seed " << seed;
                    fired.push_back(s);
                    fired_set.insert(s);
                    if (depth > 0 && rng.chance(0.25))
                        scheduleEvent(eq.now() + rng.below(3000),
                                      depth - 1);
                });
                live.emplace_back(id, s);
            };

        for (int round = 0; round < 40; ++round) {
            const std::uint64_t burst = 1 + rng.below(25);
            for (std::uint64_t i = 0; i < burst; ++i) {
                // Mostly near-future (the calendar queue's sweet
                // spot), sometimes far ahead to force a cursor skip
                // or a resize, sometimes exactly "now".
                Tick delta = rng.chance(0.1) ? rng.below(200000)
                                             : rng.below(4000);
                scheduleEvent(eq.now() + delta, 2);
            }
            while (!live.empty() && rng.chance(0.4)) {
                const std::size_t i = rng.below(live.size());
                const auto [id, s] = live[i];
                const bool was_pending = fired_set.count(s) == 0
                                         && cancelled.count(s) == 0;
                EXPECT_EQ(eq.deschedule(id), was_pending)
                    << "seed " << seed << " seq " << s;
                if (was_pending)
                    cancelled.insert(s);
                live.erase(live.begin() + i);
            }
            eq.run(eq.now() + rng.below(8000));
        }
        eq.run();
        EXPECT_TRUE(eq.empty());
        EXPECT_EQ(eq.pendingEvents(), 0u);

        // The oracle: stable specification order over what survived.
        std::vector<std::pair<Tick, std::uint64_t>> expected_events;
        for (const auto &e : scheduled) {
            if (cancelled.count(e.second) == 0)
                expected_events.push_back(e);
        }
        std::sort(expected_events.begin(), expected_events.end());
        std::vector<std::uint64_t> expected;
        expected.reserve(expected_events.size());
        for (const auto &e : expected_events)
            expected.push_back(e.second);
        EXPECT_EQ(fired, expected) << "seed " << seed;
        EXPECT_EQ(eq.executedEvents(), expected.size())
            << "seed " << seed;
    }
}
