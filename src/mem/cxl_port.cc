#include "cxl_port.hh"

#include <algorithm>

namespace charon::mem
{

using sim::Tick;

CxlHostPort::CxlHostPort(sim::EventQueue &eq, Ddr4Memory &dram,
                         const sim::CxlConfig &cfg,
                         const sim::Instrumentation &instr)
    : eq_(eq), dram_(dram), cfg_(cfg),
      link_(eq, "cxl.link", sim::gbPerSecToBytesPerTick(cfg.linkGBs),
            instr)
{
}

Tick
CxlHostPort::linkLatency() const
{
    return sim::nsToTicks(cfg_.linkLatencyNs);
}

Tick
CxlHostPort::latency(AccessPattern pattern) const
{
    return dram_.latency(pattern) + 2 * linkLatency();
}

double
CxlHostPort::peakRate() const
{
    return std::min(dram_.peakRate(), link_.capacity());
}

void
CxlHostPort::stream(const StreamRequest &req, StreamCallback done)
{
    // The transfer occupies the link (flit headers inflate the
    // payload: 8 B per 64 B) and the expander DRAM concurrently; the
    // slower drains last, then one round trip is exposed delivering
    // the tail response.
    const Tick rt = 2 * linkLatency();
    std::uint64_t link_bytes = req.bytes + (req.bytes / 64) * 8;
    sim::JoinPool *joins = &joins_;
    sim::EventQueue *eq = &eq_;
    StreamCallback shifted = [eq, done = std::move(done), rt](Tick t) {
        eq->schedule(t + rt, [done, t, rt] {
            if (done)
                done(t + rt);
        });
    };
    sim::Join *join =
        joins->acquire(2, sim::JoinPool::wrap(std::move(shifted)));
    auto arrive = [join](Tick t) { join->arrive(t); };
    link_.startFlow(link_bytes, req.maxRate, arrive);
    dram_.stream(req, arrive);
}

} // namespace charon::mem
