/**
 * @file
 * charon-sim: the command-line driver a downstream user runs.
 *
 * Runs a catalog workload functionally (or loads a saved trace),
 * replays it on one or more platforms, and prints timing, breakdowns,
 * bandwidth, and energy.  Functional runs go through the harness's
 * persistent trace cache, so the second invocation of the same
 * (workload, heap, seed, threads) tuple skips straight to the
 * replays; --jobs fans the platform replays out over a thread pool.
 *
 * Usage examples:
 *   charon-sim --workload=KM
 *   charon-sim --workload=CC --heap-mib=96 --platforms=ddr4,charon
 *   charon-sim --workload=BS --save-trace=bs.trace
 *   charon-sim --load-trace=bs.trace --cube-shift=26 --csv
 *   charon-sim --workload=ALS --find-min-heap
 *   charon-sim --workload=KM --jobs=8 --cache-dir=/tmp/traces
 */

#include <cstdio>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "gc/trace_io.hh"
#include "harness/options.hh"
#include "harness/result_sink.hh"
#include "platform/platform_sim.hh"
#include "report/table.hh"
#include "workload/mutator.hh"

using namespace charon;

namespace
{

struct SimOptions
{
    harness::Options common;
    std::string workload;
    std::uint64_t heapMib = 0;
    std::uint64_t seed = 1;
    int gcThreads = 8;
    std::vector<sim::PlatformKind> platforms;
    std::string saveTrace;
    std::string loadTrace;
    int cubeShift = 0;
    bool findMinHeap = false;
    bool dumpStats = false;
};

std::optional<sim::PlatformKind>
parsePlatform(const std::string &name)
{
    if (name == "ddr4")
        return sim::PlatformKind::HostDdr4;
    if (name == "hmc")
        return sim::PlatformKind::HostHmc;
    if (name == "charon")
        return sim::PlatformKind::CharonNmp;
    if (name == "charon-cpu")
        return sim::PlatformKind::CharonCpuSide;
    if (name == "ideal")
        return sim::PlatformKind::Ideal;
    if (name == "igpu")
        return sim::PlatformKind::IgpuOffload;
    if (name == "cxl")
        return sim::PlatformKind::CxlMsa;
    return std::nullopt;
}

bool
parseArgs(int argc, char **argv, SimOptions &opt)
{
    auto &common = opt.common;
    common.helpHeader = "charon-sim: replay GC primitive traces on "
                        "the paper's platforms";
    common.flag("--workload", &opt.workload,
                "BS | KM | LR | CC | PR | ALS");
    common.flag("--heap-mib", &opt.heapMib,
                "max heap (default: Table 3 value)");
    common.flag("--seed", &opt.seed, "workload RNG seed (default 1)");
    common.flag("--gc-threads", &opt.gcThreads,
                "GC threads (default 8)");
    common.flag(
        "--platforms",
        [&opt](const std::string &v) {
            std::stringstream ss(v);
            std::string item;
            while (std::getline(ss, item, ',')) {
                auto kind = parsePlatform(item);
                if (!kind)
                    return false;
                opt.platforms.push_back(*kind);
            }
            return true;
        },
        "comma list of ddr4,hmc,charon,\ncharon-cpu,ideal,igpu,cxl "
        "(default:\nthe paper's five)",
        "LIST");
    common.flag("--save-trace", &opt.saveTrace,
                "persist the primitive trace");
    common.flag("--load-trace", &opt.loadTrace,
                "replay a saved trace instead of\nrunning a workload");
    common.flag("--cube-shift", &opt.cubeShift,
                "address-to-cube shift for a loaded\ntrace (printed "
                "when saving)");
    common.flag("--find-min-heap", &opt.findMinHeap,
                "report the smallest runnable heap");
    common.flag("--dump-stats", &opt.dumpStats,
                "per-channel byte/utilization stats");
    return harness::parseOptions(argc, argv, common);
}

} // namespace

int
main(int argc, char **argv)
{
    SimOptions opt;
    if (!parseArgs(argc, argv, opt))
        return 2;
    if (opt.platforms.empty()) {
        opt.platforms = {sim::PlatformKind::HostDdr4,
                         sim::PlatformKind::HostHmc,
                         sim::PlatformKind::CharonNmp,
                         sim::PlatformKind::CharonCpuSide,
                         sim::PlatformKind::Ideal};
    }

    harness::ExperimentRunner runner(opt.common.runnerConfig());
    harness::Report report(opt.common);

    std::vector<harness::Cell> cells;
    if (!opt.loadTrace.empty()) {
        // A saved trace sidesteps the keyed cache: wrap it in a
        // customRun so the replays still fan out over the pool.
        if (opt.cubeShift == 0) {
            std::fprintf(stderr,
                         "error: --cube-shift is required with "
                         "--load-trace\n");
            return 2;
        }
        auto loaded = std::make_shared<harness::FunctionalRun>();
        std::string error;
        if (!gc::loadTraceFile(opt.loadTrace, loaded->trace, &error)) {
            std::fprintf(stderr, "error: %s\n", error.c_str());
            return 1;
        }
        loaded->cubeShift = opt.cubeShift;
        for (auto kind : opt.platforms) {
            harness::Cell c;
            c.platform = kind;
            c.customRun = [loaded] { return *loaded; };
            c.label = std::string(sim::platformName(kind)) + " (trace "
                      + opt.loadTrace + ")";
            cells.push_back(c);
        }
    } else {
        if (opt.workload.empty()) {
            std::fprintf(stderr,
                         "error: --workload (or --load-trace) is "
                         "required\n\n%s",
                         opt.common.usageText().c_str());
            return 2;
        }
        const auto &params = workload::findWorkload(opt.workload);
        if (opt.findMinHeap) {
            std::uint64_t min_heap =
                workload::findMinimumHeapBytes(params, opt.seed);
            std::printf("%s minimum runnable heap: %llu MiB "
                        "(catalog: %llu MiB)\n",
                        params.name.c_str(),
                        static_cast<unsigned long long>(min_heap >> 20),
                        static_cast<unsigned long long>(
                            params.minHeapBytes >> 20));
            return 0;
        }
        for (auto kind : opt.platforms) {
            harness::Cell c;
            c.key.workload = opt.workload;
            c.key.heapBytes = opt.heapMib << 20;
            c.key.seed = opt.seed;
            c.key.gcThreads = opt.gcThreads;
            c.platform = kind;
            c.label = opt.workload + " on " + sim::platformName(kind);
            cells.push_back(c);
        }
    }

    auto results = runner.run(cells);

    // The functional facts line (and --save-trace) come from the
    // shared run object, which every successful cell references.
    const harness::FunctionalRun *run = nullptr;
    for (const auto &res : results) {
        if (res.run) {
            run = res.run.get();
            break;
        }
    }
    if (run == nullptr) {
        for (std::size_t i = 0; i < cells.size(); ++i)
            report.checkCell(cells[i], results[i]);
        harness::finishTimeline(runner, opt.common);
        return report.finish(std::cout);
    }
    if (run->oom) {
        std::fprintf(stderr,
                     "workload hit OOM; try a larger --heap-mib\n");
        return 1;
    }
    if (opt.loadTrace.empty()) {
        std::printf("%s: %llu minor + %llu major GCs, %llu MiB "
                    "allocated (cube shift %d)\n",
                    opt.workload.c_str(),
                    static_cast<unsigned long long>(run->gcsMinor),
                    static_cast<unsigned long long>(run->gcsMajor),
                    static_cast<unsigned long long>(
                        run->allocatedBytes >> 20),
                    run->cubeShift);
    }
    if (!opt.saveTrace.empty()) {
        std::string error;
        if (!gc::saveTraceFile(opt.saveTrace, run->trace, &error)) {
            std::fprintf(stderr, "error: %s\n", error.c_str());
            return 1;
        }
        std::printf("trace saved to %s (replay with --load-trace=%s "
                    "--cube-shift=%d)\n",
                    opt.saveTrace.c_str(), opt.saveTrace.c_str(),
                    run->cubeShift);
    }

    auto &table = report.table(
        "charon-sim", "",
        {"platform", "GC ms", "minor ms", "major ms", "speedup",
         "GB/s", "local", "energy J"});
    double baseline = 0;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (!report.checkCell(cells[i], results[i]))
            continue;
        const auto &t = results[i].timing;
        if (opt.dumpStats) {
            // Stats live inside the PlatformSim, which the runner
            // owns per cell; re-simulate serially just for the dump.
            platform::PlatformSim sim_(cells[i].platform,
                                       cells[i].config,
                                       results[i].run->cubeShift);
            sim_.simulate(results[i].run->trace);
            std::cout << "--- " << sim::platformName(cells[i].platform)
                      << " memory-system stats ---\n";
            sim_.dumpStats(std::cout);
        }
        if (baseline == 0)
            baseline = t.gcSeconds;
        table.addRow(
            {sim::platformName(cells[i].platform),
             report::num(t.gcSeconds * 1e3, 2),
             report::num(t.minorSeconds * 1e3, 2),
             report::num(t.majorSeconds * 1e3, 2),
             report::times(baseline / t.gcSeconds),
             report::num(t.avgGcBandwidthGBs, 1),
             t.localAccessFraction > 0
                 ? report::num(100 * t.localAccessFraction, 0) + "%"
                 : "-",
             report::num(t.totalEnergyJ(), 3)});
    }
    report.addRollups(cells, results);
    harness::finishTimeline(runner, opt.common);
    return report.finish(std::cout);
}
