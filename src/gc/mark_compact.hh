/**
 * @file
 * MajorGC: the mark-compact full collector (Figure 3(b)).
 *
 * Phase 1 (mark): trace the object graph from the roots, setting the
 * begin/end bits of every live object in the mark bitmaps
 * (Scan&Push + mark_obj).
 *
 * Phase 2 (summary): per heap region, the live-word total and the
 * destination prefix (cheap; <0.03% of MajorGC per the paper).
 *
 * Phase 3 (compact): viewing the heap as one linear space, every live
 * object's destination is
 *     dest = heap_base + 8 x (live words to its left)
 * computed in HotSpot as region_destination +
 * live_words_in_range(region_start, obj) — the Bitmap Count
 * primitive, invoked once per moved object and once per adjusted
 * pointer — followed by the Copy that moves the object.
 *
 * All live objects (old and young) compact to the bottom of the Old
 * generation; the young spaces end up empty, like a HotSpot full GC.
 */

#ifndef CHARON_GC_MARK_COMPACT_HH
#define CHARON_GC_MARK_COMPACT_HH

#include <cstdint>
#include <vector>

#include "gc/recorder.hh"
#include "heap/heap.hh"

namespace charon::gc
{

/**
 * One full collection.
 */
class MarkCompact
{
  public:
    struct Result
    {
        std::uint64_t liveObjects = 0;
        std::uint64_t liveBytes = 0;
        std::uint64_t bytesMoved = 0;
        std::uint64_t pointersAdjusted = 0;
        bool outOfMemory = false; ///< live set exceeds Old capacity
    };

    /** Compaction region size (HotSpot ParallelCompact granularity). */
    static constexpr std::uint64_t kRegionBytes = 2048;

    MarkCompact(heap::ManagedHeap &heap, TraceRecorder &recorder);

    /** Run the collection; on OOM the heap is left unmodified. */
    Result collect();

  private:
    void markPhase();
    void summaryPhase();
    void compactPhase();

    bool isMarked(mem::Addr obj) const;

    /** Region index of @p addr. */
    std::uint64_t regionOf(mem::Addr addr) const;

    /** Destination of live object @p obj, recording the BitmapCount. */
    mem::Addr newAddrOf(mem::Addr obj);

    /** Exact new address from the prefix structure (no recording). */
    mem::Addr lookupNewAddr(mem::Addr obj) const;

    heap::ManagedHeap &heap_;
    TraceRecorder &rec_;
    Result result_;

    /** Live objects in ascending address order (built by mark+sort). */
    std::vector<mem::Addr> live_;
    /** Parallel to live_: exact destination addresses. */
    std::vector<mem::Addr> dest_;
    /** Per-region destination prefix in words (summary output). */
    std::vector<std::uint64_t> regionDestWords_;
};

} // namespace charon::gc

#endif // CHARON_GC_MARK_COMPACT_HH
