/**
 * @file
 * Tests for the report/table formatting helpers.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "report/table.hh"

using namespace charon::report;

TEST(Table, AlignsColumns)
{
    Table t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"long-name", "12345"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("long-name"), std::string::npos);
    // Numbers are right-aligned: "12345" ends each data line.
    EXPECT_NE(out.find("12345"), std::string::npos);
    // Separator line present.
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, RowWidthMismatchPanics)
{
    Table t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "row width");
}

TEST(Table, CsvOutput)
{
    Table t({"x", "y"});
    t.addRow({"1", "2"});
    t.addRow({"3", "4"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "x,y\n1,2\n3,4\n");
}

TEST(Formatting, Num)
{
    EXPECT_EQ(num(3.14159, 2), "3.14");
    EXPECT_EQ(num(3.14159, 0), "3");
    EXPECT_EQ(num(-1.5, 1), "-1.5");
}

TEST(Formatting, Times)
{
    EXPECT_EQ(times(3.289), "3.29x");
    EXPECT_EQ(times(1.0, 1), "1.0x");
}

TEST(Formatting, Percent)
{
    EXPECT_EQ(percent(1, 4), "25.0%");
    EXPECT_EQ(percent(2, 3, 0), "67%");
    EXPECT_EQ(percent(1, 0), "-");
}

TEST(Formatting, Heading)
{
    std::ostringstream os;
    heading(os, "Title");
    EXPECT_NE(os.str().find("== Title =="), std::string::npos);
}
