#include "rollup.hh"

#include <istream>
#include <ostream>

#include "gc/trace_io.hh"

namespace charon::gc
{

namespace
{

constexpr std::uint64_t kMagic = 0x4c4c4f524e524843ull; // "CHRNROLL"

/** Cap so a corrupted count cannot trigger a huge allocation. */
constexpr std::uint64_t kMaxVectorLen = 1u << 20;

} // namespace

double
PhaseRollup::threadSeconds() const
{
    double s = glueSeconds;
    for (const auto &p : prims)
        s += p.seconds;
    return s;
}

std::uint64_t
PhaseRollup::totalBytes() const
{
    std::uint64_t b = 0;
    for (const auto &p : prims)
        b += p.bytes;
    return b;
}

RollupCell
GcRollup::totalByKind(PrimKind kind) const
{
    RollupCell total;
    for (const auto &phase : phases) {
        const auto &c = phase.prims[static_cast<int>(kind)];
        total.seconds += c.seconds;
        total.bytes += c.bytes;
        total.invocations += c.invocations;
    }
    return total;
}

double
GcRollup::glueSeconds() const
{
    double s = 0;
    for (const auto &phase : phases)
        s += phase.glueSeconds;
    return s;
}

RollupCell
RunRollup::totalByKind(PrimKind kind) const
{
    RollupCell total;
    for (const auto &gc : gcs) {
        RollupCell c = gc.totalByKind(kind);
        total.seconds += c.seconds;
        total.bytes += c.bytes;
        total.invocations += c.invocations;
    }
    return total;
}

double
RunRollup::glueSeconds() const
{
    double s = 0;
    for (const auto &gc : gcs)
        s += gc.glueSeconds();
    return s;
}

void
writeRollup(std::ostream &os, const RunRollup &rollup)
{
    io::putU64(os, kMagic);
    io::putU64(os, kRollupFormatVersion);
    io::putU64(os, rollup.gcs.size());
    for (const auto &gc : rollup.gcs) {
        io::putU64(os, gc.major ? 1 : 0);
        io::putU64(os, gc.phases.size());
        for (const auto &phase : gc.phases) {
            io::putU64(os, static_cast<std::uint64_t>(phase.kind));
            io::putF64(os, phase.wallSeconds);
            io::putF64(os, phase.glueSeconds);
            for (const auto &cell : phase.prims) {
                io::putF64(os, cell.seconds);
                io::putU64(os, cell.bytes);
                io::putU64(os, cell.invocations);
            }
        }
    }
}

bool
readRollup(std::istream &is, RunRollup &rollup, std::string *error)
{
    auto fail = [error](const char *why) {
        if (error)
            *error = why;
        return false;
    };
    std::uint64_t magic, version, gcs;
    if (!io::getU64(is, magic) || magic != kMagic)
        return fail("not a rollup stream (bad magic)");
    if (!io::getU64(is, version) || version != kRollupFormatVersion)
        return fail("unsupported rollup format version");
    if (!io::getU64(is, gcs) || gcs > kMaxVectorLen)
        return fail("truncated rollup stream");
    rollup.gcs.clear();
    rollup.gcs.reserve(gcs);
    for (std::uint64_t g = 0; g < gcs; ++g) {
        GcRollup gc;
        std::uint64_t major, phases;
        if (!io::getU64(is, major) || !io::getU64(is, phases)
            || phases > kMaxVectorLen) {
            return fail("truncated rollup stream");
        }
        gc.major = major != 0;
        gc.phases.reserve(phases);
        for (std::uint64_t p = 0; p < phases; ++p) {
            PhaseRollup phase;
            std::uint64_t kind;
            if (!io::getU64(is, kind)
                || kind > static_cast<std::uint64_t>(kLastPhaseKind)
                || !io::getF64(is, phase.wallSeconds)
                || !io::getF64(is, phase.glueSeconds)) {
                return fail("truncated rollup stream");
            }
            phase.kind = static_cast<PhaseKind>(kind);
            for (auto &cell : phase.prims) {
                if (!io::getF64(is, cell.seconds)
                    || !io::getU64(is, cell.bytes)
                    || !io::getU64(is, cell.invocations)) {
                    return fail("truncated rollup stream");
                }
            }
            gc.phases.push_back(phase);
        }
        rollup.gcs.push_back(std::move(gc));
    }
    return true;
}

bool
rollupEquals(const RunRollup &a, const RunRollup &b)
{
    if (a.gcs.size() != b.gcs.size())
        return false;
    for (std::size_t g = 0; g < a.gcs.size(); ++g) {
        const GcRollup &x = a.gcs[g];
        const GcRollup &y = b.gcs[g];
        if (x.major != y.major || x.phases.size() != y.phases.size())
            return false;
        for (std::size_t p = 0; p < x.phases.size(); ++p) {
            const PhaseRollup &u = x.phases[p];
            const PhaseRollup &v = y.phases[p];
            if (u.kind != v.kind || u.wallSeconds != v.wallSeconds
                || u.glueSeconds != v.glueSeconds) {
                return false;
            }
            for (int k = 0; k < kNumPrimKinds; ++k) {
                if (u.prims[k].seconds != v.prims[k].seconds
                    || u.prims[k].bytes != v.prims[k].bytes
                    || u.prims[k].invocations != v.prims[k].invocations)
                    return false;
            }
        }
    }
    return true;
}

} // namespace charon::gc
