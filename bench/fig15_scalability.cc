/**
 * @file
 * Figure 15: GC throughput scalability with the number of GC threads
 * (and, for Charon, a matching number of primitive units), comparing
 * the DDR4 host against Charon with unified vs. distributed bitmap
 * cache / TLB structures.
 *
 * Paper shape: DDR4 hardly scales past a few threads (34 GB/s wall);
 * Charon keeps scaling on internal bandwidth; the distributed design
 * generally scales better than the unified one because contention at
 * the central cube's structures is removed.
 */

#include "bench_common.hh"

using namespace charon;
using namespace charon::bench;

int
main()
{
    report::heading(std::cout,
                    "Figure 15: GC throughput scalability "
                    "(normalized to 1 thread on each platform)");

    const int thread_counts[] = {1, 2, 4, 8, 16};
    // Aggregate over one Spark-style and one GraphChi-style workload,
    // as the paper plots both behaviours.
    for (const std::string &name :
         {std::string("KM"), std::string("CC")}) {
        report::Table table({"threads", "DDR4", "Charon unified",
                             "Charon distributed"});
        double base_ddr4 = 0, base_uni = 0, base_dist = 0;
        for (int threads : thread_counts) {
            auto run = runWorkload(name, 0, 1, threads);
            sim::SystemConfig cfg;
            cfg.gcThreads = threads;
            // Scale the unit population with the thread count, as in
            // the paper's scalability study.
            cfg.charon.copySearchUnits = threads;
            cfg.charon.bitmapCountUnits = threads;
            cfg.charon.scanPushUnits = threads;

            auto ddr4 =
                replay(run, sim::PlatformKind::HostDdr4, cfg);
            auto uni = replay(run, sim::PlatformKind::CharonNmp, cfg);
            sim::SystemConfig dist_cfg = cfg;
            dist_cfg.charon.distributedStructures = true;
            auto dist =
                replay(run, sim::PlatformKind::CharonNmp, dist_cfg);

            if (threads == 1) {
                base_ddr4 = ddr4.gcSeconds;
                base_uni = uni.gcSeconds;
                base_dist = dist.gcSeconds;
            }
            table.addRow(
                {std::to_string(threads),
                 report::times(base_ddr4 / ddr4.gcSeconds),
                 report::times(base_uni / uni.gcSeconds),
                 report::times(base_dist / dist.gcSeconds)});
        }
        std::cout << "workload " << name << ":\n";
        table.print(std::cout);
        std::cout << '\n';
    }
    std::cout << "paper: DDR4 hardly scales (34 GB/s cap); Charon "
                 "scales with internal bandwidth; distributed "
                 "structures scale best\n";
    return 0;
}
