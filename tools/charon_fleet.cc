/**
 * @file
 * charon-fleet: run one multi-tenant fleet configuration and report
 * per-tenant and fleet-wide tail latency.
 *
 * The bench (bench/fleet) sweeps the whole mix x curve x policy grid;
 * this tool is the single-configuration driver for interactive
 * exploration — pick a mix, an arrival curve, an arbitration policy
 * and an SLO, optionally kill device slots mid-run, and read the
 * quantiles (or open the tenant-tagged --trace-out timeline in
 * Perfetto).
 *
 *   charon-fleet --mix services --arrival spike --policy deadline
 *   charon-fleet --tenants 12 --policy fair --slo-ms 0.5
 *   charon-fleet --fault unit-death:cube=0:at-ns=200000000 \
 *       --trace-out fleet.json
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault.hh"
#include "fleet/fleet_sim.hh"
#include "harness/options.hh"
#include "harness/result_sink.hh"
#include "report/table.hh"

using namespace charon;
using namespace charon::fleet;

int
main(int argc, char **argv)
{
    harness::Options opt;
    opt.helpHeader =
        "charon-fleet: one multi-tenant fleet run\n"
        "(bench/fleet sweeps the full policy grid)";

    std::string mix = "services";
    int tenants = 16;
    ArrivalCurve curve = ArrivalCurve::Spike;
    ArbPolicy policy = ArbPolicy::DeadlineAware;
    double sloMs = 1.0;
    double horizonSec = 1.0;
    double gcRateScale = 24.0;
    int slots = 0;
    std::uint64_t seed = 1;
    std::vector<std::string> faultSpecs;
    opt.flag("--mix", &mix,
             "tenant mix: services or mixed\n(default services)");
    opt.flag("--tenants", &tenants, "tenant heaps\n(default 16)");
    opt.flag(
        "--arrival",
        [&curve](const std::string &v) {
            return parseArrivalCurve(v, curve);
        },
        "arrival curve: steady, diurnal, spike\n(default spike)",
        "CURVE");
    opt.flag(
        "--policy",
        [&policy](const std::string &v) {
            return parseArbPolicy(v, policy);
        },
        "arbitration: fcfs, fair, deadline\n(default deadline)",
        "POLICY");
    opt.flag("--slo-ms", &sloMs,
             "GC-pause SLO deadline, ms (0 = none;\ndefault 1)");
    opt.flag("--horizon", &horizonSec,
             "simulated seconds of arrivals\n(default 1)");
    opt.flag("--gc-scale", &gcRateScale,
             "consolidation density: solo-profile GC\ncycles per "
             "horizon (default 24)");
    opt.flag("--slots", &slots,
             "device collection slots (0 = derive from\nthe platform)");
    opt.flag("--seed", &seed,
             "fleet seed for arrival + jitter streams\n(default 1)");
    opt.flag(
        "--fault",
        [&faultSpecs](const std::string &v) {
            faultSpecs.push_back(v);
            return true;
        },
        "kill slots: unit-death / cube-offline with\nat-ns "
        "(repeatable)",
        "KIND[:KEY=V]...");
    if (!harness::parseOptions(argc, argv, opt))
        return 2;

    FleetConfig cfg;
    cfg.policy = policy;
    cfg.sloMs = sloMs;
    cfg.arrival.curve = curve;
    cfg.arrival.horizonSec = horizonSec;
    cfg.gcRateScale = gcRateScale;
    cfg.slots = slots;
    cfg.seed = seed;
    cfg.faults.seed = seed;
    cfg.timeline = !opt.traceOut.empty();
    cfg.tenants = fleetMix(mix, tenants);
    for (const auto &text : faultSpecs) {
        fault::FaultSpec spec;
        std::string error;
        if (!fault::parseFaultSpec(text, spec, &error)) {
            std::fprintf(stderr, "%s: %s\n", argv[0], error.c_str());
            return 2;
        }
        cfg.faults.specs.push_back(spec);
    }

    harness::RunnerConfig rc = opt.runnerConfig();
    rc.timeline = false; // the fleet emits its own timelines
    harness::ExperimentRunner runner(rc);
    std::vector<TenantProfile> profiles;
    std::string error;
    if (!buildProfiles(runner, cfg.tenants, &profiles, &error)) {
        std::fprintf(stderr, "%s: %s\n", argv[0], error.c_str());
        return 1;
    }

    FleetResult res = runFleet(cfg, profiles);

    harness::Report report(opt);
    auto &table = report.table(
        "fleet",
        "Fleet: " + mix + " x " + std::to_string(tenants)
            + " tenants, " + arrivalCurveName(curve) + " arrivals, "
            + arbPolicyName(policy) + " policy, SLO "
            + report::num(sloMs, 2) + " ms",
        {"tenant", "requests", "GCs", "GC p50(ms)", "GC p99(ms)",
         "GC p99.9(ms)", "GC max(ms)", "req p50(ms)", "req p99.9(ms)",
         "host GCs", "SLO miss"});
    auto row = [](const std::string &name, const TenantResult &t) {
        return std::vector<std::string>{
            name,
            std::to_string(t.requests),
            std::to_string(t.gcs),
            report::num(t.pauseMs.quantile(0.50), 3),
            report::num(t.pauseMs.quantile(0.99), 3),
            report::num(t.pauseMs.quantile(0.999), 3),
            report::num(t.maxPauseMs, 3),
            report::num(t.requestMs.quantile(0.50), 3),
            report::num(t.requestMs.quantile(0.999), 3),
            std::to_string(t.hostFallbacks),
            std::to_string(t.sloMisses)};
    };
    for (const auto &tr : res.tenants)
        table.addRow(row(tr.name, tr));
    TenantResult fleetWide;
    fleetWide.pauseMs = res.pauseMs;
    fleetWide.requestMs = res.requestMs;
    fleetWide.requests = res.requests;
    fleetWide.gcs = res.gcs;
    fleetWide.hostFallbacks = res.hostFallbacks;
    fleetWide.sloMisses = res.sloMisses;
    fleetWide.maxPauseMs = res.pauseMs.max();
    table.addRow(row("fleet", fleetWide));
    if (res.slotsKilled > 0) {
        table.note("\n" + std::to_string(res.slotsKilled)
                   + " device slot(s) fault-killed during the run");
    }

    if (!opt.traceOut.empty()) {
        std::vector<const sim::Timeline *> ptrs;
        for (const auto &tl : res.timelines)
            ptrs.push_back(tl.get());
        std::ofstream out(opt.traceOut);
        sim::Timeline::writeChromeTrace(out, ptrs);
        std::fprintf(stderr,
                     "charon-fleet: wrote %zu timelines to %s\n",
                     ptrs.size(), opt.traceOut.c_str());
    }

    return report.finish(std::cout);
}
