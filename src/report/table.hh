/**
 * @file
 * Console table formatting for the bench harness: aligned columns,
 * numeric formatting helpers, and CSV emission so results can be
 * diffed or plotted.
 */

#ifndef CHARON_REPORT_TABLE_HH
#define CHARON_REPORT_TABLE_HH

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace charon::report
{

/**
 * A simple aligned text table.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append one row; must match the header count. */
    Table &addRow(std::vector<std::string> cells);

    /** Print with aligned columns (first column left, rest right). */
    void print(std::ostream &os) const;

    /** Print as CSV. */
    void printCsv(std::ostream &os) const;

    std::size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p decimals places. */
std::string num(double value, int decimals = 2);

/** Format as a multiplier, e.g. "3.29x". */
std::string times(double value, int decimals = 2);

/** Format as a percentage of @p total, e.g. "45.1%". */
std::string percent(double part, double total, int decimals = 1);

/** Print a section heading. */
void heading(std::ostream &os, const std::string &title);

} // namespace charon::report

#endif // CHARON_REPORT_TABLE_HH
