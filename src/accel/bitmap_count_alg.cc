#include "bitmap_count_alg.hh"

#include <bit>
#include <vector>

#include "sim/logging.hh"

namespace charon::accel
{

std::uint64_t
optimizedWordCycles(std::uint64_t start_bit, std::uint64_t end_bit)
{
    if (end_bit <= start_bit)
        return 0;
    std::uint64_t first_word = start_bit >> 6;
    std::uint64_t last_word = (end_bit - 1) >> 6;
    return 2 * (last_word - first_word + 1); // begin map + end map
}

std::uint64_t
optimizedLiveWords(const heap::MarkBitmap &beg,
                   const heap::MarkBitmap &end, std::uint64_t start_bit,
                   std::uint64_t end_bit)
{
    if (end_bit <= start_bit)
        return 0;
    CHARON_ASSERT(end_bit <= beg.numBits(), "range beyond bitmap");

    // Extract the masked words of the range; word 0 holds the range's
    // least-significant (lowest-address) bits.
    const std::uint64_t first_word = start_bit >> 6;
    const std::uint64_t last_word = (end_bit - 1) >> 6;
    const std::size_t n = static_cast<std::size_t>(
        last_word - first_word + 1);
    std::vector<std::uint64_t> b(n), e(n);
    for (std::size_t i = 0; i < n; ++i) {
        b[i] = beg.word(first_word + i);
        e[i] = end.word(first_word + i);
    }
    // Mask bits below start_bit in the first word and at/after
    // end_bit in the last word.
    const int lo = static_cast<int>(start_bit & 63);
    if (lo) {
        b[0] &= ~0ull << lo;
        e[0] &= ~0ull << lo;
    }
    const int hi = static_cast<int>(end_bit & 63);
    if (hi) {
        b[n - 1] &= ~0ull >> (64 - hi);
        e[n - 1] &= ~0ull >> (64 - hi);
    }

    // Corner case 1: the range starts inside an object — the lowest
    // set bit overall belongs to the end map only.  Drop it: the
    // reference algorithm never pairs it.
    for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t any = b[i] | e[i];
        if (any == 0)
            continue;
        int bit = std::countr_zero(any);
        if ((e[i] >> bit) & 1ull) {
            if (!((b[i] >> bit) & 1ull))
                e[i] &= ~(1ull << bit);
        }
        break;
    }
    // Corner case 2: an object starts in range but ends beyond it —
    // the highest set bit overall belongs to the begin map only.
    // Drop it: the reference counts such objects as zero words.
    for (std::size_t i = n; i-- > 0;) {
        std::uint64_t any = b[i] | e[i];
        if (any == 0)
            continue;
        int bit = 63 - std::countl_zero(any);
        if ((b[i] >> bit) & 1ull) {
            if (!((e[i] >> bit) & 1ull))
                b[i] &= ~(1ull << bit);
        }
        break;
    }

    // count = popcount(E - B) + popcount(B), computed word-wise with
    // borrow propagation from the least-significant word upward —
    // one (word-pair) per cycle in hardware.
    std::uint64_t count = 0;
    std::uint64_t borrow = 0;
    for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t d1 = e[i] - b[i];
        std::uint64_t borrow1 = e[i] < b[i] ? 1u : 0u;
        std::uint64_t d = d1 - borrow;
        std::uint64_t borrow2 = d1 < borrow ? 1u : 0u;
        borrow = borrow1 | borrow2;
        count += static_cast<std::uint64_t>(std::popcount(d));
        count += static_cast<std::uint64_t>(std::popcount(b[i]));
    }
    CHARON_ASSERT(borrow == 0,
                  "unbalanced begin/end bits after corner handling");
    return count;
}

} // namespace charon::accel
