/**
 * @file
 * Figure 4: runtime breakdown of MinorGC (a) and MajorGC (b) by
 * operation on the host + DDR4 baseline.
 *
 * Paper shape: Search + Scan&Push + Copy cover 71.4% (Spark) / 78.2%
 * (GraphChi) of MinorGC; Scan&Push + Bitmap Count + Copy cover 74.1% /
 * 79.1% of MajorGC.  Spark leans on Copy (+Search); GraphChi leans on
 * Scan&Push and Bitmap Count; ALS is Copy-heavy despite being a
 * GraphChi workload (one huge matrix object).
 */

#include "bench_common.hh"

using namespace charon;
using namespace charon::bench;

namespace
{

void
breakdownTable(const char *title, bool major)
{
    report::heading(std::cout, title);
    report::Table table({"workload", "Copy", "Search", "Scan&Push",
                         "BitmapCount", "Other", "primitives total"});
    double spark_sum = 0, graphchi_sum = 0;
    int spark_n = 0, graphchi_n = 0;
    for (const auto &name : allWorkloads()) {
        auto run = runWorkload(name);
        auto timing = replay(run, sim::PlatformKind::HostDdr4);
        auto bd = major ? timing.majorBreakdown : timing.minorBreakdown;
        double total = bd.total();
        double prim = bd.offloadable();
        table.addRow({name, report::percent(bd.copy, total),
                      report::percent(bd.search, total),
                      report::percent(bd.scanPush, total),
                      report::percent(bd.bitmapCount, total),
                      report::percent(bd.glue, total),
                      report::percent(prim, total)});
        const auto &params = workload::findWorkload(name);
        if (params.framework == "Spark") {
            spark_sum += prim / total;
            ++spark_n;
        } else {
            graphchi_sum += prim / total;
            ++graphchi_n;
        }
    }
    table.print(std::cout);
    std::cout << "\nframework averages of the primitive share: Spark "
              << report::num(100 * spark_sum / spark_n, 1)
              << "% (paper: " << (major ? "74.1" : "71.4")
              << "%), GraphChi "
              << report::num(100 * graphchi_sum / graphchi_n, 1)
              << "% (paper: " << (major ? "79.1" : "78.2") << "%)\n";
}

} // namespace

int
main()
{
    breakdownTable("Figure 4(a): MinorGC runtime breakdown "
                   "(host + DDR4)",
                   /*major=*/false);
    breakdownTable("Figure 4(b): MajorGC runtime breakdown "
                   "(host + DDR4)",
                   /*major=*/true);
    return 0;
}
