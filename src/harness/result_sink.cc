#include "result_sink.hh"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "report/table.hh"
#include "sim/logging.hh"

namespace charon::harness
{

bool
usableSample(double v)
{
    return std::isfinite(v) && v > 0;
}

std::string
ratioCell(double numerator, double denominator)
{
    if (!usableSample(denominator) || !std::isfinite(numerator))
        return "-";
    return report::times(numerator / denominator);
}

ResultSink::ResultSink(std::string id, std::string title,
                       std::vector<std::string> headers)
    : id_(std::move(id)), title_(std::move(title)),
      headers_(std::move(headers))
{
}

ResultSink &
ResultSink::addRow(std::vector<std::string> cells)
{
    CHARON_ASSERT(cells.size() == headers_.size(),
                  "row width %zu != header width %zu in table %s",
                  cells.size(), headers_.size(), id_.c_str());
    rows_.push_back(std::move(cells));
    return *this;
}

ResultSink &
ResultSink::note(std::string text)
{
    notes_.push_back(std::move(text));
    return *this;
}

ResultSink &
Report::table(std::string id, std::string title,
              std::vector<std::string> headers)
{
    sinks_.emplace_back(std::move(id), std::move(title),
                        std::move(headers));
    return sinks_.back();
}

void
Report::cellFailed(const std::string &label, const CellResult &result)
{
    if (!result.oom)
        hardFailure_ = true;
    failures_.push_back(label + ": "
                        + (result.error.empty() ? "failed"
                                                : result.error));
}

bool
Report::checkCell(const Cell &cell, const CellResult &result)
{
    if (result.ok) {
        ++okCells_;
        return true;
    }
    std::string label = cell.label;
    if (label.empty()) {
        label = cell.key.workload + " on "
                + sim::platformName(cell.platform);
    }
    cellFailed(label, result);
    return false;
}

void
Report::addRollups(const std::vector<Cell> &cells,
                   const std::vector<CellResult> &results)
{
    if (!opt_.rollup)
        return;
    CHARON_ASSERT(cells.size() == results.size(),
                  "rollup: %zu cells vs %zu results", cells.size(),
                  results.size());
    auto &sink = table("rollup", "Per-phase primitive roll-up",
                       {"cell", "gc", "phase", "work", "seconds",
                        "bytes", "invocations"});
    auto fmt = [](double v) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.6g", v);
        return std::string(buf);
    };
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const Cell &cell = cells[i];
        const CellResult &res = results[i];
        if (!res.ok || !cell.replay)
            continue;
        std::string label = cell.label;
        if (label.empty()) {
            label = cell.key.workload + " on "
                    + sim::platformName(cell.platform);
        }
        for (std::size_t g = 0; g < res.timing.gcs.size(); ++g) {
            const gc::GcRollup &gc = res.timing.gcs[g].rollup;
            std::string gc_id = "#" + std::to_string(g)
                                + (gc.major ? " major" : " minor");
            for (const auto &phase : gc.phases) {
                const char *pname = gc::phaseKindName(phase.kind);
                for (int k = 0; k < gc::kNumPrimKinds; ++k) {
                    const auto &cellv = phase.prims[k];
                    if (cellv.seconds == 0 && cellv.invocations == 0)
                        continue;
                    sink.addRow(
                        {label, gc_id, pname,
                         gc::primKindName(static_cast<gc::PrimKind>(k)),
                         fmt(cellv.seconds),
                         std::to_string(cellv.bytes),
                         std::to_string(cellv.invocations)});
                }
                if (phase.glueSeconds != 0) {
                    sink.addRow({label, gc_id, pname, "glue",
                                 fmt(phase.glueSeconds), "-", "-"});
                }
            }
        }
    }
}

namespace
{

void
jsonEscape(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"':  os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

} // namespace

void
Report::writeJson(std::ostream &os) const
{
    os << "{\n  \"tables\": [\n";
    bool first_sink = true;
    for (const auto &sink : sinks_) {
        if (!first_sink)
            os << ",\n";
        first_sink = false;
        os << "    {\n      \"id\": ";
        jsonEscape(os, sink.id());
        os << ",\n      \"title\": ";
        jsonEscape(os, sink.title());
        os << ",\n      \"rows\": [\n";
        bool first_row = true;
        for (const auto &row : sink.rows()) {
            if (!first_row)
                os << ",\n";
            first_row = false;
            os << "        {";
            for (std::size_t c = 0; c < row.size(); ++c) {
                if (c)
                    os << ", ";
                jsonEscape(os, sink.headers()[c]);
                os << ": ";
                jsonEscape(os, row[c]);
            }
            os << '}';
        }
        os << "\n      ]\n    }";
    }
    os << "\n  ],\n  \"failed_cells\": [";
    for (std::size_t i = 0; i < failures_.size(); ++i) {
        if (i)
            os << ", ";
        jsonEscape(os, failures_[i]);
    }
    os << "]\n}\n";
}

int
Report::finish(std::ostream &os)
{
    for (const auto &sink : sinks_) {
        if (opt_.csv) {
            os << "# " << sink.id() << ": " << sink.title() << '\n';
            report::Table table(sink.headers());
            for (const auto &row : sink.rows())
                table.addRow(row);
            table.printCsv(os);
        } else {
            if (!sink.title().empty())
                report::heading(os, sink.title());
            report::Table table(sink.headers());
            for (const auto &row : sink.rows())
                table.addRow(row);
            table.print(os);
            for (const auto &n : sink.notes())
                os << n << '\n';
            os << '\n';
        }
    }
    if (!failures_.empty()) {
        if (opt_.csv) {
            for (const auto &f : failures_)
                os << "# failed-cell: " << f << '\n';
        } else {
            os << failures_.size()
               << " cell(s) failed and were excluded from the "
                  "aggregates:\n";
            for (const auto &f : failures_)
                os << "  - " << f << '\n';
        }
    }
    if (!opt_.jsonPath.empty()) {
        std::ofstream json(opt_.jsonPath);
        if (!json) {
            sim::warn("cannot write JSON report to %s",
                      opt_.jsonPath.c_str());
        } else {
            writeJson(json);
        }
    }
    if (hardFailure_)
        return 1;
    return (okCells_ == 0 && !failures_.empty()) ? 1 : 0;
}

} // namespace charon::harness
