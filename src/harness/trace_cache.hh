/**
 * @file
 * Content-keyed persistent cache of functional runs.
 *
 * The functional mutator run is the expensive half of every
 * experiment; its trace is deterministic in the FunctionalKey.  The
 * cache stores each run as a small keyed header (every key field,
 * plus the mutator-side outcome) followed by the standard trace_io
 * stream, under a file name derived from a hash of the key and
 * kTraceFormatVersion — so bumping the format orphans old entries
 * instead of misreading them, and a hash collision is caught by the
 * header comparison.  Corrupted or truncated files read as misses
 * and are silently regenerated.
 */

#ifndef CHARON_HARNESS_TRACE_CACHE_HH
#define CHARON_HARNESS_TRACE_CACHE_HH

#include <string>

#include "harness/cell.hh"

namespace charon::harness
{

class TraceCache
{
  public:
    /** @param dir cache directory; empty disables the cache. */
    explicit TraceCache(std::string dir);

    bool enabled() const { return !dir_.empty(); }
    const std::string &dir() const { return dir_; }

    /** The file a key maps to (even when the cache is disabled). */
    std::string path(const FunctionalKey &key) const;

    /**
     * Load the entry for @p key.
     * @retval false miss: absent, corrupted, version- or key-mismatched
     */
    bool load(const FunctionalKey &key, FunctionalRun &out) const;

    /**
     * Persist @p run under @p key (atomic rename; concurrent writers
     * of the same key are safe).  Failures warn and return false —
     * a broken cache must never fail an experiment.
     */
    bool store(const FunctionalKey &key, const FunctionalRun &run) const;

    /**
     * Default directory: $CHARON_CACHE_DIR, else
     * $XDG_CACHE_HOME/charon-traces, else ~/.cache/charon-traces,
     * else ./.charon-trace-cache.
     */
    static std::string defaultDir();

  private:
    std::string dir_;
};

} // namespace charon::harness

#endif // CHARON_HARNESS_TRACE_CACHE_HH
