/**
 * @file
 * Interface-conformance suite for the OffloadBackend implementations
 * (Charon near-memory, iGPU, CXL memory-side accelerator), plus a
 * golden four-way platform grid.
 *
 * Every backend must honor the same contract PlatformSim relies on:
 * capability masks that match what execBucket actually implements,
 * completions delivered through the event queue (never synchronously),
 * fault-engine hooks that actually perturb timing, and graceful
 * degradation to the pure-host replay when a trace offloads nothing.
 *
 * The four-way grid golden (tests/golden/backend_golden.json) pins
 * host / iGPU / Charon / CXL GC seconds on one cheap workload;
 * regenerate after an intended model change with
 *
 *     CHARON_UPDATE_GOLDEN=1 build/tests/test_backend
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "json_mini.hh"

#include "accel/backend.hh"
#include "harness/experiment_runner.hh"
#include "hmc/hmc.hh"
#include "mem/ddr4.hh"
#include "platform/platform_sim.hh"
#include "sim/event_queue.hh"
#include "workload/catalog.hh"
#include "workload/mutator.hh"

using namespace charon;
using accel::OffloadBackend;
using sim::PlatformKind;
using sim::Tick;

namespace
{

constexpr PlatformKind kBackendKinds[] = {
    PlatformKind::CharonNmp,
    PlatformKind::IgpuOffload,
    PlatformKind::CxlMsa,
};

/** One backend with the memories the factory wants for it. */
struct BackendRig
{
    sim::EventQueue eq;
    sim::SystemConfig cfg;
    hmc::HmcMemory hmc{eq, cfg.hmc};
    mem::Ddr4Memory ddr4{eq, cfg.ddr4};
    std::unique_ptr<OffloadBackend> backend;

    explicit BackendRig(PlatformKind kind)
    {
        hmc.setCubeShift(28);
        backend = accel::makeBackend(kind, eq, &hmc, &ddr4, cfg);
    }

    Tick
    exec(const gc::Bucket &b, double hit = 0.9)
    {
        Tick done = 0;
        bool fired = false;
        backend->execBucket(b, hit, [&](Tick t) {
            done = t;
            fired = true;
        });
        EXPECT_FALSE(fired)
            << "execBucket completed synchronously (contract: the "
               "callback must come off the event queue)";
        eq.run();
        EXPECT_TRUE(fired);
        return done;
    }
};

gc::Bucket
copyBucket(std::uint64_t bytes, std::uint64_t inv = 1)
{
    gc::Bucket b;
    b.kind = gc::PrimKind::Copy;
    b.srcCube = 1;
    b.dstCube = 1;
    b.invocations = inv;
    b.seqReadBytes = bytes;
    b.writeBytes = bytes;
    return b;
}

gc::Bucket
scanPushBucket()
{
    gc::Bucket b;
    b.kind = gc::PrimKind::ScanPush;
    b.srcCube = 1;
    b.dstCube = 1;
    b.invocations = 64;
    b.seqReadBytes = 1 << 16;
    b.randomAccesses = 1024;
    b.randomBytes = 1024 * 16;
    b.refsVisited = 4096;
    b.stackPushes = 512;
    b.bitmapRmwAccesses = 512;
    return b;
}

} // namespace

// ---------------------------------------------------------------------
// Capability honesty.
// ---------------------------------------------------------------------

TEST(BackendConformance, FactoryKindsAndCapabilityHonesty)
{
    for (PlatformKind kind : kBackendKinds) {
        BackendRig rig(kind);
        ASSERT_NE(rig.backend, nullptr) << sim::platformName(kind);
        EXPECT_EQ(rig.backend->kind(), sim::backendFor(kind));
        EXPECT_STREQ(rig.backend->name(),
                     sim::backendName(rig.backend->kind()));

        std::uint32_t mask = rig.backend->capabilityMask();
        EXPECT_NE(mask, 0u) << "a backend with no primitives should "
                               "not exist (use nullptr)";
        EXPECT_EQ(mask & ~gc::kAllPrimsMask, 0u)
            << "capability bits outside the primitive set";
        for (int k = 0; k < gc::kNumPrimKinds; ++k) {
            auto prim = static_cast<gc::PrimKind>(k);
            EXPECT_EQ(rig.backend->supports(prim),
                      (mask & gc::primBit(prim)) != 0);
        }
        EXPECT_GT(rig.backend->areaMm2(), 0.0);
        EXPECT_EQ(rig.backend->areaMm2(),
                  accel::backendAreaMm2(kind, rig.cfg));
    }
    // The Charon units implement the full Table 1 set.
    BackendRig charon(PlatformKind::CharonNmp);
    EXPECT_EQ(charon.backend->capabilityMask(), gc::kAllPrimsMask);
}

TEST(BackendConformance, HostPlatformsGetNoBackend)
{
    for (PlatformKind kind : {PlatformKind::HostDdr4,
                              PlatformKind::HostHmc,
                              PlatformKind::Ideal}) {
        BackendRig rig(kind);
        EXPECT_EQ(rig.backend, nullptr) << sim::platformName(kind);
        EXPECT_EQ(accel::backendAreaMm2(kind, rig.cfg), 0.0);
    }
}

// ---------------------------------------------------------------------
// Completion-join ordering.
// ---------------------------------------------------------------------

TEST(BackendConformance, EmptyBucketCompletesAtNowViaEvent)
{
    for (PlatformKind kind : kBackendKinds) {
        SCOPED_TRACE(sim::platformName(kind));
        BackendRig rig(kind);
        // exec() itself asserts the callback is never synchronous.
        Tick done = rig.exec(copyBucket(0, /*inv=*/0));
        EXPECT_EQ(done, 0u) << "empty bucket must complete at the "
                               "current tick";
    }
}

TEST(BackendConformance, CompletionOrderingAndDeterminism)
{
    for (PlatformKind kind : kBackendKinds) {
        SCOPED_TRACE(sim::platformName(kind));
        Tick small = BackendRig(kind).exec(copyBucket(64));
        Tick big = BackendRig(kind).exec(copyBucket(1 << 20));
        EXPECT_GT(small, 0u) << "non-empty bucket completing at t=0";
        EXPECT_GT(big, small)
            << "a 1 MB copy completing no later than a 64 B copy";
        // Determinism: a fresh rig replays the same bucket to the
        // identical tick.
        EXPECT_EQ(BackendRig(kind).exec(copyBucket(1 << 20)), big);

        // Two buckets issued at the same tick both complete, and the
        // join delivers each exactly once.
        BackendRig rig(kind);
        int fired = 0;
        rig.backend->execBucket(copyBucket(64), 0.9,
                                [&](Tick) { ++fired; });
        rig.backend->execBucket(copyBucket(4096), 0.9,
                                [&](Tick) { ++fired; });
        rig.eq.run();
        EXPECT_EQ(fired, 2);
    }
}

// ---------------------------------------------------------------------
// Fault hooks.
// ---------------------------------------------------------------------

TEST(BackendConformance, TlbPoisonSlowsEveryBackend)
{
    for (PlatformKind kind : kBackendKinds) {
        SCOPED_TRACE(sim::platformName(kind));
        Tick clean = BackendRig(kind).exec(scanPushBucket());

        BackendRig rig(kind);
        fault::FaultPlan plan;
        fault::FaultSpec spec;
        spec.kind = fault::FaultKind::TlbPoison;
        spec.rate = 1.0;
        plan.specs.push_back(spec);
        fault::FaultEngine engine(plan, rig.cfg.hmc.cubes);
        rig.backend->setFaultEngine(&engine);
        Tick poisoned = rig.exec(scanPushBucket());

        EXPECT_GT(poisoned, clean)
            << "a fully poisoned TLB must cost translation re-walks "
               "on every backend";
    }
}

// ---------------------------------------------------------------------
// Empty-capability degradation: a trace that offloads nothing must
// replay exactly like the matching pure-host platform.
// ---------------------------------------------------------------------

namespace
{

/** A small recorded run with every bucket pinned to the host. */
gc::RunTrace
hostOnlyTrace(int *cube_shift)
{
    const auto &params = workload::findWorkload("KM");
    workload::Mutator mut(params, params.minHeapBytes * 2, 5);
    mut.run();
    *cube_shift = mut.cubeShift();
    gc::RunTrace trace = mut.recorder().run();
    for (auto &g : trace.gcs) {
        g.capabilityMask = 0;
        for (auto &phase : g.phases) {
            for (auto &host_only : phase.buckets.hostOnly)
                host_only = 1;
        }
    }
    return trace;
}

void
expectTimingEq(const platform::RunTiming &a,
               const platform::RunTiming &b)
{
    EXPECT_EQ(a.gcSeconds, b.gcSeconds);
    EXPECT_EQ(a.minorSeconds, b.minorSeconds);
    EXPECT_EQ(a.majorSeconds, b.majorSeconds);
    auto ba = a.breakdown();
    auto bb = b.breakdown();
    EXPECT_EQ(ba.copy, bb.copy);
    EXPECT_EQ(ba.search, bb.search);
    EXPECT_EQ(ba.scanPush, bb.scanPush);
    EXPECT_EQ(ba.bitmapCount, bb.bitmapCount);
    EXPECT_EQ(ba.bitSweep, bb.bitSweep);
    EXPECT_EQ(ba.refCount, bb.refCount);
    EXPECT_EQ(ba.glue, bb.glue);
}

} // namespace

TEST(BackendDegradation, NoOffloadReplaysAsPureHost)
{
    int shift = 0;
    gc::RunTrace trace = hostOnlyTrace(&shift);
    sim::SystemConfig cfg;

    // Charon over HMC degrades to exactly the HostHmc replay: same
    // memory, same host port, no prologue flush, no unit time.
    {
        platform::PlatformSim charon(PlatformKind::CharonNmp, cfg,
                                     shift);
        platform::PlatformSim host(PlatformKind::HostHmc, cfg, shift);
        auto tc = charon.simulate(trace);
        auto th = host.simulate(trace);
        expectTimingEq(tc, th);
        ASSERT_NE(charon.backend(), nullptr);
        EXPECT_EQ(charon.backend()->unitBusySeconds(), 0.0);
        EXPECT_EQ(charon.backend()->packetBytes(), 0.0);
    }

    // The iGPU shares the host DDR4 directly, so its degradation
    // target is the DDR4 baseline.
    {
        platform::PlatformSim igpu(PlatformKind::IgpuOffload, cfg,
                                   shift);
        platform::PlatformSim host(PlatformKind::HostDdr4, cfg, shift);
        auto ti = igpu.simulate(trace);
        auto th = host.simulate(trace);
        expectTimingEq(ti, th);
        ASSERT_NE(igpu.backend(), nullptr);
        EXPECT_EQ(igpu.backend()->unitBusySeconds(), 0.0);
        EXPECT_EQ(igpu.backend()->packetBytes(), 0.0);
    }

    // CXL has no pure-host twin — the host path itself crosses the
    // link — so the contract is determinism plus idle device units.
    {
        platform::PlatformSim a(PlatformKind::CxlMsa, cfg, shift);
        platform::PlatformSim b(PlatformKind::CxlMsa, cfg, shift);
        auto ta = a.simulate(trace);
        auto tb = b.simulate(trace);
        expectTimingEq(ta, tb);
        ASSERT_NE(a.backend(), nullptr);
        EXPECT_EQ(a.backend()->unitBusySeconds(), 0.0);
        EXPECT_EQ(a.backend()->packetBytes(), 0.0);
        // And the link tax is real: slower than the raw DDR4 host.
        platform::PlatformSim ddr4(PlatformKind::HostDdr4, cfg, shift);
        EXPECT_GT(ta.gcSeconds, ddr4.simulate(trace).gcSeconds);
    }
}

// ---------------------------------------------------------------------
// Golden four-way grid.
// ---------------------------------------------------------------------

namespace
{

constexpr PlatformKind kGridPlatforms[] = {
    PlatformKind::HostDdr4,
    PlatformKind::IgpuOffload,
    PlatformKind::CharonNmp,
    PlatformKind::CxlMsa,
};

struct GridCell
{
    std::string label;
    double gcSeconds = 0;
};

std::string
gridGoldenPath()
{
    return std::string(CHARON_GOLDEN_DIR) + "/backend_golden.json";
}

std::vector<GridCell>
measureGrid()
{
    std::vector<harness::Cell> cells;
    std::uint64_t heap = workload::findWorkload("CC").minHeapBytes * 2;
    for (PlatformKind kind : kGridPlatforms) {
        harness::Cell c;
        c.key.workload = "CC";
        c.key.heapBytes = heap;
        c.platform = kind;
        c.label = std::string("CC on ") + sim::platformName(kind);
        cells.push_back(c);
    }
    // No trace cache: goldens must not depend on cache state.
    harness::ExperimentRunner runner(harness::RunnerConfig{
        0, std::string()});
    auto results = runner.run(cells);
    std::vector<GridCell> grid;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        EXPECT_TRUE(results[i].ok)
            << cells[i].label << ": " << results[i].error;
        grid.push_back(GridCell{cells[i].label,
                                results[i].timing.gcSeconds});
    }
    return grid;
}

std::string
fmt(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

TEST(BackendGolden, FourWayGridMatchesGolden)
{
    auto grid = measureGrid();
    if (::testing::Test::HasFailure())
        return;

    if (std::getenv("CHARON_UPDATE_GOLDEN") != nullptr) {
        std::ofstream os(gridGoldenPath());
        ASSERT_TRUE(os) << "cannot write " << gridGoldenPath();
        os << "{\n  \"comment\": \"regenerate with "
              "CHARON_UPDATE_GOLDEN=1 test_backend; see "
              "EXPERIMENTS.md\",\n  \"cells\": [\n";
        for (std::size_t i = 0; i < grid.size(); ++i) {
            os << "    {\"label\": \"" << grid[i].label
               << "\", \"gcSeconds\": " << fmt(grid[i].gcSeconds)
               << "}" << (i + 1 < grid.size() ? "," : "") << "\n";
        }
        os << "  ]\n}\n";
        std::printf("golden file updated: %s\n",
                    gridGoldenPath().c_str());
        return;
    }

    std::ifstream is(gridGoldenPath());
    ASSERT_TRUE(is) << "missing " << gridGoldenPath()
                    << " (generate with CHARON_UPDATE_GOLDEN=1)";
    std::stringstream ss;
    ss << is.rdbuf();
    auto root = testjson::parse(ss.str());
    auto cells = root->get("cells");
    ASSERT_TRUE(cells && cells->isArray());
    ASSERT_EQ(cells->array.size(), grid.size())
        << "grid changed; regenerate the golden file";
    for (std::size_t i = 0; i < grid.size(); ++i) {
        SCOPED_TRACE(grid[i].label);
        EXPECT_EQ(grid[i].label, cells->array[i]->str("label"));
        double golden = cells->array[i]->num("gcSeconds");
        double scale = std::max(
            {1.0, std::abs(grid[i].gcSeconds), std::abs(golden)});
        EXPECT_LE(std::abs(grid[i].gcSeconds - golden), 1e-6 * scale)
            << "actual " << fmt(grid[i].gcSeconds) << " vs golden "
            << fmt(golden)
            << "; if the model changed intentionally, regenerate "
               "with CHARON_UPDATE_GOLDEN=1";
    }
}

TEST(BackendGolden, IgpuReproducesTheNoWinResult)
{
    // The structural headline: offload engines that sit on the host
    // side of the memory controller do not beat the host at GC.
    auto grid = measureGrid();
    if (::testing::Test::HasFailure())
        return;
    ASSERT_EQ(grid.size(), 4u);
    double host = grid[0].gcSeconds;
    double igpu = grid[1].gcSeconds;
    double charon = grid[2].gcSeconds;
    EXPECT_LE(host / igpu, 1.05)
        << "the iGPU backend must not meaningfully beat the host";
    EXPECT_GT(host / charon, 1.5)
        << "near-memory placement must keep a clear win on the same "
           "trace";
}
