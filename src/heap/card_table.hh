/**
 * @file
 * The card table: one byte of metadata per 512-byte card of the old
 * generation, tracking which old-generation regions may contain
 * references into the young generation.
 *
 * MinorGC's *Search* primitive (Figure 7) scans ranges of this table
 * looking for any non-clean byte; HotSpot encodes "clean" as 0xFF
 * (i.e. -1), which is why the pseudocode tests `*i != -1`.
 */

#ifndef CHARON_HEAP_CARD_TABLE_HH
#define CHARON_HEAP_CARD_TABLE_HH

#include <cstdint>
#include <vector>

#include "mem/addr.hh"

namespace charon::heap
{

/**
 * Byte-per-card remembered set over a heap range.
 */
class CardTable
{
  public:
    static constexpr std::uint64_t kCardBytes = 512;
    static constexpr std::uint8_t kClean = 0xFF;
    static constexpr std::uint8_t kDirty = 0x00;

    /**
     * @param covered_base first heap address covered
     * @param covered_bytes size of the covered heap range
     * @param storage_base VA where the table itself lives
     */
    CardTable(mem::Addr covered_base, std::uint64_t covered_bytes,
              mem::Addr storage_base);

    /** Card index covering @p addr. */
    std::uint64_t
    cardIndex(mem::Addr addr) const
    {
        return (addr - coveredBase_) / kCardBytes;
    }

    /** First heap address of card @p index. */
    mem::Addr
    cardStart(std::uint64_t index) const
    {
        return coveredBase_ + index * kCardBytes;
    }

    /** VA of the table byte for card @p index. */
    mem::Addr
    storageAddr(std::uint64_t index) const
    {
        return storageBase_ + index;
    }

    /** Mark the card containing @p addr dirty (mutator ref store). */
    void dirty(mem::Addr addr) { bytes_[cardIndex(addr)] = kDirty; }

    /** Mark card @p index dirty. */
    void dirtyCard(std::uint64_t index) { bytes_[index] = kDirty; }

    bool
    isDirty(std::uint64_t index) const
    {
        return bytes_[index] != kClean;
    }

    /** Reset every card to clean. */
    void cleanAll();

    /** Raw table byte (fault injection and corruption checks). */
    std::uint8_t rawByte(std::uint64_t index) const
    {
        return bytes_[index];
    }

    /** XOR @p mask into a table byte (fault injection). */
    void xorByte(std::uint64_t index, std::uint8_t mask)
    {
        bytes_[index] ^= mask;
    }

    /**
     * The Search primitive over card indices [from, limit): returns
     * the index of the first dirty card, or limit when none.
     */
    std::uint64_t findDirty(std::uint64_t from, std::uint64_t limit) const;

    std::uint64_t numCards() const { return bytes_.size(); }
    std::uint64_t storageBytes() const { return bytes_.size(); }
    mem::Addr coveredBase() const { return coveredBase_; }
    mem::Addr storageBase() const { return storageBase_; }

  private:
    mem::Addr coveredBase_;
    mem::Addr storageBase_;
    std::vector<std::uint8_t> bytes_;
};

} // namespace charon::heap

#endif // CHARON_HEAP_CARD_TABLE_HH
