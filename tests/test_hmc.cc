/**
 * @file
 * Tests for the HMC memory model: routing, locality accounting,
 * internal vs. link bandwidth, latency composition, energy.
 */

#include <gtest/gtest.h>

#include "hmc/hmc.hh"
#include "sim/event_queue.hh"

using namespace charon;
using charon::sim::EventQueue;
using charon::sim::Tick;
using hmc::HmcMemory;
using hmc::Origin;

namespace
{

mem::StreamRequest
req(mem::Addr addr, std::uint64_t bytes,
    mem::AccessPattern p = mem::AccessPattern::Sequential,
    double rate = 0, int gran = 256)
{
    mem::StreamRequest r;
    r.addr = addr;
    r.bytes = bytes;
    r.pattern = p;
    r.maxRate = rate;
    r.granularity = gran;
    return r;
}

} // namespace

class HmcTest : public ::testing::Test
{
  protected:
    EventQueue eq;
    sim::HmcConfig cfg;
    HmcMemory hmc{eq, cfg};

    void
    SetUp() override
    {
        // 256 MiB regions for tests: cube = addr[29:28].
        hmc.setCubeShift(28);
    }

    Tick
    runStream(const Origin &o, const mem::StreamRequest &r)
    {
        Tick done = 0;
        hmc.stream(o, r, [&](Tick t) { done = t; });
        eq.run();
        return done;
    }
};

TEST_F(HmcTest, CubeMappingFollowsShift)
{
    EXPECT_EQ(hmc.cubeOf(0), 0);
    EXPECT_EQ(hmc.cubeOf(1ull << 28), 1);
    EXPECT_EQ(hmc.cubeOf(2ull << 28), 2);
    EXPECT_EQ(hmc.cubeOf(3ull << 28), 3);
    EXPECT_EQ(hmc.cubeOf(4ull << 28), 0); // wraps
}

TEST_F(HmcTest, LocalAccessUsesInternalBandwidth)
{
    // A unit on cube 1 streaming cube-1 data sees ~0.9 x 320 GB/s.
    Tick done = runStream(Origin::onCube(1), req(1ull << 28, 200'000'000));
    double secs = sim::ticksToSeconds(done);
    double gbps = 200.0 / 1e3 / secs; // GB over seconds
    EXPECT_NEAR(gbps, 288.0, 10.0);   // 0.9 * 320
    EXPECT_DOUBLE_EQ(hmc.localBytes(), 200'000'000.0);
    EXPECT_DOUBLE_EQ(hmc.remoteBytes(), 0.0);
}

TEST_F(HmcTest, HostAccessIsLimitedByLink)
{
    // The host streaming from cube 0 is capped by the 80 GB/s link
    // (plus header overhead at 64 B granularity: 1.5x -> ~53 GB/s of
    // payload).
    Tick done = runStream(
        Origin::host(),
        req(0, 80'000'000, mem::AccessPattern::Sequential, 0, 64));
    double secs = sim::ticksToSeconds(done);
    double payload_gbps = 80.0 / 1e3 / secs;
    EXPECT_LT(payload_gbps, 56.0);
    EXPECT_GT(payload_gbps, 50.0);
    EXPECT_DOUBLE_EQ(hmc.localBytes(), 0.0);
}

TEST_F(HmcTest, RemoteUnitAccessCrossesTwoLinks)
{
    // Unit on cube 1 accessing cube 2: both spoke links occupied.
    runStream(Origin::onCube(1), req(2ull << 28, 1'000'000));
    EXPECT_DOUBLE_EQ(hmc.localBytes(), 0.0);
    EXPECT_GT(hmc.linkBytes(), 2.0 * 1'000'000);
}

TEST_F(HmcTest, StreamSpanningRegionsSplitsAcrossCubes)
{
    // 32 MiB starting 16 MiB below a region boundary touches two
    // cubes evenly.
    mem::Addr start = (1ull << 28) - (16ull << 20);
    runStream(Origin::onCube(0), req(start, 32ull << 20));
    // Half local to cube 0, half remote on cube 1.
    EXPECT_NEAR(hmc.localBytes(), 16.0 * (1 << 20), 1.0);
    EXPECT_NEAR(hmc.remoteBytes(), 16.0 * (1 << 20), 1.0);
}

TEST_F(HmcTest, LatencyGrowsWithHops)
{
    auto local = hmc.latency(Origin::onCube(1), 1ull << 28,
                             mem::AccessPattern::Sequential);
    auto one_hop = hmc.latency(Origin::onCube(0), 1ull << 28,
                               mem::AccessPattern::Sequential);
    auto two_hop = hmc.latency(Origin::onCube(1), 2ull << 28,
                               mem::AccessPattern::Sequential);
    EXPECT_LT(local, one_hop);
    EXPECT_LT(one_hop, two_hop);
    EXPECT_EQ(two_hop - local, 4u * cfg.linkLatency());
}

TEST_F(HmcTest, HostLatencyIsWorseThanLocal)
{
    auto host = hmc.latency(Origin::host(), 3ull << 28,
                            mem::AccessPattern::Random);
    EXPECT_EQ(host, hmc.worstLatency());
    EXPECT_GT(host, hmc.localLatency(mem::AccessPattern::Random));
}

TEST_F(HmcTest, RequesterRateCapBinds)
{
    // 1 GB/s cap on 1 MB -> ~1 ms.
    Tick done = runStream(Origin::onCube(0),
                          req(0, 1'000'000, mem::AccessPattern::Sequential,
                              sim::gbPerSecToBytesPerTick(1.0)));
    EXPECT_NEAR(sim::ticksToMs(done), 1.0, 0.05);
}

TEST_F(HmcTest, EnergyIncludesDramAndLinks)
{
    runStream(Origin::onCube(1), req(1ull << 28, 1000));
    double local_only = hmc.energyPj();
    EXPECT_DOUBLE_EQ(local_only, 1000.0 * 8 * cfg.energyPjPerBit);

    runStream(Origin::onCube(1), req(2ull << 28, 1000));
    EXPECT_GT(hmc.energyPj(),
              local_only + 1000.0 * 8 * cfg.energyPjPerBit);
}

TEST_F(HmcTest, ZeroByteStreamCompletes)
{
    bool fired = false;
    hmc.stream(Origin::host(), req(0, 0), [&](Tick) { fired = true; });
    eq.run();
    EXPECT_TRUE(fired);
}

TEST_F(HmcTest, SmallGranularityPaysMoreHeaderOverhead)
{
    // Same payload, 16 B granularity pushes 3x bytes over links
    // (16+32)/16 vs (256+32)/256 for 256 B.
    runStream(Origin::host(),
              req(0, 100'000, mem::AccessPattern::Random, 0, 16));
    double small = hmc.linkBytes();
    hmc.resetStats();
    runStream(Origin::host(),
              req(0, 100'000, mem::AccessPattern::Random, 0, 256));
    double big = hmc.linkBytes();
    EXPECT_NEAR(small / big, 3.0 / 1.125, 0.05);
}

TEST_F(HmcTest, InternalPeakIsFourCubes)
{
    EXPECT_NEAR(sim::bytesPerTickToGbPerSec(hmc.internalPeakRate()),
                1280.0, 1e-6);
    EXPECT_NEAR(sim::bytesPerTickToGbPerSec(hmc.hostLinkRate()), 80.0,
                1e-6);
}

TEST_F(HmcTest, HostPortReportsCacheLineGranularity)
{
    EXPECT_EQ(hmc.hostPort().maxGranularity(), 64);
    EXPECT_GT(hmc.hostPort().latency(mem::AccessPattern::Random),
              hmc.localLatency(mem::AccessPattern::Random));
}

// ---------------------------------------------------------------------
// Chain topology (Section 4.6: the architecture is not tied to the
// star; a daisy chain trades worst-case hops for simpler wiring)

class HmcChainTest : public ::testing::Test
{
  protected:
    EventQueue eq;
    sim::HmcConfig cfg;
    std::unique_ptr<HmcMemory> hmc;

    void
    SetUp() override
    {
        cfg.topology = sim::HmcTopology::Chain;
        hmc = std::make_unique<HmcMemory>(eq, cfg);
        hmc->setCubeShift(28);
    }
};

TEST_F(HmcChainTest, LatencyGrowsLinearlyWithDistance)
{
    auto lat = [&](int cube) {
        return hmc->latency(Origin::host(),
                            static_cast<mem::Addr>(cube) << 28,
                            mem::AccessPattern::Sequential);
    };
    // host -> cube c is c+1 hops on the chain.
    EXPECT_EQ(lat(1) - lat(0), 2 * cfg.linkLatency());
    EXPECT_EQ(lat(2) - lat(1), 2 * cfg.linkLatency());
    EXPECT_EQ(lat(3) - lat(2), 2 * cfg.linkLatency());
    // The far end is worse than the star's 2-hop worst case.
    sim::HmcConfig star_cfg;
    HmcMemory star(eq, star_cfg);
    star.setCubeShift(28);
    EXPECT_GT(lat(3), star.latency(Origin::host(), 3ull << 28,
                                   mem::AccessPattern::Sequential));
}

TEST_F(HmcChainTest, SatelliteToSatelliteSkipsTheHostLink)
{
    // Cube 1 -> cube 3 crosses segments 2 and 3 only.
    Tick done = 0;
    mem::StreamRequest r;
    r.addr = 3ull << 28;
    r.bytes = 1 << 20;
    r.granularity = 256;
    hmc->stream(Origin::onCube(1), r, [&](Tick t) { done = t; });
    eq.run();
    EXPECT_GT(done, 0u);
    EXPECT_GT(hmc->linkBytes(), 2.0 * (1 << 20)); // two segments
    EXPECT_DOUBLE_EQ(hmc->localBytes(), 0.0);
}

TEST_F(HmcChainTest, NeighborTransferUsesOneSegment)
{
    mem::StreamRequest r;
    r.addr = 1ull << 28;
    r.bytes = 1 << 20;
    r.granularity = 256; // header factor (256+32)/256 = 1.125
    hmc->stream(Origin::onCube(0), r, nullptr);
    eq.run();
    EXPECT_NEAR(hmc->linkBytes(), (1 << 20) * 1.125, 1024.0);
}

TEST_F(HmcChainTest, EightCubeChainWorks)
{
    sim::HmcConfig big = cfg;
    big.cubes = 8;
    EventQueue eq8;
    HmcMemory chain8(eq8, big);
    chain8.setCubeShift(27);
    EXPECT_EQ(chain8.cubeOf(7ull << 27), 7);
    auto near = chain8.latency(Origin::host(), 0,
                               mem::AccessPattern::Sequential);
    auto far = chain8.latency(Origin::host(), 7ull << 27,
                              mem::AccessPattern::Sequential);
    EXPECT_EQ(far - near, 14 * big.linkLatency());
}
