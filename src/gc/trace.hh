/**
 * @file
 * The primitive trace: the contract between the functional GC and the
 * timing layer.
 *
 * While a collector runs functionally (actually moving objects), it
 * records every invocation of the paper's key primitives — Copy,
 * Search, Scan&Push, Bitmap Count — plus the non-offloadable "glue"
 * work (stack pops, allocation, type dispatch).  Records are
 * aggregated into per-(phase, thread, kind, cube-pair) buckets so a
 * multi-million-object GC produces a compact trace that every
 * platform model replays: the baseline host executes each bucket with
 * CPU-limited MLP; Charon dispatches it to the matching processing
 * unit.
 */

#ifndef CHARON_GC_TRACE_HH
#define CHARON_GC_TRACE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "mem/request.hh"

namespace charon::gc
{

/** The offloadable primitives of Sections 4.2-4.4 (and Table 1). */
enum class PrimKind : std::uint8_t
{
    Copy,        ///< bulk object move (Minor evacuation, Major compaction)
    Search,      ///< card-table scan for dirty cards
    ScanPush,    ///< object-graph traversal step
    BitmapCount, ///< live_words_in_range over the mark bitmaps
    BitSweep,    ///< mark-bitmap sweep for free-run discovery (CMS sweep)
    RefCount,    ///< reference-count read-modify-write (RC/ZCT epochs)
};

constexpr int kNumPrimKinds = 6;
const char *primKindName(PrimKind kind);

/** GC phases in execution order; phases are barriers between threads. */
enum class PhaseKind : std::uint8_t
{
    MinorRoots,    ///< push/evacuate the root set
    MinorCardScan, ///< Search dirty cards, scan old-to-young refs
    MinorEvacuate, ///< drain the object stack: Copy + Scan&Push
    MajorMark,     ///< trace live objects, set bitmap bits
    MajorSummary,  ///< per-region live sizes and destinations
    MajorCompact,  ///< adjust pointers + move objects (BitmapCount+Copy)
    RcUpdate,      ///< recompute reference counts (RefCount RMWs)
    RcReclaim,     ///< ZCT drain: transitive decrement + block recycling
};

/** Last enumerator: the serialization bound for phase-kind checks. */
constexpr PhaseKind kLastPhaseKind = PhaseKind::RcReclaim;

const char *phaseKindName(PhaseKind kind);

/**
 * Aggregated work of one primitive on one (source-cube, dest-cube)
 * pair within one thread's share of a phase.
 */
struct Bucket
{
    PrimKind kind = PrimKind::Copy;
    /** Cube housing the primary data; units are scheduled here. */
    int srcCube = 0;
    /** Cube receiving writes (Copy); == srcCube when local. */
    int dstCube = 0;
    /**
     * Scan&Push over a klass layout the units do not implement
     * (Section 4.4): executes on the host on every platform.
     */
    bool hostOnly = false;

    std::uint64_t invocations = 0;
    /** Bytes read sequentially (payloads, card/bitmap ranges). */
    std::uint64_t seqReadBytes = 0;
    /** Bytes written (copies, stack pushes, metadata updates). */
    std::uint64_t writeBytes = 0;
    /** Discrete random accesses (referenced-object header loads). */
    std::uint64_t randomAccesses = 0;
    /** Bytes moved by the random accesses (granularity-inflated). */
    std::uint64_t randomBytes = 0;
    /** References examined (Scan&Push). */
    std::uint64_t refsVisited = 0;
    /** Bitmap range walked, in bits (Bitmap Count / CPU loop cost). */
    std::uint64_t rangeBits = 0;
    /** Of randomAccesses: mark-bitmap RMWs (bitmap-cache eligible). */
    std::uint64_t bitmapRmwAccesses = 0;
    /**
     * Object-stack pushes performed inside the primitive (Figure 11
     * line 11): host instructions on the CPU, but done by the unit
     * when Scan&Push is offloaded.
     */
    std::uint64_t stackPushes = 0;

    std::uint64_t totalBytes() const
    {
        return seqReadBytes + writeBytes + randomBytes;
    }
};

/**
 * One GC thread's share of a phase, in builder (array-of-structs)
 * form.  Collectors record into a ThreadWork; at the phase barrier
 * the recorder seals it into the phase's columnar storage and the
 * builder is discarded — sealed traces never hold Bucket structs.
 */
struct ThreadWork
{
    std::vector<Bucket> buckets;
    /** Host-only instructions (pop/push bookkeeping, dispatch, alloc). */
    std::uint64_t glueInstructions = 0;
    /** Cache-missing host accesses implied by the glue (approx). */
    std::uint64_t glueMemAccesses = 0;

    Bucket &bucket(PrimKind kind, int src_cube, int dst_cube,
                   bool host_only = false);
};

/**
 * Columnar (structure-of-arrays) bucket storage: one parallel array
 * per Bucket field, all buckets of a phase concatenated in
 * thread-then-bucket order.  Replay and reporting walk whole columns
 * sequentially, so the layout trades the AoS struct padding and
 * per-thread vector headers for dense cache-friendly scans — and it
 * serializes column-contiguous, which is what lets the on-disk format
 * varint-pack each field tightly.
 */
struct BucketColumns
{
    std::vector<PrimKind> kind;
    std::vector<std::int32_t> srcCube;
    std::vector<std::int32_t> dstCube;
    std::vector<std::uint8_t> hostOnly;
    std::vector<std::uint64_t> invocations;
    std::vector<std::uint64_t> seqReadBytes;
    std::vector<std::uint64_t> writeBytes;
    std::vector<std::uint64_t> randomAccesses;
    std::vector<std::uint64_t> randomBytes;
    std::vector<std::uint64_t> refsVisited;
    std::vector<std::uint64_t> rangeBits;
    std::vector<std::uint64_t> bitmapRmwAccesses;
    std::vector<std::uint64_t> stackPushes;

    std::size_t size() const { return kind.size(); }
    bool empty() const { return kind.empty(); }

    /** Append one bucket to every column. */
    void push(const Bucket &b);

    /** Materialize row @p i as a Bucket value. */
    Bucket get(std::size_t i) const;

    bool operator==(const BucketColumns &o) const;
    bool operator!=(const BucketColumns &o) const { return !(*this == o); }
};

/**
 * One GC thread's share of a sealed phase: a contiguous span of the
 * phase's bucket columns plus the thread's glue work.
 */
struct ThreadSpan
{
    std::uint32_t firstBucket = 0;
    std::uint32_t bucketCount = 0;
    /** Host-only instructions (pop/push bookkeeping, dispatch, alloc). */
    std::uint64_t glueInstructions = 0;
    /** Cache-missing host accesses implied by the glue (approx). */
    std::uint64_t glueMemAccesses = 0;
};

/** One phase: all threads run it concurrently, then barrier. */
struct PhaseTrace
{
    PhaseKind kind = PhaseKind::MinorRoots;
    /** All threads' buckets, thread-major (see ThreadSpan). */
    BucketColumns buckets;
    /** Per-thread spans into @ref buckets, in thread order. */
    std::vector<ThreadSpan> threads;
    /**
     * Hit rate Charon's bitmap cache achieved on this phase's bitmap
     * accesses (measured functionally while tracing; only meaningful
     * for MajorMark / MajorCompact).
     */
    double bitmapCacheHitRate = 0.0;
    /** Dirty bitmap-cache lines written back at the phase-end flush. */
    std::uint64_t bitmapCacheWritebacks = 0;

    /** Seal one thread's builder as the next span (in thread order). */
    void addThread(const ThreadWork &work);

    /** Visit every bucket in storage order as a materialized value. */
    template <typename Fn>
    void
    forEachBucket(Fn &&fn) const
    {
        for (std::size_t i = 0; i < buckets.size(); ++i)
            fn(buckets.get(i));
    }

    /** Per-kind totals, accumulated in one pass over the columns. */
    struct PrimTotals
    {
        std::uint64_t invocations[kNumPrimKinds] = {};
        std::uint64_t bytes[kNumPrimKinds] = {};
    };
    PrimTotals primTotals() const;

    /** Sum a field across threads/buckets for reporting. */
    std::uint64_t totalInvocations(PrimKind kind) const;
    std::uint64_t totalBytes(PrimKind kind) const;
};

/** A complete collection. */
struct GcTrace
{
    bool major = false;
    std::vector<PhaseTrace> phases;
    /**
     * The recording collector's declared offload capabilities: bit
     * `1 << PrimKind` set when that primitive may be dispatched to a
     * Charon unit on this collection.  Replay consults it for the
     * device prologue (a collector that declares nothing never pays
     * unit setup); per-bucket eligibility is already baked into the
     * hostOnly flags at record time.  Defaults to all-capable so
     * traces from before the capability model replay unchanged.
     */
    std::uint32_t capabilityMask = (1u << kNumPrimKinds) - 1;

    // Functional outcome, for reports and sanity checks.
    std::uint64_t liveObjects = 0;
    std::uint64_t bytesCopied = 0;
    std::uint64_t bytesPromoted = 0;
    std::uint64_t objectsScanned = 0;
    std::uint64_t refsVisited = 0;
    std::uint64_t cardsSearched = 0;
    std::uint64_t bitmapCountCalls = 0;

    std::uint64_t totalInvocations(PrimKind kind) const;
};

/** A whole run: the mutator's GC history. */
struct RunTrace
{
    std::vector<GcTrace> gcs;
    /** Mutator work between GCs, in host instructions. */
    std::vector<std::uint64_t> mutatorInstructions;

    std::uint64_t minorCount() const;
    std::uint64_t majorCount() const;
};

/**
 * Which primitive kinds a trace can actually exercise, per dispatch
 * route — the relevance summary the DSE layer prunes journal keys
 * with.  A timing knob that only affects kinds outside a route's mask
 * cannot change that replay's result by a single bit, because no
 * bucket ever reaches the code that reads it.
 *
 * Buckets with zero invocations complete immediately on every route
 * without touching any model, so they set no bits.
 */
struct TraceProfile
{
    /** OR of primBit(kind) over device-eligible buckets with work. */
    std::uint32_t offloadKinds = 0;
    /** OR of primBit(kind) over host-only buckets with work. */
    std::uint32_t hostKinds = 0;

    bool anyOffload() const { return offloadKinds != 0; }

    bool
    offloads(PrimKind kind) const
    {
        return (offloadKinds & (1u << static_cast<unsigned>(kind))) != 0;
    }
};

/**
 * Profile @p trace with one columnar pass per phase (kind, hostOnly,
 * invocations columns only — no bucket materialization).
 */
TraceProfile profileTrace(const RunTrace &trace);

} // namespace charon::gc

#endif // CHARON_GC_TRACE_HH
