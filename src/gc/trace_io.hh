/**
 * @file
 * Serialization of primitive traces.
 *
 * A RunTrace is the interface artifact between the functional and
 * timing layers; persisting it lets a slow functional run be replayed
 * on many platform configurations (or machines) without re-running
 * the mutator.  The format is a versioned little-endian binary
 * stream; readers reject unknown versions and truncated input.
 */

#ifndef CHARON_GC_TRACE_IO_HH
#define CHARON_GC_TRACE_IO_HH

#include <iosfwd>
#include <string>

#include "gc/trace.hh"

namespace charon::gc
{

/**
 * Current format version.  Version 3 stores each phase's buckets
 * column-contiguous (one run per Bucket field) with LEB128
 * varint-packed integers, mirroring the in-memory BucketColumns
 * layout; most bucket counters are small, so the on-disk stream is a
 * fraction of the old fixed-width row format.  Version 4 adds the
 * per-GC collector capability mask and the BitSweep / RefCount
 * primitive kinds with the RC phase kinds.  The 8-byte magic and
 * 8-byte little-endian version header framing is unchanged across
 * versions, so readers reject old/new files cleanly.
 */
constexpr std::uint32_t kTraceFormatVersion = 4;

/** Serialize @p trace to @p os. */
void writeTrace(std::ostream &os, const RunTrace &trace);

/**
 * Deserialize a trace from @p is.
 * @param error set to a diagnostic on failure
 * @retval true the trace was read completely
 */
bool readTrace(std::istream &is, RunTrace &trace, std::string *error);

/** Convenience file wrappers; fatal diagnostics via *error. */
bool saveTraceFile(const std::string &path, const RunTrace &trace,
                   std::string *error);
bool loadTraceFile(const std::string &path, RunTrace &trace,
                   std::string *error);

/** Structural equality (for round-trip tests). */
bool traceEquals(const RunTrace &a, const RunTrace &b);

/**
 * The little-endian stream primitives the trace format is built from,
 * exposed so sibling formats (the harness trace cache wraps a trace
 * in a keyed header) stay byte-compatible with this file's framing.
 */
namespace io
{

void putU64(std::ostream &os, std::uint64_t v);
bool getU64(std::istream &is, std::uint64_t &v);
void putF64(std::ostream &os, double v);
bool getF64(std::istream &is, double &v);
/** Length-prefixed UTF-8 string. */
void putString(std::ostream &os, const std::string &s);
bool getString(std::istream &is, std::string &s);

} // namespace io

} // namespace charon::gc

#endif // CHARON_GC_TRACE_IO_HH
