/**
 * @file
 * CollectorIface: the one contract every collector family implements,
 * so the mutator, the harness, the fault layer, and the DSE sweep all
 * drive "a collector" rather than ParallelScavenge specifically.
 *
 * The interface is exactly what a mutator needs: allocation entry
 * points (fast path + humongous), the allocation-failure hook that
 * triggers a collection, the GC counters, and the declared
 * CapabilitySet that tells the TraceRecorder which primitives may be
 * offloaded (everything else is recorded hostOnly).  Anything behind
 * this interface automatically inherits trace recording, timeline
 * spans, fault injection/degradation, and DSE sweepability.
 */

#ifndef CHARON_GC_COLLECTOR_IFACE_HH
#define CHARON_GC_COLLECTOR_IFACE_HH

#include <memory>

#include "gc/capability.hh"
#include "heap/klass.hh"
#include "mem/addr.hh"

namespace charon::heap
{
class ManagedHeap;
}

namespace charon::gc
{

class TraceRecorder;

/** What the driver did on an allocation failure. */
enum class GcOutcome
{
    Minor,       ///< scavenge / young evacuation ran
    Major,       ///< full (or old-generation) collection ran
    OutOfMemory, ///< live set does not fit: allocation cannot proceed
};

const char *gcOutcomeName(GcOutcome outcome);

/** The collector families the factory can build on a ManagedHeap. */
enum class CollectorModel
{
    ParallelScavenge, ///< copying minors + mark-compact majors
    Cms,              ///< copying minors + non-moving mark-sweep majors
    Rc,               ///< reference counting with ZCT reclamation
};

const char *collectorModelName(CollectorModel model);

/**
 * One collector family on one heap.
 */
class CollectorIface
{
  public:
    virtual ~CollectorIface() = default;

    /** Short family name ("ps", "cms", "rc", "g1"). */
    virtual const char *name() const = 0;

    /** Which primitives this collector can offload, and which heap
     *  metadata it maintains.  Constant over the collector's life. */
    virtual CapabilitySet capabilities() const = 0;

    /**
     * Mutator fast-path allocation (Eden for the generational
     * families; free-queue-then-bump old allocation for RC).
     * @return object address, or 0 when the fast path is exhausted
     *         and the caller must invoke onAllocationFailure()
     */
    virtual mem::Addr allocate(heap::KlassId klass,
                               std::uint64_t array_len = 0) = 0;

    /** True when an object of @p size_words must bypass the fast
     *  path (it could never fit there even after a collection). */
    virtual bool isHumongous(std::uint64_t size_words) const = 0;

    /** Allocation for isHumongous() objects; 0 when full. */
    virtual mem::Addr allocateHumongous(heap::KlassId klass,
                                        std::uint64_t array_len = 0) = 0;

    /**
     * Collect in response to an allocation failure.  The failed
     * allocation should be retried afterwards (unless OutOfMemory).
     */
    virtual GcOutcome onAllocationFailure() = 0;

    virtual std::uint64_t minorCount() const = 0;
    virtual std::uint64_t majorCount() const = 0;
};

/**
 * Build a @p model collector on @p heap, recording into @p recorder.
 * The recorder's capability gate is set to the new collector's
 * declared set as a side effect, so every subsequent record is
 * offload-eligible only where the declaration allows.
 */
std::unique_ptr<CollectorIface> makeCollector(CollectorModel model,
                                              heap::ManagedHeap &heap,
                                              TraceRecorder &recorder);

} // namespace charon::gc

#endif // CHARON_GC_COLLECTOR_IFACE_HH
