/**
 * @file
 * Extension experiment (paper §4.6 / Table 1, quantified end-to-end):
 * run every workload under both collector families — ParallelScavenge
 * (throughput) and our G1 (latency/region-based) — and measure how
 * much Charon accelerates each.
 *
 * Expectation from the paper's applicability argument: the speedup
 * carries over, because both collectors spend their time in the same
 * offloadable primitives (G1's evacuation is Copy + Scan&Push; its
 * region-liveness accounting is Bitmap Count).
 *
 * Note: ALS runs G1 with 2x the Table 3 heap — its per-iteration
 * humongous factor matrices fragment a region heap, a well-known G1
 * behaviour that simply needs headroom.
 */

#include "bench_common.hh"

#include "sim/stats.hh"

using namespace charon;
using namespace charon::bench;

int
main(int argc, char **argv)
{
    auto opt = harness::standardOptions(argc, argv);
    ExperimentRunner runner(opt.runnerConfig());
    Report report(opt);

    const auto workloads = allWorkloads();

    // Four cells per workload: {PS, G1} x {DDR4, Charon}.  The two
    // collectors are distinct functional keys, so the G1 traces land
    // in the cache next to the ParallelScavenge ones.
    std::vector<Cell> cells;
    for (const auto &name : workloads) {
        cells.push_back(cell(name, sim::PlatformKind::HostDdr4));
        cells.push_back(cell(name, sim::PlatformKind::CharonNmp));

        std::uint64_t g1_heap =
            workload::findWorkload(name).heapBytes;
        if (name == "ALS")
            g1_heap *= 2; // humongous-churn headroom
        for (auto kind : {sim::PlatformKind::HostDdr4,
                          sim::PlatformKind::CharonNmp}) {
            Cell c = cell(name, kind, g1_heap);
            c.key.collector = CollectorKind::G1;
            c.label = name + " (G1) on "
                      + sim::platformName(kind);
            cells.push_back(c);
        }
    }
    auto results = runner.run(cells);

    auto &table = report.table(
        "g1_vs_ps",
        "Extension: Charon speedup under ParallelScavenge vs G1 "
        "(each over its own host + DDR4 baseline)",
        {"workload", "PS GCs", "PS speedup", "G1 GCs", "G1 speedup"});
    std::vector<double> ps_s, g1_s;
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        std::size_t i = w * 4;
        bool ps_ok = report.checkCell(cells[i], results[i])
                     & report.checkCell(cells[i + 1], results[i + 1]);
        // A G1 OOM is a reportable outcome (the headroom note), not a
        // bench failure: render the cell as "OOM" and move on.
        bool g1_ok =
            report.checkCell(cells[i + 2], results[i + 2])
            & report.checkCell(cells[i + 3], results[i + 3]);
        if (!ps_ok && !g1_ok)
            continue;

        std::string ps_gcs = "-", ps_cell = "-";
        if (ps_ok) {
            double speedup = results[i].timing.gcSeconds
                             / results[i + 1].timing.gcSeconds;
            ps_s.push_back(speedup);
            ps_cell = report::times(speedup);
            ps_gcs =
                std::to_string(results[i].run->gcsMinor) + "m+"
                + std::to_string(results[i].run->gcsMajor) + "M";
        }
        std::string g1_gcs = "-", g1_cell = "OOM";
        if (g1_ok) {
            double speedup = results[i + 2].timing.gcSeconds
                             / results[i + 3].timing.gcSeconds;
            g1_s.push_back(speedup);
            g1_cell = report::times(speedup);
            g1_gcs =
                std::to_string(results[i + 2].run->gcsMinor) + "y+"
                + std::to_string(results[i + 2].run->gcsMajor) + "m";
        }
        table.addRow({workloads[w], ps_gcs, ps_cell, g1_gcs, g1_cell});
    }
    table.addRow({"geomean", "", report::times(sim::geomean(ps_s)), "",
                  report::times(sim::geomean(g1_s))});
    table.note("\nTable 1's claim, quantified: the acceleration is a "
               "property of the primitives, not of one collector");
    report.addRollups(cells, results);
    harness::finishTimeline(runner, opt);
    return report.finish(std::cout);
}
