/**
 * @file
 * The begin/end mark bitmaps of HotSpot's parallel compactor.
 *
 * One bit represents one 64-bit heap word (Section 3.2: "a single bit
 * represent[s] the 64-bit heap space").  A set bit in the *begin* map
 * marks the first word of a live object; a set bit in the *end* map
 * marks its last word.  live_words_in_range() — the software Bitmap
 * Count primitive — is implemented here exactly as in Figure 8 of the
 * paper and serves as the reference against which the accelerator's
 * optimized algorithm is property-tested.
 */

#ifndef CHARON_HEAP_BITMAP_HH
#define CHARON_HEAP_BITMAP_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "mem/addr.hh"

namespace charon::heap
{

/**
 * A bit-per-word bitmap over a heap address range.
 */
class MarkBitmap
{
  public:
    /**
     * @param heap_base lowest heap address covered
     * @param heap_bytes size of the covered range (multiple of 8)
     * @param storage_base the VA at which the bitmap itself lives
     *        (used by the timing layer to attribute its memory traffic)
     */
    MarkBitmap(mem::Addr heap_base, std::uint64_t heap_bytes,
               mem::Addr storage_base);

    /** Heap address -> bit index. */
    std::uint64_t
    bitIndex(mem::Addr addr) const
    {
        return (addr - heapBase_) >> 3;
    }

    /** Bit index -> heap address. */
    mem::Addr
    bitAddr(std::uint64_t bit) const
    {
        return heapBase_ + (bit << 3);
    }

    /** VA of the byte that stores @p bit (for traffic attribution). */
    mem::Addr
    storageAddrOfBit(std::uint64_t bit) const
    {
        return storageBase_ + (bit >> 3);
    }

    void set(mem::Addr addr) { setBit(bitIndex(addr)); }
    void clear(mem::Addr addr) { clearBit(bitIndex(addr)); }
    bool test(mem::Addr addr) const { return testBit(bitIndex(addr)); }

    void setBit(std::uint64_t bit);
    void clearBit(std::uint64_t bit);
    bool testBit(std::uint64_t bit) const;

    /** Clear the whole map. */
    void clearAll();

    /** Number of bits (heap words covered). */
    std::uint64_t numBits() const { return numBits_; }

    /** Bytes of backing storage (what HotSpot would allocate). */
    std::uint64_t storageBytes() const { return words_.size() * 8; }

    mem::Addr storageBase() const { return storageBase_; }
    mem::Addr heapBase() const { return heapBase_; }

    /**
     * Find the first set bit at or after @p from, strictly before
     * @p limit; returns limit when none.
     */
    std::uint64_t findNextSet(std::uint64_t from, std::uint64_t limit) const;

    /** Count set bits in [from, limit). */
    std::uint64_t countSet(std::uint64_t from, std::uint64_t limit) const;

    /** Raw 64-bit storage word (for the accelerator's word-wise math). */
    std::uint64_t word(std::uint64_t index) const;
    std::uint64_t numWords() const { return words_.size(); }

  private:
    mem::Addr heapBase_;
    mem::Addr storageBase_;
    std::uint64_t numBits_;
    std::vector<std::uint64_t> words_;
};

/**
 * Reference software implementation of live_words_in_range (Figure 8):
 * walks the begin/end maps bit by bit and sums the sizes of live
 * objects whose begin bit falls inside [range_start, range_end) bits.
 *
 * Exactly as in Figure 8: an object whose begin bit is inside the
 * range but whose end bit lies beyond it contributes nothing (in
 * HotSpot the range end is an object boundary during compaction, so
 * the case only arises for arbitrary ranges, which tests exercise);
 * an end bit with no preceding begin bit in the range is ignored.
 *
 * @param beg begin map
 * @param end end map
 * @param start_bit first bit of the range
 * @param end_bit one past the last bit of the range
 * @param bitmap_reads optional sink receiving the VA of every bitmap
 *        byte the walk touches (feeds the bitmap-cache model)
 */
std::uint64_t liveWordsInRange(
    const MarkBitmap &beg, const MarkBitmap &end, std::uint64_t start_bit,
    std::uint64_t end_bit,
    const std::function<void(mem::Addr)> &bitmap_reads = nullptr);

} // namespace charon::heap

#endif // CHARON_HEAP_BITMAP_HH
