#include "mark_compact.hh"

#include <algorithm>

#include "gc/mark_work.hh"
#include "sim/logging.hh"

namespace charon::gc
{

using heap::Space;
using mem::Addr;

MarkCompact::MarkCompact(heap::ManagedHeap &heap, TraceRecorder &recorder)
    : heap_(heap), rec_(recorder)
{
}

bool
MarkCompact::isMarked(Addr obj) const
{
    return heap_.begBitmap().test(obj);
}

void
MarkCompact::markPhase()
{
    // ParallelOld policies: begin+end bits for the compactor, an
    // explicit push charge per marked root, null referents skipped
    // before the weak-slot test.
    MarkOptions opt;
    opt.dualBitmap = true;
    opt.rootPushGlue = true;
    opt.nullCheckFirst = true;
    opt.liveOut = &live_;
    MarkStats stats = runMarkClosure(heap_, rec_, opt);
    result_.liveObjects = stats.liveObjects;
    result_.liveBytes = stats.liveBytes;

    std::sort(live_.begin(), live_.end());
}

std::uint64_t
MarkCompact::regionOf(Addr addr) const
{
    return (addr - heap_.base()) / kRegionBytes;
}

void
MarkCompact::summaryPhase()
{
    rec_.beginPhase(PhaseKind::MajorSummary);
    const auto &costs = rec_.costs();

    // Per-region live-word totals (objects straddling region borders
    // split their words by location, as HotSpot's add_obj does), then
    // the destination prefix.
    const std::uint64_t num_regions =
        mem::divCeil(heap_.heapBytes(), kRegionBytes);
    std::vector<std::uint64_t> region_words(num_regions, 0);
    for (Addr obj : live_) {
        Addr end = obj + heap_.sizeBytes(obj);
        Addr p = obj;
        while (p < end) {
            std::uint64_t r = regionOf(p);
            Addr region_end = heap_.base() + (r + 1) * kRegionBytes;
            Addr take_end = std::min(end, region_end);
            region_words[r] += (take_end - p) / 8;
            p = take_end;
        }
    }
    regionDestWords_.assign(num_regions, 0);
    std::uint64_t prefix = 0;
    for (std::uint64_t r = 0; r < num_regions; ++r) {
        regionDestWords_[r] = prefix;
        prefix += region_words[r];
        rec_.recordGlue(costs.regionSummary, 1);
        rec_.nextThread();
    }

    // Exact destinations for every live object via a running prefix.
    dest_.resize(live_.size());
    std::uint64_t words_before = 0;
    for (std::size_t i = 0; i < live_.size(); ++i) {
        dest_[i] = heap_.base() + words_before * 8;
        words_before += heap_.sizeWords(live_[i]);
    }
    result_.outOfMemory =
        words_before * 8 > heap_.region(Space::Old).capacity();
    rec_.endPhase();
}

Addr
MarkCompact::lookupNewAddr(Addr obj) const
{
    auto it = std::lower_bound(live_.begin(), live_.end(), obj);
    CHARON_ASSERT(it != live_.end() && *it == obj,
                  "new address of a non-live object 0x%llx",
                  static_cast<unsigned long long>(obj));
    return dest_[static_cast<std::size_t>(it - live_.begin())];
}

Addr
MarkCompact::newAddrOf(Addr obj)
{
    // What HotSpot computes as
    //   region_destination + live_words_in_range(region_start, obj):
    // record the Bitmap Count over [region start bit, obj bit) and
    // return the exact prefix-derived destination.
    const auto &beg = heap_.begBitmap();
    std::uint64_t obj_bit = beg.bitIndex(obj);
    std::uint64_t region_start_bit =
        regionOf(obj) * (kRegionBytes / 8);
    rec_.recordBitmapCount(
        beg.storageAddrOfBit(region_start_bit),
        heap_.endBitmap().storageAddrOfBit(region_start_bit),
        obj_bit - region_start_bit);
    return lookupNewAddr(obj);
}

void
MarkCompact::compactPhase()
{
    rec_.beginPhase(PhaseKind::MajorCompact);
    const auto &costs = rec_.costs();

    // Adjust: rewrite every reference (and root) to its target's
    // destination.  One Bitmap Count per pointer.
    for (std::size_t i = 0; i < live_.size(); ++i) {
        Addr obj = live_[i];
        rec_.recordGlue(costs.typeDispatch, 1);
        std::uint64_t n = heap_.refCount(obj);
        for (std::uint64_t s = 0; s < n; ++s) {
            Addr target = heap_.refAt(obj, s);
            if (target == 0)
                continue;
            Addr moved = newAddrOf(target);
            heap_.setRefRaw(obj, s, moved);
            rec_.recordGlue(costs.pointerAdjust, 2);
            ++result_.pointersAdjusted;
        }
        rec_.nextThread();
    }
    for (Addr &root : heap_.roots()) {
        if (root != 0) {
            root = newAddrOf(root);
            rec_.recordGlue(costs.pointerAdjust, 1);
            ++result_.pointersAdjusted;
        }
    }

    // Move: ascending order guarantees dest <= src, so in-place
    // sliding is safe.  One Bitmap Count (own destination) per
    // object, but Copy at HotSpot's granularity: contiguous live runs
    // move as single bulk copies (region filling), split where the
    // run crosses a cube boundary so the Copy/Search units stay
    // data-local.  Objects already at their destination form the
    // dense prefix and are not copied at all.
    Addr run_src = 0, run_dst = 0;
    std::uint64_t run_len = 0;
    auto flush_run = [&] {
        if (run_len == 0)
            return;
        rec_.recordCopy(run_src, run_dst, run_len);
        rec_.nextThread();
        run_len = 0;
    };
    for (std::size_t i = 0; i < live_.size(); ++i) {
        Addr obj = live_[i];
        Addr dst = newAddrOf(obj);
        CHARON_ASSERT(dst == dest_[i], "destination mismatch");
        CHARON_ASSERT(dst <= obj, "compaction must move left");
        std::uint64_t bytes = heap_.sizeBytes(obj);
        rec_.recordGlue(costs.allocate, 1);
        if (dst == obj) {
            flush_run(); // dense prefix: stays in place
            continue;
        }
        heap_.copyObjectBytes(dst, obj, bytes);
        result_.bytesMoved += bytes;
        bool extends = run_len > 0 && obj == run_src + run_len
                       && dst == run_dst + run_len
                       && rec_.cubeOf(obj) == rec_.cubeOf(run_src)
                       && rec_.cubeOf(dst) == rec_.cubeOf(run_dst);
        if (!extends) {
            flush_run();
            run_src = obj;
            run_dst = dst;
        }
        run_len += bytes;
    }
    flush_run();
    rec_.endPhase();
}

MarkCompact::Result
MarkCompact::collect()
{
    rec_.beginGc(true);
    markPhase();
    summaryPhase();
    if (result_.outOfMemory) {
        // Leave the heap untouched; the caller surfaces the OOM.
        rec_.endGc();
        return result_;
    }
    compactPhase();

    GcTrace &trace = rec_.endGc();
    trace.liveObjects = result_.liveObjects;
    trace.bytesCopied = result_.bytesMoved;

    // The whole live set now sits at the bottom of Old; young spaces
    // are empty.
    Addr new_top = heap_.base() + result_.liveBytes;
    heap_.setOldTop(new_top);
    heap_.resetSpace(Space::Eden);
    heap_.resetSpace(Space::From);
    heap_.resetSpace(Space::To);
    heap_.rebuildBlockOffsets();
    // No old-to-young references can exist (young is empty).
    heap_.cardTable().cleanAll();
    return result_;
}

} // namespace charon::gc
