#include "collector.hh"

#include <algorithm>

#include "gc/cms_collector.hh"
#include "gc/rc_collector.hh"
#include "sim/logging.hh"

namespace charon::gc
{

using heap::Space;

const char *
gcOutcomeName(GcOutcome outcome)
{
    switch (outcome) {
      case GcOutcome::Minor:       return "minor";
      case GcOutcome::Major:       return "major";
      case GcOutcome::OutOfMemory: return "out-of-memory";
    }
    return "unknown";
}

const char *
collectorModelName(CollectorModel model)
{
    switch (model) {
      case CollectorModel::ParallelScavenge: return "ps";
      case CollectorModel::Cms:              return "cms";
      case CollectorModel::Rc:               return "rc";
    }
    return "unknown";
}

std::unique_ptr<CollectorIface>
makeCollector(CollectorModel model, heap::ManagedHeap &heap,
              TraceRecorder &recorder)
{
    std::unique_ptr<CollectorIface> c;
    switch (model) {
      case CollectorModel::ParallelScavenge:
        c = std::make_unique<Collector>(heap, recorder);
        break;
      case CollectorModel::Cms:
        c = std::make_unique<CmsCollector>(heap, recorder);
        break;
      case CollectorModel::Rc:
        c = std::make_unique<RcCollector>(heap, recorder);
        break;
    }
    CHARON_ASSERT(c != nullptr, "unknown collector model");
    recorder.setCapabilities(c->capabilities());
    return c;
}

Collector::Collector(heap::ManagedHeap &heap, TraceRecorder &recorder)
    : heap_(heap), rec_(recorder)
{
}

CapabilitySet
Collector::capabilities() const
{
    CapabilitySet caps;
    caps.primMask = primBit(PrimKind::Copy) | primBit(PrimKind::Search)
                    | primBit(PrimKind::ScanPush)
                    | primBit(PrimKind::BitmapCount);
    caps.hasCardTable = true;
    caps.hasMarkBitmap = true;
    return caps;
}

mem::Addr
Collector::allocate(heap::KlassId klass, std::uint64_t array_len)
{
    return heap_.allocEden(klass, array_len);
}

bool
Collector::isHumongous(std::uint64_t size_words) const
{
    return size_words * 8 > heap_.region(Space::Eden).capacity();
}

mem::Addr
Collector::allocateHumongous(heap::KlassId klass,
                             std::uint64_t array_len)
{
    return heap_.allocOldObject(klass, array_len);
}

bool
Collector::promotionGuaranteeHolds()
{
    Scavenge probe(heap_, rec_);
    auto demand = probe.estimateDemand();
    const auto &to = heap_.region(Space::To);
    // Bytes that must land in Old: aged promotions plus survivor
    // overflow, padded by one max-object of fragmentation slack.
    std::uint64_t overflow =
        demand.survivorBytes > to.capacity()
            ? demand.survivorBytes - to.capacity()
            : 0;
    std::uint64_t need_old =
        demand.promoteBytes + overflow + demand.largestObject;
    return need_old <= heap_.region(Space::Old).free();
}

GcOutcome
Collector::onAllocationFailure()
{
    if (promotionGuaranteeHolds()) {
        auto result = minorCollect();
        // A promotion failure already escalated to a full collection
        // inside minorCollect(); report what actually happened.
        return result.promotionFailed ? GcOutcome::Major
                                      : GcOutcome::Minor;
    }
    auto result = fullCollect();
    if (result.outOfMemory)
        return GcOutcome::OutOfMemory;
    return GcOutcome::Major;
}

MarkCompact::Result
Collector::fullCollect()
{
    MarkCompact mc(heap_, rec_);
    auto result = mc.collect();
    if (!result.outOfMemory)
        ++majors_;
    return result;
}

Scavenge::Result
Collector::minorCollect()
{
    if (threshold_ == 0)
        threshold_ = heap_.config().tenuringThreshold;
    Scavenge sc(heap_, rec_, threshold_);
    auto result = sc.collect();
    ++minors_;
    if (result.promotionFailed) {
        // Degradation state machine, Minor -> Major: the scavenge
        // left live objects behind in Eden/From (self-forwarded in
        // place).  A mark-compact collection is allocation-free, so
        // it always recovers the heap to a compact, verifiable state.
        fullCollect();
        return result;
    }
    if (adaptive_) {
        const auto &from = heap_.region(Space::From);
        if (result.bytesOverflowPromoted > from.capacity() / 10) {
            threshold_ = std::max(1, threshold_ - 1);
        } else if (from.used() < from.capacity() / 2
                   && threshold_ < kMaxTenuringThreshold) {
            ++threshold_;
        }
    }
    return result;
}

} // namespace charon::gc
