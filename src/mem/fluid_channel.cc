#include "fluid_channel.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/logging.hh"

namespace charon::mem
{

namespace
{
/** Below this many bytes a flow counts as finished (fp slack). */
constexpr double kFinishEpsilon = 1e-6;
} // namespace

const char *
patternName(AccessPattern p)
{
    switch (p) {
      case AccessPattern::Sequential:
        return "sequential";
      case AccessPattern::Strided:
        return "strided";
      case AccessPattern::Random:
        return "random";
    }
    return "unknown";
}

FluidChannel::FluidChannel(sim::EventQueue &eq, std::string name,
                           double capacity,
                           const sim::Instrumentation &instr)
    : eq_(eq),
      capacity_(capacity),
      stats_(std::move(name)),
      bytesTransferred_(&stats_, "bytes", "total bytes transferred"),
      utilizedTicks_(&stats_, "utilized_ticks",
                     "integral of utilization over time"),
      flowCount_(&stats_, "flows", "number of flows served"),
      timeline_(instr.timeline()),
      track_(instr.track(stats_.name()))
{
    CHARON_ASSERT(capacity_ > 0, "channel capacity must be positive");
}

void
FluidChannel::startFlow(std::uint64_t bytes, double maxRate,
                        StreamCallback done)
{
    ++flowCount_;
    if (bytes == 0) {
        // Degenerate flow: complete immediately, still in event order.
        sim::Tick now = eq_.now();
        eq_.schedule(now, [done = std::move(done), now] {
            if (done)
                done(now);
        });
        return;
    }
    advance();
    bytesTransferred_ += static_cast<double>(bytes);
    flowBytes_.push_back(static_cast<double>(bytes));
    flowMax_.push_back(maxRate);
    flowRate_.push_back(0);
    flowDone_.push_back(std::move(done));
    if (timeline_) {
        timeline_->counter(track_, eq_.now(),
                           static_cast<double>(flowBytes_.size()));
    }
    reallocate();
}

void
FluidChannel::setCapacity(double capacity)
{
    // Floor keeps the utilization integral finite and guarantees the
    // phase barrier drains even for an "offline" resource.
    constexpr double kMinCapacityFraction = 1e-3;
    advance();
    capacity_ = std::max(capacity, capacity_ * kMinCapacityFraction);
    reallocate();
}

void
FluidChannel::advance()
{
    sim::Tick now = eq_.now();
    if (now <= lastAdvance_) {
        lastAdvance_ = now;
        return;
    }
    double dt = static_cast<double>(now - lastAdvance_);
    double allocated = 0;
    const std::size_t n = flowBytes_.size();
    for (std::size_t i = 0; i < n; ++i) {
        flowBytes_[i] -= flowRate_[i] * dt;
        if (flowBytes_[i] < 0)
            flowBytes_[i] = 0;
        allocated += flowRate_[i];
    }
    utilizedTicks_ += dt * (allocated / capacity_);
    lastAdvance_ = now;
}

void
FluidChannel::reallocate()
{
    const std::size_t n = flowBytes_.size();
    if (n == 1) {
        // Single flow: progressive filling reduces to one comparison.
        // share == capacity_ / 1.0 == capacity_ exactly (IEEE), so
        // the rate is bit-identical to the generic loop below.
        double rate = (flowMax_[0] > 0 && flowMax_[0] <= capacity_)
                          ? flowMax_[0]
                          : capacity_;
        flowRate_[0] = rate;
        if (timer_)
            eq_.deschedule(timer_);
        sim::Tick when =
            eq_.now()
            + static_cast<sim::Tick>(std::ceil(flowBytes_[0] / rate));
        timer_ = eq_.schedule(when, [this] { onTimer(); });
        return;
    }

    // Max-min fair (progressive filling) with per-flow caps.  The
    // first round is fused: a single pass caps the flows whose cap is
    // below the initial fair share and collects the survivors into
    // the scratch index list (a member so the hot path never
    // allocates).  In the common case nothing is capped and the pass
    // assigns every flow the fair share directly; the arithmetic —
    // share values and subtraction order — is exactly the generic
    // progressive loop's, so the rates are bit-identical to it.
    if (n != 0) {
        double remaining = capacity_;
        double share = capacity_ / static_cast<double>(n);
        auto &uncapped = uncappedScratch_;
        uncapped.clear();
        bool progressed = false;
        for (std::uint32_t i = 0; i < n; ++i) {
            if (flowMax_[i] > 0 && flowMax_[i] <= share) {
                flowRate_[i] = flowMax_[i];
                remaining -= flowMax_[i];
                progressed = true;
            } else {
                flowRate_[i] = 0;
                uncapped.push_back(i);
            }
        }
        if (!progressed) {
            // Nobody's cap binds: everybody absorbs the fair share.
            // Fused with the timer scan below (same visit order and
            // comparisons, so the projected finish is bit-identical).
            double earliest = -1;
            for (std::size_t i = 0; i < n; ++i) {
                flowRate_[i] = share;
                double eta = flowBytes_[i] / share;
                if (earliest < 0 || eta < earliest)
                    earliest = eta;
            }
            if (timer_)
                eq_.deschedule(timer_);
            sim::Tick when =
                eq_.now()
                + static_cast<sim::Tick>(std::ceil(earliest));
            timer_ = eq_.schedule(when, [this] { onTimer(); });
            return;
        } else {
            // Later rounds: give every flow whose cap is below the
            // fair share its cap; compact the survivors stably so
            // the accumulation order stays the insertion order.
            while (!uncapped.empty() && remaining > 0 && progressed) {
                progressed = false;
                share =
                    remaining / static_cast<double>(uncapped.size());
                std::size_t kept = 0;
                for (std::size_t k = 0; k < uncapped.size(); ++k) {
                    std::uint32_t i = uncapped[k];
                    if (flowMax_[i] > 0 && flowMax_[i] <= share) {
                        flowRate_[i] = flowMax_[i];
                        remaining -= flowMax_[i];
                        progressed = true;
                    } else {
                        uncapped[kept++] = uncapped[k];
                    }
                }
                uncapped.resize(kept);
                if (!progressed) {
                    for (std::uint32_t i : uncapped)
                        flowRate_[i] = share;
                    remaining = 0;
                    uncapped.clear();
                }
            }
        }
    }

    // Schedule (or reschedule) a completion timer for the earliest
    // projected finish.
    if (timer_) {
        eq_.deschedule(timer_);
        timer_ = 0;
    }
    if (n == 0)
        return;
    double earliest = -1;
    for (std::size_t i = 0; i < n; ++i) {
        if (flowRate_[i] <= 0)
            continue;
        double eta = flowBytes_[i] / flowRate_[i];
        if (earliest < 0 || eta < earliest)
            earliest = eta;
    }
    CHARON_ASSERT(earliest >= 0, "active flows but none making progress");
    sim::Tick when =
        eq_.now() + static_cast<sim::Tick>(std::ceil(earliest));
    timer_ = eq_.schedule(when, [this] { onTimer(); });
}

void
FluidChannel::onTimer()
{
    timer_ = 0;
    advance();
    // Collect finished flows first, then fire callbacks (callbacks may
    // reentrantly start new flows on this channel).  Survivors are
    // compacted stably to keep the insertion order.
    auto &done = doneScratch_;
    done.clear();
    std::size_t kept = 0;
    const std::size_t n = flowBytes_.size();
    for (std::size_t i = 0; i < n; ++i) {
        if (flowBytes_[i] <= kFinishEpsilon) {
            done.push_back(std::move(flowDone_[i]));
        } else {
            if (kept != i) {
                flowBytes_[kept] = flowBytes_[i];
                flowMax_[kept] = flowMax_[i];
                flowRate_[kept] = flowRate_[i];
                flowDone_[kept] = std::move(flowDone_[i]);
            }
            ++kept;
        }
    }
    flowBytes_.resize(kept);
    flowMax_.resize(kept);
    flowRate_.resize(kept);
    flowDone_.resize(kept);
    sim::Tick now = eq_.now();
    if (timeline_ && !done.empty()) {
        timeline_->counter(track_, now,
                           static_cast<double>(flowBytes_.size()));
    }
    for (auto &cb : done) {
        if (cb)
            cb(now);
    }
    // No advance() here: the clock has not moved since the one above,
    // and any reentrant startFlow already advanced to this tick.
    reallocate();
}

} // namespace charon::mem
