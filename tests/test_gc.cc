/**
 * @file
 * Functional tests for the collectors: scavenge, mark-compact,
 * mark-sweep, the trigger policy, and the graph-fingerprint
 * invariant across collections.
 */

#include <gtest/gtest.h>

#include "gc/collector.hh"
#include "gc/mark_compact.hh"
#include "gc/mark_sweep.hh"
#include "gc/recorder.hh"
#include "gc/scavenge.hh"
#include "gc/verify.hh"
#include "sim/rng.hh"

using namespace charon;
using namespace charon::gc;
using heap::Space;
using mem::Addr;

namespace
{

class GcTest : public ::testing::Test
{
  protected:
    GcTest()
    {
        nodeId = klasses.defineInstance("Node", 2, 2);
        bigId = klasses.defineInstance("Big", 1, 100);
        cfg.heapBytes = 16 * sim::kMiB;
        cfg.tenuringThreshold = 2;
        heap = std::make_unique<heap::ManagedHeap>(cfg, klasses);
        rec = std::make_unique<TraceRecorder>(
            /*num_threads=*/4, /*cube_shift=*/22); // 4 MiB regions
    }

    /** Allocate a Node in Eden and keep it as root @p slot. */
    Addr
    rootNode(std::size_t slot)
    {
        Addr obj = heap->allocEden(nodeId);
        EXPECT_NE(obj, 0u);
        if (heap->roots().size() <= slot)
            heap->roots().resize(slot + 1, 0);
        heap->roots()[slot] = obj;
        return obj;
    }

    heap::KlassTable klasses;
    heap::KlassId nodeId = 0, bigId = 0;
    heap::HeapConfig cfg;
    std::unique_ptr<heap::ManagedHeap> heap;
    std::unique_ptr<TraceRecorder> rec;
};

} // namespace

// ---------------------------------------------------------------------
// Minor GC

TEST_F(GcTest, ScavengeKeepsReachableDropsGarbage)
{
    Addr keep = rootNode(0);
    heap->allocEden(nodeId); // garbage
    heap->allocEden(nodeId); // garbage
    Addr child = heap->allocEden(nodeId);
    heap->storeRef(keep, 0, child);

    auto before = fingerprintHeap(*heap);
    Scavenge sc(*heap, *rec);
    auto result = sc.collect();

    EXPECT_EQ(result.objectsCopied + result.objectsPromoted, 2u);
    EXPECT_EQ(fingerprintHeap(*heap), before);
    // Eden empty, survivors in From (post-swap).
    EXPECT_EQ(heap->region(Space::Eden).used(), 0u);
    EXPECT_EQ(heap->objectCount(Space::From), 2u);
    EXPECT_EQ(heap->region(Space::To).used(), 0u);
    checkHeapIntegrity(*heap);
}

TEST_F(GcTest, ScavengeUpdatesRootsAndInternalRefs)
{
    Addr a = rootNode(0);
    Addr b = heap->allocEden(nodeId);
    heap->storeRef(a, 0, b);
    heap->storeRef(b, 0, a); // cycle

    Scavenge(*heap, *rec).collect();

    Addr new_a = heap->roots()[0];
    EXPECT_NE(new_a, a);
    EXPECT_EQ(heap->spaceOf(new_a), Space::From);
    Addr new_b = heap->refAt(new_a, 0);
    EXPECT_EQ(heap->spaceOf(new_b), Space::From);
    EXPECT_EQ(heap->refAt(new_b, 0), new_a); // cycle preserved
}

TEST_F(GcTest, ScavengeIncrementsAge)
{
    rootNode(0);
    Scavenge(*heap, *rec).collect();
    EXPECT_EQ(heap->age(heap->roots()[0]), 1);
}

TEST_F(GcTest, AgedObjectIsPromoted)
{
    rootNode(0);
    Scavenge(*heap, *rec).collect(); // age 1 (threshold 2)
    auto r2 = Scavenge(*heap, *rec).collect();
    EXPECT_EQ(r2.objectsPromoted, 1u);
    EXPECT_EQ(heap->spaceOf(heap->roots()[0]), Space::Old);
}

TEST_F(GcTest, PayloadSurvivesCopy)
{
    Addr obj = rootNode(0);
    // Node payload words are at offset 16 + 2 refs * 8 = 32.
    heap->store64(obj + 32, 0xdeadbeefcafebabeull);
    heap->store64(obj + 40, 0x1122334455667788ull);
    Scavenge(*heap, *rec).collect();
    Addr moved = heap->roots()[0];
    EXPECT_EQ(heap->load64(moved + 32), 0xdeadbeefcafebabeull);
    EXPECT_EQ(heap->load64(moved + 40), 0x1122334455667788ull);
}

TEST_F(GcTest, OldToYoungRefFoundViaCardTable)
{
    // Promote a holder into Old, then point it at a young object that
    // is reachable ONLY through it.
    Addr holder = rootNode(0);
    Scavenge(*heap, *rec).collect();
    Scavenge(*heap, *rec).collect(); // holder now in Old
    holder = heap->roots()[0];
    ASSERT_EQ(heap->spaceOf(holder), Space::Old);

    Addr young = heap->allocEden(nodeId);
    heap->store64(young + 32, 0x5555aaaa5555aaaaull);
    heap->storeRef(holder, 0, young); // dirties the card

    auto result = Scavenge(*heap, *rec).collect();
    EXPECT_GE(result.dirtyCards, 1u);
    Addr moved = heap->refAt(heap->roots()[0], 0);
    EXPECT_NE(moved, 0u);
    EXPECT_EQ(heap->spaceOf(moved), Space::From);
    EXPECT_EQ(heap->load64(moved + 32), 0x5555aaaa5555aaaaull);
    checkHeapIntegrity(*heap);
}

TEST_F(GcTest, CardStaysDirtyWhileOldToYoungRefPersists)
{
    Addr holder = rootNode(0);
    Scavenge(*heap, *rec).collect();
    Scavenge(*heap, *rec).collect();
    holder = heap->roots()[0];
    Addr young = heap->allocEden(nodeId);
    heap->storeRef(holder, 0, young);

    Scavenge(*heap, *rec).collect();
    // The young target survived into a survivor space, so the card
    // must have been re-dirtied for the next scavenge.
    auto &ct = heap->cardTable();
    EXPECT_TRUE(ct.isDirty(ct.cardIndex(heap->roots()[0])));

    // Once the target is promoted too, the card goes clean.
    Scavenge(*heap, *rec).collect();
    EXPECT_FALSE(ct.isDirty(ct.cardIndex(heap->roots()[0])));
    EXPECT_EQ(heap->spaceOf(heap->refAt(heap->roots()[0], 0)),
              Space::Old);
}

TEST_F(GcTest, SharedTargetCopiedOnce)
{
    Addr a = rootNode(0);
    Addr b = rootNode(1);
    Addr shared = heap->allocEden(nodeId);
    heap->storeRef(a, 0, shared);
    heap->storeRef(b, 0, shared);

    auto result = Scavenge(*heap, *rec).collect();
    EXPECT_EQ(result.objectsCopied, 3u);
    EXPECT_EQ(heap->refAt(heap->roots()[0], 0),
              heap->refAt(heap->roots()[1], 0));
}

TEST_F(GcTest, SurvivorOverflowPromotes)
{
    // Fill eden with objects larger than the To space in total.
    std::uint64_t to_cap = heap->region(Space::To).capacity();
    std::uint64_t big_bytes = 103 * 8; // Big instance: 2+1+100 words
    std::uint64_t count = to_cap / big_bytes + 8;
    heap->roots().resize(count, 0);
    for (std::uint64_t i = 0; i < count; ++i) {
        Addr o = heap->allocEden(bigId);
        ASSERT_NE(o, 0u);
        heap->roots()[i] = o;
    }
    auto result = Scavenge(*heap, *rec).collect();
    EXPECT_GT(result.objectsPromoted, 0u);
    EXPECT_GT(result.objectsCopied, 0u);
    checkHeapIntegrity(*heap);
}

TEST_F(GcTest, ScavengeTraceHasExpectedPhases)
{
    rootNode(0);
    Scavenge(*heap, *rec).collect();
    const auto &gc = rec->run().gcs.back();
    EXPECT_FALSE(gc.major);
    ASSERT_EQ(gc.phases.size(), 3u);
    EXPECT_EQ(gc.phases[0].kind, PhaseKind::MinorRoots);
    EXPECT_EQ(gc.phases[1].kind, PhaseKind::MinorCardScan);
    EXPECT_EQ(gc.phases[2].kind, PhaseKind::MinorEvacuate);
    // The evacuation copied exactly one object.
    EXPECT_EQ(gc.phases[2].totalInvocations(PrimKind::Copy), 1u);
    EXPECT_GE(gc.phases[1].totalInvocations(PrimKind::Search), 1u);
}

TEST_F(GcTest, TraceCopyBytesMatchFunctionalBytes)
{
    for (int i = 0; i < 10; ++i)
        rootNode(static_cast<std::size_t>(i));
    auto result = Scavenge(*heap, *rec).collect();
    const auto &gc = rec->run().gcs.back();
    std::uint64_t trace_bytes = 0;
    gc.phases[2].forEachBucket([&](const gc::Bucket &b) {
        if (b.kind == PrimKind::Copy)
            trace_bytes += b.seqReadBytes;
    });
    EXPECT_EQ(trace_bytes, result.bytesCopied + result.bytesPromoted);
}

// ---------------------------------------------------------------------
// Major GC

TEST_F(GcTest, MarkCompactPreservesGraph)
{
    Addr a = rootNode(0);
    Addr b = heap->allocEden(nodeId);
    Addr c = heap->allocEden(nodeId);
    heap->storeRef(a, 0, b);
    heap->storeRef(b, 0, c);
    heap->storeRef(c, 1, a);
    heap->allocEden(bigId); // garbage

    auto before = fingerprintHeap(*heap);
    MarkCompact mc(*heap, *rec);
    auto result = mc.collect();

    EXPECT_FALSE(result.outOfMemory);
    EXPECT_EQ(result.liveObjects, 3u);
    EXPECT_EQ(fingerprintHeap(*heap), before);
    checkHeapIntegrity(*heap);
}

TEST_F(GcTest, MarkCompactPacksHeapBottom)
{
    // Some garbage between live objects, then compact.
    std::vector<Addr> keep;
    for (int i = 0; i < 50; ++i) {
        Addr o = heap->allocEden(nodeId);
        if (i % 3 == 0)
            keep.push_back(o);
    }
    heap->roots().assign(keep.begin(), keep.end());
    MarkCompact mc(*heap, *rec);
    auto result = mc.collect();

    // Everything live is contiguous at the bottom of Old.
    EXPECT_EQ(heap->region(Space::Old).used(), result.liveBytes);
    EXPECT_EQ(heap->objectCount(Space::Old), result.liveObjects);
    EXPECT_EQ(heap->region(Space::Eden).used(), 0u);
    EXPECT_EQ(heap->region(Space::From).used(), 0u);
    EXPECT_EQ(heap->region(Space::To).used(), 0u);
    heap->verifySpace(Space::Old);
}

TEST_F(GcTest, MarkCompactIsIdempotentOnPackedHeap)
{
    for (int i = 0; i < 20; ++i)
        rootNode(static_cast<std::size_t>(i));
    MarkCompact(*heap, *rec).collect();
    auto fp1 = fingerprintHeap(*heap);
    auto r2 = MarkCompact(*heap, *rec).collect();
    // Already packed: every object "moves" to its own address.
    EXPECT_EQ(r2.bytesMoved, 0u);
    EXPECT_EQ(fingerprintHeap(*heap), fp1);
}

TEST_F(GcTest, MarkCompactEmitsBitmapCountAndCopy)
{
    Addr a = rootNode(0);
    Addr b = heap->allocEden(nodeId);
    heap->storeRef(a, 1, b);
    MarkCompact(*heap, *rec).collect();
    const auto &gc = rec->run().gcs.back();
    ASSERT_EQ(gc.phases.size(), 3u);
    EXPECT_EQ(gc.phases[0].kind, PhaseKind::MajorMark);
    EXPECT_EQ(gc.phases[1].kind, PhaseKind::MajorSummary);
    EXPECT_EQ(gc.phases[2].kind, PhaseKind::MajorCompact);
    // 2 live objects, 1 non-null pointer + 1 root: BitmapCount =
    // adjusted pointers (2) + moved objects (2).  The two adjacent
    // objects move as one contiguous run -> one bulk Copy.
    EXPECT_EQ(gc.phases[2].totalInvocations(PrimKind::BitmapCount), 4u);
    EXPECT_EQ(gc.phases[2].totalInvocations(PrimKind::Copy), 1u);
    EXPECT_EQ(gc.phases[0].totalInvocations(PrimKind::ScanPush), 2u);
}

TEST_F(GcTest, MarkCompactBitmapCacheHitRateMeasured)
{
    for (int i = 0; i < 200; ++i)
        rootNode(static_cast<std::size_t>(i));
    MarkCompact(*heap, *rec).collect();
    const auto &gc = rec->run().gcs.back();
    // Compaction walks the bitmap with strong locality; the 8 KB
    // cache should be comfortably above 50% on this stream (the paper
    // reports ~90% on full workloads).
    EXPECT_GT(gc.phases[2].bitmapCacheHitRate, 0.5);
}

TEST_F(GcTest, MarkCompactOutOfMemoryLeavesHeapIntact)
{
    // Make the live set bigger than Old: fill Old completely with
    // live data and add live Eden data on top.
    std::uint64_t big_bytes = 103 * 8;
    std::size_t slot = 0;
    while (true) {
        Addr o = heap->allocOld(103);
        if (o == 0)
            break;
        heap->store64(o, static_cast<std::uint64_t>(bigId)
                             | (103ull << 32));
        heap->store64(o + 8, 0);
        for (int i = 0; i < 1; ++i)
            heap->store64(o + 16 + static_cast<std::uint64_t>(i) * 8, 0);
        if (heap->roots().size() <= slot)
            heap->roots().resize(slot + 1, 0);
        heap->roots()[slot++] = o;
    }
    while (true) {
        Addr o = heap->allocEden(bigId);
        if (o == 0)
            break;
        if (heap->roots().size() <= slot)
            heap->roots().resize(slot + 1, 0);
        heap->roots()[slot++] = o;
    }
    (void)big_bytes;

    auto before = fingerprintHeap(*heap);
    auto result = MarkCompact(*heap, *rec).collect();
    EXPECT_TRUE(result.outOfMemory);
    EXPECT_EQ(fingerprintHeap(*heap), before);
}

// ---------------------------------------------------------------------
// Collector policy

TEST_F(GcTest, PolicyRunsMinorWhenGuaranteeHolds)
{
    rootNode(0);
    Collector coll(*heap, *rec);
    EXPECT_EQ(coll.onAllocationFailure(), GcOutcome::Minor);
    EXPECT_EQ(coll.minorCount(), 1u);
    EXPECT_EQ(coll.majorCount(), 0u);
}

TEST_F(GcTest, PolicyEscalatesToMajorWhenOldIsFull)
{
    // Fill Old almost completely so the promotion guarantee fails,
    // with plenty of live young data.
    std::uint64_t old_free = heap->region(Space::Old).free();
    std::uint64_t blob_words = 1024;
    std::size_t slot = 0;
    while (heap->region(Space::Old).free()
           > blob_words * 8 + 4096) {
        Addr o = heap->allocOld(blob_words);
        ASSERT_NE(o, 0u);
        heap->store64(o, static_cast<std::uint64_t>(bigId)
                             | (blob_words << 32));
        heap->store64(o + 8, 0);
        heap->store64(o + 16, 0);
        // Half of old data is garbage (no root).
        if (slot % 2 == 0) {
            heap->roots().push_back(o);
        }
        ++slot;
    }
    (void)old_free;
    // Live young data exceeding the To-space capacity, so the
    // survivor overflow cannot fit in Old's remaining free space.
    std::uint64_t to_cap = heap->region(Space::To).capacity();
    std::uint64_t big_bytes = 103 * 8;
    std::uint64_t count = to_cap / big_bytes + 100;
    for (std::uint64_t i = 0; i < count; ++i) {
        Addr o = heap->allocEden(bigId);
        ASSERT_NE(o, 0u);
        heap->roots().push_back(o);
    }
    Collector coll(*heap, *rec);
    EXPECT_EQ(coll.onAllocationFailure(), GcOutcome::Major);
    EXPECT_EQ(coll.majorCount(), 1u);
    checkHeapIntegrity(*heap);
}

// ---------------------------------------------------------------------
// Mark-sweep (CMS-style)

TEST_F(GcTest, MarkSweepReclaimsDeadOldObjects)
{
    // Populate Old with alternating live/dead objects.
    std::vector<Addr> all;
    for (int i = 0; i < 40; ++i) {
        Addr o = heap->allocOld(10);
        heap->store64(o, static_cast<std::uint64_t>(nodeId)
                             | (6ull << 32));
        // Use real node size (6 words) then filler would misalign;
        // instead size the header to the allocation (10 words) via a
        // long[] of 7 elements: 3 + 7 = 10 words.
        heap->store64(o, static_cast<std::uint64_t>(
                             klasses.longArrayId())
                             | (10ull << 32));
        heap->store64(o + 8, 0);
        heap->store64(o + 16, 7);
        all.push_back(o);
    }
    for (std::size_t i = 0; i < all.size(); i += 2)
        heap->roots().push_back(all[i]);

    auto before = fingerprintHeap(*heap);
    MarkSweep ms(*heap, *rec);
    auto result = ms.collect();

    EXPECT_EQ(result.liveObjects, all.size() / 2);
    EXPECT_EQ(result.freedBytes, (all.size() / 2) * 80);
    EXPECT_EQ(fingerprintHeap(*heap), before); // nothing moved
    heap->verifySpace(Space::Old);             // fillers walkable
    checkHeapIntegrity(*heap);
}

TEST_F(GcTest, MarkSweepCoalescesAdjacentGarbage)
{
    std::vector<Addr> all;
    for (int i = 0; i < 30; ++i) {
        Addr o = heap->allocOld(10);
        heap->store64(o, static_cast<std::uint64_t>(
                             klasses.longArrayId())
                             | (10ull << 32));
        heap->store64(o + 8, 0);
        heap->store64(o + 16, 7);
        all.push_back(o);
    }
    // Keep only every 10th object: runs of 9 dead coalesce.
    for (std::size_t i = 0; i < all.size(); i += 10)
        heap->roots().push_back(all[i]);
    MarkSweep ms(*heap, *rec);
    auto result = ms.collect();
    EXPECT_EQ(result.freeChunks, 3u); // three runs of 9
    for (const auto &chunk : ms.freeList())
        EXPECT_EQ(chunk.bytes, 9u * 80);
}

TEST_F(GcTest, MarkSweepFreeListAllocationReusesHoles)
{
    std::vector<Addr> all;
    for (int i = 0; i < 20; ++i) {
        Addr o = heap->allocOld(10);
        heap->store64(o, static_cast<std::uint64_t>(
                             klasses.longArrayId())
                             | (10ull << 32));
        heap->store64(o + 8, 0);
        heap->store64(o + 16, 7);
        all.push_back(o);
    }
    for (std::size_t i = 0; i < all.size(); i += 2)
        heap->roots().push_back(all[i]);
    MarkSweep ms(*heap, *rec);
    ms.collect();

    auto chunks_before = ms.freeList().size();
    Addr obj = ms.allocateFromFreeList(nodeId); // 6 words into a
    ASSERT_NE(obj, 0u);                         // 10-word hole
    EXPECT_EQ(heap->klassOf(obj), nodeId);
    EXPECT_EQ(heap->sizeWords(obj), 6u);
    EXPECT_EQ(ms.freeList().size(), chunks_before); // split, not drop
    heap->verifySpace(Space::Old);
}

TEST_F(GcTest, MarkSweepNeverEmitsBitmapCount)
{
    rootNode(0);
    MarkSweep(*heap, *rec).collect();
    const auto &gc = rec->run().gcs.back();
    EXPECT_EQ(gc.totalInvocations(PrimKind::BitmapCount), 0u);
    EXPECT_GT(gc.totalInvocations(PrimKind::ScanPush), 0u);
}

// ---------------------------------------------------------------------
// Randomized end-to-end property test

TEST_F(GcTest, PropertyRandomGraphsSurviveManyCollections)
{
    sim::Rng rng(4242);
    // Build a random graph in Eden with payload data.
    std::vector<Addr> objs;
    for (int i = 0; i < 400; ++i) {
        Addr o = rng.chance(0.2)
                     ? heap->allocEden(klasses.objArrayId(),
                                       rng.range(1, 16))
                     : heap->allocEden(nodeId);
        ASSERT_NE(o, 0u);
        objs.push_back(o);
    }
    // Random edges.
    for (Addr o : objs) {
        std::uint64_t n = heap->refCount(o);
        for (std::uint64_t i = 0; i < n; ++i) {
            if (rng.chance(0.6)) {
                heap->storeRef(o, i,
                               objs[rng.below(objs.size())]);
            }
        }
    }
    // A random subset as roots.
    for (Addr o : objs) {
        if (rng.chance(0.15))
            heap->roots().push_back(o);
    }

    auto fp = fingerprintHeap(*heap);
    for (int round = 0; round < 6; ++round) {
        if (round % 3 == 2)
            MarkCompact(*heap, *rec).collect();
        else
            Scavenge(*heap, *rec).collect();
        ASSERT_EQ(fingerprintHeap(*heap), fp) << "round " << round;
        checkHeapIntegrity(*heap);
    }
}

// ---------------------------------------------------------------------
// Adaptive tenuring (opt-in, HotSpot AdaptiveSizePolicy-style)

TEST_F(GcTest, AdaptiveTenuringLowersThresholdOnOverflow)
{
    Collector coll(*heap, *rec);
    coll.setAdaptiveTenuring(true);
    // Live young data far beyond the To space: every scavenge
    // overflows, so the threshold must walk down to 1.
    std::uint64_t to_cap = heap->region(Space::To).capacity();
    std::uint64_t count = to_cap / (103 * 8) * 3;
    for (std::uint64_t i = 0; i < count; ++i) {
        Addr o = heap->allocEden(bigId);
        ASSERT_NE(o, 0u);
        heap->roots().push_back(o);
    }
    coll.minorCollect();
    // Overflow pushed the threshold down (promote sooner).
    EXPECT_LT(coll.tenuringThreshold(), cfg.tenuringThreshold);
    checkHeapIntegrity(*heap);
}

TEST_F(GcTest, AdaptiveTenuringRaisesThresholdWhenSurvivorsIdle)
{
    Collector coll(*heap, *rec);
    coll.setAdaptiveTenuring(true);
    rootNode(0); // a single tiny survivor
    int start = heap->config().tenuringThreshold;
    for (int i = 0; i < 5; ++i)
        coll.minorCollect();
    EXPECT_GT(coll.tenuringThreshold(), start);
    // With a high threshold the lone object keeps ping-ponging in
    // the survivor spaces instead of promoting.
    EXPECT_TRUE(heap->inYoung(heap->roots()[0]));
}

TEST_F(GcTest, FixedTenuringStaysPut)
{
    Collector coll(*heap, *rec); // adaptive off (default)
    rootNode(0);
    for (int i = 0; i < 4; ++i)
        coll.minorCollect();
    EXPECT_EQ(coll.tenuringThreshold(), cfg.tenuringThreshold);
}
