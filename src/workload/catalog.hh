/**
 * @file
 * The workload catalog: six synthetic mutators reproducing the object
 * demography of the paper's applications (Table 3).
 *
 * The paper's explanation of its own results (Section 5.2) rests on
 * demography, not on the ML/graph mathematics:
 *  - Spark applications (BS, KM, LR) "allocate a small number of
 *    large size objects which have very few references within them
 *    and have short lifetime" — RDD partition buffers;
 *  - GraphChi graph applications (CC, PR) "traverse a large number of
 *    nodes through edges; those objects have a long life cycle with
 *    many references";
 *  - ALS "takes a very large matrix data as a single object, which
 *    results in a huge copy".
 *
 * Heap sizes are the paper's Table 3 values scaled by 1/64 so a full
 * six-workload sweep runs in seconds; every reported metric is a
 * ratio (speedup, fraction, breakdown) and therefore scale-invariant.
 */

#ifndef CHARON_WORKLOAD_CATALOG_HH
#define CHARON_WORKLOAD_CATALOG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "heap/klass.hh"
#include "sim/types.hh"

namespace charon::workload
{

/** Tuning knobs of one synthetic mutator. */
struct WorkloadParams
{
    std::string name;        ///< "BS", "KM", "LR", "CC", "PR", "ALS"
    std::string framework;   ///< "Spark" or "GraphChi"
    std::string description;

    /** Default max heap (Table 3 scaled by 1/64). */
    std::uint64_t heapBytes = 0;
    /** Calibrated minimum heap that completes without OOM. */
    std::uint64_t minHeapBytes = 0;

    int iterations = 10;

    // --- Spark-style RDD partitions -------------------------------
    /** Elements per partition buffer (double[]). */
    std::uint64_t partitionElems = 0;
    /** Partition buffers allocated per iteration. */
    int partitionsPerIter = 0;
    /** Probability a partition is cached across iterations. */
    double partitionRetainProb = 0;
    /** Cached partitions dropped per iteration (cache churn). */
    int cacheEvictPerIter = 0;

    // --- small short-lived temporaries ----------------------------
    std::uint64_t smallPerIter = 0;
    /** Probability a small temporary stays reachable into the next
     *  collection (temp-ring residency). */
    double smallHoldProb = 0.25;
    /** Size of the live temporary window (root ring slots). */
    std::size_t tempRingSlots = 2048;

    // --- GraphChi-style long-lived graph --------------------------
    int graphNodes = 0;
    /** Shard/interval data buffers streamed per iteration (long[]). */
    int shardsPerIter = 0;
    std::uint64_t shardElems = 0;
    int graphDegree = 0; ///< adjacency fan-out per node
    /** Per-iteration short-lived vertex-update objects. */
    std::uint64_t updatesPerIter = 0;
    /** Probability an update is stored into the (old) graph. */
    double updateStoreProb = 0;

    // --- ALS-style single huge object -----------------------------
    /** Elements of the one big matrix (double[]), 0 = none. */
    std::uint64_t matrixElems = 0;
    /** Factor-matrix elements reallocated per iteration. */
    std::uint64_t factorElems = 0;

    // --- service-style request traffic ----------------------------
    // A "request" is a short-lived burst: a response buffer plus a
    // couple of context objects that die as soon as the reply is
    // sent.  Sessions are the medium-lived middle class a request
    // server keeps (auth tokens, per-user caches); the humongous
    // spike models the occasional bulk reply / export blob that
    // bypasses the young generation entirely.
    /** Requests served per iteration (one iteration = one arrival
     *  batch window); 0 = not a service workload. */
    std::uint64_t requestsPerIter = 0;
    /** Response-buffer size range, bytes (uniform per request). */
    std::uint64_t requestRespMinBytes = 128;
    std::uint64_t requestRespMaxBytes = 2048;
    /** Session-cache entries inserted per iteration. */
    int sessionsPerIter = 0;
    /** Session-cache entries evicted (FIFO) per iteration. */
    int sessionEvictPerIter = 0;
    /** Session payload size (byte[] elements). */
    std::uint64_t sessionElems = 2048;
    /** Per-iteration probability of one humongous allocation. */
    double humongousSpikeProb = 0;
    /** Elements of the spike's double[] (0 disables spikes). */
    std::uint64_t humongousElems = 0;

    /** Mutator compute intensity: instructions per allocated word. */
    double instrPerWord = 6.0;
};

/** All six paper workloads (Table 3). */
const std::vector<WorkloadParams> &workloadCatalog();

/**
 * The request-driven service-style family (beyond-paper): non-batch
 * tenants for the fleet simulator.  Kept out of workloadCatalog() so
 * every pre-existing bench grid, golden figure, and perf digest —
 * all built from the Table 3 list — is byte-identical; findWorkload()
 * resolves both families.
 */
const std::vector<WorkloadParams> &serviceCatalog();

/** Look up by (case-insensitive) short name in the paper catalog or
 *  the service family; fatal if unknown. */
const WorkloadParams &findWorkload(const std::string &name);

/** Non-fatal lookup across both catalogs; nullptr when unknown. */
const WorkloadParams *findWorkloadOrNull(const std::string &name);

/**
 * The shared klass registry every mutator allocates from: the
 * dominant data klasses plus the rare metadata kinds (mirrors,
 * Reference subclasses) that exercise Charon's host-fallback path.
 */
struct MutatorKlasses
{
    heap::KlassTable table;
    heap::KlassId node = 0;      ///< 2 refs + 2 payload words
    heap::KlassId update = 0;    ///< 1 ref + 2 payload words
    heap::KlassId partMeta = 0;  ///< 1 ref + 6 payload words
    heap::KlassId mirror = 0;    ///< InstanceMirror (host-only path)
    heap::KlassId weakRef = 0;   ///< InstanceRef (host-only path)

    MutatorKlasses();
};

} // namespace charon::workload

#endif // CHARON_WORKLOAD_CATALOG_HH
