/**
 * @file
 * Seeded open-loop arrival processes for the fleet simulator.
 *
 * Each tenant's request stream is a non-homogeneous Poisson process,
 * pre-generated from an explicit seed before the simulation starts:
 * open-loop (arrivals do not slow down when the tenant saturates, so
 * queueing delay is visible in the latency distribution, not hidden
 * by backpressure) and deterministic (the tick sequence is a pure
 * function of the config and seed, independent of --jobs or wall
 * clock).
 *
 * Three rate curves:
 *  - steady:  constant rate, the calibration baseline;
 *  - diurnal: sinusoidal day/night swing around the mean;
 *  - spike:   constant base rate with periodic short windows at a
 *             multiple of it — the regime where GC arbitration
 *             policies separate (convoys form when many tenants
 *             collect at once).
 */

#ifndef CHARON_FLEET_ARRIVAL_HH
#define CHARON_FLEET_ARRIVAL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace charon::fleet
{

enum class ArrivalCurve : std::uint8_t
{
    Steady,
    Diurnal,
    Spike,
};

constexpr int kNumArrivalCurves = 3;

/** Lowercase token: "steady", "diurnal", "spike". */
const char *arrivalCurveName(ArrivalCurve curve);
bool parseArrivalCurve(const std::string &name, ArrivalCurve &out);

/** Shape of one tenant's arrival process. */
struct ArrivalConfig
{
    ArrivalCurve curve = ArrivalCurve::Steady;
    /** Base request rate (steady rate; diurnal mean; spike floor). */
    double meanRps = 2000;
    /** Simulated horizon: arrivals stop here, queues then drain. */
    double horizonSec = 1.0;

    // Diurnal: rate(t) = mean * (1 + depth * sin(2*pi*t / period)).
    double diurnalPeriodSec = 0.5;
    double diurnalDepth = 0.6;

    // Spike: every @p spikePeriodSec, a window of @p spikeLenSec at
    // meanRps * spikeFactor; base rate elsewhere.
    double spikePeriodSec = 0.25;
    double spikeLenSec = 0.03;
    double spikeFactor = 8.0;

    /** Instantaneous rate at time @p t (requests per second). */
    double rate(double t) const;

    /** Upper bound of rate() over the horizon (thinning envelope). */
    double peakRate() const;
};

/**
 * The full arrival tick sequence for one tenant: Lewis-Shedler
 * thinning of a homogeneous Poisson process at peakRate(), strictly
 * increasing, all < horizon.  Pure function of (config, seed).
 */
std::vector<sim::Tick> generateArrivals(const ArrivalConfig &cfg,
                                        std::uint64_t seed);

} // namespace charon::fleet

#endif // CHARON_FLEET_ARRIVAL_HH
