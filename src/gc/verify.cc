#include "verify.hh"

#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "sim/logging.hh"

namespace charon::gc
{

using heap::Space;
using mem::Addr;

GraphFingerprint
fingerprintHeap(const heap::ManagedHeap &heap)
{
    return fingerprintGraph(heap);
}

void
checkHeapIntegrity(const heap::ManagedHeap &heap)
{
    std::unordered_map<Addr, bool> seen;
    std::deque<Addr> queue;
    auto visit = [&](Addr obj, Addr from) {
        CHARON_ASSERT(heap.spaceOf(obj) != Space::None,
                      "reference 0x%llx (from 0x%llx) outside all spaces",
                      static_cast<unsigned long long>(obj),
                      static_cast<unsigned long long>(from));
        Space s = heap.spaceOf(obj);
        const auto &r = heap.region(s);
        CHARON_ASSERT(obj < r.top,
                      "reference 0x%llx points above %s top",
                      static_cast<unsigned long long>(obj), spaceName(s));
        heap::KlassId kid = heap.klassOf(obj);
        CHARON_ASSERT(kid > 0 && kid < heap.klasses().size(),
                      "object 0x%llx has bad klass %u",
                      static_cast<unsigned long long>(obj), kid);
        if (!seen.emplace(obj, true).second)
            return;
        queue.push_back(obj);
    };

    for (Addr root : heap.roots()) {
        if (root != 0)
            visit(root, 0);
    }
    while (!queue.empty()) {
        Addr obj = queue.front();
        queue.pop_front();
        std::uint64_t refs = heap.refCount(obj);
        for (std::uint64_t i = 0; i < refs; ++i) {
            Addr t = heap.refAt(obj, i);
            if (t != 0)
                visit(t, obj);
        }
    }
}

void
MetadataVerifyReport::note(std::string finding)
{
    ++corrupt;
    if (findings.size() < kMaxFindings)
        findings.push_back(std::move(finding));
}

std::string
MetadataVerifyReport::str() const
{
    std::string out = sim::format(
        "%llu checked, %llu corrupt",
        static_cast<unsigned long long>(checked),
        static_cast<unsigned long long>(corrupt));
    for (const auto &f : findings)
        out += "\n  " + f;
    if (corrupt > findings.size())
        out += sim::format("\n  ... and %llu more",
                           static_cast<unsigned long long>(
                               corrupt - findings.size()));
    return out;
}

MetadataVerifyReport
verifyCardTable(const heap::ManagedHeap &heap)
{
    MetadataVerifyReport report;
    const auto &cards = heap.cardTable();

    // Encoding check: HotSpot's byte-per-card table only ever holds
    // kClean (0xFF) or kDirty (0x00), so any single-bit flip of
    // either value is provably invalid.
    for (std::uint64_t c = 0; c < cards.numCards(); ++c) {
        ++report.checked;
        std::uint8_t b = cards.rawByte(c);
        if (b != heap::CardTable::kClean && b != heap::CardTable::kDirty)
            report.note(sim::format(
                "card %llu holds invalid byte 0x%02x",
                static_cast<unsigned long long>(c), b));
    }

    // Remembered-set check: every old-to-young reference must be
    // covered by a dirty card, or the next scavenge would miss it.
    // Two barriers maintain this, at different granularities — the
    // mutator post-barrier dirties the storing object's header card,
    // the scavenge's slot-update barrier dirties the slot's card —
    // and the card scan walks whole objects from the covering object
    // of each dirty card, so either card keeps the ref visible.
    heap.forEachObject(heap::Space::Old, [&](Addr obj) {
        std::uint64_t n = heap.refCount(obj);
        std::uint64_t header_card = cards.cardIndex(obj);
        for (std::uint64_t i = 0; i < n; ++i) {
            Addr target = heap.refAt(obj, i);
            if (target == 0 || !heap.inYoung(target))
                continue;
            std::uint64_t card = cards.cardIndex(heap.refSlotAddr(obj, i));
            if (cards.rawByte(card) == heap::CardTable::kClean
                && cards.rawByte(header_card) == heap::CardTable::kClean)
                report.note(sim::format(
                    "old-to-young ref at 0x%llx with clean slot card "
                    "%llu and clean header card %llu",
                    static_cast<unsigned long long>(
                        heap.refSlotAddr(obj, i)),
                    static_cast<unsigned long long>(card),
                    static_cast<unsigned long long>(header_card)));
        }
    });
    return report;
}

void
populateMarkBitmaps(heap::ManagedHeap &heap)
{
    auto &beg = heap.begBitmap();
    auto &end = heap.endBitmap();
    beg.clearAll();
    end.clearAll();
    for (heap::Space s : {heap::Space::Old, heap::Space::Eden,
                          heap::Space::From, heap::Space::To}) {
        heap.forEachObject(s, [&](Addr obj) {
            beg.set(obj);
            end.set(obj + (heap.sizeWords(obj) - 1) * 8);
        });
    }
}

MetadataVerifyReport
verifyMarkBitmaps(const heap::ManagedHeap &heap)
{
    MetadataVerifyReport report;
    const auto &beg = heap.begBitmap();
    const auto &end = heap.endBitmap();
    const std::uint64_t limit = beg.numBits();
    std::unordered_set<std::uint64_t> expected_ends;

    for (std::uint64_t b = beg.findNextSet(0, limit); b < limit;
         b = beg.findNextSet(b + 1, limit)) {
        ++report.checked;
        Addr obj = beg.bitAddr(b);
        heap::Space s = heap.spaceOf(obj);
        if (s == heap::Space::None || obj >= heap.region(s).top) {
            report.note(sim::format(
                "begin bit %llu (0x%llx) outside any allocated space",
                static_cast<unsigned long long>(b),
                static_cast<unsigned long long>(obj)));
            continue;
        }
        heap::KlassId kid = heap.klassOf(obj);
        if (kid == 0 || kid >= heap.klasses().size()) {
            report.note(sim::format(
                "begin bit %llu (0x%llx) marks a non-object (klass %u)",
                static_cast<unsigned long long>(b),
                static_cast<unsigned long long>(obj), kid));
            continue;
        }
        std::uint64_t e = b + heap.sizeWords(obj) - 1;
        if (e >= limit) {
            report.note(sim::format(
                "begin bit %llu implies out-of-range end bit %llu",
                static_cast<unsigned long long>(b),
                static_cast<unsigned long long>(e)));
            continue;
        }
        expected_ends.insert(e);
        if (!end.testBit(e))
            report.note(sim::format(
                "object 0x%llx (begin bit %llu) missing end bit %llu",
                static_cast<unsigned long long>(obj),
                static_cast<unsigned long long>(b),
                static_cast<unsigned long long>(e)));
    }

    for (std::uint64_t e = end.findNextSet(0, limit); e < limit;
         e = end.findNextSet(e + 1, limit)) {
        ++report.checked;
        if (!expected_ends.count(e))
            report.note(sim::format(
                "orphan end bit %llu (0x%llx) without a begin bit",
                static_cast<unsigned long long>(e),
                static_cast<unsigned long long>(end.bitAddr(e))));
    }

    std::uint64_t nbeg = beg.countSet(0, limit);
    std::uint64_t nend = end.countSet(0, limit);
    if (nbeg != nend)
        report.note(sim::format(
            "bitmap population mismatch: %llu begin vs %llu end bits",
            static_cast<unsigned long long>(nbeg),
            static_cast<unsigned long long>(nend)));
    return report;
}

} // namespace charon::gc
