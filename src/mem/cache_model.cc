#include "cache_model.hh"

#include "sim/logging.hh"

namespace charon::mem
{

CacheModel::CacheModel(std::uint64_t size_bytes, int assoc,
                       int block_bytes)
    : assoc_(assoc), blockBytes_(block_bytes)
{
    CHARON_ASSERT(isPow2(static_cast<std::uint64_t>(block_bytes)),
                  "block size must be a power of two");
    CHARON_ASSERT(size_bytes
                          % (static_cast<std::uint64_t>(assoc)
                             * static_cast<std::uint64_t>(block_bytes))
                      == 0,
                  "capacity must divide into sets");
    numSets_ = size_bytes
               / (static_cast<std::uint64_t>(assoc)
                  * static_cast<std::uint64_t>(block_bytes));
    CHARON_ASSERT(numSets_ >= 1, "cache needs at least one set");
    lines_.resize(numSets_ * static_cast<std::uint64_t>(assoc));
}

CacheModel::Line *
CacheModel::findLine(Addr tag, std::uint64_t set)
{
    Line *base = &lines_[set * static_cast<std::uint64_t>(assoc_)];
    for (int w = 0; w < assoc_; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return &base[w];
    }
    return nullptr;
}

const CacheModel::Line *
CacheModel::findLine(Addr tag, std::uint64_t set) const
{
    return const_cast<CacheModel *>(this)->findLine(tag, set);
}

bool
CacheModel::access(Addr addr, bool write)
{
    Addr block = addr / static_cast<Addr>(blockBytes_);
    std::uint64_t set = block % numSets_;
    Addr tag = block / numSets_;
    if (Line *line = findLine(tag, set)) {
        ++hits_;
        line->lru = ++lruClock_;
        line->dirty |= write;
        return true;
    }
    ++misses_;
    // Fill: evict true-LRU victim.
    Line *base = &lines_[set * static_cast<std::uint64_t>(assoc_)];
    Line *victim = &base[0];
    for (int w = 1; w < assoc_; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lru < victim->lru)
            victim = &base[w];
    }
    if (victim->valid && victim->dirty)
        ++writebacks_;
    victim->valid = true;
    victim->dirty = write;
    victim->tag = tag;
    victim->lru = ++lruClock_;
    return false;
}

bool
CacheModel::contains(Addr addr) const
{
    Addr block = addr / static_cast<Addr>(blockBytes_);
    std::uint64_t set = block % numSets_;
    Addr tag = block / numSets_;
    return findLine(tag, set) != nullptr;
}

std::uint64_t
CacheModel::flush()
{
    std::uint64_t dirty = 0;
    for (auto &line : lines_) {
        if (line.valid && line.dirty)
            ++dirty;
        line.valid = false;
        line.dirty = false;
    }
    writebacks_ += dirty;
    return dirty;
}

} // namespace charon::mem
