/**
 * @file
 * A non-moving mark-sweep collector over the Old generation, in the
 * style of HotSpot's Concurrent Mark Sweep (CMS) old-generation
 * collector.
 *
 * Included to demonstrate Table 1 of the paper: CMS reuses the
 * Scan&Push primitive as-is and Copy for its (separate) young-gen
 * scavenges, but — having no compaction — never calls Bitmap Count.
 * Dead runs are overwritten with int[]-style filler objects (exactly
 * HotSpot's trick) so heap walkers keep working, and the resulting
 * holes are chained into a first-fit free list.
 */

#ifndef CHARON_GC_MARK_SWEEP_HH
#define CHARON_GC_MARK_SWEEP_HH

#include <cstdint>
#include <vector>

#include "gc/recorder.hh"
#include "heap/heap.hh"

namespace charon::gc
{

/**
 * Mark-sweep over the Old generation.
 */
class MarkSweep
{
  public:
    struct Result
    {
        std::uint64_t liveObjects = 0;
        std::uint64_t liveBytes = 0;
        std::uint64_t freedBytes = 0;
        std::uint64_t freeChunks = 0;
        /** Bytes returned to the bump allocator by top trimming. */
        std::uint64_t trimmedBytes = 0;
    };

    /** A reclaimed hole (now holding a filler object). */
    struct FreeChunk
    {
        mem::Addr addr;
        std::uint64_t bytes;
    };

    /**
     * @param trim_top when the final free run borders the Old
     *        allocation frontier, lower the top instead of chaining
     *        a filler chunk, so bump allocation can resume (used by
     *        the CMS collector; off by default to keep the sweep
     *        strictly non-moving for the standalone demos).
     */
    MarkSweep(heap::ManagedHeap &heap, TraceRecorder &recorder,
              bool trim_top = false);

    /**
     * Mark from the roots and sweep the Old generation.  Young spaces
     * are untouched (CMS pairs with a separate young collector).
     */
    Result collect();

    /** Free list produced by the last sweep (address order). */
    const std::vector<FreeChunk> &freeList() const { return freeList_; }

    /**
     * First-fit allocation from the free list: carves @p size_words
     * out of a chunk, re-writing the filler for the remainder.
     * @return object address with a valid header, or 0.
     */
    mem::Addr allocateFromFreeList(heap::KlassId klass,
                                   std::uint64_t array_len = 0);

    /**
     * Overwrite a dead extent with a HotSpot-style filler object
     * (2-word raw filler or an int[] header) so heap walkers keep
     * working.  Shared with the RC collector's block recycling.
     */
    static void writeFiller(heap::ManagedHeap &heap, mem::Addr addr,
                            std::uint64_t bytes);

  private:
    void markFromRoots();
    void sweep();

    heap::ManagedHeap &heap_;
    TraceRecorder &rec_;
    bool trimTop_ = false;
    Result result_;
    std::vector<FreeChunk> freeList_;
};

} // namespace charon::gc

#endif // CHARON_GC_MARK_SWEEP_HH
