#include "trace.hh"

namespace charon::gc
{

const char *
primKindName(PrimKind kind)
{
    switch (kind) {
      case PrimKind::Copy:        return "Copy";
      case PrimKind::Search:      return "Search";
      case PrimKind::ScanPush:    return "Scan&Push";
      case PrimKind::BitmapCount: return "BitmapCount";
    }
    return "unknown";
}

const char *
phaseKindName(PhaseKind kind)
{
    switch (kind) {
      case PhaseKind::MinorRoots:    return "minor.roots";
      case PhaseKind::MinorCardScan: return "minor.cardscan";
      case PhaseKind::MinorEvacuate: return "minor.evacuate";
      case PhaseKind::MajorMark:     return "major.mark";
      case PhaseKind::MajorSummary:  return "major.summary";
      case PhaseKind::MajorCompact:  return "major.compact";
    }
    return "unknown";
}

Bucket &
ThreadWork::bucket(PrimKind kind, int src_cube, int dst_cube,
                   bool host_only)
{
    for (auto &b : buckets) {
        if (b.kind == kind && b.srcCube == src_cube
            && b.dstCube == dst_cube && b.hostOnly == host_only) {
            return b;
        }
    }
    Bucket b;
    b.kind = kind;
    b.srcCube = src_cube;
    b.dstCube = dst_cube;
    b.hostOnly = host_only;
    buckets.push_back(b);
    return buckets.back();
}

std::uint64_t
PhaseTrace::totalInvocations(PrimKind kind) const
{
    std::uint64_t n = 0;
    for (const auto &t : threads) {
        for (const auto &b : t.buckets) {
            if (b.kind == kind)
                n += b.invocations;
        }
    }
    return n;
}

std::uint64_t
PhaseTrace::totalBytes(PrimKind kind) const
{
    std::uint64_t n = 0;
    for (const auto &t : threads) {
        for (const auto &b : t.buckets) {
            if (b.kind == kind)
                n += b.totalBytes();
        }
    }
    return n;
}

std::uint64_t
GcTrace::totalInvocations(PrimKind kind) const
{
    std::uint64_t n = 0;
    for (const auto &p : phases)
        n += p.totalInvocations(kind);
    return n;
}

std::uint64_t
RunTrace::minorCount() const
{
    std::uint64_t n = 0;
    for (const auto &gc : gcs)
        n += gc.major ? 0 : 1;
    return n;
}

std::uint64_t
RunTrace::majorCount() const
{
    std::uint64_t n = 0;
    for (const auto &gc : gcs)
        n += gc.major ? 1 : 0;
    return n;
}

} // namespace charon::gc
