#include "mark_sweep.hh"

#include "gc/mark_work.hh"
#include "sim/logging.hh"

namespace charon::gc
{

using heap::Space;
using mem::Addr;

MarkSweep::MarkSweep(heap::ManagedHeap &heap, TraceRecorder &recorder,
                     bool trim_top)
    : heap_(heap), rec_(recorder), trimTop_(trim_top)
{
}

void
MarkSweep::markFromRoots()
{
    // CMS policies: a single mark bitmap, no explicit root push
    // charge, weak-slot test before the null test.
    MarkOptions opt;
    MarkStats stats = runMarkClosure(heap_, rec_, opt);
    result_.liveObjects = stats.liveObjects;
    result_.liveBytes = stats.liveBytes;
}

void
MarkSweep::writeFiller(heap::ManagedHeap &heap, Addr addr,
                       std::uint64_t bytes)
{
    const auto &klasses = heap.klasses();
    std::uint64_t words = bytes / 8;
    CHARON_ASSERT(words >= 2, "hole too small for a filler");
    if (words == 2) {
        heap.store64(addr, static_cast<std::uint64_t>(klasses.fillerId())
                               | (2ull << 32));
        heap.store64(addr + 8, 0);
        return;
    }
    // int[] filler: 3 header words + (words-3) payload words
    // == (words-3)*2 int elements.
    std::uint64_t len = (words - 3) * 2;
    heap.store64(addr, static_cast<std::uint64_t>(klasses.intArrayId())
                           | (words << 32));
    heap.store64(addr + 8, 0);
    heap.store64(addr + 16, len);
}

void
MarkSweep::sweep()
{
    rec_.beginPhase(PhaseKind::MajorSummary); // sweep bookkeeping slot
    const auto &costs = rec_.costs();
    const auto &mark = heap_.begBitmap();
    freeList_.clear();

    const Addr start = heap_.region(Space::Old).start;
    Addr p = start;
    const Addr top = heap_.region(Space::Old).top;
    Addr run_start = 0;
    auto close_run = [&](Addr run_end) {
        if (run_start == 0)
            return;
        std::uint64_t bytes = run_end - run_start;
        if (trimTop_ && run_end == top) {
            // The final free run borders the allocation frontier:
            // give it back to the bump allocator instead of chaining
            // a filler (CMS's "coalesce with the end of the space").
            heap_.setOldTop(run_start);
            result_.freedBytes += bytes;
            result_.trimmedBytes = bytes;
            run_start = 0;
            return;
        }
        writeFiller(heap_, run_start, bytes);
        freeList_.push_back({run_start, bytes});
        result_.freedBytes += bytes;
        ++result_.freeChunks;
        // Free-list node insert stays on the host.
        rec_.recordGlue(costs.pushObject, 1);
        run_start = 0;
    };

    while (p < top) {
        std::uint64_t bytes = heap_.sizeBytes(p);
        if (mark.test(p)) {
            close_run(p);
        } else if (run_start == 0) {
            run_start = p;
        }
        p += bytes;
    }
    close_run(top);
    // The walk itself is one Bit Sweep over the Old range: stream the
    // mark bitmap, emit a free-run extent per 0-run (Table 1's CMS
    // row — the sweep is the offloadable half of the collector).
    if (top > start) {
        rec_.recordBitSweep(
            mark.storageAddrOfBit(mark.bitIndex(start)),
            (top - start) / 8, result_.freeChunks);
    }
    rec_.endPhase();
}

MarkSweep::Result
MarkSweep::collect()
{
    rec_.beginGc(true);
    markFromRoots();
    sweep();
    rec_.endGc();
    return result_;
}

Addr
MarkSweep::allocateFromFreeList(heap::KlassId klass,
                                std::uint64_t array_len)
{
    std::uint64_t need_words = heap_.sizeWordsFor(klass, array_len);
    for (auto it = freeList_.begin(); it != freeList_.end(); ++it) {
        std::uint64_t chunk_words = it->bytes / 8;
        if (chunk_words < need_words)
            continue;
        std::uint64_t rem = chunk_words - need_words;
        if (rem == 1)
            continue; // cannot express a 1-word filler
        Addr obj = it->addr;
        if (rem == 0) {
            freeList_.erase(it);
        } else {
            it->addr += need_words * 8;
            it->bytes = rem * 8;
            writeFiller(heap_, it->addr, it->bytes);
        }
        // Install a fresh header (mirrors ManagedHeap allocation).
        std::uint64_t kid = klass;
        heap_.store64(obj, kid | (need_words << 32));
        heap_.store64(obj + 8, 0);
        const auto &k = heap_.klasses().get(klass);
        if (k.kind == heap::KlassKind::ObjArray
            || heap::isTypeArrayKind(k.kind)) {
            heap_.store64(obj + 16, array_len);
            if (k.kind == heap::KlassKind::ObjArray) {
                for (std::uint64_t i = 0; i < array_len; ++i)
                    heap_.store64(obj + 24 + i * 8, 0);
            }
        } else {
            for (std::uint64_t i = 0; i < k.refFields; ++i)
                heap_.store64(obj + 16 + i * 8, 0);
        }
        return obj;
    }
    return 0;
}

} // namespace charon::gc
