/**
 * @file
 * Shared stop-the-world marking worklist.
 *
 * Every tracing collector in the zoo — ParallelScavenge's full
 * compactor, the CMS-style mark-sweep, and the RC collector's backup
 * cycle pass — runs the same depth-first closure: pop an object, test
 * its reference slots, mark-and-push the unmarked targets, record one
 * Scan&Push per scanned object.  The collectors differ only in small,
 * trace-visible policies (dual begin/end bitmaps vs a single mark
 * bit, whether a marked root charges an explicit push, the order of
 * the null and weak-slot tests), so those are MarkOptions rather than
 * three diverging copies of the loop.
 *
 * The policies are not cosmetic: the recorded traces must stay
 * byte-identical to the pre-refactor collectors, and e.g. the
 * null-vs-weak test order changes how many Reference objects the
 * weak-processing pass visits (ParallelOld skips null referents
 * early; CMS discovers the Reference object regardless).
 */

#ifndef CHARON_GC_MARK_WORK_HH
#define CHARON_GC_MARK_WORK_HH

#include <cstdint>
#include <vector>

#include "gc/recorder.hh"
#include "heap/heap.hh"

namespace charon::gc
{

/** Trace-visible policy knobs of the shared mark closure. */
struct MarkOptions
{
    /** Phase the closure runs under. */
    PhaseKind phase = PhaseKind::MajorMark;
    /**
     * Set begin AND end bits (two mark_obj RMWs per object, the
     * ParallelOld encoding compaction needs); else one CMS-style
     * mark bit in the begin map.
     */
    bool dualBitmap = false;
    /**
     * Charge pushObject glue for each newly marked root
     * (ParallelOld's explicit root task push; CMS folds the push
     * into the closure and charges nothing extra).
     */
    bool rootPushGlue = false;
    /**
     * Skip null targets before the weak-slot test (ParallelOld
     * order). CMS tests the slot kind first, so a Reference with a
     * null referent still reaches the weak-processing pass.
     */
    bool nullCheckFirst = false;
    /** Optional: live objects in discovery order. */
    std::vector<mem::Addr> *liveOut = nullptr;
};

/** What the closure found. */
struct MarkStats
{
    std::uint64_t liveObjects = 0;
    std::uint64_t liveBytes = 0;
};

/**
 * Clear the mark bitmap(s), mark everything reachable from the
 * roots, and clear weak referents that no strong path reached.
 * Opens and closes its own recorder phase.
 */
inline MarkStats
runMarkClosure(heap::ManagedHeap &heap, TraceRecorder &rec,
               const MarkOptions &opt)
{
    using mem::Addr;
    rec.beginPhase(opt.phase);
    const auto &costs = rec.costs();
    auto &beg = heap.begBitmap();
    beg.clearAll();
    if (opt.dualBitmap)
        heap.endBitmap().clearAll();
    // Bulk bitmap clear: host-side memset, charged as glue.
    rec.recordGlue(beg.storageBytes() / 32, beg.storageBytes() / 32);

    MarkStats stats;
    std::vector<Addr> stack;
    // mark_obj performs atomic RMWs on the map(s) (through the
    // bitmap cache in Charon, Section 4.5).
    auto try_mark = [&](Addr obj) {
        if (beg.test(obj))
            return false;
        beg.set(obj);
        rec.recordMarkObj(beg.storageAddrOfBit(beg.bitIndex(obj)));
        if (opt.dualBitmap) {
            auto &end = heap.endBitmap();
            Addr last = obj + (heap.sizeWords(obj) - 1) * 8;
            end.set(last);
            rec.recordMarkObj(end.storageAddrOfBit(end.bitIndex(last)));
        }
        return true;
    };

    for (Addr root : heap.roots()) {
        rec.recordGlue(costs.rootVisit, 1);
        if (root != 0 && try_mark(root)) {
            stack.push_back(root);
            if (opt.rootPushGlue)
                rec.recordGlue(costs.pushObject);
        }
        rec.nextThread();
    }

    std::vector<Addr> weak_refs;
    while (!stack.empty()) {
        Addr obj = stack.back();
        stack.pop_back();
        rec.recordGlue(costs.popObject + costs.typeDispatch, 2);
        std::uint64_t n = heap.refCount(obj);
        std::uint64_t pushed = 0;
        auto kind = heap.klasses().get(heap.klassOf(obj)).kind;
        for (std::uint64_t i = 0; i < n; ++i) {
            Addr target = heap.refAt(obj, i);
            if (opt.nullCheckFirst && target == 0)
                continue;
            if (heap::isWeakSlot(kind, i)) {
                // Weak referents do not keep their target alive.
                weak_refs.push_back(obj);
                continue;
            }
            if (target != 0 && try_mark(target)) {
                stack.push_back(target);
                ++pushed;
            }
        }
        rec.recordScanPush(obj, 16 + n * 8, n, pushed,
                           heap.klasses().get(heap.klassOf(obj))
                               .acceleratable());
        if (opt.liveOut)
            opt.liveOut->push_back(obj);
        ++stats.liveObjects;
        stats.liveBytes += heap.sizeBytes(obj);
        rec.nextThread();
    }
    // Reference processing: clear weak referents the marking did not
    // reach through a strong path.
    for (Addr holder : weak_refs) {
        rec.recordGlue(costs.pointerAdjust, 2);
        Addr target = heap.refAt(holder, 0);
        if (target != 0 && !beg.test(target))
            heap.setRefRaw(holder, 0, 0);
    }
    rec.endPhase();
    return stats;
}

} // namespace charon::gc

#endif // CHARON_GC_MARK_WORK_HH
