/**
 * @file
 * Tests for the set-associative cache model (bitmap cache substrate).
 */

#include <gtest/gtest.h>

#include "mem/cache_model.hh"

using charon::mem::CacheModel;

TEST(CacheModel, FirstAccessMissesThenHits)
{
    CacheModel c(8 * 1024, 8, 32);
    EXPECT_FALSE(c.access(0x1000, false));
    EXPECT_TRUE(c.access(0x1000, false));
    EXPECT_TRUE(c.access(0x101f, false)); // same 32 B block
    EXPECT_FALSE(c.access(0x1020, false)); // next block
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(CacheModel, GeometryMatchesConfiguration)
{
    CacheModel c(8 * 1024, 8, 32);
    EXPECT_EQ(c.sets(), 32u); // 8KB / (8 * 32B)
    EXPECT_EQ(c.blockBytes(), 32);
}

TEST(CacheModel, LruEvictsOldest)
{
    // Direct-mapped-ish: 2-way, tiny.
    CacheModel c(4 * 32 * 2, 2, 32); // 4 sets, 2 ways
    // Three blocks mapping to set 0: block addresses 0, 4*32, 8*32.
    c.access(0, false);
    c.access(4 * 32, false);
    c.access(0, false);      // touch block 0 -> LRU is 4*32
    c.access(8 * 32, false); // evicts 4*32
    EXPECT_TRUE(c.contains(0));
    EXPECT_FALSE(c.contains(4 * 32));
    EXPECT_TRUE(c.contains(8 * 32));
}

TEST(CacheModel, ContainsDoesNotAllocate)
{
    CacheModel c(1024, 2, 32);
    EXPECT_FALSE(c.contains(0x40));
    EXPECT_FALSE(c.contains(0x40));
    EXPECT_EQ(c.misses(), 0u); // probes don't count
}

TEST(CacheModel, WritebacksCountDirtyEvictions)
{
    CacheModel c(2 * 32, 1, 32); // 2 sets, direct mapped
    c.access(0, true);           // dirty fill set 0
    c.access(2 * 32, true);      // same set, evicts dirty -> writeback
    EXPECT_EQ(c.writebacks(), 1u);
    c.access(4 * 32, false);     // evicts dirty line again
    EXPECT_EQ(c.writebacks(), 2u);
    c.access(6 * 32, false);     // evicts clean line
    EXPECT_EQ(c.writebacks(), 2u);
}

TEST(CacheModel, FlushWritesBackDirtyLines)
{
    CacheModel c(8 * 1024, 8, 32);
    c.access(0, true);
    c.access(32, false);
    c.access(64, true);
    EXPECT_EQ(c.flush(), 2u);
    EXPECT_FALSE(c.contains(0));
    EXPECT_FALSE(c.contains(32));
}

TEST(CacheModel, HitRateComputation)
{
    CacheModel c(8 * 1024, 8, 32);
    EXPECT_DOUBLE_EQ(c.hitRate(), 0.0);
    c.access(0, false);
    c.access(0, false);
    c.access(0, false);
    c.access(0, false);
    EXPECT_DOUBLE_EQ(c.hitRate(), 0.75);
    c.resetStats();
    EXPECT_EQ(c.hits() + c.misses(), 0u);
}

TEST(CacheModel, SmallWorkingSetFitsEntirely)
{
    CacheModel c(8 * 1024, 8, 32);
    // 4 KB working set < 8 KB cache: second pass must be all hits.
    for (int pass = 0; pass < 2; ++pass) {
        for (std::uint64_t a = 0; a < 4096; a += 32)
            c.access(a, false);
    }
    EXPECT_EQ(c.misses(), 128u);
    EXPECT_EQ(c.hits(), 128u);
}

TEST(CacheModel, ThrashingWorkingSetMisses)
{
    CacheModel c(1024, 1, 32); // 32 sets direct-mapped
    // Two blocks per set, round-robin: always miss after warmup.
    for (int pass = 0; pass < 4; ++pass) {
        for (std::uint64_t a = 0; a < 2048; a += 32)
            c.access(a, false);
    }
    EXPECT_EQ(c.hits(), 0u);
}
