#include "repo_root.hh"

namespace charon::harness
{

namespace fs = std::filesystem;

fs::path
findRepoRoot(const fs::path &start)
{
    std::error_code ec;
    fs::path gitFallback;
    for (fs::path dir = start; !dir.empty(); dir = dir.parent_path()) {
        if (fs::exists(dir / "ROADMAP.md", ec))
            return dir;
        if (gitFallback.empty() && fs::exists(dir / ".git", ec))
            gitFallback = dir;
        if (dir == dir.root_path())
            break;
    }
    return gitFallback.empty() ? start : gitFallback;
}

} // namespace charon::harness
