#include "table.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "sim/logging.hh"

namespace charon::report
{

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

Table &
Table::addRow(std::vector<std::string> cells)
{
    CHARON_ASSERT(cells.size() == headers_.size(),
                  "row width %zu != header width %zu", cells.size(),
                  headers_.size());
    rows_.push_back(std::move(cells));
    return *this;
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c == 0) {
                os << cells[c]
                   << std::string(widths[c] - cells[c].size(), ' ');
            } else {
                os << "  "
                   << std::string(widths[c] - cells[c].size(), ' ')
                   << cells[c];
            }
        }
        os << '\n';
    };
    emit(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c)
            os << (c ? "," : "") << cells[c];
        os << '\n';
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
}

std::string
num(double value, int decimals)
{
    // A zero-GC or empty-distribution cell yields inf/NaN ratios
    // upstream; render them as the "no data" dash rather than letting
    // "inf"/"nan" leak into diffed tables.
    if (!std::isfinite(value))
        return "-";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string
times(double value, int decimals)
{
    if (!std::isfinite(value))
        return "-";
    return num(value, decimals) + "x";
}

std::string
percent(double part, double total, int decimals)
{
    if (total == 0)
        return "-";
    return num(100.0 * part / total, decimals) + "%";
}

void
heading(std::ostream &os, const std::string &title)
{
    os << '\n' << "== " << title << " ==\n\n";
}

} // namespace charon::report
