/**
 * @file
 * java.lang.ref semantics across every collector: a weak referent
 * dies when it is only weakly reachable (and the Reference's slot is
 * cleared), survives when any strong path reaches it, and the
 * Reference object itself is ordinary strong data.
 */

#include <gtest/gtest.h>

#include "gc/collector.hh"
#include "gc/g1_collector.hh"
#include "gc/mark_compact.hh"
#include "gc/mark_sweep.hh"
#include "gc/recorder.hh"
#include "gc/scavenge.hh"
#include "gc/verify.hh"

using namespace charon;
using namespace charon::gc;
using mem::Addr;

namespace
{

class WeakRefTest : public ::testing::Test
{
  protected:
    WeakRefTest()
    {
        nodeId = klasses.defineInstance("Node", 2, 2);
        // WeakReference layout: slot 0 = referent (weak), slot 1 =
        // queue-next (strong), 1 payload word.
        weakId = klasses.defineInstance("WeakReference", 2, 1,
                                        heap::KlassKind::InstanceRef);
        cfg.heapBytes = 16 * sim::kMiB;
        heap = std::make_unique<heap::ManagedHeap>(cfg, klasses);
        rec = std::make_unique<TraceRecorder>(4, 22);
    }

    /** Root a fresh WeakReference wrapping a fresh referent. */
    std::size_t
    makeWeakPair(bool strong_alias)
    {
        Addr referent = heap->allocEden(nodeId);
        Addr ref = heap->allocEden(weakId);
        heap->storeRef(ref, 0, referent);
        heap->roots().push_back(ref);
        std::size_t slot = heap->roots().size() - 1;
        if (strong_alias)
            heap->roots().push_back(referent);
        return slot;
    }

    heap::KlassTable klasses;
    heap::KlassId nodeId = 0, weakId = 0;
    heap::HeapConfig cfg;
    std::unique_ptr<heap::ManagedHeap> heap;
    std::unique_ptr<TraceRecorder> rec;
};

} // namespace

TEST_F(WeakRefTest, ScavengeClearsDeadReferent)
{
    auto slot = makeWeakPair(/*strong_alias=*/false);
    Scavenge(*heap, *rec).collect();
    Addr ref = heap->roots()[slot];
    ASSERT_NE(ref, 0u);
    EXPECT_EQ(heap->refAt(ref, 0), 0u); // cleared
    checkHeapIntegrity(*heap);
}

TEST_F(WeakRefTest, ScavengeKeepsStronglyReachableReferent)
{
    auto slot = makeWeakPair(/*strong_alias=*/true);
    Scavenge(*heap, *rec).collect();
    Addr ref = heap->roots()[slot];
    Addr referent = heap->refAt(ref, 0);
    ASSERT_NE(referent, 0u);
    // The weak slot follows the moved object, identical to the
    // strong alias.
    EXPECT_EQ(referent, heap->roots()[slot + 1]);
    checkHeapIntegrity(*heap);
}

TEST_F(WeakRefTest, ScavengeStrongSlotStillWorks)
{
    // Slot 1 of a Reference is an ordinary strong field.
    auto slot = makeWeakPair(false);
    Addr next = heap->allocEden(nodeId);
    heap->storeRef(heap->roots()[slot], 1, next);
    Scavenge(*heap, *rec).collect();
    Addr ref = heap->roots()[slot];
    EXPECT_NE(heap->refAt(ref, 1), 0u); // strong field survived
    EXPECT_EQ(heap->refAt(ref, 0), 0u); // weak referent died
}

TEST_F(WeakRefTest, MarkCompactClearsDeadReferent)
{
    auto weak_slot = makeWeakPair(false);
    auto strong_slot = makeWeakPair(true);
    MarkCompact(*heap, *rec).collect();
    EXPECT_EQ(heap->refAt(heap->roots()[weak_slot], 0), 0u);
    EXPECT_NE(heap->refAt(heap->roots()[strong_slot], 0), 0u);
    checkHeapIntegrity(*heap);
    heap->verifySpace(heap::Space::Old);
}

TEST_F(WeakRefTest, MarkSweepClearsDeadReferent)
{
    // Build the pairs in the old generation (mark-sweep's domain).
    Addr referent = heap->allocOldObject(nodeId);
    Addr ref = heap->allocOldObject(weakId);
    heap->setRefRaw(ref, 0, referent);
    heap->roots().push_back(ref);
    Addr kept = heap->allocOldObject(nodeId);
    Addr ref2 = heap->allocOldObject(weakId);
    heap->setRefRaw(ref2, 0, kept);
    heap->roots().push_back(ref2);
    heap->roots().push_back(kept);

    auto result = MarkSweep(*heap, *rec).collect();
    EXPECT_EQ(heap->refAt(ref, 0), 0u);     // cleared
    EXPECT_EQ(heap->refAt(ref2, 0), kept);  // strong alias keeps it
    // The dead referent's space was swept.
    EXPECT_GT(result.freedBytes, 0u);
}

TEST_F(WeakRefTest, ChainedCollectionsStayConsistent)
{
    auto weak_slot = makeWeakPair(false);
    auto strong_slot = makeWeakPair(true);
    Scavenge(*heap, *rec).collect();
    MarkCompact(*heap, *rec).collect();
    Scavenge(*heap, *rec).collect();
    EXPECT_EQ(heap->refAt(heap->roots()[weak_slot], 0), 0u);
    EXPECT_NE(heap->refAt(heap->roots()[strong_slot], 0), 0u);
    checkHeapIntegrity(*heap);
}

TEST_F(WeakRefTest, G1EvacuationProcessesWeakReferences)
{
    heap::G1Config g1cfg;
    g1cfg.heapBytes = 16 * sim::kMiB;
    g1cfg.regionBytes = 256 * 1024;
    heap::G1Heap g1heap(g1cfg, klasses);
    TraceRecorder g1rec(4, 22);
    G1Collector g1(g1heap, g1rec);

    Addr dead_ref = g1heap.allocate(weakId);
    Addr dead_target = g1heap.allocate(nodeId);
    g1heap.storeRef(dead_ref, 0, dead_target);
    g1heap.roots().push_back(dead_ref);

    Addr live_ref = g1heap.allocate(weakId);
    Addr live_target = g1heap.allocate(nodeId);
    g1heap.storeRef(live_ref, 0, live_target);
    g1heap.roots().push_back(live_ref);
    g1heap.roots().push_back(live_target);

    g1.youngCollect();
    Addr moved_dead = g1heap.roots()[0];
    Addr moved_live = g1heap.roots()[1];
    EXPECT_EQ(g1heap.refAt(moved_dead, 0), 0u);
    EXPECT_EQ(g1heap.refAt(moved_live, 0), g1heap.roots()[2]);
    g1heap.verify();
}

TEST_F(WeakRefTest, G1MarkClearsDeadReferent)
{
    heap::G1Config g1cfg;
    g1cfg.heapBytes = 16 * sim::kMiB;
    g1cfg.regionBytes = 256 * 1024;
    heap::G1Heap g1heap(g1cfg, klasses);
    TraceRecorder g1rec(4, 22);
    G1Collector g1(g1heap, g1rec);

    Addr ref = g1heap.allocate(weakId);
    Addr target = g1heap.allocate(nodeId);
    g1heap.storeRef(ref, 0, target);
    g1heap.roots().push_back(ref);
    g1.concurrentMark();
    EXPECT_EQ(g1heap.refAt(g1heap.roots()[0], 0), 0u);
}

TEST_F(WeakRefTest, NullReferentIsHarmless)
{
    Addr ref = heap->allocEden(weakId); // referent stays null
    heap->roots().push_back(ref);
    Scavenge(*heap, *rec).collect();
    MarkCompact(*heap, *rec).collect();
    EXPECT_EQ(heap->refAt(heap->roots()[0], 0), 0u);
}
