#include "card_table.hh"

#include "sim/logging.hh"

namespace charon::heap
{

CardTable::CardTable(mem::Addr covered_base, std::uint64_t covered_bytes,
                     mem::Addr storage_base)
    : coveredBase_(covered_base),
      storageBase_(storage_base),
      bytes_(mem::divCeil(covered_bytes, kCardBytes), kClean)
{
}

void
CardTable::cleanAll()
{
    std::fill(bytes_.begin(), bytes_.end(), kClean);
}

std::uint64_t
CardTable::findDirty(std::uint64_t from, std::uint64_t limit) const
{
    CHARON_ASSERT(limit <= bytes_.size(), "card range out of bounds");
    for (std::uint64_t i = from; i < limit; ++i) {
        if (bytes_[i] != kClean)
            return i;
    }
    return limit;
}

} // namespace charon::heap
