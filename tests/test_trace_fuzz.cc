/**
 * @file
 * Adversarial-input tests for the varint-packed trace format
 * (gc/trace_io.cc): the decoder must reject every truncation and
 * every over-long or oversized varint cleanly (false + diagnostic,
 * no crash, no unbounded allocation), survive arbitrary single-bit
 * corruption (run under ASan/UBSan in CI), and a cache entry that no
 * longer parses must degrade to a cache miss, never to garbage.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "gc/trace.hh"
#include "gc/trace_io.hh"
#include "harness/experiment_runner.hh"

using namespace charon;
using namespace charon::gc;

namespace
{

/** A small but structurally complete trace: every field exercised. */
RunTrace
makeTrace()
{
    RunTrace trace;
    for (int g = 0; g < 2; ++g) {
        GcTrace gct;
        gct.major = g == 1;
        gct.capabilityMask = g == 0 ? 0x3fu : 0u;
        gct.liveObjects = 1000 + g;
        gct.bytesCopied = 1 << 20;
        gct.bytesPromoted = 1 << 14;
        gct.objectsScanned = 512;
        gct.refsVisited = 2048;
        gct.cardsSearched = 64;
        gct.bitmapCountCalls = 8;
        for (int p = 0; p < 2; ++p) {
            PhaseTrace phase;
            phase.kind = static_cast<PhaseKind>(p + 3 * g);
            phase.bitmapCacheHitRate = 0.25 * (p + 1);
            phase.bitmapCacheWritebacks = 17;
            for (int t = 0; t < 2; ++t) {
                ThreadWork work;
                work.glueInstructions = 10000 + 100 * t;
                work.glueMemAccesses = 250;
                for (int bi = 0; bi < 2; ++bi) {
                    Bucket b;
                    b.kind = static_cast<PrimKind>((p + bi) % 6);
                    b.srcCube = bi;
                    b.dstCube = (bi + 1) % 4;
                    b.hostOnly = bi == 0;
                    b.invocations = 5 + bi;
                    b.seqReadBytes = 1 << 12;
                    b.writeBytes = 1 << 10;
                    b.randomAccesses = 33;
                    b.randomBytes = 33 * 16;
                    b.refsVisited = 99;
                    b.rangeBits = 1 << 13;
                    b.bitmapRmwAccesses = 21;
                    b.stackPushes = 7;
                    work.buckets.push_back(b);
                }
                phase.addThread(work);
            }
            gct.phases.push_back(std::move(phase));
        }
        trace.gcs.push_back(std::move(gct));
        trace.mutatorInstructions.push_back(123456 + g);
    }
    return trace;
}

std::string
serialize(const RunTrace &trace)
{
    std::ostringstream os(std::ios::binary);
    writeTrace(os, trace);
    return os.str();
}

bool
parse(const std::string &bytes, RunTrace &out,
      std::string *error = nullptr)
{
    std::istringstream is(bytes, std::ios::binary);
    return readTrace(is, out, error);
}

/** Unbounded LEB128 encoder, for crafting adversarial varints. */
std::string
leb(std::uint64_t v)
{
    std::string s;
    while (v >= 0x80) {
        s.push_back(static_cast<char>((v & 0x7f) | 0x80));
        v >>= 7;
    }
    s.push_back(static_cast<char>(v));
    return s;
}

/** Magic (8) + version u64 (8): the first varint starts at 16. */
constexpr std::size_t kHeaderBytes = 16;

TEST(TraceFuzz, RoundTripBaseline)
{
    RunTrace original = makeTrace();
    const std::string bytes = serialize(original);
    ASSERT_GT(bytes.size(), kHeaderBytes);
    RunTrace loaded;
    std::string error;
    ASSERT_TRUE(parse(bytes, loaded, &error)) << error;
    EXPECT_TRUE(traceEquals(original, loaded));
}

TEST(TraceFuzz, EveryTruncationFailsCleanly)
{
    const std::string bytes = serialize(makeTrace());
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        RunTrace out;
        std::string error;
        EXPECT_FALSE(parse(bytes.substr(0, cut), out, &error))
            << "prefix of " << cut << " bytes parsed";
        EXPECT_FALSE(error.empty()) << "cut at " << cut;
    }
}

TEST(TraceFuzz, SingleBitFlipsNeverCrashAndReserializeStably)
{
    const std::string bytes = serialize(makeTrace());
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        for (int bit = 0; bit < 8; ++bit) {
            std::string mutated = bytes;
            mutated[i] = static_cast<char>(
                static_cast<unsigned char>(mutated[i]) ^ (1u << bit));
            RunTrace out;
            std::string error;
            if (!parse(mutated, out, &error)) {
                EXPECT_FALSE(error.empty())
                    << "byte " << i << " bit " << bit;
                continue;
            }
            // A flip in payload bytes is undetectable; the decoded
            // trace must still be internally coherent, proven by a
            // stable decode -> encode -> decode cycle.
            RunTrace again;
            ASSERT_TRUE(parse(serialize(out), again, &error))
                << "byte " << i << " bit " << bit << ": " << error;
            EXPECT_TRUE(traceEquals(out, again))
                << "byte " << i << " bit " << bit;
        }
    }
}

TEST(TraceFuzz, OverlongVarintsAreRejected)
{
    const std::string header = serialize(RunTrace{}).substr(
        0, kHeaderBytes);

    // Eleven continuation bytes: encodes past 64 bits outright.
    // Ten bytes with a continuation flag on the tenth: same.
    // Ten bytes whose tenth carries a value bit above bit 63.
    const std::vector<std::string> overlong = {
        std::string(11, '\x80'),
        std::string(9, '\x80') + std::string("\x80\x00", 2),
        std::string(9, '\x80') + "\x02",
    };
    for (std::size_t i = 0; i < overlong.size(); ++i) {
        RunTrace out;
        std::string error;
        EXPECT_FALSE(parse(header + overlong[i], out, &error))
            << "over-long form " << i << " accepted";
        EXPECT_FALSE(error.empty());
    }

    // Control: the maximal *legal* tenth byte (bit 63 alone) decodes
    // as a varint and is then thrown out by the element-count cap.
    RunTrace out;
    std::string error;
    EXPECT_FALSE(
        parse(header + std::string(9, '\x80') + "\x01", out, &error));
    EXPECT_NE(error.find("oversized"), std::string::npos) << error;
}

TEST(TraceFuzz, OversizedCountsAreRejectedWithoutAllocating)
{
    const std::string header = serialize(RunTrace{}).substr(
        0, kHeaderBytes);
    // A flipped byte can inflate a count arbitrarily; the decoder
    // must refuse before sizing any container (a 2^32 GC-record
    // resize would be multi-gigabyte).  Rejection must be immediate
    // even though the stream ends right after the count.
    for (std::uint64_t count :
         {std::uint64_t{1} << 25, std::uint64_t{1} << 32,
          std::uint64_t{1} << 52, ~std::uint64_t{0}}) {
        RunTrace out;
        std::string error;
        EXPECT_FALSE(parse(header + leb(count), out, &error))
            << "count " << count << " accepted";
        EXPECT_NE(error.find("oversized"), std::string::npos)
            << "count " << count << ": " << error;
    }
}

TEST(TraceFuzz, CorruptedHitRateIsRejected)
{
    for (double bad : {std::nan(""), 2.0, -0.5,
                       std::numeric_limits<double>::infinity()}) {
        RunTrace trace = makeTrace();
        trace.gcs[0].phases[0].bitmapCacheHitRate = bad;
        RunTrace out;
        std::string error;
        EXPECT_FALSE(parse(serialize(trace), out, &error))
            << "hit rate " << bad << " accepted";
        EXPECT_NE(error.find("hit rate"), std::string::npos) << error;
    }
}

TEST(TraceFuzz, CorruptCacheEntryDegradesToMiss)
{
    auto dir = std::filesystem::path(::testing::TempDir())
               / "charon-fuzz-cache";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    harness::FunctionalKey key;
    key.workload = "CC";
    key.gcThreads = 4;
    key = harness::ExperimentRunner::resolve(key);

    gc::RunTrace first;
    {
        harness::ExperimentRunner runner(
            harness::RunnerConfig{1, dir.string()});
        auto run = runner.functional(key);
        ASSERT_FALSE(run->oom);
        ASSERT_FALSE(run->trace.gcs.empty());
        first = run->trace;
    }

    // Truncate every cache entry mid-stream: guaranteed parse
    // failure, the shape a crash mid-store or disk corruption leaves.
    std::size_t corrupted = 0;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir)) {
        if (entry.path().extension() != ".trace")
            continue;
        auto size = std::filesystem::file_size(entry.path());
        ASSERT_GT(size, 8u);
        std::filesystem::resize_file(entry.path(), size / 2);
        ++corrupted;
    }
    ASSERT_GT(corrupted, 0u) << "no cache entry was written";

    // A fresh runner must treat the mangled entry as a miss and
    // re-record the identical functional trace.
    harness::ExperimentRunner runner(
        harness::RunnerConfig{1, dir.string()});
    auto run = runner.functional(key);
    ASSERT_FALSE(run->oom);
    EXPECT_TRUE(traceEquals(first, run->trace))
        << "re-recorded trace diverged from the original";
}

} // namespace
