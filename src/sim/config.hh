/**
 * @file
 * Architectural parameters: the C++ rendering of Table 2 of the paper.
 *
 * Every timing/energy model takes one of these structs; the default
 * member values are exactly the paper's evaluation configuration so that
 * the bench harness reproduces the published setup by default, while
 * tests and ablations can freely override fields.
 */

#ifndef CHARON_SIM_CONFIG_HH
#define CHARON_SIM_CONFIG_HH

#include <cstdint>

#include "sim/types.hh"

namespace charon::sim
{

/**
 * Host processor: 8x 2.67 GHz Westmere-class out-of-order cores.
 */
struct HostConfig
{
    int numCores = 8;
    double freqHz = 2.67e9;
    int instructionWindow = 36;  ///< scheduler entries limiting MLP
    int robEntries = 128;
    int issueWidth = 4;
    int l1dTlbEntries = 64;
    int l2TlbEntries = 1024;

    // Cache hierarchy (sizes in bytes, latencies in core cycles).
    std::uint64_t l1dSize = 32 * kKiB;
    int l1dAssoc = 8;
    int l1dLatency = 4;
    std::uint64_t l1iSize = 32 * kKiB;
    int l1iAssoc = 4;
    int l1iLatency = 3;
    std::uint64_t l2Size = 256 * kKiB;
    int l2Assoc = 8;
    int l2Latency = 12;
    std::uint64_t llcSize = 8 * kMiB;
    int llcAssoc = 16;
    int llcLatency = 28;
    int cacheLineBytes = 64;

    /**
     * Per-core MSHR count; together with the instruction window this
     * caps the number of in-flight misses (memory-level parallelism).
     * Westmere L1D supports 10 outstanding misses.
     */
    int mshrsPerCore = 10;

    /**
     * Average observed GC IPC on the host for the non-primitive glue
     * work (pop/allocate/check-mark).  The paper reports the average
     * IPC of a Xeon core running GC is "below 0.5" (Section 1).
     */
    double gcGlueIpc = 0.5;

    /** Application (mutator) IPC per core between collections. */
    double mutatorIpc = 0.8;

    /** McPAT-style per-core active power while running GC (Watts). */
    double coreActivePowerW = 9.0;
    /** Uncore/LLC power while collecting (Watts). */
    double uncorePowerW = 12.0;
    /** Per-core idle (gated) power (Watts). */
    double coreIdlePowerW = 1.5;
};

/**
 * DDR4 main memory: 32 GB, 2 channels, 4 ranks/channel, 8 banks/rank.
 */
struct Ddr4Config
{
    std::uint64_t capacityBytes = 32ull * kGiB;
    int channels = 2;
    int ranksPerChannel = 4;
    int banksPerRank = 8;

    // Timing (Table 2).
    double tCkNs = 0.937;
    double tRasNs = 35.0;
    double tRcdNs = 13.50;
    double tCasNs = 13.50;
    double tWrNs = 15.0;
    double tRpNs = 13.50;

    /** Peak bandwidth: 17 GB/s per channel, 34 GB/s total. */
    double perChannelGBs = 17.0;

    /** Access energy (Table 2, from [35] MAGE): 35 pJ/bit. */
    double energyPjPerBit = 35.0;

    /** Burst (minimum transfer) size in bytes: 64 B cache line. */
    int burstBytes = 64;

    /** Row-buffer size per bank; determines page-hit behaviour. */
    std::uint64_t rowBufferBytes = 8 * kKiB;

    double totalGBs() const { return perChannelGBs * channels; }
    Tick tRcd() const { return nsToTicks(tRcdNs); }
    Tick tCas() const { return nsToTicks(tCasNs); }
    Tick tRp() const { return nsToTicks(tRpNs); }
    Tick tRas() const { return nsToTicks(tRasNs); }
};

/** Inter-cube interconnect shape (Section 4.6: not architecture-bound). */
enum class HmcTopology
{
    Star,  ///< satellites hang off the central cube (paper default)
    Chain, ///< cubes daisy-chained 0-1-2-...; host at cube 0
};

/**
 * HMC main memory: 32 GB over 4 cubes, 32 vaults per cube, star
 * topology with the host attached to the central cube (cube 0).
 */
struct HmcConfig
{
    /** Inter-cube topology. */
    HmcTopology topology = HmcTopology::Star;

    std::uint64_t capacityBytes = 32ull * kGiB;
    int cubes = 4;
    int vaultsPerCube = 32;
    int banksPerVault = 8;

    // Timing (Table 2).
    double tCkNs = 1.6;
    double tRasNs = 22.4;
    double tRcdNs = 11.2;
    double tCasNs = 11.2;
    double tWrNs = 14.4;
    double tRpNs = 11.2;

    /** Aggregate internal (TSV) bandwidth per cube: 320 GB/s. */
    double internalGBsPerCube = 320.0;

    /** External serial-link bandwidth per link: 80 GB/s. */
    double linkGBs = 80.0;

    /** One-way serial link latency: 3 ns. */
    double linkLatencyNs = 3.0;

    /** Access energy (Table 2, from [59]): 21 pJ/bit. */
    double energyPjPerBit = 21.0;

    /** Energy cost of a link traversal, pJ/bit (SerDes). */
    double linkEnergyPjPerBit = 4.0;

    /** Maximum request granularity supported by HMC: 256 B. */
    int maxRequestBytes = 256;

    /** Minimum access granularity: 16 B (Section 4.5). */
    int minRequestBytes = 16;

    std::uint64_t bytesPerCube() const
    {
        return capacityBytes / static_cast<std::uint64_t>(cubes);
    }
    double vaultGBs() const
    {
        return internalGBsPerCube / vaultsPerCube;
    }
    Tick linkLatency() const { return nsToTicks(linkLatencyNs); }
    /** Closed-bank access time tRCD+tCAS. */
    Tick accessLatency() const { return nsToTicks(tRcdNs + tCasNs); }
};

/**
 * Charon accelerator configuration (Table 2 "Charon Configuration").
 */
struct CharonConfig
{
    /** Copy/Search units in total (2 per cube). */
    int copySearchUnits = 8;
    /** Bitmap Count units in total (2 per cube). */
    int bitmapCountUnits = 8;
    /** Scan&Push units (8, all on the central cube). */
    int scanPushUnits = 8;

    /** Logic-layer clock for the processing units (1 req/cycle issue). */
    double unitFreqHz = 625e6; // HMC tCK = 1.6 ns

    /** Bitmap cache: 8 KB, 8-way, 32 B blocks, write-back. */
    std::uint64_t bitmapCacheBytes = 8 * kKiB;
    int bitmapCacheAssoc = 8;
    int bitmapCacheBlockBytes = 32;

    /** MAI request buffer entries per cube (caps in-flight accesses). */
    int maiEntries = 32;

    /** Accelerator TLB: 8 KB, 32 B blocks / 32 entries per cube. */
    int tlbEntriesPerCube = 32;

    /** Huge-page size used for heap pinning (1 GiB). */
    std::uint64_t hugePageBytes = 1ull * kGiB;

    /** Offload request packet size (Section 4.1): 48 B. */
    int requestPacketBytes = 48;
    /** Response packet size: 32 B with a return value, else 16 B. */
    int responsePacketBytes = 32;
    int responsePacketNoValBytes = 16;

    /** Distributed (per-cube) bitmap cache and TLB slices (Fig. 15). */
    bool distributedStructures = false;

    /**
     * Ablation: run Scan&Push on the cube that owns each object
     * instead of the paper's central-cube placement (Section 4.4).
     */
    bool scanPushLocal = false;

    /**
     * Place the units at the host memory controller instead of the HMC
     * logic layer (Fig. 16 "CPU-side" configuration): units then see
     * only the off-chip link bandwidth, not the internal TSV bandwidth.
     */
    bool cpuSide = false;

    /**
     * Average unit power while active (W).  Calibrated so the fleet's
     * mean draw lands near the paper's reported 2.98 W average
     * (Section 5.3) at the utilizations our workloads produce.
     */
    double unitActivePowerW = 1.2;
    double unitIdlePowerW = 0.02;

    /**
     * Heap-scale compensation for the GC-start bulk cache flush: the
     * repository runs 1/64-scale heaps (DESIGN.md), which shrinks GC
     * durations 64x while an LLC flush is a fixed cost; dividing the
     * flush by the same factor keeps its share of a GC equal to the
     * paper's (~0.3%, Section 4.6).  Set to 1 for full-size heaps.
     */
    double hostFlushScale = 64.0;
};

/**
 * Integrated-GPU offload backend ("Trash Talk" comparison point).
 *
 * The GPU slice sits on the host die: offloaded primitives stream
 * through the same DDR4 controller the mutator threads use — no
 * TSV-bandwidth advantage — and every offload call pays a
 * driver/doorbell kernel-launch latency that near-memory units avoid.
 */
struct IgpuConfig
{
    /** EU clusters a GC kernel can occupy concurrently. */
    int computeUnits = 8;
    double euFreqHz = 1.2e9;

    /** Per-offload kernel dispatch latency (driver + doorbell + EU
     *  thread spawn).  Hundreds of ns, vs ~10 ns for a Charon packet. */
    double launchLatencyNs = 450.0;

    /** Outstanding misses the GPU L2 sustains (device-wide MLP cap). */
    int concurrentRequests = 48;

    /**
     * EU cycles to dispatch one work item (one primitive invocation)
     * inside a running kernel: thread setup + divergence overhead.
     */
    int dispatchCyclesPerInvocation = 64;

    /**
     * EU cycles per bitmap bit for the loop-carried bit scans
     * (Bitmap Count's first-fit run search, Bit Sweep's free-run
     * walk).  The run-length state makes each iteration depend on
     * the last, so the scan runs on one scalar EU lane per bucket —
     * no SIMT win, and the in-order EU at a third of the host clock
     * retires bits *slower* than the host's 2.6 cycles/bit.
     */
    double bitLoopCyclesPerBit = 2.0;

    /** Per-EU-cluster power (the whole slice = computeUnits x this). */
    double activePowerW = 1.5;
    double idlePowerW = 0.1;

    /** GT2-class slice area charged to the backend (mm^2 @22nm). */
    double areaMm2 = 38.0;
};

/**
 * CXL memory-side accelerator: processing units on a CXL.mem expander,
 * next to the expander DRAM but across a serial link from the host.
 * The PIM-adoption survey's mechanisms are modeled as costs: device-side
 * translation with host-managed invalidations (a fraction of device
 * accesses pays a host-mediated walk) and coherence back-invalidation
 * round-trips when the device writes host-cacheable GC metadata.
 */
struct CxlConfig
{
    /** Effective CXL.mem bandwidth of the x8 port (GB/s). */
    double linkGBs = 64.0;

    /** One-way port-to-port link latency (ns). */
    double linkLatencyNs = 35.0;

    /** Near-DRAM processing units on the expander. */
    int deviceUnits = 8;
    double unitFreqHz = 1.0e9;

    /** Outstanding device requests into the expander DRAM. */
    int concurrentRequests = 32;

    /**
     * Fraction of device translations missing the device TLB and
     * requiring a host round-trip (host-managed invalidations keep the
     * device TLB small and occasionally cold).
     */
    double translationWalkRate = 0.02;

    /** Back-invalidation snoop bytes per metadata cache line written. */
    int snoopBytes = 64;

    double unitActivePowerW = 1.5;
    double unitIdlePowerW = 0.05;

    /** Device logic area (units + TLB + link PHY share), mm^2. */
    double areaMm2 = 6.0;
};

/**
 * Which machine executes the GC: the four platforms of Figure 12 plus
 * the alternative offload backends (iGPU, CXL memory-side accelerator).
 * New kinds append after Ideal: the integer values are serialized in
 * timing caches and must stay stable.
 */
enum class PlatformKind
{
    HostDdr4,      ///< baseline: host CPU + DDR4
    HostHmc,       ///< host CPU + HMC (no accelerator)
    CharonNmp,     ///< Charon in the HMC logic layer
    CharonCpuSide, ///< Charon next to the host memory controller
    Ideal,         ///< offloaded primitives complete in zero time
    IgpuOffload,   ///< integrated GPU sharing LLC + DDR4 controller
    CxlMsa,        ///< memory-side accelerator on a CXL.mem expander
};

/** Printable platform name. */
const char *platformName(PlatformKind kind);

/** The offload engine (if any) a platform pairs with the host. */
enum class BackendKind
{
    None,   ///< pure host platforms and the zero-cost Ideal
    Charon, ///< near-memory units (HMC logic layer or CPU-side)
    Igpu,   ///< integrated GPU
    Cxl,    ///< CXL memory-side accelerator
};

BackendKind backendFor(PlatformKind kind);
const char *backendName(BackendKind kind);

/** Bundle of everything a platform needs. */
struct SystemConfig
{
    HostConfig host;
    Ddr4Config ddr4;
    HmcConfig hmc;
    CharonConfig charon;
    IgpuConfig igpu;
    CxlConfig cxl;
    int gcThreads = 8;

    // ------------------------------------------------------------------
    // Named presets: the configurations the paper evaluates.  Benches
    // use these instead of hand-rolling field overrides so the setup
    // each figure measures is stated once.

    /** The Table 2 evaluation configuration (same as the defaults). */
    static SystemConfig
    table2()
    {
        return SystemConfig{};
    }

    /**
     * Section 4.6 cube scaling: @p cubes cubes carrying 2 Copy/Search
     * and 2 BitmapCount units each (Scan&Push stays central).  The
     * paired trace must be re-recorded with numCubes = @p cubes.
     */
    static SystemConfig
    scalability(int cubes)
    {
        SystemConfig cfg;
        cfg.hmc.cubes = cubes;
        cfg.charon.copySearchUnits = 2 * cubes;
        cfg.charon.bitmapCountUnits = 2 * cubes;
        return cfg;
    }

    /**
     * Figure 15 thread-scaling point: @p threads GC threads matched
     * by @p threads units of each kind.
     */
    static SystemConfig
    threadScaling(int threads)
    {
        SystemConfig cfg;
        cfg.gcThreads = threads;
        cfg.charon.copySearchUnits = threads;
        cfg.charon.bitmapCountUnits = threads;
        cfg.charon.scanPushUnits = threads;
        return cfg;
    }

    /**
     * Figure 16 CPU-side placement: units beside the host memory
     * controller, seeing only off-chip link bandwidth.  PlatformSim
     * applies this automatically for PlatformKind::CharonCpuSide.
     */
    static SystemConfig
    cpuSide()
    {
        SystemConfig cfg;
        cfg.charon.cpuSide = true;
        return cfg;
    }
};

} // namespace charon::sim

#endif // CHARON_SIM_CONFIG_HH
