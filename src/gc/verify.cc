#include "verify.hh"

#include <deque>
#include <unordered_map>

#include "sim/logging.hh"

namespace charon::gc
{

using heap::Space;
using mem::Addr;

GraphFingerprint
fingerprintHeap(const heap::ManagedHeap &heap)
{
    return fingerprintGraph(heap);
}

void
checkHeapIntegrity(const heap::ManagedHeap &heap)
{
    std::unordered_map<Addr, bool> seen;
    std::deque<Addr> queue;
    auto visit = [&](Addr obj, Addr from) {
        CHARON_ASSERT(heap.spaceOf(obj) != Space::None,
                      "reference 0x%llx (from 0x%llx) outside all spaces",
                      static_cast<unsigned long long>(obj),
                      static_cast<unsigned long long>(from));
        Space s = heap.spaceOf(obj);
        const auto &r = heap.region(s);
        CHARON_ASSERT(obj < r.top,
                      "reference 0x%llx points above %s top",
                      static_cast<unsigned long long>(obj), spaceName(s));
        heap::KlassId kid = heap.klassOf(obj);
        CHARON_ASSERT(kid > 0 && kid < heap.klasses().size(),
                      "object 0x%llx has bad klass %u",
                      static_cast<unsigned long long>(obj), kid);
        if (!seen.emplace(obj, true).second)
            return;
        queue.push_back(obj);
    };

    for (Addr root : heap.roots()) {
        if (root != 0)
            visit(root, 0);
    }
    while (!queue.empty()) {
        Addr obj = queue.front();
        queue.pop_front();
        std::uint64_t refs = heap.refCount(obj);
        for (std::uint64_t i = 0; i < refs; ++i) {
            Addr t = heap.refAt(obj, i);
            if (t != 0)
                visit(t, obj);
        }
    }
}

} // namespace charon::gc
