/**
 * @file
 * The experiment cell model: the declarative unit the bench binaries
 * hand to the ExperimentRunner.
 *
 * A cell names one (workload, heap, seed, collector) *functional* run
 * — the slow part, keyed for the on-disk trace cache — plus one
 * platform replay of its trace.  Many cells usually share a
 * functional key (Figure 12 replays every workload on four
 * platforms); the runner executes each key once and fans the replays
 * out over a thread pool.
 */

#ifndef CHARON_HARNESS_CELL_HH
#define CHARON_HARNESS_CELL_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "fault/fault.hh"
#include "gc/trace.hh"
#include "platform/results.hh"
#include "sim/config.hh"

namespace charon::harness
{

/** Which collector family produces the functional trace. */
enum class CollectorKind : std::uint8_t
{
    ParallelScavenge, ///< workload::Mutator (the paper's collector)
    G1,               ///< workload::G1Mutator (Table 1 extension)
    Cms,              ///< Mutator over gc::CmsCollector (BitSweep)
    Rc,               ///< Mutator over gc::RcCollector (RefCount)
};

const char *collectorKindName(CollectorKind kind);
/** Short lowercase token used in keys and cache paths ("ps", "g1"). */
const char *collectorKindToken(CollectorKind kind);

/**
 * Everything that determines the bytes of a functional trace.  Two
 * cells with equal keys share one mutator run; the key (plus the
 * trace format version) also names the on-disk cache entry.
 */
struct FunctionalKey
{
    std::string workload;     ///< catalog short name ("KM", "CC", ...)
    CollectorKind collector = CollectorKind::ParallelScavenge;
    std::uint64_t heapBytes = 0; ///< 0 = catalog default (resolved by the runner)
    std::uint64_t seed = 1;
    int gcThreads = 8;
    int numCubes = 4;
    /** Copies below this stay on the host (recorder default: 256). */
    std::uint64_t copyOffloadThreshold = 256;

    /** Canonical text form; identity for memoization and hashing. */
    std::string str() const;

    bool operator==(const FunctionalKey &o) const
    {
        return str() == o.str();
    }
};

/**
 * The outcome of one functional run: the replayable trace plus the
 * mutator-side facts the benches report.  Exactly what the trace
 * cache persists, so a cache hit is indistinguishable from a rerun.
 */
struct FunctionalRun
{
    gc::RunTrace trace;
    int cubeShift = 0;
    bool oom = false;
    std::uint64_t gcsMinor = 0;     ///< PS minor / G1 young collections
    std::uint64_t gcsMajor = 0;     ///< PS major / G1 mixed collections
    std::uint64_t markCycles = 0;   ///< G1 concurrent cycles
    std::uint64_t allocatedBytes = 0;
    std::uint64_t mutatorInstructions = 0;
};

/** One (functional run, platform replay) pair. */
struct Cell
{
    FunctionalKey key;
    sim::PlatformKind platform = sim::PlatformKind::HostDdr4;
    /** false: functional-only cell (trace inspection, Table 1). */
    bool replay = true;
    /** Architectural overrides for the replay (Table 2 defaults). */
    sim::SystemConfig config{};
    /**
     * Replay-side trace rewrite (ablations force bitmap-cache hit
     * rates); applied to a private copy, never to the cached trace.
     */
    std::function<void(gc::RunTrace &)> patchTrace;
    /**
     * Escape hatch for bespoke functional pipelines (Table 1 runs
     * collectors outside the catalog mutators): executed instead of
     * the keyed mutator run, never cached.
     */
    std::function<FunctionalRun()> customRun;
    /**
     * Timing-layer fault plan for the replay (chaos experiments).
     * Deliberately not part of SystemConfig so DSE journal keys and
     * config digests are undisturbed; the default (empty) plan keeps
     * the replay byte-identical to a fault-free build.
     */
    fault::FaultPlan faults;
    /** Display name used in failure summaries. */
    std::string label;
};

/** Outcome of one cell, in the order the cells were submitted. */
struct CellResult
{
    /** Functional run completed without OOM and the replay (if
     *  requested) finished. */
    bool ok = false;
    bool oom = false;
    std::string error; ///< diagnostic when !ok
    std::shared_ptr<const FunctionalRun> run;
    platform::RunTiming timing; ///< valid when ok && cell.replay
};

} // namespace charon::harness

#endif // CHARON_HARNESS_CELL_HH
