#include "platform_sim.hh"

#include <memory>

#include "sim/logging.hh"

namespace charon::platform
{

using gc::PrimKind;
using sim::PlatformKind;
using sim::Tick;

double &
PrimBreakdown::byKind(PrimKind kind)
{
    switch (kind) {
      case PrimKind::Copy:        return copy;
      case PrimKind::Search:      return search;
      case PrimKind::ScanPush:    return scanPush;
      case PrimKind::BitmapCount: return bitmapCount;
    }
    sim::panic("bad primitive kind");
}

PlatformSim::PlatformSim(PlatformKind kind, const sim::SystemConfig &cfg,
                         int cube_shift)
    : kind_(kind), cfg_(cfg), cubeShift_(cube_shift)
{
    if (usesHmc()) {
        hmc_ = std::make_unique<hmc::HmcMemory>(eq_, cfg_.hmc);
        hmc_->setCubeShift(cube_shift);
        host_ = std::make_unique<cpu::HostModel>(
            eq_, cfg_.host, hmc_->hostPort(), costs_);
    } else {
        ddr4_ = std::make_unique<mem::Ddr4Memory>(eq_, cfg_.ddr4);
        host_ = std::make_unique<cpu::HostModel>(eq_, cfg_.host, *ddr4_,
                                                 costs_);
    }
    if (usesCharon()) {
        sim::SystemConfig dev_cfg = cfg_;
        dev_cfg.charon.cpuSide =
            (kind_ == PlatformKind::CharonCpuSide);
        device_ =
            std::make_unique<accel::CharonDevice>(eq_, *hmc_, dev_cfg);
    }
}

PlatformSim::~PlatformSim() = default;

void
PlatformSim::setTimeline(sim::Timeline *timeline)
{
    timeline_ = timeline;
    threadTracks_.clear();
    gcTrack_ = timeline_ ? timeline_->track("gc") : 0;
    if (ddr4_)
        ddr4_->setTimeline(timeline);
    if (hmc_)
        hmc_->setTimeline(timeline);
    if (device_)
        device_->setTimeline(timeline);
    host_->setTimeline(timeline);
}

sim::Timeline::TrackId
PlatformSim::threadTrack(std::size_t thread)
{
    while (threadTracks_.size() <= thread) {
        threadTracks_.push_back(timeline_->track(
            "thread " + std::to_string(threadTracks_.size())));
    }
    return threadTracks_[thread];
}

bool
PlatformSim::usesHmc() const
{
    // Only the DDR4 baseline keeps conventional DIMMs; the Ideal
    // platform is "host paired with a zero-cycle offload device",
    // evaluated on the same HMC memory as Charon.
    return kind_ != PlatformKind::HostDdr4;
}

bool
PlatformSim::usesCharon() const
{
    return kind_ == PlatformKind::CharonNmp
           || kind_ == PlatformKind::CharonCpuSide;
}

PrimBreakdown
PlatformSim::runPhase(const gc::PhaseTrace &phase,
                      gc::PhaseRollup &rollup)
{
    const Tick phase_start = eq_.now();
    auto breakdown = std::make_shared<PrimBreakdown>();
    // Owns every thread's continuation for the duration of the phase;
    // the closures themselves hold only weak references so no cycle
    // outlives this function.
    std::vector<std::shared_ptr<std::function<void()>>> chains;

    for (std::size_t ti = 0; ti < phase.threads.size(); ++ti) {
        const auto &work = phase.threads[ti];
        // One agent per GC thread: glue first, then each bucket.
        struct ThreadRun
        {
            const gc::ThreadWork *work;
            std::size_t next = 0;
        };
        auto state = std::make_shared<ThreadRun>();
        state->work = &work;

        const sim::Timeline::TrackId ttrack =
            timeline_ ? threadTrack(ti) : 0;
        auto step = std::make_shared<std::function<void()>>();
        chains.push_back(step);
        std::weak_ptr<std::function<void()>> weak_step = step;
        double hit_rate = phase.bitmapCacheHitRate;
        *step = [this, state, breakdown, hit_rate, weak_step, ttrack] {
            auto step = weak_step.lock();
            CHARON_ASSERT(step, "thread chain outlived its phase");
            if (state->next >= state->work->buckets.size())
                return; // thread done
            const gc::Bucket &bucket =
                state->work->buckets[state->next++];
            Tick start = eq_.now();
            auto finish = [this, breakdown, &bucket, start, ttrack,
                           step](Tick t) {
                breakdown->byKind(bucket.kind) +=
                    sim::ticksToSeconds(t - start);
                if (timeline_) {
                    timeline_->completeSpan(
                        ttrack, gc::primKindName(bucket.kind), start,
                        t);
                }
                (*step)();
            };

            const mem::Addr synth_addr =
                static_cast<mem::Addr>(bucket.srcCube) << cubeShift_;
            const bool offload = usesCharon() && !bucket.hostOnly;
            const bool ideal =
                kind_ == PlatformKind::Ideal && !bucket.hostOnly;
            if (ideal) {
                // Zero-cycle offload: the primitive is free.
                eq_.schedule(eq_.now(), [finish, this] {
                    finish(eq_.now());
                });
            } else if (offload) {
                // The host packs and issues one offload call per
                // invocation before blocking on the device.
                Tick issue = host_->glueTicks(bucket.invocations
                                              * costs_.offloadIssue);
                eq_.scheduleIn(issue, [this, &bucket, hit_rate,
                                       finish] {
                    device_->execBucket(bucket, hit_rate, finish);
                });
            } else {
                host_->execBucket(bucket, synth_addr, finish);
            }
        };

        // Kick off with the glue lump.
        Tick glue = host_->glueTicks(work.glueInstructions);
        glueSecondsTotal_ += sim::ticksToSeconds(glue);
        if (timeline_ && glue > 0)
            timeline_->completeSpan(ttrack, "glue", phase_start,
                                    phase_start + glue);
        eq_.scheduleIn(glue, [breakdown, glue, step] {
            breakdown->glue += sim::ticksToSeconds(glue);
            (*step)();
        });
    }

    eq_.run(); // phase barrier: drain every thread and flow

    // Fill the roll-up from the very same doubles the breakdown
    // accumulated (so rollup totals match PrimBreakdown exactly),
    // joined with the functional trace's byte/invocation counts.
    rollup.kind = phase.kind;
    rollup.wallSeconds = sim::ticksToSeconds(eq_.now() - phase_start);
    rollup.glueSeconds = breakdown->glue;
    for (int k = 0; k < gc::kNumPrimKinds; ++k) {
        auto kind = static_cast<PrimKind>(k);
        rollup.prims[k].seconds = breakdown->byKind(kind);
        rollup.prims[k].bytes = phase.totalBytes(kind);
        rollup.prims[k].invocations = phase.totalInvocations(kind);
    }
    return *breakdown;
}

GcTiming
PlatformSim::simulateGc(const gc::GcTrace &trace)
{
    GcTiming timing;
    timing.major = trace.major;
    Tick start = eq_.now();

    if (usesCharon()) {
        // Bulk host-cache flush at GC start (Section 4.6).
        eq_.scheduleIn(device_->gcPrologueTicks(), [] {});
        eq_.run();
    }
    timing.rollup.major = trace.major;
    timing.rollup.phases.reserve(trace.phases.size());
    for (const auto &phase : trace.phases) {
        Tick phase_start = eq_.now();
        gc::PhaseRollup rollup;
        timing.breakdown += runPhase(phase, rollup);
        timing.rollup.phases.push_back(rollup);
        if (timeline_) {
            timeline_->completeSpan(gcTrack_,
                                    gc::phaseKindName(phase.kind),
                                    phase_start, eq_.now());
        }
    }
    timing.seconds = sim::ticksToSeconds(eq_.now() - start);
    if (timeline_) {
        timeline_->completeSpan(gcTrack_,
                                trace.major ? "major GC" : "minor GC",
                                start, eq_.now());
    }
    return timing;
}

void
PlatformSim::dumpStats(std::ostream &os) const
{
    if (hmc_)
        hmc_->dumpStats(os);
    else
        ddr4_->dumpStats(os);
}

RunTiming
PlatformSim::simulate(const gc::RunTrace &trace)
{
    RunTiming result;
    result.platform = kind_;
    glueSecondsTotal_ = 0;

    for (const auto &gc : trace.gcs) {
        GcTiming timing = simulateGc(gc);
        result.gcs.push_back(timing);
        result.gcSeconds += timing.seconds;
        if (timing.major) {
            result.majorSeconds += timing.seconds;
            result.majorBreakdown += timing.breakdown;
        } else {
            result.minorSeconds += timing.seconds;
            result.minorBreakdown += timing.breakdown;
        }
    }

    // Mutator time: application instructions across all cores at the
    // configured mutator IPC.
    std::uint64_t mutator_instr = 0;
    for (auto n : trace.mutatorInstructions)
        mutator_instr += n;
    result.mutatorSeconds =
        static_cast<double>(mutator_instr)
        / (cfg_.host.mutatorIpc * cfg_.host.freqHz * cfg_.host.numCores);

    // Memory observations.
    double bytes = usesHmc() ? hmc_->totalBytes() : ddr4_->totalBytes();
    result.dramBytes = bytes;
    if (result.gcSeconds > 0)
        result.avgGcBandwidthGBs = bytes / 1e9 / result.gcSeconds;
    if (usesHmc() && bytes > 0)
        result.localAccessFraction = hmc_->localBytes() / bytes;

    // Energy over the GC intervals.
    double dram_pj =
        usesHmc() ? hmc_->energyPj() : ddr4_->energyPj();
    result.dramEnergyJ = dram_pj * 1e-12;

    // GC threads that offload to Charon spin-wait on the response
    // packet (Section 4.1: "the host thread remains blocked"), so the
    // cores draw active power on every platform; the savings come
    // from shorter pauses and the lower pJ/bit of stacked DRAM.
    const auto &h = cfg_.host;
    result.hostEnergyJ =
        (h.numCores * h.coreActivePowerW + h.uncorePowerW)
        * result.gcSeconds;
    if (usesCharon()) {
        const auto &ch = cfg_.charon;
        int total_units = ch.copySearchUnits + ch.bitmapCountUnits
                          + ch.scanPushUnits;
        double busy = device_->unitBusySeconds();
        double unit_seconds = total_units * result.gcSeconds;
        result.unitEnergyJ =
            busy * ch.unitActivePowerW
            + std::max(0.0, unit_seconds - busy) * ch.unitIdlePowerW;
    }
    return result;
}

} // namespace charon::platform
