#include "scavenge.hh"

#include <algorithm>
#include <unordered_set>

#include "sim/logging.hh"

namespace charon::gc
{

using heap::Space;
using mem::Addr;

Scavenge::Scavenge(heap::ManagedHeap &heap, TraceRecorder &recorder,
                   int tenuring_threshold)
    : heap_(heap),
      rec_(recorder),
      threshold_(tenuring_threshold > 0
                     ? tenuring_threshold
                     : heap.config().tenuringThreshold)
{
}

Scavenge::SpaceDemand
Scavenge::estimateDemand() const
{
    // Pure reachability pass over the young generation: from the roots
    // and from old objects on dirty cards, classify every live young
    // object as survivor (age+1 < threshold) or promotion.  Used by
    // the policy as HotSpot uses its promotion-guarantee estimate; the
    // totals are exact because survivor overflow conserves bytes.
    SpaceDemand demand;
    std::unordered_set<Addr> visited;
    std::vector<Addr> stack;

    auto consider = [&](Addr target) {
        if (target == 0 || !heap_.inYoung(target))
            return;
        if (visited.insert(target).second)
            stack.push_back(target);
    };

    for (Addr root : heap_.roots())
        consider(root);

    const auto &cards = heap_.cardTable();
    std::uint64_t limit = cards.numCards();
    for (std::uint64_t c = cards.findDirty(0, limit); c < limit;
         c = cards.findDirty(c + 1, limit)) {
        Addr obj = heap_.firstObjectOnCard(c);
        Addr card_end = cards.cardStart(c) + heap::CardTable::kCardBytes;
        while (obj != 0 && obj < card_end
               && obj < heap_.region(Space::Old).top) {
            std::uint64_t n = heap_.refCount(obj);
            for (std::uint64_t i = 0; i < n; ++i)
                consider(heap_.refAt(obj, i));
            obj += heap_.sizeBytes(obj);
        }
    }

    const int threshold = threshold_;
    while (!stack.empty()) {
        Addr obj = stack.back();
        stack.pop_back();
        std::uint64_t bytes = heap_.sizeBytes(obj);
        demand.largestObject = std::max(demand.largestObject, bytes);
        if (heap_.age(obj) + 1 >= threshold)
            demand.promoteBytes += bytes;
        else
            demand.survivorBytes += bytes;
        std::uint64_t n = heap_.refCount(obj);
        for (std::uint64_t i = 0; i < n; ++i)
            consider(heap_.refAt(obj, i));
    }
    return demand;
}

Addr
Scavenge::readSlot(const SlotRef &slot) const
{
    if (slot.isRoot)
        return heap_.roots()[slot.value];
    return heap_.load64(slot.value);
}

void
Scavenge::writeSlot(const SlotRef &slot, Addr target)
{
    if (slot.isRoot) {
        heap_.roots()[slot.value] = target;
        return;
    }
    heap_.store64(slot.value, target);
    // Re-dirty the card when an old-generation object ends up
    // referencing the young generation (promoted copies included).
    if (heap_.inOld(slot.value) && heap_.inYoung(target))
        heap_.cardTable().dirty(slot.value);
}

void
Scavenge::scanRoots()
{
    rec_.beginPhase(PhaseKind::MinorRoots);
    const auto &costs = rec_.costs();
    for (std::uint64_t i = 0; i < heap_.roots().size(); ++i) {
        rec_.recordGlue(costs.rootVisit, 1);
        pending_.push_back(SlotRef{true, i});
        rec_.nextThread();
    }
    rec_.endPhase();
}

void
Scavenge::scanCards()
{
    rec_.beginPhase(PhaseKind::MinorCardScan);
    const auto &costs = rec_.costs();
    auto &cards = heap_.cardTable();
    const std::uint64_t num_cards = cards.numCards();
    const int threads = rec_.numThreads();
    const std::uint64_t stripe =
        mem::divCeil(num_cards, static_cast<std::uint64_t>(threads));

    for (int t = 0; t < threads; ++t) {
        rec_.setThread(t);
        std::uint64_t lo = static_cast<std::uint64_t>(t) * stripe;
        std::uint64_t hi = std::min(num_cards, lo + stripe);
        std::uint64_t cursor = lo;
        while (cursor < hi) {
            std::uint64_t dirty = cards.findDirty(cursor, hi);
            // One Search invocation scans up to the first dirty card
            // (Figure 7 returns there); the host then processes the
            // dirty cluster and issues the next Search.
            rec_.recordSearch(cards.storageAddr(cursor),
                              std::max<std::uint64_t>(
                                  1, dirty - cursor
                                         + (dirty < hi ? 1 : 0)));
            if (dirty >= hi)
                break;
            // Extend to the whole consecutive dirty cluster.
            std::uint64_t end = dirty;
            while (end < hi && cards.isDirty(end))
                ++end;
            result_.dirtyCards += end - dirty;

            // Scan the objects overlapping the dirty cluster.
            Addr cluster_start = cards.cardStart(dirty);
            Addr cluster_end = cards.cardStart(end);
            Addr obj = heap_.firstObjectOnCard(dirty);
            rec_.recordGlue(costs.cardObjectLookup * (end - dirty),
                            end - dirty);
            Addr old_top = heap_.region(Space::Old).top;
            while (obj != 0 && obj < cluster_end && obj < old_top) {
                std::uint64_t n = heap_.refCount(obj);
                std::uint64_t pushed = 0;
                auto kind = heap_.klasses().get(heap_.klassOf(obj)).kind;
                for (std::uint64_t i = 0; i < n; ++i) {
                    Addr target = heap_.refAt(obj, i);
                    if (target == 0 || !heap_.inYoung(target))
                        continue;
                    if (heap::isWeakSlot(kind, i)) {
                        weakRefs_.push_back(obj);
                        continue;
                    }
                    pending_.push_back(
                        SlotRef{false, heap_.refSlotAddr(obj, i)});
                    ++pushed;
                }
                rec_.recordGlue(costs.typeDispatch, 1);
                rec_.recordScanPush(obj, 16 + n * 8, n, pushed,
                                    heap_.klasses()
                                        .get(heap_.klassOf(obj))
                                        .acceleratable());
                obj += heap_.sizeBytes(obj);
            }
            (void)cluster_start;
            cursor = end;
        }
        rec_.recordGlue(costs.cardMaintain * (hi - lo) / 8);
    }
    // All cards examined; clean them.  Evacuation re-dirties the ones
    // that still hold old-to-young references.
    cards.cleanAll();
    rec_.endPhase();
}

Addr
Scavenge::evacuate(Addr obj)
{
    const auto &costs = rec_.costs();
    const std::uint64_t size_words = heap_.sizeWords(obj);
    const std::uint64_t bytes = size_words * 8;
    const int age = heap_.age(obj);

    Addr dest = 0;
    bool promoted = false;
    bool overflow = false;
    if (age + 1 >= threshold_) {
        dest = heap_.allocOld(size_words);
        promoted = dest != 0;
    }
    if (dest == 0) {
        dest = heap_.allocTo(size_words);
        if (dest == 0) {
            // Survivor overflow: promote instead.
            dest = heap_.allocOld(size_words);
            promoted = dest != 0;
            overflow = promoted;
        }
    }
    if (dest == 0) {
        // Promotion failure (the policy guarantee was violated — in
        // practice only by an injected allocation fault).  HotSpot
        // semantics: self-forward the object in place so every other
        // slot referencing it resolves to the original address; the
        // object is scanned where it lies and the collection
        // completes with a consistent heap.  collect() then reports
        // promotionFailed so the policy escalates to a full GC.
        heap_.setForwarding(obj, obj);
        failed_.push_back(obj);
        result_.promotionFailed = true;
        ++result_.objectsFailed;
        rec_.recordGlue(costs.forwardInstall, 1);
        return obj;
    }

    rec_.recordGlue(costs.allocate + costs.forwardInstall, 2);
    heap_.copyObjectBytes(dest, obj, bytes);
    rec_.recordCopy(obj, dest, bytes);
    heap_.setAge(dest, std::min(age + 1, 63));
    heap_.setForwarding(obj, dest);

    if (promoted) {
        ++result_.objectsPromoted;
        result_.bytesPromoted += bytes;
        if (overflow)
            result_.bytesOverflowPromoted += bytes;
    } else {
        ++result_.objectsCopied;
        result_.bytesCopied += bytes;
    }
    return dest;
}

void
Scavenge::scanNewCopy(Addr new_obj)
{
    const auto &costs = rec_.costs();
    std::uint64_t n = heap_.refCount(new_obj);
    std::uint64_t pushed = 0;
    auto kind = heap_.klasses().get(heap_.klassOf(new_obj)).kind;
    for (std::uint64_t i = 0; i < n; ++i) {
        Addr target = heap_.refAt(new_obj, i);
        if (target == 0 || !heap_.inYoung(target))
            continue;
        if (heap::isWeakSlot(kind, i)) {
            // Weak referent: never evacuated on its own account.
            weakRefs_.push_back(new_obj);
            continue;
        }
        pending_.push_back(
            SlotRef{false, heap_.refSlotAddr(new_obj, i)});
        ++pushed;
    }
    rec_.recordGlue(costs.typeDispatch, 1);
    rec_.recordScanPush(new_obj, 16 + n * 8, n, pushed,
                        heap_.klasses().get(heap_.klassOf(new_obj))
                            .acceleratable());
}

void
Scavenge::processSlot(const SlotRef &slot)
{
    Addr target = readSlot(slot);
    if (target == 0 || !heap_.inYoung(target))
        return; // null or old-generation target: nothing to do
    // A slot can be enqueued twice (an object spanning two dirty-card
    // clusters is scanned from both); once it points into To space it
    // is already processed.
    if (heap_.spaceOf(target) == Space::To)
        return;
    if (heap_.isForwarded(target)) {
        writeSlot(slot, heap_.forwardee(target));
        return;
    }
    Addr dest = evacuate(target);
    writeSlot(slot, dest);
    scanNewCopy(dest);
}

void
Scavenge::drain()
{
    rec_.beginPhase(PhaseKind::MinorEvacuate);
    const auto &costs = rec_.costs();
    while (!pending_.empty()) {
        SlotRef slot = pending_.front();
        pending_.pop_front();
        rec_.recordGlue(costs.popObject, 1);
        processSlot(slot);
        rec_.nextThread();
    }
    processWeakReferences();
    rec_.endPhase();
}

void
Scavenge::processWeakReferences()
{
    const auto &costs = rec_.costs();
    for (Addr holder : weakRefs_) {
        rec_.recordGlue(costs.pointerAdjust, 2);
        Addr target = heap_.refAt(holder, 0);
        if (target == 0 || !heap_.inYoung(target))
            continue;
        if (heap_.spaceOf(target) == Space::To)
            continue; // duplicate registration, already updated
        if (heap_.isForwarded(target)) {
            // Survived via a strong path: follow the move.
            writeSlot(SlotRef{false, heap_.refSlotAddr(holder, 0)},
                      heap_.forwardee(target));
        } else {
            // Only weakly reachable: the referent dies, clear it.
            heap_.setRefRaw(holder, 0, 0);
        }
    }
    weakRefs_.clear();
}

Scavenge::Result
Scavenge::collect()
{
    rec_.beginGc(false);
    scanRoots();
    scanCards();
    drain();

    GcTrace &trace = rec_.endGc();
    trace.bytesCopied = result_.bytesCopied + result_.bytesPromoted;
    trace.bytesPromoted = result_.bytesPromoted;
    trace.liveObjects = result_.objectsCopied + result_.objectsPromoted;

    if (result_.promotionFailed) {
        // Degraded completion: live objects remain in Eden/From, so
        // nothing can be reclaimed here.  Drop the self-forwarding
        // marks (a header copied by the follow-up mark-compact must
        // not carry one); the age bits survive.  The policy runs a
        // full collection next, which compacts the whole heap without
        // allocating and resets every young space.
        for (Addr obj : failed_)
            heap_.clearForwarding(obj);
        failed_.clear();
        return result_;
    }

    // Reclaim: Eden and the old From space are now garbage; the To
    // space holds the survivors and becomes the next From.
    heap_.resetSpace(Space::Eden);
    heap_.resetSpace(Space::From);
    heap_.swapSurvivors();
    return result_;
}

} // namespace charon::gc
