/**
 * @file
 * Tests for the card table / Search substrate.
 */

#include <gtest/gtest.h>

#include "heap/card_table.hh"

using charon::heap::CardTable;
using charon::mem::Addr;

TEST(CardTable, CardsStartClean)
{
    CardTable ct(0x10000, 64 * 1024, 0x900000);
    for (std::uint64_t i = 0; i < ct.numCards(); ++i)
        EXPECT_FALSE(ct.isDirty(i));
}

TEST(CardTable, OneBytePer512Bytes)
{
    CardTable ct(0x10000, 64 * 1024, 0);
    EXPECT_EQ(ct.numCards(), 128u);
    EXPECT_EQ(ct.storageBytes(), 128u);
}

TEST(CardTable, DirtyByAddress)
{
    CardTable ct(0x10000, 64 * 1024, 0);
    ct.dirty(0x10000 + 512 * 3 + 17);
    EXPECT_TRUE(ct.isDirty(3));
    EXPECT_FALSE(ct.isDirty(2));
    EXPECT_FALSE(ct.isDirty(4));
}

TEST(CardTable, CardIndexAndStartRoundTrip)
{
    CardTable ct(0x10000, 64 * 1024, 0);
    EXPECT_EQ(ct.cardIndex(0x10000), 0u);
    EXPECT_EQ(ct.cardIndex(0x10000 + 511), 0u);
    EXPECT_EQ(ct.cardIndex(0x10000 + 512), 1u);
    EXPECT_EQ(ct.cardStart(1), 0x10000u + 512);
}

TEST(CardTable, FindDirtyScansRange)
{
    CardTable ct(0x10000, 64 * 1024, 0);
    ct.dirtyCard(10);
    ct.dirtyCard(20);
    EXPECT_EQ(ct.findDirty(0, 128), 10u);
    EXPECT_EQ(ct.findDirty(11, 128), 20u);
    EXPECT_EQ(ct.findDirty(21, 128), 128u);
    EXPECT_EQ(ct.findDirty(0, 10), 10u); // limit exclusive: none found
}

TEST(CardTable, CleanAllResets)
{
    CardTable ct(0x10000, 64 * 1024, 0);
    ct.dirtyCard(5);
    ct.cleanAll();
    EXPECT_EQ(ct.findDirty(0, ct.numCards()), ct.numCards());
}

TEST(CardTable, CleanEncodingIsMinusOne)
{
    // HotSpot encodes clean as 0xFF, which is why the paper's Search
    // pseudocode tests `*i != -1`.
    EXPECT_EQ(CardTable::kClean, 0xFF);
}

TEST(CardTable, StorageAddrIsContiguous)
{
    CardTable ct(0x10000, 64 * 1024, 0x900000);
    EXPECT_EQ(ct.storageAddr(0), 0x900000u);
    EXPECT_EQ(ct.storageAddr(127), 0x900000u + 127);
}
