/**
 * @file
 * Tests for Charon's optimized Bitmap Count algorithm (Section 4.3):
 * exact equivalence with the Figure 8 software reference, including
 * the corner cases where begin/end bit counts differ inside the
 * range, plus the cycle model.
 */

#include <gtest/gtest.h>

#include "accel/bitmap_count_alg.hh"
#include "heap/bitmap.hh"
#include "sim/rng.hh"

using namespace charon;
using accel::optimizedLiveWords;
using accel::optimizedWordCycles;
using heap::liveWordsInRange;
using heap::MarkBitmap;

namespace
{

constexpr mem::Addr kBase = 0x10000;
constexpr std::uint64_t kBytes = 512 * 1024;

struct Maps
{
    MarkBitmap beg{kBase, kBytes, 0};
    MarkBitmap end{kBase, kBytes, 0};

    void
    paint(std::uint64_t beg_bit, std::uint64_t words)
    {
        beg.setBit(beg_bit);
        end.setBit(beg_bit + words - 1);
    }
};

} // namespace

TEST(OptimizedBitmapCount, SingleObject)
{
    Maps m;
    m.paint(10, 5);
    EXPECT_EQ(optimizedLiveWords(m.beg, m.end, 0, 100), 5u);
}

TEST(OptimizedBitmapCount, OneWordObject)
{
    Maps m;
    m.paint(42, 1);
    EXPECT_EQ(optimizedLiveWords(m.beg, m.end, 0, 100), 1u);
}

TEST(OptimizedBitmapCount, MultipleObjects)
{
    Maps m;
    m.paint(0, 3);
    m.paint(10, 7);
    m.paint(50, 1);
    EXPECT_EQ(optimizedLiveWords(m.beg, m.end, 0, 100), 11u);
}

TEST(OptimizedBitmapCount, EmptyRange)
{
    Maps m;
    m.paint(10, 5);
    EXPECT_EQ(optimizedLiveWords(m.beg, m.end, 50, 50), 0u);
    EXPECT_EQ(optimizedLiveWords(m.beg, m.end, 60, 50), 0u);
}

TEST(OptimizedBitmapCount, PaperFigure9Example)
{
    // Figure 9: three objects; subtracting the maps yields all ones
    // between the paired bits, then one per object is added back.
    Maps m;
    m.paint(1, 3);  // bits 1..3
    m.paint(6, 2);  // bits 6..7
    m.paint(11, 4); // bits 11..14
    EXPECT_EQ(optimizedLiveWords(m.beg, m.end, 0, 16), 9u);
}

TEST(OptimizedBitmapCount, CornerLeadingEndBit)
{
    // Range starts inside an object: its dangling end bit must not
    // contribute.
    Maps m;
    m.paint(10, 10); // bits 10..19
    m.paint(30, 5);
    EXPECT_EQ(optimizedLiveWords(m.beg, m.end, 15, 100), 5u);
    EXPECT_EQ(optimizedLiveWords(m.beg, m.end, 15, 100),
              liveWordsInRange(m.beg, m.end, 15, 100));
}

TEST(OptimizedBitmapCount, CornerTrailingBeginBit)
{
    // An object starting inside but ending beyond the range counts
    // as zero (Figure 8 semantics).
    Maps m;
    m.paint(90, 20); // bits 90..109
    EXPECT_EQ(optimizedLiveWords(m.beg, m.end, 0, 100), 0u);
    EXPECT_EQ(optimizedLiveWords(m.beg, m.end, 0, 100),
              liveWordsInRange(m.beg, m.end, 0, 100));
}

TEST(OptimizedBitmapCount, CornerBothEndsCut)
{
    Maps m;
    m.paint(10, 10);  // cut at range start
    m.paint(30, 5);   // fully inside
    m.paint(90, 20);  // cut at range end
    EXPECT_EQ(optimizedLiveWords(m.beg, m.end, 15, 100), 5u);
}

TEST(OptimizedBitmapCount, RangeInsideOneObject)
{
    Maps m;
    m.paint(10, 100); // bits 10..109
    EXPECT_EQ(optimizedLiveWords(m.beg, m.end, 20, 80), 0u);
}

TEST(OptimizedBitmapCount, WordBoundaryStraddles)
{
    Maps m;
    m.paint(60, 10); // crosses the bit-63/64 word boundary
    m.paint(126, 4); // crosses 127/128
    EXPECT_EQ(optimizedLiveWords(m.beg, m.end, 0, 256), 14u);
    EXPECT_EQ(optimizedLiveWords(m.beg, m.end, 60, 70), 10u);
}

TEST(OptimizedBitmapCount, UnalignedRangeEdges)
{
    Maps m;
    m.paint(5, 3);
    m.paint(65, 3);
    m.paint(130, 3);
    for (std::uint64_t s = 0; s <= 5; ++s) {
        EXPECT_EQ(optimizedLiveWords(m.beg, m.end, s, 200),
                  liveWordsInRange(m.beg, m.end, s, 200))
            << "start " << s;
    }
}

TEST(OptimizedBitmapCount, PropertyMatchesReferenceOnRandomHeaps)
{
    sim::Rng rng(777);
    for (int round = 0; round < 200; ++round) {
        Maps m;
        std::uint64_t bit = rng.below(16);
        std::uint64_t limit = 2000 + rng.below(2000);
        while (bit + 70 < limit) {
            std::uint64_t words = rng.chance(0.2)
                                      ? rng.range(1, 64)
                                      : rng.range(1, 8);
            if (rng.chance(0.8))
                m.paint(bit, words);
            bit += words + rng.below(6);
        }
        // Arbitrary ranges, including ones that cut objects.
        for (int q = 0; q < 20; ++q) {
            std::uint64_t a = rng.below(limit);
            std::uint64_t b = a + rng.below(limit - a + 1);
            EXPECT_EQ(optimizedLiveWords(m.beg, m.end, a, b),
                      liveWordsInRange(m.beg, m.end, a, b))
                << "round " << round << " range [" << a << "," << b
                << ")";
        }
    }
}

TEST(OptimizedBitmapCount, CycleModelCountsWordPairs)
{
    EXPECT_EQ(optimizedWordCycles(0, 0), 0u);
    EXPECT_EQ(optimizedWordCycles(0, 1), 2u);   // 1 word x 2 maps
    EXPECT_EQ(optimizedWordCycles(0, 64), 2u);
    EXPECT_EQ(optimizedWordCycles(0, 65), 4u);
    EXPECT_EQ(optimizedWordCycles(63, 65), 4u); // straddles boundary
    EXPECT_EQ(optimizedWordCycles(0, 512), 16u);
}
