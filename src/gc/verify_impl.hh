/**
 * @file
 * Template implementation of the heap-shape-agnostic graph
 * fingerprint (see verify.hh).  Kept in an _impl header in the gem5
 * tradition: for practical purposes this is a source file.
 */

#ifndef CHARON_GC_VERIFY_IMPL_HH
#define CHARON_GC_VERIFY_IMPL_HH

#include <deque>
#include <unordered_map>

#include "heap/klass.hh"

namespace charon::gc
{

namespace verify_detail
{

/** 64-bit FNV-1a step. */
inline std::uint64_t
fnvMix(std::uint64_t h, std::uint64_t v)
{
    h ^= v;
    h *= 0x100000001b3ull;
    return h;
}

} // namespace verify_detail

template <typename HeapT>
GraphFingerprint
fingerprintGraph(const HeapT &heap)
{
    using mem::Addr;
    using verify_detail::fnvMix;

    GraphFingerprint fp;
    fp.hash = 0xcbf29ce484222325ull;

    std::unordered_map<Addr, std::uint64_t> ids;
    std::deque<Addr> queue;
    auto discover = [&](Addr obj) -> std::uint64_t {
        auto [it, fresh] = ids.emplace(obj, ids.size());
        if (fresh)
            queue.push_back(obj);
        return it->second;
    };

    for (Addr root : heap.roots()) {
        if (root == 0) {
            fp.hash = fnvMix(fp.hash, ~0ull);
            continue;
        }
        fp.hash = fnvMix(fp.hash, discover(root));
    }

    while (!queue.empty()) {
        Addr obj = queue.front();
        queue.pop_front();
        ++fp.objects;
        std::uint64_t size_words = heap.sizeWords(obj);
        fp.bytes += size_words * 8;
        fp.hash = fnvMix(fp.hash, heap.klassOf(obj));
        fp.hash = fnvMix(fp.hash, size_words);

        std::uint64_t refs = heap.refCount(obj);
        fp.edges += refs;
        for (std::uint64_t i = 0; i < refs; ++i) {
            Addr t = heap.refAt(obj, i);
            fp.hash = fnvMix(fp.hash, t == 0 ? ~0ull : discover(t));
        }
        const auto &k = heap.klasses().get(heap.klassOf(obj));
        std::uint64_t payload_start_word;
        if (k.kind == heap::KlassKind::ObjArray) {
            payload_start_word = size_words;
            fp.hash = fnvMix(fp.hash, heap.arrayLength(obj));
        } else if (heap::isTypeArrayKind(k.kind)
                   || k.kind == heap::KlassKind::ConstantPool
                   || k.kind == heap::KlassKind::MethodData) {
            payload_start_word = 3;
            fp.hash = fnvMix(fp.hash, heap.arrayLength(obj));
        } else {
            payload_start_word = 2 + k.refFields;
        }
        for (std::uint64_t w = payload_start_word; w < size_words; ++w)
            fp.hash = fnvMix(fp.hash, heap.load64(obj + w * 8));
    }
    return fp;
}

} // namespace charon::gc

#endif // CHARON_GC_VERIFY_IMPL_HH
