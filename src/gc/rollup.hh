/**
 * @file
 * The per-phase primitive roll-up: the queryable artifact behind the
 * Figure 4 / Figure 14 style breakdowns.
 *
 * A replay produces, per collection and per phase, the thread-seconds
 * each primitive consumed (from the timing layer) joined with the
 * bytes and invocation counts the primitive moved (from the functional
 * trace).  The structures live here, next to the trace they aggregate;
 * the platform simulator fills in the seconds, and the harness renders
 * the result as a table (text/CSV/JSON) or persists it with the same
 * versioned binary framing as the trace itself.
 */

#ifndef CHARON_GC_ROLLUP_HH
#define CHARON_GC_ROLLUP_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "gc/trace.hh"

namespace charon::gc
{

/** One (phase, primitive) aggregate of a replayed collection. */
struct RollupCell
{
    double seconds = 0;            ///< thread-seconds in the primitive
    std::uint64_t bytes = 0;       ///< trace bytes the primitive moved
    std::uint64_t invocations = 0; ///< primitive invocations
};

/** One phase of one collection. */
struct PhaseRollup
{
    PhaseKind kind = PhaseKind::MinorRoots;
    /** Barrier-to-barrier phase time (wall clock of the pause). */
    double wallSeconds = 0;
    /** Per-primitive aggregates, indexed by PrimKind. */
    RollupCell prims[kNumPrimKinds];
    /** Non-offloadable host glue ("Other" in Figure 4). */
    double glueSeconds = 0;

    /** Thread-seconds across primitives + glue. */
    double threadSeconds() const;
    std::uint64_t totalBytes() const;
};

/** One collection. */
struct GcRollup
{
    bool major = false;
    std::vector<PhaseRollup> phases;

    RollupCell totalByKind(PrimKind kind) const;
    double glueSeconds() const;
};

/** A whole replayed run on one platform. */
struct RunRollup
{
    std::vector<GcRollup> gcs;

    RollupCell totalByKind(PrimKind kind) const;
    double glueSeconds() const;
};

/**
 * Current binary format version (independent of the trace format).
 * Version 2 widens the per-phase primitive array to the six-kind
 * PrimKind enum (BitSweep, RefCount) and admits the RC phase kinds.
 */
constexpr std::uint32_t kRollupFormatVersion = 2;

/** Serialize with the trace_io little-endian framing. */
void writeRollup(std::ostream &os, const RunRollup &rollup);

/**
 * Deserialize; rejects unknown versions and truncated input.
 * @param error set to a diagnostic on failure
 * @retval true the rollup was read completely
 */
bool readRollup(std::istream &is, RunRollup &rollup, std::string *error);

/** Structural equality (for round-trip tests). */
bool rollupEquals(const RunRollup &a, const RunRollup &b);

} // namespace charon::gc

#endif // CHARON_GC_ROLLUP_HH
