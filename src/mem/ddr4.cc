#include "ddr4.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace charon::mem
{

Ddr4Memory::Ddr4Memory(sim::EventQueue &eq, const sim::Ddr4Config &cfg,
                       const sim::Instrumentation &instr)
    : eq_(eq), cfg_(cfg)
{
    double per_channel =
        sim::gbPerSecToBytesPerTick(cfg_.perChannelGBs);
    channels_.reserve(static_cast<std::size_t>(cfg_.channels));
    for (int ch = 0; ch < cfg_.channels; ++ch) {
        channels_.push_back(std::make_unique<FluidChannel>(
            eq_, sim::format("ddr4.ch%d", ch), per_channel, instr));
    }
}

double
Ddr4Memory::peakRate() const
{
    return sim::gbPerSecToBytesPerTick(cfg_.totalGBs());
}

double
Ddr4Memory::efficiency(AccessPattern pattern) const
{
    // Derivation, per channel (DDR4-2133-ish from Table 2 timing):
    //   burst time for 64 B: tBurst ~= 4 * tCK ~= 3.75 ns.
    //   row cycle tRC = tRAS + tRP ~= 48.5 ns.
    // Sequential streams hit open rows; losses come from refresh,
    // read/write turnaround and rank switching (~10%).
    // Random 64 B streams pay precharge/activate on most accesses;
    // with 32 banks/channel bank-parallelism no longer binds, but bus
    // scheduling gaps and row misses leave ~60-70% of peak (matches
    // measured STREAM-vs-pointer-chase ratios on Haswell-class parts).
    switch (pattern) {
      case AccessPattern::Sequential:
        return 0.90;
      case AccessPattern::Strided:
        return 0.75;
      case AccessPattern::Random:
        return 0.65;
    }
    return 0.65;
}

sim::Tick
Ddr4Memory::latency(AccessPattern pattern) const
{
    // Average loaded round-trip latency for one access:
    //   row hit : tCAS + transfer + controller/queueing
    //   row miss: tRP + tRCD + tCAS + transfer + controller/queueing
    // Controller + on-chip network adder modelled as a flat 25 ns
    // (typical measured idle DRAM latency on Westmere is ~65-75 ns).
    const double transfer_ns = 4 * cfg_.tCkNs;
    const double controller_ns = 25.0;
    double ns = 0;
    switch (pattern) {
      case AccessPattern::Sequential:
        // Mostly row hits.
        ns = cfg_.tCasNs + transfer_ns + controller_ns;
        break;
      case AccessPattern::Strided:
        ns = 0.5 * (cfg_.tRpNs + cfg_.tRcdNs) + cfg_.tCasNs
             + transfer_ns + controller_ns;
        break;
      case AccessPattern::Random:
        ns = cfg_.tRpNs + cfg_.tRcdNs + cfg_.tCasNs + transfer_ns
             + controller_ns;
        break;
    }
    return sim::nsToTicks(ns);
}

void
Ddr4Memory::stream(const StreamRequest &req, StreamCallback done)
{
    CHARON_ASSERT(!channels_.empty(), "ddr4 has no channels");
    // Cache-line interleaving spreads any stream larger than a few
    // lines evenly over all channels; split it accordingly and invoke
    // the callback when the last slice drains.
    //
    // DRAM inefficiency (row misses, turnarounds) occupies the shared
    // bus just like useful data does, so a stream of B useful bytes is
    // pushed through the channel as B/efficiency occupancy-bytes; the
    // useful-byte count is kept separately for energy accounting.
    const auto n = channels_.size();
    const double eff = efficiency(req.pattern);
    usefulBytes_ += static_cast<double>(req.bytes);
    sim::Join *join =
        joins_.acquire(n, sim::JoinPool::wrap(std::move(done)));
    std::uint64_t inflated =
        static_cast<std::uint64_t>(static_cast<double>(req.bytes) / eff);
    std::uint64_t base = inflated / n;
    std::uint64_t extra = inflated % n;
    for (std::size_t ch = 0; ch < n; ++ch) {
        std::uint64_t slice = base + (ch < extra ? 1 : 0);
        // A requester able to consume maxRate useful bytes/tick
        // occupies the bus at maxRate/eff.
        double rate =
            req.maxRate > 0
                ? (req.maxRate / static_cast<double>(n)) / eff
                : 0;
        channels_[ch]->startFlow(
            slice, rate, [join](sim::Tick t) { join->arrive(t); });
    }
}

double
Ddr4Memory::totalBytes() const
{
    return usefulBytes_;
}

double
Ddr4Memory::energyPj() const
{
    return totalBytes() * 8.0 * cfg_.energyPjPerBit;
}

double
Ddr4Memory::utilization(sim::Tick elapsed) const
{
    if (elapsed == 0)
        return 0;
    double utilized = 0;
    for (const auto &ch : channels_)
        utilized += ch->utilizedTicks();
    return utilized / (static_cast<double>(elapsed)
                       * static_cast<double>(channels_.size()));
}

void
Ddr4Memory::dumpStats(std::ostream &os) const
{
    for (const auto &ch : channels_)
        ch->stats().dump(os);
}

void
Ddr4Memory::resetStats()
{
    usefulBytes_ = 0;
    for (auto &ch : channels_)
        ch->resetStats();
}

} // namespace charon::mem
