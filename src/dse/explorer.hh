/**
 * @file
 * Explorer: evaluates candidate designs through the experiment
 * harness, journal-first.
 *
 * One DsePoint costs two cells — the DDR4 host baseline and the
 * Charon platform, both replaying the point's functional trace — and
 * yields an objective vector (speedup, area, energy).  The Explorer
 * looks every cell up in the SweepJournal before touching the runner,
 * batches the misses through ExperimentRunner::run (so replays fan
 * out across --jobs while staying bit-identical at any job count),
 * and appends each fresh result to the journal in submission order.
 *
 * Screening (successive halving) reuses the same machinery with the
 * replayed trace truncated to the first K collections via
 * Cell::patchTrace: the functional trace is recorded (or cache-hit)
 * once in full, and the short replay is just a cheaper walk over its
 * prefix — a separate journal key, so screens never pollute full
 * results.
 */

#ifndef CHARON_DSE_EXPLORER_HH
#define CHARON_DSE_EXPLORER_HH

#include <cstddef>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "dse/journal.hh"
#include "dse/objective.hh"
#include "dse/param_space.hh"
#include "harness/experiment_runner.hh"

namespace charon::dse
{

/**
 * The journal identity of one cell: resolved functional key +
 * platform + architectural-config digest + screening depth.  Two
 * cells with equal keys would replay byte-identical simulations.
 *
 * The digest covers the configuration fields the explorer's axes can
 * vary (plus a version tag).  It deliberately does not hash every
 * model constant: after an intentional timing-model change, delete
 * stale journals — they are caches, the golden tests are the guard.
 */
std::string cellKey(const harness::Cell &cell, int screenGcs);

/**
 * The cell's *canonical* journal identity: cellKey() with every knob
 * the replay provably cannot observe pruned away, so cells that
 * differ only in irrelevant timing knobs share one record.
 *
 * Pruning rules (each one is a bit-identity argument, not a
 * heuristic):
 *  - a DDR4 cell never constructs the HMC or the device, so every
 *    hmc.* and charon.* knob is dropped;
 *  - Host-HMC and Ideal cells never construct the device, so every
 *    charon.* knob is dropped;
 *  - Charon cells always keep the hmc.* knobs and the three unit
 *    counts (idle units still draw energy), but drop `maiEntries`
 *    when @p profile shows no device-eligible bucket with work,
 *    `distributedStructures` when none of {BitmapCount, Scan&Push,
 *    RefCount} can dispatch, and `scanPushLocal` when neither
 *    Scan&Push nor RefCount can (those are the only code paths that
 *    read each knob);
 *  - `cpuSide` is always dropped: PlatformSim's constructor pins it
 *    from the platform kind.
 *
 * @p profile must be the profile of the cell's *full* functional
 * trace; screening truncation only removes buckets, so pruning by
 * the full-trace profile is conservative (never shares too much) and
 * keeps the key a pure function of (cell, screenGcs).
 */
std::string canonicalCellKey(const harness::Cell &cell, int screenGcs,
                             const gc::TraceProfile &profile);

/**
 * Thrown by Explorer::runCells when SIGINT/SIGTERM arrived (after
 * SweepJournal::installSignalFlush()) before a fresh simulation
 * batch.  Every already-completed cell is journalled at that point,
 * so the driver can exit cleanly and the sweep resumes from the last
 * completed cell.
 */
struct SweepInterrupted : std::runtime_error
{
    SweepInterrupted()
        : std::runtime_error("sweep interrupted by signal")
    {
    }
};

/** One evaluated design point (screened or full). */
struct PointEval
{
    DsePoint point;
    int screenGcs = 0; ///< 0 = full run
    bool ok = false;
    bool oom = false;
    std::string error;

    JournalRecord base;   ///< DDR4 host cell
    JournalRecord charon; ///< Charon NMP cell

    double speedup = 0; ///< base GC time / Charon GC time
    double energyJ = 0; ///< Charon-platform GC energy
    double areaMm2 = 0; ///< Table 4 area of the point's unit fleet

    Objectives
    objectives() const
    {
        return Objectives{speedup, areaMm2, energyJ};
    }
};

/**
 * The harness cells (and their journal keys) that evaluating
 * @p points would run: two per point — the DDR4 host baseline first,
 * then the point's backend — in point order.  Explorer::evaluate is
 * defined in terms of this expansion; the sweep supervisor uses the
 * same expansion to partition a sweep across worker processes, so a
 * sharded sweep and an unsharded one agree cell-for-cell.
 */
struct PointCells
{
    std::vector<harness::Cell> cells;
    std::vector<std::string> keys; ///< cellKey() per cell, aligned
};
PointCells pointCells(const std::vector<DsePoint> &points,
                      int screenGcs = 0);

class Explorer
{
  public:
    Explorer(harness::ExperimentRunner &runner, SweepJournal &journal)
        : runner_(runner), journal_(journal)
    {
    }

    /**
     * Run @p cells journal-first: cells whose @p keys hit return the
     * journalled record; the misses run through the harness as one
     * batch and are appended.  Results align with @p cells.
     *
     * Primary misses get a second, incremental chance before any
     * simulation: the cell's canonical key (canonicalCellKey(), built
     * from the functional trace's TraceProfile) is looked up too, and
     * misses that collide on a canonical key — points differing only
     * in knobs this replay cannot observe — are simulated once and
     * shared.  Every record an incremental hit produces is appended
     * under the cell's *primary* key, so resumed sweeps keep hitting
     * the primary path and old journals stay valid.  @p screenGcs
     * must be the screening depth the keys were built with.  Cells
     * with custom pipelines or fault plans skip canonical sharing.
     */
    std::vector<JournalRecord>
    runCells(const std::vector<harness::Cell> &cells,
             const std::vector<std::string> &keys, int screenGcs = 0);

    /**
     * Evaluate @p points (two cells each).  @p screenGcs > 0 replays
     * only the first that-many collections of each trace — the
     * successive-halving screen.  Order follows @p points.
     */
    std::vector<PointEval> evaluate(const std::vector<DsePoint> &points,
                                    int screenGcs = 0);

    /** Cells answered from the journal so far. */
    std::size_t journalHits() const { return hits_; }
    /** Cells actually simulated so far. */
    std::size_t evaluatedCells() const { return evaluated_; }
    /**
     * Cells answered incrementally: primary-key misses resolved from
     * a canonical-key record (journalled earlier or simulated for a
     * sibling in the same batch) instead of a fresh replay.
     */
    std::size_t incrementalHits() const { return incrementalHits_; }

    harness::ExperimentRunner &runner() { return runner_; }
    SweepJournal &journal() { return journal_; }

  private:
    /** Full-trace profile for @p key, memoized per resolved key. */
    const gc::TraceProfile &profileFor(const harness::FunctionalKey &key);

    harness::ExperimentRunner &runner_;
    SweepJournal &journal_;
    std::size_t hits_ = 0;
    std::size_t evaluated_ = 0;
    std::size_t incrementalHits_ = 0;
    std::map<std::string, gc::TraceProfile> profiles_;
};

/**
 * Adaptive search: screen all @p points on @p screenGcs-collection
 * replays, keep the better half (by screened speedup; failed points
 * sort last), double the screen depth, and repeat until at most
 * @p finalists survive; those get full evaluations.  Returns the
 * finalists' full PointEvals in enumeration order.  Every screen and
 * the final runs are journalled, so a halving sweep resumes too.
 *
 * @p preEvaluate, when set, runs before each round's evaluate() with
 * that round's surviving points and screen depth (the final full
 * round passes screenGcs=0).  The sweep supervisor hooks this to farm
 * the round's cells out to worker shards and merge their journals
 * first, after which the in-process evaluate() is pure journal hits —
 * halving stays adaptive (each round's survivors depend on global
 * results) while the cell work itself is sharded.
 */
std::vector<PointEval> successiveHalving(
    Explorer &explorer, std::vector<DsePoint> points, int screenGcs,
    std::size_t finalists,
    const std::function<void(const std::vector<DsePoint> &, int)>
        &preEvaluate = {});

} // namespace charon::dse

#endif // CHARON_DSE_EXPLORER_HH
