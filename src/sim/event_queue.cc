#include "event_queue.hh"

#include "sim/logging.hh"

namespace charon::sim
{

EventId
EventQueue::schedule(Tick when, std::function<void()> fn)
{
    CHARON_ASSERT(when >= now_,
                  "scheduling at %llu before now %llu",
                  static_cast<unsigned long long>(when),
                  static_cast<unsigned long long>(now_));
    EventId id = nextId_++;
    heap_.push(Entry{when, nextSeq_++, id, std::move(fn)});
    live_.insert(id);
    return id;
}

bool
EventQueue::deschedule(EventId id)
{
    // An id is cancellable iff it is still pending; erase() tells us.
    return live_.erase(id) != 0;
}

bool
EventQueue::step()
{
    while (!heap_.empty()) {
        Entry e = heap_.top();
        heap_.pop();
        auto it = live_.find(e.id);
        if (it == live_.end())
            continue; // cancelled
        live_.erase(it);
        now_ = e.when;
        e.fn();
        return true;
    }
    return false;
}

std::uint64_t
EventQueue::run(Tick until)
{
    std::uint64_t executed = 0;
    while (!heap_.empty()) {
        const Entry &top = heap_.top();
        if (!live_.count(top.id)) {
            heap_.pop();
            continue;
        }
        if (top.when > until) {
            now_ = until;
            return executed;
        }
        if (step())
            ++executed;
    }
    return executed;
}

} // namespace charon::sim
