/**
 * @file
 * Tests for the class-metadata model.
 */

#include <gtest/gtest.h>

#include "heap/klass.hh"

using namespace charon::heap;

TEST(Klass, FifteenKindsExist)
{
    EXPECT_EQ(kNumKlassKinds, 15);
}

TEST(Klass, TypeArrayKindsAreRecognized)
{
    EXPECT_TRUE(isTypeArrayKind(KlassKind::TypeArrayByte));
    EXPECT_TRUE(isTypeArrayKind(KlassKind::TypeArrayDouble));
    EXPECT_FALSE(isTypeArrayKind(KlassKind::Instance));
    EXPECT_FALSE(isTypeArrayKind(KlassKind::ObjArray));
    EXPECT_FALSE(isTypeArrayKind(KlassKind::ConstantPool));
}

TEST(Klass, ElementWidths)
{
    EXPECT_EQ(typeArrayElemBytes(KlassKind::TypeArrayBoolean), 1);
    EXPECT_EQ(typeArrayElemBytes(KlassKind::TypeArrayByte), 1);
    EXPECT_EQ(typeArrayElemBytes(KlassKind::TypeArrayChar), 2);
    EXPECT_EQ(typeArrayElemBytes(KlassKind::TypeArrayShort), 2);
    EXPECT_EQ(typeArrayElemBytes(KlassKind::TypeArrayInt), 4);
    EXPECT_EQ(typeArrayElemBytes(KlassKind::TypeArrayFloat), 4);
    EXPECT_EQ(typeArrayElemBytes(KlassKind::TypeArrayLong), 8);
    EXPECT_EQ(typeArrayElemBytes(KlassKind::TypeArrayDouble), 8);
}

TEST(Klass, InstanceWordsIncludeHeader)
{
    Klass k;
    k.refFields = 3;
    k.payloadWords = 5;
    EXPECT_EQ(k.instanceWords(), 10u); // 2 header + 3 refs + 5 payload
}

TEST(Klass, AcceleratableMatchesPaperSplit)
{
    // Dominant data classes are handled by the Scan&Push unit...
    Klass inst{1, KlassKind::Instance, "X", 2, 2};
    Klass arr{2, KlassKind::ObjArray, "X[]", 0, 0};
    Klass ints{3, KlassKind::TypeArrayInt, "int[]", 0, 0};
    EXPECT_TRUE(inst.acceleratable());
    EXPECT_TRUE(arr.acceleratable());
    EXPECT_TRUE(ints.acceleratable());
    // ...while special metadata layouts stay on the host.
    Klass mirror{4, KlassKind::InstanceMirror, "Class", 1, 4};
    Klass ref{5, KlassKind::InstanceRef, "WeakRef", 1, 1};
    Klass pool{6, KlassKind::ConstantPool, "cp", 0, 0};
    EXPECT_FALSE(mirror.acceleratable());
    EXPECT_FALSE(ref.acceleratable());
    EXPECT_FALSE(pool.acceleratable());
}

TEST(KlassTable, IdZeroIsInvalid)
{
    KlassTable table;
    EXPECT_DEATH(table.get(0), "bad klass id");
}

TEST(KlassTable, BuiltinArraysPresent)
{
    KlassTable table;
    EXPECT_EQ(table.get(table.objArrayId()).kind, KlassKind::ObjArray);
    EXPECT_EQ(table.get(table.byteArrayId()).kind,
              KlassKind::TypeArrayByte);
    EXPECT_EQ(table.get(table.doubleArrayId()).kind,
              KlassKind::TypeArrayDouble);
}

TEST(KlassTable, DefineInstanceStoresLayout)
{
    KlassTable table;
    auto id = table.defineInstance("Node", 2, 4);
    const Klass &k = table.get(id);
    EXPECT_EQ(k.refFields, 2u);
    EXPECT_EQ(k.payloadWords, 4u);
    EXPECT_EQ(k.instanceWords(), 8u);
    EXPECT_TRUE(k.hasRefs());
    EXPECT_EQ(k.name, "Node");
}

TEST(KlassTable, RefFreeInstanceHasNoRefs)
{
    KlassTable table;
    auto id = table.defineInstance("Blob", 0, 16);
    EXPECT_FALSE(table.get(id).hasRefs());
}

TEST(KlassTable, EveryKindHasAName)
{
    for (int i = 0; i < kNumKlassKinds; ++i) {
        auto kind = static_cast<KlassKind>(i);
        EXPECT_NE(std::string(klassKindName(kind)), "unknown");
    }
}
