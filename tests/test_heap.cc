/**
 * @file
 * Tests for the managed heap: geometry, allocation, object access,
 * forwarding, card marking, and iteration.
 */

#include <gtest/gtest.h>

#include "heap/heap.hh"

using namespace charon;
using namespace charon::heap;

class HeapTest : public ::testing::Test
{
  protected:
    HeapTest()
    {
        nodeId = klasses.defineInstance("Node", 2, 2);
        blobId = klasses.defineInstance("Blob", 0, 6);
        cfg.heapBytes = 16 * sim::kMiB;
        heap = std::make_unique<ManagedHeap>(cfg, klasses);
    }

    KlassTable klasses;
    KlassId nodeId = 0, blobId = 0;
    HeapConfig cfg;
    std::unique_ptr<ManagedHeap> heap;
};

TEST_F(HeapTest, GeometryCoversWholeHeap)
{
    auto &old_r = heap->region(Space::Old);
    auto &eden = heap->region(Space::Eden);
    auto &from = heap->region(Space::From);
    auto &to = heap->region(Space::To);
    EXPECT_EQ(old_r.start, cfg.base);
    EXPECT_EQ(old_r.end, eden.start);
    EXPECT_EQ(eden.end, from.start);
    EXPECT_EQ(from.end, to.start);
    EXPECT_EQ(old_r.capacity() + eden.capacity() + from.capacity()
                  + to.capacity(),
              cfg.heapBytes);
    // Young:Old roughly 1:2, Eden:Survivor roughly 8:1.
    double young = static_cast<double>(eden.capacity() + from.capacity()
                                       + to.capacity());
    EXPECT_NEAR(young / cfg.heapBytes, 1.0 / 3.0, 0.01);
    EXPECT_NEAR(static_cast<double>(eden.capacity())
                    / static_cast<double>(from.capacity()),
                8.0, 0.5);
}

TEST_F(HeapTest, SpaceOfClassifiesAddresses)
{
    EXPECT_EQ(heap->spaceOf(cfg.base), Space::Old);
    EXPECT_EQ(heap->spaceOf(heap->region(Space::Eden).start), Space::Eden);
    EXPECT_EQ(heap->spaceOf(heap->region(Space::To).end - 1), Space::To);
    EXPECT_EQ(heap->spaceOf(0), Space::None);
    EXPECT_EQ(heap->spaceOf(heap->region(Space::To).end), Space::None);
}

TEST_F(HeapTest, AllocEdenWritesHeader)
{
    mem::Addr obj = heap->allocEden(nodeId);
    ASSERT_NE(obj, 0u);
    EXPECT_EQ(heap->klassOf(obj), nodeId);
    EXPECT_EQ(heap->sizeWords(obj), 6u); // 2 hdr + 2 refs + 2 payload
    EXPECT_EQ(heap->spaceOf(obj), Space::Eden);
    EXPECT_EQ(heap->age(obj), 0);
    EXPECT_FALSE(heap->isForwarded(obj));
    EXPECT_EQ(heap->refAt(obj, 0), 0u);
    EXPECT_EQ(heap->refAt(obj, 1), 0u);
}

TEST_F(HeapTest, AllocObjArray)
{
    mem::Addr arr = heap->allocEden(klasses.objArrayId(), 10);
    ASSERT_NE(arr, 0u);
    EXPECT_EQ(heap->arrayLength(arr), 10u);
    EXPECT_EQ(heap->sizeWords(arr), 13u); // 3 + 10
    EXPECT_EQ(heap->refCount(arr), 10u);
    for (std::uint64_t i = 0; i < 10; ++i)
        EXPECT_EQ(heap->refAt(arr, i), 0u);
}

TEST_F(HeapTest, AllocTypeArraySizes)
{
    mem::Addr bytes = heap->allocEden(klasses.byteArrayId(), 100);
    EXPECT_EQ(heap->sizeWords(bytes), 3u + 13u); // ceil(100/8)=13
    EXPECT_EQ(heap->refCount(bytes), 0u);
    mem::Addr longs = heap->allocEden(klasses.longArrayId(), 100);
    EXPECT_EQ(heap->sizeWords(longs), 3u + 100u);
}

TEST_F(HeapTest, EdenExhaustionReturnsNull)
{
    std::uint64_t huge =
        heap->region(Space::Eden).capacity() / 8; // words
    mem::Addr a = heap->allocEden(klasses.longArrayId(), huge);
    EXPECT_EQ(a, 0u); // needs huge+3 words, just over capacity
    // And the failure is counted.
    EXPECT_GT(heap->stats().counters()[2]->value(), 0.0);
}

TEST_F(HeapTest, SequentialAllocationIsContiguous)
{
    mem::Addr a = heap->allocEden(nodeId);
    mem::Addr b = heap->allocEden(nodeId);
    EXPECT_EQ(b, a + heap->sizeBytes(a));
}

TEST_F(HeapTest, StoreRefInYoungDoesNotDirtyCards)
{
    mem::Addr obj = heap->allocEden(nodeId);
    mem::Addr tgt = heap->allocEden(nodeId);
    heap->storeRef(obj, 0, tgt);
    EXPECT_EQ(heap->refAt(obj, 0), tgt);
    auto &ct = heap->cardTable();
    EXPECT_EQ(ct.findDirty(0, ct.numCards()), ct.numCards());
}

TEST_F(HeapTest, StoreRefInOldDirtiesCard)
{
    mem::Addr obj = heap->allocOld(6);
    // allocOld does not write a header; fabricate one via raw stores.
    heap->store64(obj, static_cast<std::uint64_t>(nodeId) | (6ull << 32));
    heap->store64(obj + 8, 0);
    mem::Addr tgt = heap->allocEden(nodeId);
    heap->storeRef(obj, 0, tgt);
    auto &ct = heap->cardTable();
    EXPECT_TRUE(ct.isDirty(ct.cardIndex(obj)));
}

TEST_F(HeapTest, ForwardingRoundTrip)
{
    mem::Addr obj = heap->allocEden(nodeId);
    mem::Addr dest = heap->allocTo(6);
    ASSERT_NE(dest, 0u);
    heap->setAge(obj, 3);
    heap->setForwarding(obj, dest);
    EXPECT_TRUE(heap->isForwarded(obj));
    EXPECT_EQ(heap->forwardee(obj), dest);
    EXPECT_EQ(heap->age(obj), 3); // age survives forwarding encode
}

TEST_F(HeapTest, AgeSaturatesAtEncodingLimit)
{
    mem::Addr obj = heap->allocEden(nodeId);
    heap->setAge(obj, 63);
    EXPECT_EQ(heap->age(obj), 63);
}

TEST_F(HeapTest, ForEachObjectWalksAllocationOrder)
{
    std::vector<mem::Addr> allocated;
    for (int i = 0; i < 20; ++i)
        allocated.push_back(heap->allocEden(i % 2 ? nodeId : blobId));
    std::vector<mem::Addr> walked;
    heap->forEachObject(Space::Eden,
                        [&](mem::Addr a) { walked.push_back(a); });
    EXPECT_EQ(walked, allocated);
}

TEST_F(HeapTest, ForEachRefSlotVisitsRefsOnly)
{
    mem::Addr obj = heap->allocEden(nodeId); // 2 refs
    int slots = 0;
    heap->forEachRefSlot(obj, [&](mem::Addr slot) {
        EXPECT_EQ(slot, heap->refSlotAddr(obj, static_cast<std::uint64_t>(
                                                   slots)));
        ++slots;
    });
    EXPECT_EQ(slots, 2);
    mem::Addr blob = heap->allocEden(blobId); // no refs
    heap->forEachRefSlot(blob, [&](mem::Addr) { FAIL(); });
}

TEST_F(HeapTest, FirstObjectOnCardFindsCoveringObject)
{
    // Fill old gen with headered objects of 48 bytes (6 words).
    std::vector<mem::Addr> objs;
    for (int i = 0; i < 100; ++i) {
        mem::Addr o = heap->allocOld(6);
        heap->store64(o, static_cast<std::uint64_t>(blobId)
                             | (6ull << 32));
        heap->store64(o + 8, 0);
        objs.push_back(o);
    }
    // Card 1 starts at old base + 512; objects are 48 B, so object
    // floor(512/48)=10 covers the boundary (start 480 < 512,
    // end 528 > 512).
    mem::Addr found = heap->firstObjectOnCard(1);
    EXPECT_EQ(found, objs[10]);
    // Card 0: first object.
    EXPECT_EQ(heap->firstObjectOnCard(0), objs[0]);
}

TEST_F(HeapTest, FirstObjectOnCardPastTopIsNull)
{
    EXPECT_EQ(heap->firstObjectOnCard(5), 0u);
}

TEST_F(HeapTest, RebuildBlockOffsetsMatchesIncremental)
{
    for (int i = 0; i < 50; ++i) {
        mem::Addr o = heap->allocOld(10);
        heap->store64(o, static_cast<std::uint64_t>(blobId)
                             | (10ull << 32));
        heap->store64(o + 8, 0);
    }
    mem::Addr before = heap->firstObjectOnCard(3);
    heap->rebuildBlockOffsets();
    EXPECT_EQ(heap->firstObjectOnCard(3), before);
}

TEST_F(HeapTest, SwapSurvivorsExchangesRoles)
{
    mem::Addr from_start = heap->region(Space::From).start;
    mem::Addr to_start = heap->region(Space::To).start;
    heap->swapSurvivors();
    EXPECT_EQ(heap->region(Space::From).start, to_start);
    EXPECT_EQ(heap->region(Space::To).start, from_start);
}

TEST_F(HeapTest, ResetSpaceReclaimsEverything)
{
    heap->allocEden(nodeId);
    heap->allocEden(nodeId);
    EXPECT_GT(heap->region(Space::Eden).used(), 0u);
    heap->resetSpace(Space::Eden);
    EXPECT_EQ(heap->region(Space::Eden).used(), 0u);
}

TEST_F(HeapTest, VerifyAcceptsHealthyHeap)
{
    mem::Addr a = heap->allocEden(nodeId);
    mem::Addr b = heap->allocEden(nodeId);
    heap->storeRef(a, 0, b);
    heap->verifySpace(Space::Eden); // must not panic
}

TEST_F(HeapTest, VerifyCatchesDanglingRef)
{
    mem::Addr a = heap->allocEden(nodeId);
    heap->setRefRaw(a, 0, 0x5); // garbage pointer outside all spaces
    EXPECT_DEATH(heap->verifySpace(Space::Eden), "dangling");
}

TEST_F(HeapTest, ObjectCountMatchesAllocations)
{
    for (int i = 0; i < 7; ++i)
        heap->allocEden(nodeId);
    EXPECT_EQ(heap->objectCount(Space::Eden), 7u);
    EXPECT_EQ(heap->objectCount(Space::Old), 0u);
}

TEST_F(HeapTest, SizeWordsForMetadataBlobKinds)
{
    auto cp = klasses.define("pool", KlassKind::ConstantPool);
    EXPECT_EQ(heap->sizeWordsFor(cp, 64), 3u + 8u);
}

TEST_F(HeapTest, VaLimitCoversMetadata)
{
    EXPECT_GT(heap->vaLimit(), cfg.base + cfg.heapBytes);
    // Bitmaps: 2 x heap/64; card table: old/512.
    std::uint64_t expected_meta =
        2 * (cfg.heapBytes / 64)
        + heap->cardTable().storageBytes();
    EXPECT_EQ(heap->vaLimit(),
              cfg.base + cfg.heapBytes + expected_meta);
}
