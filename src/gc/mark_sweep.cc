#include "mark_sweep.hh"

#include <unordered_set>

#include "sim/logging.hh"

namespace charon::gc
{

using heap::Space;
using mem::Addr;

MarkSweep::MarkSweep(heap::ManagedHeap &heap, TraceRecorder &recorder)
    : heap_(heap), rec_(recorder)
{
}

void
MarkSweep::markFromRoots()
{
    rec_.beginPhase(PhaseKind::MajorMark);
    const auto &costs = rec_.costs();
    auto &mark = heap_.begBitmap(); // CMS-style single mark bitmap
    mark.clearAll();
    rec_.recordGlue(mark.storageBytes() / 32, mark.storageBytes() / 32);

    std::vector<Addr> stack;
    auto mark_and_push = [&](Addr obj) {
        if (obj == 0 || mark.test(obj))
            return false;
        mark.set(obj);
        rec_.recordMarkObj(
            mark.storageAddrOfBit(mark.bitIndex(obj)));
        stack.push_back(obj);
        return true;
    };

    for (Addr root : heap_.roots()) {
        rec_.recordGlue(costs.rootVisit, 1);
        mark_and_push(root);
        rec_.nextThread();
    }
    std::vector<Addr> weak_refs;
    while (!stack.empty()) {
        Addr obj = stack.back();
        stack.pop_back();
        rec_.recordGlue(costs.popObject + costs.typeDispatch, 2);
        std::uint64_t n = heap_.refCount(obj);
        std::uint64_t pushed = 0;
        auto kind = heap_.klasses().get(heap_.klassOf(obj)).kind;
        for (std::uint64_t i = 0; i < n; ++i) {
            if (heap::isWeakSlot(kind, i)) {
                weak_refs.push_back(obj);
                continue;
            }
            pushed += mark_and_push(heap_.refAt(obj, i)) ? 1 : 0;
        }
        rec_.recordScanPush(obj, 16 + n * 8, n, pushed,
                            heap_.klasses().get(heap_.klassOf(obj))
                                .acceleratable());
        ++result_.liveObjects;
        result_.liveBytes += heap_.sizeBytes(obj);
        rec_.nextThread();
    }
    // Clear weak referents that only the Reference object reached.
    for (Addr holder : weak_refs) {
        rec_.recordGlue(costs.pointerAdjust, 2);
        Addr target = heap_.refAt(holder, 0);
        if (target != 0 && !mark.test(target))
            heap_.setRefRaw(holder, 0, 0);
    }
    rec_.endPhase();
}

void
MarkSweep::writeFiller(Addr addr, std::uint64_t bytes)
{
    const auto &klasses = heap_.klasses();
    std::uint64_t words = bytes / 8;
    CHARON_ASSERT(words >= 2, "hole too small for a filler");
    if (words == 2) {
        heap_.store64(addr, static_cast<std::uint64_t>(klasses.fillerId())
                                | (2ull << 32));
        heap_.store64(addr + 8, 0);
        return;
    }
    // int[] filler: 3 header words + (words-3) payload words
    // == (words-3)*2 int elements.
    std::uint64_t len = (words - 3) * 2;
    heap_.store64(addr, static_cast<std::uint64_t>(klasses.intArrayId())
                            | (words << 32));
    heap_.store64(addr + 8, 0);
    heap_.store64(addr + 16, len);
}

void
MarkSweep::sweep()
{
    rec_.beginPhase(PhaseKind::MajorSummary); // sweep bookkeeping slot
    const auto &costs = rec_.costs();
    const auto &mark = heap_.begBitmap();
    freeList_.clear();

    Addr p = heap_.region(Space::Old).start;
    const Addr top = heap_.region(Space::Old).top;
    Addr run_start = 0;
    auto close_run = [&](Addr run_end) {
        if (run_start == 0)
            return;
        std::uint64_t bytes = run_end - run_start;
        writeFiller(run_start, bytes);
        freeList_.push_back({run_start, bytes});
        result_.freedBytes += bytes;
        ++result_.freeChunks;
        run_start = 0;
    };

    while (p < top) {
        std::uint64_t bytes = heap_.sizeBytes(p);
        if (mark.test(p)) {
            close_run(p);
        } else if (run_start == 0) {
            run_start = p;
        }
        rec_.recordGlue(costs.cardMaintain, 1); // per-object sweep visit
        p += bytes;
    }
    close_run(top);
    rec_.endPhase();
}

MarkSweep::Result
MarkSweep::collect()
{
    rec_.beginGc(true);
    markFromRoots();
    sweep();
    rec_.endGc();
    return result_;
}

Addr
MarkSweep::allocateFromFreeList(heap::KlassId klass,
                                std::uint64_t array_len)
{
    std::uint64_t need_words = heap_.sizeWordsFor(klass, array_len);
    for (auto it = freeList_.begin(); it != freeList_.end(); ++it) {
        std::uint64_t chunk_words = it->bytes / 8;
        if (chunk_words < need_words)
            continue;
        std::uint64_t rem = chunk_words - need_words;
        if (rem == 1)
            continue; // cannot express a 1-word filler
        Addr obj = it->addr;
        if (rem == 0) {
            freeList_.erase(it);
        } else {
            it->addr += need_words * 8;
            it->bytes = rem * 8;
            writeFiller(it->addr, it->bytes);
        }
        // Install a fresh header (mirrors ManagedHeap allocation).
        std::uint64_t kid = klass;
        heap_.store64(obj, kid | (need_words << 32));
        heap_.store64(obj + 8, 0);
        const auto &k = heap_.klasses().get(klass);
        if (k.kind == heap::KlassKind::ObjArray
            || heap::isTypeArrayKind(k.kind)) {
            heap_.store64(obj + 16, array_len);
            if (k.kind == heap::KlassKind::ObjArray) {
                for (std::uint64_t i = 0; i < array_len; ++i)
                    heap_.store64(obj + 24 + i * 8, 0);
            }
        } else {
            for (std::uint64_t i = 0; i < k.refFields; ++i)
                heap_.store64(obj + 16 + i * 8, 0);
        }
        return obj;
    }
    return 0;
}

} // namespace charon::gc
