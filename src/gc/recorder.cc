#include "recorder.hh"

#include "sim/logging.hh"

namespace charon::gc
{

TraceRecorder::TraceRecorder(int num_threads, int cube_shift,
                             int num_cubes)
    : numThreads_(num_threads),
      cubeShift_(cube_shift),
      numCubes_(num_cubes),
      bitmapCache_(8 * 1024, 8, 32) // Section 4.5 configuration
{
    CHARON_ASSERT(num_threads > 0, "need at least one GC thread");
    CHARON_ASSERT(mem::isPow2(static_cast<std::uint64_t>(num_cubes)),
                  "cube count must be a power of two");
}

int
TraceRecorder::cubeOf(mem::Addr addr) const
{
    return static_cast<int>((addr >> cubeShift_)
                            & static_cast<mem::Addr>(numCubes_ - 1));
}

void
TraceRecorder::beginGc(bool major)
{
    CHARON_ASSERT(!gcOpen_, "nested beginGc");
    run_.mutatorInstructions.push_back(mutatorSinceGc_);
    mutatorSinceGc_ = 0;
    current_ = GcTrace{};
    current_.major = major;
    current_.capabilityMask = caps_.primMask;
    gcOpen_ = true;
}

void
TraceRecorder::beginPhase(PhaseKind kind)
{
    CHARON_ASSERT(gcOpen_ && !phaseOpen_, "beginPhase outside GC");
    openKind_ = kind;
    open_.clear();
    open_.resize(static_cast<std::size_t>(numThreads_));
    phaseOpen_ = true;
    cursor_ = 0;
    bitmapCache_.resetStats();
}

void
TraceRecorder::endPhase()
{
    CHARON_ASSERT(phaseOpen_, "endPhase without beginPhase");
    PhaseTrace p;
    p.kind = openKind_;
    // Safepoint / task-spawn / termination cost at each barrier.
    for (auto &t : open_)
        t.glueInstructions += costs_.phaseOverhead;
    p.bitmapCacheHitRate = bitmapCache_.hitRate();
    // Section 4.5: the bitmap cache is flushed after completing either
    // bitmap-using primitive phase, for coherence with the host.
    if (p.kind == PhaseKind::MajorMark
        || p.kind == PhaseKind::MajorCompact) {
        p.bitmapCacheWritebacks = bitmapCache_.flush();
    }
    // Seal the per-thread builders into the phase's columnar storage.
    for (const auto &t : open_)
        p.addThread(t);
    open_.clear();
    current_.phases.push_back(std::move(p));
    phaseOpen_ = false;
}

GcTrace &
TraceRecorder::endGc()
{
    CHARON_ASSERT(gcOpen_ && !phaseOpen_, "endGc with open phase");
    gcOpen_ = false;
    run_.gcs.push_back(std::move(current_));
    return run_.gcs.back();
}

void
TraceRecorder::recordMutator(std::uint64_t instructions)
{
    mutatorSinceGc_ += instructions;
}

void
TraceRecorder::finishRun()
{
    run_.mutatorInstructions.push_back(mutatorSinceGc_);
    mutatorSinceGc_ = 0;
}

ThreadWork &
TraceRecorder::work()
{
    CHARON_ASSERT(phaseOpen_, "primitive recorded outside a phase");
    return open_[static_cast<std::size_t>(cursor_)];
}

void
TraceRecorder::nextThread()
{
    cursor_ = (cursor_ + 1) % numThreads_;
}

void
TraceRecorder::setThread(int thread)
{
    CHARON_ASSERT(thread >= 0 && thread < numThreads_,
                  "thread %d out of range", thread);
    cursor_ = thread;
}

void
TraceRecorder::setCopyOffloadThreshold(std::uint64_t bytes)
{
    copyThreshold_ = bytes;
}

void
TraceRecorder::armFailover(std::uint64_t after)
{
    failoverArmed_ = true;
    failoverTripped_ = false;
    failoverAfter_ = after;
}

bool
TraceRecorder::failoverActive()
{
    if (!failoverArmed_)
        return false;
    if (!failoverTripped_) {
        if (failoverAfter_ > 0) {
            --failoverAfter_;
            return false;
        }
        failoverTripped_ = true;
        // The accelerator just died: the work already queued in the
        // open phase is in flight on the device and must be
        // re-dispatched to the host paths.
        for (auto &t : open_)
            for (auto &b : t.buckets)
                b.hostOnly = true;
    }
    return true;
}

void
TraceRecorder::recordCopy(mem::Addr src, mem::Addr dst,
                          std::uint64_t bytes)
{
    // Sub-threshold copies are cheaper than the offload round trip;
    // the modified JVM keeps them on the host.
    bool host_only = failoverActive() || bytes < copyThreshold_
                     || !caps_.canOffload(PrimKind::Copy);
    Bucket &b = work().bucket(PrimKind::Copy, cubeOf(src), cubeOf(dst),
                              host_only);
    ++b.invocations;
    b.seqReadBytes += bytes;
    b.writeBytes += bytes;
    current_.bytesCopied += bytes;
}

void
TraceRecorder::recordSearch(mem::Addr table_start, std::uint64_t bytes)
{
    Bucket &b = work().bucket(PrimKind::Search, cubeOf(table_start),
                              cubeOf(table_start),
                              failoverActive()
                                  || !caps_.canOffload(PrimKind::Search));
    ++b.invocations;
    b.seqReadBytes += bytes;
    current_.cardsSearched += bytes;
}

void
TraceRecorder::recordScanPush(mem::Addr obj, std::uint64_t obj_bytes,
                              std::uint64_t refs, std::uint64_t pushed,
                              bool acceleratable)
{
    // The Scan&Push unit lives on the central cube (Section 4.4); the
    // bucket key keeps the object's home cube so the timing layer can
    // route the sequential read, while the random probes to referenced
    // objects are spread over cubes by the platform model.
    Bucket &b =
        work().bucket(PrimKind::ScanPush, cubeOf(obj), cubeOf(obj),
                      failoverActive() || !acceleratable
                          || !caps_.canOffload(PrimKind::ScanPush));
    ++b.invocations;
    b.seqReadBytes += obj_bytes;
    b.refsVisited += refs;
    b.randomAccesses += refs;
    b.randomBytes += refs * 16; // minimum HMC access granularity
    b.writeBytes += pushed * 8; // object-stack pushes
    b.stackPushes += pushed;
    current_.objectsScanned += 1;
    current_.refsVisited += refs;
}

void
TraceRecorder::recordBitmapCount(mem::Addr beg_storage_addr,
                                 mem::Addr end_storage_addr,
                                 std::uint64_t range_bits)
{
    Bucket &b =
        work().bucket(PrimKind::BitmapCount, cubeOf(beg_storage_addr),
                      cubeOf(beg_storage_addr),
                      failoverActive()
                          || !caps_.canOffload(PrimKind::BitmapCount));
    ++b.invocations;
    b.rangeBits += range_bits;
    std::uint64_t bytes_per_map = mem::divCeil(range_bits, 8);
    b.seqReadBytes += 2 * bytes_per_map; // begin + end maps
    current_.bitmapCountCalls += 1;
    // Feed the functional bitmap cache with the touched 32 B blocks.
    for (mem::Addr a = mem::alignDown(beg_storage_addr, 32);
         a < beg_storage_addr + bytes_per_map; a += 32) {
        bitmapCache_.access(a, false);
    }
    for (mem::Addr a = mem::alignDown(end_storage_addr, 32);
         a < end_storage_addr + bytes_per_map; a += 32) {
        bitmapCache_.access(a, false);
    }
}

void
TraceRecorder::recordMarkObj(mem::Addr bitmap_storage_addr)
{
    // An atomic 8 B read-modify-write on the bitmap, attributed to the
    // current Scan&Push bucket as one random access plus a write.
    // Sub-access of the current Scan&Push invocation: follows its
    // routing, so after a failover it lands in the hostOnly bucket.
    Bucket &b =
        work().bucket(PrimKind::ScanPush, cubeOf(bitmap_storage_addr),
                      cubeOf(bitmap_storage_addr),
                      failoverTripped_
                          || !caps_.canOffload(PrimKind::ScanPush));
    b.randomAccesses += 1;
    b.randomBytes += 16; // overfetch: 16 B minimum granularity
    b.bitmapRmwAccesses += 1;
    b.writeBytes += 8;
    bitmapCache_.access(bitmap_storage_addr, true);
}

void
TraceRecorder::recordBitSweep(mem::Addr beg_storage_addr,
                              std::uint64_t range_bits,
                              std::uint64_t free_runs)
{
    Bucket &b =
        work().bucket(PrimKind::BitSweep, cubeOf(beg_storage_addr),
                      cubeOf(beg_storage_addr),
                      failoverActive()
                          || !caps_.canOffload(PrimKind::BitSweep));
    ++b.invocations;
    b.rangeBits += range_bits;
    // Sequential walk of both maps plus one free-list node (16 B:
    // address + length) written per discovered run.
    b.seqReadBytes += 2 * mem::divCeil(range_bits, 8);
    b.writeBytes += free_runs * 16;
}

void
TraceRecorder::recordRefCount(mem::Addr obj, std::uint64_t updates)
{
    Bucket &b =
        work().bucket(PrimKind::RefCount, cubeOf(obj), cubeOf(obj),
                      failoverActive()
                          || !caps_.canOffload(PrimKind::RefCount));
    ++b.invocations;
    // Each update is an atomic 8 B RMW on a count word: a 16 B
    // granularity read plus the 8 B write-back.
    b.randomAccesses += updates;
    b.randomBytes += updates * 16;
    b.writeBytes += updates * 8;
}

void
TraceRecorder::recordBlockZero(mem::Addr dst, std::uint64_t bytes)
{
    bool host_only = failoverActive() || bytes < copyThreshold_
                     || !caps_.canOffload(PrimKind::Copy);
    Bucket &b = work().bucket(PrimKind::Copy, cubeOf(dst), cubeOf(dst),
                              host_only);
    ++b.invocations;
    b.writeBytes += bytes; // write-only: no source stream
}

void
TraceRecorder::recordGlue(std::uint64_t instructions,
                          std::uint64_t mem_accesses)
{
    ThreadWork &w = work();
    w.glueInstructions += instructions;
    w.glueMemAccesses += mem_accesses;
}

} // namespace charon::gc
