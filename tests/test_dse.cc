/**
 * @file
 * Design-space explorer tests: deterministic parameter-space
 * enumeration, journal durability (resume after a kill, torn final
 * line tolerated as a miss), Pareto extraction on hand-built
 * objective sets, journal-first cell evaluation, and the pinned
 * smoke-grid Pareto golden (regenerate after intended model changes
 * with CHARON_UPDATE_GOLDEN=1; see EXPERIMENTS.md).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "dse/explorer.hh"
#include "dse/journal.hh"
#include "dse/objective.hh"
#include "dse/param_space.hh"
#include "dse/presets.hh"
#include "harness/experiment_runner.hh"

using namespace charon;
using namespace charon::dse;

namespace
{

std::string
freshDir(const char *name)
{
    auto dir = std::filesystem::path(::testing::TempDir())
               / (std::string("charon-dse-") + name);
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir.string();
}

// ---------------------------------------------------------------------
// ParamSpace

TEST(ParamSpace, EnumerationIsDeterministicCartesianOrder)
{
    ParamSpace space;
    ASSERT_TRUE(space.axis("units", {"2", "4"}));
    ASSERT_TRUE(space.axis("offload-threshold", {"0", "256", "4096"}));
    EXPECT_EQ(space.size(), 6u);

    auto a = space.enumerate();
    auto b = space.enumerate();
    ASSERT_EQ(a.size(), 6u);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].str(), b[i].str()) << "index " << i;

    // Last axis fastest: thresholds cycle within one unit count.
    EXPECT_EQ(a[0].copySearchUnits, 2);
    EXPECT_EQ(a[0].copyOffloadThreshold, 0u);
    EXPECT_EQ(a[1].copyOffloadThreshold, 256u);
    EXPECT_EQ(a[2].copyOffloadThreshold, 4096u);
    EXPECT_EQ(a[3].copySearchUnits, 4);
    EXPECT_EQ(a[3].copyOffloadThreshold, 0u);

    // "units" fans out to all three unit kinds.
    EXPECT_EQ(a[0].bitmapCountUnits, 2);
    EXPECT_EQ(a[0].scanPushUnits, 2);
}

TEST(ParamSpace, PointIdentityCoversEveryAxis)
{
    // Two points differing in any single axis must have distinct
    // str() forms — the journal and reports key on it.
    ParamSpace space;
    ASSERT_TRUE(space.axisSpec("workload=KM,CC"));
    ASSERT_TRUE(space.axisSpec("gc-threads=4,8"));
    ASSERT_TRUE(space.axisSpec("tsv-gbs=160,320"));
    ASSERT_TRUE(space.axisSpec("distributed=0,1"));
    auto points = space.enumerate();
    std::set<std::string> ids;
    for (const auto &p : points)
        ids.insert(p.str());
    EXPECT_EQ(ids.size(), points.size());
}

TEST(ParamSpace, RejectsUnknownAxesAndBadValues)
{
    ParamSpace space;
    std::string error;
    EXPECT_FALSE(space.axis("warp-factor", {"9"}, &error));
    EXPECT_NE(error.find("warp-factor"), std::string::npos);
    EXPECT_FALSE(space.axis("units", {"4", "banana"}, &error));
    EXPECT_NE(error.find("banana"), std::string::npos);
    EXPECT_FALSE(space.axis("units", {}, &error));
    EXPECT_FALSE(space.axisSpec("no-equals-sign", &error));
    EXPECT_FALSE(space.axisSpec("workload=XX", &error));
    // Nothing registered by the failures.
    EXPECT_TRUE(space.axes().empty());
    EXPECT_EQ(space.size(), 1u);
}

TEST(ParamSpace, WorkloadAxisCanonicalizesCase)
{
    ParamSpace space;
    ASSERT_TRUE(space.axisSpec("workload=km"));
    auto points = space.enumerate();
    ASSERT_EQ(points.size(), 1u);
    EXPECT_EQ(points[0].workload, "KM");
}

TEST(ParamSpace, BackendTokenOmittedOnDefaultForJournalBackCompat)
{
    // The exact default identity every pre-backend-axis journal was
    // written under.  If this literal ever changes, old sweeps stop
    // resuming — bump it only with a migration story.
    EXPECT_EQ(DsePoint().str(),
              "KM/h0/s1/t8/c4/ct256/cs8/bc8/sp8/tsv320/link80/uni");

    // Off-default backends are tagged; re-selecting the default adds
    // nothing, so nmp sweeps keep hitting legacy records too.
    std::string error;
    DsePoint p;
    ASSERT_TRUE(applyAxisValue(p, "backend", "nmp", &error)) << error;
    EXPECT_EQ(p.str(), DsePoint().str());
    ASSERT_TRUE(applyAxisValue(p, "backend", "igpu", &error)) << error;
    EXPECT_NE(p.str().find("/bk-igpu/"), std::string::npos) << p.str();
    ASSERT_TRUE(applyAxisValue(p, "backend", "cxl", &error)) << error;
    EXPECT_NE(p.str().find("/bk-cxl/"), std::string::npos);
    ASSERT_TRUE(applyAxisValue(p, "backend", "host", &error)) << error;
    EXPECT_NE(p.str().find("/bk-host/"), std::string::npos);
    EXPECT_FALSE(applyAxisValue(p, "backend", "fpga", &error));
}

TEST(ParamSpace, FleetAxesOmittedOnDefaultForJournalBackCompat)
{
    // The fleet axes (tenants / arb / slo-ms) follow the same
    // off-default-only emission rule as the backend axis: a default
    // point's identity is unchanged, so pre-fleet journals resume
    // with zero re-evaluated cells.
    EXPECT_EQ(DsePoint().str(),
              "KM/h0/s1/t8/c4/ct256/cs8/bc8/sp8/tsv320/link80/uni");

    std::string error;
    DsePoint p;
    ASSERT_TRUE(applyAxisValue(p, "tenants", "0", &error)) << error;
    ASSERT_TRUE(applyAxisValue(p, "arb", "fcfs", &error)) << error;
    ASSERT_TRUE(applyAxisValue(p, "slo-ms", "0", &error)) << error;
    EXPECT_EQ(p.str(), DsePoint().str());

    ASSERT_TRUE(applyAxisValue(p, "tenants", "6", &error)) << error;
    EXPECT_NE(p.str().find("/ft6/"), std::string::npos) << p.str();
    ASSERT_TRUE(applyAxisValue(p, "arb", "deadline", &error)) << error;
    EXPECT_NE(p.str().find("/arb-deadline/"), std::string::npos);
    ASSERT_TRUE(applyAxisValue(p, "slo-ms", "2.5", &error)) << error;
    EXPECT_NE(p.str().find("/slo2.5/"), std::string::npos);

    // Bad values are rejected at registration, not mid-sweep.
    EXPECT_FALSE(applyAxisValue(p, "arb", "lifo", &error));
    EXPECT_FALSE(applyAxisValue(p, "tenants", "65", &error));
    EXPECT_FALSE(applyAxisValue(p, "slo-ms", "-1", &error));
}

TEST(ParamSpace, ServiceWorkloadsAreValidAxisValues)
{
    ParamSpace space;
    ASSERT_TRUE(space.axisSpec("workload=srv,ses"));
    auto points = space.enumerate();
    ASSERT_EQ(points.size(), 2u);
    EXPECT_EQ(points[0].workload, "SRV");
    EXPECT_EQ(points[1].workload, "SES");
}

TEST(ParamSpace, SampleIsSeededSubsetInEnumerationOrder)
{
    ParamSpace space;
    ASSERT_TRUE(space.axisSpec("units=1,2,3,4,5"));
    ASSERT_TRUE(space.axisSpec("gc-threads=1,2,4,8"));
    auto all = space.enumerate();

    auto s1 = space.sample(7, 42);
    auto s2 = space.sample(7, 42);
    ASSERT_EQ(s1.size(), 7u);
    for (std::size_t i = 0; i < s1.size(); ++i)
        EXPECT_EQ(s1[i].str(), s2[i].str());

    // Members come from the full set, distinct, in enumeration order.
    std::size_t cursor = 0;
    for (const auto &p : s1) {
        while (cursor < all.size() && all[cursor].str() != p.str())
            ++cursor;
        ASSERT_LT(cursor, all.size())
            << p.str() << " not found in enumeration order";
        ++cursor;
    }

    // A different seed picks a different subset (overwhelmingly).
    auto s3 = space.sample(7, 43);
    bool anyDiff = false;
    for (std::size_t i = 0; i < s1.size(); ++i)
        anyDiff |= s1[i].str() != s3[i].str();
    EXPECT_TRUE(anyDiff);

    // Oversampling degrades to the full enumeration.
    auto s4 = space.sample(1000, 7);
    EXPECT_EQ(s4.size(), all.size());
}

// ---------------------------------------------------------------------
// SweepJournal

JournalRecord
sampleRecord(const std::string &key, double scale)
{
    JournalRecord r;
    r.key = key;
    r.ok = true;
    r.gcSeconds = 0.1 * scale;
    r.minorSeconds = 0.06 * scale;
    r.majorSeconds = 0.04 * scale;
    r.mutatorSeconds = 1.5 * scale;
    r.avgGcBandwidthGBs = 123.456 * scale;
    r.localAccessFraction = 0.75;
    r.dramBytes = 1e9 * scale;
    r.hostEnergyJ = 2.5 * scale;
    r.dramEnergyJ = 1.25 * scale;
    r.unitEnergyJ = 0.125 * scale;
    return r;
}

TEST(SweepJournal, FormatParseRoundTripIsExact)
{
    // An awkward double: %.17g must reproduce the very same bits.
    JournalRecord r = sampleRecord("c1|KM/ps|...|g0", 1.0);
    r.gcSeconds = 0.1 + 0.2; // 0.30000000000000004
    r.avgGcBandwidthGBs = 1.0 / 3.0;
    r.error = "quote \" backslash \\ newline \n done";
    r.oom = true;

    JournalRecord out;
    ASSERT_TRUE(SweepJournal::parseLine(SweepJournal::formatLine(r),
                                        out));
    EXPECT_EQ(out.key, r.key);
    EXPECT_EQ(out.ok, r.ok);
    EXPECT_EQ(out.oom, r.oom);
    EXPECT_EQ(out.error, r.error);
    EXPECT_EQ(out.gcSeconds, r.gcSeconds); // bitwise, not approx
    EXPECT_EQ(out.avgGcBandwidthGBs, r.avgGcBandwidthGBs);
    EXPECT_EQ(out.dramBytes, r.dramBytes);
}

TEST(SweepJournal, ParseRejectsMalformedLines)
{
    JournalRecord out;
    EXPECT_FALSE(SweepJournal::parseLine("", out));
    EXPECT_FALSE(SweepJournal::parseLine("not json", out));
    EXPECT_FALSE(SweepJournal::parseLine("{\"v\":1}", out));
    // Torn mid-number and mid-string:
    std::string full = SweepJournal::formatLine(sampleRecord("k", 1));
    for (std::size_t cut : {full.size() - 1, full.size() / 2,
                            std::size_t{3}})
        EXPECT_FALSE(
            SweepJournal::parseLine(full.substr(0, cut), out))
            << "cut at " << cut;
    // Wrong version:
    std::string v2 = full;
    v2.replace(v2.find("\"v\":1"), 5, "\"v\":2");
    EXPECT_FALSE(SweepJournal::parseLine(v2, out));
}

TEST(SweepJournal, ResumeAfterKillTreatsTornTailAsMiss)
{
    const std::string path =
        freshDir("journal-torn") + "/sweep.dse.jsonl";
    {
        SweepJournal journal(path);
        ASSERT_TRUE(journal.append(sampleRecord("cell-a", 1)));
        ASSERT_TRUE(journal.append(sampleRecord("cell-b", 2)));
        ASSERT_TRUE(journal.append(sampleRecord("cell-c", 3)));
    }
    // Simulate a kill mid-append: chop the file mid-way through the
    // final record's line.
    auto size = std::filesystem::file_size(path);
    std::filesystem::resize_file(path, size - 30);

    SweepJournal resumed(path);
    EXPECT_EQ(resumed.size(), 2u);
    JournalRecord out;
    EXPECT_TRUE(resumed.lookup("cell-a", out));
    EXPECT_EQ(out.gcSeconds, sampleRecord("cell-a", 1).gcSeconds);
    EXPECT_TRUE(resumed.lookup("cell-b", out));
    EXPECT_FALSE(resumed.lookup("cell-c", out)) << "torn line = miss";

    // Re-appending the missing record repairs the torn tail: the
    // next load sees all three, and no parse casualties.
    ASSERT_TRUE(resumed.append(sampleRecord("cell-c", 3)));
    SweepJournal reloaded(path);
    EXPECT_EQ(reloaded.size(), 3u);
    EXPECT_TRUE(reloaded.lookup("cell-c", out));
    EXPECT_EQ(out.gcSeconds, sampleRecord("cell-c", 3).gcSeconds);
}

TEST(SweepJournal, DisabledJournalMissesAndSwallowsAppends)
{
    SweepJournal journal{std::string()};
    EXPECT_FALSE(journal.enabled());
    EXPECT_TRUE(journal.append(sampleRecord("k", 1)));
    JournalRecord out;
    // In-memory memo still works within the process...
    EXPECT_TRUE(journal.lookup("k", out));
    // ...but nothing was written anywhere.
}

TEST(SweepJournal, LaterDuplicateWins)
{
    const std::string path =
        freshDir("journal-dup") + "/sweep.dse.jsonl";
    {
        SweepJournal journal(path);
        journal.append(sampleRecord("k", 1));
        journal.append(sampleRecord("k", 2));
    }
    SweepJournal reloaded(path);
    EXPECT_EQ(reloaded.size(), 1u);
    JournalRecord out;
    ASSERT_TRUE(reloaded.lookup("k", out));
    EXPECT_EQ(out.gcSeconds, sampleRecord("k", 2).gcSeconds);
}

// ---------------------------------------------------------------------
// Objectives / Pareto

TEST(Objective, DominanceIsStrictSomewhere)
{
    Objectives a{2.0, 1.0, 10.0};
    EXPECT_FALSE(dominates(a, a)) << "equal points do not dominate";
    EXPECT_TRUE(dominates(Objectives{2.5, 1.0, 10.0}, a));
    EXPECT_TRUE(dominates(Objectives{2.0, 0.5, 10.0}, a));
    EXPECT_TRUE(dominates(Objectives{2.0, 1.0, 9.0}, a));
    EXPECT_FALSE(dominates(Objectives{2.5, 1.5, 10.0}, a))
        << "better speedup but worse area is a trade, not dominance";
    EXPECT_FALSE(dominates(a, Objectives{2.5, 1.0, 10.0}));
}

TEST(Objective, FrontierOnHandBuiltSet)
{
    // Indices:       0: dominated by 1      1: frontier
    //                2: frontier (cheap)    3: dominated by 1 and 2
    //                4: frontier (fast)     5: duplicate of 2
    std::vector<Objectives> points = {
        {1.5, 2.0, 20.0}, {2.0, 2.0, 18.0}, {1.2, 0.5, 12.0},
        {1.1, 2.5, 25.0}, {3.0, 4.0, 30.0}, {1.2, 0.5, 12.0},
    };
    auto frontier = paretoFrontier(points);
    EXPECT_EQ(frontier, (std::vector<std::size_t>{1, 2, 4, 5}));

    // The knee balances all three normalized axes; here point 1 is
    // near-max speedup at mid area/energy.
    EXPECT_EQ(kneePoint(points, frontier), 1u);
}

TEST(Objective, SinglePointFrontier)
{
    std::vector<Objectives> points = {{1.0, 1.0, 1.0}};
    auto frontier = paretoFrontier(points);
    ASSERT_EQ(frontier.size(), 1u);
    EXPECT_EQ(kneePoint(points, frontier), 0u);
}

// ---------------------------------------------------------------------
// Explorer (journal-first evaluation; no simulation on full hits)

TEST(Explorer, JournalHitsShortCircuitSimulation)
{
    DsePoint point; // KM defaults
    auto fk = harness::ExperimentRunner::resolve(point.functionalKey());
    auto cfg = point.systemConfig();
    std::vector<harness::Cell> cells;
    std::vector<std::string> keys;
    for (auto kind : {sim::PlatformKind::HostDdr4,
                      sim::PlatformKind::CharonNmp}) {
        harness::Cell c;
        c.key = fk;
        c.platform = kind;
        c.config = cfg;
        cells.push_back(c);
        keys.push_back(cellKey(c, 0));
    }
    EXPECT_NE(keys[0], keys[1]) << "platform must enter the cell key";

    SweepJournal journal{std::string()};
    journal.append(sampleRecord(keys[0], 1));
    journal.append(sampleRecord(keys[1], 2));

    harness::ExperimentRunner runner(
        harness::RunnerConfig{1, std::string()});
    Explorer explorer(runner, journal);
    auto records = explorer.runCells(cells, keys);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(explorer.journalHits(), 2u);
    EXPECT_EQ(explorer.evaluatedCells(), 0u)
        << "full journal must mean zero simulated cells";
    EXPECT_EQ(records[0].gcSeconds, sampleRecord(keys[0], 1).gcSeconds);
    EXPECT_EQ(records[1].gcSeconds, sampleRecord(keys[1], 2).gcSeconds);
}

TEST(Explorer, LegacyJournalWithoutBackendTokensResumesClean)
{
    // A journal written before the backend axis existed holds cells
    // keyed on {DDR4, Charon} only.  Resuming the same sweep today
    // must replay entirely from that journal (0 evaluated cells),
    // and an igpu point must share the DDR4 baseline cell with the
    // default point instead of re-simulating it.
    DsePoint def; // pre-axis sweeps only ever produced this shape
    DsePoint ig = def;
    ig.backend = sim::PlatformKind::IgpuOffload;
    auto fk = harness::ExperimentRunner::resolve(def.functionalKey());

    auto makeCell = [&](const DsePoint &p, sim::PlatformKind kind) {
        harness::Cell c;
        c.key = fk;
        c.platform = kind;
        c.config = p.systemConfig();
        return c;
    };
    // Cells exactly as Explorer::evaluate lays them out: baseline
    // then offload, per point.
    std::vector<harness::Cell> cells = {
        makeCell(def, sim::PlatformKind::HostDdr4),
        makeCell(def, def.backend),
        makeCell(ig, sim::PlatformKind::HostDdr4),
        makeCell(ig, ig.backend),
    };
    std::vector<std::string> keys;
    for (const auto &c : cells)
        keys.push_back(cellKey(c, 0));

    // Legacy keys never carried a backend token, and the new ones
    // only differ by platform name — the baseline cell is shared.
    for (const auto &k : keys)
        EXPECT_EQ(k.find("bk-"), std::string::npos) << k;
    EXPECT_EQ(keys[0], keys[2]) << "igpu point must reuse the DDR4 "
                                   "baseline cell";
    EXPECT_NE(keys[1], keys[3]);

    // Seed the journal the way a pre-axis sweep left it, plus the
    // one genuinely new cell; resume must evaluate nothing.
    SweepJournal journal{std::string()};
    journal.append(sampleRecord(keys[0], 1));
    journal.append(sampleRecord(keys[1], 2));
    journal.append(sampleRecord(keys[3], 3));

    harness::ExperimentRunner runner(
        harness::RunnerConfig{1, std::string()});
    Explorer explorer(runner, journal);
    auto records = explorer.runCells(cells, keys);
    ASSERT_EQ(records.size(), 4u);
    EXPECT_EQ(explorer.journalHits(), 4u);
    EXPECT_EQ(explorer.evaluatedCells(), 0u)
        << "legacy journal plus the shared baseline must cover the "
           "whole grid";
    EXPECT_EQ(records[0].gcSeconds, records[2].gcSeconds);
    EXPECT_EQ(records[3].gcSeconds, sampleRecord(keys[3], 3).gcSeconds);

    // DDR4-backed offload backends prune HMC/Charon knobs exactly
    // like the host baseline: they are unobservable there.
    gc::TraceProfile scanPush;
    scanPush.offloadKinds = 1u << unsigned(gc::PrimKind::ScanPush);
    harness::Cell knob = cells[3];
    knob.config.charon.maiEntries = 99;
    knob.config.hmc.cubes = 16;
    EXPECT_EQ(canonicalCellKey(cells[3], 0, scanPush),
              canonicalCellKey(knob, 0, scanPush));
    harness::Cell cxl = cells[3];
    cxl.platform = sim::PlatformKind::CxlMsa;
    harness::Cell cxlKnob = knob;
    cxlKnob.platform = sim::PlatformKind::CxlMsa;
    EXPECT_EQ(canonicalCellKey(cxl, 0, scanPush),
              canonicalCellKey(cxlKnob, 0, scanPush));
    EXPECT_NE(canonicalCellKey(cells[3], 0, scanPush),
              canonicalCellKey(cxl, 0, scanPush))
        << "backends must not collide with each other";
}

TEST(Explorer, CellKeySeparatesConfigAndScreenDepth)
{
    DsePoint point;
    auto fk = harness::ExperimentRunner::resolve(point.functionalKey());
    harness::Cell c;
    c.key = fk;
    c.platform = sim::PlatformKind::CharonNmp;
    c.config = point.systemConfig();

    harness::Cell tsv = c;
    tsv.config.hmc.internalGBsPerCube = 640.0;
    harness::Cell units = c;
    units.config.charon.copySearchUnits = 2;
    EXPECT_NE(cellKey(c, 0), cellKey(tsv, 0));
    EXPECT_NE(cellKey(c, 0), cellKey(units, 0));
    EXPECT_NE(cellKey(c, 0), cellKey(c, 4))
        << "screened replays must not pollute full results";
    EXPECT_EQ(cellKey(c, 0), cellKey(c, 0));
}

// ---------------------------------------------------------------------
// Incremental recompute: canonical keys + cross-point record sharing

TEST(Explorer, CanonicalKeyPrunesWhatTheReplayCannotObserve)
{
    DsePoint point;
    auto fk = harness::ExperimentRunner::resolve(point.functionalKey());
    harness::Cell c;
    c.key = fk;
    c.config = point.systemConfig();
    gc::TraceProfile none; // no bucket ever carries work

    // DDR4 never constructs the HMC or the device: every hmc.* and
    // charon.* knob prunes away; gcThreads stays observable.
    c.platform = sim::PlatformKind::HostDdr4;
    harness::Cell v = c;
    v.config.hmc.cubes = 16;
    v.config.hmc.internalGBsPerCube = 640.0;
    v.config.charon.copySearchUnits = 1;
    v.config.charon.maiEntries = 99;
    EXPECT_EQ(canonicalCellKey(c, 0, none), canonicalCellKey(v, 0, none));
    harness::Cell t = c;
    t.config.gcThreads = 4;
    EXPECT_NE(canonicalCellKey(c, 0, none), canonicalCellKey(t, 0, none));
    EXPECT_NE(canonicalCellKey(c, 0, none), canonicalCellKey(c, 4, none))
        << "screen depth must stay in the canonical key";

    // Host-HMC builds the interconnect but never the device.
    c.platform = sim::PlatformKind::HostHmc;
    v = c;
    v.config.charon.copySearchUnits = 1;
    v.config.charon.maiEntries = 99;
    EXPECT_EQ(canonicalCellKey(c, 0, none), canonicalCellKey(v, 0, none));
    v = c;
    v.config.hmc.cubes = 16;
    EXPECT_NE(canonicalCellKey(c, 0, none), canonicalCellKey(v, 0, none));

    // Charon keeps hmc knobs and unit counts (idle units draw
    // energy); the structure knobs prune by what the trace can
    // actually dispatch.
    gc::TraceProfile copyOnly;
    copyOnly.offloadKinds = 1u << unsigned(gc::PrimKind::Copy);
    gc::TraceProfile scanPush;
    scanPush.offloadKinds = 1u << unsigned(gc::PrimKind::ScanPush);
    c.platform = sim::PlatformKind::CharonNmp;

    harness::Cell units = c;
    units.config.charon.bitmapCountUnits = 1;
    EXPECT_NE(canonicalCellKey(c, 0, none),
              canonicalCellKey(units, 0, none));

    harness::Cell mai = c;
    mai.config.charon.maiEntries = 99;
    EXPECT_EQ(canonicalCellKey(c, 0, none), canonicalCellKey(mai, 0, none))
        << "no offload-eligible work: maiEntries is unobservable";
    EXPECT_NE(canonicalCellKey(c, 0, copyOnly),
              canonicalCellKey(mai, 0, copyOnly))
        << "any offload work reads the MAI";

    harness::Cell dist = c;
    dist.config.charon.distributedStructures =
        !c.config.charon.distributedStructures;
    EXPECT_EQ(canonicalCellKey(c, 0, copyOnly),
              canonicalCellKey(dist, 0, copyOnly))
        << "Copy never consults distributedStructures";
    EXPECT_NE(canonicalCellKey(c, 0, scanPush),
              canonicalCellKey(dist, 0, scanPush));

    harness::Cell spl = c;
    spl.config.charon.scanPushLocal = !c.config.charon.scanPushLocal;
    EXPECT_EQ(canonicalCellKey(c, 0, copyOnly),
              canonicalCellKey(spl, 0, copyOnly));
    EXPECT_NE(canonicalCellKey(c, 0, scanPush),
              canonicalCellKey(spl, 0, scanPush));

    // cpuSide is pinned from the platform kind, so it never matters.
    harness::Cell side = c;
    side.config.charon.cpuSide = !c.config.charon.cpuSide;
    EXPECT_EQ(canonicalCellKey(c, 0, scanPush),
              canonicalCellKey(side, 0, scanPush));

    // The families can never collide inside one journal.
    EXPECT_EQ(canonicalCellKey(c, 0, scanPush).rfind("i1|", 0), 0u);
    EXPECT_EQ(cellKey(c, 0).rfind("c1|", 0), 0u);
}

TEST(Explorer, PrunedKnobSweepSimulatesOnceAndShares)
{
    // Three DDR4 cells differing only in a device knob the baseline
    // replay cannot observe: distinct primary keys, one canonical
    // key.  The sweep must cost one simulation, and every record it
    // produces must land under its primary key so resumed sweeps
    // never need the incremental pass again.
    const std::string path =
        freshDir("incremental") + "/sweep.dse.jsonl";
    DsePoint point;
    auto fk = harness::ExperimentRunner::resolve(point.functionalKey());
    std::vector<harness::Cell> cells;
    std::vector<std::string> keys;
    for (int units : {2, 4, 8}) {
        harness::Cell c;
        c.key = fk;
        c.platform = sim::PlatformKind::HostDdr4;
        c.config = point.systemConfig();
        c.config.charon.copySearchUnits = units;
        keys.push_back(cellKey(c, 0));
        cells.push_back(std::move(c));
    }
    EXPECT_NE(keys[0], keys[1]) << "primary keys see the pruned knob";

    {
        SweepJournal journal(path);
        harness::ExperimentRunner runner(
            harness::RunnerConfig{1, std::string()});
        Explorer explorer(runner, journal);
        auto records = explorer.runCells(cells, keys);
        ASSERT_EQ(records.size(), 3u);
        EXPECT_EQ(explorer.journalHits(), 0u);
        EXPECT_EQ(explorer.evaluatedCells(), 1u)
            << "the N-point pruned-knob sweep must replay once";
        EXPECT_EQ(explorer.incrementalHits(), 2u);
        for (std::size_t i = 0; i < records.size(); ++i) {
            ASSERT_TRUE(records[i].ok) << records[i].error;
            EXPECT_EQ(records[i].key, keys[i]);
            // Shared records are bitwise copies of the one replay.
            EXPECT_EQ(records[i].gcSeconds, records[0].gcSeconds);
            EXPECT_EQ(records[i].hostEnergyJ, records[0].hostEnergyJ);
            EXPECT_EQ(records[i].dramBytes, records[0].dramBytes);
        }
    }

    // Resume path: a fresh journal answers every cell from its
    // primary key — plus a brand-new sibling from the canonical
    // record, still with zero fresh simulation.
    {
        harness::Cell extra = cells[0];
        extra.config.charon.copySearchUnits = 16;
        auto extraCells = cells;
        auto extraKeys = keys;
        extraCells.push_back(extra);
        extraKeys.push_back(cellKey(extra, 0));

        SweepJournal resumed(path);
        harness::ExperimentRunner runner(
            harness::RunnerConfig{1, std::string()});
        Explorer explorer(runner, resumed);
        auto records = explorer.runCells(extraCells, extraKeys);
        ASSERT_EQ(records.size(), 4u);
        EXPECT_EQ(explorer.journalHits(), 3u)
            << "re-homed records must hit on the primary path";
        EXPECT_EQ(explorer.incrementalHits(), 1u);
        EXPECT_EQ(explorer.evaluatedCells(), 0u);
        EXPECT_EQ(records[3].gcSeconds, records[0].gcSeconds);
        EXPECT_EQ(records[3].key, extraKeys[3]);
    }
}

// ---------------------------------------------------------------------
// Golden guard: the smoke grid's Pareto CSV is pinned.

std::string
goldenPath()
{
    return std::string(CHARON_GOLDEN_DIR) + "/dse_pareto_golden.csv";
}

constexpr double kRelTol = 1e-6;

struct CsvRow
{
    std::string point;
    double speedup = 0, gcMs = 0, energyJ = 0, areaMm2 = 0;
    int knee = 0;
};

std::vector<CsvRow>
parseCsv(const std::string &text)
{
    std::vector<CsvRow> rows;
    std::istringstream is(text);
    std::string line;
    std::getline(is, line); // header
    EXPECT_EQ(line, "point,speedup,gc_ms,energy_j,area_mm2,knee");
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        std::istringstream ls(line);
        CsvRow row;
        std::string field;
        std::getline(ls, row.point, ',');
        std::getline(ls, field, ',');
        row.speedup = std::strtod(field.c_str(), nullptr);
        std::getline(ls, field, ',');
        row.gcMs = std::strtod(field.c_str(), nullptr);
        std::getline(ls, field, ',');
        row.energyJ = std::strtod(field.c_str(), nullptr);
        std::getline(ls, field, ',');
        row.areaMm2 = std::strtod(field.c_str(), nullptr);
        std::getline(ls, field, ',');
        row.knee = std::atoi(field.c_str());
        rows.push_back(row);
    }
    return rows;
}

::testing::AssertionResult
relNear(const char *what, double actual, double golden)
{
    double scale = std::max({1.0, std::abs(actual), std::abs(golden)});
    if (std::abs(actual - golden) <= kRelTol * scale)
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << what << ": actual " << actual << " vs golden " << golden
           << " (outside rel tol 1e-6).  If the timing model changed "
              "intentionally, regenerate with CHARON_UPDATE_GOLDEN=1 "
              "(see EXPERIMENTS.md).";
}

TEST(DseGolden, SmokeGridParetoMatchesGolden)
{
    // No journal, no trace cache: the golden must not depend on any
    // persisted state.
    SweepJournal journal{std::string()};
    harness::ExperimentRunner runner(
        harness::RunnerConfig{0, std::string()});
    Explorer explorer(runner, journal);
    auto evals = explorer.evaluate(smokeSpace().enumerate());
    for (const auto &e : evals)
        ASSERT_TRUE(e.ok) << e.point.str() << ": " << e.error;
    auto summary = summarize(evals);
    ASSERT_TRUE(summary.valid);
    const std::string csv = paretoCsvText(evals, summary);

    if (std::getenv("CHARON_UPDATE_GOLDEN") != nullptr) {
        std::ofstream os(goldenPath(), std::ios::binary);
        ASSERT_TRUE(os) << "cannot write " << goldenPath();
        os << csv;
        std::printf("golden file updated: %s\n", goldenPath().c_str());
        return;
    }

    std::ifstream is(goldenPath(), std::ios::binary);
    ASSERT_TRUE(is) << "missing " << goldenPath()
                    << "; generate with CHARON_UPDATE_GOLDEN=1";
    std::stringstream ss;
    ss << is.rdbuf();
    auto golden = parseCsv(ss.str());
    auto actual = parseCsv(csv);
    ASSERT_EQ(actual.size(), golden.size())
        << "frontier membership changed; regenerate the golden file "
           "if intended";
    for (std::size_t i = 0; i < actual.size(); ++i) {
        SCOPED_TRACE(actual[i].point);
        EXPECT_EQ(actual[i].point, golden[i].point);
        EXPECT_TRUE(relNear("speedup", actual[i].speedup,
                            golden[i].speedup));
        EXPECT_TRUE(relNear("gc_ms", actual[i].gcMs, golden[i].gcMs));
        EXPECT_TRUE(relNear("energy_j", actual[i].energyJ,
                            golden[i].energyJ));
        EXPECT_TRUE(relNear("area_mm2", actual[i].areaMm2,
                            golden[i].areaMm2));
        EXPECT_EQ(actual[i].knee, golden[i].knee);
    }
}

} // namespace
