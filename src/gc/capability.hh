/**
 * @file
 * The collector capability model: Table 1 as a declared, testable
 * contract instead of wiring baked into each collector's driver.
 *
 * Every collector behind CollectorIface declares a CapabilitySet:
 * which Charon primitives its phases can hand to a near-memory unit,
 * and which heap metadata structures it maintains (card table, mark
 * bitmaps) — the latter bounds which *fault kinds* are meaningful to
 * inject against it.  The TraceRecorder composes the declared set
 * into its per-record offload gating, so a primitive the collector
 * does not declare is recorded hostOnly and replays on the host on
 * every platform, exactly like a sub-threshold copy.
 *
 * bench/collector_zoo closes the loop: it derives the *observed* set
 * from a recorded trace and diffs it against the declaration, which
 * is how the computed Table 1 is produced (and how
 * tests/test_capability.cc keeps declarations honest).
 */

#ifndef CHARON_GC_CAPABILITY_HH
#define CHARON_GC_CAPABILITY_HH

#include <cstdint>
#include <string>

#include "gc/trace.hh"

namespace charon::gc
{

/** Bit for @p kind in a capability mask. */
constexpr std::uint32_t
primBit(PrimKind kind)
{
    return 1u << static_cast<unsigned>(kind);
}

/** Mask with every primitive set. */
constexpr std::uint32_t kAllPrimsMask = (1u << kNumPrimKinds) - 1;

/**
 * What one collector can hand to Charon, and which metadata
 * structures it keeps.
 */
struct CapabilitySet
{
    /** OR of primBit(kind) for each offloadable primitive. */
    std::uint32_t primMask = 0;
    /** Maintains a card table (generational write barrier). */
    bool hasCardTable = false;
    /** Maintains mark bitmaps (mark phase or sweep metadata). */
    bool hasMarkBitmap = false;

    constexpr bool canOffload(PrimKind kind) const
    {
        return (primMask & primBit(kind)) != 0;
    }

    constexpr bool empty() const { return primMask == 0; }

    /** The fully-capable set (ParallelScavenge-era default). */
    static constexpr CapabilitySet all()
    {
        return CapabilitySet{kAllPrimsMask, true, true};
    }

    /** No offload at all: every record degrades to the host path. */
    static constexpr CapabilitySet none()
    {
        return CapabilitySet{0, false, false};
    }

    bool operator==(const CapabilitySet &o) const
    {
        return primMask == o.primMask && hasCardTable == o.hasCardTable
               && hasMarkBitmap == o.hasMarkBitmap;
    }
    bool operator!=(const CapabilitySet &o) const { return !(*this == o); }
};

/** "Copy+Search+Scan&Push" style render of @p mask, "-" when empty. */
std::string primMaskNames(std::uint32_t mask);

} // namespace charon::gc

#endif // CHARON_GC_CAPABILITY_HH
