/**
 * @file
 * Cross-cutting property tests: conservation laws in the fluid
 * bandwidth model, agreement between independent collector
 * implementations on the same heap, and trace-accounting identities
 * that every workload run must satisfy.
 */

#include <gtest/gtest.h>

#include "gc/collector.hh"
#include "gc/mark_compact.hh"
#include "gc/mark_sweep.hh"
#include "gc/recorder.hh"
#include "gc/scavenge.hh"
#include "gc/verify.hh"
#include "mem/fluid_channel.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "workload/mutator.hh"

using namespace charon;
using charon::sim::EventQueue;
using charon::sim::Rng;
using charon::sim::Tick;
using mem::Addr;

// ---------------------------------------------------------------------
// Fluid channel conservation

TEST(FluidChannelProperty, BytesAreConservedUnderRandomTraffic)
{
    // Whatever the arrival pattern, every flow must finish, the byte
    // accounting must match the offered load, and no flow may finish
    // faster than capacity allows.
    for (std::uint64_t seed : {1u, 7u, 42u, 1234u}) {
        Rng rng(seed);
        EventQueue eq;
        double capacity = 0.5 + rng.uniform() * 4.0;
        mem::FluidChannel ch(eq, "prop", capacity);

        std::uint64_t offered = 0;
        int finished = 0;
        int flows = 64;
        Tick last_finish = 0;
        for (int i = 0; i < flows; ++i) {
            Tick start = rng.below(5000);
            std::uint64_t bytes = 1 + rng.below(20000);
            double cap = rng.chance(0.5)
                             ? 0.0
                             : capacity * (0.05 + rng.uniform());
            offered += bytes;
            eq.schedule(start, [&, bytes, cap] {
                ch.startFlow(bytes, cap, [&](Tick t) {
                    ++finished;
                    last_finish = std::max(last_finish, t);
                });
            });
        }
        eq.run();
        EXPECT_EQ(finished, flows) << "seed " << seed;
        EXPECT_DOUBLE_EQ(ch.totalBytes(),
                         static_cast<double>(offered));
        // The pipe cannot move offered bytes faster than capacity.
        EXPECT_GE(static_cast<double>(last_finish) + 1,
                  static_cast<double>(offered) / capacity)
            << "seed " << seed;
        // Utilization integral equals offered / capacity.
        EXPECT_NEAR(ch.utilizedTicks(),
                    static_cast<double>(offered) / capacity,
                    static_cast<double>(flows) + 64.0)
            << "seed " << seed;
    }
}

// ---------------------------------------------------------------------
// Collector agreement: mark-sweep's live set == mark-compact's

TEST(CollectorAgreement, MarkSweepAndMarkCompactAgreeOnLiveness)
{
    for (std::uint64_t seed : {3u, 17u, 91u}) {
        heap::KlassTable klasses;
        auto node = klasses.defineInstance("Node", 2, 2);
        heap::HeapConfig cfg;
        cfg.heapBytes = 16 * sim::kMiB;
        heap::ManagedHeap heap(cfg, klasses);
        gc::TraceRecorder rec(4, 22);

        Rng rng(seed);
        std::vector<Addr> objs;
        for (int i = 0; i < 1500; ++i) {
            Addr o = heap.allocOldObject(node);
            ASSERT_NE(o, 0u);
            objs.push_back(o);
        }
        for (Addr o : objs) {
            for (std::uint64_t s = 0; s < 2; ++s) {
                if (rng.chance(0.5))
                    heap.storeRef(o, s, objs[rng.below(objs.size())]);
            }
        }
        for (Addr o : objs) {
            if (rng.chance(0.1))
                heap.roots().push_back(o);
        }

        // Mark-sweep (non-moving) measures the live set...
        gc::MarkSweep ms(heap, rec);
        auto sweep = ms.collect();
        // ...and mark-compact on the same (unchanged) graph must find
        // exactly the same live objects and bytes.
        gc::MarkCompact mc(heap, rec);
        auto compact = mc.collect();
        EXPECT_EQ(sweep.liveObjects, compact.liveObjects)
            << "seed " << seed;
        EXPECT_EQ(sweep.liveBytes, compact.liveBytes)
            << "seed " << seed;
    }
}

// ---------------------------------------------------------------------
// Trace accounting identities on real workload runs

TEST(TraceIdentity, CopyBytesMatchFunctionalOutcome)
{
    const auto &params = workload::findWorkload("KM");
    workload::Mutator mut(params, params.heapBytes, 5);
    mut.run();
    for (const auto &gc : mut.recorder().run().gcs) {
        // Per-GC aggregate recorded by the collector equals the sum
        // of Copy bucket payloads in the trace.
        std::uint64_t bucket_bytes = 0;
        for (const auto &phase : gc.phases) {
            phase.forEachBucket([&](const gc::Bucket &b) {
                if (b.kind == gc::PrimKind::Copy)
                    bucket_bytes += b.seqReadBytes;
            });
        }
        EXPECT_EQ(bucket_bytes, gc.bytesCopied);
    }
}

TEST(TraceIdentity, ScanPushRefsNeverExceedRandomAccesses)
{
    const auto &params = workload::findWorkload("CC");
    workload::Mutator mut(params, params.heapBytes, 5);
    mut.run();
    for (const auto &gc : mut.recorder().run().gcs) {
        for (const auto &phase : gc.phases) {
            phase.forEachBucket([&](const gc::Bucket &b) {
                if (b.kind != gc::PrimKind::ScanPush)
                    return;
                EXPECT_LE(b.refsVisited, b.randomAccesses);
                EXPECT_LE(b.bitmapRmwAccesses, b.randomAccesses);
                EXPECT_EQ(b.randomBytes, b.randomAccesses * 16);
            });
        }
    }
}

TEST(TraceIdentity, EveryPhaseHasConfiguredThreadCount)
{
    const auto &params = workload::findWorkload("ALS");
    for (int threads : {1, 4, 8}) {
        workload::Mutator mut(params, params.heapBytes, 5, threads);
        mut.run();
        for (const auto &gc : mut.recorder().run().gcs) {
            for (const auto &phase : gc.phases) {
                EXPECT_EQ(phase.threads.size(),
                          static_cast<std::size_t>(threads));
            }
        }
    }
}

TEST(TraceIdentity, MinorAndMajorPhasesNeverMix)
{
    const auto &params = workload::findWorkload("PR");
    workload::Mutator mut(params, params.heapBytes, 5);
    mut.run();
    for (const auto &gc : mut.recorder().run().gcs) {
        for (const auto &phase : gc.phases) {
            bool is_major_phase =
                phase.kind == gc::PhaseKind::MajorMark
                || phase.kind == gc::PhaseKind::MajorSummary
                || phase.kind == gc::PhaseKind::MajorCompact;
            EXPECT_EQ(is_major_phase, gc.major);
        }
    }
}

// ---------------------------------------------------------------------
// Scavenge demand oracle

TEST(ScavengeOracle, EstimateMatchesActualCollection)
{
    // The pre-flight SpaceDemand (the policy oracle) must equal what
    // the scavenge then actually copies and promotes, for random
    // graphs.
    for (std::uint64_t seed : {2u, 29u, 555u}) {
        heap::KlassTable klasses;
        auto node = klasses.defineInstance("Node", 2, 2);
        heap::HeapConfig cfg;
        cfg.heapBytes = 16 * sim::kMiB;
        heap::ManagedHeap heap(cfg, klasses);
        gc::TraceRecorder rec(4, 22);

        Rng rng(seed);
        std::vector<Addr> objs;
        for (int i = 0; i < 3000; ++i) {
            Addr o = heap.allocEden(node);
            ASSERT_NE(o, 0u);
            objs.push_back(o);
        }
        for (Addr o : objs) {
            for (std::uint64_t s = 0; s < 2; ++s) {
                if (rng.chance(0.4))
                    heap.storeRef(o, s, objs[rng.below(objs.size())]);
            }
            if (rng.chance(0.2))
                heap.roots().push_back(o);
        }

        gc::Scavenge probe(heap, rec);
        auto demand = probe.estimateDemand();
        gc::Scavenge sc(heap, rec);
        auto result = sc.collect();
        EXPECT_EQ(demand.liveYoungBytes(),
                  result.bytesCopied + result.bytesPromoted)
            << "seed " << seed;
    }
}
