#include "objective.hh"

#include <algorithm>
#include <cmath>
#include <limits>

namespace charon::dse
{

bool
dominates(const Objectives &a, const Objectives &b)
{
    bool geq = a.speedup >= b.speedup && a.areaMm2 <= b.areaMm2
               && a.energyJ <= b.energyJ;
    bool strict = a.speedup > b.speedup || a.areaMm2 < b.areaMm2
                  || a.energyJ < b.energyJ;
    return geq && strict;
}

std::vector<std::size_t>
paretoFrontier(const std::vector<Objectives> &points)
{
    std::vector<std::size_t> frontier;
    for (std::size_t i = 0; i < points.size(); ++i) {
        bool dominated = false;
        for (std::size_t j = 0; j < points.size() && !dominated; ++j)
            dominated = j != i && dominates(points[j], points[i]);
        if (!dominated)
            frontier.push_back(i);
    }
    return frontier;
}

std::size_t
kneePoint(const std::vector<Objectives> &points,
          const std::vector<std::size_t> &frontier)
{
    // Normalize over the frontier only: dominated stragglers must not
    // stretch an axis and shift the knee.
    double sMin = std::numeric_limits<double>::infinity(), sMax = -sMin;
    double aMin = sMin, aMax = -sMin;
    double eMin = sMin, eMax = -sMin;
    for (std::size_t i : frontier) {
        const auto &p = points[i];
        sMin = std::min(sMin, p.speedup);
        sMax = std::max(sMax, p.speedup);
        aMin = std::min(aMin, p.areaMm2);
        aMax = std::max(aMax, p.areaMm2);
        eMin = std::min(eMin, p.energyJ);
        eMax = std::max(eMax, p.energyJ);
    }
    auto norm = [](double v, double lo, double hi) {
        return hi > lo ? (v - lo) / (hi - lo) : 0.0;
    };

    std::size_t best = frontier.front();
    double bestDist = std::numeric_limits<double>::infinity();
    for (std::size_t i : frontier) {
        const auto &p = points[i];
        // Utopia: speedup at the frontier max, area and energy at the
        // frontier min — (1, 0, 0) in normalized space.
        double ds = 1.0 - norm(p.speedup, sMin, sMax);
        double da = norm(p.areaMm2, aMin, aMax);
        double de = norm(p.energyJ, eMin, eMax);
        double dist = std::sqrt(ds * ds + da * da + de * de);
        if (dist < bestDist) {
            bestDist = dist;
            best = i;
        }
    }
    return best;
}

} // namespace charon::dse
